// Command benchinfo prints structural statistics of a BENCH netlist:
// interface dimensions, gate histogram, depth, and key inputs.
//
// Usage:
//
//	benchinfo circuit.bench [more.bench ...]
//	benchinfo -strash circuit.bench   # also show post-strash size
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/aig"
	"repro/internal/bench"
)

func main() {
	strash := flag.Bool("strash", false, "also report post-strash (AIG) statistics")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchinfo [-strash] FILE...")
		os.Exit(1)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchinfo: %v\n", err)
			os.Exit(1)
		}
		c, err := bench.Parse(f, path)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchinfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", path)
		fmt.Printf("  inputs: %d (%d key), outputs: %d\n",
			len(c.Inputs()), len(c.KeyInputs()), len(c.Outputs))
		fmt.Printf("  gates: %d, depth: %d\n", c.NumGates(), c.Depth())
		counts := c.GateCounts()
		types := make([]string, 0, len(counts))
		byName := map[string]int{}
		for t, n := range counts {
			types = append(types, t.String())
			byName[t.String()] = n
		}
		sort.Strings(types)
		fmt.Printf("  histogram:")
		for _, t := range types {
			fmt.Printf(" %s=%d", t, byName[t])
		}
		fmt.Println()
		if *strash {
			opt := aig.Strash(c)
			fmt.Printf("  post-strash: %d gates, depth %d\n", opt.NumGates(), opt.Depth())
		}
	}
}
