// Command satattack runs the oracle-guided SAT attack baseline on a
// locked BENCH netlist, with the original (unlocked) netlist standing in
// for the activated-chip oracle. It drives the attack through the unified
// attack registry (attack.Get("sat")).
//
// Usage:
//
//	satattack -locked locked.bench -oracle original.bench \
//	          [-timeout 1000s] [-maxiter 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/attack"
	_ "repro/internal/attack/all"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/oracle"
)

func main() {
	var (
		lockedPath = flag.String("locked", "", "locked circuit in BENCH format")
		oraclePath = flag.String("oracle", "", "original circuit in BENCH format (simulated activated IC)")
		timeout    = flag.Duration("timeout", 1000*time.Second, "attack time budget (0 = none)")
		maxIter    = flag.Int("maxiter", 0, "max distinguishing inputs (0 = unlimited)")
	)
	flag.Parse()
	if *lockedPath == "" || *oraclePath == "" {
		fatalf("need -locked FILE and -oracle FILE")
	}
	locked := parse(*lockedPath)
	orig := parse(*oraclePath)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := attack.Run(ctx, "sat", attack.Target{
		Locked:        locked,
		Oracle:        oracle.NewSim(orig),
		MaxIterations: *maxIter,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("status: %s, iterations: %d, oracle queries: %d, elapsed: %v\n",
		res.Status, res.Iterations, res.OracleQueries, res.Elapsed.Round(time.Millisecond))
	if !res.UniqueKey() {
		fmt.Println("attack did not converge (timed out)")
		os.Exit(2)
	}
	key := res.Keys[0]
	fmt.Println("recovered key:")
	names := make([]string, 0, len(key))
	for n := range key {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := 0
		if key[n] {
			v = 1
		}
		fmt.Printf("  %s=%d\n", n, v)
	}
	if err := oracle.CheckKey(locked, oracle.NewSim(orig), key, 1024, 7); err != nil {
		fmt.Printf("warning: key failed random validation: %v\n", err)
		os.Exit(3)
	}
	fmt.Println("key validated against the oracle on 1024 random patterns")
}

func parse(path string) *circuit.Circuit {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	c, err := bench.Parse(f, path)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return c
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "satattack: "+format+"\n", args...)
	os.Exit(1)
}
