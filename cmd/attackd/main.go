// Command attackd is the attack-as-a-service daemon: a long-running
// HTTP/JSON front end over the attack registry. Clients POST a locked
// circuit (BENCH format, plus an optional oracle circuit or key-confirm
// candidate list) with an attack name and solver spec, get a job ID
// back, poll GET /jobs/{id}, stream status via GET /jobs/{id}/events
// (SSE or NDJSON), and fetch the result artifact from
// GET /jobs/{id}/result.
//
//	attackd -addr :8080 -dir /var/lib/attackd
//
// Jobs persist as atomically written JSON files under -dir, so a
// restarted daemon serves finished artifacts and resumes unfinished
// jobs. SIGINT/SIGTERM drain gracefully: dispatch stops, in-flight
// jobs get -drain to finish, stragglers are cancelled mid-solve and go
// back to the queue for the next daemon. Backpressure is explicit:
// a full queue or an over-rate tenant gets 429 + Retry-After.
// Several daemons can share one -dir with -claim-lease: each job is
// guarded by a claim file (the campaign package's O_EXCL + mtime-lease
// discipline), peers adopt each other's finished results from disk,
// and a killed daemon's jobs are re-claimed after one lease.
//
// Observability: structured logs on stderr (-log-format text|json, one
// line per job transition and per API request), Prometheus text
// metrics at GET /metrics.prom alongside the JSON GET /metrics,
// per-job span traces at GET /jobs/{id}/trace (bounded ring of
// -trace-spans spans; analyze with cmd/tracestat), and net/http/pprof
// on a separate listener behind -pprof-addr.
//
// Exit codes: 0 clean shutdown after drain; 1 hard error (stderr
// explains).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/attack"
	_ "repro/internal/attack/all"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		dir         = flag.String("dir", "attackd-jobs", "job store directory (jobs survive restarts)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "job worker-pool size")
		queueDepth  = flag.Int("queue", 256, "bounded job-queue depth; submissions beyond it get 429")
		tenantConc  = flag.Int("tenant-concurrency", 0, "max concurrently running jobs per tenant (X-API-Key header; 0 = unlimited)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant submission rate limit in jobs/second (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 10, "per-tenant submission burst size")
		jobWorkers  = flag.Int("job-workers", runtime.GOMAXPROCS(0), "intra-attack worker cap per job")
		jobTimeout  = flag.Duration("job-timeout", 0, "time budget for jobs that set none (0 = unbounded)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown grace: in-flight jobs get this long to finish before being cancelled back to the queue")
		quiet       = flag.Bool("quiet", false, "suppress per-job and per-request log lines")
		memo        = flag.Bool("memo", false, "share a daemon-global cross-query verdict cache across all jobs (verdicts unchanged; hit counters in /metrics)")
		diskMemo    = flag.Bool("disk-memo", false, "persist the verdict cache under DIR/memo so it survives restarts alongside the job store (implies -memo)")
		memoDir     = flag.String("memo-dir", "", "persistent verdict-store directory (implies -memo; overrides -disk-memo's default location)")
		memoMax     = flag.Int64("memo-max-bytes", 0, "size cap for the on-disk verdict store before LRU eviction (0 = 1 GiB)")
		logFormat   = flag.String("log-format", "text", "structured log format on stderr: text | json")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		traceSpans  = flag.Int("trace-spans", 2048, "per-job span-trace ring capacity served at GET /jobs/{id}/trace (0 = disable per-job tracing)")
		claimLease  = flag.Duration("claim-lease", 0, "coordinate several daemons sharing one -dir via per-job claim files with this staleness lease: peers skip claimed jobs and adopt each other's finished results; a dead daemon's claims expire and its jobs are taken over (0 = single-daemon mode)")
	)
	flag.Parse()

	cfg := server.Config{
		Dir:               *dir,
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		TenantConcurrency: *tenantConc,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		JobWorkers:        *jobWorkers,
		JobTimeout:        *jobTimeout,
		TraceSpans:        *traceSpans,
		ClaimLease:        *claimLease,
	}
	if !*quiet {
		switch *logFormat {
		case "text":
			cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		case "json":
			cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		default:
			fatalf("unknown -log-format %q (want text or json)", *logFormat)
		}
	}
	md := *memoDir
	if md == "" && *diskMemo {
		md = filepath.Join(*dir, "memo")
	}
	if m, err := attack.NewMemoFromFlags(*memo, md, *memoMax); err != nil {
		fatalf("%v", err)
	} else {
		cfg.Memo = m
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	srv.Start()

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on the
		// default mux; the API server uses its own mux, so the profiler
		// is reachable only through this listener.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "attackd: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "attackd: pprof on %s\n", *pprofAddr)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		errCh <- httpSrv.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "attackd: listening on %s, job store %s\n", *addr, *dir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("%v", err)
		}
	}

	// Shutdown order matters: close the listener first so no new jobs
	// arrive, then drain the worker pool. Both phases share the grace
	// budget; after it, in-flight solves are cancelled mid-query (the
	// context-first plumbing makes that safe) and those jobs revert to
	// queued on disk for the next daemon.
	fmt.Fprintln(os.Stderr, "attackd: shutting down, draining jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	srv.Drain(*drain)
	fmt.Fprintln(os.Stderr, "attackd: drained")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "attackd: "+format+"\n", args...)
	os.Exit(1)
}
