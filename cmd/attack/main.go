// Command attack is the generic front end to the unified attack registry:
// any registered attack runs against any locked BENCH netlist through the
// same flags, so a new attack registered with the attack package gets a
// CLI for free.
//
// Usage:
//
//	attack -list
//	attack -name fall -locked locked.bench -h 4
//	attack -name sat -locked locked.bench -oracle original.bench
//	attack -name keyconfirm -locked locked.bench -oracle original.bench key1.txt key2.txt
//
// Trailing arguments are candidate key files (keyinputN=0/1 lines) passed
// to confirmation-style attacks as the φ shortlist.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/attack"
	_ "repro/internal/attack/all"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/oracle"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list registered attacks and exit")
		name       = flag.String("name", "", "attack to run (see -list)")
		lockedPath = flag.String("locked", "", "locked circuit in BENCH format")
		oraclePath = flag.String("oracle", "", "original circuit in BENCH format (oracle; required by oracle-guided attacks)")
		h          = flag.Int("h", 0, "Hamming distance parameter of the locking scheme")
		seed       = flag.Int64("seed", 0, "seed for randomized attack components")
		timeout    = flag.Duration("timeout", 1000*time.Second, "attack time budget (0 = none)")
		maxIter    = flag.Int("maxiter", 0, "iteration cap for iterative attacks (0 = unlimited)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for attacks that parallelize internally (1 = serial)")
		solver     = flag.String("solver", "", "solver engine spec, e.g. seed=3,restart=geometric | kissat | bdd:max-nodes=1<<20 (empty = baseline CDCL; see sat.ParseEngineSpec)")
		portfolio  = flag.String("portfolio", "", "race engines per query, first verdict wins: an integer derives N internal variants, a list like internal,kissat,bdd races heterogeneous backends")
		memo       = flag.Bool("memo", false, "share a cross-query verdict cache across this run's solver queries (verdicts unchanged; hit statistics on stderr)")
		memoDir    = flag.String("memo-dir", "", "persist the verdict cache in DIR, shared across runs (implies -memo; verdicts unchanged)")
		memoMax    = flag.Int64("memo-max-bytes", 0, "size cap for -memo-dir before LRU eviction (0 = 1 GiB)")
		tracePath  = flag.String("trace", "", "write an NDJSON span trace of the run to FILE (verdicts and stdout unchanged; analyze with tracestat)")
		jsonOut    = flag.Bool("json", false, "emit the result as a single JSON document on stdout (recovered netlists print as BENCH on stderr)")
	)
	start := time.Now()
	flag.Parse()
	if *list {
		for _, n := range attack.Names() {
			a, _ := attack.Get(n)
			kind := "oracle-less"
			if a.NeedsOracle() {
				kind = "oracle-guided"
			}
			fmt.Printf("%-12s %s\n", n, kind)
		}
		return
	}
	if *name == "" || *lockedPath == "" {
		fatalf("need -name ATTACK and -locked FILE (or -list)")
	}
	atk, err := attack.Get(*name)
	if err != nil {
		fatalf("%v", err)
	}
	setup, err := attack.SolverSetupFromFlags(*solver, *portfolio)
	if err != nil {
		fatalf("%v", err)
	}
	if err := setup.Check(); err != nil {
		fatalf("%v", err)
	}
	if m, err := attack.NewMemoFromFlags(*memo, *memoDir, *memoMax); err != nil {
		fatalf("%v", err)
	} else if m != nil {
		if setup == nil {
			setup = &attack.SolverSetup{}
		}
		setup.Memo = m
	}
	var tracer *obs.Tracer
	var root *obs.Span
	if *tracePath != "" {
		tracer, err = obs.NewFileTracer(*tracePath)
		if err != nil {
			fatalf("trace: %v", err)
		}
		root = tracer.Start("attack", "attack", *name, "locked", *lockedPath)
		if setup == nil {
			setup = &attack.SolverSetup{}
		}
		setup.TraceTo(root)
	}
	tgt := attack.Target{
		Locked:        parse(*lockedPath),
		H:             *h,
		Seed:          *seed,
		MaxIterations: *maxIter,
		Workers:       *workers,
		Solver:        setup.Factory(),
	}
	if *oraclePath != "" {
		tgt.Oracle = oracle.NewSim(parse(*oraclePath))
	}
	for _, path := range flag.Args() {
		k, err := attack.ReadKeyFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		tgt.Candidates = append(tgt.Candidates, k)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := atk.Run(obs.With(ctx, root), tgt)
	if err != nil {
		fatalf("%v", err)
	}
	setup.FprintWinStats(os.Stderr)
	if st := setup.MemoStats(); st != nil {
		attack.FprintMemoSummary(os.Stderr, setup.Memo, *st, -1)
	}
	setup.Close()
	if tracer != nil {
		// Closed here, after setup.Close emitted the session spans and
		// before the verdict-driven os.Exit paths (which skip defers).
		root.Set("status", res.Status.String())
		root.End()
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "attack: trace: %v\n", err)
		}
	}
	if *jsonOut {
		// The JSON result carries the end-to-end wall clock and the
		// resolved engine labels, the same fields attackd persists in
		// its job artifacts — CLI output and daemon artifacts diff
		// field-for-field.
		j := res.JSON()
		j.WallNS = time.Since(start)
		j.Engines = setup.EngineLabels()
		j.SolveNS = int64(setup.SolveTime())
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(j); err != nil {
			fatalf("encode result: %v", err)
		}
	} else {
		fmt.Printf("attack: %s\nstatus: %s\niterations: %d\noracle queries: %d\nelapsed: %v\n",
			res.Attack, res.Status, res.Iterations, res.OracleQueries, res.Elapsed.Round(time.Millisecond))
		for i, key := range res.Keys {
			fmt.Printf("key %d:\n", i+1)
			names := make([]string, 0, len(key))
			for n := range key {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				v := 0
				if key[n] {
					v = 1
				}
				fmt.Printf("  %s=%d\n", n, v)
			}
		}
	}
	if res.Recovered != nil {
		if *jsonOut {
			// Keep stdout a single parseable JSON document (the result
			// above carries recovered_gates); the netlist goes to stderr
			// for capture via 2>.
			fmt.Fprint(os.Stderr, bench.WriteString(res.Recovered))
		} else {
			fmt.Printf("recovered netlist (%d gates) follows:\n", res.Recovered.NumGates())
			fmt.Print(bench.WriteString(res.Recovered))
		}
	}
	// Exit codes mirror the verdict so scripts and CI can branch on the
	// result without parsing output: 2 = budget expired, 3 = the attack
	// completed but established nothing.
	switch res.Status {
	case attack.StatusTimeout:
		os.Exit(2)
	case attack.StatusInconclusive, attack.StatusRefuted:
		os.Exit(3)
	}
}

func parse(path string) *circuit.Circuit {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	c, err := bench.Parse(f, path)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return c
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "attack: "+format+"\n", args...)
	os.Exit(1)
}
