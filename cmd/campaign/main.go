// Command campaign plans, executes and merges sharded experiment runs:
// the distributed front end to the exp harness. A campaign directory
// holds one plan.json plus an artifacts/ directory with one JSON file
// per completed case.
//
//	campaign plan   -dir camp -scale small -suites table1,summary
//	campaign run    -dir camp -shard-index 0 -shard-count 4   # per machine
//	campaign run    -dir camp -steal -budget 25m              # fleet worker
//	campaign status -dir camp
//	campaign retry  -dir camp                                 # recompute failures
//	campaign merge  -dir camp                                 # render reports
//	campaign merge  -dir camp -rescore                        # replay verdict scoring
//
// Shards partition the plan's cases disjointly and exhaustively for any
// shard count, each shard writes artifacts atomically, and re-running a
// shard (after a crash or kill) skips every case whose artifact already
// exists. With -steal a worker ignores index-modulo and instead claims
// unowned cases one at a time via O_EXCL claim files in the shared
// artifact directory, so any number of heterogeneous workers —
// including ones joining late or dying mid-case — drain the plan
// cooperatively (a dead worker's claim expires by mtime lease and is
// re-stolen). -budget stops a worker from starting new cases once its
// wall clock is spent (in-flight cases finish; exit 4 signals CI to
// resume later), and -times-from reuses a prior run's measured per-case
// wall times as the dispatch/steal order, longest first. retry deletes
// failed artifacts and recomputes exactly those cases. merge renders
// output byte-identical to a monolithic cmd/fallbench run over the same
// measurements — regardless of how the fleet split the work — and —
// when the plan raced solver engines — prints the aggregated per-engine
// win statistics on stderr and persists them as DIR/portfolio_stats.json,
// which a later `campaign run -learn-from` uses to seed its portfolio.
// merge -rescore recomputes each artifact's Solved/Equivalent verdicts
// from its persisted key shortlist (planted-key membership, then the
// equivalence miter) and rewrites changed artifacts — no attack re-runs.
//
// Exit codes: 0 success; 1 hard error (stderr explains); 2 completed
// with failed cases; 3 (status/merge -allow-partial) campaign
// incomplete; 4 (run -budget) budget exhausted with cases remaining —
// re-run to resume.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/genbench"
	"repro/internal/obs"
	"repro/internal/sat"
	"repro/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	args := os.Args[2:]
	switch os.Args[1] {
	case "plan":
		cmdPlan(args)
	case "run":
		cmdRun(args)
	case "retry":
		cmdRetry(args)
	case "merge":
		cmdMerge(args)
	case "status":
		cmdStatus(args)
	case "watch":
		cmdWatch(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: campaign <plan|run|retry|merge|status|watch> [flags]

  plan    enumerate a campaign's cases into DIR/plan.json
  run     execute one shard, writing one artifact per completed case
  retry   delete failed artifacts and recompute exactly those cases
  merge   reassemble artifacts into the Table I / Fig. 5 / Fig. 6 /
          summary reports (byte-identical to a monolithic run)
  status  show per-suite completion counts
  watch   tail the artifact directories, printing per-case completion
          events as they land (same event stream as the attackd daemon)

run 'campaign <subcommand> -h' for flags.
`)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
	os.Exit(1)
}

// dirFlags returns the common -dir/-artifacts flag pair on fs.
func dirFlags(fs *flag.FlagSet) (dir, artifacts *string) {
	dir = fs.String("dir", "", "campaign directory (holds plan.json)")
	artifacts = fs.String("artifacts", "", "artifact directories, comma-separated (default DIR/artifacts)")
	return
}

func artifactDirs(dir, artifacts string) []string {
	if artifacts == "" {
		return []string{filepath.Join(dir, campaign.DefaultArtifactDir)}
	}
	return strings.Split(artifacts, ",")
}

func loadPlan(dir string) *campaign.Plan {
	if dir == "" {
		fatalf("need -dir DIR")
	}
	p, err := campaign.ReadPlan(filepath.Join(dir, campaign.PlanFileName))
	if err != nil {
		fatalf("%v", err)
	}
	return p
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("campaign plan", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory to create the plan in")
	scale := fs.String("scale", "small", "experiment scale: paper | medium | small | tiny")
	seed := fs.Int64("seed", 2019, "base seed")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attack time budget")
	iterCap := fs.Int("satcap", 500, "SAT attack iteration cap (0 = none)")
	enc := fs.String("enc", "adder", "cardinality encoding: adder | seq")
	solver := fs.String("solver", "", "solver engine spec for every attack and scoring miter (empty = baseline CDCL)")
	portfolio := fs.String("portfolio", "", "race engines per solver query: integer width or engine list like internal,kissat,bdd")
	adaptAfter := fs.Int64("adapt-after", 0, "retire an engine mid-run after it loses this many races without a win (0 = never)")
	memoDir := fs.String("memo-dir", "", "record a persistent verdict-store directory in the plan: every shard run attaches the on-disk memo there (verdicts unchanged)")
	suites := fs.String("suites", strings.Join(campaign.DefaultSuites(), ","), "report suites, comma-separated")
	force := fs.Bool("force", false, "overwrite an existing, different plan")
	fs.Parse(args)
	if *dir == "" {
		fatalf("need -dir DIR")
	}

	cfg := campaign.Config{
		Seed:       *seed,
		Timeout:    *timeout,
		SATIterCap: *iterCap,
		Enc:        *enc,
		Solver:     *solver,
		AdaptAfter: *adaptAfter,
		MemoDir:    *memoDir,
		Suites:     strings.Split(*suites, ","),
	}
	// An integer -portfolio keeps the legacy field (and plan hash); an
	// engine list lands in the heterogeneous field.
	if p := strings.TrimSpace(*portfolio); p != "" {
		if n, err := strconv.Atoi(p); err == nil {
			cfg.Portfolio = n
		} else {
			cfg.PortfolioEngines = p
		}
	}
	var err error
	if cfg.Specs, err = genbench.ParseScale(*scale); err != nil {
		fatalf("%v", err)
	}
	p, err := campaign.NewPlan(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	path := filepath.Join(*dir, campaign.PlanFileName)
	if _, statErr := os.Stat(path); statErr == nil {
		// Never clobber an existing plan without -force: its artifacts
		// may still be in flight, and a corrupt or foreign plan file is
		// more reason for a human look, not less.
		old, readErr := campaign.ReadPlan(path)
		switch {
		case readErr == nil && old.Hash == p.Hash:
			fmt.Fprintf(os.Stderr, "campaign: plan unchanged (%d cases, hash %.12s…)\n", len(p.Cases), p.Hash)
			return
		case *force:
		case readErr != nil:
			fatalf("%s exists but is unreadable (%v); pass -force to replace it", path, readErr)
		default:
			fatalf("%s exists with a different plan (hash %.12s…, new %.12s…); pass -force to replace it", path, old.Hash, p.Hash)
		}
	}
	if err := campaign.WritePlan(path, p); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "campaign: planned %d cases into %s (hash %.12s…)\n", len(p.Cases), path, p.Hash)
}

// shardFlags collects the flags shared by run and retry.
type shardFlags struct {
	shardIndex, shardCount, workers  *int
	quiet, memo, diskMemo, steal     *bool
	learnFrom, memoDir, trace, owner *string
	timesFrom, solverOver            *string
	memoMax                          *int64
	lease, budget                    *time.Duration
}

// runFlags declares the flags shared by run and retry on fs.
func runFlags(fs *flag.FlagSet) shardFlags {
	return shardFlags{
		shardIndex: fs.Int("shard-index", 0, "this shard's index in [0, shard-count)"),
		shardCount: fs.Int("shard-count", 1, "total number of shards"),
		workers:    fs.Int("workers", runtime.GOMAXPROCS(0), "cases run concurrently (1 = serial)"),
		quiet:      fs.Bool("quiet", false, "suppress per-case progress lines"),
		steal:      fs.Bool("steal", false, "claim-file work stealing over the shared artifact dir instead of index-modulo sharding (run any number of -steal workers against one dir)"),
		owner:      fs.String("owner", "", "worker identity for claim files and status lines (default host-pid)"),
		lease:      fs.Duration("lease", 0, "claim staleness horizon: an unheartbeated claim older than this is re-stolen (0 = 2m)"),
		budget:     fs.Duration("budget", 0, "wall-clock budget: stop starting/claiming new cases after this long, finish in-flight ones, exit 4 if cases remain (0 = none)"),
		timesFrom:  fs.String("times-from", "", "artifact directories of prior runs, comma-separated; their measured per-case wall times set the dispatch/steal order, longest first"),
		solverOver: fs.String("solver-override", "", "replace the plan's solver engine spec for this worker only (heterogeneous fleets; must be verdict-equivalent to the plan's engine)"),
		memo:       fs.Bool("memo", false, "share a cross-query verdict cache across the shard's cases (verdicts unchanged; hit statistics in artifacts)"),
		diskMemo:   fs.Bool("disk-memo", false, "persist the verdict cache under ARTIFACTS/memo, shared across shards and reruns (implies -memo; verdicts unchanged)"),
		memoDir:    fs.String("memo-dir", "", "persistent verdict-store directory (implies -memo; overrides -disk-memo's default and the plan's memo_dir)"),
		memoMax:    fs.Int64("memo-max-bytes", 0, "size cap for the on-disk verdict store before LRU eviction (0 = 1 GiB)"),
		learnFrom:  fs.String("learn-from", "", "portfolio-stats JSON (e.g. a prior merge's portfolio_stats.json); reorders/prunes the racing engines"),
		trace:      fs.String("trace", "", "write an NDJSON span trace of the shard to FILE (merge per-shard traces with `campaign merge -traces` or tracestat)"),
	}
}

func runShard(name string, args []string, retry bool) {
	fs := flag.NewFlagSet("campaign "+name, flag.ExitOnError)
	dir, artifacts := dirFlags(fs)
	f := runFlags(fs)
	fs.Parse(args)
	p := loadPlan(*dir)
	dirs := artifactDirs(*dir, *artifacts)
	if len(dirs) != 1 {
		fatalf("%s writes to exactly one artifact directory, got %d", name, len(dirs))
	}
	if retry {
		// Delete only the failures this run will recompute: this shard's
		// under index-modulo (deleting plan-wide would orphan other
		// shards' cases), the whole plan's under stealing (every worker
		// draws from the whole plan, so nothing is orphaned).
		var idxs []int
		if !*f.steal {
			count := *f.shardCount
			if count == 0 {
				count = 1
			}
			var err error
			idxs, err = p.ShardIndices(*f.shardIndex, count)
			if err != nil {
				fatalf("%v", err)
			}
		}
		deleted, err := campaign.DeleteFailed(p, dirs[0], idxs)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "campaign: retry: deleted %d failed artifact(s)\n", len(deleted))
	}
	// -memo-dir overrides everything; -disk-memo supplies its default
	// location under the artifact directory unless the plan already
	// records a shared memo_dir (campaign.Run falls back to that).
	memoDir := *f.memoDir
	if memoDir == "" && *f.diskMemo && p.Config.MemoDir == "" {
		memoDir = filepath.Join(dirs[0], "memo")
	}
	opts := campaign.RunOptions{
		ShardIndex:     *f.shardIndex,
		ShardCount:     *f.shardCount,
		Workers:        *f.workers,
		LearnFrom:      *f.learnFrom,
		Memo:           *f.memo,
		MemoDir:        memoDir,
		MemoMaxBytes:   *f.memoMax,
		Trace:          *f.trace,
		Steal:          *f.steal,
		Owner:          *f.owner,
		Lease:          *f.lease,
		Budget:         *f.budget,
		SolverOverride: *f.solverOver,
	}
	if *f.timesFrom != "" {
		opts.TimesFrom = strings.Split(*f.timesFrom, ",")
	}
	if !*f.quiet {
		opts.Log = os.Stderr
	}
	report, err := campaign.Run(context.Background(), p, dirs[0], opts)
	if err != nil {
		fatalf("%v", err)
	}
	if *f.steal {
		fmt.Fprintf(os.Stderr, "campaign: steal: %d cases, %d already done, %d run (%d stolen), %d failed, %d remaining\n",
			report.ShardCases, report.Skipped, report.Ran, report.Stolen, report.Failed, report.Remaining)
	} else {
		fmt.Fprintf(os.Stderr, "campaign: shard %d/%d: %d cases, %d resumed, %d run, %d failed\n",
			*f.shardIndex, *f.shardCount, report.ShardCases, report.Skipped, report.Ran, report.Failed)
	}
	switch {
	case report.BudgetStopped:
		fmt.Fprintf(os.Stderr, "campaign: budget exhausted with %d case(s) remaining; re-run to resume\n", report.Remaining)
		os.Exit(4)
	case report.Failed > 0:
		os.Exit(2)
	}
}

func cmdRun(args []string) { runShard("run", args, false) }

// cmdRetry deletes this plan's failed artifacts and recomputes exactly
// those cases (resume semantics keep every healthy artifact untouched).
func cmdRetry(args []string) { runShard("retry", args, true) }

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("campaign merge", flag.ExitOnError)
	dir, artifacts := dirFlags(fs)
	allowPartial := fs.Bool("allow-partial", false, "render even if some cases have no artifact yet")
	rescore := fs.Bool("rescore", false, "recompute Solved/Equivalent verdicts from each artifact's persisted key shortlist (planted-key membership, then the equivalence miter) and rewrite changed artifacts before rendering — no attack re-runs")
	statsOut := fs.String("stats-out", "", "portfolio-stats JSON path (default DIR/portfolio_stats.json; \"-\" disables)")
	traces := fs.String("traces", "", "per-shard trace files (comma-separated paths or globs); prints one merged tracestat view on stderr")
	fs.Parse(args)
	p := loadPlan(*dir)
	m, err := campaign.Merge(p, artifactDirs(*dir, *artifacts))
	if err != nil {
		fatalf("%v", err)
	}
	if !m.Complete() && !*allowPartial {
		fatalf("campaign incomplete: %d/%d cases have no artifact (first: %s); finish the shards or pass -allow-partial",
			len(m.Missing), len(p.Cases), m.Missing[0])
	}
	if *rescore {
		rep, err := m.Rescore(context.Background())
		if err != nil {
			fatalf("rescore: %v", err)
		}
		fmt.Fprintf(os.Stderr, "campaign: rescore: %d artifact(s) scanned, %d outcome(s) re-scored, %d changed, %d miter key(s)\n",
			rep.Scanned, rep.Rescored, rep.Changed, rep.Miters)
	}
	if err := m.Render(os.Stdout); err != nil {
		fatalf("%v", err)
	}
	// Racing statistics stay off stdout so merges diff byte-identical
	// against monolithic fallbench runs; the JSON snapshot feeds
	// `campaign run -learn-from` on the next campaign.
	if stats := m.WinStats(); len(stats) > 0 && *statsOut != "-" {
		attack.FprintStats(os.Stderr, stats)
		path := *statsOut
		if path == "" {
			path = filepath.Join(*dir, "portfolio_stats.json")
		}
		if err := sat.WriteStatsFile(path, stats); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "campaign: per-engine win statistics written to %s\n", path)
	}
	if st := m.MemoStats(); st != nil {
		if st.DiskHits > 0 || st.Capped > 0 {
			fmt.Fprintf(os.Stderr, "campaign: memo: %d memory hits / %d disk hits / %d misses across artifacts (%d capped)\n",
				st.Hits, st.DiskHits, st.Misses, st.Capped)
		} else {
			fmt.Fprintf(os.Stderr, "campaign: memo: %d hits / %d misses across artifacts\n", st.Hits, st.Misses)
		}
	}
	// A merged tracestat view over the shards' trace files — stderr,
	// like every diagnostic, so merge stdout stays byte-identical to a
	// monolithic fallbench run.
	if *traces != "" {
		var paths []string
		for _, pat := range strings.Split(*traces, ",") {
			pat = strings.TrimSpace(pat)
			if pat == "" {
				continue
			}
			matches, err := filepath.Glob(pat)
			if err != nil {
				fatalf("traces: %v", err)
			}
			if matches == nil {
				fatalf("traces: no files match %q", pat)
			}
			paths = append(paths, matches...)
		}
		files, err := obs.ReadTraceFiles(paths)
		if err != nil {
			fatalf("traces: %v", err)
		}
		obs.Analyze(files, 10).Render(os.Stderr)
	}
	switch {
	case len(m.Failed) > 0:
		fmt.Fprintf(os.Stderr, "campaign: %d case(s) failed (first: %s)\n", len(m.Failed), m.Failed[0])
		os.Exit(2)
	case !m.Complete():
		fmt.Fprintf(os.Stderr, "campaign: partial merge: %d case(s) missing\n", len(m.Missing))
		os.Exit(3)
	}
}

// cmdWatch tails the campaign's artifact directories and prints one
// completion event per case as its artifact lands — the fleet-side
// consumer of the same server.Event stream the attackd daemon serves
// over /jobs/{id}/events. It blocks until the campaign is complete
// (exit 0, or 2 when cases failed) or interrupted (exit 130).
func cmdWatch(args []string) {
	fs := flag.NewFlagSet("campaign watch", flag.ExitOnError)
	dir, artifacts := dirFlags(fs)
	interval := fs.Duration("interval", time.Second, "poll interval")
	ndjson := fs.Bool("ndjson", false, "emit raw NDJSON events (the daemon stream encoding) instead of human-readable lines")
	fs.Parse(args)
	p := loadPlan(*dir)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	failed := 0
	emit := func(ev server.Event) {
		failed = ev.Failed
		if *ndjson {
			server.WriteNDJSON(os.Stdout, ev)
			return
		}
		switch ev.Type {
		case server.EventCase:
			fmt.Printf("campaign: %s %s (%d/%d)\n", ev.Case, ev.Status, ev.Done, ev.Total)
		case server.EventComplete:
			fmt.Printf("campaign: complete, %d/%d cases, %d failed\n", ev.Done, ev.Total, ev.Failed)
		}
	}
	err := server.WatchCampaign(ctx, p, artifactDirs(*dir, *artifacts), *interval, emit)
	switch {
	case err != nil && ctx.Err() != nil:
		os.Exit(130) // interrupted: the conventional SIGINT exit
	case err != nil:
		fatalf("%v", err)
	case failed > 0:
		os.Exit(2)
	}
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	dir, artifacts := dirFlags(fs)
	fs.Parse(args)
	p := loadPlan(*dir)
	s, err := campaign.Status(p, artifactDirs(*dir, *artifacts))
	if err != nil {
		fatalf("%v", err)
	}
	s.Render(os.Stdout)
	switch {
	case s.Failed > 0:
		os.Exit(2)
	case !s.Complete():
		os.Exit(3)
	}
}
