// Command campaign plans, executes and merges sharded experiment runs:
// the distributed front end to the exp harness. A campaign directory
// holds one plan.json plus an artifacts/ directory with one JSON file
// per completed case.
//
//	campaign plan   -dir camp -scale small -suites table1,summary
//	campaign run    -dir camp -shard-index 0 -shard-count 4   # per machine
//	campaign status -dir camp
//	campaign merge  -dir camp                                 # render reports
//
// Shards partition the plan's cases disjointly and exhaustively for any
// shard count, each shard writes artifacts atomically, and re-running a
// shard (after a crash or kill) skips every case whose artifact already
// exists. merge renders output byte-identical to a monolithic
// cmd/fallbench run over the same measurements.
//
// Exit codes: 0 success; 1 hard error (stderr explains); 2 completed
// with failed cases; 3 (status/merge -allow-partial) campaign
// incomplete.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/genbench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	args := os.Args[2:]
	switch os.Args[1] {
	case "plan":
		cmdPlan(args)
	case "run":
		cmdRun(args)
	case "merge":
		cmdMerge(args)
	case "status":
		cmdStatus(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: campaign <plan|run|merge|status> [flags]

  plan    enumerate a campaign's cases into DIR/plan.json
  run     execute one shard, writing one artifact per completed case
  merge   reassemble artifacts into the Table I / Fig. 5 / Fig. 6 /
          summary reports (byte-identical to a monolithic run)
  status  show per-suite completion counts

run 'campaign <subcommand> -h' for flags.
`)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
	os.Exit(1)
}

// dirFlags returns the common -dir/-artifacts flag pair on fs.
func dirFlags(fs *flag.FlagSet) (dir, artifacts *string) {
	dir = fs.String("dir", "", "campaign directory (holds plan.json)")
	artifacts = fs.String("artifacts", "", "artifact directories, comma-separated (default DIR/artifacts)")
	return
}

func artifactDirs(dir, artifacts string) []string {
	if artifacts == "" {
		return []string{filepath.Join(dir, campaign.DefaultArtifactDir)}
	}
	return strings.Split(artifacts, ",")
}

func loadPlan(dir string) *campaign.Plan {
	if dir == "" {
		fatalf("need -dir DIR")
	}
	p, err := campaign.ReadPlan(filepath.Join(dir, campaign.PlanFileName))
	if err != nil {
		fatalf("%v", err)
	}
	return p
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("campaign plan", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory to create the plan in")
	scale := fs.String("scale", "small", "experiment scale: paper | medium | small | tiny")
	seed := fs.Int64("seed", 2019, "base seed")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attack time budget")
	iterCap := fs.Int("satcap", 500, "SAT attack iteration cap (0 = none)")
	enc := fs.String("enc", "adder", "cardinality encoding: adder | seq")
	solver := fs.String("solver", "", "SAT engine configuration for every attack and scoring miter (empty = baseline CDCL)")
	portfolio := fs.Int("portfolio", 0, "race N differently-configured SAT engines per solver query (<2 = single engine)")
	suites := fs.String("suites", strings.Join(campaign.DefaultSuites(), ","), "report suites, comma-separated")
	force := fs.Bool("force", false, "overwrite an existing, different plan")
	fs.Parse(args)
	if *dir == "" {
		fatalf("need -dir DIR")
	}

	cfg := campaign.Config{
		Seed:       *seed,
		Timeout:    *timeout,
		SATIterCap: *iterCap,
		Enc:        *enc,
		Solver:     *solver,
		Portfolio:  *portfolio,
		Suites:     strings.Split(*suites, ","),
	}
	var err error
	if cfg.Specs, err = genbench.ParseScale(*scale); err != nil {
		fatalf("%v", err)
	}
	p, err := campaign.NewPlan(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	path := filepath.Join(*dir, campaign.PlanFileName)
	if _, statErr := os.Stat(path); statErr == nil {
		// Never clobber an existing plan without -force: its artifacts
		// may still be in flight, and a corrupt or foreign plan file is
		// more reason for a human look, not less.
		old, readErr := campaign.ReadPlan(path)
		switch {
		case readErr == nil && old.Hash == p.Hash:
			fmt.Fprintf(os.Stderr, "campaign: plan unchanged (%d cases, hash %.12s…)\n", len(p.Cases), p.Hash)
			return
		case *force:
		case readErr != nil:
			fatalf("%s exists but is unreadable (%v); pass -force to replace it", path, readErr)
		default:
			fatalf("%s exists with a different plan (hash %.12s…, new %.12s…); pass -force to replace it", path, old.Hash, p.Hash)
		}
	}
	if err := campaign.WritePlan(path, p); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "campaign: planned %d cases into %s (hash %.12s…)\n", len(p.Cases), path, p.Hash)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	dir, artifacts := dirFlags(fs)
	shardIndex := fs.Int("shard-index", 0, "this shard's index in [0, shard-count)")
	shardCount := fs.Int("shard-count", 1, "total number of shards")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "cases run concurrently (1 = serial)")
	quiet := fs.Bool("quiet", false, "suppress per-case progress lines")
	fs.Parse(args)
	p := loadPlan(*dir)
	dirs := artifactDirs(*dir, *artifacts)
	if len(dirs) != 1 {
		fatalf("run writes to exactly one artifact directory, got %d", len(dirs))
	}
	opts := campaign.RunOptions{
		ShardIndex: *shardIndex,
		ShardCount: *shardCount,
		Workers:    *workers,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	report, err := campaign.Run(context.Background(), p, dirs[0], opts)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "campaign: shard %d/%d: %d cases, %d resumed, %d run, %d failed\n",
		*shardIndex, *shardCount, report.ShardCases, report.Skipped, report.Ran, report.Failed)
	if report.Failed > 0 {
		os.Exit(2)
	}
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("campaign merge", flag.ExitOnError)
	dir, artifacts := dirFlags(fs)
	allowPartial := fs.Bool("allow-partial", false, "render even if some cases have no artifact yet")
	fs.Parse(args)
	p := loadPlan(*dir)
	m, err := campaign.Merge(p, artifactDirs(*dir, *artifacts))
	if err != nil {
		fatalf("%v", err)
	}
	if !m.Complete() && !*allowPartial {
		fatalf("campaign incomplete: %d/%d cases have no artifact (first: %s); finish the shards or pass -allow-partial",
			len(m.Missing), len(p.Cases), m.Missing[0])
	}
	if err := m.Render(os.Stdout); err != nil {
		fatalf("%v", err)
	}
	switch {
	case len(m.Failed) > 0:
		fmt.Fprintf(os.Stderr, "campaign: %d case(s) failed (first: %s)\n", len(m.Failed), m.Failed[0])
		os.Exit(2)
	case !m.Complete():
		fmt.Fprintf(os.Stderr, "campaign: partial merge: %d case(s) missing\n", len(m.Missing))
		os.Exit(3)
	}
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	dir, artifacts := dirFlags(fs)
	fs.Parse(args)
	p := loadPlan(*dir)
	s, err := campaign.Status(p, artifactDirs(*dir, *artifacts))
	if err != nil {
		fatalf("%v", err)
	}
	s.Render(os.Stdout)
	switch {
	case s.Failed > 0:
		os.Exit(2)
	case !s.Complete():
		os.Exit(3)
	}
}
