// Command fallattack runs the FALL attack (structural + functional
// analyses) on a locked BENCH netlist and prints the shortlisted keys.
// Key inputs must be named keyinput*.
//
// Usage:
//
//	fallattack -in locked.bench -h 4 [-analysis auto|unate|window|dist2h] \
//	           [-timeout 1000s] [-enc adder|seq] [-workers N] \
//	           [-solver spec] [-portfolio N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/cnf"
	"repro/internal/fall"
	"repro/internal/obs"
)

func main() {
	var (
		inPath    = flag.String("in", "", "locked circuit in BENCH format")
		h         = flag.Int("h", 0, "Hamming distance parameter of the locking scheme")
		analysis  = flag.String("analysis", "auto", "functional analysis: auto | unate | window | dist2h")
		timeout   = flag.Duration("timeout", 1000*time.Second, "attack time budget (0 = none)")
		enc       = flag.String("enc", "adder", "cardinality encoding: adder | seq")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "candidate analyses run concurrently (1 = serial; shortlist is identical either way)")
		solver    = flag.String("solver", "", "solver engine spec, e.g. seed=3,restart=geometric | kissat | bdd:max-nodes=1<<20 (empty = baseline CDCL)")
		portfolio = flag.String("portfolio", "", "race engines per analysis query: an integer derives N internal variants, a list like internal,kissat,bdd races heterogeneous backends")
		memo      = flag.Bool("memo", false, "share a cross-query verdict cache across the analyses (verdicts unchanged; hit statistics on stderr)")
		memoDir   = flag.String("memo-dir", "", "persist the verdict cache in DIR, shared across runs (implies -memo; verdicts unchanged)")
		memoMax   = flag.Int64("memo-max-bytes", 0, "size cap for -memo-dir before LRU eviction (0 = 1 GiB)")
		tracePath = flag.String("trace", "", "write an NDJSON span trace of the run to FILE (verdicts and stdout unchanged; analyze with tracestat)")
	)
	flag.Parse()
	if *inPath == "" {
		fatalf("need -in FILE")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		fatalf("%v", err)
	}
	locked, err := bench.Parse(f, *inPath)
	f.Close()
	if err != nil {
		fatalf("parse: %v", err)
	}
	if len(locked.KeyInputs()) == 0 {
		fatalf("no key inputs (named keyinput*) in %s", *inPath)
	}

	var opts fall.Options
	switch *analysis {
	case "auto":
		opts.Analysis = fall.Auto
	case "unate":
		opts.Analysis = fall.Unateness
	case "window":
		opts.Analysis = fall.SlidingWindow
	case "dist2h":
		opts.Analysis = fall.Distance2H
	default:
		fatalf("unknown analysis %q", *analysis)
	}
	switch *enc {
	case "adder":
		opts.Enc = cnf.AdderTree
	case "seq":
		opts.Enc = cnf.SeqCounter
	default:
		fatalf("unknown encoding %q", *enc)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	setup, err := attack.SolverSetupFromFlags(*solver, *portfolio)
	if err != nil {
		fatalf("%v", err)
	}
	if err := setup.Check(); err != nil {
		fatalf("%v", err)
	}
	if m, err := attack.NewMemoFromFlags(*memo, *memoDir, *memoMax); err != nil {
		fatalf("%v", err)
	} else if m != nil {
		if setup == nil {
			setup = &attack.SolverSetup{}
		}
		setup.Memo = m
	}
	var tracer *obs.Tracer
	var root *obs.Span
	if *tracePath != "" {
		tracer, err = obs.NewFileTracer(*tracePath)
		if err != nil {
			fatalf("trace: %v", err)
		}
		root = tracer.Start("fallattack", "locked", *inPath, "h", *h)
		if setup == nil {
			setup = &attack.SolverSetup{}
		}
		setup.TraceTo(root)
	}
	out, err := fall.New(opts).Run(obs.With(ctx, root), attack.Target{Locked: locked, H: *h, Workers: *workers, Solver: setup.Factory()})
	if err != nil {
		fatalf("attack: %v", err)
	}
	setup.FprintWinStats(os.Stderr)
	if st := setup.MemoStats(); st != nil {
		attack.FprintMemoSummary(os.Stderr, setup.Memo, *st, -1)
	}
	setup.Close()
	if tracer != nil {
		// Closed after the session spans and before the os.Exit paths.
		root.Set("status", out.Status.String())
		root.End()
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fallattack: trace: %v\n", err)
		}
	}
	res := out.Details.(*fall.Result)
	fmt.Printf("status: %s\n", out.Status)
	fmt.Printf("comparators: %d (pairing %d circuit inputs)\n", len(res.Comparators), len(res.CompX))
	fmt.Printf("candidate cube-stripper gates: %d\n", len(res.Candidates))
	fmt.Printf("stage times: comparators %v, matching %v, analyses %v (total %v)\n",
		res.ComparatorTime.Round(time.Millisecond), res.MatchTime.Round(time.Millisecond),
		res.AnalysisTime.Round(time.Millisecond), res.Total.Round(time.Millisecond))
	if out.Status == attack.StatusTimeout {
		fmt.Println("timed out before completing all analyses — shortlist may be incomplete")
	}
	if len(res.Keys) == 0 {
		fmt.Println("no keys shortlisted: attack failed on this netlist")
		os.Exit(2)
	}
	fmt.Printf("shortlisted %d key(s)%s:\n", len(res.Keys), uniqNote(out))
	for i, ck := range res.Keys {
		fmt.Printf("key %d (via %s, node %d):\n", i+1, ck.Analysis, ck.Node)
		names := make([]string, 0, len(ck.Key))
		for n := range ck.Key {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			v := 0
			if ck.Key[n] {
				v = 1
			}
			fmt.Printf("  %s=%d\n", n, v)
		}
	}
	if out.Status == attack.StatusTimeout {
		os.Exit(2)
	}
}

func uniqNote(res *attack.Result) string {
	if res.UniqueKey() {
		return " — unique, no oracle access needed"
	}
	return " — use key confirmation with an oracle to pick the correct one"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fallattack: "+format+"\n", args...)
	os.Exit(1)
}
