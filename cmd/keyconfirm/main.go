// Command keyconfirm runs the key confirmation algorithm (paper §V) on a
// locked BENCH netlist: given candidate key files (keyinputN=0/1 lines,
// as written by lockgen or fallattack output redirection), it confirms
// which candidate (if any) is consistent with the oracle.
//
// Usage:
//
//	keyconfirm -locked locked.bench -oracle original.bench key1.txt key2.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/keyconfirm"
	"repro/internal/oracle"
)

func main() {
	var (
		lockedPath = flag.String("locked", "", "locked circuit in BENCH format")
		oraclePath = flag.String("oracle", "", "original circuit in BENCH format (simulated activated IC)")
		timeout    = flag.Duration("timeout", 1000*time.Second, "time budget (0 = none)")
		pureAlg4   = flag.Bool("pure", false, "disable the double-DIP acceleration (paper Algorithm 4 verbatim)")
	)
	flag.Parse()
	if *lockedPath == "" || *oraclePath == "" {
		fatalf("need -locked FILE and -oracle FILE")
	}
	locked := parse(*lockedPath)
	orig := parse(*oraclePath)

	var cands []map[string]bool
	for _, path := range flag.Args() {
		k, err := readKeyFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		cands = append(cands, k)
	}
	if len(cands) == 0 {
		fmt.Fprintln(os.Stderr, "keyconfirm: no candidate key files; running with phi=true (full SAT attack mode)")
	}

	opts := keyconfirm.Options{DisableDoubleDIP: *pureAlg4}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}
	res, err := keyconfirm.Confirm(locked, cands, oracle.NewSim(orig), opts)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("iterations: %d, oracle queries: %d, elapsed: %v\n",
		res.Iterations, res.OracleQueries, res.Elapsed.Round(time.Millisecond))
	if res.TimedOut {
		fmt.Println("timed out before a verdict")
		os.Exit(2)
	}
	if !res.Confirmed {
		fmt.Println("⊥ — no candidate key is consistent with the oracle")
		os.Exit(3)
	}
	fmt.Println("confirmed key:")
	names := make([]string, 0, len(res.Key))
	for n := range res.Key {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := 0
		if res.Key[n] {
			v = 1
		}
		fmt.Printf("  %s=%d\n", n, v)
	}
}

func readKeyFile(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	key := make(map[string]bool)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: expected name=0/1, got %q", path, line, text)
		}
		name := strings.TrimSpace(parts[0])
		switch strings.TrimSpace(parts[1]) {
		case "0":
			key[name] = false
		case "1":
			key[name] = true
		default:
			return nil, fmt.Errorf("%s:%d: bad key bit %q", path, line, parts[1])
		}
	}
	return key, sc.Err()
}

func parse(path string) *circuit.Circuit {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	c, err := bench.Parse(f, path)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return c
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "keyconfirm: "+format+"\n", args...)
	os.Exit(1)
}
