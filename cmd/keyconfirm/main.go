// Command keyconfirm runs the key confirmation algorithm (paper §V) on a
// locked BENCH netlist: given candidate key files (keyinputN=0/1 lines,
// as written by lockgen or fallattack output redirection), it confirms
// which candidate (if any) is consistent with the oracle.
//
// Usage:
//
//	keyconfirm -locked locked.bench -oracle original.bench key1.txt key2.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/keyconfirm"
	"repro/internal/obs"
	"repro/internal/oracle"
)

func main() {
	var (
		lockedPath = flag.String("locked", "", "locked circuit in BENCH format")
		oraclePath = flag.String("oracle", "", "original circuit in BENCH format (simulated activated IC)")
		timeout    = flag.Duration("timeout", 1000*time.Second, "time budget (0 = none)")
		pureAlg4   = flag.Bool("pure", false, "disable the double-DIP acceleration (paper Algorithm 4 verbatim)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "key-space partitions searched concurrently in phi=true mode (1 = serial)")
		solver     = flag.String("solver", "", "solver engine spec, e.g. seed=3,restart=geometric | kissat | bdd:max-nodes=1<<20 (empty = baseline CDCL)")
		portfolio  = flag.String("portfolio", "", "race engines per query: an integer derives N internal variants, a list like internal,kissat,bdd races heterogeneous backends")
		memo       = flag.Bool("memo", false, "share a cross-query verdict cache across the P/Q/D solvers (verdicts unchanged; hit statistics on stderr)")
		memoDir    = flag.String("memo-dir", "", "persist the verdict cache in DIR, shared across runs (implies -memo; verdicts unchanged)")
		memoMax    = flag.Int64("memo-max-bytes", 0, "size cap for -memo-dir before LRU eviction (0 = 1 GiB)")
		tracePath  = flag.String("trace", "", "write an NDJSON span trace of the run to FILE (verdicts and stdout unchanged; analyze with tracestat)")
	)
	flag.Parse()
	if *lockedPath == "" || *oraclePath == "" {
		fatalf("need -locked FILE and -oracle FILE")
	}
	locked := parse(*lockedPath)
	orig := parse(*oraclePath)

	var cands []attack.Key
	for _, path := range flag.Args() {
		k, err := attack.ReadKeyFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		cands = append(cands, k)
	}
	if len(cands) == 0 {
		fmt.Fprintln(os.Stderr, "keyconfirm: no candidate key files; running with phi=true (full SAT attack mode)")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	setup, err := attack.SolverSetupFromFlags(*solver, *portfolio)
	if err != nil {
		fatalf("%v", err)
	}
	if err := setup.Check(); err != nil {
		fatalf("%v", err)
	}
	if m, err := attack.NewMemoFromFlags(*memo, *memoDir, *memoMax); err != nil {
		fatalf("%v", err)
	} else if m != nil {
		if setup == nil {
			setup = &attack.SolverSetup{}
		}
		setup.Memo = m
	}
	var tracer *obs.Tracer
	var root *obs.Span
	if *tracePath != "" {
		tracer, err = obs.NewFileTracer(*tracePath)
		if err != nil {
			fatalf("trace: %v", err)
		}
		root = tracer.Start("keyconfirm", "locked", *lockedPath, "candidates", len(cands))
		if setup == nil {
			setup = &attack.SolverSetup{}
		}
		setup.TraceTo(root)
	}
	ctx = obs.With(ctx, root)
	atk := keyconfirm.New(keyconfirm.Options{DisableDoubleDIP: *pureAlg4})
	res, err := atk.Run(ctx, attack.Target{
		Locked:     locked,
		Oracle:     oracle.NewSim(orig),
		Candidates: cands,
		Workers:    *workers,
		Solver:     setup.Factory(),
	})
	if err != nil {
		fatalf("%v", err)
	}
	setup.FprintWinStats(os.Stderr)
	if st := setup.MemoStats(); st != nil {
		attack.FprintMemoSummary(os.Stderr, setup.Memo, *st, -1)
	}
	setup.Close()
	if tracer != nil {
		// Closed after the session spans and before the os.Exit paths.
		root.Set("status", res.Status.String())
		root.End()
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "keyconfirm: trace: %v\n", err)
		}
	}
	fmt.Printf("status: %s, iterations: %d, oracle queries: %d, elapsed: %v\n",
		res.Status, res.Iterations, res.OracleQueries, res.Elapsed.Round(time.Millisecond))
	if res.Status == attack.StatusTimeout {
		fmt.Println("timed out before a verdict")
		os.Exit(2)
	}
	if !res.UniqueKey() {
		fmt.Println("⊥ — no candidate key is consistent with the oracle")
		os.Exit(3)
	}
	key := res.Keys[0]
	fmt.Println("confirmed key:")
	names := make([]string, 0, len(key))
	for n := range key {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := 0
		if key[n] {
			v = 1
		}
		fmt.Printf("  %s=%d\n", n, v)
	}
}

func parse(path string) *circuit.Circuit {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	c, err := bench.Parse(f, path)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return c
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "keyconfirm: "+format+"\n", args...)
	os.Exit(1)
}
