// Command tracestat analyzes NDJSON span traces written by the attack
// CLIs (-trace FILE), campaign shards, or fetched from an attackd
// job's trace endpoint: per-phase, per-engine and per-query-family
// cost breakdowns, the top-N slowest solver queries, and memo /
// persistent-session efficiency. Multiple files merge into one view
// (the fleet case: one trace per shard).
//
//	tracestat trace.ndjson
//	tracestat -top 20 shard-*.ndjson
//	tracestat -reconcile result.json trace.ndjson
//
// -reconcile cross-checks the trace against an attack artifact
// (cmd/attack -json output or an attackd job artifact): the summed
// query-span wall must cover at least 95% of the artifact's solve_ns,
// or the exit code is 1 — the CI guard that spans actually account
// for the solver time the artifact reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	var (
		topN      = flag.Int("top", 10, "slowest queries to list")
		reconcile = flag.String("reconcile", "", "attack result JSON to reconcile query spans against (solve_ns coverage must be >= threshold)")
		threshold = flag.Float64("threshold", 0.95, "minimum solve_ns coverage for -reconcile")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-top N] [-reconcile result.json] TRACE.ndjson...")
		os.Exit(1)
	}
	files, err := obs.ReadTraceFiles(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	rep := obs.Analyze(files, *topN)
	rep.Render(os.Stdout)

	if *reconcile != "" {
		solveNS, err := readSolveNS(*reconcile)
		if err != nil {
			fatalf("reconcile: %v", err)
		}
		cov := rep.Reconcile(solveNS)
		fmt.Printf("reconcile: spans cover %.1f%% of artifact solve_ns (%d / %d)\n",
			100*cov, rep.QueryNS, solveNS)
		if cov < *threshold {
			fmt.Fprintf(os.Stderr, "tracestat: coverage %.1f%% below threshold %.1f%%\n",
				100*cov, 100**threshold)
			os.Exit(1)
		}
	}
}

// readSolveNS extracts solve_ns from an attack result document: either
// a cmd/attack -json result (top-level solve_ns) or an attackd job
// artifact (result.solve_ns).
func readSolveNS(path string) (int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		SolveNS int64 `json:"solve_ns"`
		Result  *struct {
			SolveNS int64 `json:"solve_ns"`
		} `json:"result"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if doc.SolveNS > 0 {
		return doc.SolveNS, nil
	}
	if doc.Result != nil {
		return doc.Result.SolveNS, nil
	}
	return 0, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracestat: "+format+"\n", args...)
	os.Exit(1)
}
