// Command fallbench regenerates the paper's evaluation artifacts:
//
//	fallbench -table1                 # Table I: benchmark statistics
//	fallbench -fig5 hd0|h8|h4|h3      # Fig. 5 panels: cactus series
//	fallbench -fig6                   # Fig. 6: key confirmation vs SAT attack
//	fallbench -summary                # §VI-B: defeated / unique-key stats
//
// Scale control:
//
//	-scale paper   full Table I dimensions (keys up to 64)
//	-scale small   1/8 gate counts, keys capped at 16 (default)
//	-scale tiny    1/16 gate counts, keys capped at 12, 6 circuits
//	-timeout 5s    per-attack budget (paper: 1000 s)
//	-workers N     suite cases run concurrently (default: all cores;
//	               output is identical for every worker count)
//	-solver SPEC   solver engine spec: an internal config
//	               (seed=3,restart=geometric), an external DIMACS
//	               solver (kissat, process:cmd=/path), or the BDD
//	               engine (bdd:max-nodes=1<<20)
//	-portfolio P   race engines per solver query: an integer derives N
//	               internal variants, a list (internal,kissat,bdd)
//	               races heterogeneous backends; decided verdicts are
//	               identical for every mix
//	-learn-from F  reorder/prune the engine list from a prior run's
//	               portfolio-stats file before racing
//	-adapt-after N retire an engine mid-run once it has lost N races
//	               without a win
//	-stats-out F   persist the aggregated per-engine win statistics as
//	               JSON (feeds -learn-from of a later run)
//	-memo          share a cross-query verdict cache across every attack
//	               and scoring miter (verdicts unchanged; hit statistics
//	               and per-case encode/solve splits land on stderr)
//	-memo-dir D    persist the verdict cache in D (implies -memo): reruns
//	               and concurrent shards pointed at the same directory
//	               answer repeated queries from disk; verdicts unchanged
//	-memo-max-bytes N  size cap for the on-disk cache before
//	               least-recently-used records are evicted (0 = 1 GiB)
//	-trace F       write an NDJSON span trace of the whole suite to F
//	               (stdout unchanged; analyze with cmd/tracestat)
//
// Results go to stdout, diagnostics — including the aggregated
// per-engine portfolio win statistics — to stderr, so racing runs diff
// clean against single-engine runs. The exit code is 0 on success, 1 on
// a hard error, and 2 when some attack runs failed (their rows are
// still printed). To split a run across machines, use cmd/campaign with
// the same flags — a merged campaign renders byte-identical output to
// this command.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/attack"
	"repro/internal/cnf"
	"repro/internal/exp"
	"repro/internal/genbench"
	"repro/internal/obs"
	"repro/internal/sat"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "regenerate Table I")
		fig5       = flag.String("fig5", "", "regenerate a Fig. 5 panel: hd0 | h8 | h4 | h3")
		fig6       = flag.Bool("fig6", false, "regenerate Fig. 6")
		summary    = flag.Bool("summary", false, "regenerate the §VI-B summary statistics")
		scale      = flag.String("scale", "small", "experiment scale: paper | medium | small | tiny")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-attack time budget")
		iterCap    = flag.Int("satcap", 500, "SAT attack iteration cap (0 = none)")
		seed       = flag.Int64("seed", 2019, "base seed")
		enc        = flag.String("enc", "adder", "cardinality encoding: adder | seq")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "suite cases run concurrently (1 = serial; output is identical either way)")
		solver     = flag.String("solver", "", "solver engine spec for every attack and scoring miter (empty = baseline CDCL)")
		portfolio  = flag.String("portfolio", "", "race engines per solver query: integer width or engine list like internal,kissat,bdd")
		learnFrom  = flag.String("learn-from", "", "portfolio-stats JSON from a prior run; reorders/prunes the engine list before racing")
		adaptAfter = flag.Int64("adapt-after", 0, "retire an engine mid-run after it loses this many races without a win (0 = never)")
		statsOut   = flag.String("stats-out", "", "write the aggregated per-engine win statistics to this JSON file")
		memo       = flag.Bool("memo", false, "share a cross-query verdict cache across every attack and scoring miter (verdicts unchanged; hit statistics on stderr)")
		memoDir    = flag.String("memo-dir", "", "persist the verdict cache in DIR, shared across runs (implies -memo; verdicts unchanged)")
		memoMax    = flag.Int64("memo-max-bytes", 0, "size cap for -memo-dir before LRU eviction (0 = 1 GiB)")
		tracePath  = flag.String("trace", "", "write an NDJSON span trace of the whole suite to FILE (stdout unchanged; analyze with tracestat)")
	)
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Timeout: *timeout, SATIterCap: *iterCap, Workers: *workers}
	var err error
	if cfg.Specs, err = genbench.ParseScale(*scale); err != nil {
		fatalf("%v", err)
	}
	if cfg.Enc, err = cnf.ParseCardEncoding(*enc); err != nil {
		fatalf("%v", err)
	}
	if err := cfg.ApplySolverFlags(*solver, *portfolio); err != nil {
		fatalf("%v", err)
	}
	cfg.AdaptAfter = *adaptAfter
	if len(cfg.Engines) > 0 {
		if *learnFrom != "" {
			prior, err := sat.ReadStatsFile(*learnFrom)
			if err != nil {
				fatalf("learn-from: %v", err)
			}
			cfg.Engines = sat.LearnedConfigs(cfg.Engines, prior, *adaptAfter)
		}
		if err := attack.NewSolverSetupEngines(cfg.Engines).Check(); err != nil {
			fatalf("%v", err)
		}
		if *adaptAfter > 0 {
			cfg.Adapt = sat.NewLedgerLabels(sat.EngineLabels(cfg.Engines))
		}
	} else if *adaptAfter > 0 || *learnFrom != "" {
		fatalf("-adapt-after/-learn-from need a -portfolio engine list to act on")
	}
	if cfg.Memo, err = attack.NewMemoFromFlags(*memo, *memoDir, *memoMax); err != nil {
		fatalf("%v", err)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		var err error
		if tracer, err = obs.NewFileTracer(*tracePath); err != nil {
			fatalf("trace: %v", err)
		}
		cfg.Trace = tracer.Start("fallbench", "scale", *scale, "seed", *seed)
	}

	var level exp.HLevel
	if *fig5 != "" {
		if level, err = exp.ParseHLevel(*fig5); err != nil {
			fatalf("unknown fig5 panel %q", *fig5)
		}
	}
	if !*table1 && *fig5 == "" && !*fig6 && !*summary {
		flag.Usage()
		os.Exit(1)
	}

	// Build the locked suite once; every requested report shares it.
	ctx := context.Background()
	cases, err := exp.BuildSuite(cfg)
	if err != nil {
		fatalf("suite: %v", err)
	}

	failed := 0
	var allOuts []exp.Outcome
	var allFigs []exp.Fig6CaseResult
	if *table1 {
		rows, err := exp.Table1FromCases(cases, cfg)
		if err != nil {
			fatalf("table1: %v", err)
		}
		fmt.Println("=== Table I (regenerated) ===")
		fmt.Print(exp.FormatTable1(rows))
	}
	if *fig5 != "" {
		fmt.Printf("=== Fig. 5 panel %s (%s) ===\n", *fig5, level.Label())
		outs := exp.Fig5Panel(ctx, cases, level, cfg)
		for _, o := range outs {
			if o.Failed {
				failed++
			}
		}
		allOuts = append(allOuts, outs...)
		fmt.Print(exp.FormatCactus(outs, exp.Fig5AttackNames(level)))
	}
	if *fig6 {
		fmt.Println("=== Fig. 6: key confirmation vs SAT attack ===")
		results := exp.Fig6Results(ctx, cases, cfg)
		for _, r := range results {
			if r.Failed() {
				failed++
			}
		}
		allFigs = append(allFigs, results...)
		fmt.Print(exp.FormatFig6(exp.AggregateFig6(results)))
	}
	if *summary {
		fmt.Println("=== §VI-B summary ===")
		outs := exp.SummaryOutcomes(ctx, cases, cfg)
		s := exp.AggregateSummary(outs)
		failed += s.Failed
		allOuts = append(allOuts, outs...)
		fmt.Print(exp.FormatSummary(s))
	}
	// Per-case encode/solve wall-time split (recorded whenever a solver
	// setup exists): solve is the time spent inside the SAT engines, the
	// remainder is encoding and attack bookkeeping. Stderr like every
	// diagnostic, so stdout diffs stay clean.
	printSplit := func(label string, total time.Duration, solveNS int64) {
		if solveNS <= 0 {
			return
		}
		encode := total - time.Duration(solveNS)
		if encode < 0 {
			encode = 0
		}
		fmt.Fprintf(os.Stderr, "case %-32s encode=%-12v solve=%v\n",
			label, encode.Round(time.Microsecond), time.Duration(solveNS).Round(time.Microsecond))
	}
	for _, o := range allOuts {
		printSplit(fmt.Sprintf("%s/%s/%s", o.Circuit, o.Level.Token(), o.Attack), o.Time, o.SolveNS)
	}
	for i := range allFigs {
		r := &allFigs[i]
		printSplit(fmt.Sprintf("%s/%s/keyconfirm", r.Circuit, r.Level.Token()), r.KCElapsed, r.KCSolveNS)
		printSplit(fmt.Sprintf("%s/%s/%s", r.SA.Circuit, r.SA.Level.Token(), r.SA.Attack), r.SA.Time, r.SA.SolveNS)
	}
	// Racing statistics go to stderr: stdout must stay verdict-only so
	// portfolio runs diff byte-identical against single-engine runs.
	if stats := exp.WinStats(allOuts, allFigs); len(stats) > 0 {
		attack.FprintStats(os.Stderr, stats)
		if *statsOut != "" {
			if err := sat.WriteStatsFile(*statsOut, stats); err != nil {
				fatalf("stats-out: %v", err)
			}
		}
	}
	if cfg.Memo != nil {
		attack.FprintMemoSummary(os.Stderr, cfg.Memo, cfg.Memo.Stats(), cfg.Memo.Len())
	}
	if tracer != nil {
		// Closed before the failure exit path (os.Exit skips defers).
		cfg.Trace.End()
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fallbench: trace: %v\n", err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fallbench: %d attack run(s) failed\n", failed)
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fallbench: "+format+"\n", args...)
	os.Exit(1)
}
