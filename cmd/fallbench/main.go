// Command fallbench regenerates the paper's evaluation artifacts:
//
//	fallbench -table1                 # Table I: benchmark statistics
//	fallbench -fig5 hd0|h8|h4|h3      # Fig. 5 panels: cactus series
//	fallbench -fig6                   # Fig. 6: key confirmation vs SAT attack
//	fallbench -summary                # §VI-B: defeated / unique-key stats
//
// Scale control:
//
//	-scale paper   full Table I dimensions (keys up to 64)
//	-scale small   1/8 gate counts, keys capped at 16 (default)
//	-scale tiny    1/16 gate counts, keys capped at 12, 6 circuits
//	-timeout 5s    per-attack budget (paper: 1000 s)
//	-workers N     suite cases run concurrently (default: all cores;
//	               output is identical for every worker count)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cnf"
	"repro/internal/exp"
	"repro/internal/fall"
	"repro/internal/genbench"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "regenerate Table I")
		fig5    = flag.String("fig5", "", "regenerate a Fig. 5 panel: hd0 | h8 | h4 | h3")
		fig6    = flag.Bool("fig6", false, "regenerate Fig. 6")
		summary = flag.Bool("summary", false, "regenerate the §VI-B summary statistics")
		scale   = flag.String("scale", "small", "experiment scale: paper | medium | small | tiny")
		timeout = flag.Duration("timeout", 5*time.Second, "per-attack time budget")
		iterCap = flag.Int("satcap", 500, "SAT attack iteration cap (0 = none)")
		seed    = flag.Int64("seed", 2019, "base seed")
		enc     = flag.String("enc", "adder", "cardinality encoding: adder | seq")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "suite cases run concurrently (1 = serial; output is identical either way)")
	)
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Timeout: *timeout, SATIterCap: *iterCap, Workers: *workers}
	switch *scale {
	case "paper":
		cfg.Specs = genbench.TableI
	case "medium":
		cfg.Specs = genbench.Scaled(genbench.TableI, 4, 24)
	case "small":
		cfg.Specs = genbench.Scaled(genbench.TableI, 8, 16)
	case "tiny":
		cfg.Specs = genbench.Scaled(genbench.TableI, 16, 12)[:6]
	default:
		fatalf("unknown scale %q", *scale)
	}
	switch *enc {
	case "adder":
		cfg.Enc = cnf.AdderTree
	case "seq":
		cfg.Enc = cnf.SeqCounter
	default:
		fatalf("unknown encoding %q", *enc)
	}

	ctx := context.Background()
	ran := false
	if *table1 {
		ran = true
		rows, err := exp.Table1(cfg)
		if err != nil {
			fatalf("table1: %v", err)
		}
		fmt.Println("=== Table I (regenerated) ===")
		fmt.Print(exp.FormatTable1(rows))
	}
	if *fig5 != "" {
		ran = true
		var level exp.HLevel
		var attacks []string
		switch *fig5 {
		case "hd0":
			level = exp.HD0
			attacks = []string{"SAT-Attack", fall.Unateness.String()}
		case "h8":
			level = exp.HM8
			attacks = []string{"SAT-Attack", fall.SlidingWindow.String(), fall.Distance2H.String()}
		case "h4":
			level = exp.HM4
			attacks = []string{"SAT-Attack", fall.SlidingWindow.String(), fall.Distance2H.String()}
		case "h3":
			level = exp.HM3
			attacks = []string{"SAT-Attack", fall.SlidingWindow.String()}
		default:
			fatalf("unknown fig5 panel %q", *fig5)
		}
		cases, err := exp.BuildSuite(cfg)
		if err != nil {
			fatalf("suite: %v", err)
		}
		fmt.Printf("=== Fig. 5 panel %s (%s) ===\n", *fig5, level.Label())
		outs := exp.Fig5Panel(ctx, cases, level, cfg)
		fmt.Print(exp.FormatCactus(outs, attacks))
	}
	if *fig6 {
		ran = true
		cases, err := exp.BuildSuite(cfg)
		if err != nil {
			fatalf("suite: %v", err)
		}
		fmt.Println("=== Fig. 6: key confirmation vs SAT attack ===")
		fmt.Print(exp.FormatFig6(exp.Fig6(ctx, cases, cfg)))
	}
	if *summary {
		ran = true
		cases, err := exp.BuildSuite(cfg)
		if err != nil {
			fatalf("suite: %v", err)
		}
		fmt.Println("=== §VI-B summary ===")
		fmt.Print(exp.FormatSummary(exp.Summarize(ctx, cases, cfg)))
	}
	if !ran {
		flag.Usage()
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fallbench: "+format+"\n", args...)
	os.Exit(1)
}
