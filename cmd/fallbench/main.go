// Command fallbench regenerates the paper's evaluation artifacts:
//
//	fallbench -table1                 # Table I: benchmark statistics
//	fallbench -fig5 hd0|h8|h4|h3      # Fig. 5 panels: cactus series
//	fallbench -fig6                   # Fig. 6: key confirmation vs SAT attack
//	fallbench -summary                # §VI-B: defeated / unique-key stats
//
// Scale control:
//
//	-scale paper   full Table I dimensions (keys up to 64)
//	-scale small   1/8 gate counts, keys capped at 16 (default)
//	-scale tiny    1/16 gate counts, keys capped at 12, 6 circuits
//	-timeout 5s    per-attack budget (paper: 1000 s)
//	-workers N     suite cases run concurrently (default: all cores;
//	               output is identical for every worker count)
//	-solver SPEC   SAT engine configuration (sat.ParseConfig syntax)
//	-portfolio N   race N configured engines per solver query
//	               (decided verdicts are identical for every width)
//
// Results go to stdout, diagnostics to stderr. The exit code is 0 on
// success, 1 on a hard error, and 2 when some attack runs failed (their
// rows are still printed). To split a run across machines, use
// cmd/campaign with the same flags — a merged campaign renders
// byte-identical output to this command.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cnf"
	"repro/internal/exp"
	"repro/internal/genbench"
	"repro/internal/sat"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table I")
		fig5      = flag.String("fig5", "", "regenerate a Fig. 5 panel: hd0 | h8 | h4 | h3")
		fig6      = flag.Bool("fig6", false, "regenerate Fig. 6")
		summary   = flag.Bool("summary", false, "regenerate the §VI-B summary statistics")
		scale     = flag.String("scale", "small", "experiment scale: paper | medium | small | tiny")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-attack time budget")
		iterCap   = flag.Int("satcap", 500, "SAT attack iteration cap (0 = none)")
		seed      = flag.Int64("seed", 2019, "base seed")
		enc       = flag.String("enc", "adder", "cardinality encoding: adder | seq")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "suite cases run concurrently (1 = serial; output is identical either way)")
		solver    = flag.String("solver", "", "SAT engine configuration for every attack and scoring miter (empty = baseline CDCL)")
		portfolio = flag.Int("portfolio", 0, "race N differently-configured SAT engines per solver query (<2 = single engine; decided verdicts are identical either way)")
	)
	flag.Parse()

	cfg := exp.Config{Seed: *seed, Timeout: *timeout, SATIterCap: *iterCap, Workers: *workers, Portfolio: *portfolio}
	var err error
	if cfg.Specs, err = genbench.ParseScale(*scale); err != nil {
		fatalf("%v", err)
	}
	if cfg.Enc, err = cnf.ParseCardEncoding(*enc); err != nil {
		fatalf("%v", err)
	}
	if *solver != "" {
		if cfg.Solver, err = sat.ParseConfig(*solver); err != nil {
			fatalf("%v", err)
		}
	}

	var level exp.HLevel
	if *fig5 != "" {
		if level, err = exp.ParseHLevel(*fig5); err != nil {
			fatalf("unknown fig5 panel %q", *fig5)
		}
	}
	if !*table1 && *fig5 == "" && !*fig6 && !*summary {
		flag.Usage()
		os.Exit(1)
	}

	// Build the locked suite once; every requested report shares it.
	ctx := context.Background()
	cases, err := exp.BuildSuite(cfg)
	if err != nil {
		fatalf("suite: %v", err)
	}

	failed := 0
	if *table1 {
		rows, err := exp.Table1FromCases(cases, cfg)
		if err != nil {
			fatalf("table1: %v", err)
		}
		fmt.Println("=== Table I (regenerated) ===")
		fmt.Print(exp.FormatTable1(rows))
	}
	if *fig5 != "" {
		fmt.Printf("=== Fig. 5 panel %s (%s) ===\n", *fig5, level.Label())
		outs := exp.Fig5Panel(ctx, cases, level, cfg)
		for _, o := range outs {
			if o.Failed {
				failed++
			}
		}
		fmt.Print(exp.FormatCactus(outs, exp.Fig5AttackNames(level)))
	}
	if *fig6 {
		fmt.Println("=== Fig. 6: key confirmation vs SAT attack ===")
		results := exp.Fig6Results(ctx, cases, cfg)
		for _, r := range results {
			if r.Failed() {
				failed++
			}
		}
		fmt.Print(exp.FormatFig6(exp.AggregateFig6(results)))
	}
	if *summary {
		fmt.Println("=== §VI-B summary ===")
		s := exp.Summarize(ctx, cases, cfg)
		failed += s.Failed
		fmt.Print(exp.FormatSummary(s))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fallbench: %d attack run(s) failed\n", failed)
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fallbench: "+format+"\n", args...)
	os.Exit(1)
}
