// Command lockgen locks a combinational circuit with TTLock, SFLL-HDh,
// RLL, SARLock or Anti-SAT and writes the locked netlist in BENCH format
// plus the correct key.
//
// Usage:
//
//	lockgen -in circuit.bench -algo sfll -keys 32 -h 4 -seed 1 \
//	        -out locked.bench -keyout key.txt
//
// With -gen NAME instead of -in, the circuit is generated from the
// built-in Table I benchmark suite (e.g. -gen c432).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/genbench"
	"repro/internal/lock"
)

func main() {
	var (
		inPath  = flag.String("in", "", "input circuit in BENCH format")
		genName = flag.String("gen", "", "generate a Table I benchmark by name instead of reading -in")
		algo    = flag.String("algo", "sfll", "locking algorithm: ttlock | sfll | rll | sarlock | antisat")
		keys    = flag.Int("keys", 16, "key size in bits")
		h       = flag.Int("h", 0, "Hamming distance parameter for sfll")
		seed    = flag.Int64("seed", 1, "random seed")
		noOpt   = flag.Bool("no-opt", false, "skip AIG structural-hash optimization")
		outPath = flag.String("out", "", "output locked BENCH file (default stdout)")
		keyOut  = flag.String("keyout", "", "output key file (default stderr)")
	)
	flag.Parse()

	var orig *circuit.Circuit
	switch {
	case *genName != "":
		spec, ok := genbench.ByName(*genName)
		if !ok {
			fatalf("unknown benchmark %q", *genName)
		}
		var err error
		orig, err = genbench.Generate(spec, *seed)
		if err != nil {
			fatalf("generate: %v", err)
		}
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("%v", err)
		}
		orig, err = bench.Parse(f, *inPath)
		f.Close()
		if err != nil {
			fatalf("parse: %v", err)
		}
	default:
		fatalf("need -in FILE or -gen NAME")
	}

	opts := lock.Options{KeySize: *keys, H: *h, Seed: *seed, Optimize: !*noOpt}
	if *algo == "none" {
		// Emit the (generated or parsed) circuit unlocked — the oracle
		// netlist for cmd/satattack and cmd/keyconfirm.
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			out = f
		}
		if err := bench.Write(out, orig); err != nil {
			fatalf("write: %v", err)
		}
		return
	}
	var res *lock.Result
	var err error
	switch *algo {
	case "ttlock":
		res, err = lock.TTLock(orig, opts)
	case "sfll":
		res, err = lock.SFLLHD(orig, opts)
	case "rll":
		res, err = lock.RandomXOR(orig, opts)
	case "sarlock":
		res, err = lock.SARLock(orig, opts)
	case "antisat":
		res, err = lock.AntiSAT(orig, opts)
	default:
		fatalf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fatalf("lock: %v", err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		out = f
	}
	if err := bench.Write(out, res.Locked); err != nil {
		fatalf("write: %v", err)
	}

	keyDst := os.Stderr
	if *keyOut != "" {
		f, err := os.Create(*keyOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		keyDst = f
	}
	names := make([]string, 0, len(res.Key))
	for n := range res.Key {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := 0
		if res.Key[n] {
			v = 1
		}
		fmt.Fprintf(keyDst, "%s=%d\n", n, v)
	}
	fmt.Fprintf(os.Stderr, "locked %s with %s: %d gates -> %d gates, %d key bits\n",
		orig.Name, res.Algorithm, orig.NumGates(), res.Locked.NumGates(), len(res.Key))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lockgen: "+format+"\n", args...)
	os.Exit(1)
}
