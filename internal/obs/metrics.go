package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a small
// registry of counters, gauges, and histograms rendered in the
// Prometheus text exposition format (version 0.0.4). Dynamic label
// sets — per-tenant load, per-engine wins, jobs by state — are
// covered by collector callbacks sampled at scrape time, so the
// daemon never has to pre-register a metric per tenant.

// Label is one name="value" pair. Labels render in the order given.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative-bucket histogram over float64
// observations (Prometheus _bucket/_sum/_count semantics).
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []uint64  // per-bound counts (non-cumulative internally)
	inf     uint64
	sum     float64
	count   uint64
}

// DefaultLatencyBuckets spans 100µs to ~100s in half-decade steps —
// wide enough for both memo hits and external-solver stragglers.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
	h.inf++
}

func (h *Histogram) snapshot() (bounds []float64, cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = h.bounds
	cum = make([]uint64, len(h.buckets))
	var acc uint64
	for i, c := range h.buckets {
		acc += c
		cum[i] = acc
	}
	return bounds, cum, h.sum, h.count
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Sample is one labeled value emitted by a collector callback.
type Sample struct {
	Labels []Label
	Value  float64
}

type registration struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	collect    func() []Sample
}

// Registry holds registered metrics and renders them as Prometheus
// text. Registration order is preserved in the output.
type Registry struct {
	mu   sync.Mutex
	regs []*registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a counter metric.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&registration{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge metric.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&registration{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (nil selects DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{bounds: bounds, buckets: make([]uint64, len(bounds))}
	r.add(&registration{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// CollectCounter registers a counter-typed collector callback sampled
// at every scrape — the mechanism for dynamic label sets.
func (r *Registry) CollectCounter(name, help string, fn func() []Sample) {
	r.add(&registration{name: name, help: help, kind: kindCounter, collect: fn})
}

// CollectGauge registers a gauge-typed collector callback.
func (r *Registry) CollectGauge(name, help string, fn func() []Sample) {
	r.add(&registration{name: name, help: help, kind: kindGauge, collect: fn})
}

func (r *Registry) add(reg *registration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regs = append(r.regs, reg)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	regs := make([]*registration, len(r.regs))
	copy(regs, r.regs)
	r.mu.Unlock()

	var b strings.Builder
	for _, reg := range regs {
		fmt.Fprintf(&b, "# HELP %s %s\n", reg.name, escapeHelp(reg.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", reg.name, reg.kind)
		switch {
		case reg.collect != nil:
			samples := reg.collect()
			sort.SliceStable(samples, func(i, j int) bool {
				return labelKey(samples[i].Labels) < labelKey(samples[j].Labels)
			})
			for _, s := range samples {
				fmt.Fprintf(&b, "%s%s %s\n", reg.name, renderLabels(s.Labels), formatFloat(s.Value))
			}
		case reg.kind == kindCounter:
			fmt.Fprintf(&b, "%s %d\n", reg.name, reg.counter.Value())
		case reg.kind == kindGauge:
			fmt.Fprintf(&b, "%s %d\n", reg.name, reg.gauge.Value())
		case reg.kind == kindHistogram:
			bounds, cum, sum, count := reg.hist.snapshot()
			for i, ub := range bounds {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", reg.name, formatFloat(ub), cum[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", reg.name, count)
			fmt.Fprintf(&b, "%s_sum %s\n", reg.name, formatFloat(sum))
			fmt.Fprintf(&b, "%s_count %d\n", reg.name, count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func labelKey(ls []Label) string {
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(l.Value))
		b.WriteString("\"")
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
