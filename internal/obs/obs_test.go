package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// collectSink records emitted spans in order.
type collectSink struct{ spans []SpanData }

func (c *collectSink) Emit(sp SpanData) { c.spans = append(c.spans, sp) }
func (c *collectSink) Close() error     { return nil }

func TestSpanHierarchy(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	root := tr.Start("attack", "name", "fall")
	phase := root.Child("phase")
	q := phase.Child("query", "engine", "internal")
	q.Set("verdict", "UNSAT")
	q.EndAfter(5 * time.Millisecond)
	phase.End()
	root.End()

	if len(sink.spans) != 3 {
		t.Fatalf("emitted %d spans, want 3", len(sink.spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range sink.spans {
		byName[sp.Name] = sp
	}
	if byName["attack"].Parent != 0 {
		t.Errorf("root parent %d, want 0", byName["attack"].Parent)
	}
	if byName["phase"].Parent != byName["attack"].ID {
		t.Errorf("phase parent %d, want %d", byName["phase"].Parent, byName["attack"].ID)
	}
	if byName["query"].Parent != byName["phase"].ID {
		t.Errorf("query parent %d, want %d", byName["query"].Parent, byName["phase"].ID)
	}
	if byName["query"].DurNS != int64(5*time.Millisecond) {
		t.Errorf("EndAfter dur %d, want %d", byName["query"].DurNS, int64(5*time.Millisecond))
	}
	if byName["query"].Attrs["verdict"] != "UNSAT" || byName["query"].Attrs["engine"] != "internal" {
		t.Errorf("query attrs: %v", byName["query"].Attrs)
	}
	// Ending twice emits once.
	root.End()
	if len(sink.spans) != 3 {
		t.Errorf("double End emitted again: %d spans", len(sink.spans))
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "k", "v")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	// Every span method must no-op on nil.
	child := sp.Child("y")
	child.Set("k", 1)
	child.End()
	child.EndAfter(time.Second)
	if sp.ID() != 0 || child.ID() != 0 {
		t.Error("nil span has a nonzero ID")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil tracer Close: %v", err)
	}
	// A nil span leaves the context untouched.
	if got := SpanFrom(With(t.Context(), nil)); got != nil {
		t.Errorf("nil span stored in context: %v", got)
	}
}

func TestRingBounds(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(SpanData{ID: uint64(i)})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i].ID != want {
			t.Errorf("slot %d: id %d, want %d (oldest-first)", i, got[i].ID, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("lifetime total %d, want 5", r.Total())
	}
}

func TestFileSinkAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.ndjson")
	tr, err := NewFileTracer(path)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Start("run")
	root.Child("query", "engine", "internal").EndAfter(time.Millisecond)
	root.End()

	// Before Close only the temp file exists — a killed run never leaves
	// a half-written trace under the final name.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("trace file visible before Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "trace.ndjson" {
		t.Fatalf("dir after Close: %v", ents)
	}

	// Round-trip: the file parses back to the emitted spans.
	tf, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.Spans) != 2 {
		t.Fatalf("read %d spans, want 2", len(tf.Spans))
	}
	if tf.Spans[0].Name != "query" || tf.Spans[1].Name != "run" {
		t.Errorf("span order: %q, %q (children end first)", tf.Spans[0].Name, tf.Spans[1].Name)
	}
	if tf.Spans[0].Parent != tf.Spans[1].ID {
		t.Errorf("parent link lost in round-trip: %d vs %d", tf.Spans[0].Parent, tf.Spans[1].ID)
	}
	if eng, ok := tf.Spans[0].Attrs["engine"].(string); !ok || eng != "internal" {
		t.Errorf("attrs round-trip: %v", tf.Spans[0].Attrs)
	}
}

func TestReadSpansBadLine(t *testing.T) {
	_, err := ReadSpans(strings.NewReader("{\"id\":1,\"name\":\"a\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("bad line not located: %v", err)
	}
}

func TestAnalyzeAndReconcile(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	root := tr.Start("attack")
	phase := root.Child("fall.analysis")
	cell := phase.Child("fall.cell")
	q1 := cell.Child("query", "engine", "internal")
	q1.Set("memo", "miss")
	q1.EndAfter(10 * time.Millisecond)
	q2 := cell.Child("query", "engine", "internal")
	q2.Set("memo", "memory")
	q2.Set("cancel", "context canceled")
	q2.EndAfter(2 * time.Millisecond)
	q3 := cell.Child("query", "engine", "internal")
	q3.Set("memo", "disk")
	q3.EndAfter(0)
	cell.End()
	phase.EndAfter(20 * time.Millisecond)
	sess := root.Child("session", "cmd", "stub", "spawns", 2, "broken", 0)
	sess.EndAfter(0)
	root.End()

	rep := Analyze([]*TraceFile{{Path: "mem", Spans: sink.spans}}, 5)
	if rep.Spans != len(sink.spans) || rep.Queries != 3 {
		t.Fatalf("spans %d queries %d", rep.Spans, rep.Queries)
	}
	want := int64(12 * time.Millisecond)
	if rep.QueryNS != want {
		t.Errorf("QueryNS %d, want %d", rep.QueryNS, want)
	}
	if rep.MemoHits != 1 || rep.MemoDisk != 1 || rep.MemoMiss != 1 || rep.Cancelled != 1 {
		t.Errorf("memo/cancel: hits=%d disk=%d miss=%d cancelled=%d",
			rep.MemoHits, rep.MemoDisk, rep.MemoMiss, rep.Cancelled)
	}
	// The query family is the parent span's name.
	if len(rep.Families) != 1 || rep.Families[0].Name != "fall.cell" || rep.Families[0].Count != 3 {
		t.Errorf("families: %+v", rep.Families)
	}
	if len(rep.Sessions) != 1 || rep.Sessions[0].Spawns != 2 {
		t.Errorf("sessions: %+v", rep.Sessions)
	}
	if len(rep.Slowest) != 3 || rep.Slowest[0].DurNS < rep.Slowest[1].DurNS {
		t.Errorf("slowest ordering: %+v", rep.Slowest)
	}
	if cov := rep.Reconcile(want); cov != 1 {
		t.Errorf("exact reconcile coverage %v, want 1", cov)
	}
	var b strings.Builder
	rep.Render(&b)
	for _, frag := range []string{"fall.cell", "internal", "memo:", "session"} {
		if !strings.Contains(b.String(), frag) {
			t.Errorf("render missing %q:\n%s", frag, b.String())
		}
	}
}
