package obs

import (
	"regexp"
	"strings"
	"testing"
)

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs submitted.")
	c.Add(3)
	g := r.Gauge("queue_depth", "Queued jobs.")
	g.Set(2)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)
	r.CollectGauge("tenant_jobs", "Per-tenant load.", func() []Sample {
		return []Sample{
			{Labels: []Label{{Key: "tenant", Value: "z"}}, Value: 1},
			{Labels: []Label{{Key: "tenant", Value: `a"b\c`}}, Value: 2},
		}
	})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs submitted.\n# TYPE jobs_total counter\njobs_total 3\n",
		"# TYPE queue_depth gauge\nqueue_depth 2\n",
		"lat_seconds_bucket{le=\"0.1\"} 1\n",
		"lat_seconds_bucket{le=\"1\"} 2\n",
		"lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"lat_seconds_sum 10.55\n",
		"lat_seconds_count 3\n",
		`tenant_jobs{tenant="a\"b\\c"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Collector samples render sorted by label key — deterministic scrapes.
	if strings.Index(out, `tenant="a`) > strings.Index(out, `tenant="z"`) {
		t.Errorf("collector samples unsorted:\n%s", out)
	}

	// Every non-comment line must match the exposition grammar:
	// name{labels} value.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE+.]+(Inf)?$`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}
