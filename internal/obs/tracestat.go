package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// This file is the analysis half of tracing: it reads NDJSON trace
// files back into spans and aggregates them into the per-phase /
// per-engine / per-query-family cost breakdown that cmd/tracestat
// prints and `campaign merge -traces` reuses for merged fleet views.
// Span ids are only unique within one trace file (each process's
// tracer counts from 1), so parentage is resolved per file.

// TraceFile is one parsed trace: the spans of a single process run.
type TraceFile struct {
	Path  string
	Spans []SpanData
}

// ReadSpans parses NDJSON spans from r. Blank lines are skipped; a
// malformed line is an error carrying its line number.
func ReadSpans(r io.Reader) ([]SpanData, error) {
	var spans []SpanData
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" {
			continue
		}
		var sp SpanData
		if err := json.Unmarshal([]byte(txt), &sp); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// ReadTraceFile parses one NDJSON trace file.
func ReadTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spans, err := ReadSpans(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &TraceFile{Path: path, Spans: spans}, nil
}

// ReadTraceFiles parses many trace files.
func ReadTraceFiles(paths []string) ([]*TraceFile, error) {
	files := make([]*TraceFile, 0, len(paths))
	for _, p := range paths {
		tf, err := ReadTraceFile(p)
		if err != nil {
			return nil, err
		}
		files = append(files, tf)
	}
	return files, nil
}

// BucketStat is one row of an aggregation (per phase, engine, or
// query family).
type BucketStat struct {
	Name    string
	Count   int64
	TotalNS int64
	MaxNS   int64
}

// QueryStat is one solver query with enough context to rank it.
type QueryStat struct {
	File    string
	Family  string // name of the enclosing (parent) span
	Engine  string
	Verdict string
	DurNS   int64
	Attrs   map[string]any
}

// SessionStat is one persistent solver session (emitted at
// SolverSetup.Close).
type SessionStat struct {
	Cmd    string
	Spawns int64
	Broken bool
}

// Report is the aggregate view over one or many trace files.
type Report struct {
	Files     int
	Spans     int
	Queries   int64
	QueryNS   int64 // total solver wall across query spans
	Phases    []BucketStat
	Engines   []BucketStat
	Families  []BucketStat
	Slowest   []QueryStat
	MemoHits  int64 // in-memory (L1) verdict-cache hits
	MemoDisk  int64 // on-disk (L2) verdict-cache hits
	MemoMiss  int64
	Cancelled int64
	Sessions  []SessionStat
}

func attrString(attrs map[string]any, key string) string {
	if v, ok := attrs[key]; ok {
		return fmt.Sprint(v)
	}
	return ""
}

func attrInt(attrs map[string]any, key string) int64 {
	switch v := attrs[key].(type) {
	case float64:
		return int64(v)
	case int64:
		return v
	case int:
		return int64(v)
	}
	return 0
}

type bucketAcc struct {
	order []string
	m     map[string]*BucketStat
}

func newBucketAcc() *bucketAcc { return &bucketAcc{m: make(map[string]*BucketStat)} }

func (a *bucketAcc) add(name string, ns int64) {
	b, ok := a.m[name]
	if !ok {
		b = &BucketStat{Name: name}
		a.m[name] = b
		a.order = append(a.order, name)
	}
	b.Count++
	b.TotalNS += ns
	if ns > b.MaxNS {
		b.MaxNS = ns
	}
}

func (a *bucketAcc) sorted() []BucketStat {
	out := make([]BucketStat, 0, len(a.order))
	for _, n := range a.order {
		out = append(out, *a.m[n])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Analyze aggregates the trace files into a Report keeping the topN
// slowest queries (topN <= 0 selects 10).
func Analyze(files []*TraceFile, topN int) *Report {
	if topN <= 0 {
		topN = 10
	}
	rep := &Report{Files: len(files)}
	phases := newBucketAcc()
	engines := newBucketAcc()
	families := newBucketAcc()
	var queries []QueryStat
	for _, tf := range files {
		rep.Spans += len(tf.Spans)
		byID := make(map[uint64]*SpanData, len(tf.Spans))
		for i := range tf.Spans {
			byID[tf.Spans[i].ID] = &tf.Spans[i]
		}
		for i := range tf.Spans {
			sp := &tf.Spans[i]
			switch sp.Name {
			case "query":
				rep.Queries++
				rep.QueryNS += sp.DurNS
				family := "(root)"
				if p, ok := byID[sp.Parent]; ok {
					family = p.Name
				}
				engine := attrString(sp.Attrs, "engine")
				if engine == "" {
					engine = "internal"
				}
				engines.add(engine, sp.DurNS)
				families.add(family, sp.DurNS)
				switch attrString(sp.Attrs, "memo") {
				case "hit", "memory": // "hit" is the pre-disk-tier spelling
					rep.MemoHits++
				case "disk":
					rep.MemoDisk++
				case "miss":
					rep.MemoMiss++
				}
				if attrString(sp.Attrs, "cancel") != "" {
					rep.Cancelled++
				}
				queries = append(queries, QueryStat{
					File:    tf.Path,
					Family:  family,
					Engine:  engine,
					Verdict: attrString(sp.Attrs, "verdict"),
					DurNS:   sp.DurNS,
					Attrs:   sp.Attrs,
				})
			case "session":
				rep.Sessions = append(rep.Sessions, SessionStat{
					Cmd:    attrString(sp.Attrs, "cmd"),
					Spawns: attrInt(sp.Attrs, "spawns"),
					Broken: attrString(sp.Attrs, "broken") == "true",
				})
			default:
				phases.add(sp.Name, sp.DurNS)
			}
		}
	}
	rep.Phases = phases.sorted()
	rep.Engines = engines.sorted()
	rep.Families = families.sorted()
	sort.SliceStable(queries, func(i, j int) bool { return queries[i].DurNS > queries[j].DurNS })
	if len(queries) > topN {
		queries = queries[:topN]
	}
	rep.Slowest = queries
	return rep
}

func dur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func renderBuckets(w io.Writer, title string, rows []BucketStat) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%s:\n", title)
	for _, b := range rows {
		fmt.Fprintf(w, "  %-40s count %6d  total %12s  max %12s\n",
			b.Name, b.Count, dur(b.TotalNS), dur(b.MaxNS))
	}
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "trace files: %d, spans: %d, solver queries: %d, solver wall: %s\n",
		r.Files, r.Spans, r.Queries, dur(r.QueryNS))
	renderBuckets(w, "phases", r.Phases)
	renderBuckets(w, "engines (query spans)", r.Engines)
	renderBuckets(w, "query families", r.Families)
	if total := r.MemoHits + r.MemoDisk + r.MemoMiss; total > 0 {
		fmt.Fprintf(w, "memo: %d memory hits / %d disk hits / %d misses (%.1f%% hit rate)\n",
			r.MemoHits, r.MemoDisk, r.MemoMiss, 100*float64(r.MemoHits+r.MemoDisk)/float64(total))
	}
	if r.Cancelled > 0 {
		fmt.Fprintf(w, "cancelled queries: %d\n", r.Cancelled)
	}
	if len(r.Sessions) > 0 {
		var spawns int64
		broken := 0
		for _, s := range r.Sessions {
			spawns += s.Spawns
			if s.Broken {
				broken++
			}
		}
		fmt.Fprintf(w, "persistent sessions: %d (spawns %d, broken %d)\n",
			len(r.Sessions), spawns, broken)
		for _, s := range r.Sessions {
			state := "ok"
			if s.Broken {
				state = "broken"
			}
			fmt.Fprintf(w, "  %-40s spawns %3d  %s\n", s.Cmd, s.Spawns, state)
		}
	}
	if len(r.Slowest) > 0 {
		fmt.Fprintf(w, "slowest queries:\n")
		for i, q := range r.Slowest {
			fmt.Fprintf(w, "  %2d. %12s  %-10s %-24s %s\n",
				i+1, dur(q.DurNS), q.Verdict, q.Engine, q.Family)
		}
	}
}

// Reconcile compares the report's per-query solver wall against an
// artifact-reported solve_ns total and returns the covered fraction
// (1 when both are zero). Query spans time exactly the same window as
// the artifact's solve accumulator, so a healthy trace covers ~100%.
func (r *Report) Reconcile(artifactSolveNS int64) float64 {
	if artifactSolveNS <= 0 {
		if r.QueryNS == 0 {
			return 1
		}
		return 0
	}
	return float64(r.QueryNS) / float64(artifactSolveNS)
}
