// Package obs is the repo's dependency-free observability layer:
// hierarchical tracing spans (attack → phase → grid cell / query
// family → individual solver query), pluggable span sinks (NDJSON
// files written with the campaign store's atomic temp+rename
// discipline, bounded in-memory rings for the daemon), and a
// Prometheus-text-format metrics registry.
//
// The tracer is nil-safe end to end: every method on a nil *Tracer or
// nil *Span is a no-op, so instrumented code paths carry exactly one
// nil check when tracing is off and default outputs stay
// byte-identical. Spans are emitted to their sink on End; emission
// order across goroutines is unspecified (analysis reconstructs the
// hierarchy from parent ids), which keeps hot paths lock-free except
// for the sink append itself.
package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is the serialized form of one finished span — one NDJSON
// line in a trace file.
type SpanData struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"` // unix nanoseconds
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Sink receives finished spans. Implementations must be safe for
// concurrent Emit calls (grid workers end spans in parallel).
type Sink interface {
	Emit(SpanData)
	Close() error
}

// Tracer mints spans against one sink. The zero of usefulness is a
// nil *Tracer, whose Start returns a nil *Span: the whole
// instrumentation surface degrades to no-ops.
type Tracer struct {
	sink Sink
	next atomic.Uint64
}

// New returns a tracer emitting to sink.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink}
}

// NewFileTracer opens an NDJSON FileSink at path and returns a tracer
// over it. Close the tracer to flush and atomically publish the file.
func NewFileTracer(path string) (*Tracer, error) {
	fs, err := NewFileSink(path)
	if err != nil {
		return nil, err
	}
	return New(fs), nil
}

// Start begins a root span. kv are alternating attribute key/value
// pairs. Nil-safe.
func (t *Tracer) Start(name string, kv ...any) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(0, name, kv)
}

// Close closes the underlying sink (flushing file sinks). Nil-safe.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Close()
}

func (t *Tracer) newSpan(parent uint64, name string, kv []any) *Span {
	s := &Span{t: t, id: t.next.Add(1), parent: parent, name: name, start: time.Now()}
	s.setAll(kv)
	return s
}

// Span is one node of a trace. All methods are nil-safe so call sites
// never branch on whether tracing is enabled.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Child begins a sub-span. kv are alternating attribute key/value
// pairs. Nil-safe: a nil receiver returns a nil child.
func (s *Span) Child(name string, kv ...any) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.id, name, kv)
}

// Set records one attribute. Nil-safe.
func (s *Span) Set(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = val
	s.mu.Unlock()
}

func (s *Span) setAll(kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		if k, ok := kv[i].(string); ok {
			s.Set(k, kv[i+1])
		}
	}
}

// ID returns the span id (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End finishes the span, measuring its duration from Start, and emits
// it to the tracer's sink. Ending twice emits once. Nil-safe.
func (s *Span) End() {
	s.endWith(time.Since(s.startTime()))
}

// EndAfter finishes the span with an explicit duration — used by the
// solver query layer so a span's dur_ns equals the timed solve wall
// exactly (attribute bookkeeping happens outside the measured window).
func (s *Span) EndAfter(d time.Duration) {
	s.endWith(d)
}

func (s *Span) startTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

func (s *Span) endWith(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	if s.t == nil || s.t.sink == nil {
		return
	}
	s.t.sink.Emit(SpanData{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.start.UnixNano(),
		DurNS:   int64(d),
		Attrs:   attrs,
	})
}

type ctxKey struct{}

// With returns ctx carrying sp as the current span (ctx unchanged for
// a nil span).
func With(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFrom returns the current span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// FileSink writes spans as NDJSON to a temporary file in the target
// directory and renames it into place on Close — the same atomic
// discipline the campaign artifact store uses, so a killed run never
// leaves a half-written trace under the final name.
type FileSink struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	dst string
	err error
}

// NewFileSink creates the sink. The final file appears at path only
// when Close succeeds.
func NewFileSink(path string) (*FileSink, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f, w: bufio.NewWriter(f), dst: path}, nil
}

// Emit appends one span line. Write errors are sticky and surface
// from Close.
func (s *FileSink) Emit(sp SpanData) {
	b, err := json.Marshal(sp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.w == nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
	}
}

// Close flushes and atomically renames the temp file to its final
// path (removing the temp file instead if any write failed).
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return s.err
	}
	f, w := s.f, s.w
	s.f, s.w = nil, nil
	if s.err == nil {
		s.err = w.Flush()
	}
	if err := f.Close(); err != nil && s.err == nil {
		s.err = err
	}
	if s.err != nil {
		os.Remove(f.Name())
		return s.err
	}
	s.err = os.Rename(f.Name(), s.dst)
	if s.err != nil {
		os.Remove(f.Name())
	}
	return s.err
}

// Ring is a bounded in-memory span sink: the daemon keeps one per job
// so traces are inspectable over HTTP without unbounded growth. When
// full, the oldest spans are overwritten.
type Ring struct {
	mu    sync.Mutex
	buf   []SpanData
	next  int
	wrap  bool
	total int64
}

// NewRing returns a ring holding at most capacity spans (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]SpanData, 0, capacity)}
}

// Emit records a span, evicting the oldest when full.
func (r *Ring) Emit(sp SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, sp)
		return
	}
	r.buf[r.next] = sp
	r.next = (r.next + 1) % cap(r.buf)
	r.wrap = true
}

// Close is a no-op (rings live as long as their job record).
func (r *Ring) Close() error { return nil }

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, 0, len(r.buf))
	if r.wrap {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns how many spans were emitted over the ring's lifetime
// (including evicted ones).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
