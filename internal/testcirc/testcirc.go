// Package testcirc provides circuit constructors and equivalence helpers
// shared by test suites across the repository. It is not part of the
// public attack/lock API.
package testcirc

import (
	"math/rand"

	"repro/internal/circuit"
)

// Fig2a builds the paper's running example circuit (Fig. 2a):
// y = (a AND b) OR (b AND c) OR (c AND a) OR d.
func Fig2a() *circuit.Circuit {
	c := circuit.New("fig2a")
	a := c.AddInput("a")
	b := c.AddInput("b")
	cc := c.AddInput("c")
	d := c.AddInput("d")
	ab := c.MustGate("ab", circuit.And, a, b)
	bc := c.MustGate("bc", circuit.And, b, cc)
	ca := c.MustGate("ca", circuit.And, cc, a)
	y := c.MustGate("y", circuit.Or, ab, bc, ca, d)
	c.MarkOutput(y)
	return c
}

// C17 builds the smallest ISCAS'85 benchmark (6 NAND gates).
func C17() *circuit.Circuit {
	c := circuit.New("c17")
	g1 := c.AddInput("G1")
	g2 := c.AddInput("G2")
	g3 := c.AddInput("G3")
	g6 := c.AddInput("G6")
	g7 := c.AddInput("G7")
	g10 := c.MustGate("G10", circuit.Nand, g1, g3)
	g11 := c.MustGate("G11", circuit.Nand, g3, g6)
	g16 := c.MustGate("G16", circuit.Nand, g2, g11)
	g19 := c.MustGate("G19", circuit.Nand, g11, g7)
	g22 := c.MustGate("G22", circuit.Nand, g10, g16)
	g23 := c.MustGate("G23", circuit.Nand, g16, g19)
	c.MarkOutput(g22)
	c.MarkOutput(g23)
	return c
}

// Random builds a random layered combinational circuit with nIn inputs and
// nGates gates whose last gate is an output. An XOR "spine" threads all
// inputs through the circuit so the output's support covers every input,
// which locking requires.
func Random(rng *rand.Rand, nIn, nGates int) *circuit.Circuit {
	c := circuit.New("rand")
	ins := make([]int, nIn)
	for i := range ins {
		ins[i] = c.AddInput("")
	}
	ids := append([]int(nil), ins...)
	// Spine: acc accumulates all inputs so at least one node has full
	// support.
	acc := ins[0]
	spineGates := 0
	for i := 1; i < nIn && spineGates < nGates-1; i++ {
		acc = c.MustGate("", circuit.Xor, acc, ins[i])
		ids = append(ids, acc)
		spineGates++
	}
	types := []circuit.GateType{
		circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
		circuit.Xor, circuit.Xnor, circuit.Not,
	}
	for i := spineGates; i < nGates-1; i++ {
		gt := types[rng.Intn(len(types))]
		n := 1
		if gt != circuit.Not {
			n = 2
		}
		fanins := make([]int, n)
		for j := range fanins {
			// Bias toward recent nodes for depth.
			if rng.Intn(2) == 0 && len(ids) > 8 {
				fanins[j] = ids[len(ids)-1-rng.Intn(8)]
			} else {
				fanins[j] = ids[rng.Intn(len(ids))]
			}
		}
		ids = append(ids, c.MustGate("", gt, fanins...))
	}
	// Final gate mixes the spine tail (full support) with the soup.
	last := c.MustGate("", circuit.Xor, acc, ids[len(ids)-1])
	c.MarkOutput(last)
	return c
}

// EquivalentByName compares two circuits on trials random patterns,
// matching inputs by name. Inputs present in only one circuit get
// independent random values (callers should ensure interfaces match when
// that matters). It returns false at the first output disagreement.
func EquivalentByName(c1, c2 *circuit.Circuit, trials int, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		a1 := map[int]bool{}
		a2 := map[int]bool{}
		for _, id := range c1.Inputs() {
			v := rng.Intn(2) == 1
			a1[id] = v
			if id2, ok := c2.NodeByName(c1.Nodes[id].Name); ok {
				a2[id2] = v
			}
		}
		for _, id := range c2.Inputs() {
			if _, done := a2[id]; !done {
				a2[id] = rng.Intn(2) == 1
			}
		}
		o1 := c1.EvalOutputs(a1)
		o2 := c2.EvalOutputs(a2)
		if len(o1) != len(o2) {
			return false
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
	}
	return true
}

// LockedAgreesWithOriginal checks that the locked circuit under the given
// key computes the original function on trials random patterns.
func LockedAgreesWithOriginal(orig, locked *circuit.Circuit, key map[string]bool, trials int, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		aOrig := map[int]bool{}
		aLock := map[int]bool{}
		for _, id := range orig.PrimaryInputs() {
			v := rng.Intn(2) == 1
			aOrig[id] = v
			if id2, ok := locked.NodeByName(orig.Nodes[id].Name); ok {
				aLock[id2] = v
			}
		}
		for name, v := range key {
			if id, ok := locked.NodeByName(name); ok {
				aLock[id] = v
			}
		}
		o1 := orig.EvalOutputs(aOrig)
		o2 := locked.EvalOutputs(aLock)
		if len(o1) != len(o2) {
			return false
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
	}
	return true
}
