package aig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestAndRules(t *testing.T) {
	g := New()
	a := g.AddInput("a", false)
	b := g.AddInput("b", false)
	if got := g.And(a, False); got != False {
		t.Error("a AND 0 != 0")
	}
	if got := g.And(True, b); got != b {
		t.Error("1 AND b != b")
	}
	if got := g.And(a, a); got != a {
		t.Error("a AND a != a")
	}
	if got := g.And(a, a.Not()); got != False {
		t.Error("a AND ~a != 0")
	}
	ab1 := g.And(a, b)
	ab2 := g.And(b, a)
	if ab1 != ab2 {
		t.Error("structural hashing missed commuted operands")
	}
	if g.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", g.NumAnds())
	}
}

func TestXorMuxSemantics(t *testing.T) {
	// Verify Xor and Mux through ToCircuit simulation.
	g := New()
	a := g.AddInput("a", false)
	b := g.AddInput("b", false)
	s := g.AddInput("s", false)
	g.AddOutput("x", g.Xor(a, b))
	g.AddOutput("m", g.Mux(s, a, b))
	c := g.ToCircuit("t")
	ia, _ := c.NodeByName("a")
	ib, _ := c.NodeByName("b")
	is, _ := c.NodeByName("s")
	for p := 0; p < 8; p++ {
		va, vb, vs := p&1 == 1, p&2 == 2, p&4 == 4
		outs := c.EvalOutputs(map[int]bool{ia: va, ib: vb, is: vs})
		if outs[0] != (va != vb) {
			t.Errorf("xor(%v,%v) = %v", va, vb, outs[0])
		}
		wantM := vb
		if vs {
			wantM = va
		}
		if outs[1] != wantM {
			t.Errorf("mux(%v,%v,%v) = %v", vs, va, vb, outs[1])
		}
	}
}

func randomCircuit(rng *rand.Rand, nIn, nGates int) *circuit.Circuit {
	c := circuit.New("rand")
	ids := make([]int, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		ids = append(ids, c.AddInput(""))
	}
	types := []circuit.GateType{
		circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
		circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf,
	}
	for i := 0; i < nGates; i++ {
		gt := types[rng.Intn(len(types))]
		n := 1
		if gt != circuit.Not && gt != circuit.Buf {
			n = 2 + rng.Intn(2)
		}
		fanins := make([]int, n)
		for j := range fanins {
			fanins[j] = ids[rng.Intn(len(ids))]
		}
		ids = append(ids, c.MustGate("", gt, fanins...))
	}
	c.MarkOutput(ids[len(ids)-1])
	if rng.Intn(2) == 0 && len(ids) > 2 {
		c.MarkOutput(ids[rng.Intn(len(ids))])
	}
	return c
}

// equivalent checks functional equivalence of two circuits with matching
// input names, by exhaustive simulation when feasible, else random.
func equivalent(t *testing.T, c1, c2 *circuit.Circuit, rng *rand.Rand) bool {
	t.Helper()
	ins1 := c1.Inputs()
	trials := 128
	for trial := 0; trial < trials; trial++ {
		a1 := map[int]bool{}
		a2 := map[int]bool{}
		for _, id := range ins1 {
			name := c1.Nodes[id].Name
			id2, ok := c2.NodeByName(name)
			if !ok {
				t.Fatalf("input %q missing in optimized circuit", name)
			}
			v := rng.Intn(2) == 1
			a1[id] = v
			a2[id2] = v
		}
		o1 := c1.EvalOutputs(a1)
		o2 := c2.EvalOutputs(a2)
		if len(o1) != len(o2) {
			t.Fatalf("output count changed: %d -> %d", len(o1), len(o2))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
	}
	return true
}

// Property: Strash preserves circuit function.
func TestQuickStrashPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 3+rng.Intn(5), 5+rng.Intn(30))
		opt := Strash(c)
		if err := opt.Validate(); err != nil {
			t.Logf("seed %d: invalid strash output: %v", seed, err)
			return false
		}
		return equivalent(t, c, opt, rng)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStrashRemovesDuplicates(t *testing.T) {
	c := circuit.New("dup")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.MustGate("g1", circuit.And, a, b)
	g2 := c.MustGate("g2", circuit.And, b, a) // structurally identical
	g3 := c.MustGate("g3", circuit.Or, g1, g2)
	c.MarkOutput(g3)
	opt := Strash(c)
	// g1 and g2 merge; OR(x,x) = x. Result should be a single AND plus
	// possibly a BUF for the output name.
	nAnds := 0
	for _, n := range opt.Nodes {
		if n.Type == circuit.And {
			nAnds++
		}
	}
	if nAnds != 1 {
		t.Errorf("ANDs after strash = %d, want 1\n%s", nAnds, opt)
	}
}

func TestStrashFoldsConstants(t *testing.T) {
	c := circuit.New("const")
	a := c.AddInput("a")
	one := c.AddConst("one", true)
	g := c.MustGate("g", circuit.And, a, one) // = a
	h := c.MustGate("h", circuit.Xor, g, one) // = ~a
	c.MarkOutput(h)
	opt := Strash(c)
	nAnds := 0
	for _, n := range opt.Nodes {
		if n.Type == circuit.And {
			nAnds++
		}
	}
	if nAnds != 0 {
		t.Errorf("constant logic not folded:\n%s", opt)
	}
	ia, _ := opt.NodeByName("a")
	for _, v := range []bool{false, true} {
		if got := opt.EvalOutputs(map[int]bool{ia: v})[0]; got != !v {
			t.Errorf("f(%v) = %v, want %v", v, got, !v)
		}
	}
}

func TestStrashDropsDeadLogic(t *testing.T) {
	c := circuit.New("dead")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.MustGate("g", circuit.And, a, b)
	c.MustGate("dead1", circuit.Or, a, b) // not in any output cone
	c.MarkOutput(g)
	opt := Strash(c)
	if opt.NumGates() > 2 { // AND (+ output BUF at most)
		t.Errorf("dead logic survived strash:\n%s", opt)
	}
}

func TestKeyInputsPreserved(t *testing.T) {
	c := circuit.New("keys")
	x := c.AddInput("x")
	k := c.AddKeyInput("keyinput0")
	g := c.MustGate("g", circuit.Xnor, x, k)
	c.MarkOutput(g)
	opt := Strash(c)
	if got := len(opt.KeyInputs()); got != 1 {
		t.Fatalf("key inputs after strash = %d, want 1", got)
	}
	if got := len(opt.PrimaryInputs()); got != 1 {
		t.Fatalf("primary inputs after strash = %d, want 1", got)
	}
}

func TestOutputNamesStable(t *testing.T) {
	c := circuit.New("names")
	a := c.AddInput("a")
	b := c.AddInput("b")
	y := c.MustGate("y", circuit.Nand, a, b)
	c.MarkOutput(y)
	opt := Strash(c)
	if _, ok := opt.NodeByName("y"); !ok {
		t.Errorf("output name y lost:\n%s", opt)
	}
}

func TestConstantOutput(t *testing.T) {
	c := circuit.New("constout")
	a := c.AddInput("a")
	na := c.MustGate("na", circuit.Not, a)
	g := c.MustGate("g", circuit.And, a, na) // constant 0
	c.MarkOutput(g)
	opt := Strash(c)
	ia, _ := opt.NodeByName("a")
	for _, v := range []bool{false, true} {
		if got := opt.EvalOutputs(map[int]bool{ia: v})[0]; got {
			t.Errorf("constant-0 output evaluated true for a=%v", v)
		}
	}
}

func TestSharedOutputNode(t *testing.T) {
	// Two outputs pointing at the same AIG node with opposite polarity.
	c := circuit.New("share")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.MustGate("g", circuit.And, a, b)
	h := c.MustGate("h", circuit.Nand, a, b)
	c.MarkOutput(g)
	c.MarkOutput(h)
	opt := Strash(c)
	if len(opt.Outputs) != 2 {
		t.Fatalf("outputs = %d, want 2", len(opt.Outputs))
	}
	ia, _ := opt.NodeByName("a")
	ib, _ := opt.NodeByName("b")
	outs := opt.EvalOutputs(map[int]bool{ia: true, ib: true})
	if !outs[0] || outs[1] {
		t.Errorf("outputs wrong: %v", outs)
	}
}

func TestFig2bStrashShrinks(t *testing.T) {
	// The TTLock running example from the paper (Fig. 2b): XNOR-compare
	// restoration plus cube stripper. Strash should produce a compact
	// AND/NOT netlist comparable to Fig. 3 (~30 nodes), and preserve
	// function.
	c := circuit.New("fig2b")
	a := c.AddInput("a")
	b := c.AddInput("b")
	cc := c.AddInput("c")
	d := c.AddInput("d")
	k1 := c.AddKeyInput("keyinput1")
	k2 := c.AddKeyInput("keyinput2")
	k3 := c.AddKeyInput("keyinput3")
	k4 := c.AddKeyInput("keyinput4")
	// Original function y = ab + bc + ca + d.
	ab := c.MustGate("ab", circuit.And, a, b)
	bc := c.MustGate("bc", circuit.And, b, cc)
	ca := c.MustGate("ca", circuit.And, cc, a)
	y0 := c.MustGate("y0", circuit.Or, ab, bc, ca, d)
	// Stripper: F = a & ~b & ~c & d.
	nb := c.MustGate("nb", circuit.Not, b)
	nc := c.MustGate("ncc", circuit.Not, cc)
	f := c.MustGate("F", circuit.And, a, nb, nc, d)
	yfs := c.MustGate("yfs", circuit.Xor, y0, f)
	// Restoration: AND of XNOR comparators.
	c1 := c.MustGate("c1", circuit.Xnor, a, k1)
	c2 := c.MustGate("c2", circuit.Xnor, b, k2)
	c3 := c.MustGate("c3", circuit.Xnor, cc, k3)
	c4 := c.MustGate("c4", circuit.Xnor, d, k4)
	g := c.MustGate("G", circuit.And, c1, c2, c3, c4)
	y := c.MustGate("y", circuit.Xor, yfs, g)
	c.MarkOutput(y)

	opt := Strash(c)
	rng := rand.New(rand.NewSource(5))
	if !equivalent(t, c, opt, rng) {
		t.Fatal("strash changed the locked circuit's function")
	}
	if opt.NumGates() > 60 {
		t.Errorf("strash output suspiciously large: %d gates", opt.NumGates())
	}
	// With the correct key (1,0,0,1), the locked circuit equals the
	// original function.
	ins := map[string]int{}
	for _, id := range opt.Inputs() {
		ins[opt.Nodes[id].Name] = id
	}
	for p := 0; p < 16; p++ {
		va, vb, vc, vd := p&1 == 1, p&2 == 2, p&4 == 4, p&8 == 8
		want := (va && vb) || (vb && vc) || (vc && va) || vd
		got := opt.EvalOutputs(map[int]bool{
			ins["a"]: va, ins["b"]: vb, ins["c"]: vc, ins["d"]: vd,
			ins["keyinput1"]: true, ins["keyinput2"]: false,
			ins["keyinput3"]: false, ins["keyinput4"]: true,
		})[0]
		if got != want {
			t.Errorf("correct key, pattern %04b: got %v want %v", p, got, want)
		}
	}
	// A wrong key must corrupt exactly the protected cube (TTLock).
	diffs := 0
	for p := 0; p < 16; p++ {
		va, vb, vc, vd := p&1 == 1, p&2 == 2, p&4 == 4, p&8 == 8
		want := (va && vb) || (vb && vc) || (vc && va) || vd
		got := opt.EvalOutputs(map[int]bool{
			ins["a"]: va, ins["b"]: vb, ins["c"]: vc, ins["d"]: vd,
			ins["keyinput1"]: true, ins["keyinput2"]: true,
			ins["keyinput3"]: false, ins["keyinput4"]: true,
		})[0]
		if got != want {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("wrong key produced no output corruption")
	}
}
