// Package aig implements and-inverter graphs with structural hashing,
// standing in for ABC's `strash` command which the paper uses to optimize
// locked netlists "to minimize any structural bias introduced by our
// locking implementation" (§VI-A, Fig. 3).
//
// An AIG node is a two-input AND; inverters are complement bits on edges.
// Structural hashing merges identical AND nodes, and constant/identity
// rules fold trivial logic, so functionally redundant gates introduced by
// a locker disappear exactly as they would after ABC strash.
package aig

import (
	"fmt"

	"repro/internal/circuit"
)

// Lit is an AIG edge: node index shifted left once, low bit = complemented.
type Lit int32

// Predefined literals of the constant node (node 0).
const (
	True  Lit = 0 // constant-1 function
	False Lit = 1
)

// MkLit builds an edge to node with the given complement flag.
func MkLit(node int, compl bool) Lit {
	l := Lit(node << 1)
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node index of the edge.
func (l Lit) Node() int { return int(l >> 1) }

// Compl reports whether the edge is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complemented edge.
func (l Lit) Not() Lit { return l ^ 1 }

type node struct {
	fan0, fan1 Lit // meaningful only for AND nodes (index >= 1+numInputs)
}

// AIG is an and-inverter graph. Node 0 is the constant-true node; nodes
// 1..NumInputs() are inputs; the rest are AND nodes in topological order.
type AIG struct {
	nodes    []node
	inNames  []string
	inIsKey  []bool
	outputs  []Lit
	outNames []string
	strash   map[[2]Lit]int
}

// New returns an empty AIG containing only the constant node.
func New() *AIG {
	return &AIG{
		nodes:  make([]node, 1),
		strash: make(map[[2]Lit]int),
	}
}

// NumInputs returns the number of input nodes.
func (g *AIG) NumInputs() int { return len(g.inNames) }

// NumAnds returns the number of AND nodes.
func (g *AIG) NumAnds() int { return len(g.nodes) - 1 - len(g.inNames) }

// AddInput appends an input and returns its (positive) edge. Inputs must
// be added before any AND node.
func (g *AIG) AddInput(name string, isKey bool) Lit {
	if len(g.nodes) != 1+len(g.inNames) {
		panic("aig: AddInput after AND nodes")
	}
	g.nodes = append(g.nodes, node{})
	g.inNames = append(g.inNames, name)
	g.inIsKey = append(g.inIsKey, isKey)
	return MkLit(len(g.nodes)-1, false)
}

// And returns an edge computing a AND b, applying constant folding,
// idempotence/complement rules and structural hashing.
func (g *AIG) And(a, b Lit) Lit {
	// Trivial rules.
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	// Canonical operand order.
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if id, ok := g.strash[key]; ok {
		return MkLit(id, false)
	}
	g.nodes = append(g.nodes, node{fan0: a, fan1: b})
	id := len(g.nodes) - 1
	g.strash[key] = id
	return MkLit(id, false)
}

// Or returns a OR b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a XOR b.
func (g *AIG) Xor(a, b Lit) Lit {
	return g.And(g.And(a, b.Not()).Not(), g.And(a.Not(), b).Not()).Not()
}

// Mux returns "if s then t else f".
func (g *AIG) Mux(s, t, f Lit) Lit {
	return g.And(g.And(s, t).Not(), g.And(s.Not(), f).Not()).Not()
}

// AddOutput registers an output edge under the given name.
func (g *AIG) AddOutput(name string, l Lit) {
	g.outputs = append(g.outputs, l)
	g.outNames = append(g.outNames, name)
}

// FromCircuit converts a gate-level circuit into a structurally hashed
// AIG. It returns the AIG and the edge corresponding to every circuit
// node.
func FromCircuit(c *circuit.Circuit) (*AIG, []Lit) {
	g := New()
	lits := make([]Lit, c.Len())
	// Inputs first (AIG requires it).
	for id, n := range c.Nodes {
		if n.Type == circuit.Input {
			lits[id] = g.AddInput(n.Name, n.IsKey)
		}
	}
	for id := range c.Nodes {
		n := &c.Nodes[id]
		switch n.Type {
		case circuit.Input:
			// done above
		case circuit.Const0:
			lits[id] = False
		case circuit.Const1:
			lits[id] = True
		case circuit.Buf:
			lits[id] = lits[n.Fanins[0]]
		case circuit.Not:
			lits[id] = lits[n.Fanins[0]].Not()
		case circuit.And, circuit.Nand:
			v := True
			for _, f := range n.Fanins {
				v = g.And(v, lits[f])
			}
			if n.Type == circuit.Nand {
				v = v.Not()
			}
			lits[id] = v
		case circuit.Or, circuit.Nor:
			v := False
			for _, f := range n.Fanins {
				v = g.Or(v, lits[f])
			}
			if n.Type == circuit.Nor {
				v = v.Not()
			}
			lits[id] = v
		case circuit.Xor, circuit.Xnor:
			v := False
			for _, f := range n.Fanins {
				v = g.Xor(v, lits[f])
			}
			if n.Type == circuit.Xnor {
				v = v.Not()
			}
			lits[id] = v
		default:
			panic(fmt.Sprintf("aig: unknown gate type %v", n.Type))
		}
	}
	for _, o := range c.Outputs {
		g.AddOutput(c.Nodes[o].Name, lits[o])
	}
	return g, lits
}

// ToCircuit converts the AIG back to a gate-level netlist of AND and NOT
// gates (the form shown in the paper's Fig. 3), keeping only logic
// reachable from the outputs. Input names and key flags are preserved;
// outputs keep their registered names via BUF/NOT shims when necessary.
func (g *AIG) ToCircuit(name string) *circuit.Circuit {
	c := circuit.New(name)
	// Mark reachable nodes.
	reach := make([]bool, len(g.nodes))
	var mark func(l Lit)
	mark = func(l Lit) {
		n := l.Node()
		if reach[n] {
			return
		}
		reach[n] = true
		if n > len(g.inNames) { // AND node
			mark(g.nodes[n].fan0)
			mark(g.nodes[n].fan1)
		}
	}
	for _, o := range g.outputs {
		mark(o)
	}
	nodeID := make([]int, len(g.nodes))   // positive-polarity circuit node
	invID := make([]int, len(g.nodes))    // NOT node, allocated on demand
	haveInv := make([]bool, len(g.nodes)) // whether invID is valid
	for i := range nodeID {
		nodeID[i] = -1
	}
	// Constant node, only if used.
	if reach[0] {
		nodeID[0] = c.AddConst("aig_const1", true)
	}
	// Inputs are always emitted so the interface is stable.
	for i, nm := range g.inNames {
		var id int
		if g.inIsKey[i] {
			id = c.AddKeyInput(nm)
		} else {
			id = c.AddInput(nm)
		}
		nodeID[1+i] = id
	}
	edge := func(l Lit) int {
		n := l.Node()
		if !l.Compl() {
			return nodeID[n]
		}
		if !haveInv[n] {
			invID[n] = c.MustGate(fmt.Sprintf("n%d_inv", n), circuit.Not, nodeID[n])
			haveInv[n] = true
		}
		return invID[n]
	}
	for i := 1 + len(g.inNames); i < len(g.nodes); i++ {
		if !reach[i] {
			continue
		}
		f0 := edge(g.nodes[i].fan0)
		f1 := edge(g.nodes[i].fan1)
		nodeID[i] = c.MustGate(fmt.Sprintf("n%d", i), circuit.And, f0, f1)
	}
	usedName := make(map[string]bool)
	for i, o := range g.outputs {
		id := edge(o)
		nm := g.outNames[i]
		// If the natural node already carries the right name and is not a
		// duplicate output name, use it directly; otherwise insert a BUF.
		if c.Nodes[id].Name != nm {
			if _, taken := c.NodeByName(nm); taken || usedName[nm] {
				nm = nm + "_out"
			}
			id = c.MustGate(nm, circuit.Buf, id)
		}
		usedName[nm] = true
		c.MarkOutput(id)
	}
	return c
}

// Strash optimizes a circuit by round-tripping it through a structurally
// hashed AIG, the equivalent of "abc strash". The result contains only
// 2-input AND gates, NOT gates and BUFs.
func Strash(c *circuit.Circuit) *circuit.Circuit {
	g, _ := FromCircuit(c)
	return g.ToCircuit(c.Name)
}
