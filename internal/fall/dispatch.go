package fall

import (
	"math/bits"
	"runtime"
	"sort"

	"repro/internal/attack"
	"repro/internal/circuit"
)

// This file implements adaptive dispatch inside the FALL analysis grid:
// candidate×polarity cells are handed to the worker pool in
// longest-expected-first order (the grid-level analogue of
// exp.DispatchOrder), so one late heavy cell cannot run alone after
// every cheap cell has drained. Dispatch order changes scheduling only:
// outcomes are written at the cell's original index and merged in
// candidate order, so the shortlist stays byte-identical to a serial
// run for every worker count.

// cellEstimate estimates the relative runtime of one candidate's grid
// cells. The deterministic drivers, cheapest to probe:
//
//   - cone size: every SAT query Tseitin-encodes the cone (twice for
//     the HD instances), and UNSAT lemma proofs grow with it;
//   - a 256-pattern on-set density probe, the same signal (and the
//     same shared threshold/RNG, see densityThreshold/densityRNG) the
//     density pre-filter applies on 16384 patterns: cells the filter
//     will reject are near-free (one simulation sweep, no SAT), while
//     cells that pass it run the full analysis plus the
//     equivalence-check UNSAT proof. With the filter disabled
//     (ablation) the relation inverts — dense parity-like cells are
//     precisely the ones whose lemma proofs blow up, so they cost the
//     most.
type cellEstimate struct {
	coneLen int
	// dense[0]/dense[1] report the positive/negated polarity probe
	// exceeding the stripper-density threshold.
	dense [2]bool
}

// estimateCandidate probes one candidate node; a pure function of the
// cone, never of run order.
func estimateCandidate(c *circuit.Circuit, cand, h int) cellEstimate {
	cone, _ := c.Cone(cand)
	ins := cone.Inputs()
	m := len(ins)
	est := cellEstimate{coneLen: cone.Len()}
	if m == 0 {
		return est
	}
	const words = 4 // 256 patterns: a probe, not the filter itself
	n := float64(words * 64)
	threshold := densityThreshold(n, m, h)
	rng := densityRNG(cone.Len(), m)
	vals := make([]uint64, cone.Len())
	var on float64
	for w := 0; w < words; w++ {
		for _, in := range ins {
			vals[in] = rng.Uint64()
		}
		cone.Simulate(vals)
		on += float64(bits.OnesCount64(vals[cone.Outputs[0]]))
	}
	est.dense[0] = on > threshold
	est.dense[1] = n-on > threshold
	return est
}

func (e cellEstimate) cost(neg bool, h int, filterEnabled bool) int64 {
	pol := 0
	if neg {
		pol = 1
	}
	full := int64(e.coneLen) * int64(2+h)
	if !e.dense[pol] {
		// Stripper-like density: survives the filter, runs the full
		// analysis and the equivalence-check UNSAT proof.
		return full
	}
	if filterEnabled {
		// The density filter will reject this cell after one cheap
		// simulation sweep.
		return 1 + int64(e.coneLen)/64
	}
	// Filter disabled (ablation): dense parity-like cells are the ones
	// whose UNSAT lemma proofs explode.
	return 8 * full
}

// gridDispatchOrder returns the indices of jobs sorted
// longest-expected-first, ties broken by job index so the order is
// deterministic. Candidates are probed once (not once per polarity
// cell), on the same worker pool the grid itself will use, so the
// probe adds no serial prefix before the first cell dispatches.
func gridDispatchOrder(c *circuit.Circuit, jobs []analysisJob, opts *Options) []int {
	var cands []int
	seen := map[int]bool{}
	for _, j := range jobs {
		if !seen[j.cand] {
			seen[j.cand] = true
			cands = append(cands, j.cand)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	estimates := make([]cellEstimate, len(cands))
	attack.ForEachIndexed(workers, len(cands), func(i int) bool {
		estimates[i] = estimateCandidate(c, cands[i], opts.H)
		return true
	})
	est := make(map[int]cellEstimate, len(cands))
	for i, cand := range cands {
		est[cand] = estimates[i]
	}
	cost := make([]int64, len(jobs))
	for i, j := range jobs {
		cost[i] = est[j.cand].cost(j.neg, opts.H, !opts.DisableDensityFilter)
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if cost[order[a]] != cost[order[b]] {
			return cost[order[a]] > cost[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}
