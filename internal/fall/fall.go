// Package fall implements the Functional Analysis attacks on Logic
// Locking (FALL) from Sirone & Subramanyan, DATE 2019. The attack has
// three structural/functional stages (paper Fig. 4):
//
//  1. Comparator identification (§III-A): find gates equivalent to
//     XOR/XNOR of one circuit input and one key input, recovering the
//     pairing between key bits and protected inputs.
//  2. Support-set matching (§III-B): shortlist candidate cube-stripper
//     gates, whose support equals the comparator circuit-input set.
//  3. Functional analyses (§IV): AnalyzeUnateness (Lemma 1, TTLock),
//     SlidingWindow (Lemma 3) and Distance2H (Lemma 2) extract the
//     protected cube from a candidate gate; combinational equivalence
//     checking (§IV-C) ensures sufficiency.
//
// The output is a shortlist of suspected keys. When more than one key
// survives, the key confirmation algorithm (internal/keyconfirm, paper §V)
// picks the correct one using I/O oracle access.
package fall

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/sat"
)

// ErrTimeout is returned when an analysis exceeds its context budget
// (cancellation or deadline).
var ErrTimeout = errors.New("fall: analysis timed out")

// Analysis selects which functional analysis drives the attack.
type Analysis int

// Available functional analyses. Auto picks AnalyzeUnateness for h = 0,
// Distance2H when 4h <= m, and SlidingWindow otherwise (the paper's
// applicability conditions).
const (
	Auto Analysis = iota
	Unateness
	SlidingWindow
	Distance2H
)

func (a Analysis) String() string {
	switch a {
	case Unateness:
		return "AnalyzeUnateness"
	case SlidingWindow:
		return "SlidingWindow"
	case Distance2H:
		return "Distance2H"
	default:
		return "Auto"
	}
}

// ParseAnalysis maps an Analysis.String name back to its value; ok is
// false for unknown names. It is the inverse used by serialized
// experiment plans and campaign artifacts.
func ParseAnalysis(s string) (Analysis, bool) {
	switch s {
	case "Auto":
		return Auto, true
	case "AnalyzeUnateness":
		return Unateness, true
	case "SlidingWindow":
		return SlidingWindow, true
	case "Distance2H":
		return Distance2H, true
	}
	return Auto, false
}

// Options configures an attack run.
type Options struct {
	// H is the (known) Hamming distance parameter of the locking scheme.
	H int
	// Analysis selects the functional analysis; Auto applies the paper's
	// applicability rules.
	Analysis Analysis
	// Enc selects the cardinality encoding for Hamming-distance
	// constraints.
	Enc cnf.CardEncoding
	// DisableSimPrefilter turns off the random-simulation pre-filter in
	// the unateness analysis (ablation knob; the SAT queries alone are
	// exact).
	DisableSimPrefilter bool
	// DisableDensityFilter turns off the onset-density candidate
	// pre-filter (ablation knob). The filter skips candidate nodes whose
	// sampled on-set density is far above C(m,h)/2^m, the density of a
	// true cube stripper — e.g. popcount sum bits, which share the
	// stripper's support but are parity-like and make the SAT lemma
	// checks exponentially hard. The margin is wide enough that
	// rejecting a true stripper has negligible probability (see
	// densityFilter).
	DisableDensityFilter bool
	// Workers bounds how many candidate×polarity analyses run
	// concurrently; <= 0 means runtime.GOMAXPROCS(0). Each worker owns
	// its solvers, and results merge in candidate order, so the
	// shortlist is identical for every worker count.
	Workers int
	// Solver builds the SAT engine behind every analysis query. Each
	// candidate×polarity cell creates its engines through this factory,
	// so every cell can independently run a portfolio race per query;
	// nil means default single engines.
	Solver attack.SolverFactory
}

// Comparator records one identified comparator gate: node computes
// XNOR(Input, Key) when Xnor is true, XOR(Input, Key) otherwise.
type Comparator struct {
	Node  int
	Input int
	Key   int
	Xnor  bool
}

// CandidateKey is one suspected key produced by the functional analyses.
type CandidateKey struct {
	// Key maps key-input names to suspected values.
	Key map[string]bool
	// Cube maps protected-input names to the recovered cube values.
	Cube map[string]bool
	// Node is the candidate cube-stripper node the cube was extracted
	// from; Negated records whether its complement was analyzed.
	Node    int
	Negated bool
	// Analysis names the functional analysis that produced the cube.
	Analysis string
}

// Signature returns a canonical string for deduplication. It encodes
// key-input names alongside their values: two candidates over different
// key-input subsets (e.g. partial pairings) must not collide even when
// their sorted bit values agree.
func (k *CandidateKey) Signature() string {
	names := make([]string, 0, len(k.Key))
	for n := range k.Key {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		sb.WriteString(n)
		if k.Key[n] {
			sb.WriteString("=1;")
		} else {
			sb.WriteString("=0;")
		}
	}
	return sb.String()
}

// Result reports the outcome of the FALL structural/functional stages.
type Result struct {
	Comparators []Comparator
	// CompX is the set of circuit-input node ids appearing in
	// comparators, sorted.
	CompX []int
	// Candidates are node ids surviving support-set matching.
	Candidates []int
	// Keys are the deduplicated suspected keys that passed equivalence
	// checking.
	Keys []CandidateKey
	// Timing per stage.
	ComparatorTime time.Duration
	MatchTime      time.Duration
	AnalysisTime   time.Duration
	Total          time.Duration
}

// UniqueKey reports whether exactly one suspected key was found, in which
// case the attack needed no oracle access.
func (r *Result) UniqueKey() bool { return len(r.Keys) == 1 }

// bitset is a fixed-size bit vector over input indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << uint(i%64) }
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
func (b bitset) indices() []int {
	var out []int
	for wi, w := range b {
		for w != 0 {
			out = append(out, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// supports computes, for every node, the set of inputs in its transitive
// fanin cone, as bitsets over input index. It returns the bitsets plus the
// input id list defining the index space.
func supports(c *circuit.Circuit) ([]bitset, []int) {
	inputs := c.Inputs()
	idx := make(map[int]int, len(inputs))
	for i, id := range inputs {
		idx[id] = i
	}
	sup := make([]bitset, c.Len())
	for id := range c.Nodes {
		b := newBitset(len(inputs))
		n := &c.Nodes[id]
		if n.Type == circuit.Input {
			b.set(idx[id])
		} else {
			for _, f := range n.Fanins {
				b.or(sup[f])
			}
		}
		sup[id] = b
	}
	return sup, inputs
}

// FindComparators implements comparator identification (§III-A): all gates
// whose support is exactly one circuit input and one key input and whose
// function is XOR or XNOR of them. Because the support has exactly two
// members, the check is exact by 4-pattern cone simulation.
func FindComparators(c *circuit.Circuit) []Comparator {
	sup, inputs := supports(c)
	var comps []Comparator
	for id := range c.Nodes {
		if c.Nodes[id].Type == circuit.Input {
			continue
		}
		if sup[id].count() != 2 {
			continue
		}
		pair := sup[id].indices()
		a, b := inputs[pair[0]], inputs[pair[1]]
		var pi, key int
		switch {
		case c.Nodes[a].IsKey && !c.Nodes[b].IsKey:
			pi, key = b, a
		case !c.Nodes[a].IsKey && c.Nodes[b].IsKey:
			pi, key = a, b
		default:
			continue // two PIs or two keys
		}
		tt, ok := truthTable2(c, id, pi, key)
		if !ok {
			continue
		}
		switch tt {
		case 0b0110: // XOR over (pi,key) pattern order 00,10,01,11
			comps = append(comps, Comparator{Node: id, Input: pi, Key: key, Xnor: false})
		case 0b1001:
			comps = append(comps, Comparator{Node: id, Input: pi, Key: key, Xnor: true})
		}
	}
	return comps
}

// truthTable2 evaluates node id over the four assignments of (a, b),
// returning the truth table with bit index (a + 2b).
func truthTable2(c *circuit.Circuit, id, a, b int) (uint8, bool) {
	cone, im := c.Cone(id)
	vals := make([]uint64, cone.Len())
	for ci, orig := range im {
		switch orig {
		case a:
			vals[ci] = 0b1010 // a = bit0 of pattern index
		case b:
			vals[ci] = 0b1100
		default:
			return 0, false
		}
	}
	cone.Simulate(vals)
	return uint8(vals[cone.Outputs[0]] & 0xF), true
}

// SupportMatch implements support-set matching (§III-B): all non-input
// nodes whose support equals compX exactly (no key inputs, no missing or
// extra circuit inputs).
func SupportMatch(c *circuit.Circuit, compX []int) []int {
	sup, inputs := supports(c)
	idx := make(map[int]int, len(inputs))
	for i, id := range inputs {
		idx[id] = i
	}
	want := newBitset(len(inputs))
	for _, x := range compX {
		want.set(idx[x])
	}
	var cands []int
	for id := range c.Nodes {
		if c.Nodes[id].Type == circuit.Input {
			continue
		}
		if sup[id].equal(want) {
			cands = append(cands, id)
		}
	}
	return cands
}

// analysisContext carries a candidate node's extracted cone and SAT
// encoding state shared by the functional analyses, plus the run context
// bounding every SAT query.
type analysisContext struct {
	ctx      context.Context
	cone     *circuit.Circuit
	inputMap map[int]int // cone input id -> locked-circuit node id
	inputs   []int       // cone input ids, sorted
	neg      bool        // analyze the complement of the cone function
	opts     *Options

	// pre caches the candidate's frozen clause-stream prefixes; the grid
	// shares one candPrefixes between the two polarity cells of a
	// candidate, and a directly-constructed context creates its own
	// lazily (prefixes).
	pre *candPrefixes
	// unateEng is the cell's single engine for all checkUnate queries,
	// created lazily over unatePre's frozen prefix.
	unateEng sat.Engine
	unatePre *unatePrefix
}

func newAnalysisContext(ctx context.Context, c *circuit.Circuit, node int, neg bool, opts *Options) (*analysisContext, error) {
	cone, im := c.Cone(node)
	ins := cone.Inputs()
	for _, id := range ins {
		if cone.Nodes[id].IsKey {
			return nil, fmt.Errorf("fall: candidate node %d depends on a key input", node)
		}
	}
	return &analysisContext{ctx: ctx, cone: cone, inputMap: im, inputs: ins, neg: neg, opts: opts}, nil
}

// stripperLog2Density returns log2(C(m,h)/2^m), the on-set density of
// a true cube stripper over m inputs.
func stripperLog2Density(m, h int) float64 {
	log2d := -float64(m)
	for i := 1; i <= h; i++ {
		log2d += math.Log2(float64(m-h+i)) - math.Log2(float64(i))
	}
	return log2d
}

// densityThreshold returns the accept threshold for n sampled patterns:
// 16x the stripper's expected on-count plus an additive slack (64 at
// the filter's 16384 patterns, scaled for smaller probes). Shared by
// densityFilter and the dispatch cost probe so the two never disagree
// about what the filter will reject.
func densityThreshold(n float64, m, h int) float64 {
	return 16*n*math.Exp2(stripperLog2Density(m, h)) + 64*n/16384
}

// densityRNG returns the deterministic pattern source for density
// sampling over a cone: a pure function of the cone, never of run
// order, and likewise shared by the filter and the dispatch probe.
func densityRNG(coneLen, m int) *rand.Rand {
	return rand.New(rand.NewSource(int64(coneLen)*2654435761 + int64(m)))
}

// densityFilter reports whether the analyzed function's sampled on-set
// density is consistent with a cube stripper. strip_h has exactly
// C(m,h) on-minterms out of 2^m; nodes like adder sum bits share the
// stripper's support but sit near 50% density and are precisely the
// candidates whose UNSAT lemma proofs blow up. We sample 16384 random
// patterns and keep the candidate unless its on-count exceeds
// 16*expected + 64 — a margin so far above the stripper's concentration
// (Chernoff tail < 2^-50) that the filter is sound in practice.
func (a *analysisContext) densityFilter(h int) bool {
	if a.opts.DisableDensityFilter {
		return true
	}
	m := len(a.inputs)
	const words = 256 // 16384 patterns
	threshold := densityThreshold(float64(words*64), m, h)
	rng := densityRNG(a.cone.Len(), m)
	vals := make([]uint64, a.cone.Len())
	count := 0.0
	for w := 0; w < words; w++ {
		for _, in := range a.inputs {
			vals[in] = rng.Uint64()
		}
		a.cone.Simulate(vals)
		out := vals[a.cone.Outputs[0]]
		if a.neg {
			out = ^out
		}
		count += float64(bits.OnesCount64(out))
		if count > threshold {
			return false
		}
	}
	return true
}

// prefixes returns the candidate's prefix cache, creating a private
// one when the context was built outside the grid.
func (a *analysisContext) prefixes() *candPrefixes {
	if a.pre == nil {
		a.pre = &candPrefixes{}
	}
	return a.pre
}

func (a *analysisContext) expired() bool {
	return a.ctx.Err() != nil
}

// AnalyzeUnateness implements Algorithm 1 (Lemma 1): if the cone function
// is unate in every input, the protected cube bit for input xi is 1 when
// positive unate and 0 when negative unate. Returns the cube over the
// locked circuit's input node ids, or ok=false if the function is binate
// in any variable.
func (a *analysisContext) AnalyzeUnateness() (map[int]bool, bool, error) {
	cube := make(map[int]bool, len(a.inputs))
	// Simulation pre-filter: find binate witnesses cheaply before SAT.
	posViol := make(map[int]bool)
	negViol := make(map[int]bool)
	if !a.opts.DisableSimPrefilter {
		rng := rand.New(rand.NewSource(int64(a.cone.Len())*7919 + 13))
		vals := make([]uint64, a.cone.Len())
		flip := make([]uint64, a.cone.Len())
		for round := 0; round < 4; round++ {
			for _, in := range a.inputs {
				vals[in] = rng.Uint64()
			}
			for _, xi := range a.inputs {
				copy(flip, vals)
				flip[xi] = 0
				a.cone.Simulate(flip)
				f0 := flip[a.cone.Outputs[0]]
				copy(flip, vals)
				flip[xi] = ^uint64(0)
				a.cone.Simulate(flip)
				f1 := flip[a.cone.Outputs[0]]
				if a.neg {
					f0, f1 = ^f0, ^f1
				}
				if f0&^f1 != 0 {
					posViol[xi] = true
				}
				if ^f0&f1 != 0 {
					negViol[xi] = true
				}
				if posViol[xi] && negViol[xi] {
					return nil, false, nil // binate: witness found
				}
			}
		}
	}
	for i, xi := range a.inputs {
		if a.expired() {
			return nil, false, ErrTimeout
		}
		isPos, err := a.checkUnate(i, true, posViol[xi])
		if err != nil {
			return nil, false, err
		}
		if isPos {
			cube[a.inputMap[xi]] = true
			continue
		}
		isNeg, err := a.checkUnate(i, false, negViol[xi])
		if err != nil {
			return nil, false, err
		}
		if isNeg {
			cube[a.inputMap[xi]] = false
			continue
		}
		return nil, false, nil // binate in xi
	}
	return cube, true, nil
}

// checkUnate proves or refutes unateness of the cone function in input
// index i by an assumption-only query against the cell's shared
// two-copy prefix: assume the copies agree on every input but the
// i-th, fix that input to 0 in copy 0 and 1 in copy 1, and assume the
// outputs witness the violating pattern — Unsat means no violation
// exists, i.e. the function is unate in the requested direction. All
// of a cell's queries run on one incrementally-reused engine, so
// learnt clauses carry across inputs and persistent or memoizing
// backends see a single session for the whole cell. knownViolated
// short-circuits with the simulation witness.
func (a *analysisContext) checkUnate(i int, positive, knownViolated bool) (bool, error) {
	if knownViolated {
		return false, nil
	}
	if a.unateEng == nil {
		a.unatePre = a.prefixes().unateFor(a)
		a.unateEng = attack.NewEngineOn(a.ctx, a.opts.Solver, a.unatePre.frozen)
	}
	p := a.unatePre
	f0, f1 := p.f0, p.f1
	if a.neg {
		f0, f1 = f0.Neg(), f1.Neg()
	}
	as := make([]sat.Lit, 0, len(a.inputs)+3)
	for j := range a.inputs {
		if j != i {
			as = append(as, p.eq[j])
		}
	}
	as = append(as, p.x0[i].Neg(), p.x1[i])
	// Positive unate iff no witness of f(xi=0)=1, f(xi=1)=0.
	if positive {
		as = append(as, f0, f1.Neg())
	} else {
		as = append(as, f0.Neg(), f1)
	}
	switch a.unateEng.SolveAssuming(as) {
	case sat.Unsat:
		return true, nil
	case sat.Sat:
		return false, nil
	default:
		return false, ErrTimeout
	}
}

// hdInstance returns an engine holding F = cone(X) ∧ cone(X') ∧
// HD(X, X') = 2h plus the input literal vectors and the difference
// literals. The distance instance itself comes from the candidate's
// frozen prefix — encoded once, shared by both polarities and both
// analyses — and only the polarity's output units are added here as
// the cell's delta.
func (a *analysisContext) hdInstance(h int) (sat.Engine, []sat.Lit, []sat.Lit, []sat.Lit) {
	p := a.prefixes().hdFor(a, h)
	s := attack.NewEngineOn(a.ctx, a.opts.Solver, p.frozen)
	f1, f2 := p.f1, p.f2
	if a.neg {
		f1, f2 = f1.Neg(), f2.Neg()
	}
	s.AddClause(f1)
	s.AddClause(f2)
	return s, p.xs, p.ys, p.ds
}

// SlidingWindowAnalysis implements Algorithm 2 (Lemma 3). It returns the
// recovered cube over locked-circuit input ids, ok=false if the node is
// inconsistent with a cube stripper, or an error on timeout.
func (a *analysisContext) SlidingWindowAnalysis(h int) (map[int]bool, bool, error) {
	s, xs, ys, ds := a.hdInstance(h)
	switch s.Solve() {
	case sat.Unsat:
		return nil, false, nil
	case sat.Unknown:
		return nil, false, ErrTimeout
	}
	cube := make(map[int]bool, len(a.inputs))
	type pending struct {
		i      int
		mi, mj bool
	}
	var todo []pending
	for i, xi := range a.inputs {
		mi := s.LitTrue(xs[i])
		mj := s.LitTrue(ys[i])
		if mi == mj {
			cube[a.inputMap[xi]] = mi
		} else {
			todo = append(todo, pending{i, mi, mj})
		}
	}
	for _, p := range todo {
		if a.expired() {
			return nil, false, ErrTimeout
		}
		// Lemma 3: exactly one of xi=x'i=mi, xi=x'i=m'i is satisfiable,
		// and that value is the key bit.
		ri := s.SolveAssuming([]sat.Lit{ds[p.i].Neg(), attack.LitWithValue(xs[p.i], p.mi)})
		if ri == sat.Unknown {
			return nil, false, ErrTimeout
		}
		rj := s.SolveAssuming([]sat.Lit{ds[p.i].Neg(), attack.LitWithValue(xs[p.i], p.mj)})
		if rj == sat.Unknown {
			return nil, false, ErrTimeout
		}
		switch {
		case ri == sat.Sat && rj == sat.Unsat:
			cube[a.inputMap[a.inputs[p.i]]] = p.mi
		case ri == sat.Unsat && rj == sat.Sat:
			cube[a.inputMap[a.inputs[p.i]]] = p.mj
		default:
			return nil, false, nil
		}
	}
	return cube, true, nil
}

// Distance2HAnalysis implements Algorithm 3 (Lemma 2), applicable when
// 4h <= m: two satisfying pairs at distance 2h determine all key bits.
func (a *analysisContext) Distance2HAnalysis(h int) (map[int]bool, bool, error) {
	s, xs, ys, ds := a.hdInstance(h)
	switch s.Solve() {
	case sat.Unsat:
		return nil, false, nil
	case sat.Unknown:
		return nil, false, ErrTimeout
	}
	cube := make(map[int]bool, len(a.inputs))
	var cnst []sat.Lit
	var open []int // indices not fixed by the first model
	for i, xi := range a.inputs {
		mi := s.LitTrue(xs[i])
		mj := s.LitTrue(ys[i])
		if mi == mj {
			cube[a.inputMap[xi]] = mi
		} else {
			cnst = append(cnst, ds[i].Neg())
			open = append(open, i)
		}
	}
	if len(open) > 0 {
		switch s.SolveAssuming(cnst) {
		case sat.Unsat:
			return nil, false, nil
		case sat.Unknown:
			return nil, false, ErrTimeout
		}
		for i, xi := range a.inputs {
			mi := s.LitTrue(xs[i])
			mj := s.LitTrue(ys[i])
			if mi != mj {
				continue
			}
			orig := a.inputMap[xi]
			if prev, done := cube[orig]; done {
				if prev != mi {
					return nil, false, nil // inconsistent with Lemma 2
				}
				continue
			}
			cube[orig] = mi
		}
	}
	if len(cube) != len(a.inputs) {
		return nil, false, nil // some bit never agreed; not a stripper
	}
	return cube, true, nil
}

// EquivalenceCheck implements §IV-C: verify cktfn == strip_h(cube) by a
// miter between the cone and a reference Hamming-distance comparator. The
// lemmas are necessary conditions only; this check makes them sufficient.
func (a *analysisContext) EquivalenceCheck(cube map[int]bool, h int) (bool, error) {
	p := a.prefixes().coneFor(a)
	s := attack.NewEngineOn(a.ctx, a.opts.Solver, p.frozen)
	e := p.enc.ForkOnto(s)
	f := p.f
	if a.neg {
		f = f.Neg()
	}
	// Reference strip_h(cube)(X): popcount of x_i XOR cube_i equals h.
	ds := make([]sat.Lit, len(a.inputs))
	for i, xi := range a.inputs {
		ds[i] = p.ins[i]
		if cube[a.inputMap[xi]] {
			ds[i] = ds[i].Neg()
		}
	}
	bitsv := e.Popcount(ds)
	cmp := make([]sat.Lit, len(bitsv))
	for j, b := range bitsv {
		if h&(1<<uint(j)) != 0 {
			cmp[j] = b
		} else {
			cmp[j] = b.Neg()
		}
	}
	if h>>uint(len(bitsv)) != 0 {
		return false, nil // h exceeds representable count: not equivalent
	}
	ref := e.And(cmp...)
	s.AddClause(e.Xor(f, ref)) // miter: SAT iff not equivalent
	switch s.Solve() {
	case sat.Unsat:
		return true, nil
	case sat.Sat:
		return false, nil
	default:
		return false, ErrTimeout
	}
}

// Attack runs the full FALL pipeline on a locked netlist and returns the
// shortlisted keys. The locked circuit's key inputs must be marked (IsKey)
// and h must match the locking parameter (known to the adversary, §II-A).
// The candidate×polarity analysis grid runs on a worker pool sized by
// Options.Workers; the shortlist is byte-identical for every worker count.
// Cancelling ctx (or letting its deadline pass) stops the attack promptly;
// the partial Result accumulated so far is returned alongside ErrTimeout.
func Attack(ctx context.Context, locked *circuit.Circuit, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &Result{}
	root := obs.SpanFrom(ctx)

	t0 := time.Now()
	spComp := root.Child("fall.comparators")
	res.Comparators = FindComparators(locked)
	res.ComparatorTime = time.Since(t0)
	spComp.Set("comparators", len(res.Comparators))
	spComp.EndAfter(res.ComparatorTime)
	if len(res.Comparators) == 0 {
		res.Total = time.Since(start)
		return res, nil
	}

	t0 = time.Now()
	spMatch := root.Child("fall.match")
	seen := map[int]bool{}
	for _, cp := range res.Comparators {
		if !seen[cp.Input] {
			seen[cp.Input] = true
			res.CompX = append(res.CompX, cp.Input)
		}
	}
	sort.Ints(res.CompX)
	res.Candidates = SupportMatch(locked, res.CompX)
	res.MatchTime = time.Since(t0)
	spMatch.Set("candidates", len(res.Candidates))
	spMatch.EndAfter(res.MatchTime)

	m := len(res.CompX)
	pairing := buildPairing(locked, res.Comparators)

	t0 = time.Now()
	spAnalysis := root.Child("fall.analysis")
	defer func() {
		res.AnalysisTime = time.Since(t0)
		res.Total = time.Since(start)
		spAnalysis.Set("keys", len(res.Keys))
		spAnalysis.EndAfter(res.AnalysisTime)
	}()
	ctx = obs.With(ctx, spAnalysis)

	jobs := make([]analysisJob, 0, 2*len(res.Candidates))
	for _, cand := range res.Candidates {
		for _, neg := range []bool{false, true} {
			jobs = append(jobs, analysisJob{cand: cand, neg: neg})
		}
	}
	outcomes := runAnalysisGrid(ctx, locked, jobs, m, &opts, pairing)

	// Merge in job (candidate-id × polarity) order: the shortlist and the
	// first error reported are identical for every worker count.
	sigs := map[string]bool{}
	for i := range outcomes {
		oc := &outcomes[i]
		if oc.err != nil {
			return res, oc.err
		}
		if !oc.ok {
			continue
		}
		if sig := oc.key.Signature(); !sigs[sig] {
			sigs[sig] = true
			res.Keys = append(res.Keys, oc.key)
		}
	}
	return res, nil
}

// analysisJob is one cell of the candidate×polarity analysis grid.
type analysisJob struct {
	cand int
	neg  bool
}

// analysisOutcome is the verdict of one grid cell: a shortlisted key
// (ok), a silent rejection (!ok), or an error (timeout or hard failure).
type analysisOutcome struct {
	key CandidateKey
	ok  bool
	err error
}

// runAnalysisGrid evaluates every grid cell on a bounded worker pool and
// returns the outcomes indexed like jobs. Cells are handed to the pool
// in adaptive longest-expected-first order (gridDispatchOrder) to cut
// tail latency, but each outcome is written at its job index and merged
// in candidate order, so the completed-run shortlist does not depend on
// the worker count or the dispatch order. Cells are independent and
// deterministic (every solver and RNG is local to the cell). An
// erroring cell (hard failure or ctx cancellation) stops further cells
// from being dispatched, so the grid fails fast and drains promptly;
// every cell dispatched before the first error still completes.
func runAnalysisGrid(ctx context.Context, locked *circuit.Circuit, jobs []analysisJob, m int, opts *Options, pairing map[int]pairEntry) []analysisOutcome {
	outcomes := make([]analysisOutcome, len(jobs))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One prefix cache per candidate: the two polarity cells fork the
	// same frozen encodings instead of re-encoding the cone.
	pres := make(map[int]*candPrefixes, len(jobs))
	for _, j := range jobs {
		if pres[j.cand] == nil {
			pres[j.cand] = &candPrefixes{}
		}
	}
	order := gridDispatchOrder(locked, jobs, opts)
	attack.ForEachIndexed(workers, len(jobs), func(j int) bool {
		i := order[j]
		outcomes[i] = analyzeCell(ctx, locked, jobs[i], m, opts, pairing, pres[jobs[i].cand])
		return outcomes[i].err == nil
	})
	return outcomes
}

// analyzeCell runs one candidate×polarity cell, wrapping it in a
// trace span (parenting every solver query the cell issues) when the
// grid runs traced.
func analyzeCell(ctx context.Context, locked *circuit.Circuit, job analysisJob, m int, opts *Options, pairing map[int]pairEntry, pre *candPrefixes) analysisOutcome {
	cell := obs.SpanFrom(ctx).Child("fall.cell", "node", job.cand, "neg", job.neg)
	if cell == nil {
		return analyzeCellInner(ctx, locked, job, m, opts, pairing, pre)
	}
	oc := analyzeCellInner(obs.With(ctx, cell), locked, job, m, opts, pairing, pre)
	switch {
	case oc.err != nil:
		cell.Set("outcome", "error")
	case oc.ok:
		cell.Set("outcome", "key")
	default:
		cell.Set("outcome", "rejected")
	}
	cell.End()
	return oc
}

// analyzeCellInner runs the density filter, the selected functional
// analysis and the equivalence check for one candidate×polarity cell.
// All solver state is created here, per cell, so cells never share
// solvers; only the immutable frozen prefixes in pre are shared
// across cells.
func analyzeCellInner(ctx context.Context, locked *circuit.Circuit, job analysisJob, m int, opts *Options, pairing map[int]pairEntry, pre *candPrefixes) analysisOutcome {
	if ctx.Err() != nil {
		return analysisOutcome{err: ErrTimeout}
	}
	actx, err := newAnalysisContext(ctx, locked, job.cand, job.neg, opts)
	if err != nil {
		return analysisOutcome{} // key-dependent candidate: not a stripper
	}
	actx.pre = pre
	if !actx.densityFilter(opts.H) {
		return analysisOutcome{}
	}
	cube, ok, algo, err := runAnalysis(actx, m, *opts)
	if err != nil {
		return analysisOutcome{err: err}
	}
	if !ok {
		return analysisOutcome{}
	}
	okEq, err := actx.EquivalenceCheck(cube, opts.H)
	if err != nil {
		return analysisOutcome{err: err}
	}
	if !okEq {
		return analysisOutcome{}
	}
	ck := cubeToKey(locked, cube, pairing)
	ck.Node = job.cand
	ck.Negated = job.neg
	ck.Analysis = algo
	return analysisOutcome{key: ck, ok: true}
}

func runAnalysis(ctx *analysisContext, m int, opts Options) (map[int]bool, bool, string, error) {
	an := opts.Analysis
	if an == Auto {
		switch {
		case opts.H == 0:
			an = Unateness
		case 4*opts.H <= m:
			an = Distance2H
		default:
			an = SlidingWindow
		}
	}
	switch an {
	case Unateness:
		cube, ok, err := ctx.AnalyzeUnateness()
		return cube, ok, "AnalyzeUnateness", err
	case SlidingWindow:
		cube, ok, err := ctx.SlidingWindowAnalysis(opts.H)
		return cube, ok, "SlidingWindow", err
	case Distance2H:
		if 4*opts.H > m {
			return nil, false, "Distance2H", nil // inapplicable (paper §IV-B3)
		}
		cube, ok, err := ctx.Distance2HAnalysis(opts.H)
		return cube, ok, "Distance2H", err
	}
	return nil, false, "", fmt.Errorf("fall: unknown analysis %v", opts.Analysis)
}

// pairEntry resolves the key input paired with a circuit input, with the
// comparator polarity. XNOR comparators are preferred when both polarities
// of the same pair appear in the netlist (the complement edge of an XNOR
// AIG node is an XOR node).
type pairEntry struct {
	key  int
	xnor bool
	rank int
}

func buildPairing(c *circuit.Circuit, comps []Comparator) map[int]pairEntry {
	pairing := make(map[int]pairEntry)
	for _, cp := range comps {
		cur, exists := pairing[cp.Input]
		switch {
		case !exists:
			pairing[cp.Input] = pairEntry{key: cp.Key, xnor: cp.Xnor, rank: cp.Node}
		case !cur.xnor && cp.Xnor:
			pairing[cp.Input] = pairEntry{key: cp.Key, xnor: true, rank: cp.Node}
		}
	}
	return pairing
}

// cubeToKey translates a recovered protected cube into a key assignment
// using the comparator pairing. With XNOR comparators the key bit equals
// the cube bit; with XOR comparators it is inverted (§III-A's z).
func cubeToKey(c *circuit.Circuit, cube map[int]bool, pairing map[int]pairEntry) CandidateKey {
	ck := CandidateKey{
		Key:  make(map[string]bool),
		Cube: make(map[string]bool),
	}
	for pi, v := range cube {
		ck.Cube[c.Nodes[pi].Name] = v
		if pe, ok := pairing[pi]; ok {
			kv := v
			if !pe.xnor {
				kv = !v
			}
			ck.Key[c.Nodes[pe.key].Name] = kv
		}
	}
	return ck
}
