package fall

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/aig"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/lock"
	"repro/internal/testcirc"
)

// lockFig2a locks the paper's running example and returns original + result.
func lockFig2a(t *testing.T, h int, seed int64) (*circuit.Circuit, *lock.Result) {
	t.Helper()
	orig := testcirc.Fig2a()
	res, err := lock.SFLLHD(orig, lock.Options{KeySize: 4, H: h, Seed: seed, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return orig, res
}

func keysEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func containsCorrectKey(res *Result, key map[string]bool) bool {
	for _, ck := range res.Keys {
		if keysEqual(ck.Key, key) {
			return true
		}
	}
	return false
}

func TestFindComparatorsOnFig2b(t *testing.T) {
	_, lr := lockFig2a(t, 0, 7)
	comps := FindComparators(lr.Locked)
	if len(comps) == 0 {
		t.Fatal("no comparators found in TTLock netlist")
	}
	// Each protected input must be paired with its key input.
	pairs := map[string]string{}
	for _, cp := range comps {
		pi := lr.Locked.Nodes[cp.Input].Name
		key := lr.Locked.Nodes[cp.Key].Name
		if prev, ok := pairs[pi]; ok && prev != key {
			t.Errorf("input %s paired with both %s and %s", pi, prev, key)
		}
		pairs[pi] = key
	}
	for i, pi := range lr.ProtectedInputs {
		want := lr.KeyNames[i]
		if got := pairs[pi]; got != want {
			t.Errorf("pairing for %s: got %s, want %s", pi, got, want)
		}
	}
}

func TestSupportMatchFindsStripper(t *testing.T) {
	_, lr := lockFig2a(t, 0, 7)
	comps := FindComparators(lr.Locked)
	var compX []int
	seen := map[int]bool{}
	for _, cp := range comps {
		if !seen[cp.Input] {
			seen[cp.Input] = true
			compX = append(compX, cp.Input)
		}
	}
	cands := SupportMatch(lr.Locked, compX)
	if len(cands) == 0 {
		t.Fatal("support matching found no candidates")
	}
	// No candidate may depend on key inputs.
	for _, cand := range cands {
		for _, s := range lr.Locked.Support(cand) {
			if lr.Locked.Nodes[s].IsKey {
				t.Errorf("candidate %d depends on key input", cand)
			}
		}
	}
}

func TestAttackTTLockFig2a(t *testing.T) {
	_, lr := lockFig2a(t, 0, 7)
	res, err := Attack(context.Background(), lr.Locked, Options{H: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keys) == 0 {
		t.Fatal("attack produced no keys")
	}
	if !containsCorrectKey(res, lr.Key) {
		t.Fatalf("correct key not among %d shortlisted keys", len(res.Keys))
	}
	if !res.UniqueKey() {
		t.Logf("note: %d keys shortlisted (oracle needed)", len(res.Keys))
	}
}

func TestAttackSFLLHD1Fig2a(t *testing.T) {
	_, lr := lockFig2a(t, 1, 11)
	res, err := Attack(context.Background(), lr.Locked, Options{H: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !containsCorrectKey(res, lr.Key) {
		t.Fatalf("correct key not recovered; got %d keys", len(res.Keys))
	}
}

func TestAttackSFLLVariousAnalyses(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orig := testcirc.Random(rng, 12, 120)
	cases := []struct {
		h        int
		analysis Analysis
		want     bool // expect success
	}{
		{0, Unateness, true},
		{0, Auto, true},
		{1, SlidingWindow, true},
		{1, Distance2H, true},
		{2, SlidingWindow, true},
		{2, Distance2H, true},
		{3, SlidingWindow, true},
		{3, Distance2H, true}, // 4h=12 <= m=12: applicable
		{4, SlidingWindow, true},
		{4, Distance2H, false}, // 4h=16 > m=12: inapplicable
	}
	for _, tc := range cases {
		lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 12, H: tc.h, Seed: int64(100 + tc.h), Optimize: true})
		if err != nil {
			t.Fatalf("h=%d: lock: %v", tc.h, err)
		}
		res, err := Attack(context.Background(), lr.Locked, Options{H: tc.h, Analysis: tc.analysis})
		if err != nil {
			t.Fatalf("h=%d %v: %v", tc.h, tc.analysis, err)
		}
		got := containsCorrectKey(res, lr.Key)
		if got != tc.want {
			t.Errorf("h=%d %v: recovered=%v, want %v (keys=%d)", tc.h, tc.analysis, got, tc.want, len(res.Keys))
		}
	}
}

func TestAttackWithSeqCounterEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	orig := testcirc.Random(rng, 10, 80)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 10, H: 2, Seed: 5, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(context.Background(), lr.Locked, Options{H: 2, Enc: cnf.SeqCounter})
	if err != nil {
		t.Fatal(err)
	}
	if !containsCorrectKey(res, lr.Key) {
		t.Error("seq-counter encoding failed to recover key")
	}
}

func TestAttackTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	orig := testcirc.Random(rng, 10, 80)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 10, H: 2, Seed: 5, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: the attack must stop before any analysis
	_, err = Attack(ctx, lr.Locked, Options{H: 2})
	if err != ErrTimeout {
		t.Errorf("cancelled context: err = %v, want ErrTimeout", err)
	}
}

func TestAttackUnlockedCircuitFindsNothing(t *testing.T) {
	// A circuit without key inputs has no comparators; the attack reports
	// no keys rather than failing.
	orig := testcirc.Fig2a()
	res, err := Attack(context.Background(), orig, Options{H: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Comparators) != 0 || len(res.Keys) != 0 {
		t.Errorf("found %d comparators / %d keys in unlocked circuit",
			len(res.Comparators), len(res.Keys))
	}
}

func TestAttackRLLFindsNoStripper(t *testing.T) {
	// RLL has no cube stripper; FALL may find comparator-like gates but
	// the functional analyses must not confirm a full key... unless the
	// coincidence equivalence holds, which equivalence checking rules out
	// for keys >= 2 bits spread over the circuit.
	orig := testcirc.C17()
	lr, err := lock.RandomXOR(orig, lock.Options{KeySize: 3, Seed: 9, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(context.Background(), lr.Locked, Options{H: 0})
	if err != nil {
		t.Fatal(err)
	}
	// We only require that any shortlisted key is *not* blindly claimed
	// unique-and-correct: if keys were found, they must fail against the
	// real function somewhere, or equal the correct key by luck. This
	// documents FALL's scope (it targets stripped-functionality locking).
	t.Logf("RLL: %d comparators, %d candidates, %d keys",
		len(res.Comparators), len(res.Candidates), len(res.Keys))
}

// buildCube builds a pure cube circuit over m inputs: AND of literals per
// the cube bits (strip_0).
func buildCube(m int, cube []bool) *circuit.Circuit {
	c := circuit.New("cube")
	lits := make([]int, m)
	for i := 0; i < m; i++ {
		in := c.AddInput("")
		if cube[i] {
			lits[i] = in
		} else {
			lits[i] = c.MustGate("", circuit.Not, in)
		}
	}
	c.MarkOutput(c.MustGate("F", circuit.And, lits...))
	return c
}

// Property (Lemma 1): AnalyzeUnateness recovers the exact cube of a
// random cube function.
func TestQuickLemma1Unateness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(8)
		cube := make([]bool, m)
		for i := range cube {
			cube[i] = rng.Intn(2) == 1
		}
		c := buildCube(m, cube)
		opts := Options{H: 0}
		ctx, err := newAnalysisContext(context.Background(), c, c.Outputs[0], false, &opts)
		if err != nil {
			return false
		}
		got, ok, err := ctx.AnalyzeUnateness()
		if err != nil || !ok {
			return false
		}
		for i, in := range ctx.inputs {
			if got[ctx.inputMap[in]] != cube[i] {
				return false
			}
		}
		okEq, err := ctx.EquivalenceCheck(got, 0)
		return err == nil && okEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnatenessRejectsBinate(t *testing.T) {
	// XOR is binate in both inputs.
	c := circuit.New("binate")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.MustGate("g", circuit.Xor, a, b)
	c.MarkOutput(g)
	for _, pre := range []bool{false, true} {
		opts := Options{H: 0, DisableSimPrefilter: pre}
		ctx, err := newAnalysisContext(context.Background(), c, g, false, &opts)
		if err != nil {
			t.Fatal(err)
		}
		_, ok, err := ctx.AnalyzeUnateness()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("prefilterDisabled=%v: XOR reported unate", pre)
		}
	}
}

// buildStripHD builds strip_h(cube) as OR of minterms at Hamming distance
// exactly h from the cube (only for small m).
func buildStripHD(m, h int, cube []bool) *circuit.Circuit {
	c := circuit.New("strip")
	ins := make([]int, m)
	for i := range ins {
		ins[i] = c.AddInput("")
	}
	var minterms []int
	for p := 0; p < 1<<uint(m); p++ {
		hd := 0
		for i := 0; i < m; i++ {
			bit := p&(1<<uint(i)) != 0
			if bit != cube[i] {
				hd++
			}
		}
		if hd != h {
			continue
		}
		lits := make([]int, m)
		for i := 0; i < m; i++ {
			if p&(1<<uint(i)) != 0 {
				lits[i] = ins[i]
			} else {
				lits[i] = c.MustGate("", circuit.Not, ins[i])
			}
		}
		minterms = append(minterms, c.MustGate("", circuit.And, lits...))
	}
	var out int
	switch len(minterms) {
	case 0:
		out = c.AddConst("zero", false)
	case 1:
		out = minterms[0]
	default:
		out = c.MustGate("F", circuit.Or, minterms...)
	}
	c.MarkOutput(out)
	return c
}

// Property (Lemmas 2/3): SlidingWindow and Distance2H recover the cube of
// a true strip_h function built from its minterms.
func TestQuickLemmas23OnTrueStripper(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(4) // 4..7
		// SlidingWindow requires h < floor(m/2) (paper §IV-B2).
		hMax := m/2 - 1
		if hMax < 1 {
			hMax = 1
		}
		h := 1 + rng.Intn(hMax)
		cube := make([]bool, m)
		for i := range cube {
			cube[i] = rng.Intn(2) == 1
		}
		c := aig.Strash(buildStripHD(m, h, cube))
		opts := Options{H: h}
		ctx, err := newAnalysisContext(context.Background(), c, c.Outputs[0], false, &opts)
		if err != nil {
			return false
		}
		check := func(got map[int]bool, ok bool, err error) bool {
			if err != nil || !ok {
				return false
			}
			for i, in := range ctx.inputs {
				if got[ctx.inputMap[in]] != cube[i] {
					return false
				}
			}
			okEq, err := ctx.EquivalenceCheck(got, h)
			return err == nil && okEq
		}
		if !check(ctx.SlidingWindowAnalysis(h)) {
			t.Logf("seed %d m=%d h=%d: sliding window failed", seed, m, h)
			return false
		}
		if 4*h <= m && !check(ctx.Distance2HAnalysis(h)) {
			t.Logf("seed %d m=%d h=%d: distance2h failed", seed, m, h)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEquivalenceCheckRejectsWrongCube(t *testing.T) {
	cube := []bool{true, false, true, true}
	c := buildCube(4, cube)
	opts := Options{H: 0}
	ctx, err := newAnalysisContext(context.Background(), c, c.Outputs[0], false, &opts)
	if err != nil {
		t.Fatal(err)
	}
	wrong := make(map[int]bool)
	for i, in := range ctx.inputs {
		wrong[ctx.inputMap[in]] = !cube[i]
	}
	ok, err := ctx.EquivalenceCheck(wrong, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("equivalence check accepted the complement cube")
	}
}

func TestSlidingWindowRejectsNonStripper(t *testing.T) {
	// Parity has satisfying pairs at every even distance; Lemma 3 checks
	// must fail or the equivalence check must reject.
	c := circuit.New("parity")
	ins := make([]int, 6)
	for i := range ins {
		ins[i] = c.AddInput("")
	}
	g := c.MustGate("g", circuit.Xor, ins...)
	c.MarkOutput(g)
	opts := Options{H: 1}
	ctx, err := newAnalysisContext(context.Background(), c, g, false, &opts)
	if err != nil {
		t.Fatal(err)
	}
	cube, ok, err := ctx.SlidingWindowAnalysis(1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		okEq, err := ctx.EquivalenceCheck(cube, 1)
		if err != nil {
			t.Fatal(err)
		}
		if okEq {
			t.Error("parity accepted as a strip_1 function")
		}
	}
}

func TestCandidateWithKeySupportRejected(t *testing.T) {
	c := circuit.New("k")
	x := c.AddInput("x")
	k := c.AddKeyInput("keyinput0")
	g := c.MustGate("g", circuit.And, x, k)
	c.MarkOutput(g)
	opts := Options{}
	if _, err := newAnalysisContext(context.Background(), c, g, false, &opts); err == nil {
		t.Error("analysis context accepted key-dependent candidate")
	}
}

func TestAttackKeySubsetOfInputs(t *testing.T) {
	// Locked circuits where the cube covers only some inputs: the attack
	// must still identify the right pairing and key.
	rng := rand.New(rand.NewSource(57))
	orig := testcirc.Random(rng, 14, 150)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 7, H: 1, Seed: 3, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(context.Background(), lr.Locked, Options{H: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !containsCorrectKey(res, lr.Key) {
		t.Fatalf("correct key not recovered (keys=%d)", len(res.Keys))
	}
	for _, ck := range res.Keys {
		if len(ck.Key) != 7 {
			t.Errorf("key covers %d bits, want 7", len(ck.Key))
		}
	}
}

// Property: the full FALL attack recovers planted SFLL keys on random
// circuits across h values.
func TestQuickAttackRecoversPlantedKeys(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nIn := 8 + rng.Intn(5)
		orig := testcirc.Random(rng, nIn, 60+rng.Intn(60))
		m := 6 + rng.Intn(nIn-5)
		h := rng.Intn(m / 3)
		lr, err := lock.SFLLHD(orig, lock.Options{KeySize: m, H: h, Seed: seed, Optimize: true})
		if err != nil {
			t.Logf("seed %d: lock: %v", seed, err)
			return false
		}
		res, err := Attack(context.Background(), lr.Locked, Options{H: h})
		if err != nil {
			t.Logf("seed %d: attack: %v", seed, err)
			return false
		}
		if !containsCorrectKey(res, lr.Key) {
			t.Logf("seed %d (m=%d h=%d): key missed, %d keys", seed, m, h, len(res.Keys))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Regression: signatures encode key-input names, not just sorted bit
// values. Candidates over different key-input subsets (partial pairings)
// used to collide — {keyinput0: 1} and {keyinput1: 1} both signed as "1"
// and one was silently dropped from the shortlist.
func TestSignatureDistinguishesKeyNames(t *testing.T) {
	a := &CandidateKey{Key: map[string]bool{"keyinput0": true}}
	b := &CandidateKey{Key: map[string]bool{"keyinput1": true}}
	if a.Signature() == b.Signature() {
		t.Errorf("keys over different key-input subsets share signature %q", a.Signature())
	}
	// Same assignment must still dedup.
	c := &CandidateKey{Key: map[string]bool{"keyinput0": true}}
	if a.Signature() != c.Signature() {
		t.Errorf("identical keys got distinct signatures %q vs %q", a.Signature(), c.Signature())
	}
	// Values still matter.
	d := &CandidateKey{Key: map[string]bool{"keyinput0": false}}
	if a.Signature() == d.Signature() {
		t.Error("complementary assignments share a signature")
	}
}

// The FALL shortlist must be byte-identical for every worker count: the
// grid merges in candidate order, and every cell is deterministic.
func TestAttackDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	orig := testcirc.Random(rng, 12, 120)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 12, H: 2, Seed: 29, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	var want *Result
	for _, workers := range []int{1, 4} {
		res, err := Attack(context.Background(), lr.Locked, Options{H: 2, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res
			if len(res.Keys) == 0 {
				t.Fatal("no keys shortlisted; determinism check is vacuous")
			}
			continue
		}
		if !reflect.DeepEqual(res.Keys, want.Keys) {
			t.Errorf("workers=%d: shortlist differs\n got %+v\nwant %+v", workers, res.Keys, want.Keys)
		}
		if !reflect.DeepEqual(res.Candidates, want.Candidates) || !reflect.DeepEqual(res.CompX, want.CompX) {
			t.Errorf("workers=%d: structural stages differ", workers)
		}
	}
}

// Cancelling the context must stop a multi-worker attack promptly, and
// the pool's goroutines must all drain (no leaks).
func TestAttackCancellationDrainsPool(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	orig := testcirc.Random(rng, 14, 150)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 12, H: 3, Seed: 5, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Attack(ctx, lr.Locked, Options{H: 3, Workers: 4})
	elapsed := time.Since(start)
	if err != ErrTimeout {
		// The attack may legitimately finish within 10ms on a fast
		// machine; only a wrong error is a failure.
		if err != nil {
			t.Fatalf("cancelled attack returned %v, want ErrTimeout or nil", err)
		}
	}
	if elapsed > 30*time.Second {
		t.Errorf("cancelled attack took %v to drain", elapsed)
	}
	// The pool goroutines must exit once Attack returns.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines leaked: %d before, %d after drain window", before, got)
	}
}

func TestTruthTable2(t *testing.T) {
	c := circuit.New("tt")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.MustGate("x", circuit.Xor, a, b)
	n := c.MustGate("n", circuit.Xnor, a, b)
	c.MarkOutput(x)
	if tt, ok := truthTable2(c, x, a, b); !ok || tt != 0b0110 {
		t.Errorf("XOR tt = %04b ok=%v", tt, ok)
	}
	if tt, ok := truthTable2(c, n, a, b); !ok || tt != 0b1001 {
		t.Errorf("XNOR tt = %04b ok=%v", tt, ok)
	}
}
