package fall

import (
	"context"
	"time"

	"repro/internal/attack"
)

// fallAttack adapts the FALL pipeline to the unified attack API.
type fallAttack struct {
	opts Options
}

// New returns the FALL attack as an attack.Attack with the given options.
// The Target's H parameter overrides opts.H at Run time, so one configured
// instance serves every locking configuration.
func New(opts Options) attack.Attack { return &fallAttack{opts: opts} }

func (f *fallAttack) Name() string      { return "fall" }
func (f *fallAttack) NeedsOracle() bool { return false }

func (f *fallAttack) Run(ctx context.Context, tgt attack.Target) (*attack.Result, error) {
	if err := attack.CheckTarget(f, tgt); err != nil {
		return nil, err
	}
	opts := f.opts
	opts.H = tgt.H
	if tgt.Workers != 0 {
		opts.Workers = tgt.Workers
	}
	if tgt.Solver != nil {
		opts.Solver = tgt.Solver
	}
	start := time.Now()
	res, err := Attack(ctx, tgt.Locked, opts)
	out := &attack.Result{
		Attack:  f.Name(),
		Elapsed: time.Since(start),
		Details: res,
	}
	if res != nil {
		for _, ck := range res.Keys {
			out.Keys = append(out.Keys, ck.Key)
		}
	}
	switch {
	case err == ErrTimeout:
		out.Status = attack.StatusTimeout
	case err != nil:
		return nil, err
	case len(out.Keys) == 1:
		out.Status = attack.StatusUniqueKey
	case len(out.Keys) > 1:
		out.Status = attack.StatusShortlist
	default:
		out.Status = attack.StatusInconclusive
	}
	return out, nil
}

func init() { attack.Register(New(Options{})) }
