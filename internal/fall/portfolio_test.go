package fall

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/lock"
	"repro/internal/sat"
	"repro/internal/testcirc"
)

func shortlistSignatures(res *Result) []string {
	sigs := make([]string, len(res.Keys))
	for i := range res.Keys {
		sigs[i] = res.Keys[i].Signature()
	}
	return sigs
}

// TestAttackPortfolioGridMatchesDefault runs the full FALL pipeline
// with every candidate×polarity cell racing a per-query portfolio on a
// multi-worker grid, and requires the shortlist to be byte-identical to
// the default single-engine run — the grid-level form of the
// portfolio-verdict-equality acceptance criterion (and, under `go test
// -race`, the concurrency check for per-cell portfolios).
func TestAttackPortfolioGridMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orig := testcirc.Random(rng, 12, 120)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 12, H: 2, Seed: 102, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Attack(context.Background(), lr.Locked, Options{H: 2})
	if err != nil {
		t.Fatal(err)
	}
	setup := attack.NewSolverSetup(sat.Config{Seed: 9}, 3)
	port, err := Attack(context.Background(), lr.Locked, Options{
		H: 2, Workers: 4, Solver: setup.Factory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, want := shortlistSignatures(port), shortlistSignatures(base)
	if len(got) != len(want) {
		t.Fatalf("portfolio run shortlisted %d keys, single engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("shortlist[%d] differs: %q vs %q", i, got[i], want[i])
		}
	}
	stats := setup.WinStats()
	if len(stats) != 3 {
		t.Fatalf("win stats for %d configs, want 3", len(stats))
	}
	var wins, races int64
	for _, cs := range stats {
		wins += cs.Wins
		races += cs.Races
	}
	if races == 0 || wins == 0 {
		t.Errorf("no races recorded (races %d, wins %d) — factory not used?", races, wins)
	}
}

// TestGridDispatchOrderDeterministic: the adaptive dispatch permutation
// is a pure function of the circuit and options.
func TestGridDispatchOrderDeterministic(t *testing.T) {
	_, lr := lockFig2a(t, 1, 11)
	cands := SupportMatch(lr.Locked, func() []int {
		comps := FindComparators(lr.Locked)
		seen := map[int]bool{}
		var xs []int
		for _, cp := range comps {
			if !seen[cp.Input] {
				seen[cp.Input] = true
				xs = append(xs, cp.Input)
			}
		}
		return xs
	}())
	var jobs []analysisJob
	for _, cand := range cands {
		jobs = append(jobs, analysisJob{cand, false}, analysisJob{cand, true})
	}
	opts := &Options{H: 1}
	a := gridDispatchOrder(lr.Locked, jobs, opts)
	b := gridDispatchOrder(lr.Locked, jobs, opts)
	if len(a) != len(jobs) {
		t.Fatalf("order has %d entries, want %d", len(a), len(jobs))
	}
	seen := make([]bool, len(jobs))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch order differs between computations at %d", i)
		}
		if seen[a[i]] {
			t.Fatalf("index %d dispatched twice", a[i])
		}
		seen[a[i]] = true
	}
}
