package fall

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/lock"
	"repro/internal/sat"
	"repro/internal/sat/testsolver"
	"repro/internal/testcirc"
)

// TestAttackHeterogeneousGridMatchesDefault races all three backend
// kinds — the internal CDCL engine, the stub DIMACS solver behind the
// process pipe, and the BDD engine — inside every candidate×polarity
// cell of a multi-worker FALL grid, and requires the shortlist to be
// byte-identical to the default single-engine run. Under `go test
// -race` this is the acceptance check that ProcessEngine and
// bddengine race safely inside the grid.
func TestAttackHeterogeneousGridMatchesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a solver process per grid query")
	}
	stub := testsolver.Build(t)
	rng := rand.New(rand.NewSource(31))
	orig := testcirc.Random(rng, 12, 120)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 12, H: 2, Seed: 102, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Attack(context.Background(), lr.Locked, Options{H: 2})
	if err != nil {
		t.Fatal(err)
	}

	setup := attack.NewSolverSetupEngines([]sat.EngineSpec{
		sat.InternalSpec(sat.Config{}),
		{Kind: sat.EngineProcess, Cmd: stub},
		{Kind: sat.EngineBDD, MaxNodes: 1 << 12},
	})
	het, err := Attack(context.Background(), lr.Locked, Options{
		H: 2, Workers: 4, Solver: setup.Factory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, want := shortlistSignatures(het), shortlistSignatures(base)
	if len(got) != len(want) {
		t.Fatalf("heterogeneous run shortlisted %d keys, single engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("shortlist[%d] differs: %q vs %q", i, got[i], want[i])
		}
	}
	stats := setup.WinStats()
	if len(stats) != 3 {
		t.Fatalf("win stats for %d engines, want 3", len(stats))
	}
	var races, wins int64
	for _, cs := range stats {
		races += cs.Races
		wins += cs.Wins
	}
	if races == 0 || wins == 0 {
		t.Errorf("no races recorded (races %d, wins %d) — factory not used?", races, wins)
	}
}
