package fall

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/testcirc"
)

// TestTraceSpanIntegrity runs the FALL grid under a worker pool with
// tracing on and checks the emitted span tree is sound: unique ids,
// every child's parent emitted, cells parented under the analysis
// phase, queries parented under their cell — the invariants tracestat
// relies on. Run under -race this also exercises concurrent span
// emission from the pool.
func TestTraceSpanIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orig := testcirc.Random(rng, 12, 120)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 12, H: 1, Seed: 5, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}

	ring := obs.NewRing(1 << 14)
	root := obs.New(ring).Start("attack")
	// Query spans are emitted by the solver-setup middleware; the cell
	// span reaches it through the engine build context.
	setup := &attack.SolverSetup{}
	setup.TraceTo(root)
	res, err := Attack(obs.With(context.Background(), root), lr.Locked,
		Options{H: 1, Workers: 4, Solver: setup.Factory()})
	if err != nil {
		t.Fatal(err)
	}
	if !containsCorrectKey(res, lr.Key) {
		t.Fatal("traced attack lost the key — tracing must not change behavior")
	}
	root.End()

	spans := ring.Snapshot()
	ids := map[uint64]string{}
	for _, sp := range spans {
		if _, dup := ids[sp.ID]; dup {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = sp.Name
	}
	var cells, queries int
	for _, sp := range spans {
		if sp.Parent != 0 {
			if _, ok := ids[sp.Parent]; !ok {
				t.Errorf("span %d (%s) parented under unemitted %d", sp.ID, sp.Name, sp.Parent)
			}
		}
		switch sp.Name {
		case "fall.cell":
			cells++
			if ids[sp.Parent] != "fall.analysis" {
				t.Errorf("cell %d parented under %q, want fall.analysis", sp.ID, ids[sp.Parent])
			}
		case "query":
			queries++
			if ids[sp.Parent] != "fall.cell" {
				t.Errorf("query %d parented under %q, want fall.cell", sp.ID, ids[sp.Parent])
			}
		}
	}
	if cells == 0 || queries == 0 {
		t.Fatalf("grid emitted %d cells, %d queries — tracing did not reach the workers", cells, queries)
	}
	if ring.Total() != int64(len(spans)) {
		t.Errorf("ring evicted spans (total %d, kept %d); raise the test capacity", ring.Total(), len(spans))
	}
}
