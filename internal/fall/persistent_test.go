package fall

import (
	"context"
	"testing"

	"repro/internal/attack"
	"repro/internal/sat"
	"repro/internal/sat/testsolver"
)

// TestPersistentOneProcessPerGrid: with a persistent process engine,
// the whole FALL run — comparator mining, every candidate×polarity
// analysis cell, shortlist dedup — shares one long-lived solver
// subprocess per engine slot. The Host respawns only on transport
// failure, so Spawns()==1 proves per-query respawn is gone.
func TestPersistentOneProcessPerGrid(t *testing.T) {
	stub := testsolver.Build(t)
	_, lr := lockFig2a(t, 1, 11)
	setup := attack.NewSolverSetupEngines([]sat.EngineSpec{
		{Kind: sat.EngineProcess, Cmd: stub, Persistent: true},
	})
	defer setup.Close()
	res, err := Attack(context.Background(), lr.Locked, Options{H: 1, Solver: setup.Factory()})
	if err != nil {
		t.Fatal(err)
	}
	if !containsCorrectKey(res, lr.Key) {
		t.Fatalf("correct key not recovered; got %d keys", len(res.Keys))
	}
	hosts := setup.Hosts()
	if len(hosts) != 1 {
		t.Fatalf("setup spawned %d hosts, want 1 per persistent engine slot", len(hosts))
	}
	for slot, h := range hosts {
		if h.Broken() {
			t.Errorf("slot %d: host marked broken", slot)
		}
		if n := h.Spawns(); n != 1 {
			t.Errorf("slot %d: %d subprocess spawns, want exactly 1 for the whole grid", slot, n)
		}
	}
}

// TestPersistentMatchesDefaultShortlist: the persistent stub engine and
// the in-process default engine shortlist identical keys on the same
// locked instance (verdict equivalence of the session protocol).
func TestPersistentMatchesDefaultShortlist(t *testing.T) {
	stub := testsolver.Build(t)
	_, lr := lockFig2a(t, 1, 11)
	ref, err := Attack(context.Background(), lr.Locked, Options{H: 1})
	if err != nil {
		t.Fatal(err)
	}
	setup := attack.NewSolverSetupEngines([]sat.EngineSpec{
		{Kind: sat.EngineProcess, Cmd: stub, Persistent: true},
	})
	defer setup.Close()
	got, err := Attack(context.Background(), lr.Locked, Options{H: 1, Solver: setup.Factory()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != len(ref.Keys) {
		t.Fatalf("persistent engine shortlisted %d keys, default %d", len(got.Keys), len(ref.Keys))
	}
	for i := range ref.Keys {
		if !keysEqual(got.Keys[i].Key, ref.Keys[i].Key) {
			t.Errorf("key %d differs between persistent and default engines", i)
		}
	}
}
