package fall

import (
	"sync"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// This file builds the frozen clause-stream prefixes the functional
// analyses fork instead of re-encoding. Each candidate node's cone is
// encoded at most once per shape — the two-copy Hamming-distance
// instance, the two-copy unateness instance, and the single-copy
// equivalence-check instance — into a sat.Stream, frozen, and shared
// by both polarity cells of the grid: polarity only affects the small
// per-cell delta (output units or assumptions), never the prefix. For
// engines implementing sat.FrozenLoader (persistent process sessions,
// the memo engine, portfolios) priming with the frozen prefix is O(1)
// and content-hashed, so a whole grid uploads each cone's CNF once.

// candPrefixes caches one candidate's frozen prefixes. The two
// polarity cells may race on different workers; builders run under
// sync.Once, so the first cell to need a prefix encodes it and the
// other blocks and shares. Everything stored is immutable after the
// Once completes.
type candPrefixes struct {
	hdOnce sync.Once
	hd     *hdPrefix

	unateOnce sync.Once
	unate     *unatePrefix

	coneOnce sync.Once
	cone     *conePrefix
}

// hdPrefix is the frozen encoding of cone(X) ∧ cone(X') ∧ HD(X, X') =
// 2h shared by SlidingWindow and Distance2H: two circuit copies, the
// pairwise difference literals and the cardinality constraint. The
// per-polarity output units are left to the cell's delta, so one
// prefix serves both polarities.
type hdPrefix struct {
	h      int
	frozen *sat.Frozen
	xs, ys []sat.Lit // copy-1/copy-2 input literals, indexed like a.inputs
	ds     []sat.Lit // ds[i] = xs[i] XOR ys[i]
	f1, f2 sat.Lit   // positive-polarity outputs of the two copies
}

func buildHDPrefix(a *analysisContext, h int) *hdPrefix {
	st := sat.NewStream()
	e := cnf.NewEncoder(st)
	lits1 := e.EncodeCircuitWith(a.cone, nil)
	lits2 := e.EncodeCircuitWith(a.cone, nil)
	p := &hdPrefix{
		h:  h,
		xs: cnf.InputLits(a.inputs, lits1),
		ys: cnf.InputLits(a.inputs, lits2),
		f1: lits1[a.cone.Outputs[0]],
		f2: lits2[a.cone.Outputs[0]],
	}
	p.ds = e.XorPairs(p.xs, p.ys)
	e.ExactlyK(p.ds, 2*h, a.opts.Enc)
	p.frozen = st.Freeze()
	return p
}

func (c *candPrefixes) hdFor(a *analysisContext, h int) *hdPrefix {
	c.hdOnce.Do(func() { c.hd = buildHDPrefix(a, h) })
	if c.hd.h != h {
		// A different distance than the cached one: only possible when the
		// analyses are driven directly with varying h; build unshared.
		return buildHDPrefix(a, h)
	}
	return c.hd
}

// unatePrefix is the frozen two-copy encoding behind checkUnate: the
// copies share nothing, and eq[i] is the literal asserting the copies
// agree on input i. A cell's unateness queries select the flipped
// input and the violating output pattern purely through assumptions,
// so a single engine (and, behind a process engine, a single solver
// session) serves all 2m queries of a cell.
type unatePrefix struct {
	frozen *sat.Frozen
	x0, x1 []sat.Lit // the two copies' input literals, indexed like a.inputs
	eq     []sat.Lit // eq[i] true iff x0[i] == x1[i]
	f0, f1 sat.Lit   // positive-polarity outputs of the two copies
}

func (c *candPrefixes) unateFor(a *analysisContext) *unatePrefix {
	c.unateOnce.Do(func() {
		st := sat.NewStream()
		e := cnf.NewEncoder(st)
		lits0 := e.EncodeCircuitWith(a.cone, nil)
		lits1 := e.EncodeCircuitWith(a.cone, nil)
		u := &unatePrefix{
			x0: cnf.InputLits(a.inputs, lits0),
			x1: cnf.InputLits(a.inputs, lits1),
			f0: lits0[a.cone.Outputs[0]],
			f1: lits1[a.cone.Outputs[0]],
		}
		u.eq = make([]sat.Lit, len(a.inputs))
		for i := range a.inputs {
			u.eq[i] = e.Xor(u.x0[i], u.x1[i]).Neg()
		}
		u.frozen = st.Freeze()
		c.unate = u
	})
	return c.unate
}

// conePrefix is the frozen single-copy cone encoding the equivalence
// check extends with its cube-specific reference comparator and miter.
// The encoder is kept so delta encoders fork its constant-literal
// state (ForkOnto) and stay variable-for-variable identical to a
// direct, unforked construction.
type conePrefix struct {
	frozen *sat.Frozen
	ins    []sat.Lit // cone input literals, indexed like a.inputs
	f      sat.Lit   // positive-polarity output
	enc    *cnf.Encoder
}

func (c *candPrefixes) coneFor(a *analysisContext) *conePrefix {
	c.coneOnce.Do(func() {
		st := sat.NewStream()
		e := cnf.NewEncoder(st)
		lits := e.EncodeCircuitWith(a.cone, nil)
		c.cone = &conePrefix{
			frozen: st.Freeze(),
			ins:    cnf.InputLits(a.inputs, lits),
			f:      lits[a.cone.Outputs[0]],
			enc:    e,
		}
	})
	return c.cone
}
