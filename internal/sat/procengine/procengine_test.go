package procengine

import (
	"context"
	"testing"
	"time"

	"repro/internal/sat"
	"repro/internal/sat/testsolver"
)

// load fills an engine with a named deterministic instance and returns
// the expected verdict.
type instance struct {
	name string
	want sat.Status
	load func(e sat.Engine)
}

func pigeonhole(e sat.Engine, p, h int) {
	v := make([][]int, p)
	for i := range v {
		v[i] = make([]int, h)
		for j := range v[i] {
			v[i][j] = e.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		lits := make([]sat.Lit, h)
		for j := 0; j < h; j++ {
			lits[j] = sat.PosLit(v[i][j])
		}
		e.AddClause(lits...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				e.AddClause(sat.NegLit(v[i1][j]), sat.NegLit(v[i2][j]))
			}
		}
	}
}

func instances() []instance {
	return []instance{
		{"php54-unsat", sat.Unsat, func(e sat.Engine) { pigeonhole(e, 5, 4) }},
		{"php44-sat", sat.Sat, func(e sat.Engine) { pigeonhole(e, 4, 4) }},
		{"xor-chain-sat", sat.Sat, func(e sat.Engine) {
			vars := make([]int, 10)
			for i := range vars {
				vars[i] = e.NewVar()
			}
			for i := 0; i+1 < len(vars); i++ {
				e.AddClause(sat.PosLit(vars[i]), sat.PosLit(vars[i+1]))
				e.AddClause(sat.NegLit(vars[i]), sat.NegLit(vars[i+1]))
			}
			e.AddClause(sat.PosLit(vars[0]))
		}},
	}
}

// TestVerdictsMatchInternal: the DIMACS-pipe engine through the stub
// solver agrees with the internal engine on every table instance, and
// its SAT models satisfy the formula.
func TestVerdictsMatchInternal(t *testing.T) {
	stub := testsolver.Build(t)
	for _, inst := range instances() {
		ref := sat.New()
		inst.load(ref)
		want := ref.Solve()
		if want != inst.want {
			t.Fatalf("%s: internal engine says %v, table says %v", inst.name, want, inst.want)
		}

		e := New(stub)
		inst.load(e)
		got := e.Solve()
		if got != want {
			t.Fatalf("%s: process engine %v, internal %v (err: %v)", inst.name, got, want, e.Err())
		}
		if e.Err() != nil {
			t.Errorf("%s: clean solve left an error: %v", inst.name, e.Err())
		}
		if got == sat.Sat {
			// The stub runs the same default-configured CDCL search, so
			// the models must match variable for variable.
			for v := 0; v < ref.NumVars(); v++ {
				if e.Value(v) != ref.Value(v) {
					t.Errorf("%s: model differs at x%d", inst.name, v)
					break
				}
			}
		}
	}
}

// TestSolveAssuming: assumptions act as per-call units — they flip
// verdicts for the call, and do not leak into later calls.
func TestSolveAssuming(t *testing.T) {
	stub := testsolver.Build(t)
	e := New(stub)
	x, y := e.NewVar(), e.NewVar()
	e.AddClause(sat.PosLit(x), sat.PosLit(y)) // x or y
	e.AddClause(sat.NegLit(x), sat.NegLit(y)) // not both

	if got := e.Solve(); got != sat.Sat {
		t.Fatalf("base: %v (err: %v)", got, e.Err())
	}
	if got := e.SolveAssuming([]sat.Lit{sat.PosLit(x), sat.PosLit(y)}); got != sat.Unsat {
		t.Fatalf("assuming x∧y: %v (err: %v)", got, e.Err())
	}
	if got := e.SolveAssuming([]sat.Lit{sat.PosLit(x)}); got != sat.Sat {
		t.Fatalf("assuming x: %v (err: %v)", got, e.Err())
	}
	if !e.LitTrue(sat.PosLit(x)) || e.LitTrue(sat.PosLit(y)) {
		t.Errorf("assuming x: model x=%v y=%v, want true/false", e.Value(x), e.Value(y))
	}
	// The assumptions from previous calls must be gone.
	if got := e.SolveAssuming([]sat.Lit{sat.NegLit(x)}); got != sat.Sat {
		t.Fatalf("assuming ¬x after earlier assumptions: %v (err: %v)", got, e.Err())
	}
	if e.Value(x) || !e.Value(y) {
		t.Errorf("assuming ¬x: model x=%v y=%v, want false/true", e.Value(x), e.Value(y))
	}
}

// TestEmptyClauseIsUnsat: an empty clause makes every later call Unsat
// without spawning the solver.
func TestEmptyClauseIsUnsat(t *testing.T) {
	e := New("/nonexistent/solver")
	e.NewVar()
	if e.AddClause() {
		t.Error("empty clause accepted")
	}
	if got := e.Solve(); got != sat.Unsat {
		t.Errorf("after empty clause: %v", got)
	}
	if e.Err() != nil {
		t.Errorf("trivial Unsat must not touch the binary: %v", e.Err())
	}
}

// TestCancellationKillsProcess: cancelling the context kills a running
// solver and the call returns Unknown promptly, with no sticky error.
func TestCancellationKillsProcess(t *testing.T) {
	stub := testsolver.Build(t)
	e := New(stub, "-sleep=30s")
	x := e.NewVar()
	e.AddClause(sat.PosLit(x))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	e.SetContext(ctx)
	start := time.Now()
	got := e.Solve()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled solve took %v", elapsed)
	}
	if got != sat.Unknown {
		t.Errorf("cancelled solve: %v, want UNKNOWN", got)
	}
	if e.Err() != nil {
		t.Errorf("cancellation must not record an error: %v", e.Err())
	}
	// A pre-cancelled context short-circuits without spawning.
	if got := e.Solve(); got != sat.Unknown {
		t.Errorf("dead-context solve: %v, want UNKNOWN", got)
	}
}

// TestMalformedOutput: every fault-injection mode of the stub makes the
// engine return Unknown with a retained error — never a verdict.
func TestMalformedOutput(t *testing.T) {
	stub := testsolver.Build(t)
	modes := []string{"-mode=truncated", "-mode=nostatus", "-mode=garbage", "-mode=silent"}
	for _, mode := range modes {
		e := New(stub, mode)
		pigeonhole(e, 4, 4) // SAT instance, so truncated/nostatus emit a model
		if got := e.Solve(); got != sat.Unknown {
			t.Errorf("%s: verdict %v, want UNKNOWN", mode, got)
		}
		if e.Err() == nil {
			t.Errorf("%s: no error retained", mode)
		}
	}
}

// TestNonzeroExit: competition exit codes (10/20) with valid output are
// not failures; a nonzero exit with no parseable output is.
func TestNonzeroExit(t *testing.T) {
	stub := testsolver.Build(t)

	e := New(stub) // default competition codes: exits 10 on this SAT instance
	pigeonhole(e, 4, 4)
	if got := e.Solve(); got != sat.Sat || e.Err() != nil {
		t.Errorf("exit 10 with valid output: %v, err %v", got, e.Err())
	}

	e = New(stub, "-mode=silent", "-exit=3")
	pigeonhole(e, 4, 4)
	if got := e.Solve(); got != sat.Unknown {
		t.Errorf("exit 3, no output: verdict %v, want UNKNOWN", got)
	}
	if e.Err() == nil {
		t.Error("exit 3, no output: no error retained")
	}
}

// TestMissingBinary: a solver that is not on PATH yields Unknown with a
// retained error (portfolios fall through; Check fails fast upstream).
func TestMissingBinary(t *testing.T) {
	e := New("definitely-not-a-sat-solver-7f3a")
	x := e.NewVar()
	e.AddClause(sat.PosLit(x))
	if got := e.Solve(); got != sat.Unknown {
		t.Errorf("missing binary: verdict %v, want UNKNOWN", got)
	}
	if e.Err() == nil {
		t.Error("missing binary: no error retained")
	}
}

// TestPersistentSessionsShareOneProcess: any number of persistent
// engines over one Host answer like the internal engine — verdicts and
// models — while the host spawns exactly one subprocess.
func TestPersistentSessionsShareOneProcess(t *testing.T) {
	stub := testsolver.Build(t)
	h := NewHost(stub)
	defer h.Close()
	for _, inst := range instances() {
		ref := sat.New()
		inst.load(ref)
		want := ref.Solve()

		e := NewPersistent(h)
		inst.load(e)
		got := e.Solve()
		if got != want {
			t.Fatalf("%s: persistent engine %v, internal %v (err: %v)", inst.name, got, want, e.Err())
		}
		if e.Err() != nil {
			t.Errorf("%s: clean persistent solve left an error: %v", inst.name, e.Err())
		}
		if got == sat.Sat {
			for v := 0; v < ref.NumVars(); v++ {
				if e.Value(v) != ref.Value(v) {
					t.Errorf("%s: model differs at x%d", inst.name, v)
					break
				}
			}
		}
	}
	if n := h.Spawns(); n != 1 {
		t.Errorf("host spawned %d processes across sessions, want 1", n)
	}
}

// TestPersistentAssumptionsAndDeltas: one session answers a sequence of
// assumption queries interleaved with clause deltas; assumptions do not
// leak, deltas persist, and the whole sequence matches the internal
// engine query for query.
func TestPersistentAssumptionsAndDeltas(t *testing.T) {
	stub := testsolver.Build(t)
	h := NewHost(stub)
	defer h.Close()

	e := NewPersistent(h)
	ref := sat.New()
	step := func(name string, f func(e sat.Engine) sat.Status) {
		t.Helper()
		want := f(ref)
		got := f(e)
		if got != want {
			t.Fatalf("%s: persistent %v, internal %v (err: %v)", name, got, want, e.Err())
		}
	}
	var x, y int
	for _, eng := range []sat.Engine{ref, e} {
		x, y = eng.NewVar(), eng.NewVar()
		eng.AddClause(sat.PosLit(x), sat.PosLit(y))
	}
	step("base", func(e sat.Engine) sat.Status { return e.Solve() })
	step("assume ¬x", func(e sat.Engine) sat.Status { return e.SolveAssuming([]sat.Lit{sat.NegLit(x)}) })
	if e.Value(x) || !e.Value(y) {
		t.Errorf("assuming ¬x: model x=%v y=%v, want false/true", e.Value(x), e.Value(y))
	}
	// Delta: not both. The previous assumption must be gone.
	for _, eng := range []sat.Engine{ref, e} {
		eng.AddClause(sat.NegLit(x), sat.NegLit(y))
	}
	step("delta", func(e sat.Engine) sat.Status { return e.Solve() })
	step("assume x∧y", func(e sat.Engine) sat.Status {
		return e.SolveAssuming([]sat.Lit{sat.PosLit(x), sat.PosLit(y)})
	})
	// Delta growing the variable set.
	var z int
	for _, eng := range []sat.Engine{ref, e} {
		z = eng.NewVar()
		eng.AddClause(sat.NegLit(x), sat.PosLit(z))
	}
	step("new var delta", func(e sat.Engine) sat.Status {
		return e.SolveAssuming([]sat.Lit{sat.PosLit(x)})
	})
	if !e.Value(z) {
		t.Errorf("assuming x: z=%v, want true", e.Value(z))
	}
	if n := h.Spawns(); n != 1 {
		t.Errorf("host spawned %d processes, want 1", n)
	}
}

// TestPersistentFrozenPrefix: engines primed with the same frozen
// prefix share one server-side prefix upload and one subprocess; each
// fork's delta stays private, and a broken-session fallback still sees
// the frozen clauses (the one-shot dump materializes the prefix).
func TestPersistentFrozenPrefix(t *testing.T) {
	stub := testsolver.Build(t)
	stream := sat.NewStream()
	a, b := sat.PosLit(stream.NewVar()), sat.PosLit(stream.NewVar())
	stream.AddClause(a, b)
	frozen := stream.Freeze()

	h := NewHost(stub)
	defer h.Close()
	pin := []sat.Lit{a.Neg(), a} // fork i pins a to i's parity
	for i, lit := range pin {
		e := NewPersistent(h)
		sat.Prime(e, frozen)
		e.AddClause(lit)
		if got := e.Solve(); got != sat.Sat {
			t.Fatalf("fork %d: %v (err: %v)", i, got, e.Err())
		}
		if e.LitTrue(lit) != true || e.LitTrue(lit.Neg()) {
			t.Errorf("fork %d: pinned literal false in model", i)
		}
	}
	// Contradictory pins together would be UNSAT; separately each fork is
	// SAT — forks did not leak into one another.
	if n := h.Spawns(); n != 1 {
		t.Errorf("host spawned %d processes, want 1", n)
	}

	// A one-shot fallback engine (broken host) must still include the
	// frozen prefix in its dump: pinning both a and b false contradicts
	// the prefix clause.
	h2 := NewHost(stub, "-serve-fault=stale")
	defer h2.Close()
	e := NewPersistent(h2)
	sat.Prime(e, frozen)
	e.AddClause(a.Neg())
	e.AddClause(b.Neg())
	if got := e.Solve(); got != sat.Unknown || e.Err() == nil {
		t.Fatalf("twice-stale session: %v (err: %v), want Unknown with error", got, e.Err())
	}
	if got := e.Solve(); got != sat.Unsat {
		t.Errorf("fallback dump missing frozen prefix: %v, want Unsat (err: %v)", got, e.Err())
	}
	if e.Err() != nil {
		t.Errorf("clean fallback solve left an error: %v", e.Err())
	}
}

// TestPersistentFaultDegradation: every persistent-protocol fault mode
// degrades the failing call to Unknown with Err set — never a wrong
// verdict — and later calls answer correctly on the one-shot path.
func TestPersistentFaultDegradation(t *testing.T) {
	stub := testsolver.Build(t)
	cases := []struct {
		name string
		args []string
	}{
		{"hangup", []string{"-serve-fault=hangup", "-serve-fault-after=2"}},
		{"garbage", []string{"-serve-fault=garbage", "-serve-fault-after=2"}},
		{"stale", []string{"-serve-fault=stale"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHost(stub, c.args...)
			defer h.Close()
			e := NewPersistent(h)
			x, y := e.NewVar(), e.NewVar()
			e.AddClause(sat.PosLit(x), sat.PosLit(y))
			e.AddClause(sat.NegLit(x), sat.NegLit(y))

			faulted := false
			for q, as := range [][]sat.Lit{
				nil, // healthy for fault-after=2; already stale for stale
				{sat.PosLit(x), sat.PosLit(y)},
				{sat.PosLit(x)},
			} {
				want := sat.Sat
				if q == 1 {
					want = sat.Unsat
				}
				got := e.SolveAssuming(as)
				if got == sat.Unknown && !faulted {
					// The injected failure: Unknown with a retained error.
					faulted = true
					if e.Err() == nil {
						t.Fatalf("query %d: Unknown with no error", q)
					}
					continue
				}
				if got != want {
					t.Fatalf("query %d: verdict %v, want %v (err: %v)", q, got, want, e.Err())
				}
				if faulted && e.Err() != nil {
					t.Errorf("query %d: fallback solve left an error: %v", q, e.Err())
				}
			}
			if !faulted {
				t.Fatalf("fault %s never fired", c.name)
			}
		})
	}
}

// TestPortfolioWithProcessEngine: a heterogeneous internal+process
// portfolio agrees with the internal verdict on every instance.
func TestPortfolioWithProcessEngine(t *testing.T) {
	stub := testsolver.Build(t)
	for _, inst := range instances() {
		p := sat.NewEnginePortfolio(
			[]sat.Engine{sat.New(), New(stub)},
			sat.NewLedgerLabels([]string{"internal", "stub"}),
		)
		inst.load(p)
		if got := p.Solve(); got != inst.want {
			t.Errorf("%s: portfolio %v, want %v", inst.name, got, inst.want)
		}
	}
}
