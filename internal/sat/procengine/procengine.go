// Package procengine implements sat.Engine on top of an external
// DIMACS solver binary — the paper's original toolchain shape, which ran
// its functional-analysis queries on a SAT-competition solver
// (Lingeling) over the DIMACS interchange format.
//
// The engine buffers the incremental clause stream in memory; each
// Solve/SolveAssuming call dumps the buffered CNF (assumptions as unit
// clauses) to a temp file, spawns the solver on it, and parses the
// competition-format answer (`s SATISFIABLE` / `v ...` lines) back into
// a verdict and model. External solvers keep no state between calls, so
// "incremental" solving re-dumps from the buffer — assumptions never
// leak into later calls, and (unlike the internal engine) learnt
// clauses do not persist. Context cancellation kills the solver
// process; any malformed or missing output makes the call return
// Unknown with the underlying error retained in Err, so a portfolio
// falls through to its other members instead of mis-reporting a
// verdict.
package procengine

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/dimacs"
	"repro/internal/sat"
)

// DefaultSolvers lists the solver binaries Find probes for, in
// preference order.
var DefaultSolvers = []string{"kissat", "cadical", "lingeling", "minisat", "glucose"}

// Find returns the first of the named solver binaries present on PATH
// (DefaultSolvers when none are given).
func Find(names ...string) (string, error) {
	if len(names) == 0 {
		names = DefaultSolvers
	}
	for _, n := range names {
		if path, err := exec.LookPath(n); err == nil {
			return path, nil
		}
	}
	return "", fmt.Errorf("procengine: none of %s found on PATH", strings.Join(names, ", "))
}

// ProcessEngine is a sat.Engine backed by an external DIMACS solver
// process. Like every engine, it is not safe for concurrent use; racing
// several lives in sat.Portfolio.
type ProcessEngine struct {
	cmd  string   // binary name (resolved on PATH per call) or path
	args []string // extra arguments before the CNF file

	nVars   int
	clauses [][]int // DIMACS literals, buffered incrementally
	ok      bool    // false once an empty clause is added
	ctx     context.Context
	model   []bool // 1-based, from the last SAT answer
	stats   sat.Stats
	err     error // last spawn/parse failure (sticky until the next call)
}

var _ sat.Engine = (*ProcessEngine)(nil)

// New returns an engine spawning cmd (a binary name to resolve on PATH
// or an explicit path) with the given extra arguments before the CNF
// file argument. The binary is not checked here — a missing solver
// surfaces as Unknown verdicts with Err set (use Find or
// attack.SolverSetup.Check to fail fast).
func New(cmd string, args ...string) *ProcessEngine {
	return &ProcessEngine{cmd: cmd, args: args, ok: true}
}

// Cmd returns the configured solver command.
func (e *ProcessEngine) Cmd() string { return e.cmd }

// Err returns the failure of the most recent Solve call that returned
// Unknown for an abnormal reason (unparseable output, spawn failure),
// or nil after a clean call. Context cancellation is not an error.
func (e *ProcessEngine) Err() error { return e.err }

// NewVar introduces a fresh variable and returns its index.
func (e *ProcessEngine) NewVar() int {
	e.nVars++
	return e.nVars - 1
}

// NumVars returns the number of variables created so far.
func (e *ProcessEngine) NumVars() int { return e.nVars }

// AddClause buffers a clause. It returns false only when the clause is
// empty (trivially unsatisfiable): without running the solver, an
// external engine cannot detect deeper top-level conflicts the way the
// propagating internal engine does.
func (e *ProcessEngine) AddClause(lits ...sat.Lit) bool {
	if len(lits) == 0 {
		e.ok = false
		return false
	}
	cl := make([]int, len(lits))
	for i, l := range lits {
		v := l.Var() + 1
		if l.Sign() {
			v = -v
		}
		cl[i] = v
	}
	e.clauses = append(e.clauses, cl)
	return e.ok
}

// SetContext attaches a cancellation/deadline context: once it expires,
// the running solver process is killed and Solve returns Unknown.
func (e *ProcessEngine) SetContext(ctx context.Context) { e.ctx = ctx }

// Stats returns the engine's counters. Only SolveCalls is meaningful:
// external solvers do not report their conflict work in a form the
// snapshot accounting could use.
func (e *ProcessEngine) Stats() sat.Stats { return e.stats }

// Solve determines satisfiability of the buffered clause set.
func (e *ProcessEngine) Solve() sat.Status { return e.SolveAssuming(nil) }

// SolveAssuming solves under assumption literals, dumped as unit
// clauses for this call only.
func (e *ProcessEngine) SolveAssuming(assumptions []sat.Lit) sat.Status {
	e.stats.SolveCalls++
	e.err = nil
	if !e.ok {
		return sat.Unsat
	}
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return sat.Unknown
	}
	units := make([]int, len(assumptions))
	for i, l := range assumptions {
		v := l.Var() + 1
		if l.Sign() {
			v = -v
		}
		units[i] = v
	}
	res, err := e.run(ctx, units)
	if err != nil {
		if ctx.Err() == nil {
			e.err = err
		}
		return sat.Unknown
	}
	if res.Status == sat.Sat {
		e.model = res.Model
	}
	return res.Status
}

// run performs one external invocation: dump, spawn, parse.
func (e *ProcessEngine) run(ctx context.Context, units []int) (*dimacs.Result, error) {
	in, err := os.CreateTemp("", "procengine-*.cnf")
	if err != nil {
		return nil, err
	}
	inName := in.Name()
	defer os.Remove(inName)
	werr := dimacs.WriteWithUnits(in, &dimacs.Formula{NumVars: e.nVars, Clauses: e.clauses}, units)
	if cerr := in.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, werr
	}

	args := append(append([]string{}, e.args...), inName)
	resultFile := ""
	if fileOutput(e.cmd) {
		// The minisat family writes its verdict and model to a result
		// file argument instead of competition-format stdout.
		out, err := os.CreateTemp("", "procengine-*.out")
		if err != nil {
			return nil, err
		}
		resultFile = out.Name()
		out.Close()
		defer os.Remove(resultFile)
		args = append(args, resultFile)
	}
	cmd := exec.CommandContext(ctx, e.cmd, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run() // competition solvers exit 10 (SAT) / 20 (UNSAT); the output decides

	output := stdout.Bytes()
	if resultFile != "" {
		if output, err = os.ReadFile(resultFile); err != nil {
			return nil, err
		}
	}
	res, perr := dimacs.ParseResult(bytes.NewReader(output), e.nVars)
	if perr != nil {
		if runErr != nil {
			return nil, fmt.Errorf("procengine: %s: %w (%v, stderr: %.200s)", e.cmd, perr, runErr, stderr.String())
		}
		return nil, fmt.Errorf("procengine: %s: %w", e.cmd, perr)
	}
	return res, nil
}

// fileOutput reports whether the solver writes its answer to a result
// file argument (the minisat family) rather than competition stdout.
func fileOutput(cmd string) bool {
	base := filepath.Base(cmd)
	return strings.Contains(base, "minisat") || strings.Contains(base, "glucose")
}

// Value returns variable v's value in the last satisfying assignment.
func (e *ProcessEngine) Value(v int) bool {
	if v+1 >= len(e.model) {
		return false
	}
	return e.model[v+1]
}

// LitTrue reports whether literal l is true in the last model.
func (e *ProcessEngine) LitTrue(l sat.Lit) bool {
	val := e.Value(l.Var())
	if l.Sign() {
		return !val
	}
	return val
}
