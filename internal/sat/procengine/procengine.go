// Package procengine implements sat.Engine on top of an external
// DIMACS solver binary — the paper's original toolchain shape, which ran
// its functional-analysis queries on a SAT-competition solver
// (Lingeling) over the DIMACS interchange format.
//
// The engine buffers the incremental clause stream in memory; each
// Solve/SolveAssuming call dumps the buffered CNF (assumptions as unit
// clauses) to a temp file, spawns the solver on it, and parses the
// competition-format answer (`s SATISFIABLE` / `v ...` lines) back into
// a verdict and model. External solvers keep no state between calls, so
// "incremental" solving re-dumps from the buffer — assumptions never
// leak into later calls, and (unlike the internal engine) learnt
// clauses do not persist. Context cancellation kills the solver
// process; any malformed or missing output makes the call return
// Unknown with the underlying error retained in Err, so a portfolio
// falls through to its other members instead of mis-reporting a
// verdict.
//
// Persistent-session mode (NewPersistent + Host) replaces the per-query
// dump/respawn with ONE long-lived solver subprocess per Host, spawned
// with -serve, speaking a line protocol: each engine opens a session
// over its frozen prefix (sent once per content hash and cached by the
// server), then streams per-query variable/clause deltas and assumption
// lists. Any protocol failure — hangup, garbage, a twice-stale session —
// degrades that call to Unknown with Err set and permanently falls the
// engine (or, on transport death, the whole host) back to the one-shot
// dump/respawn path: a persistent engine never reports a wrong verdict,
// only a slower right one.
package procengine

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dimacs"
	"repro/internal/sat"
)

// DefaultSolvers lists the solver binaries Find probes for, in
// preference order.
var DefaultSolvers = []string{"kissat", "cadical", "lingeling", "minisat", "glucose"}

// Find returns the first of the named solver binaries present on PATH
// (DefaultSolvers when none are given).
func Find(names ...string) (string, error) {
	if len(names) == 0 {
		names = DefaultSolvers
	}
	for _, n := range names {
		if path, err := exec.LookPath(n); err == nil {
			return path, nil
		}
	}
	return "", fmt.Errorf("procengine: none of %s found on PATH", strings.Join(names, ", "))
}

// ProcessEngine is a sat.Engine backed by an external DIMACS solver
// process. Like every engine, it is not safe for concurrent use; racing
// several lives in sat.Portfolio.
type ProcessEngine struct {
	cmd  string   // binary name (resolved on PATH per call) or path
	args []string // extra arguments before the CNF file

	nVars   int
	clauses [][]int // DIMACS literals, buffered incrementally (delta only when frozen != nil)
	ok      bool    // false once an empty clause is added
	ctx     context.Context
	model   []bool // 1-based, from the last SAT answer
	stats   sat.Stats
	err     error // last spawn/parse failure (sticky until the next call)

	frozen *sat.Frozen // adopted prefix; clauses/nVars extend it

	// Persistent-session state (nil host = one-shot mode).
	host        *Host
	sid         string
	opened      bool
	sentVars    int // session vars the server has seen
	sentClauses int // delta clauses the server has seen
	persistOff  bool
}

var (
	_ sat.Engine       = (*ProcessEngine)(nil)
	_ sat.FrozenLoader = (*ProcessEngine)(nil)
)

// New returns an engine spawning cmd (a binary name to resolve on PATH
// or an explicit path) with the given extra arguments before the CNF
// file argument. The binary is not checked here — a missing solver
// surfaces as Unknown verdicts with Err set (use Find or
// attack.SolverSetup.Check to fail fast).
func New(cmd string, args ...string) *ProcessEngine {
	return &ProcessEngine{cmd: cmd, args: args, ok: true}
}

// NewPersistent returns an engine answering its queries through the
// host's long-lived -serve subprocess. Every engine of one grid shares
// one Host, so the grid spawns exactly one solver process per host; on
// any session failure the engine degrades to the one-shot dump/respawn
// path (see the package comment).
func NewPersistent(h *Host) *ProcessEngine {
	return &ProcessEngine{cmd: h.cmd, args: h.args, ok: true, host: h}
}

// LoadFrozen adopts a frozen prefix in O(1): the engine records the
// snapshot instead of copying its clauses, materializing it only when a
// one-shot dump needs the full CNF — persistent sessions send the
// prefix to the server once per content hash. The engine must be fresh.
func (e *ProcessEngine) LoadFrozen(f *sat.Frozen) {
	if e.nVars != 0 || len(e.clauses) != 0 {
		panic("procengine: LoadFrozen on a non-fresh engine")
	}
	e.frozen = f
	e.nVars = f.NumVars()
	e.ok = f.Ok()
}

// Cmd returns the configured solver command.
func (e *ProcessEngine) Cmd() string { return e.cmd }

// Err returns the failure of the most recent Solve call that returned
// Unknown for an abnormal reason (unparseable output, spawn failure),
// or nil after a clean call. Context cancellation is not an error.
func (e *ProcessEngine) Err() error { return e.err }

// NewVar introduces a fresh variable and returns its index.
func (e *ProcessEngine) NewVar() int {
	e.nVars++
	return e.nVars - 1
}

// NumVars returns the number of variables created so far.
func (e *ProcessEngine) NumVars() int { return e.nVars }

// AddClause buffers a clause. It returns false only when the clause is
// empty (trivially unsatisfiable): without running the solver, an
// external engine cannot detect deeper top-level conflicts the way the
// propagating internal engine does.
func (e *ProcessEngine) AddClause(lits ...sat.Lit) bool {
	if len(lits) == 0 {
		e.ok = false
		return false
	}
	cl := make([]int, len(lits))
	for i, l := range lits {
		v := l.Var() + 1
		if l.Sign() {
			v = -v
		}
		cl[i] = v
	}
	e.clauses = append(e.clauses, cl)
	return e.ok
}

// SetContext attaches a cancellation/deadline context: once it expires,
// the running solver process is killed and Solve returns Unknown.
func (e *ProcessEngine) SetContext(ctx context.Context) { e.ctx = ctx }

// Stats returns the engine's counters. Only SolveCalls is meaningful:
// external solvers do not report their conflict work in a form the
// snapshot accounting could use.
func (e *ProcessEngine) Stats() sat.Stats { return e.stats }

// Solve determines satisfiability of the buffered clause set.
func (e *ProcessEngine) Solve() sat.Status { return e.SolveAssuming(nil) }

// SolveAssuming solves under assumption literals, dumped as unit
// clauses for this call only.
func (e *ProcessEngine) SolveAssuming(assumptions []sat.Lit) sat.Status {
	e.stats.SolveCalls++
	e.err = nil
	if !e.ok {
		return sat.Unsat
	}
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return sat.Unknown
	}
	units := make([]int, len(assumptions))
	for i, l := range assumptions {
		v := l.Var() + 1
		if l.Sign() {
			v = -v
		}
		units[i] = v
	}
	if e.host != nil && !e.persistOff && !e.host.Broken() {
		res, err := e.host.query(ctx, e, units)
		if err == nil {
			if res.Status == sat.Sat {
				e.model = res.Model
			}
			return res.Status
		}
		if ctx.Err() != nil {
			// Cancellation (a lost portfolio race, a deadline): not an
			// error, and no reason to abandon the session.
			return sat.Unknown
		}
		// Abnormal session failure: report Unknown with the error and
		// answer every later call on the one-shot path.
		e.err = err
		e.persistOff = true
		return sat.Unknown
	}
	res, err := e.run(ctx, units)
	if err != nil {
		if ctx.Err() == nil {
			e.err = err
		}
		return sat.Unknown
	}
	if res.Status == sat.Sat {
		e.model = res.Model
	}
	return res.Status
}

// allClauses materializes the full clause list — frozen prefix plus
// buffered delta — for a one-shot dump.
func (e *ProcessEngine) allClauses() [][]int {
	if e.frozen == nil {
		return e.clauses
	}
	var out [][]int
	e.frozen.Ops(func(newVars int, clause []sat.Lit, addClause bool) {
		if addClause {
			out = append(out, toDimacs(clause))
		}
	})
	return append(out, e.clauses...)
}

func toDimacs(lits []sat.Lit) []int {
	cl := make([]int, len(lits))
	for i, l := range lits {
		v := l.Var() + 1
		if l.Sign() {
			v = -v
		}
		cl[i] = v
	}
	return cl
}

// run performs one external invocation: dump, spawn, parse.
func (e *ProcessEngine) run(ctx context.Context, units []int) (*dimacs.Result, error) {
	in, err := os.CreateTemp("", "procengine-*.cnf")
	if err != nil {
		return nil, err
	}
	inName := in.Name()
	defer os.Remove(inName)
	werr := dimacs.WriteWithUnits(in, &dimacs.Formula{NumVars: e.nVars, Clauses: e.allClauses()}, units)
	if cerr := in.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, werr
	}

	args := append(append([]string{}, e.args...), inName)
	resultFile := ""
	if fileOutput(e.cmd) {
		// The minisat family writes its verdict and model to a result
		// file argument instead of competition-format stdout.
		out, err := os.CreateTemp("", "procengine-*.out")
		if err != nil {
			return nil, err
		}
		resultFile = out.Name()
		out.Close()
		defer os.Remove(resultFile)
		args = append(args, resultFile)
	}
	cmd := exec.CommandContext(ctx, e.cmd, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run() // competition solvers exit 10 (SAT) / 20 (UNSAT); the output decides

	output := stdout.Bytes()
	if resultFile != "" {
		if output, err = os.ReadFile(resultFile); err != nil {
			return nil, err
		}
	}
	res, perr := dimacs.ParseResult(bytes.NewReader(output), e.nVars)
	if perr != nil {
		if runErr != nil {
			return nil, fmt.Errorf("procengine: %s: %w (%v, stderr: %.200s)", e.cmd, perr, runErr, stderr.String())
		}
		return nil, fmt.Errorf("procengine: %s: %w", e.cmd, perr)
	}
	return res, nil
}

// fileOutput reports whether the solver writes its answer to a result
// file argument (the minisat family) rather than competition stdout.
func fileOutput(cmd string) bool {
	base := filepath.Base(cmd)
	return strings.Contains(base, "minisat") || strings.Contains(base, "glucose")
}

// Value returns variable v's value in the last satisfying assignment.
func (e *ProcessEngine) Value(v int) bool {
	if v+1 >= len(e.model) {
		return false
	}
	return e.model[v+1]
}

// LitTrue reports whether literal l is true in the last model.
func (e *ProcessEngine) LitTrue(l sat.Lit) bool {
	val := e.Value(l.Var())
	if l.Sign() {
		return !val
	}
	return val
}

// cancelGrace is how long a cancelled persistent query waits for the
// in-flight response before killing the subprocess: long enough that a
// lost portfolio race normally leaves the host healthy, short enough
// that a wedged solver cannot stall teardown.
const cancelGrace = 5 * time.Second

// errStale marks a server-side "session forgotten" reply: the one
// protocol error worth a single transparent reopen-and-resend.
var errStale = errors.New("stale session")

// Host owns one persistent solver subprocess (spawned lazily with
// -serve prepended to the configured arguments) and multiplexes any
// number of persistent ProcessEngines over it, one session each. A
// mutex serializes whole query rounds, so concurrent engines — e.g. a
// FALL grid's parallel cells sharing the host — are safe. Once the
// transport dies the host is broken for good: every attached engine
// silently falls back to the one-shot path.
type Host struct {
	cmd  string
	args []string

	mu      sync.Mutex
	proc    *exec.Cmd
	stdin   io.WriteCloser
	out     *bufio.Reader
	broken  bool
	nextSID int64

	spawns atomic.Int64
}

// NewHost returns a host for cmd; args are passed after -serve. The
// subprocess is spawned on the first query.
func NewHost(cmd string, args ...string) *Host {
	return &Host{cmd: cmd, args: args}
}

// Cmd returns the configured solver command.
func (h *Host) Cmd() string { return h.cmd }

// Spawns returns how many subprocesses the host has started — exactly 1
// for a healthy run of any number of sessions and queries.
func (h *Host) Spawns() int64 { return h.spawns.Load() }

// Broken reports whether the host's transport has failed; attached
// engines then answer on the one-shot path.
func (h *Host) Broken() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.broken
}

// Close terminates the subprocess, if any. The host is unusable
// afterwards.
func (h *Host) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.broken = true
	return h.kill()
}

// kill tears the subprocess down (mu held).
func (h *Host) kill() error {
	if h.proc == nil {
		return nil
	}
	h.stdin.Close() // EOF makes a well-behaved server exit...
	if h.proc.Process != nil {
		h.proc.Process.Kill() // ...and Kill covers the rest
	}
	err := h.proc.Wait()
	h.proc = nil
	h.stdin = nil
	h.out = nil
	return err
}

// ensure spawns the subprocess when none is running (mu held).
func (h *Host) ensure() error {
	if h.proc != nil {
		return nil
	}
	cmd := exec.Command(h.cmd, append([]string{"-serve"}, h.args...)...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("procengine: spawn %s -serve: %w", h.cmd, err)
	}
	h.spawns.Add(1)
	h.proc = cmd
	h.stdin = stdin
	h.out = bufio.NewReader(stdout)
	return nil
}

// query runs one solve round for engine e: open the session if needed,
// send the buffered delta, solve under the given assumption units. A
// stale-session reply triggers one transparent reopen+resend; any other
// failure is returned (transport failures additionally break the host).
func (h *Host) query(ctx context.Context, e *ProcessEngine, units []int) (*dimacs.Result, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.broken {
		return nil, errors.New("procengine: persistent host is broken")
	}
	if err := h.ensure(); err != nil {
		h.broken = true
		return nil, err
	}
	var res *dimacs.Result
	err := h.round(ctx, e, units, &res)
	if errors.Is(err, errStale) {
		e.opened = false
		err = h.round(ctx, e, units, &res)
		if errors.Is(err, errStale) {
			err = fmt.Errorf("procengine: %s: session stale twice in a row", h.cmd)
		}
	}
	return res, err
}

// round performs one open?/add?/solve exchange (mu held).
func (h *Host) round(ctx context.Context, e *ProcessEngine, units []int, res **dimacs.Result) error {
	if !e.opened {
		if err := h.open(e); err != nil {
			return err
		}
	}
	if err := h.sendDelta(e); err != nil {
		return err
	}
	r, err := h.solve(ctx, e, units)
	if err != nil {
		return err
	}
	*res = r
	return nil
}

// transportErr marks the transport dead and tears the process down (mu
// held).
func (h *Host) transportErr(err error) error {
	h.broken = true
	h.kill()
	return fmt.Errorf("procengine: %s persistent session: %w", h.cmd, err)
}

// readReply reads one `ok` acknowledgement (mu held). Protocol-level
// `e ...` replies leave the transport healthy; anything else kills it.
func (h *Host) readReply() error {
	line, err := h.readLine()
	if err != nil {
		return h.transportErr(err)
	}
	switch {
	case line == "ok":
		return nil
	case strings.HasPrefix(line, "e "):
		if strings.Contains(line, "stale") {
			return fmt.Errorf("%w: %s", errStale, line)
		}
		return fmt.Errorf("procengine: %s: server error: %s", h.cmd, line[2:])
	default:
		return h.transportErr(fmt.Errorf("unexpected reply %q", line))
	}
}

func (h *Host) readLine() (string, error) {
	line, err := h.out.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

func (h *Host) send(format string, args ...any) error {
	if _, err := fmt.Fprintf(h.stdin, format+"\n", args...); err != nil {
		return h.transportErr(err)
	}
	return nil
}

// open creates e's server session over its frozen prefix, streaming the
// prefix body when the server has not cached its hash yet (mu held).
func (h *Host) open(e *ProcessEngine) error {
	h.nextSID++
	e.sid = strconv.FormatInt(h.nextSID, 10)
	prefixVars := e.frozen.NumVars()
	if err := h.send("open %s %s %d", e.sid, e.frozen.Hash(), prefixVars); err != nil {
		return err
	}
	line, err := h.readLine()
	if err != nil {
		return h.transportErr(err)
	}
	switch {
	case line == "ok":
	case line == "need":
		nClauses := 0
		e.frozen.Ops(func(_ int, _ []sat.Lit, addClause bool) {
			if addClause {
				nClauses++
			}
		})
		var werr error
		write := func(format string, args ...any) {
			if werr == nil {
				_, werr = fmt.Fprintf(h.stdin, format, args...)
			}
		}
		write("prefix %s %d\n", e.sid, nClauses)
		e.frozen.Ops(func(_ int, clause []sat.Lit, addClause bool) {
			if !addClause {
				return
			}
			for _, v := range toDimacs(clause) {
				write("%d ", v)
			}
			write("0\n")
		})
		if werr != nil {
			return h.transportErr(werr)
		}
		if err := h.readReply(); err != nil {
			return err
		}
	case strings.HasPrefix(line, "e "):
		return fmt.Errorf("procengine: %s: open rejected: %s", h.cmd, line[2:])
	default:
		return h.transportErr(fmt.Errorf("unexpected open reply %q", line))
	}
	e.opened = true
	e.sentVars = prefixVars
	e.sentClauses = 0
	return nil
}

// sendDelta ships the variables and clauses buffered since the last
// round (mu held).
func (h *Host) sendDelta(e *ProcessEngine) error {
	if e.nVars == e.sentVars && len(e.clauses) == e.sentClauses {
		return nil
	}
	delta := e.clauses[e.sentClauses:]
	if err := h.send("add %s %d %d", e.sid, e.nVars, len(delta)); err != nil {
		return err
	}
	var werr error
	for _, cl := range delta {
		for _, v := range cl {
			if werr == nil {
				_, werr = fmt.Fprintf(h.stdin, "%d ", v)
			}
		}
		if werr == nil {
			_, werr = fmt.Fprintln(h.stdin, "0")
		}
	}
	if werr != nil {
		return h.transportErr(werr)
	}
	if err := h.readReply(); err != nil {
		return err
	}
	e.sentVars = e.nVars
	e.sentClauses = len(e.clauses)
	return nil
}

// solve sends the assumptions and reads the verdict (and model). The
// read runs in a goroutine so a cancelled context can abandon the
// round: within cancelGrace the late response is drained (or even
// used — the work is done) and the host stays healthy; past it the
// subprocess is killed (mu held).
func (h *Host) solve(ctx context.Context, e *ProcessEngine, units []int) (*dimacs.Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "solve %s", e.sid)
	for _, u := range units {
		fmt.Fprintf(&sb, " %d", u)
	}
	if err := h.send("%s", sb.String()); err != nil {
		return nil, err
	}
	type resp struct {
		res *dimacs.Result
		err error
	}
	ch := make(chan resp, 1)
	go func() {
		res, err := h.readSolveResp(e.nVars)
		ch <- resp{res, err}
	}()
	deliver := func(r resp) (*dimacs.Result, error) {
		if r.err != nil {
			if strings.Contains(r.err.Error(), "stale") {
				return nil, fmt.Errorf("%w: %v", errStale, r.err)
			}
			return nil, h.transportErr(r.err)
		}
		return r.res, nil
	}
	select {
	case r := <-ch:
		return deliver(r)
	case <-ctx.Done():
		grace := time.NewTimer(cancelGrace)
		defer grace.Stop()
		select {
		case r := <-ch:
			return deliver(r)
		case <-grace.C:
			h.transportErr(fmt.Errorf("cancelled mid-solve: %w", ctx.Err()))
			<-ch // the reader fails once the pipe closes
			return nil, ctx.Err()
		}
	}
}

// readSolveResp parses one solve response: `r sat` + v-lines ending
// `v 0`, `r unsat`, `r unknown`, or `e ...`. Anything else is a
// transport-grade error.
func (h *Host) readSolveResp(nVars int) (*dimacs.Result, error) {
	line, err := h.readLine()
	if err != nil {
		return nil, err
	}
	switch line {
	case "r sat":
		model := make([]bool, nVars+1)
		for {
			vl, err := h.readLine()
			if err != nil {
				return nil, err
			}
			fields := strings.Fields(vl)
			if len(fields) == 0 || fields[0] != "v" {
				return nil, fmt.Errorf("unexpected model line %q", vl)
			}
			done := false
			for _, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("bad model literal %q", f)
				}
				if v == 0 {
					done = true
					break
				}
				u := v
				if u < 0 {
					u = -u
				}
				if u < len(model) {
					model[u] = v > 0
				}
			}
			if done {
				return &dimacs.Result{Status: sat.Sat, Model: model}, nil
			}
		}
	case "r unsat":
		return &dimacs.Result{Status: sat.Unsat}, nil
	case "r unknown":
		return &dimacs.Result{Status: sat.Unknown}, nil
	default:
		if strings.HasPrefix(line, "e ") {
			return nil, fmt.Errorf("server error: %s", line[2:])
		}
		return nil, fmt.Errorf("unexpected solve reply %q", line)
	}
}
