package sat

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testKey(tag byte) memoKey {
	var k memoKey
	k.prefix[0] = tag
	k.delta[0] = ^tag
	k.assume = string([]byte{tag, tag + 1})
	return k
}

func satEntry(nVars int, tag uint64) *memoEntry {
	e := &memoEntry{st: Sat, nVars: nVars, bits: make([]uint64, (nVars+63)/64)}
	for i := range e.bits {
		e.bits[i] = tag + uint64(i)
	}
	// Mask the final word so value() round-trips cleanly.
	if rem := nVars & 63; rem != 0 {
		e.bits[len(e.bits)-1] &= 1<<uint(rem) - 1
	}
	return e
}

func sameEntry(a, b *memoEntry) bool {
	if a.st != b.st || a.nVars != b.nVars || len(a.bits) != len(b.bits) {
		return false
	}
	for i := range a.bits {
		if a.bits[i] != b.bits[i] {
			return false
		}
	}
	return true
}

// TestDiskMemoRoundTrip: Sat (with model) and Unsat records survive a
// Put/Get round trip, persist across a store reopen, and are counted
// in the resident accounting.
func TestDiskMemoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskMemo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	kSat, kUnsat := testKey(1), testKey(2)
	eSat := satEntry(130, 0xDEADBEEF)
	d.Put(kSat, eSat)
	d.Put(kUnsat, &memoEntry{st: Unsat})
	d.Put(testKey(3), &memoEntry{st: Unknown}) // must be ignored

	if got, ok := d.Get(kSat); !ok || !sameEntry(got, eSat) {
		t.Fatalf("Sat round trip failed: ok=%v got=%+v", ok, got)
	}
	if got, ok := d.Get(kUnsat); !ok || got.st != Unsat {
		t.Fatalf("Unsat round trip failed: ok=%v got=%+v", ok, got)
	}
	if _, ok := d.Get(testKey(3)); ok {
		t.Fatal("Unknown verdict was persisted")
	}
	st := d.Stats()
	if st.Writes != 2 || st.Entries != 2 || st.Bytes <= 0 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Reopen: records from the "previous process" are served and counted.
	d2, err := OpenDiskMemo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d2.Get(kSat); !ok || !sameEntry(got, eSat) {
		t.Fatal("record did not survive reopen")
	}
	if st := d2.Stats(); st.Entries != 2 || st.Bytes != d.Stats().Bytes {
		t.Fatalf("reopen accounting %+v, want entries=2 bytes=%d", st, d.Stats().Bytes)
	}
}

// TestDiskMemoCorruption: truncated, garbage, or wrong-key record
// files are rejected by validation, deleted, and served as misses —
// never as a verdict.
func TestDiskMemoCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string, data []byte)
	}{
		{"truncated", func(t *testing.T, path string, data []byte) {
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string, data []byte) {
			if err := os.WriteFile(path, []byte("not a record at all, but long enough to pass the length check........................................................."), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, path string, data []byte) {
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := OpenDiskMemo(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			key := testKey(7)
			d.Put(key, satEntry(64, 42))
			path := d.keyPath(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, path, data)
			if _, ok := d.Get(key); ok {
				t.Fatal("corrupt record served as a hit")
			}
			st := d.Stats()
			if st.Corrupt != 1 || st.Misses != 1 {
				t.Fatalf("stats %+v, want 1 corrupt / 1 miss", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt record not deleted: %v", err)
			}
		})
	}

	// A record copied between keys (valid checksum, wrong key echo) is
	// equally rejected: the content address alone is not trusted.
	t.Run("wrong-key", func(t *testing.T) {
		d, err := OpenDiskMemo(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		src, dst := testKey(8), testKey(9)
		d.Put(src, &memoEntry{st: Unsat})
		if err := os.MkdirAll(filepath.Dir(d.keyPath(dst)), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(d.keyPath(src))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d.keyPath(dst), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(dst); ok {
			t.Fatal("foreign-key record served as a hit")
		}
		if st := d.Stats(); st.Corrupt != 1 {
			t.Fatalf("stats %+v, want 1 corrupt", st)
		}
	})
}

// TestDiskMemoGC: pushing the store past its byte cap evicts the
// least-recently-used records down to 90% of the cap, keeping the
// freshest entries resident.
func TestDiskMemoGC(t *testing.T) {
	d, err := OpenDiskMemo(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Learn the record size, then reopen with a cap that holds ~8.
	d.Put(testKey(0), &memoEntry{st: Unsat})
	recSize := d.Stats().Bytes
	if recSize <= 0 {
		t.Fatal("no record size")
	}
	oldest := time.Now().Add(-24 * time.Hour)
	os.Chtimes(d.keyPath(testKey(0)), oldest, oldest)
	d, err = OpenDiskMemo(d.Dir(), 8*recSize)
	if err != nil {
		t.Fatal(err)
	}
	// Backdate early records so LRU order is unambiguous even on
	// coarse-mtime filesystems.
	for i := byte(1); i <= 12; i++ {
		d.Put(testKey(i), &memoEntry{st: Unsat})
		old := time.Now().Add(-time.Duration(13-i) * time.Hour)
		os.Chtimes(d.keyPath(testKey(i)), old, old)
	}
	// One more put triggers compaction (resident > cap).
	d.Put(testKey(13), &memoEntry{st: Unsat})
	st := d.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions at %d bytes over a %d cap: %+v", st.Bytes, 8*recSize, st)
	}
	if st.Bytes > 8*recSize {
		t.Fatalf("still over cap after gc: %+v", st)
	}
	// The newest record survived; the oldest was evicted.
	if _, ok := d.Get(testKey(13)); !ok {
		t.Fatal("newest record evicted")
	}
	if _, ok := d.Get(testKey(0)); ok {
		t.Fatal("oldest record survived LRU eviction")
	}
}

// TestMemoTwoTier: a verdict solved in one "process" is answered from
// disk by a second (fresh memory, same directory), promoted into its
// memory tier, and then answered from memory — with per-tier stats and
// LastTier attribution at each step.
func TestMemoTwoTier(t *testing.T) {
	dir := t.TempDir()
	build := func(m *Memo) (*MemoEngine, Lit) {
		e := NewMemoEngine(m, nil, New())
		a, b := PosLit(e.NewVar()), PosLit(e.NewVar())
		e.AddClause(a, b)
		e.AddClause(a.Neg(), b)
		return e, a
	}

	d1, err := OpenDiskMemo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewMemo(0)
	m1.AttachDisk(d1)
	e1, a1 := build(m1)
	if st := e1.SolveAssuming([]Lit{a1}); st != Sat {
		t.Fatalf("cold solve: %v", st)
	}
	if e1.LastTier() != TierMiss {
		t.Fatalf("cold solve attributed %v", e1.LastTier())
	}
	wantModel := []bool{e1.Value(0), e1.Value(1)}

	// "Second process": fresh memory tier over the same directory.
	d2, err := OpenDiskMemo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMemo(0)
	m2.AttachDisk(d2)
	e2, a2 := build(m2)
	if st := e2.SolveAssuming([]Lit{a2}); st != Sat {
		t.Fatalf("warm solve: %v", st)
	}
	if e2.LastTier() != TierDisk {
		t.Fatalf("warm solve attributed %v, want disk", e2.LastTier())
	}
	if got := []bool{e2.Value(0), e2.Value(1)}; got[0] != wantModel[0] || got[1] != wantModel[1] {
		t.Fatalf("disk model %v, want %v", got, wantModel)
	}
	if st := m2.Stats(); st.DiskHits != 1 || st.Hits != 0 {
		t.Fatalf("m2 stats %+v, want 1 disk hit", st)
	}

	// Promotion: the same query on the same memo is now a memory hit.
	e3, a3 := build(m2)
	if st := e3.SolveAssuming([]Lit{a3}); st != Sat || e3.LastTier() != TierMemory {
		t.Fatalf("promoted solve: %v tier %v, want Sat from memory", st, e3.LastTier())
	}
	if st := m2.Stats(); st.Hits != 1 || st.DiskHits != 1 {
		t.Fatalf("m2 stats %+v, want 1 memory + 1 disk hit", st)
	}
}

// TestMemoCappedWritesThrough: the in-memory cap does not block the
// disk tier — a capped result still lands on disk and is served from
// there by a later process.
func TestMemoCappedWritesThrough(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskMemo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemo(1)
	m.AttachDisk(d)
	solveOne := func(m *Memo, extra int) (*MemoEngine, Status) {
		e := NewMemoEngine(m, nil, New())
		a := PosLit(e.NewVar())
		e.AddClause(a)
		for i := 0; i < extra; i++ {
			e.AddClause(PosLit(e.NewVar()))
		}
		return e, e.Solve()
	}
	solveOne(m, 0) // fills the 1-entry memory tier
	solveOne(m, 1) // capped in memory...
	if st := m.Stats(); st.Capped != 1 {
		t.Fatalf("stats %+v, want 1 capped", st)
	}
	if st := d.Stats(); st.Writes != 2 {
		t.Fatalf("disk writes %d, want 2 (capped result written through)", st.Writes)
	}

	// ...but a fresh memory tier over the same store hits both on disk.
	d2, err := OpenDiskMemo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMemo(0)
	m2.AttachDisk(d2)
	if e, st := solveOne(m2, 0); st != Sat || e.LastTier() != TierDisk {
		t.Fatalf("first warm solve: %v tier %v", st, e.LastTier())
	}
	if e, st := solveOne(m2, 1); st != Sat || e.LastTier() != TierDisk {
		t.Fatalf("capped-key warm solve: %v tier %v, want disk hit", st, e.LastTier())
	}
}

// TestDiskMemoConcurrentSharing: many goroutines across two Memo
// "shards" hammer one directory with overlapping query sets; run under
// -race this is the multi-process torn-read regression test (within
// one process; the record format + rename discipline extends the
// guarantee across processes).
func TestDiskMemoConcurrentSharing(t *testing.T) {
	dir := t.TempDir()
	shard := func() *Memo {
		d, err := OpenDiskMemo(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMemo(0)
		m.AttachDisk(d)
		return m
	}
	shards := []*Memo{shard(), shard()}
	const goroutines, queries = 4, 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		for _, m := range shards {
			wg.Add(1)
			go func(m *Memo, g int) {
				defer wg.Done()
				for q := 0; q < queries; q++ {
					e := NewMemoEngine(m, nil, New())
					// Overlapping keys across goroutines and shards:
					// q clauses over q+1 vars, all forced true.
					lits := make([]Lit, 0, q+1)
					for i := 0; i <= q; i++ {
						l := PosLit(e.NewVar())
						e.AddClause(l)
						lits = append(lits, l)
					}
					if st := e.Solve(); st != Sat {
						t.Errorf("g%d q%d: %v", g, q, st)
						return
					}
					for _, l := range lits {
						if !e.LitTrue(l) {
							t.Errorf("g%d q%d: forced literal false in model", g, q)
							return
						}
					}
				}
			}(m, g)
		}
	}
	wg.Wait()
	var agg MemoStats
	for _, m := range shards {
		agg = agg.Add(m.Stats())
	}
	if agg.Total() != int64(2*goroutines*queries) {
		t.Fatalf("aggregated stats %+v, want %d total", agg, 2*goroutines*queries)
	}
	if agg.Hits+agg.DiskHits == 0 {
		t.Fatalf("no cross-goroutine hits at all: %+v", agg)
	}
}

// TestMemoEngineGarbageRecordVerdict is the acceptance property: a
// garbage record planted at exactly the key a live query will look up
// cannot change the verdict — the engine falls through to a real solve.
func TestMemoEngineGarbageRecordVerdict(t *testing.T) {
	dir := t.TempDir()
	build := func(m *Memo) *MemoEngine {
		e := NewMemoEngine(m, nil, New())
		a := PosLit(e.NewVar())
		e.AddClause(a)
		e.AddClause(a.Neg()) // unsatisfiable
		return e
	}
	d, err := OpenDiskMemo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemo(0)
	m.AttachDisk(d)
	if st := build(m).Solve(); st != Unsat {
		t.Fatalf("reference solve: %v", st)
	}

	// Overwrite the record with garbage, then query it from a fresh
	// process (fresh memory tier, same directory).
	var recPath string
	d.walk(func(path string, info os.FileInfo) { recPath = path })
	if recPath == "" {
		t.Fatal("no record written")
	}
	if err := os.WriteFile(recPath, []byte("garbage garbage garbage garbage garbage garbage garbage garbage garbage garbage garbage garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDiskMemo(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMemo(0)
	m2.AttachDisk(d2)
	e := build(m2)
	if st := e.Solve(); st != Unsat {
		t.Fatalf("garbage record changed the verdict: %v", st)
	}
	if e.LastTier() != TierMiss {
		t.Fatalf("garbage record attributed %v, want miss", e.LastTier())
	}
	if st := d2.Stats(); st.Corrupt != 1 {
		t.Fatalf("disk stats %+v, want 1 corrupt", st)
	}
}
