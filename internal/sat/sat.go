// Package sat implements a CDCL (conflict-driven clause learning) Boolean
// satisfiability solver in the MiniSat lineage: two-literal watching, VSIDS
// variable activity with an indexed heap, phase saving, first-UIP conflict
// analysis with clause minimization, Luby restarts, LBD-aware learnt-clause
// database reduction, and incremental solving under assumptions.
//
// It replaces the Lingeling solver used by the paper's prototype. All
// attack queries in this repository (comparator identification, unateness,
// sliding window, equivalence miters, SAT attack, key confirmation) run
// through this solver.
package sat

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Lit is a literal: variable index shifted left once, low bit set for
// negation. Variables are numbered from 0.
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// MkLit constructs a literal for variable v, negated if neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of variable v.
func PosLit(v int) Lit { return MkLit(v, false) }

// NegLit returns the negative literal of variable v.
func NegLit(v int) Lit { return MkLit(v, true) }

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// String formats the literal as e.g. "x3" or "~x3".
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Status is a solver verdict.
type Status int

// Solver verdicts. Unknown is returned when a conflict or time budget is
// exhausted before a verdict is reached.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (st Status) String() string {
	switch st {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// lbool is a lifted Boolean: +1 true, -1 false, 0 undefined.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits     []Lit
	activity float64
	lbd      int32
	learnt   bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Stats collects solver counters for benchmarking and diagnostics.
//
// Counters accumulate monotonically across Solve/SolveAssuming calls on
// one solver — they are never reset. Callers that need per-call figures
// (the portfolio win accounting does) snapshot Stats before the call and
// subtract afterwards; TestStatsAccumulate pins this semantics down.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	Removed      int64
	SolveCalls   int64
}

// Sub returns the per-call delta between a later snapshot s and an
// earlier snapshot prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Decisions:    s.Decisions - prev.Decisions,
		Propagations: s.Propagations - prev.Propagations,
		Conflicts:    s.Conflicts - prev.Conflicts,
		Restarts:     s.Restarts - prev.Restarts,
		Learnt:       s.Learnt - prev.Learnt,
		Removed:      s.Removed - prev.Removed,
		SolveCalls:   s.SolveCalls - prev.SolveCalls,
	}
}

// Add returns the componentwise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Decisions:    s.Decisions + o.Decisions,
		Propagations: s.Propagations + o.Propagations,
		Conflicts:    s.Conflicts + o.Conflicts,
		Restarts:     s.Restarts + o.Restarts,
		Learnt:       s.Learnt + o.Learnt,
		Removed:      s.Removed + o.Removed,
		SolveCalls:   s.SolveCalls + o.SolveCalls,
	}
}

// Solver is an incremental CDCL SAT solver. Create with New, add variables
// with NewVar and clauses with AddClause, then call Solve or SolveAssuming
// any number of times, adding more variables/clauses between calls.
type Solver struct {
	// Problem.
	clauses []*clause // original clauses
	learnts []*clause // learnt clauses
	ok      bool      // false once a top-level conflict is found

	// Assignment state.
	value    []lbool // per variable
	level    []int32 // per variable, decision level of assignment
	reason   []*clause
	trail    []Lit
	trailLim []int // trail length at each decision level
	qhead    int

	// Watches, indexed by literal.
	watches [][]watcher

	// VSIDS.
	activity []float64
	varInc   float64
	heap     varHeap
	polarity []bool // saved phases; true = last assigned false

	// Conflict analysis scratch.
	seen    []bool
	toClear []int

	// Clause activity.
	claInc       float64
	maxLearnts   float64
	learntGrowth float64

	// Heuristic configuration (normalized) and its seeded tie-breaking
	// source (nil when no heuristic consumes randomness).
	cfg Config
	rng *rand.Rand

	// Budgets. SetDeadline and SetContext both fold into ctx, so search
	// has a single budget check (budgetExceeded) instead of
	// deadline+context double bookkeeping.
	conflictLimit int64           // 0 = unlimited
	baseCtx       context.Context // as passed to SetContext
	deadline      time.Time       // as passed to SetDeadline
	ctx           context.Context // baseCtx composed with the deadline
	budgetPolls   uint32          // throttles the in-search budget checks

	model []lbool // last satisfying assignment

	// stats holds cumulative counters across Solve calls; see Stats.
	stats Stats
}

// New returns an empty solver with the baseline configuration.
func New() *Solver { return NewWith(Config{}) }

// NewWith returns an empty solver driven by cfg. Invalid configurations
// panic: configs reach solvers through ParseConfig (which validates) or
// as literals, where a bad value is a programming error.
func NewWith(cfg Config) *Solver {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	s := &Solver{
		ok:            true,
		varInc:        1.0,
		claInc:        1.0,
		learntGrowth:  1.1,
		cfg:           cfg,
		rng:           cfg.rng(),
		conflictLimit: cfg.ConflictBudget,
	}
	s.heap.activity = &s.activity
	return s
}

// Config returns the solver's normalized configuration.
func (s *Solver) Config() Config { return s.cfg }

// Stats returns the cumulative counters accumulated across all Solve
// and SolveAssuming calls so far (see the Stats type for the exact
// semantics).
func (s *Solver) Stats() Stats { return s.stats }

// NewVar introduces a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.value)
	s.value = append(s.value, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.value) }

// NumClauses returns the number of original (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// SetConflictLimit bounds the number of conflicts per Solve call;
// 0 removes the bound. When exceeded, Solve returns Unknown.
func (s *Solver) SetConflictLimit(n int64) { s.conflictLimit = n }

// SetDeadline sets a wall-clock deadline; a zero time removes it. When
// exceeded, Solve returns Unknown.
//
// Deprecated: express wall-clock budgets through SetContext (wrap the
// run context with context.WithDeadline). SetDeadline remains as a thin
// wrapper that folds the deadline into the same context-based budget
// check the search already performs.
func (s *Solver) SetDeadline(t time.Time) {
	s.deadline = t
	s.recomputeCtx()
}

// SetContext attaches a context to the solver: once ctx is cancelled or
// its deadline passes (ctx.Err() reports both), the current and any
// subsequent Solve calls return Unknown. Passing nil detaches the
// context.
func (s *Solver) SetContext(ctx context.Context) {
	s.baseCtx = ctx
	s.recomputeCtx()
}

// recomputeCtx folds the SetContext context and the deprecated
// SetDeadline deadline into the single ctx consulted by budget checks.
func (s *Solver) recomputeCtx() {
	base := s.baseCtx
	if s.deadline.IsZero() {
		s.ctx = base
		return
	}
	if base == nil {
		base = context.Background()
	}
	s.ctx = deadlineContext{base, s.deadline}
}

// deadlineContext adds a lazily-checked wall-clock deadline to a parent
// context without timer goroutines or cancel bookkeeping: the solver
// polls Err(), never Done(), so checking the clock inside Err suffices.
type deadlineContext struct {
	context.Context
	t time.Time
}

func (d deadlineContext) Deadline() (time.Time, bool) {
	if p, ok := d.Context.Deadline(); ok && p.Before(d.t) {
		return p, true
	}
	return d.t, true
}

func (d deadlineContext) Err() error {
	if err := d.Context.Err(); err != nil {
		return err
	}
	if time.Now().After(d.t) {
		return context.DeadlineExceeded
	}
	return nil
}

func (s *Solver) litValue(l Lit) lbool {
	v := s.value[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state (now or as a result of this
// clause). Duplicate literals are removed; tautologies are ignored.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during search")
	}
	// Sort/uniq and check for tautology or satisfied/falsified literals.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l.Var() >= len(s.value) || l < 0 {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		switch s.litValue(l) {
		case lTrue:
			return true // clause already satisfied at top level
		case lFalse:
			continue // drop falsified literal
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Neg() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	s.removeWatch(c.lits[0].Neg(), c)
	s.removeWatch(c.lits[1].Neg(), c)
}

func (s *Solver) removeWatch(l Lit, c *clause) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.value[v] = lFalse
	} else {
		s.value[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	var confl *clause
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		// Clauses watching ~p (now false) are registered under watches[p]
		// per the attach convention watches[lit.Neg()].
		falseLit := p.Neg()
		ws := s.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker check avoids touching the clause.
			if s.litValue(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			lits := c.lits
			// Ensure the false literal is lits[1].
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.litValue(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Neg()] = append(s.watches[lits[1].Neg()], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.litValue(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
				// Copy remaining watchers back.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.value[v] == lFalse
		s.value[v] = lUndef
		s.reason[v] = nil
		s.heap.insertIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) varDecay() { s.varInc /= s.cfg.VarDecay }

func (s *Solver) claBump(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= s.cfg.ClauseDecay }

// analyze performs first-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{LitUndef} // slot 0 reserved for the asserting literal
	pathC := 0
	p := LitUndef
	idx := len(s.trail) - 1
	for {
		lits := confl.lits
		start := 0
		if p != LitUndef {
			start = 1
		}
		if confl.learnt {
			s.claBump(confl)
		}
		for _, q := range lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.toClear = append(s.toClear, v)
				s.varBump(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = false
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Neg()

	// Basic clause minimization: drop literals whose reason clause is
	// entirely covered by the remaining literals.
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reason[v]
		if r == nil {
			learnt[j] = learnt[i]
			j++
			continue
		}
		redundant := true
		for _, q := range r.lits[1:] {
			if !s.seen[q.Var()] && s.level[q.Var()] > 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Clear seen flags.
	for _, v := range s.toClear {
		s.seen[v] = false
	}
	s.toClear = s.toClear[:0]

	// Backtrack level: highest level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	return learnt, btLevel
}

// computeLBD returns the number of distinct decision levels in the clause,
// the "literal block distance" quality measure.
func (s *Solver) computeLBD(lits []Lit) int32 {
	levels := make(map[int32]struct{}, len(lits))
	for _, l := range lits {
		levels[s.level[l.Var()]] = struct{}{}
	}
	return int32(len(levels))
}

func (s *Solver) reduceDB() {
	// Sort learnts: keep low LBD and high activity. Simple selection:
	// partition by median activity among clauses with lbd > 2.
	if len(s.learnts) == 0 {
		return
	}
	cand := make([]*clause, 0, len(s.learnts))
	kept := make([]*clause, 0, len(s.learnts))
	for _, c := range s.learnts {
		if c.lbd <= 2 || len(c.lits) == 2 || s.locked(c) {
			kept = append(kept, c)
		} else {
			cand = append(cand, c)
		}
	}
	// Remove the lower-activity half of the candidates.
	sortClausesByActivity(cand)
	cut := len(cand) / 2
	for i, c := range cand {
		if i < cut {
			s.detach(c)
			s.stats.Removed++
		} else {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
}

func (s *Solver) locked(c *clause) bool {
	v := c.lits[0].Var()
	return s.reason[v] == c && s.value[v] != lUndef
}

func sortClausesByActivity(cs []*clause) {
	// Insertion-friendly shellsort to avoid pulling in sort.Slice closures
	// on a hot path; sizes here are modest.
	for gap := len(cs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(cs); i++ {
			c := cs[i]
			j := i
			for ; j >= gap && cs[j-gap].activity > c.activity; j -= gap {
				cs[j] = cs[j-gap]
			}
			cs[j] = c
		}
	}
}

// luby returns the Luby sequence value for index i (1-based), used to
// schedule restarts.
func luby(i int64) int64 {
	// Find the finite subsequence that contains index i, and the size of
	// that subsequence.
	var size, seq int64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return int64(1) << uint(seq)
}

// search runs CDCL until a verdict or until nofConflicts conflicts occur
// (negative = unlimited). assumptions are enqueued as pseudo-decisions.
func (s *Solver) search(nofConflicts int64, assumptions []Lit) Status {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, lbd: s.computeLBD(learnt)}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.claBump(c)
				s.uncheckedEnqueue(learnt[0], c)
				s.stats.Learnt++
			}
			s.varDecay()
			s.claDecay()
			continue
		}
		// No conflict.
		if nofConflicts >= 0 && conflicts >= nofConflicts {
			s.cancelUntil(0)
			return Unknown
		}
		if s.budgetExceeded() {
			s.cancelUntil(0)
			return Unknown
		}
		if float64(len(s.learnts)) > s.maxLearnts {
			s.reduceDB()
		}
		// Enqueue assumptions as pseudo-decisions.
		next := LitUndef
		for s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.litValue(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level, already satisfied
			case lFalse:
				return Unsat // conflicts with assumptions
			default:
				next = p
			}
			if next != LitUndef {
				break
			}
		}
		if next == LitUndef {
			// Regular decision.
			v := s.pickBranchVar()
			if v < 0 {
				// All variables assigned: model found.
				s.model = append(s.model[:0], s.value...)
				return Sat
			}
			s.stats.Decisions++
			next = MkLit(v, s.decidePolarity(v))
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

func (s *Solver) pickBranchVar() int {
	// Seeded tie-breaking: with probability RandomFreq pick a uniformly
	// random unassigned variable instead of the VSIDS top. The variable
	// stays in the heap; pops skip assigned variables anyway.
	if s.rng != nil && s.cfg.RandomFreq > 0 && len(s.value) > 0 &&
		s.rng.Float64() < s.cfg.RandomFreq {
		if v := s.rng.Intn(len(s.value)); s.value[v] == lUndef {
			return v
		}
	}
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.value[v] == lUndef {
			return v
		}
	}
	return -1
}

// decidePolarity resolves the decision polarity of variable v per the
// configured Phase heuristic. The returned value is the literal
// negation flag: true assigns v false.
func (s *Solver) decidePolarity(v int) bool {
	switch s.cfg.Phase {
	case PhaseFalse:
		return true
	case PhaseTrue:
		return false
	case PhaseRandom:
		return s.rng.Intn(2) == 1
	default:
		return s.polarity[v]
	}
}

// budgetExceeded is the per-decision check inside search. ctx.Err()
// takes a mutex and (through deadlineContext) may read the clock, so the
// check is rationed to every 256 calls — but by a dedicated poll
// counter, not the conflict count, so cancellation is still noticed
// promptly on conflict-free instances. SolveAssuming performs one
// unthrottled check on entry. This is the single budget check: the
// deprecated SetDeadline folds into s.ctx, so there is no separate
// deadline bookkeeping.
func (s *Solver) budgetExceeded() bool {
	if s.conflictLimit > 0 && s.stats.Conflicts >= s.conflictLimit {
		return true
	}
	s.budgetPolls++
	if s.budgetPolls&255 == 0 {
		return s.budgetExceededNow()
	}
	return false
}

// budgetExceededNow checks the context budget without throttling.
func (s *Solver) budgetExceededNow() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// Solve determines satisfiability of the current clause set.
func (s *Solver) Solve() Status { return s.SolveAssuming(nil) }

// SolveAssuming determines satisfiability under the given assumption
// literals. The assumptions hold only for this call. Clauses learned
// during the call persist, making repeated calls incremental.
func (s *Solver) SolveAssuming(assumptions []Lit) Status {
	s.stats.SolveCalls++
	if !s.ok {
		return Unsat
	}
	if s.budgetExceededNow() {
		return Unknown
	}
	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 2000 {
			s.maxLearnts = 2000
		}
	}
	baseConflicts := s.conflictLimit
	if baseConflicts > 0 {
		baseConflicts += s.stats.Conflicts // limit is per call
		defer func(prev int64) { s.conflictLimit = prev }(s.conflictLimit)
		s.conflictLimit = baseConflicts
	}
	status := Unknown
	geo := float64(s.cfg.RestartBase)
	for restart := int64(1); status == Unknown; restart++ {
		var budget int64
		if s.cfg.Restart == RestartGeometric {
			budget = int64(geo)
			geo *= s.cfg.RestartGrowth
		} else {
			budget = luby(restart) * int64(s.cfg.RestartBase)
		}
		status = s.search(budget, assumptions)
		s.stats.Restarts++
		// Restart boundaries are rare relative to in-search polls, so
		// check the wall-clock budgets unthrottled here: the throttled
		// budgetExceeded() would miss a cancellation 255/256 times and
		// let the solver run a whole extra restart, making pool workers
		// drain nondeterministically late.
		if status == Unknown {
			if (s.conflictLimit > 0 && s.stats.Conflicts >= s.conflictLimit) || s.budgetExceededNow() {
				break
			}
			s.maxLearnts *= s.learntGrowth
		}
	}
	s.cancelUntil(0)
	return status
}

// Value returns the value of variable v in the last satisfying assignment.
// Unassigned variables (possible for variables created after the last
// Solve) report false.
func (s *Solver) Value(v int) bool {
	if v >= len(s.model) {
		return false
	}
	return s.model[v] == lTrue
}

// LitTrue reports whether literal l is true in the last model.
func (s *Solver) LitTrue(l Lit) bool {
	val := s.Value(l.Var())
	if l.Sign() {
		return !val
	}
	return val
}

// varHeap is a max-heap of variables ordered by activity, with an index
// map for decrease/increase-key.
type varHeap struct {
	data     []int
	indices  []int // var -> position in data, -1 if absent
	activity *[]float64
}

func (h *varHeap) less(a, b int) bool {
	return (*h.activity)[h.data[a]] > (*h.activity)[h.data[b]]
}

func (h *varHeap) swap(a, b int) {
	h.data[a], h.data[b] = h.data[b], h.data[a]
	h.indices[h.data[a]] = a
	h.indices[h.data[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) insert(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.indices[v] = len(h.data) - 1
	h.up(len(h.data) - 1)
}

func (h *varHeap) insertIfAbsent(v int) { h.insert(v) }

func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] >= 0 {
		h.up(h.indices[v])
		h.down(h.indices[v])
	}
}

func (h *varHeap) empty() bool { return len(h.data) == 0 }

func (h *varHeap) pop() int {
	v := h.data[0]
	last := len(h.data) - 1
	h.swap(0, last)
	h.data = h.data[:last]
	h.indices[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}
