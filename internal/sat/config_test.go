package sat

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestParseConfigRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"seed=7",
		"seed=3,restart=geometric",
		"seed=1,phase=random,rand=0.05",
		"seed=0,restart=geometric,base=50,growth=2,phase=false,vdecay=0.9,cdecay=0.99,budget=1000",
	}
	for _, spec := range cases {
		c, err := ParseConfig(spec)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", spec, err)
		}
		c2, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("ParseConfig(String(%q)=%q): %v", spec, c.String(), err)
		}
		if c != c2 {
			t.Errorf("round trip of %q: %+v != %+v", spec, c, c2)
		}
	}
}

func TestParseConfigRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"seed", "seed=x", "restart=magic", "phase=up",
		"vdecay=2", "vdecay=0", "rand=1.5", "base=0", "growth=0.5",
		"frobnicate=1",
	} {
		if _, err := ParseConfig(spec); err == nil {
			t.Errorf("ParseConfig(%q) accepted a bad spec", spec)
		}
	}
}

func TestZeroConfigIsDefault(t *testing.T) {
	if got, want := (Config{}).withDefaults(), DefaultConfig(); got != want {
		t.Errorf("zero config normalizes to %+v, want %+v", got, want)
	}
	d, err := ParseConfig("")
	if err != nil || d != DefaultConfig() {
		t.Errorf("ParseConfig(\"\") = %+v, %v", d, err)
	}
}

// solverConfigs lists heuristic corners exercised by the determinism
// and verdict-agreement tests: every restart/phase/decay/random axis.
func solverConfigs() []Config {
	return []Config{
		{},
		{Seed: 42},
		{Restart: RestartGeometric, RestartBase: 50, RestartGrowth: 2},
		{Phase: PhaseTrue},
		{Phase: PhaseFalse, VarDecay: 0.9},
		{Seed: 7, Phase: PhaseRandom},
		{Seed: 9, RandomFreq: 0.1},
		{Seed: 11, RandomFreq: 0.05, Phase: PhaseRandom, Restart: RestartGeometric},
	}
}

// runInstance loads a deterministic instance into a fresh engine and
// solves it, returning the verdict, the model (for SAT) and the
// conflict count.
func runInstance(cfg Config, load func(e Engine)) (Status, []bool, int64) {
	s := NewWith(cfg)
	load(s)
	st := s.Solve()
	var model []bool
	if st == Sat {
		model = make([]bool, s.NumVars())
		for v := range model {
			model[v] = s.Value(v)
		}
	}
	return st, model, s.Stats().Conflicts
}

// instanceTable returns named loaders for a mix of SAT and UNSAT
// instances (the determinism/portfolio verdict table).
func instanceTable() map[string]func(e Engine) {
	loaders := map[string]func(e Engine){
		"php65-unsat": func(e Engine) { pigeonholeEngine(e, 6, 5) },
		"php55-sat":   func(e Engine) { pigeonholeEngine(e, 5, 5) },
		"xor-chain-sat": func(e Engine) {
			vars := make([]int, 12)
			for i := range vars {
				vars[i] = e.NewVar()
			}
			for i := 0; i+1 < len(vars); i++ {
				e.AddClause(PosLit(vars[i]), PosLit(vars[i+1]))
				e.AddClause(NegLit(vars[i]), NegLit(vars[i+1]))
			}
			e.AddClause(PosLit(vars[0]))
		},
	}
	for _, seed := range []int64{3, 17, 99} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		nVars := 8 + rng.Intn(8)
		cnf := randomCNF(rng, nVars, 30+rng.Intn(40))
		want, _ := bruteForce(nVars, cnf)
		name := "rand-sat"
		if !want {
			name = "rand-unsat"
		}
		loaders[fmtName(name, seed)] = func(e Engine) {
			for i := 0; i < nVars; i++ {
				e.NewVar()
			}
			for _, cl := range cnf {
				e.AddClause(cl...)
			}
		}
	}
	return loaders
}

func fmtName(base string, seed int64) string {
	return base + "-" + string(rune('0'+seed%10)) + string(rune('a'+seed/10))
}

// pigeonholeEngine is pigeonhole over the Engine interface (usable by
// both Solver and Portfolio tests).
func pigeonholeEngine(e Engine, p, h int) {
	v := make([][]int, p)
	for i := range v {
		v[i] = make([]int, h)
		for j := range v[i] {
			v[i][j] = e.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		lits := make([]Lit, h)
		for j := 0; j < h; j++ {
			lits[j] = PosLit(v[i][j])
		}
		e.AddClause(lits...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				e.AddClause(NegLit(v[i1][j]), NegLit(v[i2][j]))
			}
		}
	}
}

// TestConfigDeterminism: the same Config (seed included) must yield an
// identical verdict, identical model and identical conflict count on
// repeated runs — even for configurations that use the seeded RNG.
func TestConfigDeterminism(t *testing.T) {
	for name, load := range instanceTable() {
		for _, cfg := range solverConfigs() {
			st1, m1, c1 := runInstance(cfg, load)
			st2, m2, c2 := runInstance(cfg, load)
			if st1 != st2 {
				t.Fatalf("%s/%s: verdicts differ across runs: %v vs %v", name, cfg, st1, st2)
			}
			if c1 != c2 {
				t.Errorf("%s/%s: conflict counts differ: %d vs %d", name, cfg, c1, c2)
			}
			if len(m1) != len(m2) {
				t.Fatalf("%s/%s: model sizes differ", name, cfg)
			}
			for v := range m1 {
				if m1[v] != m2[v] {
					t.Errorf("%s/%s: models differ at x%d", name, cfg, v)
					break
				}
			}
		}
	}
}

// TestConfigVerdictAgreement: every configuration must agree with the
// baseline verdict on every table instance (heuristics change runtime,
// never soundness).
func TestConfigVerdictAgreement(t *testing.T) {
	for name, load := range instanceTable() {
		base, _, _ := runInstance(Config{}, load)
		for _, cfg := range solverConfigs() {
			if st, _, _ := runInstance(cfg, load); st != base {
				t.Errorf("%s: config %s verdict %v, baseline %v", name, cfg, st, base)
			}
		}
	}
}

// TestStatsAccumulate pins the documented Stats semantics: counters
// accumulate monotonically across SolveAssuming calls and are never
// reset; per-call figures come from snapshot subtraction.
func TestStatsAccumulate(t *testing.T) {
	s := New()
	pigeonholeEngine(s, 6, 5)
	before := s.Stats()
	if before.SolveCalls != 0 {
		t.Fatalf("fresh solver has SolveCalls %d", before.SolveCalls)
	}
	s.Solve()
	first := s.Stats()
	if first.SolveCalls != 1 || first.Conflicts == 0 {
		t.Fatalf("after first solve: %+v", first)
	}
	// A second (incremental) call must only grow the counters.
	s.SolveAssuming(nil)
	second := s.Stats()
	if second.SolveCalls != 2 {
		t.Errorf("SolveCalls = %d, want 2", second.SolveCalls)
	}
	if second.Conflicts < first.Conflicts || second.Decisions < first.Decisions ||
		second.Propagations < first.Propagations || second.Restarts < first.Restarts {
		t.Errorf("counters regressed: first %+v, second %+v", first, second)
	}
	delta := second.Sub(first)
	if delta.SolveCalls != 1 {
		t.Errorf("snapshot delta SolveCalls = %d, want 1", delta.SolveCalls)
	}
	if got := first.Add(delta); got != second {
		t.Errorf("Add/Sub do not invert: %+v + %+v = %+v, want %+v", first, delta, got, second)
	}
}

// TestDeadlineFoldsIntoContext: the deprecated SetDeadline must behave
// exactly like a context deadline, and composing it with SetContext
// must honor whichever budget is tighter.
func TestDeadlineFoldsIntoContext(t *testing.T) {
	s := New()
	pigeonholeEngine(s, 9, 8)
	s.SetDeadline(time.Now().Add(-time.Second))
	if got := s.Solve(); got != Unknown {
		t.Fatalf("expired SetDeadline: got %v, want UNKNOWN", got)
	}
	// Clearing the deadline restores the (absent) base context.
	s.SetDeadline(time.Time{})
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after clearing deadline: got %v, want UNSAT", got)
	}
	// Composition: a live base context with an expired folded deadline
	// still expires, and detaching the context keeps the deadline.
	s2 := New()
	pigeonholeEngine(s2, 9, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.SetContext(ctx)
	s2.SetDeadline(time.Now().Add(-time.Second))
	if got := s2.Solve(); got != Unknown {
		t.Fatalf("live context + expired deadline: got %v, want UNKNOWN", got)
	}
	s2.SetContext(nil)
	if got := s2.Solve(); got != Unknown {
		t.Fatalf("detached context must keep the expired deadline: got %v", got)
	}
	s2.SetDeadline(time.Time{})
	if got := s2.Solve(); got != Unsat {
		t.Fatalf("all budgets cleared: got %v, want UNSAT", got)
	}
}
