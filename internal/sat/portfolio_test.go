package sat

import (
	"context"
	"testing"
	"time"
)

// TestPortfolioVerdictsMatchSingleEngine: for every instance in the
// SAT/UNSAT table and every portfolio width, the racing verdict must
// equal the single-engine verdict, and a SAT portfolio model must
// satisfy the formula it reports on.
func TestPortfolioVerdictsMatchSingleEngine(t *testing.T) {
	for name, load := range instanceTable() {
		single, _, _ := runInstance(Config{}, load)
		for _, n := range []int{2, 3, 5} {
			p := NewPortfolio(PortfolioConfigs(Config{Seed: 1}, n), nil)
			load(p)
			if got := p.Solve(); got != single {
				t.Errorf("%s: portfolio(%d) verdict %v, single engine %v", name, n, got, single)
			}
		}
	}
}

func TestPortfolioModelSatisfiesClauses(t *testing.T) {
	p := NewPortfolio(PortfolioConfigs(Config{Seed: 3}, 4), nil)
	pigeonholeEngine(p, 5, 5)
	if got := p.Solve(); got != Sat {
		t.Fatalf("PHP(5,5): got %v, want SAT", got)
	}
	// Each pigeon must sit in exactly one hole per the model.
	n := p.NumVars()
	holes := 5
	for pi := 0; pi < 5; pi++ {
		count := 0
		for hi := 0; hi < holes; hi++ {
			if p.Value(pi*holes + hi) {
				count++
			}
		}
		if count == 0 {
			t.Errorf("pigeon %d unplaced in portfolio model (of %d vars)", pi, n)
		}
	}
}

// TestPortfolioIncremental: assumptions and incremental clause addition
// must work across races exactly as on a single engine.
func TestPortfolioIncremental(t *testing.T) {
	p := NewPortfolio(PortfolioConfigs(Config{}, 3), nil)
	a, b := p.NewVar(), p.NewVar()
	p.AddClause(NegLit(a), PosLit(b)) // a -> b
	if got := p.SolveAssuming([]Lit{PosLit(a), NegLit(b)}); got != Unsat {
		t.Fatalf("assuming a & ~b with a->b: got %v, want UNSAT", got)
	}
	if got := p.SolveAssuming([]Lit{PosLit(a)}); got != Sat {
		t.Fatalf("assuming a: got %v, want SAT", got)
	}
	if !p.Value(b) {
		t.Error("model must satisfy b under assumption a")
	}
	p.AddClause(NegLit(b))
	if got := p.SolveAssuming([]Lit{PosLit(a)}); got != Unsat {
		t.Fatalf("after adding ~b, assuming a: got %v, want UNSAT", got)
	}
	if got := p.Solve(); got != Sat {
		t.Fatalf("unconstrained: got %v, want SAT", got)
	}
}

func TestPortfolioContextCancellation(t *testing.T) {
	p := NewPortfolio(PortfolioConfigs(Config{}, 3), nil)
	pigeonholeEngine(p, 9, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.SetContext(ctx)
	if got := p.Solve(); got != Unknown {
		t.Fatalf("cancelled context: got %v, want UNKNOWN", got)
	}
	p.SetContext(context.Background())
	if got := p.Solve(); got != Unsat {
		t.Fatalf("after detaching: got %v, want UNSAT", got)
	}
}

func TestPortfolioDeadlineExpiry(t *testing.T) {
	p := NewPortfolio(PortfolioConfigs(Config{}, 2), nil)
	pigeonholeEngine(p, 10, 9)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(10*time.Millisecond))
	defer cancel()
	p.SetContext(ctx)
	if got := p.Solve(); got != Unknown {
		t.Fatalf("all engines past deadline: got %v, want UNKNOWN", got)
	}
}

// TestLedgerAccounting: wins sum to the number of decided races, every
// engine is charged for every race, and conflict totals are consistent
// with the engines' own counters.
func TestLedgerAccounting(t *testing.T) {
	configs := PortfolioConfigs(Config{Seed: 5}, 3)
	ledger := NewLedger(configs)
	p := NewPortfolio(configs, ledger)
	pigeonholeEngine(p, 6, 5)
	const calls = 4
	for i := 0; i < calls; i++ {
		if got := p.Solve(); got != Unsat {
			t.Fatalf("call %d: got %v, want UNSAT", i, got)
		}
	}
	stats := ledger.Snapshot()
	if len(stats) != 3 {
		t.Fatalf("ledger has %d entries, want 3", len(stats))
	}
	var wins, unsatWins, satWins, conflicts int64
	for i, cs := range stats {
		if cs.Config != configs[i].String() {
			t.Errorf("entry %d labeled %q, want %q", i, cs.Config, configs[i].String())
		}
		if cs.Races != calls {
			t.Errorf("engine %d charged %d races, want %d", i, cs.Races, calls)
		}
		wins += cs.Wins
		unsatWins += cs.UnsatWins
		satWins += cs.SatWins
		conflicts += cs.Conflicts
	}
	if wins != calls || unsatWins != calls || satWins != 0 {
		t.Errorf("wins %d (sat %d, unsat %d), want %d UNSAT wins", wins, satWins, unsatWins, calls)
	}
	if got := p.Stats().Conflicts; got != conflicts {
		t.Errorf("ledger conflicts %d != portfolio aggregate %d", conflicts, got)
	}
}

// TestLedgerSharedAcrossPortfolios mirrors the FALL grid's usage: many
// short-lived portfolios over one ledger, possibly concurrently.
func TestLedgerSharedAcrossPortfolios(t *testing.T) {
	configs := PortfolioConfigs(Config{}, 2)
	ledger := NewLedger(configs)
	done := make(chan struct{})
	const workers = 4
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			p := NewPortfolio(configs, ledger)
			pigeonholeEngine(p, 5, 5)
			if got := p.Solve(); got != Sat {
				t.Errorf("got %v, want SAT", got)
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	var wins int64
	for _, cs := range ledger.Snapshot() {
		wins += cs.Wins
	}
	if wins != workers {
		t.Errorf("total wins %d, want %d", wins, workers)
	}
}

func TestPortfolioConfigsDeterministic(t *testing.T) {
	a := PortfolioConfigs(Config{Seed: 2}, 6)
	b := PortfolioConfigs(Config{Seed: 2}, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("config %d differs between derivations", i)
		}
	}
	if a[0] != (Config{Seed: 2}).withDefaults() {
		t.Errorf("first config must be the base itself, got %+v", a[0])
	}
	seen := map[string]bool{}
	for _, c := range a {
		key := c.String()
		if seen[key] {
			t.Errorf("duplicate portfolio config %q", key)
		}
		seen[key] = true
	}
}
