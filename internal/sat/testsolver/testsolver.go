// Package testsolver builds the stub DIMACS solver (see the stub
// subdirectory) for tests that exercise the DIMACS-pipe engine
// hermetically: procengine's own tests, the heterogeneous FALL grid
// race, and the CI job diffing a `-portfolio internal,stub` fallbench
// run against the single-engine report.
package testsolver

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// Build compiles the stub solver once per test process and returns the
// binary's path. Tests are skipped when no go toolchain is available.
func Build(tb testing.TB) string {
	tb.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		tb.Skipf("no go toolchain on PATH: %v", err)
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "stubsolver")
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "stub")
		if runtime.GOOS == "windows" {
			bin += ".exe"
		}
		cmd := exec.Command("go", "build", "-o", bin, "repro/internal/sat/testsolver/stub")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			tb.Logf("building stub solver: %v\n%s", err, out)
			return
		}
		buildPath = bin
	})
	if buildErr != nil {
		tb.Fatalf("building stub solver: %v", buildErr)
	}
	return buildPath
}
