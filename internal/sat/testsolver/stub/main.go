// Command stub is a tiny DIMACS solver used to exercise the
// DIMACS-pipe engine (procengine) hermetically: it parses a CNF file
// (or stdin), decides it with the repository's internal CDCL solver,
// and prints a SAT-competition answer — `s SATISFIABLE` / `v ...`
// lines, exit code 10/20 like the real competition solvers. Because it
// runs the same default-configured search as the in-process engine, a
// portfolio racing `internal` against `stub` produces identical models
// whichever member wins, keeping heterogeneous CI diffs deterministic.
//
// Fault-injection flags let tests cover procengine's malformed-output
// handling:
//
//	-mode=ok          normal answer (default)
//	-mode=nostatus    model lines with no s-line
//	-mode=truncated   drop the model's 0 terminator (and its tail)
//	-mode=garbage     unparseable status line
//	-mode=silent      no output at all
//	-sleep=DUR        sleep before answering (cancellation tests)
//	-exit=N           override the exit code (-1 = competition codes)
//
// With -serve the stub instead speaks procengine's persistent-session
// line protocol on stdin/stdout (see the serve function), so the
// persistent-session mode is testable without a protocol-speaking real
// solver. Its fault injection:
//
//	-serve-fault=hangup   exit mid-session before the Nth solve reply
//	-serve-fault=garbage  answer the Nth solve with an unparseable verdict
//	-serve-fault=stale    forget each session right after opening it, so
//	                      every add/solve gets an `e stale` error
//	-serve-fault-after=N  which solve triggers hangup/garbage (default 1)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dimacs"
	"repro/internal/sat"
)

func main() {
	mode := flag.String("mode", "ok", "output fault injection: ok | nostatus | truncated | garbage | silent")
	sleep := flag.Duration("sleep", 0, "sleep before answering")
	exitCode := flag.Int("exit", -1, "exit code override (-1 = 10 for SAT, 20 for UNSAT, 0 otherwise)")
	serveMode := flag.Bool("serve", false, "speak the persistent-session protocol on stdin/stdout")
	serveFault := flag.String("serve-fault", "", "persistent-protocol fault injection: hangup | garbage | stale")
	serveFaultAfter := flag.Int("serve-fault-after", 1, "which solve request triggers -serve-fault")
	flag.Parse()

	if *serveMode {
		os.Exit(serve(*serveFault, *serveFaultAfter, *sleep))
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "stub: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	formula, err := dimacs.Parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stub: %v\n", err)
		os.Exit(1)
	}
	if *sleep > 0 {
		time.Sleep(*sleep)
	}

	s := sat.New()
	vars, ok := dimacs.LoadIntoSolver(s, formula)
	st := sat.Unsat
	if ok {
		st = s.Solve()
	}

	fmt.Println("c stub dimacs solver")
	switch *mode {
	case "silent":
	case "garbage":
		fmt.Println("s MAYBE")
	case "ok", "nostatus", "truncated":
		if *mode != "nostatus" {
			switch st {
			case sat.Sat:
				fmt.Println("s SATISFIABLE")
			case sat.Unsat:
				fmt.Println("s UNSATISFIABLE")
			default:
				fmt.Println("s UNKNOWN")
			}
		}
		if st == sat.Sat || *mode == "nostatus" {
			printModel(s, vars, formula.NumVars, *mode == "truncated")
		}
	default:
		fmt.Fprintf(os.Stderr, "stub: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	switch {
	case *exitCode >= 0:
		os.Exit(*exitCode)
	case st == sat.Sat:
		os.Exit(10)
	case st == sat.Unsat:
		os.Exit(20)
	}
}

// printModel emits v-lines wrapped at ten literals per line (exercising
// multi-line model parsing); truncated drops the second half of the
// model and the 0 terminator.
func printModel(s *sat.Solver, vars []sat.Lit, numVars int, truncated bool) {
	limit := numVars
	if truncated {
		limit = numVars / 2
	}
	for v := 1; v <= limit; v += 10 {
		fmt.Print("v")
		for u := v; u <= limit && u < v+10; u++ {
			lit := u
			if !s.LitTrue(vars[u]) {
				lit = -u
			}
			fmt.Printf(" %d", lit)
		}
		fmt.Println()
	}
	if !truncated {
		fmt.Println("v 0")
	}
}

// serve speaks procengine's persistent-session protocol: a line-based
// request/response exchange on stdin/stdout. Requests (client → stub):
//
//	open <sid> <hash> <nvars>       create session sid over the frozen
//	                                prefix named by hash; replies `ok`
//	                                when the prefix is cached, `need`
//	                                when the client must send it
//	prefix <sid> <nclauses>         the prefix body (nclauses lines of
//	                                DIMACS ints, each 0-terminated),
//	                                sent after `need`; replies `ok`
//	add <sid> <nvars> <nclauses>    extend the session to nvars total
//	                                variables plus delta clauses;
//	                                replies `ok`
//	solve <sid> [lit...]            solve under assumption literals;
//	                                replies `r sat` + `v` model lines
//	                                ending `v 0`, `r unsat`, or
//	                                `r unknown`
//
// Any protocol-level failure replies `e <message>` and keeps serving; a
// forgotten session id replies `e stale ...` (the client reopens once).
// Each session runs the repository's default-configured CDCL solver fed
// the exact stream the client replays, so persistent-session answers —
// models included — match the internal engine's byte for byte.
func serve(fault string, faultAfter int, sleep time.Duration) int {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<16), 1<<24)
	out := bufio.NewWriter(os.Stdout)
	reply := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}

	type session struct {
		s    *sat.Solver
		vars []sat.Lit // 1-based
		ok   bool
	}
	type prefix struct {
		nVars   int
		clauses [][]int
	}
	prefixes := map[string]*prefix{}
	sessions := map[string]*session{}
	solves := 0

	readClause := func() ([]int, error) {
		if !in.Scan() {
			return nil, io.ErrUnexpectedEOF
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 || fields[len(fields)-1] != "0" {
			return nil, fmt.Errorf("clause line %q not 0-terminated", in.Text())
		}
		cl := make([]int, 0, len(fields)-1)
		for _, f := range fields[:len(fields)-1] {
			v, err := strconv.Atoi(f)
			if err != nil || v == 0 {
				return nil, fmt.Errorf("bad literal %q", f)
			}
			cl = append(cl, v)
		}
		return cl, nil
	}
	grow := func(ses *session, nVars int) {
		for len(ses.vars)-1 < nVars {
			ses.vars = append(ses.vars, sat.PosLit(ses.s.NewVar()))
		}
	}
	addClause := func(ses *session, cl []int) bool {
		lits := make([]sat.Lit, len(cl))
		for i, v := range cl {
			u := v
			if u < 0 {
				u = -u
			}
			if u >= len(ses.vars) {
				return false
			}
			l := ses.vars[u]
			if v < 0 {
				l = l.Neg()
			}
			lits[i] = l
		}
		ses.ok = ses.s.AddClause(lits...) && ses.ok
		return true
	}

	for in.Scan() {
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "open": // open <sid> <hash> <nvars>
			if len(fields) != 4 {
				reply("e malformed open %q", in.Text())
				continue
			}
			sid, hash := fields[1], fields[2]
			nVars, err := strconv.Atoi(fields[3])
			if err != nil || nVars < 0 {
				reply("e bad open nvars %q", fields[3])
				continue
			}
			p, known := prefixes[hash]
			if !known {
				reply("need")
				if !in.Scan() {
					return 0
				}
				pf := strings.Fields(in.Text())
				if len(pf) != 3 || pf[0] != "prefix" || pf[1] != sid {
					reply("e expected prefix %s, got %q", sid, in.Text())
					continue
				}
				nClauses, err := strconv.Atoi(pf[2])
				if err != nil || nClauses < 0 {
					reply("e bad prefix count %q", pf[2])
					continue
				}
				p = &prefix{nVars: nVars}
				for i := 0; i < nClauses; i++ {
					cl, err := readClause()
					if err != nil {
						reply("e prefix clause: %v", err)
						p = nil
						break
					}
					p.clauses = append(p.clauses, cl)
				}
				if p == nil {
					continue
				}
				prefixes[hash] = p
			}
			ses := &session{s: sat.New(), ok: true, vars: make([]sat.Lit, 1, p.nVars+1)}
			grow(ses, p.nVars)
			bad := false
			for _, cl := range p.clauses {
				if !addClause(ses, cl) {
					bad = true
					break
				}
			}
			if bad {
				reply("e prefix literal out of range")
				continue
			}
			sessions[sid] = ses
			reply("ok")
			if fault == "stale" {
				// Forget the session immediately: the very next add/solve
				// sees `e stale`, and so does the client's one retry.
				delete(sessions, sid)
			}
		case "add": // add <sid> <nvars> <nclauses>
			if len(fields) != 4 {
				reply("e malformed add %q", in.Text())
				continue
			}
			ses, ok := sessions[fields[1]]
			if !ok {
				reply("e stale session %s", fields[1])
				continue
			}
			nVars, err1 := strconv.Atoi(fields[2])
			nClauses, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nVars < 0 || nClauses < 0 {
				reply("e bad add counts %q", in.Text())
				continue
			}
			grow(ses, nVars)
			failed := false
			for i := 0; i < nClauses; i++ {
				cl, err := readClause()
				if err != nil {
					reply("e add clause: %v", err)
					failed = true
					break
				}
				if !addClause(ses, cl) {
					reply("e add literal out of range")
					failed = true
					break
				}
			}
			if !failed {
				reply("ok")
			}
		case "solve": // solve <sid> [lit...]
			ses, ok := sessions[fields[1]]
			if !ok {
				reply("e stale session %s", fields[1])
				continue
			}
			solves++
			if sleep > 0 {
				time.Sleep(sleep)
			}
			if fault == "hangup" && solves >= faultAfter {
				os.Exit(3)
			}
			if fault == "garbage" && solves >= faultAfter {
				reply("r maybe")
				continue
			}
			as := make([]sat.Lit, 0, len(fields)-2)
			bad := false
			for _, f := range fields[2:] {
				v, err := strconv.Atoi(f)
				if err != nil || v == 0 {
					reply("e bad assumption %q", f)
					bad = true
					break
				}
				u := v
				if u < 0 {
					u = -u
				}
				if u >= len(ses.vars) {
					reply("e assumption out of range %q", f)
					bad = true
					break
				}
				l := ses.vars[u]
				if v < 0 {
					l = l.Neg()
				}
				as = append(as, l)
			}
			if bad {
				continue
			}
			st := sat.Unsat
			if ses.ok {
				st = ses.s.SolveAssuming(as)
			}
			switch st {
			case sat.Sat:
				fmt.Fprintln(out, "r sat")
				for v := 1; v < len(ses.vars); v += 10 {
					fmt.Fprint(out, "v")
					for u := v; u < len(ses.vars) && u < v+10; u++ {
						lit := u
						if !ses.s.LitTrue(ses.vars[u]) {
							lit = -u
						}
						fmt.Fprintf(out, " %d", lit)
					}
					fmt.Fprintln(out)
				}
				fmt.Fprintln(out, "v 0")
				out.Flush()
			case sat.Unsat:
				reply("r unsat")
			default:
				reply("r unknown")
			}
		default:
			reply("e bad command %q", fields[0])
		}
	}
	return 0
}
