// Command stub is a tiny DIMACS solver used to exercise the
// DIMACS-pipe engine (procengine) hermetically: it parses a CNF file
// (or stdin), decides it with the repository's internal CDCL solver,
// and prints a SAT-competition answer — `s SATISFIABLE` / `v ...`
// lines, exit code 10/20 like the real competition solvers. Because it
// runs the same default-configured search as the in-process engine, a
// portfolio racing `internal` against `stub` produces identical models
// whichever member wins, keeping heterogeneous CI diffs deterministic.
//
// Fault-injection flags let tests cover procengine's malformed-output
// handling:
//
//	-mode=ok          normal answer (default)
//	-mode=nostatus    model lines with no s-line
//	-mode=truncated   drop the model's 0 terminator (and its tail)
//	-mode=garbage     unparseable status line
//	-mode=silent      no output at all
//	-sleep=DUR        sleep before answering (cancellation tests)
//	-exit=N           override the exit code (-1 = competition codes)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dimacs"
	"repro/internal/sat"
)

func main() {
	mode := flag.String("mode", "ok", "output fault injection: ok | nostatus | truncated | garbage | silent")
	sleep := flag.Duration("sleep", 0, "sleep before answering")
	exitCode := flag.Int("exit", -1, "exit code override (-1 = 10 for SAT, 20 for UNSAT, 0 otherwise)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "stub: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	formula, err := dimacs.Parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stub: %v\n", err)
		os.Exit(1)
	}
	if *sleep > 0 {
		time.Sleep(*sleep)
	}

	s := sat.New()
	vars, ok := dimacs.LoadIntoSolver(s, formula)
	st := sat.Unsat
	if ok {
		st = s.Solve()
	}

	fmt.Println("c stub dimacs solver")
	switch *mode {
	case "silent":
	case "garbage":
		fmt.Println("s MAYBE")
	case "ok", "nostatus", "truncated":
		if *mode != "nostatus" {
			switch st {
			case sat.Sat:
				fmt.Println("s SATISFIABLE")
			case sat.Unsat:
				fmt.Println("s UNSATISFIABLE")
			default:
				fmt.Println("s UNKNOWN")
			}
		}
		if st == sat.Sat || *mode == "nostatus" {
			printModel(s, vars, formula.NumVars, *mode == "truncated")
		}
	default:
		fmt.Fprintf(os.Stderr, "stub: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	switch {
	case *exitCode >= 0:
		os.Exit(*exitCode)
	case st == sat.Sat:
		os.Exit(10)
	case st == sat.Unsat:
		os.Exit(20)
	}
}

// printModel emits v-lines wrapped at ten literals per line (exercising
// multi-line model parsing); truncated drops the second half of the
// model and the 0 terminator.
func printModel(s *sat.Solver, vars []sat.Lit, numVars int, truncated bool) {
	limit := numVars
	if truncated {
		limit = numVars / 2
	}
	for v := 1; v <= limit; v += 10 {
		fmt.Print("v")
		for u := v; u <= limit && u < v+10; u++ {
			lit := u
			if !s.LitTrue(vars[u]) {
				lit = -u
			}
			fmt.Printf(" %d", lit)
		}
		fmt.Println()
	}
	if !truncated {
		fmt.Println("v 0")
	}
}
