package sat_test

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// TestMemoEngineHitsAndModelIdentity: two engines over the same shared
// memo and the same frozen prefix issue the same query; the second
// answers from the cache with the identical verdict and model, without
// ever materializing a solver.
func TestMemoEngineHitsAndModelIdentity(t *testing.T) {
	stream := sat.NewStream()
	a, b, c := sat.PosLit(stream.NewVar()), sat.PosLit(stream.NewVar()), sat.PosLit(stream.NewVar())
	stream.AddClause(a, b)
	stream.AddClause(a.Neg(), c)
	stream.AddClause(b.Neg(), c.Neg())
	frozen := stream.Freeze()

	memo := sat.NewMemo(0)
	var ctr sat.MemoCounters

	e1 := sat.NewMemoEngine(memo, &ctr, sat.New())
	sat.Prime(e1, frozen)
	st1 := e1.SolveAssuming([]sat.Lit{a})
	if st1 != sat.Sat {
		t.Fatalf("first solve: %v, want Sat", st1)
	}
	model1 := []bool{e1.Value(0), e1.Value(1), e1.Value(2)}

	e2 := sat.NewMemoEngine(memo, &ctr, sat.New())
	sat.Prime(e2, frozen)
	st2 := e2.SolveAssuming([]sat.Lit{a})
	if st2 != sat.Sat {
		t.Fatalf("cached solve: %v, want Sat", st2)
	}
	model2 := []bool{e2.Value(0), e2.Value(1), e2.Value(2)}
	for v := range model1 {
		if model1[v] != model2[v] {
			t.Fatalf("cached model differs at var %d", v)
		}
	}
	if got := ctr.Snapshot(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("counters %+v, want 1 hit / 1 miss", got)
	}
	if got := memo.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("global stats %+v, want 1 hit / 1 miss", got)
	}
	// LitTrue must read the cached model too.
	if e2.LitTrue(a) != model2[0] || e2.LitTrue(a.Neg()) == model2[0] {
		t.Fatalf("LitTrue inconsistent with cached model")
	}
}

// TestMemoEngineStateParity is the determinism property behind the
// byte-identical CI diffs: an engine whose early queries were answered
// from the memo must — on a later miss — produce exactly the model an
// uncached engine produces, because the wrapper replays the query
// history into the inner engine before solving (learnt-clause state
// parity).
func TestMemoEngineStateParity(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := randOps(rng, 20)
		nVars := countVars(ops)
		stream := sat.NewStream()
		applyOps(stream, ops)
		frozen := stream.Freeze()

		q1 := randAssumptions(rng, nVars)
		q2 := randAssumptions(rng, nVars)
		extra := randAssumptions(rng, nVars) // becomes a delta clause
		if len(extra) == 0 {
			extra = []sat.Lit{sat.PosLit(rng.Intn(nVars))}
		}

		// Reference: no memo anywhere.
		ref := sat.New()
		sat.Prime(ref, frozen)
		ref.SolveAssuming(q1)
		ref.AddClause(extra...)
		wantSt := ref.SolveAssuming(q2)

		memo := sat.NewMemo(0)
		// Engine A populates the cache for q1.
		ea := sat.NewMemoEngine(memo, nil, sat.New())
		sat.Prime(ea, frozen)
		ea.SolveAssuming(q1)

		// Engine B hits on q1 (no solver yet), then adds a delta clause;
		// q2 over the new delta misses, forcing materialization + history
		// replay.
		eb := sat.NewMemoEngine(memo, nil, sat.New())
		sat.Prime(eb, frozen)
		eb.SolveAssuming(q1)
		eb.AddClause(extra...)
		gotSt := eb.SolveAssuming(q2)
		if gotSt != wantSt {
			t.Fatalf("seed %d: verdict %v, want %v", seed, gotSt, wantSt)
		}
		if wantSt == sat.Sat {
			for v := 0; v < nVars; v++ {
				if ref.Value(v) != eb.Value(v) {
					t.Fatalf("seed %d: model differs at var %d after memo-hit history", seed, v)
				}
			}
		}
	}
}

// TestMemoCap: beyond the entry cap, results are recomputed but not
// stored in memory — and every such drop is accounted in Capped (both
// the memo's global stats and the per-run counters), never silent.
func TestMemoCap(t *testing.T) {
	memo := sat.NewMemo(1)
	var ctr sat.MemoCounters
	mk := func() *sat.MemoEngine {
		e := sat.NewMemoEngine(memo, &ctr, sat.New())
		a := sat.PosLit(e.NewVar())
		e.AddClause(a)
		return e
	}
	e1 := mk()
	e1.Solve()
	if memo.Len() != 1 {
		t.Fatalf("entries %d, want 1", memo.Len())
	}
	if got := memo.Stats().Capped; got != 0 {
		t.Fatalf("capped %d before the cap was hit", got)
	}
	e2 := mk()
	e2.AddClause(sat.PosLit(e2.NewVar())) // different delta -> different key
	e2.Solve()
	if memo.Len() != 1 {
		t.Fatalf("cap exceeded: %d entries", memo.Len())
	}
	if got := memo.Stats().Capped; got != 1 {
		t.Fatalf("capped %d after first over-cap store, want 1", got)
	}
	// The uncached query still answers correctly — and, having been
	// dropped rather than stored, is recomputed and dropped again.
	e3 := mk()
	e3.AddClause(sat.PosLit(e3.NewVar()))
	if st := e3.Solve(); st != sat.Sat {
		t.Fatalf("over-cap solve: %v, want Sat", st)
	}
	if got := memo.Stats(); got.Capped != 2 || got.Misses != 3 {
		t.Fatalf("global stats %+v, want 2 capped / 3 misses", got)
	}
	if got := ctr.Snapshot(); got.Capped != 2 {
		t.Fatalf("per-run counters %+v, want 2 capped", got)
	}
}
