package sat

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// RestartStrategy selects the restart schedule of the CDCL search.
type RestartStrategy int

// Available restart strategies. RestartLuby (the default) follows the
// Luby sequence scaled by Config.RestartBase; RestartGeometric grows the
// conflict budget by Config.RestartGrowth after every restart.
const (
	RestartLuby RestartStrategy = iota
	RestartGeometric
)

func (r RestartStrategy) String() string {
	if r == RestartGeometric {
		return "geometric"
	}
	return "luby"
}

// Phase selects the polarity of decision assignments.
type Phase int

// Available decision polarities. PhaseSaved (the default) reuses the
// polarity the variable last held (classic phase saving); PhaseFalse and
// PhaseTrue always decide the fixed polarity; PhaseRandom draws the
// polarity from the config's seeded RNG.
const (
	PhaseSaved Phase = iota
	PhaseFalse
	PhaseTrue
	PhaseRandom
)

func (p Phase) String() string {
	switch p {
	case PhaseFalse:
		return "false"
	case PhaseTrue:
		return "true"
	case PhaseRandom:
		return "random"
	default:
		return "saved"
	}
}

// Config parameterizes a Solver's search heuristics. The zero value is
// the baseline configuration (what New uses): Luby restarts with base
// 100, saved phases, VSIDS decay 0.95, clause decay 0.999, no random
// decisions, no conflict budget.
//
// Every heuristic, including the randomized ones, is driven purely by
// Seed: two solvers built from equal Configs and fed the same clause
// stream make identical decisions, reach identical verdicts and models,
// and report identical conflict counts. That determinism is what lets a
// fixed-seed experiment reproduce bit-for-bit, and what the determinism
// tests in config_test.go pin down.
type Config struct {
	// Seed drives the seeded tie-breaking: random decision variables
	// (RandomFreq) and random polarities (PhaseRandom). Configs that use
	// neither are seed-independent.
	Seed int64
	// Restart selects the restart schedule.
	Restart RestartStrategy
	// RestartBase is the first restart's conflict budget (default 100).
	RestartBase int
	// RestartGrowth is the geometric schedule's multiplier (default
	// 1.5); RestartLuby ignores it.
	RestartGrowth float64
	// Phase selects the decision polarity heuristic.
	Phase Phase
	// VarDecay is the VSIDS activity decay factor in (0,1) (default
	// 0.95); lower values make the heuristic more agile.
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay factor (default
	// 0.999).
	ClauseDecay float64
	// RandomFreq is the fraction of decisions that pick a uniformly
	// random unassigned variable instead of the top-activity one
	// (default 0, i.e. pure VSIDS).
	RandomFreq float64
	// ConflictBudget bounds conflicts per Solve call (0 = unlimited);
	// equivalent to calling SetConflictLimit after construction.
	ConflictBudget int64
}

// DefaultConfig returns the baseline configuration with every default
// made explicit.
func DefaultConfig() Config { return Config{}.withDefaults() }

// withDefaults fills zero fields with the baseline values, so the zero
// Config and DefaultConfig() behave identically.
func (c Config) withDefaults() Config {
	if c.RestartBase == 0 {
		c.RestartBase = 100
	}
	if c.RestartGrowth == 0 {
		c.RestartGrowth = 1.5
	}
	if c.VarDecay == 0 {
		c.VarDecay = 0.95
	}
	if c.ClauseDecay == 0 {
		c.ClauseDecay = 0.999
	}
	return c
}

// String renders the canonical spec of the config: the seed plus every
// field that differs from the baseline, in ParseConfig syntax. It is
// stable, so it doubles as the config key in portfolio win statistics.
func (c Config) String() string {
	c = c.withDefaults()
	d := DefaultConfig()
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	if c.Restart != d.Restart {
		parts = append(parts, "restart="+c.Restart.String())
	}
	if c.RestartBase != d.RestartBase {
		parts = append(parts, fmt.Sprintf("base=%d", c.RestartBase))
	}
	if c.RestartGrowth != d.RestartGrowth {
		parts = append(parts, fmt.Sprintf("growth=%g", c.RestartGrowth))
	}
	if c.Phase != d.Phase {
		parts = append(parts, "phase="+c.Phase.String())
	}
	if c.VarDecay != d.VarDecay {
		parts = append(parts, fmt.Sprintf("vdecay=%g", c.VarDecay))
	}
	if c.ClauseDecay != d.ClauseDecay {
		parts = append(parts, fmt.Sprintf("cdecay=%g", c.ClauseDecay))
	}
	if c.RandomFreq != d.RandomFreq {
		parts = append(parts, fmt.Sprintf("rand=%g", c.RandomFreq))
	}
	if c.ConflictBudget != d.ConflictBudget {
		parts = append(parts, fmt.Sprintf("budget=%d", c.ConflictBudget))
	}
	return strings.Join(parts, ",")
}

// ParseConfig parses a comma-separated key=value spec as accepted by the
// CLIs' -solver flags and produced by Config.String:
//
//	seed=N restart=luby|geometric base=N growth=F
//	phase=saved|false|true|random vdecay=F cdecay=F rand=F budget=N
//
// Unset keys keep their baseline values; the empty string is the
// baseline config.
func ParseConfig(spec string) (Config, error) {
	c := DefaultConfig()
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("sat: config entry %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "restart":
			switch v {
			case "luby":
				c.Restart = RestartLuby
			case "geometric", "geo":
				c.Restart = RestartGeometric
			default:
				err = fmt.Errorf("want luby or geometric, got %q", v)
			}
		case "base":
			c.RestartBase, err = strconv.Atoi(v)
		case "growth":
			c.RestartGrowth, err = strconv.ParseFloat(v, 64)
		case "phase":
			switch v {
			case "saved":
				c.Phase = PhaseSaved
			case "false", "neg":
				c.Phase = PhaseFalse
			case "true", "pos":
				c.Phase = PhaseTrue
			case "random", "rand":
				c.Phase = PhaseRandom
			default:
				err = fmt.Errorf("want saved, false, true or random, got %q", v)
			}
		case "vdecay":
			c.VarDecay, err = strconv.ParseFloat(v, 64)
		case "cdecay":
			c.ClauseDecay, err = strconv.ParseFloat(v, 64)
		case "rand":
			c.RandomFreq, err = strconv.ParseFloat(v, 64)
		case "budget":
			c.ConflictBudget, err = strconv.ParseInt(v, 10, 64)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return c, fmt.Errorf("sat: config entry %q: %v", kv, err)
		}
	}
	if err := c.validate(); err != nil {
		return c, err
	}
	return c, nil
}

// validate checks an already-normalized config (NewWith normalizes
// first; ParseConfig starts from DefaultConfig, so an explicit zero in
// a spec is caught rather than silently re-defaulted).
func (c Config) validate() error {
	switch {
	case c.VarDecay <= 0 || c.VarDecay > 1:
		return fmt.Errorf("sat: vdecay %g outside (0,1]", c.VarDecay)
	case c.ClauseDecay <= 0 || c.ClauseDecay > 1:
		return fmt.Errorf("sat: cdecay %g outside (0,1]", c.ClauseDecay)
	case c.RandomFreq < 0 || c.RandomFreq > 1:
		return fmt.Errorf("sat: rand %g outside [0,1]", c.RandomFreq)
	case c.RestartBase < 1:
		return fmt.Errorf("sat: restart base %d < 1", c.RestartBase)
	case c.RestartGrowth < 1:
		return fmt.Errorf("sat: restart growth %g < 1", c.RestartGrowth)
	}
	return nil
}

// rng returns the config's seeded tie-breaking source, or nil when no
// heuristic consumes randomness (keeping the deterministic hot path free
// of RNG calls).
func (c Config) rng() *rand.Rand {
	if c.RandomFreq <= 0 && c.Phase != PhaseRandom {
		return nil
	}
	return rand.New(rand.NewSource(c.Seed ^ 0x5deece66d))
}
