package sat

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseEngineSpecForms(t *testing.T) {
	cases := []struct {
		spec string
		want EngineSpec
	}{
		{"", InternalSpec(Config{})},
		{"seed=3,restart=geometric", InternalSpec(Config{Seed: 3, Restart: RestartGeometric})},
		{"internal", InternalSpec(Config{})},
		{"internal:seed=7", InternalSpec(Config{Seed: 7})},
		{"kissat", EngineSpec{Kind: EngineProcess, Cmd: "kissat"}},
		{"kissat:path=/opt/kissat", EngineSpec{Kind: EngineProcess, Cmd: "/opt/kissat"}},
		{"process:cmd=/tmp/solver", EngineSpec{Kind: EngineProcess, Cmd: "/tmp/solver"}},
		{"kissat:persistent=true", EngineSpec{Kind: EngineProcess, Cmd: "kissat", Persistent: true}},
		{"kissat:persistent=false", EngineSpec{Kind: EngineProcess, Cmd: "kissat"}},
		{"process:cmd=/tmp/solver,persistent=true", EngineSpec{Kind: EngineProcess, Cmd: "/tmp/solver", Persistent: true}},
		{"bdd", EngineSpec{Kind: EngineBDD}},
		{"bdd:max-nodes=4096", EngineSpec{Kind: EngineBDD, MaxNodes: 4096}},
		{"bdd:max-nodes=1<<20", EngineSpec{Kind: EngineBDD, MaxNodes: 1 << 20}},
	}
	for _, c := range cases {
		got, err := ParseEngineSpec(c.spec)
		if err != nil {
			t.Errorf("ParseEngineSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseEngineSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// Canonical strings round-trip.
		again, err := ParseEngineSpec(got.String())
		if err != nil || again != got {
			t.Errorf("round trip of %q via %q: %+v, %v", c.spec, got.String(), again, err)
		}
	}
}

func TestParseEngineSpecRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"frobnicate=1",          // unknown internal config key
		"internal:frobnicate=1", // same, explicit kind
		"bdd:max-nodes=0",
		"bdd:max-nodes=x",
		"bdd:color=red",
		"process",         // no cmd
		"process:cmd=",    // empty cmd
		"process:wrong=1", // unknown key
		"kissat:verbose=1",
		"kissat:persistent=maybe", // unparsable bool
		"process:cmd=/tmp/s,persistent=2",
		"a b",  // whitespace in a bare name
		"a,b:", // comma in a bare name
	} {
		if got, err := ParseEngineSpec(spec); err == nil {
			t.Errorf("ParseEngineSpec(%q) accepted a bad spec: %+v", spec, got)
		}
	}
}

func TestParseEngineList(t *testing.T) {
	base := Config{Seed: 5}
	specs, err := ParseEngineList("internal:seed=7,restart=geometric,kissat,bdd:max-nodes=1<<18", base)
	if err != nil {
		t.Fatal(err)
	}
	want := []EngineSpec{
		InternalSpec(Config{Seed: 7, Restart: RestartGeometric}),
		{Kind: EngineProcess, Cmd: "kissat"},
		{Kind: EngineBDD, MaxNodes: 1 << 18},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Errorf("ParseEngineList = %+v, want %+v", specs, want)
	}

	// A bare "internal" entry inherits the -solver base config.
	specs, err = ParseEngineList("internal,bdd", base)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0] != InternalSpec(base) {
		t.Errorf("bare internal entry = %+v, want base %+v", specs[0], InternalSpec(base))
	}

	// A leading option token with no kind starts an implicit internal
	// entry (the legacy -solver grammar embedded in a list).
	specs, err = ParseEngineList("seed=3,restart=geometric,bdd", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0] != InternalSpec(Config{Seed: 3, Restart: RestartGeometric}) || specs[1].Kind != EngineBDD {
		t.Errorf("implicit internal entry: %+v", specs)
	}

	// Options may follow a colon-less entry directly: the first
	// continuation token supplies the ':' the single-spec grammar wants.
	specs, err = ParseEngineList("internal,seed=3,restart=geometric,bdd,max-nodes=4096", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0] != InternalSpec(Config{Seed: 3, Restart: RestartGeometric}) ||
		specs[1] != (EngineSpec{Kind: EngineBDD, MaxNodes: 4096}) {
		t.Errorf("colon-less continuation: %+v", specs)
	}

	// persistent=true continues an external entry like any option token.
	specs, err = ParseEngineList("internal,stub,persistent=true", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1] != (EngineSpec{Kind: EngineProcess, Cmd: "stub", Persistent: true}) {
		t.Errorf("persistent continuation: %+v", specs)
	}

	for _, bad := range []string{"", " , ", "internal,internal", "kissat,kissat", "bdd,frobnicate=1"} {
		if specs, err := ParseEngineList(bad, Config{}); err == nil {
			t.Errorf("ParseEngineList(%q) accepted a bad list: %+v", bad, specs)
		}
	}
}

func TestLearnedConfigs(t *testing.T) {
	specs := []EngineSpec{
		InternalSpec(Config{}),
		{Kind: EngineBDD},
		{Kind: EngineProcess, Cmd: "kissat"},
	}
	prior := []ConfigStats{
		{Config: specs[0].String(), Races: 40, Wins: 5},
		{Config: "bdd", Races: 40, Wins: 0},
		{Config: "kissat", Races: 40, Wins: 35},
	}

	// Reorder only: kissat first (most wins), bdd last, nothing dropped.
	got := LearnedConfigs(specs, prior, 0)
	if len(got) != 3 || got[0].Cmd != "kissat" || got[1].Kind != EngineInternal || got[2].Kind != EngineBDD {
		t.Errorf("reorder: %v", EngineLabels(got))
	}

	// Drop: bdd raced >= 20 times without a win while others won.
	got = LearnedConfigs(specs, prior, 20)
	if len(got) != 2 || got[0].Cmd != "kissat" || got[1].Kind != EngineInternal {
		t.Errorf("drop: %v", EngineLabels(got))
	}

	// A spec with no recorded stats is never dropped.
	unknown := append(specs, EngineSpec{Kind: EngineProcess, Cmd: "cadical"})
	got = LearnedConfigs(unknown, prior, 20)
	found := false
	for _, s := range got {
		if s.Cmd == "cadical" {
			found = true
		}
	}
	if !found {
		t.Errorf("unknown spec dropped: %v", EngineLabels(got))
	}

	// All losers: nothing is dropped (there is no winner to keep).
	losers := []ConfigStats{
		{Config: specs[0].String(), Races: 40},
		{Config: "bdd", Races: 40},
		{Config: "kissat", Races: 40},
	}
	if got := LearnedConfigs(specs, losers, 20); len(got) != 3 {
		t.Errorf("all-loser prior dropped specs: %v", EngineLabels(got))
	}
}

func TestMergeStats(t *testing.T) {
	a := []ConfigStats{{Config: "seed=0", Races: 3, Wins: 2, SatWins: 1, UnsatWins: 1, Conflicts: 10}}
	b := []ConfigStats{
		{Config: "bdd", Races: 3, Wins: 1, SatWins: 1, Conflicts: 0},
		{Config: "seed=0", Races: 4, Wins: 2, UnsatWins: 2, Conflicts: 7},
	}
	got := MergeStats(a, b)
	want := []ConfigStats{
		{Config: "seed=0", Races: 7, Wins: 4, SatWins: 1, UnsatWins: 3, Conflicts: 17},
		{Config: "bdd", Races: 3, Wins: 1, SatWins: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeStats = %+v, want %+v", got, want)
	}
}

func TestStatsFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "portfolio_stats.json")
	stats := []ConfigStats{{Config: "seed=0", Races: 2, Wins: 1, SatWins: 1, Conflicts: 5}, {Config: "bdd", Races: 2}}
	if err := WriteStatsFile(path, stats); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStatsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, stats) {
		t.Errorf("round trip: %+v != %+v", got, stats)
	}
}

// TestLedgerActiveAndSlots: slot-mapped recording accounts a subset race
// into the full spec list's ledger, and Active implements the
// chronic-loser drop rule.
func TestLedgerActiveAndSlots(t *testing.T) {
	l := NewLedgerLabels([]string{"a", "b", "c"})
	// Engines race slots {0, 2}; slot 2 wins an UNSAT race.
	l.record(Unsat, 2, []int{0, 2}, []Stats{{Conflicts: 4}, {Conflicts: 1}})
	snap := l.Snapshot()
	if snap[0].Races != 1 || snap[0].Conflicts != 4 || snap[0].Wins != 0 {
		t.Errorf("slot 0: %+v", snap[0])
	}
	if snap[1].Races != 0 {
		t.Errorf("slot 1 raced: %+v", snap[1])
	}
	if snap[2].Races != 1 || snap[2].Wins != 1 || snap[2].UnsatWins != 1 {
		t.Errorf("slot 2: %+v", snap[2])
	}

	// Active: slot 0 has raced once without a win; dropAfter 1 drops it,
	// dropAfter 2 keeps it, slot 1 (never raced) always stays.
	if act := l.Active(1); act[0] || !act[1] || !act[2] {
		t.Errorf("Active(1) = %v", act)
	}
	if act := l.Active(2); !act[0] || !act[1] || !act[2] {
		t.Errorf("Active(2) = %v", act)
	}
	if act := l.Active(0); !act[0] || !act[1] || !act[2] {
		t.Errorf("Active(0) = %v", act)
	}
}

// TestEnginePortfolioMixedVerdicts: a heterogeneous portfolio (two
// internal configs through the generic constructor) agrees with the
// single engine on the verdict table.
func TestEnginePortfolioMixedVerdicts(t *testing.T) {
	for name, load := range instanceTable() {
		want, _, _ := runInstance(Config{}, load)
		engines := []Engine{NewWith(Config{}), NewWith(Config{Seed: 3, Phase: PhaseFalse})}
		p := NewEnginePortfolio(engines, NewLedgerLabels([]string{"base", "neg"}))
		load(p)
		if got := p.Solve(); got != want {
			t.Errorf("%s: portfolio verdict %v, single %v", name, got, want)
		}
	}
}
