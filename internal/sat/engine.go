package sat

import "context"

// Engine is the solver-backend interface every SAT consumer in this
// repository programs against: the incremental subset of *Solver that
// the CNF encoder and the attacks use. Implementations: *Solver (one
// CDCL engine), *Portfolio (N engines racing per query),
// procengine.ProcessEngine (an external DIMACS solver behind a pipe)
// and bddengine.Engine (exact ROBDD reasoning for small cones). Engine
// specs (see EngineSpec) name backends in flags and campaign plans.
//
// Engines are not safe for concurrent use; attacks that parallelize
// create one engine per worker through an attack.SolverFactory.
type Engine interface {
	// NewVar introduces a fresh variable and returns its index.
	NewVar() int
	// NumVars returns the number of variables created so far.
	NumVars() int
	// AddClause adds a clause; it returns false if the solver is (or
	// becomes) unsatisfiable at the top level.
	AddClause(lits ...Lit) bool
	// Solve determines satisfiability of the current clause set.
	Solve() Status
	// SolveAssuming solves under assumption literals that hold for this
	// call only; clauses learned persist, making repeated calls
	// incremental.
	SolveAssuming(assumptions []Lit) Status
	// Value returns variable v's value in the last satisfying
	// assignment.
	Value(v int) bool
	// LitTrue reports whether literal l is true in the last model.
	LitTrue(l Lit) bool
	// SetContext attaches a cancellation/deadline context; once it
	// expires, Solve calls return Unknown.
	SetContext(ctx context.Context)
	// Stats returns the cumulative counters (see the Stats type for the
	// accumulate-across-calls semantics).
	Stats() Stats
}

var (
	_ Engine = (*Solver)(nil)
	_ Engine = (*Portfolio)(nil)
)
