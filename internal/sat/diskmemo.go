package sat

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DiskMemo is the persistent L2 tier of the verdict memo: a
// content-addressed store of solved (prefix hash, delta hash,
// assumptions) → verdict records under a directory, shared by every
// process pointed at it — campaign shards running concurrently,
// reruns of the same suite, daemon restarts. Records are laid out in
// a 256-way hash fanout (dir/ab/<digest>.rec) and written with the
// same temp-file + rename discipline as campaign artifacts, so
// concurrent writers and kill -9'd runs never leave a torn record.
// Every record is self-verifying (magic, key echo, whole-record
// checksum): a truncated, garbage, or foreign-key file degrades to a
// cache miss — never a wrong verdict — and is deleted on sight.
//
// The store is byte-bounded: once Put pushes the resident size past
// the cap, a compaction pass evicts least-recently-used records
// (access is stamped on the file's mtime at every hit) down to 90% of
// the cap, so long-lived daemons and append-forever campaign
// directories stay bounded. Eviction only ever turns future hits into
// misses; it cannot corrupt concurrent readers, who see either a
// complete record or ENOENT.
//
// A DiskMemo is safe for concurrent use by any number of goroutines
// and coexists with other processes on the same directory: accounting
// drifts at most until the next compaction walk, which recounts from
// the filesystem.
type DiskMemo struct {
	dir      string
	maxBytes int64

	hits, misses, writes, evictions, corrupt, errors atomic.Int64

	mu      sync.Mutex // guards bytes/entries accounting and GC runs
	bytes   int64
	entries int64
	inGC    bool
}

// DefaultDiskMemoBytes is the store's default size cap (1 GiB —
// roomy for millions of cone-query verdicts, small enough that a
// forgotten campaign directory is not a disk incident).
const DefaultDiskMemoBytes = 1 << 30

// DiskMemoStats is a snapshot of the on-disk tier's accounting: the
// shape behind daemon /metrics and CLI stderr summaries.
type DiskMemoStats struct {
	// Hits / Misses count Get resolutions (a corrupt record counts as
	// a miss AND in Corrupt).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Writes counts records persisted; Evictions records removed by
	// the size-cap compaction.
	Writes    int64 `json:"writes"`
	Evictions int64 `json:"evictions,omitempty"`
	// Corrupt counts records rejected by validation (truncated,
	// garbage, or foreign-key files); each was deleted and served as a
	// miss.
	Corrupt int64 `json:"corrupt,omitempty"`
	// Errors counts I/O failures (unwritable records, unreadable
	// directories); the memo degrades to the memory tier.
	Errors int64 `json:"errors,omitempty"`
	// Entries / Bytes are the resident record count and total size
	// (approximate between compactions when other processes share the
	// directory).
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// OpenDiskMemo opens (creating if needed) the record store under dir
// with the given size cap in bytes (<= 0 means DefaultDiskMemoBytes).
// Existing records — from earlier runs, other shards, a previous
// daemon — are counted and served immediately.
func OpenDiskMemo(dir string, maxBytes int64) (*DiskMemo, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskMemoBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sat: disk memo: %w", err)
	}
	d := &DiskMemo{dir: dir, maxBytes: maxBytes}
	bytes, entries := int64(0), int64(0)
	d.walk(func(path string, info fs.FileInfo) {
		bytes += info.Size()
		entries++
	})
	d.bytes, d.entries = bytes, entries
	return d, nil
}

// Dir returns the store's directory.
func (d *DiskMemo) Dir() string { return d.dir }

// Stats returns the tier's accounting snapshot.
func (d *DiskMemo) Stats() DiskMemoStats {
	d.mu.Lock()
	bytes, entries := d.bytes, d.entries
	d.mu.Unlock()
	return DiskMemoStats{
		Hits:      d.hits.Load(),
		Misses:    d.misses.Load(),
		Writes:    d.writes.Load(),
		Evictions: d.evictions.Load(),
		Corrupt:   d.corrupt.Load(),
		Errors:    d.errors.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// recordSuffix is the record file extension; anything else in the
// fanout directories (temp files, stray artifacts) is ignored.
const recordSuffix = ".rec"

// keyPath maps a memo key to its content-addressed record path: the
// SHA-256 of the canonical key bytes, hex-encoded, fanned out on the
// first byte so no single directory collects millions of entries.
func (d *DiskMemo) keyPath(key memoKey) string {
	digest := sha256.New()
	digest.Write(key.prefix[:])
	digest.Write(key.delta[:])
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(key.assume)))
	digest.Write(buf[:n])
	digest.Write([]byte(key.assume))
	h := hex.EncodeToString(digest.Sum(nil))
	return filepath.Join(d.dir, h[:2], h[2:]+recordSuffix)
}

// Get resolves key from disk. A missing record is a plain miss; a
// record that fails validation (truncation, garbage, key mismatch) is
// deleted, counted in Corrupt, and served as a miss — the store can
// slow a query down, never change its verdict. Hits refresh the
// record's access stamp (mtime) for the LRU compaction.
func (d *DiskMemo) Get(key memoKey) (*memoEntry, bool) {
	path := d.keyPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	e, err := decodeRecord(data, key)
	if err != nil {
		d.corrupt.Add(1)
		d.misses.Add(1)
		if rmErr := os.Remove(path); rmErr == nil {
			d.account(-int64(len(data)), -1)
		}
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort LRU stamp
	d.hits.Add(1)
	return e, true
}

// Put persists a decided record atomically (temp + rename in the
// record's own fanout directory, so the rename never crosses a
// filesystem boundary) and triggers compaction when the store
// outgrows its cap. Write failures are counted and swallowed: the
// cache is an accelerator, not a durability contract.
func (d *DiskMemo) Put(key memoKey, e *memoEntry) {
	if e == nil || e.st == Unknown {
		return
	}
	path := d.keyPath(key)
	fan := filepath.Dir(path)
	if err := os.MkdirAll(fan, 0o755); err != nil {
		d.errors.Add(1)
		return
	}
	data := encodeRecord(key, e)
	var replaced int64
	if fi, err := os.Stat(path); err == nil {
		replaced = fi.Size()
	}
	tmp, err := os.CreateTemp(fan, ".tmp-*")
	if err != nil {
		d.errors.Add(1)
		return
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		d.errors.Add(1)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		d.errors.Add(1)
		return
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		d.errors.Add(1)
		return
	}
	d.writes.Add(1)
	if replaced > 0 {
		d.account(int64(len(data))-replaced, 0)
	} else {
		d.account(int64(len(data)), 1)
	}
	d.maybeGC()
}

// account adjusts the resident-size approximation.
func (d *DiskMemo) account(deltaBytes, deltaEntries int64) {
	d.mu.Lock()
	d.bytes += deltaBytes
	d.entries += deltaEntries
	if d.bytes < 0 {
		d.bytes = 0
	}
	if d.entries < 0 {
		d.entries = 0
	}
	d.mu.Unlock()
}

// maybeGC runs one compaction pass when the store exceeds its cap; at
// most one pass runs at a time per process, and concurrent processes
// compacting the same directory merely race to delete the same oldest
// files (a lost race is a no-op).
func (d *DiskMemo) maybeGC() {
	d.mu.Lock()
	over := d.bytes > d.maxBytes && !d.inGC
	if over {
		d.inGC = true
	}
	d.mu.Unlock()
	if !over {
		return
	}
	defer func() {
		d.mu.Lock()
		d.inGC = false
		d.mu.Unlock()
	}()
	d.gc()
}

// gcRecord is one record file the compaction walk found.
type gcRecord struct {
	path  string
	size  int64
	atime time.Time
}

// gc recounts the store from the filesystem (healing cross-process
// accounting drift) and, while over the cap, evicts records oldest
// access stamp first until resident size is at most 90% of the cap.
func (d *DiskMemo) gc() {
	var recs []gcRecord
	total := int64(0)
	d.walk(func(path string, info fs.FileInfo) {
		recs = append(recs, gcRecord{path: path, size: info.Size(), atime: info.ModTime()})
		total += info.Size()
	})
	target := d.maxBytes - d.maxBytes/10
	entries := int64(len(recs))
	if total > target {
		sort.Slice(recs, func(i, j int) bool { return recs[i].atime.Before(recs[j].atime) })
		for _, r := range recs {
			if total <= target {
				break
			}
			if err := os.Remove(r.path); err != nil {
				continue // another process won the eviction race
			}
			total -= r.size
			entries--
			d.evictions.Add(1)
		}
	}
	d.mu.Lock()
	d.bytes, d.entries = total, entries
	d.mu.Unlock()
}

// walk visits every record file in the fanout tree.
func (d *DiskMemo) walk(fn func(path string, info fs.FileInfo)) {
	fans, err := os.ReadDir(d.dir)
	if err != nil {
		d.errors.Add(1)
		return
	}
	for _, fan := range fans {
		if !fan.IsDir() || strings.HasPrefix(fan.Name(), ".") {
			continue
		}
		ents, err := os.ReadDir(filepath.Join(d.dir, fan.Name()))
		if err != nil {
			continue
		}
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, recordSuffix) {
				continue
			}
			info, err := ent.Info()
			if err != nil {
				continue // deleted under us
			}
			fn(filepath.Join(d.dir, fan.Name(), name), info)
		}
	}
}

// Record encoding (version 1). Every field the lookup depends on is in
// the record, and the whole record is covered by a trailing SHA-256,
// so validation catches truncation, bit rot, garbage, and — via the
// key echo — content-address collisions or records copied between
// keys:
//
//	magic    [8]byte  "FALLMEM1"
//	status   1 byte   1 = Sat, 2 = Unsat
//	prefix   [32]byte key echo: frozen-prefix hash
//	delta    [32]byte key echo: delta hash
//	assume   uvarint length + bytes (key echo: packed assumptions)
//	model    (Sat only) uvarint nVars + ceil(nVars/64) × 8 bytes LE
//	checksum [32]byte SHA-256 of everything above
var diskMemoMagic = [8]byte{'F', 'A', 'L', 'L', 'M', 'E', 'M', '1'}

// encodeRecord serializes one verdict record.
func encodeRecord(key memoKey, e *memoEntry) []byte {
	var b bytes.Buffer
	b.Write(diskMemoMagic[:])
	if e.st == Sat {
		b.WriteByte(1)
	} else {
		b.WriteByte(2)
	}
	b.Write(key.prefix[:])
	b.Write(key.delta[:])
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(key.assume)))
	b.Write(buf[:n])
	b.WriteString(key.assume)
	if e.st == Sat {
		n = binary.PutUvarint(buf[:], uint64(e.nVars))
		b.Write(buf[:n])
		var w [8]byte
		for _, word := range e.bits {
			binary.LittleEndian.PutUint64(w[:], word)
			b.Write(w[:])
		}
	}
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes()
}

// decodeRecord parses and validates a record against the key the
// caller looked up. Any deviation — short file, bad magic, checksum
// mismatch, key mismatch, impossible field — is an error; the caller
// treats it as a miss.
func decodeRecord(data []byte, key memoKey) (*memoEntry, error) {
	if len(data) < len(diskMemoMagic)+1+2*sha256.Size+sha256.Size {
		return nil, fmt.Errorf("sat: disk memo record truncated (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("sat: disk memo record checksum mismatch")
	}
	if !bytes.Equal(body[:len(diskMemoMagic)], diskMemoMagic[:]) {
		return nil, fmt.Errorf("sat: disk memo record has bad magic")
	}
	r := bytes.NewReader(body[len(diskMemoMagic):])
	stByte, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	var st Status
	switch stByte {
	case 1:
		st = Sat
	case 2:
		st = Unsat
	default:
		return nil, fmt.Errorf("sat: disk memo record has status %d", stByte)
	}
	var prefix, delta Hash
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, delta[:]); err != nil {
		return nil, err
	}
	alen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if alen > uint64(r.Len()) {
		return nil, fmt.Errorf("sat: disk memo record assumption length %d exceeds record", alen)
	}
	assume := make([]byte, alen)
	if _, err := io.ReadFull(r, assume); err != nil {
		return nil, err
	}
	if prefix != key.prefix || delta != key.delta || string(assume) != key.assume {
		return nil, fmt.Errorf("sat: disk memo record keyed for a different query")
	}
	e := &memoEntry{st: st}
	if st == Sat {
		nVars, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		words := (nVars + 63) / 64
		if words*8 != uint64(r.Len()) {
			return nil, fmt.Errorf("sat: disk memo record model size mismatch (%d vars, %d bytes left)", nVars, r.Len())
		}
		e.nVars = int(nVars)
		e.bits = make([]uint64, words)
		var w [8]byte
		for i := range e.bits {
			if _, err := io.ReadFull(r, w[:]); err != nil {
				return nil, err
			}
			e.bits[i] = binary.LittleEndian.Uint64(w[:])
		}
	} else if r.Len() != 0 {
		return nil, fmt.Errorf("sat: disk memo record has %d trailing bytes", r.Len())
	}
	return e, nil
}
