package sat

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// This file implements the cross-query verdict memo cache on top of
// frozen clause streams. FALL analyses across candidates — and
// campaign cases across a run — repeatedly solve identical
// sub-problems (same cone, same unateness/comparator query); the memo
// keys every query by (frozen-prefix hash, delta hash, assumptions)
// and returns the recorded verdict and model without touching a
// solver. The wrapper preserves exact engine semantics: on a cache
// miss it materializes its inner engine lazily and first replays the
// engine's whole query history, so the inner engine reaches the same
// incremental state (learnt clauses included) it would have reached
// without the cache — verdicts AND models match the uncached run.

// MemoStats is a hit/miss snapshot of memo-cache accounting — the
// shape serialized into harness outcomes, campaign merges and the
// daemon's /metrics.
type MemoStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Add returns the entrywise sum (campaign merge aggregation).
func (s MemoStats) Add(o MemoStats) MemoStats {
	return MemoStats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

// Total returns the number of accounted queries.
func (s MemoStats) Total() int64 { return s.Hits + s.Misses }

// MemoCounters accumulates hit/miss counts for one accounting scope (a
// SolverSetup, i.e. one attack run) against a possibly shared Memo.
// Safe for concurrent use.
type MemoCounters struct {
	hits, misses atomic.Int64
}

// Snapshot returns the current counts.
func (c *MemoCounters) Snapshot() MemoStats {
	return MemoStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// DefaultMemoEntries bounds an unbounded-cap Memo: enough for every
// distinct query of a large campaign while keeping worst-case memory
// proportional to distinct models stored.
const DefaultMemoEntries = 1 << 20

type memoKey struct {
	prefix Hash
	delta  Hash
	assume string
}

type memoEntry struct {
	st    Status
	model []bool // nil unless st == Sat; indexed by variable
}

// Memo is an in-memory verdict cache keyed by (prefix hash, delta
// hash, assumptions). It is safe for concurrent use and is typically
// shared across every engine of a run — or, in the daemon, across
// jobs — so identical sub-queries are solved once. Only decided
// verdicts are stored (Unknown is always recomputed); the first
// stored entry for a key wins, keeping replays deterministic.
type Memo struct {
	mu      sync.Mutex
	max     int
	entries map[memoKey]*memoEntry
	hits    int64
	misses  int64
}

// NewMemo returns a memo holding at most max entries (max <= 0 means
// DefaultMemoEntries). Beyond the cap, new results are recomputed but
// not stored.
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	return &Memo{max: max, entries: make(map[memoKey]*memoEntry)}
}

// Stats returns the memo's global hit/miss counts.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses}
}

// Len returns the number of stored entries.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

func (m *Memo) lookup(key memoKey) (*memoEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return e, ok
}

func (m *Memo) store(key memoKey, st Status, model []bool) {
	if st == Unknown {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.entries[key]; exists || len(m.entries) >= m.max {
		return
	}
	m.entries[key] = &memoEntry{st: st, model: model}
}

func assumeKey(as []Lit) string {
	b := make([]byte, 0, len(as)*2)
	var buf [binary.MaxVarintLen64]byte
	for _, l := range as {
		n := binary.PutUvarint(buf[:], uint64(l))
		b = append(b, buf[:n]...)
	}
	return string(b)
}

// memoQuery records one past SolveAssuming call so a later cache miss
// can replay the inner engine into the exact incremental state it
// would have had without the cache.
type memoQuery struct {
	opsAt       int
	assumptions []Lit
}

// MemoEngine wraps an inner engine with a Memo. Clauses and variables
// are buffered in a Stream (so every query has a content hash); the
// inner engine is only materialized — primed with the frozen prefix,
// fed the buffered delta and the replayed query history — on the
// first cache miss. A fully memoized consumer never runs a solver.
// Like every Engine, a MemoEngine is not safe for concurrent use.
type MemoEngine struct {
	memo *Memo
	ctr  *MemoCounters // optional per-run accounting; may be nil

	inner  Engine
	stream *Stream
	ctx    context.Context
	stats  Stats

	primed      bool
	replayedOps int
	synced      int // queries already replayed into inner
	queries     []memoQuery
	cached      *memoEntry // model source when the last solve hit
}

var (
	_ Engine       = (*MemoEngine)(nil)
	_ FrozenLoader = (*MemoEngine)(nil)
)

// NewMemoEngine wraps inner with the given memo. ctr, when non-nil,
// accumulates this engine's hits and misses for per-run reporting on
// top of the memo's global counters.
func NewMemoEngine(memo *Memo, ctr *MemoCounters, inner Engine) *MemoEngine {
	return &MemoEngine{memo: memo, ctr: ctr, inner: inner, stream: NewStream()}
}

// Inner returns the wrapped engine that serves cache misses.
func (m *MemoEngine) Inner() Engine { return m.inner }

// LastFromCache reports whether the most recent Solve/SolveAssuming
// was answered from the memo without touching the inner engine —
// per-query hit attribution for tracing (the counters only give
// totals).
func (m *MemoEngine) LastFromCache() bool { return m.cached != nil }

// LoadFrozen adopts a frozen prefix (O(1)); the engine must be fresh.
func (m *MemoEngine) LoadFrozen(f *Frozen) {
	if m.stream.NumVars() != 0 || len(m.stream.ops) != 0 {
		panic("sat: MemoEngine.LoadFrozen on a non-fresh engine")
	}
	m.stream = f.Fork()
}

// NewVar introduces a fresh variable and returns its index.
func (m *MemoEngine) NewVar() int { return m.stream.NewVar() }

// NumVars returns the number of variables created so far.
func (m *MemoEngine) NumVars() int { return m.stream.NumVars() }

// AddClause buffers a clause (see Stream.AddClause for the top-level
// conflict caveat shared with the DIMACS-pipe engine).
func (m *MemoEngine) AddClause(lits ...Lit) bool { return m.stream.AddClause(lits...) }

// SetContext attaches a cancellation/deadline context.
func (m *MemoEngine) SetContext(ctx context.Context) {
	m.ctx = ctx
	if m.primed {
		m.inner.SetContext(ctx)
	}
}

// Stats returns the wrapper's call counter plus the inner engine's
// counters once it materialized.
func (m *MemoEngine) Stats() Stats {
	if m.primed {
		return m.stats.Add(m.inner.Stats())
	}
	return m.stats
}

// Solve determines satisfiability of the buffered clause set.
func (m *MemoEngine) Solve() Status { return m.SolveAssuming(nil) }

// SolveAssuming answers from the memo when the (prefix, delta,
// assumptions) key is recorded; otherwise it solves on the inner
// engine — replaying history first for state parity — and records the
// verdict.
func (m *MemoEngine) SolveAssuming(assumptions []Lit) Status {
	m.stats.SolveCalls++
	key := memoKey{
		prefix: m.stream.Base().Hash(),
		delta:  m.stream.DeltaHash(),
		assume: assumeKey(assumptions),
	}
	rec := memoQuery{opsAt: len(m.stream.ops), assumptions: append([]Lit(nil), assumptions...)}
	if e, ok := m.memo.lookup(key); ok {
		if m.ctr != nil {
			m.ctr.hits.Add(1)
		}
		m.queries = append(m.queries, rec)
		m.cached = e
		return e.st
	}
	if m.ctr != nil {
		m.ctr.misses.Add(1)
	}
	st := m.solveInner(rec)
	m.queries = append(m.queries, rec)
	m.synced = len(m.queries) // the current query ran on inner; never replay it
	m.cached = nil
	if st != Unknown {
		var model []bool
		if st == Sat {
			model = make([]bool, m.stream.NumVars())
			for v := range model {
				model[v] = m.inner.Value(v)
			}
		}
		m.memo.store(key, st, model)
	}
	return st
}

// solveInner materializes the inner engine (prime + delta replay) and
// replays any queries answered from the memo since the last inner
// solve, then runs the current query.
func (m *MemoEngine) solveInner(rec memoQuery) Status {
	if !m.primed {
		Prime(m.inner, m.stream.Base())
		if m.ctx != nil {
			m.inner.SetContext(m.ctx)
		}
		m.primed = true
	}
	for _, q := range m.queries[m.synced:] {
		m.replayOpsTo(q.opsAt)
		m.inner.SolveAssuming(q.assumptions)
	}
	m.synced = len(m.queries)
	m.replayOpsTo(rec.opsAt)
	return m.inner.SolveAssuming(rec.assumptions)
}

func (m *MemoEngine) replayOpsTo(opsAt int) {
	for _, op := range m.stream.ops[m.replayedOps:opsAt] {
		op.replayOp(m.inner)
	}
	if opsAt > m.replayedOps {
		m.replayedOps = opsAt
	}
}

// Value returns variable v's value in the last satisfying assignment
// (the recorded model when the last solve was answered from the memo).
func (m *MemoEngine) Value(v int) bool {
	if m.cached != nil {
		if m.cached.st == Sat && v >= 0 && v < len(m.cached.model) {
			return m.cached.model[v]
		}
		return false
	}
	if !m.primed {
		return false
	}
	return m.inner.Value(v)
}

// LitTrue reports whether literal l is true in the last model.
func (m *MemoEngine) LitTrue(l Lit) bool {
	v := m.Value(l.Var())
	if l.Sign() {
		return !v
	}
	return v
}
