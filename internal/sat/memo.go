package sat

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// This file implements the cross-query verdict memo cache on top of
// frozen clause streams. FALL analyses across candidates — and
// campaign cases across a run — repeatedly solve identical
// sub-problems (same cone, same unateness/comparator query); the memo
// keys every query by (frozen-prefix hash, delta hash, assumptions)
// and returns the recorded verdict and model without touching a
// solver. The wrapper preserves exact engine semantics: on a cache
// miss it materializes its inner engine lazily and first replays the
// engine's whole query history, so the inner engine reaches the same
// incremental state (learnt clauses included) it would have reached
// without the cache — verdicts AND models match the uncached run.
//
// The memo is two-tiered: the in-memory map (L1) answers within a
// process, and an optional content-addressed on-disk store (L2,
// DiskMemo in diskmemo.go) shares verdicts across processes — campaign
// shards, reruns, daemon restarts. Lookups fall through memory → disk
// → inner engine; decided misses write through to both tiers, and a
// disk hit is promoted into memory.

// MemoTier identifies which tier answered a query (per-query hit
// attribution for tracing and counters).
type MemoTier int

const (
	// TierMiss: no tier had the verdict; the inner engine solved it.
	TierMiss MemoTier = iota
	// TierMemory: answered by the in-memory map (L1).
	TierMemory
	// TierDisk: answered by the on-disk store (L2).
	TierDisk
)

// String renders the tier as the trace-span attribution value.
func (t MemoTier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "miss"
	}
}

// MemoStats is a per-tier hit/miss snapshot of memo-cache accounting —
// the shape serialized into harness outcomes, campaign merges and the
// daemon's /metrics. Hits counts in-memory (L1) answers, DiskHits
// on-disk (L2) answers, Misses queries the inner engine solved. Capped
// counts decided results that were recomputed but could not be stored
// in memory because the entry cap was reached (they still reach the
// disk tier when one is attached). The new fields are omitempty so
// disk-less, uncapped runs serialize byte-identically to before.
type MemoStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	DiskHits int64 `json:"disk_hits,omitempty"`
	Capped   int64 `json:"capped,omitempty"`
}

// Add returns the entrywise sum (campaign merge aggregation).
func (s MemoStats) Add(o MemoStats) MemoStats {
	return MemoStats{
		Hits:     s.Hits + o.Hits,
		Misses:   s.Misses + o.Misses,
		DiskHits: s.DiskHits + o.DiskHits,
		Capped:   s.Capped + o.Capped,
	}
}

// Total returns the number of accounted queries (every tier's hits
// plus the misses; Capped re-counts a subset of Misses and is
// excluded).
func (s MemoStats) Total() int64 { return s.Hits + s.DiskHits + s.Misses }

// MemoCounters accumulates per-tier hit/miss counts for one accounting
// scope (a SolverSetup, i.e. one attack run) against a possibly shared
// Memo. Safe for concurrent use.
type MemoCounters struct {
	hits, diskHits, misses, capped atomic.Int64
}

// Snapshot returns the current counts.
func (c *MemoCounters) Snapshot() MemoStats {
	return MemoStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		DiskHits: c.diskHits.Load(),
		Capped:   c.capped.Load(),
	}
}

// DefaultMemoEntries bounds an unbounded-cap Memo: enough for every
// distinct query of a large campaign while keeping worst-case memory
// proportional to distinct models stored.
const DefaultMemoEntries = 1 << 20

type memoKey struct {
	prefix Hash
	delta  Hash
	assume string
}

// memoEntry is one recorded verdict. Satisfying models are packed as
// bitsets — one bit per variable instead of one byte — because a
// DefaultMemoEntries-sized cache of FALL-scale models is memory-bound
// on exactly this array; the same packing is the on-disk record's
// model encoding, so disk records load without repacking.
type memoEntry struct {
	st    Status
	nVars int      // model length (variables at solve time)
	bits  []uint64 // nil unless st == Sat; bit v = model value of var v
}

// packModel builds the bitset model of an engine's last satisfying
// assignment over vars [0, n).
func packModel(e Engine, n int) []uint64 {
	bits := make([]uint64, (n+63)/64)
	for v := 0; v < n; v++ {
		if e.Value(v) {
			bits[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	return bits
}

// value returns variable v's recorded model value (false outside the
// model, matching Engine.Value semantics for unknown variables).
func (e *memoEntry) value(v int) bool {
	if e.st != Sat || v < 0 || v >= e.nVars {
		return false
	}
	return e.bits[v>>6]>>(uint(v)&63)&1 == 1
}

// Memo is the two-tier verdict cache keyed by (prefix hash, delta
// hash, assumptions). It is safe for concurrent use and is typically
// shared across every engine of a run — or, in the daemon, across
// jobs — so identical sub-queries are solved once. Only decided
// verdicts are stored (Unknown is always recomputed); the first
// stored entry for a key wins, keeping replays deterministic. An
// attached DiskMemo (AttachDisk) extends the cache across processes:
// memory misses fall through to disk, disk hits are promoted, and
// fresh results write through to both tiers.
type Memo struct {
	mu       sync.Mutex
	max      int
	entries  map[memoKey]*memoEntry
	hits     int64
	diskHits int64
	misses   int64
	capped   int64
	disk     *DiskMemo
}

// NewMemo returns a memo holding at most max in-memory entries (max <=
// 0 means DefaultMemoEntries). Beyond the cap, new results are
// recomputed but not stored in memory (counted in MemoStats.Capped;
// an attached disk tier still records them).
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	return &Memo{max: max, entries: make(map[memoKey]*memoEntry)}
}

// AttachDisk adds d as the memo's on-disk L2 tier (nil detaches).
// Attach before solving starts; the tier choice is not synchronized
// against in-flight lookups.
func (m *Memo) AttachDisk(d *DiskMemo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.disk = d
}

// Disk returns the attached on-disk tier, nil when memory-only.
func (m *Memo) Disk() *DiskMemo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.disk
}

// Stats returns the memo's global per-tier hit/miss counts.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, DiskHits: m.diskHits, Capped: m.capped}
}

// Len returns the number of in-memory entries.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// lookup resolves key through the tiers: memory, then disk (promoting
// a disk hit into memory, cap permitting). The disk read happens
// outside the memory lock so concurrent engines never serialize on
// I/O.
func (m *Memo) lookup(key memoKey) (*memoEntry, MemoTier) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.hits++
		m.mu.Unlock()
		return e, TierMemory
	}
	d := m.disk
	m.mu.Unlock()
	if d != nil {
		if e, ok := d.Get(key); ok {
			m.mu.Lock()
			m.diskHits++
			if _, exists := m.entries[key]; !exists && len(m.entries) < m.max {
				m.entries[key] = e
			}
			m.mu.Unlock()
			return e, TierDisk
		}
	}
	m.mu.Lock()
	m.misses++
	m.mu.Unlock()
	return nil, TierMiss
}

// store records a decided verdict in both tiers, returning whether the
// in-memory cap dropped it (Capped accounting). The disk write-through
// happens even when memory is capped — the disk tier has its own
// byte-bounded GC — and outside the memory lock.
func (m *Memo) store(key memoKey, e *memoEntry) (capped bool) {
	if e.st == Unknown {
		return false
	}
	m.mu.Lock()
	fresh := false
	if _, exists := m.entries[key]; !exists {
		if len(m.entries) < m.max {
			m.entries[key] = e
			fresh = true
		} else {
			m.capped++
			capped = true
			fresh = true
		}
	}
	d := m.disk
	m.mu.Unlock()
	if d != nil && fresh {
		d.Put(key, e)
	}
	return capped
}

func assumeKey(as []Lit) string {
	b := make([]byte, 0, len(as)*2)
	var buf [binary.MaxVarintLen64]byte
	for _, l := range as {
		n := binary.PutUvarint(buf[:], uint64(l))
		b = append(b, buf[:n]...)
	}
	return string(b)
}

// memoQuery records one past SolveAssuming call so a later cache miss
// can replay the inner engine into the exact incremental state it
// would have had without the cache.
type memoQuery struct {
	opsAt       int
	assumptions []Lit
}

// MemoEngine wraps an inner engine with a Memo. Clauses and variables
// are buffered in a Stream (so every query has a content hash); the
// inner engine is only materialized — primed with the frozen prefix,
// fed the buffered delta and the replayed query history — on the
// first cache miss. A fully memoized consumer never runs a solver.
// Like every Engine, a MemoEngine is not safe for concurrent use.
type MemoEngine struct {
	memo *Memo
	ctr  *MemoCounters // optional per-run accounting; may be nil

	inner  Engine
	stream *Stream
	ctx    context.Context
	stats  Stats

	primed      bool
	replayedOps int
	synced      int // queries already replayed into inner
	queries     []memoQuery
	cached      *memoEntry // model source when the last solve hit
	lastTier    MemoTier   // which tier answered the last solve
}

var (
	_ Engine       = (*MemoEngine)(nil)
	_ FrozenLoader = (*MemoEngine)(nil)
)

// NewMemoEngine wraps inner with the given memo. ctr, when non-nil,
// accumulates this engine's hits and misses for per-run reporting on
// top of the memo's global counters.
func NewMemoEngine(memo *Memo, ctr *MemoCounters, inner Engine) *MemoEngine {
	return &MemoEngine{memo: memo, ctr: ctr, inner: inner, stream: NewStream()}
}

// Inner returns the wrapped engine that serves cache misses.
func (m *MemoEngine) Inner() Engine { return m.inner }

// LastFromCache reports whether the most recent Solve/SolveAssuming
// was answered from the memo without touching the inner engine —
// per-query hit attribution for tracing (the counters only give
// totals).
func (m *MemoEngine) LastFromCache() bool { return m.cached != nil }

// LastTier returns which tier answered the most recent
// Solve/SolveAssuming: TierMemory, TierDisk, or TierMiss (solved by
// the inner engine).
func (m *MemoEngine) LastTier() MemoTier { return m.lastTier }

// LoadFrozen adopts a frozen prefix (O(1)); the engine must be fresh.
func (m *MemoEngine) LoadFrozen(f *Frozen) {
	if m.stream.NumVars() != 0 || len(m.stream.ops) != 0 {
		panic("sat: MemoEngine.LoadFrozen on a non-fresh engine")
	}
	m.stream = f.Fork()
}

// NewVar introduces a fresh variable and returns its index.
func (m *MemoEngine) NewVar() int { return m.stream.NewVar() }

// NumVars returns the number of variables created so far.
func (m *MemoEngine) NumVars() int { return m.stream.NumVars() }

// AddClause buffers a clause (see Stream.AddClause for the top-level
// conflict caveat shared with the DIMACS-pipe engine).
func (m *MemoEngine) AddClause(lits ...Lit) bool { return m.stream.AddClause(lits...) }

// SetContext attaches a cancellation/deadline context.
func (m *MemoEngine) SetContext(ctx context.Context) {
	m.ctx = ctx
	if m.primed {
		m.inner.SetContext(ctx)
	}
}

// Stats returns the wrapper's call counter plus the inner engine's
// counters once it materialized.
func (m *MemoEngine) Stats() Stats {
	if m.primed {
		return m.stats.Add(m.inner.Stats())
	}
	return m.stats
}

// Solve determines satisfiability of the buffered clause set.
func (m *MemoEngine) Solve() Status { return m.SolveAssuming(nil) }

// SolveAssuming answers from the memo when the (prefix, delta,
// assumptions) key is recorded in either tier; otherwise it solves on
// the inner engine — replaying history first for state parity — and
// records the verdict in both tiers.
func (m *MemoEngine) SolveAssuming(assumptions []Lit) Status {
	m.stats.SolveCalls++
	key := memoKey{
		prefix: m.stream.Base().Hash(),
		delta:  m.stream.DeltaHash(),
		assume: assumeKey(assumptions),
	}
	rec := memoQuery{opsAt: len(m.stream.ops), assumptions: append([]Lit(nil), assumptions...)}
	if e, tier := m.memo.lookup(key); tier != TierMiss {
		if m.ctr != nil {
			if tier == TierDisk {
				m.ctr.diskHits.Add(1)
			} else {
				m.ctr.hits.Add(1)
			}
		}
		m.queries = append(m.queries, rec)
		m.cached = e
		m.lastTier = tier
		return e.st
	}
	if m.ctr != nil {
		m.ctr.misses.Add(1)
	}
	st := m.solveInner(rec)
	m.queries = append(m.queries, rec)
	m.synced = len(m.queries) // the current query ran on inner; never replay it
	m.cached = nil
	m.lastTier = TierMiss
	if st != Unknown {
		e := &memoEntry{st: st}
		if st == Sat {
			e.nVars = m.stream.NumVars()
			e.bits = packModel(m.inner, e.nVars)
		}
		if m.memo.store(key, e) && m.ctr != nil {
			m.ctr.capped.Add(1)
		}
	}
	return st
}

// solveInner materializes the inner engine (prime + delta replay) and
// replays any queries answered from the memo since the last inner
// solve, then runs the current query.
func (m *MemoEngine) solveInner(rec memoQuery) Status {
	if !m.primed {
		Prime(m.inner, m.stream.Base())
		if m.ctx != nil {
			m.inner.SetContext(m.ctx)
		}
		m.primed = true
	}
	for _, q := range m.queries[m.synced:] {
		m.replayOpsTo(q.opsAt)
		m.inner.SolveAssuming(q.assumptions)
	}
	m.synced = len(m.queries)
	m.replayOpsTo(rec.opsAt)
	return m.inner.SolveAssuming(rec.assumptions)
}

func (m *MemoEngine) replayOpsTo(opsAt int) {
	for _, op := range m.stream.ops[m.replayedOps:opsAt] {
		op.replayOp(m.inner)
	}
	if opsAt > m.replayedOps {
		m.replayedOps = opsAt
	}
}

// Value returns variable v's value in the last satisfying assignment
// (the recorded model when the last solve was answered from the memo).
func (m *MemoEngine) Value(v int) bool {
	if m.cached != nil {
		return m.cached.value(v)
	}
	if !m.primed {
		return false
	}
	return m.inner.Value(v)
}

// LitTrue reports whether literal l is true in the last model.
func (m *MemoEngine) LitTrue(l Lit) bool {
	v := m.Value(l.Var())
	if l.Sign() {
		return !v
	}
	return v
}
