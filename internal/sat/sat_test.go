package sat

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLitBasics(t *testing.T) {
	l := PosLit(3)
	if l.Var() != 3 || l.Sign() {
		t.Errorf("PosLit(3): var=%d sign=%v", l.Var(), l.Sign())
	}
	n := l.Neg()
	if n.Var() != 3 || !n.Sign() {
		t.Errorf("Neg: var=%d sign=%v", n.Var(), n.Sign())
	}
	if n.Neg() != l {
		t.Error("double negation is not identity")
	}
	if NegLit(3) != n {
		t.Error("NegLit mismatch")
	}
	if l.String() != "x3" || n.String() != "~x3" {
		t.Errorf("String: %s %s", l, n)
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want SAT", got)
	}
	if !s.Value(a) {
		t.Error("unit clause not respected in model")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(PosLit(a)) {
		t.Fatal("first unit rejected")
	}
	if s.AddClause(NegLit(a)) {
		t.Fatal("contradictory unit accepted")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(PosLit(a), NegLit(a)) {
		t.Fatal("tautology rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want SAT", got)
	}
}

func TestXorChain(t *testing.T) {
	// Encode x0 xor x1 = 1, x1 xor x2 = 1, ..., forcing alternation, plus
	// x0 = 1. SAT with a unique model.
	const n = 10
	s := New()
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		a, b := vars[i], vars[i+1]
		// a xor b: (a | b) & (~a | ~b)
		s.AddClause(PosLit(a), PosLit(b))
		s.AddClause(NegLit(a), NegLit(b))
	}
	s.AddClause(PosLit(vars[0]))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want SAT", got)
	}
	for i := range vars {
		if s.Value(vars[i]) != (i%2 == 0) {
			t.Errorf("x%d = %v, want %v", i, s.Value(vars[i]), i%2 == 0)
		}
	}
}

// pigeonhole encodes PHP(p, h): p pigeons into h holes. UNSAT when p > h.
func pigeonhole(s *Solver, p, h int) {
	v := make([][]int, p)
	for i := range v {
		v[i] = make([]int, h)
		for j := range v[i] {
			v[i][j] = s.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		lits := make([]Lit, h)
		for j := 0; j < h; j++ {
			lits[j] = PosLit(v[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				s.AddClause(NegLit(v[i1][j]), NegLit(v[i2][j]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(6,5): got %v, want UNSAT", got)
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5): got %v, want SAT", got)
	}
}

func TestConflictLimitUnknown(t *testing.T) {
	s := New()
	pigeonhole(s, 8, 7)
	s.SetConflictLimit(5)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("got %v, want UNKNOWN under tiny conflict budget", got)
	}
	// Removing the limit must allow completion.
	s.SetConflictLimit(0)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v after removing limit, want UNSAT", got)
	}
}

func TestContextCancellation(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: Solve must give up immediately
	s.SetContext(ctx)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("got %v with cancelled context, want UNKNOWN", got)
	}
	s.SetContext(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v after detaching context, want UNSAT", got)
	}
}

func TestContextDeadline(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	s.SetContext(ctx)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("got %v with expired context deadline, want UNKNOWN", got)
	}
	// Detaching the context also drops its deadline.
	s.SetContext(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v after detaching context with expired deadline, want UNSAT", got)
	}
}

func TestDeadline(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	s.SetDeadline(time.Now().Add(-time.Second))
	if got := s.Solve(); got != Unknown {
		t.Fatalf("got %v with expired deadline, want UNKNOWN", got)
	}
	s.SetDeadline(time.Time{})
	s.SetConflictLimit(0)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// a -> b
	s.AddClause(NegLit(a), PosLit(b))
	if got := s.SolveAssuming([]Lit{PosLit(a), NegLit(b)}); got != Unsat {
		t.Fatalf("assuming a & ~b with a->b: got %v, want UNSAT", got)
	}
	// The solver must remain usable and the problem satisfiable.
	if got := s.SolveAssuming([]Lit{PosLit(a)}); got != Sat {
		t.Fatalf("assuming a: got %v, want SAT", got)
	}
	if !s.Value(b) {
		t.Error("model must satisfy b under assumption a")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("unconstrained: got %v, want SAT", got)
	}
}

func TestIncrementalStrengthening(t *testing.T) {
	s := New()
	n := 6
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// at-least-one
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = PosLit(vars[i])
	}
	s.AddClause(lits...)
	for i := 0; i < n; i++ {
		if got := s.Solve(); got != Sat {
			t.Fatalf("iteration %d: got %v, want SAT", i, got)
		}
		// Forbid the variable that the model set true.
		banned := -1
		for _, v := range vars {
			if s.Value(v) {
				banned = v
				break
			}
		}
		if banned < 0 {
			t.Fatal("model does not satisfy at-least-one clause")
		}
		s.AddClause(NegLit(banned))
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after banning all: got %v, want UNSAT", got)
	}
}

func TestNewVarAfterSolve(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if got := s.Solve(); got != Sat {
		t.Fatal(got)
	}
	b := s.NewVar()
	s.AddClause(NegLit(b))
	if got := s.Solve(); got != Sat {
		t.Fatal(got)
	}
	if !s.Value(a) || s.Value(b) {
		t.Error("model wrong after incremental var addition")
	}
}

// bruteForce checks satisfiability of a CNF by enumeration (≤ 20 vars).
func bruteForce(nVars int, cnf [][]Lit) (bool, []bool) {
	assign := make([]bool, nVars)
	for m := 0; m < 1<<uint(nVars); m++ {
		for v := 0; v < nVars; v++ {
			assign[v] = m&(1<<uint(v)) != 0
		}
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				if assign[l.Var()] != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true, assign
		}
	}
	return false, nil
}

func randomCNF(rng *rand.Rand, nVars, nClauses int) [][]Lit {
	cnf := make([][]Lit, nClauses)
	for i := range cnf {
		k := 1 + rng.Intn(3)
		cl := make([]Lit, k)
		for j := range cl {
			cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
		}
		cnf[i] = cl
	}
	return cnf
}

// Property: CDCL verdict matches brute force on random small CNFs, and
// models returned actually satisfy the formula.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(10)
		nClauses := 2 + rng.Intn(40)
		cnf := randomCNF(rng, nVars, nClauses)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve()
		want, _ := bruteForce(nVars, cnf)
		if (got == Sat) != want {
			t.Logf("seed %d: solver=%v brute=%v", seed, got, want)
			return false
		}
		if got == Sat {
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.LitTrue(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Logf("seed %d: model violates clause %v", seed, cl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: assumptions behave like added unit clauses.
func TestQuickAssumptionsMatchUnits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(8)
		cnf := randomCNF(rng, nVars, 2+rng.Intn(25))
		var assumps []Lit
		for v := 0; v < nVars; v++ {
			if rng.Intn(3) == 0 {
				assumps = append(assumps, MkLit(v, rng.Intn(2) == 1))
			}
		}
		s1 := New()
		for i := 0; i < nVars; i++ {
			s1.NewVar()
		}
		for _, cl := range cnf {
			s1.AddClause(cl...)
		}
		got := s1.SolveAssuming(assumps)

		s2 := New()
		for i := 0; i < nVars; i++ {
			s2.NewVar()
		}
		ok := true
		for _, cl := range cnf {
			ok = s2.AddClause(cl...) && ok
		}
		for _, a := range assumps {
			ok = s2.AddClause(a) && ok
		}
		want := Unsat
		if ok {
			want = s2.Solve()
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Errorf("stats not collected: %+v", st)
	}
	if st.SolveCalls != 1 {
		t.Errorf("SolveCalls = %d", st.SolveCalls)
	}
}

func TestLargeRandomSatisfiable(t *testing.T) {
	// A planted-solution instance: generate a random assignment and only
	// emit clauses satisfied by it. Must be SAT and the solver must find
	// some model (not necessarily the planted one).
	rng := rand.New(rand.NewSource(99))
	const nVars = 300
	const nClauses = 1200
	planted := make([]bool, nVars)
	for i := range planted {
		planted[i] = rng.Intn(2) == 1
	}
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	var cnf [][]Lit
	for len(cnf) < nClauses {
		cl := make([]Lit, 3)
		for j := range cl {
			cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
		}
		okByPlanted := false
		for _, l := range cl {
			if planted[l.Var()] != l.Sign() {
				okByPlanted = true
				break
			}
		}
		if okByPlanted {
			cnf = append(cnf, cl)
			s.AddClause(cl...)
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("planted instance: got %v, want SAT", got)
	}
	for _, cl := range cnf {
		ok := false
		for _, l := range cl {
			if s.LitTrue(l) {
				ok = true
			}
		}
		if !ok {
			t.Fatal("model violates a clause")
		}
	}
}

func TestValueOfUnknownVarIsFalse(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	s.Solve()
	b := s.NewVar() // created after solve; no model entry
	if s.Value(b) {
		t.Error("unsolved variable should report false")
	}
}
