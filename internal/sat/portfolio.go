package sat

import (
	"context"
	"sync"
)

// Portfolio is an Engine that replicates the clause database across N
// differently-configured Solvers and races them on every Solve call:
// each engine searches in its own goroutine under its own cancellable
// context, the first non-Unknown verdict wins, and the losers are
// cancelled. Because every engine decides the same formula, all
// non-Unknown verdicts agree — racing changes the runtime distribution
// (it cuts the heavy tail of heuristic-sensitive UNSAT lemma proofs and
// miter queries), never a decided verdict. Unknown is the one
// asymmetry: with a per-engine conflict budget the portfolio decides
// any query some member's heuristics crack within budget, so it can
// return strictly more verdicts than a single budgeted engine — never
// a conflicting one.
//
// Engines keep their learnt clauses between calls, so each portfolio
// member remains incrementally useful even when it loses races. Like
// *Solver, a Portfolio is not safe for concurrent use: the concurrency
// lives inside each call, not across calls.
type Portfolio struct {
	engines []*Solver
	configs []Config
	ledger  *Ledger
	ctx     context.Context
	winner  int // engine backing Value/LitTrue (last Sat winner)
}

// NewPortfolio builds a portfolio over the given configurations. The
// optional ledger accumulates per-config win statistics; several
// portfolios (e.g. one per FALL grid cell) may share one ledger, whose
// config list must then match. A nil ledger disables accounting.
func NewPortfolio(configs []Config, ledger *Ledger) *Portfolio {
	if len(configs) == 0 {
		panic("sat: NewPortfolio with no configs")
	}
	p := &Portfolio{
		engines: make([]*Solver, len(configs)),
		configs: configs,
		ledger:  ledger,
	}
	for i, cfg := range configs {
		p.engines[i] = NewWith(cfg)
	}
	return p
}

// Size returns the number of racing engines.
func (p *Portfolio) Size() int { return len(p.engines) }

// SetContext attaches the base context every race runs under.
func (p *Portfolio) SetContext(ctx context.Context) { p.ctx = ctx }

// NewVar introduces a fresh variable in every engine and returns its
// (shared) index.
func (p *Portfolio) NewVar() int {
	v := p.engines[0].NewVar()
	for _, e := range p.engines[1:] {
		e.NewVar()
	}
	return v
}

// NumVars returns the number of variables created so far.
func (p *Portfolio) NumVars() int { return p.engines[0].NumVars() }

// AddClause adds the clause to every engine. Top-level state is
// config-independent (no decisions are involved), so the engines' ok
// flags always agree; the shared verdict is returned.
func (p *Portfolio) AddClause(lits ...Lit) bool {
	ok := true
	for _, e := range p.engines {
		ok = e.AddClause(lits...) && ok
	}
	return ok
}

// Solve races the engines on the current clause set.
func (p *Portfolio) Solve() Status { return p.SolveAssuming(nil) }

// SolveAssuming races every engine on the query and returns the first
// non-Unknown verdict, cancelling the losers. It returns Unknown only
// when every engine returned Unknown (base context cancelled or all
// conflict budgets exhausted).
func (p *Portfolio) SolveAssuming(assumptions []Lit) Status {
	base := p.ctx
	if base == nil {
		base = context.Background()
	}
	if len(p.engines) == 1 {
		e := p.engines[0]
		e.SetContext(p.ctx)
		before := e.Stats()
		st := e.SolveAssuming(assumptions)
		if st == Sat {
			p.winner = 0
		}
		p.record(st, 0, []Stats{e.Stats().Sub(before)})
		return st
	}
	if base.Err() != nil {
		return Unknown
	}

	n := len(p.engines)
	before := make([]Stats, n)
	cancels := make([]context.CancelFunc, n)
	type verdict struct {
		idx int
		st  Status
	}
	results := make(chan verdict, n)
	var wg sync.WaitGroup
	for i, e := range p.engines {
		before[i] = e.Stats()
		cctx, cancel := context.WithCancel(base)
		cancels[i] = cancel
		e.SetContext(cctx)
		wg.Add(1)
		go func(i int, e *Solver) {
			defer wg.Done()
			results <- verdict{i, e.SolveAssuming(assumptions)}
		}(i, e)
	}
	winner, st := -1, Unknown
	for range p.engines {
		v := <-results
		if v.st != Unknown && winner < 0 {
			winner, st = v.idx, v.st
			// First verdict wins: cancel the remaining engines. Soundness
			// makes every non-Unknown verdict identical, so "first"
			// affects only which engine's model backs Value.
			for j, cancel := range cancels {
				if j != v.idx {
					cancel()
				}
			}
		}
	}
	wg.Wait()
	for i, cancel := range cancels {
		cancel()
		// Detach the per-race context so a later direct Solve (single-
		// engine path) does not observe a long-cancelled race.
		p.engines[i].SetContext(p.ctx)
	}
	if st == Sat {
		p.winner = winner
	}
	deltas := make([]Stats, n)
	for i, e := range p.engines {
		deltas[i] = e.Stats().Sub(before[i])
	}
	p.record(st, winner, deltas)
	return st
}

func (p *Portfolio) record(st Status, winner int, deltas []Stats) {
	if p.ledger != nil {
		p.ledger.record(st, winner, deltas)
	}
}

// Value returns variable v's value in the winning engine's model.
func (p *Portfolio) Value(v int) bool { return p.engines[p.winner].Value(v) }

// LitTrue reports whether literal l is true in the winning engine's
// model.
func (p *Portfolio) LitTrue(l Lit) bool { return p.engines[p.winner].LitTrue(l) }

// Stats returns the counters summed over all racing engines (cancelled
// losers included — their work was spent either way). Per-config
// breakdowns live in the Ledger.
func (p *Portfolio) Stats() Stats {
	var sum Stats
	for _, e := range p.engines {
		sum = sum.Add(e.Stats())
	}
	return sum
}

// ConfigStats is one configuration's accumulated racing record.
type ConfigStats struct {
	// Config is the canonical spec (Config.String) of the engine.
	Config string `json:"config"`
	// Races counts SolveAssuming races the engine participated in.
	Races int64 `json:"races"`
	// Wins counts races this engine decided first (SAT or UNSAT).
	Wins int64 `json:"wins"`
	// SatWins / UnsatWins split Wins by verdict.
	SatWins   int64 `json:"sat_wins"`
	UnsatWins int64 `json:"unsat_wins"`
	// Conflicts accumulates the conflicts this engine spent across all
	// races, won or lost.
	Conflicts int64 `json:"conflicts"`
}

// Ledger accumulates per-config win statistics across every race of one
// or many portfolios built over the same config list. It is safe for
// concurrent use (portfolios in different worker goroutines may share
// one).
type Ledger struct {
	mu    sync.Mutex
	stats []ConfigStats
}

// NewLedger returns a ledger for portfolios built over configs.
func NewLedger(configs []Config) *Ledger {
	l := &Ledger{stats: make([]ConfigStats, len(configs))}
	for i, c := range configs {
		l.stats[i].Config = c.String()
	}
	return l
}

func (l *Ledger) record(st Status, winner int, deltas []Stats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, d := range deltas {
		if i >= len(l.stats) {
			break
		}
		l.stats[i].Races++
		l.stats[i].Conflicts += d.Conflicts
	}
	if st != Unknown && winner >= 0 && winner < len(l.stats) {
		l.stats[winner].Wins++
		switch st {
		case Sat:
			l.stats[winner].SatWins++
		case Unsat:
			l.stats[winner].UnsatWins++
		}
	}
}

// Snapshot returns a copy of the accumulated per-config statistics.
func (l *Ledger) Snapshot() []ConfigStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ConfigStats, len(l.stats))
	copy(out, l.stats)
	return out
}

// PortfolioConfigs derives n racing configurations from a base config:
// the base itself first, then variants that reseed the tie-breaking and
// cycle through the heuristic axes that matter most on this repo's
// query mix (restart schedule, decision phase, decay agility, random
// decisions). Deterministic: equal inputs yield equal config lists.
func PortfolioConfigs(base Config, n int) []Config {
	base = base.withDefaults()
	out := make([]Config, n)
	for i := range out {
		c := base
		c.Seed = base.Seed + int64(i)*0x9E3779B9 // golden-ratio stride
		switch i % 4 {
		case 0:
			// The base configuration itself (exact for i == 0).
		case 1:
			// Geometric restarts dig deeper before restarting — strong
			// on UNSAT lemma proofs that need long resolution chains.
			c.Restart = RestartGeometric
		case 2:
			// Agile decay with negative phases — strong on SAT queries
			// whose models are sparse (miter difference witnesses).
			c.VarDecay = 0.90
			c.Phase = PhaseFalse
		case 3:
			// Randomized diversification: random decisions and phases
			// decorrelate this engine from the deterministic members.
			c.RandomFreq = 0.02
			c.Phase = PhaseRandom
		}
		out[i] = c
	}
	return out
}
