package sat

import (
	"context"
	"sync"
)

// Portfolio is an Engine that replicates the clause database across N
// differently-configured Solvers and races them on every Solve call:
// each engine searches in its own goroutine under its own cancellable
// context, the first non-Unknown verdict wins, and the losers are
// cancelled. Because every engine decides the same formula, all
// non-Unknown verdicts agree — racing changes the runtime distribution
// (it cuts the heavy tail of heuristic-sensitive UNSAT lemma proofs and
// miter queries), never a decided verdict. Unknown is the one
// asymmetry: with a per-engine conflict budget the portfolio decides
// any query some member's heuristics crack within budget, so it can
// return strictly more verdicts than a single budgeted engine — never
// a conflicting one.
//
// Engines keep their learnt clauses between calls, so each portfolio
// member remains incrementally useful even when it loses races. Like
// *Solver, a Portfolio is not safe for concurrent use: the concurrency
// lives inside each call, not across calls.
//
// Members need not be internal CDCL solvers: any Engine races (an
// external DIMACS-pipe solver, the BDD engine). Heterogeneous members
// preserve the agreement property — every backend decides the same
// formula — so racing still never changes a decided verdict; backends
// that give up (a BDD blow-up, a killed process) return Unknown and
// simply lose the race.
type Portfolio struct {
	engines []Engine
	slots   []int // engine i accounts into ledger slot slots[i]
	ledgers []*Ledger
	ctx     context.Context
	winner  int // engine backing Value/LitTrue (last Sat winner)
}

// NewPortfolio builds a portfolio of internal engines over the given
// configurations. The optional ledger accumulates per-config win
// statistics; several portfolios (e.g. one per FALL grid cell) may
// share one ledger, whose config list must then match. A nil ledger
// disables accounting.
func NewPortfolio(configs []Config, ledger *Ledger) *Portfolio {
	if len(configs) == 0 {
		panic("sat: NewPortfolio with no configs")
	}
	engines := make([]Engine, len(configs))
	for i, cfg := range configs {
		engines[i] = NewWith(cfg)
	}
	return NewEnginePortfolio(engines, ledger)
}

// NewEnginePortfolio builds a portfolio over pre-constructed engines of
// any backend mix. Every engine must be fresh (the portfolio replays
// one clause stream into all of them). Each non-nil ledger accumulates
// the same per-slot statistics; by default engine i accounts into
// ledger slot i (see SetLedgerSlots).
func NewEnginePortfolio(engines []Engine, ledgers ...*Ledger) *Portfolio {
	if len(engines) == 0 {
		panic("sat: NewEnginePortfolio with no engines")
	}
	p := &Portfolio{engines: engines, slots: make([]int, len(engines))}
	for i := range p.slots {
		p.slots[i] = i
	}
	for _, l := range ledgers {
		if l != nil {
			p.ledgers = append(p.ledgers, l)
		}
	}
	return p
}

// SetLedgerSlots maps engine positions to ledger slots — used when a
// portfolio races a subset of a spec list (adaptive dropping) but must
// keep accounting into the full list's ledger. len(slots) must equal
// the engine count.
func (p *Portfolio) SetLedgerSlots(slots []int) {
	if len(slots) != len(p.engines) {
		panic("sat: SetLedgerSlots length mismatch")
	}
	p.slots = slots
}

// Size returns the number of racing engines.
func (p *Portfolio) Size() int { return len(p.engines) }

// SetContext attaches the base context every race runs under.
func (p *Portfolio) SetContext(ctx context.Context) { p.ctx = ctx }

// NewVar introduces a fresh variable in every engine and returns its
// (shared) index.
func (p *Portfolio) NewVar() int {
	v := p.engines[0].NewVar()
	for _, e := range p.engines[1:] {
		e.NewVar()
	}
	return v
}

// NumVars returns the number of variables created so far.
func (p *Portfolio) NumVars() int { return p.engines[0].NumVars() }

// AddClause adds the clause to every engine. Top-level state is
// config-independent (no decisions are involved), so the engines' ok
// flags always agree; the shared verdict is returned.
func (p *Portfolio) AddClause(lits ...Lit) bool {
	ok := true
	for _, e := range p.engines {
		ok = e.AddClause(lits...) && ok
	}
	return ok
}

// Solve races the engines on the current clause set.
func (p *Portfolio) Solve() Status { return p.SolveAssuming(nil) }

// SolveAssuming races every engine on the query and returns the first
// non-Unknown verdict, cancelling the losers. It returns Unknown only
// when every engine returned Unknown (base context cancelled or all
// conflict budgets exhausted).
func (p *Portfolio) SolveAssuming(assumptions []Lit) Status {
	base := p.ctx
	if base == nil {
		base = context.Background()
	}
	if len(p.engines) == 1 {
		e := p.engines[0]
		e.SetContext(p.ctx)
		before := e.Stats()
		st := e.SolveAssuming(assumptions)
		if st == Sat {
			p.winner = 0
		}
		p.record(st, 0, []Stats{e.Stats().Sub(before)})
		return st
	}
	if base.Err() != nil {
		return Unknown
	}

	n := len(p.engines)
	before := make([]Stats, n)
	cancels := make([]context.CancelFunc, n)
	type verdict struct {
		idx int
		st  Status
	}
	results := make(chan verdict, n)
	var wg sync.WaitGroup
	for i, e := range p.engines {
		before[i] = e.Stats()
		cctx, cancel := context.WithCancel(base)
		cancels[i] = cancel
		e.SetContext(cctx)
		wg.Add(1)
		go func(i int, e Engine) {
			defer wg.Done()
			results <- verdict{i, e.SolveAssuming(assumptions)}
		}(i, e)
	}
	winner, st := -1, Unknown
	for range p.engines {
		v := <-results
		if v.st != Unknown && winner < 0 {
			winner, st = v.idx, v.st
			// First verdict wins: cancel the remaining engines. Soundness
			// makes every non-Unknown verdict identical, so "first"
			// affects only which engine's model backs Value.
			for j, cancel := range cancels {
				if j != v.idx {
					cancel()
				}
			}
		}
	}
	wg.Wait()
	for i, cancel := range cancels {
		cancel()
		// Detach the per-race context so a later direct Solve (single-
		// engine path) does not observe a long-cancelled race.
		p.engines[i].SetContext(p.ctx)
	}
	if st == Sat {
		p.winner = winner
	}
	deltas := make([]Stats, n)
	for i, e := range p.engines {
		deltas[i] = e.Stats().Sub(before[i])
	}
	p.record(st, winner, deltas)
	return st
}

func (p *Portfolio) record(st Status, winner int, deltas []Stats) {
	winnerSlot := -1
	if winner >= 0 && winner < len(p.slots) {
		winnerSlot = p.slots[winner]
	}
	for _, l := range p.ledgers {
		l.record(st, winnerSlot, p.slots, deltas)
	}
}

// Value returns variable v's value in the winning engine's model.
func (p *Portfolio) Value(v int) bool { return p.engines[p.winner].Value(v) }

// LitTrue reports whether literal l is true in the winning engine's
// model.
func (p *Portfolio) LitTrue(l Lit) bool { return p.engines[p.winner].LitTrue(l) }

// Stats returns the counters summed over all racing engines (cancelled
// losers included — their work was spent either way). Per-config
// breakdowns live in the Ledger.
func (p *Portfolio) Stats() Stats {
	var sum Stats
	for _, e := range p.engines {
		sum = sum.Add(e.Stats())
	}
	return sum
}

// ConfigStats is one configuration's accumulated racing record.
type ConfigStats struct {
	// Config is the canonical spec (Config.String) of the engine.
	Config string `json:"config"`
	// Races counts SolveAssuming races the engine participated in.
	Races int64 `json:"races"`
	// Wins counts races this engine decided first (SAT or UNSAT).
	Wins int64 `json:"wins"`
	// SatWins / UnsatWins split Wins by verdict.
	SatWins   int64 `json:"sat_wins"`
	UnsatWins int64 `json:"unsat_wins"`
	// Conflicts accumulates the conflicts this engine spent across all
	// races, won or lost.
	Conflicts int64 `json:"conflicts"`
}

// ChronicLoser is the one retirement predicate behind both mid-run
// dropping (Ledger.Active) and cross-run learning (LearnedConfigs): the
// engine has raced at least dropAfter times without a single win while
// some engine did win (anyWins). With dropAfter <= 0 nothing retires.
func (cs ConfigStats) ChronicLoser(dropAfter int64, anyWins bool) bool {
	return anyWins && dropAfter > 0 && cs.Races >= dropAfter && cs.Wins == 0
}

// Ledger accumulates per-config win statistics across every race of one
// or many portfolios built over the same config list. It is safe for
// concurrent use (portfolios in different worker goroutines may share
// one).
type Ledger struct {
	mu    sync.Mutex
	stats []ConfigStats
}

// NewLedger returns a ledger for portfolios built over configs.
func NewLedger(configs []Config) *Ledger {
	l := &Ledger{stats: make([]ConfigStats, len(configs))}
	for i, c := range configs {
		l.stats[i].Config = c.String()
	}
	return l
}

// NewLedgerLabels returns a ledger whose slots carry arbitrary engine
// labels (canonical EngineSpec strings for heterogeneous portfolios).
func NewLedgerLabels(labels []string) *Ledger {
	l := &Ledger{stats: make([]ConfigStats, len(labels))}
	for i, lab := range labels {
		l.stats[i].Config = lab
	}
	return l
}

// record accounts one race: deltas[i] is engine i's spent work, slots[i]
// the ledger slot it accounts into (nil slots = identity), winnerSlot
// the deciding engine's slot (-1 when the race returned Unknown).
func (l *Ledger) record(st Status, winnerSlot int, slots []int, deltas []Stats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, d := range deltas {
		slot := i
		if slots != nil {
			slot = slots[i]
		}
		if slot < 0 || slot >= len(l.stats) {
			continue
		}
		l.stats[slot].Races++
		l.stats[slot].Conflicts += d.Conflicts
	}
	if st != Unknown && winnerSlot >= 0 && winnerSlot < len(l.stats) {
		l.stats[winnerSlot].Wins++
		switch st {
		case Sat:
			l.stats[winnerSlot].SatWins++
		case Unsat:
			l.stats[winnerSlot].UnsatWins++
		}
	}
}

// Active reports which slots remain worth racing under the
// ChronicLoser drop rule; with dropAfter <= 0 every slot stays active.
func (l *Ledger) Active(dropAfter int64) []bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]bool, len(l.stats))
	anyWins := false
	for _, cs := range l.stats {
		if cs.Wins > 0 {
			anyWins = true
			break
		}
	}
	for i, cs := range l.stats {
		out[i] = !cs.ChronicLoser(dropAfter, anyWins)
	}
	return out
}

// Snapshot returns a copy of the accumulated per-config statistics.
func (l *Ledger) Snapshot() []ConfigStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]ConfigStats, len(l.stats))
	copy(out, l.stats)
	return out
}

// PortfolioConfigs derives n racing configurations from a base config:
// the base itself first, then variants that reseed the tie-breaking and
// cycle through the heuristic axes that matter most on this repo's
// query mix (restart schedule, decision phase, decay agility, random
// decisions). Deterministic: equal inputs yield equal config lists.
func PortfolioConfigs(base Config, n int) []Config {
	base = base.withDefaults()
	out := make([]Config, n)
	for i := range out {
		c := base
		c.Seed = base.Seed + int64(i)*0x9E3779B9 // golden-ratio stride
		switch i % 4 {
		case 0:
			// The base configuration itself (exact for i == 0).
		case 1:
			// Geometric restarts dig deeper before restarting — strong
			// on UNSAT lemma proofs that need long resolution chains.
			c.Restart = RestartGeometric
		case 2:
			// Agile decay with negative phases — strong on SAT queries
			// whose models are sparse (miter difference witnesses).
			c.VarDecay = 0.90
			c.Phase = PhaseFalse
		case 3:
			// Randomized diversification: random decisions and phases
			// decorrelate this engine from the deterministic members.
			c.RandomFreq = 0.02
			c.Phase = PhaseRandom
		}
		out[i] = c
	}
	return out
}
