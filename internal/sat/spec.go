package sat

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file defines the solver-spec grammar shared by every -solver and
// -portfolio flag and by campaign plan serialization: a small language
// naming which engine backend answers SAT queries (the internal CDCL
// solver, an external DIMACS-pipe solver, or the BDD engine) and how it
// is tuned. The grammar is pure data — parsing never touches the
// filesystem or PATH — so campaign plans can be created on one machine
// and executed on another; engine construction lives in internal/attack,
// which can import the backend packages without a cycle.

// EngineKind selects a solver backend.
type EngineKind int

// Available backends. EngineInternal is the in-process CDCL solver
// (*Solver); EngineProcess pipes DIMACS to an external solver binary
// (kissat, cadical, ...); EngineBDD decides queries exactly on ROBDDs
// and returns Unknown when its node budget blows up, so portfolios fall
// through to SAT.
const (
	EngineInternal EngineKind = iota
	EngineProcess
	EngineBDD
)

func (k EngineKind) String() string {
	switch k {
	case EngineProcess:
		return "process"
	case EngineBDD:
		return "bdd"
	default:
		return "internal"
	}
}

// EngineSpec is the parsed form of one engine spec. Exactly the fields
// relevant to Kind are meaningful:
//
//	internal[:<config>]   Config (sat.ParseConfig syntax)
//	<name> | process:cmd=P  Cmd — the solver binary name (resolved on
//	                        PATH at run time) or an explicit path
//	...,persistent=true   Persistent — keep one long-lived solver
//	                      subprocess per engine speaking the incremental
//	                      session protocol instead of dump+respawn per
//	                      query (process engines only; the binary must
//	                      support -serve)
//	bdd[:max-nodes=N]     MaxNodes — the ROBDD node budget (0 = the
//	                      bdd package default of 1<<20)
type EngineSpec struct {
	Kind       EngineKind
	Config     Config
	Cmd        string
	MaxNodes   int
	Persistent bool
}

// InternalSpec wraps a solver configuration as an internal-engine spec.
func InternalSpec(cfg Config) EngineSpec {
	return EngineSpec{Kind: EngineInternal, Config: cfg.withDefaults()}
}

// String renders the canonical spec, which doubles as the engine's key
// in portfolio win statistics. Internal engines render as their bare
// Config.String() — exactly the pre-heterogeneous ledger labels, so
// learned-portfolio matching spans runs of either vintage.
func (s EngineSpec) String() string {
	switch s.Kind {
	case EngineProcess:
		if isBareSolverName(s.Cmd) {
			if s.Persistent {
				return s.Cmd + ":persistent=true"
			}
			return s.Cmd
		}
		if s.Persistent {
			return "process:cmd=" + s.Cmd + ",persistent=true"
		}
		return "process:cmd=" + s.Cmd
	case EngineBDD:
		if s.MaxNodes > 0 {
			return fmt.Sprintf("bdd:max-nodes=%d", s.MaxNodes)
		}
		return "bdd"
	default:
		return s.Config.String()
	}
}

// EngineLabels returns the canonical label of every spec, in order —
// the ledger slot names of a portfolio over the list.
func EngineLabels(specs []EngineSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.String()
	}
	return out
}

// isBareSolverName reports whether cmd round-trips through the grammar
// as a bare word (no path separators, no grammar metacharacters).
func isBareSolverName(cmd string) bool {
	if cmd == "" || strings.ContainsAny(cmd, "/\\:,= \t") {
		return false
	}
	switch cmd {
	case "internal", "bdd", "process", "dimacs":
		return false // reserved words of the grammar
	}
	return true
}

// ParseEngineSpec parses one engine spec:
//
//	""                        the default internal engine
//	"seed=3,restart=geometric"  internal engine, sat.ParseConfig syntax
//	                          (the pre-heterogeneous -solver form)
//	"internal:seed=7"         internal engine, explicit kind
//	"kissat"                  external DIMACS solver, found on PATH
//	"process:cmd=/opt/ks"     external DIMACS solver at a given path
//	"stub:persistent=true"    external solver in persistent-session mode
//	                          (one long-lived subprocess, incremental
//	                          line protocol; the binary must speak it)
//	"bdd:max-nodes=1<<20"     BDD engine with a node budget
//
// Process-engine binaries are looked up when the engine is built, not
// here: a plan mentioning kissat parses on a machine without it.
func ParseEngineSpec(spec string) (EngineSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return InternalSpec(Config{}), nil
	}
	head, rest, hasOpts := strings.Cut(spec, ":")
	if strings.Contains(head, "=") {
		// No kind prefix: the whole spec is an internal config list
		// (backward-compatible -solver form).
		cfg, err := ParseConfig(spec)
		if err != nil {
			return EngineSpec{}, err
		}
		return InternalSpec(cfg), nil
	}
	switch head {
	case "internal":
		opts := ""
		if hasOpts {
			opts = rest
		}
		cfg, err := ParseConfig(opts)
		if err != nil {
			return EngineSpec{}, err
		}
		return InternalSpec(cfg), nil
	case "bdd":
		s := EngineSpec{Kind: EngineBDD}
		if hasOpts {
			for _, kv := range splitOpts(rest) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return EngineSpec{}, fmt.Errorf("sat: bdd option %q is not key=value", kv)
				}
				switch k {
				case "max-nodes", "nodes":
					n, err := parseNodeCount(v)
					if err != nil {
						return EngineSpec{}, fmt.Errorf("sat: bdd option %q: %v", kv, err)
					}
					s.MaxNodes = n
				default:
					return EngineSpec{}, fmt.Errorf("sat: bdd option %q: unknown key", kv)
				}
			}
		}
		return s, nil
	case "process", "dimacs":
		s := EngineSpec{Kind: EngineProcess}
		if hasOpts {
			for _, kv := range splitOpts(rest) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return EngineSpec{}, fmt.Errorf("sat: process option %q is not key=value", kv)
				}
				switch k {
				case "cmd", "path":
					s.Cmd = v
				case "persistent":
					b, err := strconv.ParseBool(v)
					if err != nil {
						return EngineSpec{}, fmt.Errorf("sat: process option %q: %v", kv, err)
					}
					s.Persistent = b
				default:
					return EngineSpec{}, fmt.Errorf("sat: process option %q: unknown key", kv)
				}
			}
		}
		if s.Cmd == "" {
			return EngineSpec{}, fmt.Errorf("sat: process engine spec %q needs cmd=PATH", spec)
		}
		return s, nil
	default:
		// A bare word names an external solver binary to find on PATH.
		if !isBareSolverName(head) {
			return EngineSpec{}, fmt.Errorf("sat: malformed engine spec %q", spec)
		}
		s := EngineSpec{Kind: EngineProcess, Cmd: head}
		if hasOpts {
			for _, kv := range splitOpts(rest) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return EngineSpec{}, fmt.Errorf("sat: solver option %q is not key=value", kv)
				}
				switch k {
				case "cmd", "path":
					s.Cmd = v
				case "persistent":
					b, err := strconv.ParseBool(v)
					if err != nil {
						return EngineSpec{}, fmt.Errorf("sat: solver option %q: %v", kv, err)
					}
					s.Persistent = b
				default:
					return EngineSpec{}, fmt.Errorf("sat: solver option %q: unknown key", kv)
				}
			}
		}
		return s, nil
	}
}

func splitOpts(s string) []string {
	var out []string
	for _, kv := range strings.Split(s, ",") {
		if kv = strings.TrimSpace(kv); kv != "" {
			out = append(out, kv)
		}
	}
	return out
}

// parseNodeCount parses an integer with optional "1<<20" shift syntax.
func parseNodeCount(v string) (int, error) {
	if base, shift, ok := strings.Cut(v, "<<"); ok {
		b, err1 := strconv.Atoi(strings.TrimSpace(base))
		s, err2 := strconv.Atoi(strings.TrimSpace(shift))
		if err1 != nil || err2 != nil || b < 1 || s < 0 || s > 40 {
			return 0, fmt.Errorf("bad shift count %q", v)
		}
		return b << s, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad node count %q", v)
	}
	return n, nil
}

// ParseEngineList parses a heterogeneous -portfolio list into engine
// specs. Entries are comma-separated; a comma-separated token containing
// '=' continues the previous entry's option list (engine options
// themselves use commas), so
//
//	internal:seed=7,restart=geometric,kissat,bdd:max-nodes=1<<18
//
// is three engines. A bare "internal" entry inherits base (the -solver
// config); "internal:<opts>" stands alone. Duplicate canonical specs are
// rejected — racing two identical engines wastes a core and collides
// their win-statistics labels.
func ParseEngineList(list string, base Config) ([]EngineSpec, error) {
	var entries []string
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		// A bare key=value token (no kind prefix before the '=') continues
		// the previous entry's options; anything else — a bare engine name
		// or a kind:... prefix — starts a new entry. An entry that so far
		// has no options at all ("internal", "bdd", "kissat") gains its
		// first one with the ':' separator the single-spec grammar wants.
		eq := strings.Index(tok, "=")
		colon := strings.Index(tok, ":")
		continuation := eq >= 0 && !(colon >= 0 && colon < eq)
		if continuation && len(entries) > 0 {
			sep := ","
			if !strings.ContainsAny(entries[len(entries)-1], ":=") {
				sep = ":"
			}
			entries[len(entries)-1] += sep + tok
			continue
		}
		entries = append(entries, tok)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("sat: empty portfolio list %q", list)
	}
	specs := make([]EngineSpec, 0, len(entries))
	seen := map[string]bool{}
	for _, e := range entries {
		var s EngineSpec
		var err error
		if e == "internal" {
			s = InternalSpec(base)
		} else if s, err = ParseEngineSpec(e); err != nil {
			return nil, err
		}
		key := s.String()
		if seen[key] {
			return nil, fmt.Errorf("sat: portfolio lists engine %q twice", key)
		}
		seen[key] = true
		specs = append(specs, s)
	}
	return specs, nil
}

// ResolveSolverFlags is the one resolution of the -solver/-portfolio
// flag pair, shared by the attack CLIs (attack.SolverSetupFromFlags),
// the harness (exp.Config.ApplySolverFlags) and campaign plans, so a
// flag pair means the same thing everywhere. solver is one engine spec.
// portfolio is either an integer width — returned as width, racing N
// derived internal variants of base — or an engine list, returned as
// specs (width path and specs path are mutually exclusive: specs is
// nil on the width path). A non-internal solver spec with no list
// resolves to a single-entry specs; base stays the zero Config when
// solver is empty, preserving "no flags = attack-default engine".
func ResolveSolverFlags(solver, portfolio string) (base Config, width int, specs []EngineSpec, err error) {
	spec, err := ParseEngineSpec(solver)
	if err != nil {
		return Config{}, 0, nil, err
	}
	portfolio = strings.TrimSpace(portfolio)
	if portfolio != "" {
		n, aerr := strconv.Atoi(portfolio)
		if aerr != nil {
			// Engine-list form. A non-internal -solver cannot act as the
			// base the list's bare "internal" entries inherit.
			if spec.Kind != EngineInternal {
				return Config{}, 0, nil, fmt.Errorf("sat: -portfolio %q lists engines; -solver must then be an internal config, not %q", portfolio, solver)
			}
			specs, err = ParseEngineList(portfolio, spec.Config)
			return Config{}, 0, specs, err
		}
		width = n
	}
	if spec.Kind != EngineInternal {
		if width >= 2 {
			return Config{}, 0, nil, fmt.Errorf("sat: -portfolio %d derives internal engine variants; race %q via the list form, e.g. -portfolio internal,%s", width, solver, solver)
		}
		return Config{}, 0, []EngineSpec{spec}, nil
	}
	if solver != "" {
		base = spec.Config
	}
	return base, width, nil, nil
}

// LearnedConfigs reorders — and, with dropAfter > 0, prunes — an
// engine-spec list from a prior run's recorded portfolio statistics:
// specs are stably sorted by recorded wins (descending), and a spec that
// raced at least dropAfter times in the prior run without winning once
// is dropped, provided at least one recorded winner survives. Specs with
// no recorded statistics are never dropped (nothing is known about
// them). Learning only redistributes racing effort; it never changes a
// decided verdict, because every surviving engine decides the same
// formulas.
func LearnedConfigs(specs []EngineSpec, prior []ConfigStats, dropAfter int64) []EngineSpec {
	byLabel := make(map[string]ConfigStats, len(prior))
	for _, cs := range prior {
		byLabel[cs.Config] = cs
	}
	anyWins := false
	for _, cs := range prior {
		if cs.Wins > 0 {
			anyWins = true
			break
		}
	}
	kept := make([]EngineSpec, 0, len(specs))
	for _, s := range specs {
		cs, known := byLabel[s.String()]
		if known && cs.ChronicLoser(dropAfter, anyWins) {
			continue
		}
		kept = append(kept, s)
	}
	if len(kept) == 0 {
		kept = append(kept[:0], specs...)
	}
	sort.SliceStable(kept, func(a, b int) bool {
		return byLabel[kept[a].String()].Wins > byLabel[kept[b].String()].Wins
	})
	return kept
}

// MergeStats sums per-config statistics by config label across any
// number of snapshot groups, preserving first-appearance order — the
// aggregation behind fallbench's and campaign merge's per-engine win
// report.
func MergeStats(groups ...[]ConfigStats) []ConfigStats {
	idx := map[string]int{}
	var out []ConfigStats
	for _, group := range groups {
		for _, cs := range group {
			i, ok := idx[cs.Config]
			if !ok {
				i = len(out)
				idx[cs.Config] = i
				out = append(out, ConfigStats{Config: cs.Config})
			}
			out[i].Races += cs.Races
			out[i].Wins += cs.Wins
			out[i].SatWins += cs.SatWins
			out[i].UnsatWins += cs.UnsatWins
			out[i].Conflicts += cs.Conflicts
		}
	}
	return out
}

// WriteStatsFile persists a ledger snapshot as JSON — the
// portfolio_stats.json file campaign merge writes and -learn-from
// consumes.
func WriteStatsFile(path string, stats []ConfigStats) error {
	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadStatsFile loads a snapshot written by WriteStatsFile.
func ReadStatsFile(path string) ([]ConfigStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var stats []ConfigStats
	if err := json.Unmarshal(data, &stats); err != nil {
		return nil, fmt.Errorf("sat: parse stats file %s: %w", path, err)
	}
	return stats, nil
}
