package sat

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
)

// This file implements the frozen clause stream at the heart of the
// incremental-solving core: a Stream buffers the variable/clause stream
// an encoder produces instead of feeding an engine directly, Freeze()
// snapshots it into an immutable content-hashed prefix, and Fork()
// hands each consumer a copy-on-write continuation. Replaying a stream
// into any Engine reproduces exactly the calls direct construction
// would have made — same variable numbering, same clause order, same
// interleaving — so a replayed engine is state-identical to one built
// from scratch. The content hashes are what the higher tiers key on:
// persistent solver sessions load a frozen prefix once per hash, and
// the verdict memo cache keys queries by (prefix hash, delta hash,
// assumptions).

// streamOp is one step of the recorded stream: allocate newVars fresh
// variables, then (when hasClause) add clause. Recording the
// interleaving — rather than "all vars, then all clauses" — keeps
// replay byte-faithful to direct construction, which matters because
// unit propagation fires during AddClause on the internal engine.
type streamOp struct {
	newVars   int
	clause    []Lit
	hasClause bool
}

// writeOp appends the op's canonical byte encoding to the digest.
func (op streamOp) writeOp(d hash.Hash) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(op.newVars))
	d.Write(buf[:n])
	if !op.hasClause {
		n = binary.PutUvarint(buf[:], 0)
		d.Write(buf[:n])
		return
	}
	n = binary.PutUvarint(buf[:], uint64(len(op.clause))+1)
	d.Write(buf[:n])
	for _, l := range op.clause {
		n = binary.PutUvarint(buf[:], uint64(l))
		d.Write(buf[:n])
	}
}

// replayOp applies the op to an engine.
func (op streamOp) replayOp(e Engine) bool {
	for i := 0; i < op.newVars; i++ {
		e.NewVar()
	}
	if op.hasClause {
		return e.AddClause(op.clause...)
	}
	return true
}

// Hash is the content hash of a frozen prefix (or of a delta).
type Hash [sha256.Size]byte

// String renders the hash in hex.
func (h Hash) String() string { return fmt.Sprintf("%x", h[:]) }

// EmptyHash is the hash of the empty stream — the prefix hash of an
// engine that was never primed with a frozen prefix.
var EmptyHash = Hash(sha256.Sum256(nil))

// Frozen is an immutable, content-hashed snapshot of a clause stream:
// a chain of op segments ending at this one (parent side built first).
// Freezing never copies clause data, and Fork is O(1) — forks share
// the chain and append only their own deltas, so a grid of cells over
// one encoded circuit holds one copy of its CNF.
type Frozen struct {
	parent *Frozen
	ops    []streamOp
	nVars  int // total variables through this segment
	ok     bool
	hash   Hash
}

// NumVars returns the number of variables the frozen stream allocates.
func (f *Frozen) NumVars() int {
	if f == nil {
		return 0
	}
	return f.nVars
}

// Ok reports whether the stream is still possibly satisfiable (false
// once an empty clause was recorded).
func (f *Frozen) Ok() bool {
	if f == nil {
		return true
	}
	return f.ok
}

// Hash returns the chain content hash: equal hashes mean equal
// variable/clause streams (up to SHA-256 collisions).
func (f *Frozen) Hash() Hash {
	if f == nil {
		return EmptyHash
	}
	return f.hash
}

// Fork returns a fresh copy-on-write Stream extending the frozen
// prefix: O(1), sharing the prefix chain, with an empty delta.
func (f *Frozen) Fork() *Stream {
	s := NewStream()
	s.base = f
	if f != nil {
		s.nVars = f.nVars
		s.ok = f.ok
	}
	return s
}

// Ops walks the whole chain oldest-first, calling fn for every op:
// allocate newVars variables, then — when addClause — add clause. The
// clause slice is shared; callers must not retain or mutate it.
func (f *Frozen) Ops(fn func(newVars int, clause []Lit, addClause bool)) {
	if f == nil {
		return
	}
	f.parent.Ops(fn)
	for _, op := range f.ops {
		fn(op.newVars, op.clause, op.hasClause)
	}
}

// Replay reproduces the frozen stream into an engine, which must be
// fresh (no variables). It returns the conjunction of AddClause
// verdicts, like direct construction would have.
func (f *Frozen) Replay(e Engine) bool {
	ok := true
	f.Ops(func(newVars int, clause []Lit, addClause bool) {
		for i := 0; i < newVars; i++ {
			e.NewVar()
		}
		if addClause {
			ok = e.AddClause(clause...) && ok
		}
	})
	return ok
}

// FrozenLoader is implemented by engines that can adopt a frozen
// prefix without per-clause replay: the DIMACS-pipe engine (which
// defers the dump, and in persistent mode loads the prefix into its
// server session once per hash), the memo engine (which records the
// reference) and Portfolio (which forwards to every member). Prime is
// the one entry point; LoadFrozen requires a fresh engine.
type FrozenLoader interface {
	LoadFrozen(f *Frozen)
}

// Prime loads a frozen prefix into a fresh engine: O(1) for engines
// implementing FrozenLoader, an exact replay otherwise. A nil frozen
// is a no-op, so Prime(e, nil) is always safe.
func Prime(e Engine, f *Frozen) {
	if f == nil {
		return
	}
	if fl, ok := e.(FrozenLoader); ok {
		fl.LoadFrozen(f)
		return
	}
	f.Replay(e)
}

// LoadFrozen adopts a frozen prefix in every member engine (O(1) for
// members that are themselves FrozenLoaders). The portfolio must be
// fresh.
func (p *Portfolio) LoadFrozen(f *Frozen) {
	for _, e := range p.engines {
		Prime(e, f)
	}
}

var _ FrozenLoader = (*Portfolio)(nil)

// ClauseSink is the encoder-facing subset of Engine — variable
// allocation and clause addition. Every solving Engine and a buffering
// Stream both satisfy it, so formula builders (cnf.Encoder) can target
// either without caring whether clauses go to a solver or a stream.
type ClauseSink interface {
	NewVar() int
	NumVars() int
	AddClause(lits ...Lit) bool
}

var (
	_ ClauseSink = (*Stream)(nil)
	_ ClauseSink = Engine(nil)
)

// Stream buffers an incremental variable/clause stream. It exposes the
// encoder-facing subset of Engine (ClauseSink), so a cnf.Encoder can
// build a formula into a Stream exactly as it would into a solver;
// Freeze() then snapshots the stream for sharing and the encoder (or a
// fork's consumer) keeps appending deltas. A Stream is not safe for
// concurrent use; freeze it and hand each consumer its own Fork.
type Stream struct {
	base        *Frozen
	ops         []streamOp
	pendingVars int // NewVar calls since the last recorded op
	nVars       int
	ok          bool
	digest      hash.Hash // running digest over the delta ops
}

// NewStream returns an empty stream.
func NewStream() *Stream {
	return &Stream{ok: true, digest: sha256.New()}
}

// Base returns the frozen prefix this stream extends (nil for a root
// stream).
func (s *Stream) Base() *Frozen { return s.base }

// NewVar introduces a fresh variable and returns its index.
func (s *Stream) NewVar() int {
	v := s.nVars
	s.nVars++
	s.pendingVars++
	return v
}

// NumVars returns the number of variables created so far (prefix
// included).
func (s *Stream) NumVars() int { return s.nVars }

// AddClause records a clause. Like the DIMACS-pipe engine, a buffering
// stream detects only the trivial top-level conflict (the empty
// clause); deeper conflicts surface when the stream replays into a
// propagating engine.
func (s *Stream) AddClause(lits ...Lit) bool {
	cl := make([]Lit, len(lits))
	copy(cl, lits)
	op := streamOp{newVars: s.pendingVars, clause: cl, hasClause: true}
	s.pendingVars = 0
	s.ops = append(s.ops, op)
	op.writeOp(s.digest)
	if len(lits) == 0 {
		s.ok = false
	}
	return s.ok
}

// flushVars records any trailing NewVar calls as a clause-less op so
// hashing and replay account for them.
func (s *Stream) flushVars() {
	if s.pendingVars == 0 {
		return
	}
	op := streamOp{newVars: s.pendingVars}
	s.pendingVars = 0
	s.ops = append(s.ops, op)
	op.writeOp(s.digest)
}

// deltaSum finalizes a copy of the running delta digest, folding in the
// variable count, without disturbing the stream.
func (s *Stream) deltaSum() Hash {
	d := sha256.New()
	state, err := s.digest.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic("sat: stream digest does not marshal: " + err.Error())
	}
	if err := d.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic("sat: stream digest does not unmarshal: " + err.Error())
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(s.nVars))
	d.Write(buf[:n])
	var h Hash
	d.Sum(h[:0])
	return h
}

// DeltaHash returns the content hash of the ops added since the last
// Freeze (or since creation), including trailing variable allocations
// and the total variable count.
func (s *Stream) DeltaHash() Hash {
	s.flushVars()
	return s.deltaSum()
}

// Freeze snapshots the stream into an immutable Frozen and resets the
// delta: subsequent ops extend the new frozen prefix. When nothing was
// added since the previous Freeze, the existing prefix is returned
// unchanged (no empty chain links).
func (s *Stream) Freeze() *Frozen {
	s.flushVars()
	if len(s.ops) == 0 && s.base != nil {
		return s.base
	}
	d := sha256.New()
	if s.base != nil {
		d.Write(s.base.hash[:])
	}
	state, err := s.digest.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic("sat: stream digest does not marshal: " + err.Error())
	}
	var buf [binary.MaxVarintLen64]byte
	d.Write(state)
	n := binary.PutUvarint(buf[:], uint64(s.nVars))
	d.Write(buf[:n])
	var h Hash
	d.Sum(h[:0])
	f := &Frozen{parent: s.base, ops: s.ops, nVars: s.nVars, ok: s.ok, hash: h}
	s.base = f
	s.ops = nil
	s.digest = sha256.New()
	return f
}

// Ops walks the prefix chain and the unfrozen delta oldest-first (see
// Frozen.Ops), trailing variable allocations included.
func (s *Stream) Ops(fn func(newVars int, clause []Lit, addClause bool)) {
	s.flushVars()
	s.base.Ops(fn)
	for _, op := range s.ops {
		fn(op.newVars, op.clause, op.hasClause)
	}
}

// Replay reproduces the whole stream — prefix chain plus delta — into
// a fresh engine.
func (s *Stream) Replay(e Engine) bool {
	ok := true
	s.Ops(func(newVars int, clause []Lit, addClause bool) {
		for i := 0; i < newVars; i++ {
			e.NewVar()
		}
		if addClause {
			ok = e.AddClause(clause...) && ok
		}
	})
	return ok
}
