// Package bddengine implements sat.Engine on reduced ordered binary
// decision diagrams (internal/bdd): the clause stream is conjoined into
// one ROBDD, and each Solve call decides satisfiability exactly by
// checking the conjunction against the False terminal. BDDs excel on
// the small, structured cube-stripper cones the FALL attack isolates
// (the bypass/BDD trade-off of Xu et al. and the SCONE analysis), while
// CDCL search scales to cones whose BDDs blow up — so the engine
// returns Unknown when its node budget is exceeded, making it a safe
// portfolio member that falls through to SAT instead of stalling a
// race.
package bddengine

import (
	"context"

	"repro/internal/bdd"
	"repro/internal/sat"
)

// Engine is a sat.Engine deciding queries on a ROBDD. Like every
// engine, it is not safe for concurrent use. The conjunction BDD is
// cached across calls: solving repeatedly under different assumptions
// (the FALL grid's query shape) pays the clause-build cost once.
type Engine struct {
	maxNodes int
	nVars    int
	clauses  [][]sat.Lit
	ok       bool // false once an empty clause is added
	ctx      context.Context

	m            *bdd.Manager
	conj         bdd.Node
	builtVars    int
	builtClauses int
	blown        bool // node budget exceeded while conjoining clauses

	model []bool
	stats sat.Stats
}

var _ sat.Engine = (*Engine)(nil)

// New returns an engine with the given ROBDD node budget (0 selects the
// bdd package default of 1<<20 nodes).
func New(maxNodes int) *Engine {
	return &Engine{maxNodes: maxNodes, ok: true}
}

// LimitReached reports whether a previous call exhausted the node
// budget; once true, every Solve returns Unknown (the formula's BDD
// does not shrink by adding clauses).
func (e *Engine) LimitReached() bool { return e.blown }

// NewVar introduces a fresh variable and returns its index.
func (e *Engine) NewVar() int {
	e.nVars++
	return e.nVars - 1
}

// NumVars returns the number of variables created so far.
func (e *Engine) NumVars() int { return e.nVars }

// AddClause buffers a clause. It returns false only for the empty
// clause; deeper top-level conflicts surface as an Unsat verdict when
// the conjunction reaches False.
func (e *Engine) AddClause(lits ...sat.Lit) bool {
	if len(lits) == 0 {
		e.ok = false
		return false
	}
	e.clauses = append(e.clauses, append([]sat.Lit(nil), lits...))
	return e.ok
}

// SetContext attaches a cancellation/deadline context, polled between
// clause conjunctions and assumption applications.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// Stats returns the engine's counters. Only SolveCalls is meaningful:
// BDD work is node allocations, not conflicts.
func (e *Engine) Stats() sat.Stats { return e.stats }

// Solve decides satisfiability of the buffered clause set.
func (e *Engine) Solve() sat.Status { return e.SolveAssuming(nil) }

// SolveAssuming decides satisfiability under assumption literals,
// conjoined onto the cached clause BDD for this call only.
func (e *Engine) SolveAssuming(assumptions []sat.Lit) sat.Status {
	e.stats.SolveCalls++
	if !e.ok {
		return sat.Unsat
	}
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if e.blown || ctx.Err() != nil {
		return sat.Unknown
	}
	if !e.build(ctx) {
		return sat.Unknown
	}
	if e.conj == bdd.False {
		// Unsatisfiable regardless of assumptions.
		return sat.Unsat
	}
	q := e.conj
	for i, l := range assumptions {
		if i%64 == 0 && ctx.Err() != nil {
			return sat.Unknown
		}
		lit, err := e.litNode(l)
		if err != nil {
			return sat.Unknown // assumption-local blow-up: base BDD stays valid
		}
		if q, err = e.m.And(q, lit); err != nil {
			return sat.Unknown
		}
		if q == bdd.False {
			return sat.Unsat
		}
	}
	if q == bdd.False {
		return sat.Unsat
	}
	assign := e.m.AnySat(q)
	e.model = append(e.model[:0], assign...)
	return sat.Sat
}

// build (re)conjoins buffered clauses into the cached BDD. A growing
// variable count forces a rebuild (the manager's ordering is fixed at
// creation); otherwise only clauses added since the last call are
// conjoined. It returns false on cancellation (transient: conj and
// builtClauses are only committed together after a complete
// conjunction, so a cancelled build never leaves clauses counted as
// built but missing from conj — that would let a later call decide a
// weaker formula) or on node-budget blow-up (sticky — see
// LimitReached).
func (e *Engine) build(ctx context.Context) bool {
	if e.m == nil || e.builtVars != e.nVars {
		e.m = bdd.New(e.nVars, e.maxNodes)
		e.conj = bdd.True
		e.builtVars = e.nVars
		e.builtClauses = 0
	}
	// Conjoin pending clauses through a balanced reduction tree: the
	// final ROBDD is canonical either way, but a left fold forces the
	// whole constraint at every step, while balanced pairing keeps
	// intermediate diagrams near the size of their own subformulas —
	// often the difference between fitting the node budget and blowing
	// it on Tseitin-encoded cones.
	var pending []bdd.Node
	for i := e.builtClauses; i < len(e.clauses); i++ {
		if i%64 == 0 && ctx.Err() != nil {
			return false
		}
		cl := bdd.False
		for _, l := range e.clauses[i] {
			lit, err := e.litNode(l)
			if err != nil {
				e.blown = true
				return false
			}
			if cl, err = e.m.Or(cl, lit); err != nil {
				e.blown = true
				return false
			}
		}
		pending = append(pending, cl)
	}
	for len(pending) > 1 {
		if ctx.Err() != nil {
			return false
		}
		next := pending[:0]
		for i := 0; i < len(pending); i += 2 {
			if i+1 == len(pending) {
				next = append(next, pending[i])
				break
			}
			n, err := e.m.And(pending[i], pending[i+1])
			if err != nil {
				e.blown = true
				return false
			}
			next = append(next, n)
		}
		pending = next
	}
	if len(pending) == 1 {
		n, err := e.m.And(e.conj, pending[0])
		if err != nil {
			e.blown = true
			return false
		}
		e.conj = n
	}
	e.builtClauses = len(e.clauses)
	return true
}

// litNode builds the BDD of one literal under the node budget.
func (e *Engine) litNode(l sat.Lit) (bdd.Node, error) {
	n, err := e.m.VarNode(l.Var())
	if err != nil {
		return n, err
	}
	if l.Sign() {
		return e.m.Not(n)
	}
	return n, nil
}

// Value returns variable v's value in the last satisfying assignment.
// Variables the model leaves unconstrained report false (matching
// bdd.AnySat).
func (e *Engine) Value(v int) bool {
	if v >= len(e.model) {
		return false
	}
	return e.model[v]
}

// LitTrue reports whether literal l is true in the last model.
func (e *Engine) LitTrue(l sat.Lit) bool {
	val := e.Value(l.Var())
	if l.Sign() {
		return !val
	}
	return val
}
