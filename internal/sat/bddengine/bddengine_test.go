package bddengine

import (
	"context"
	"testing"

	"repro/internal/sat"
)

func pigeonhole(e sat.Engine, p, h int) {
	v := make([][]int, p)
	for i := range v {
		v[i] = make([]int, h)
		for j := range v[i] {
			v[i][j] = e.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		lits := make([]sat.Lit, h)
		for j := 0; j < h; j++ {
			lits[j] = sat.PosLit(v[i][j])
		}
		e.AddClause(lits...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				e.AddClause(sat.NegLit(v[i1][j]), sat.NegLit(v[i2][j]))
			}
		}
	}
}

func xorChain(e sat.Engine, n int) []int {
	vars := make([]int, n)
	for i := range vars {
		vars[i] = e.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		e.AddClause(sat.PosLit(vars[i]), sat.PosLit(vars[i+1]))
		e.AddClause(sat.NegLit(vars[i]), sat.NegLit(vars[i+1]))
	}
	e.AddClause(sat.PosLit(vars[0]))
	return vars
}

// TestVerdictsMatchInternal: the BDD engine agrees with the internal
// CDCL engine on the instance table, and its SAT models satisfy the
// formula (models may legitimately differ between backends).
func TestVerdictsMatchInternal(t *testing.T) {
	type inst struct {
		name string
		load func(e sat.Engine) [][]sat.Lit
	}
	collect := func(load func(e sat.Engine)) func(e sat.Engine) [][]sat.Lit {
		return func(e sat.Engine) [][]sat.Lit {
			rec := &recorder{Engine: e}
			load(rec)
			return rec.clauses
		}
	}
	insts := []inst{
		{"php54-unsat", collect(func(e sat.Engine) { pigeonhole(e, 5, 4) })},
		{"php44-sat", collect(func(e sat.Engine) { pigeonhole(e, 4, 4) })},
		{"xor-chain-sat", collect(func(e sat.Engine) { xorChain(e, 10) })},
	}
	for _, in := range insts {
		ref := sat.New()
		in.load(ref)
		want := ref.Solve()

		e := New(0)
		clauses := in.load(e)
		got := e.Solve()
		if got != want {
			t.Fatalf("%s: bdd %v, internal %v", in.name, got, want)
		}
		if got == sat.Sat {
			for ci, cl := range clauses {
				satisfied := false
				for _, l := range cl {
					if e.LitTrue(l) {
						satisfied = true
						break
					}
				}
				if !satisfied {
					t.Errorf("%s: model violates clause %d", in.name, ci)
				}
			}
		}
	}
}

// recorder wraps an engine and remembers the clause stream.
type recorder struct {
	sat.Engine
	clauses [][]sat.Lit
}

func (r *recorder) AddClause(lits ...sat.Lit) bool {
	r.clauses = append(r.clauses, append([]sat.Lit(nil), lits...))
	return r.Engine.AddClause(lits...)
}

// TestSolveAssuming: assumptions flip verdicts per call, leave the
// cached conjunction intact, and appear in the model.
func TestSolveAssuming(t *testing.T) {
	e := New(0)
	x, y := e.NewVar(), e.NewVar()
	e.AddClause(sat.PosLit(x), sat.PosLit(y))
	e.AddClause(sat.NegLit(x), sat.NegLit(y))

	if got := e.Solve(); got != sat.Sat {
		t.Fatalf("base: %v", got)
	}
	if got := e.SolveAssuming([]sat.Lit{sat.PosLit(x), sat.PosLit(y)}); got != sat.Unsat {
		t.Fatalf("assuming x∧y: %v", got)
	}
	if got := e.SolveAssuming([]sat.Lit{sat.PosLit(x)}); got != sat.Sat {
		t.Fatalf("assuming x: %v", got)
	}
	if !e.Value(x) || e.Value(y) {
		t.Errorf("assuming x: model x=%v y=%v, want true/false", e.Value(x), e.Value(y))
	}
	if got := e.SolveAssuming([]sat.Lit{sat.NegLit(x)}); got != sat.Sat {
		t.Fatalf("assuming ¬x: %v", got)
	}
	if e.Value(x) || !e.Value(y) {
		t.Errorf("assuming ¬x: model x=%v y=%v, want false/true", e.Value(x), e.Value(y))
	}
}

// TestIncrementalClauses: clauses added between calls join the cached
// conjunction.
func TestIncrementalClauses(t *testing.T) {
	e := New(0)
	x := e.NewVar()
	e.AddClause(sat.PosLit(x))
	if got := e.Solve(); got != sat.Sat {
		t.Fatalf("first: %v", got)
	}
	e.AddClause(sat.NegLit(x))
	if got := e.Solve(); got != sat.Unsat {
		t.Fatalf("after contradiction: %v", got)
	}
	// Adding a variable after solving forces a clean rebuild.
	y := e.NewVar()
	_ = y
	if got := e.Solve(); got != sat.Unsat {
		t.Fatalf("after new var: %v", got)
	}
}

// TestNodeLimitFallsThrough: a tiny node budget makes the engine return
// Unknown — the portfolio-fallthrough contract — and stays Unknown.
func TestNodeLimitFallsThrough(t *testing.T) {
	e := New(8) // terminals plus almost nothing
	pigeonhole(e, 5, 4)
	if got := e.Solve(); got != sat.Unknown {
		t.Fatalf("blown BDD: %v, want UNKNOWN", got)
	}
	if !e.LimitReached() {
		t.Error("LimitReached not reported")
	}
	if got := e.Solve(); got != sat.Unknown {
		t.Errorf("blown BDD second call: %v, want UNKNOWN", got)
	}
}

// TestEmptyClauseIsUnsat: the empty clause short-circuits to Unsat.
func TestEmptyClauseIsUnsat(t *testing.T) {
	e := New(0)
	e.NewVar()
	if e.AddClause() {
		t.Error("empty clause accepted")
	}
	if got := e.Solve(); got != sat.Unsat {
		t.Errorf("after empty clause: %v", got)
	}
}

// TestCancellation: a dead context yields Unknown without touching the
// cached state.
func TestCancellation(t *testing.T) {
	e := New(0)
	x := e.NewVar()
	e.AddClause(sat.PosLit(x))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	if got := e.Solve(); got != sat.Unknown {
		t.Errorf("dead context: %v, want UNKNOWN", got)
	}
	e.SetContext(context.Background())
	if got := e.Solve(); got != sat.Sat {
		t.Errorf("revived context: %v, want SAT", got)
	}
}

// countdownCtx reports no error for the first n Err() polls, then is
// permanently cancelled — a deterministic mid-build cancellation.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	if c.n > 0 {
		c.n--
		return nil
	}
	return context.Canceled
}

// TestCancelledBuildDoesNotDropClauses: a cancellation that lands in
// the middle of the clause-conjoin loop must not leave those clauses
// counted as built — a later call would otherwise decide a weaker
// formula and could report SAT on an unsatisfiable query (the exact
// soundness violation a portfolio race's loser cancellation could
// trigger).
func TestCancelledBuildDoesNotDropClauses(t *testing.T) {
	e := New(0)
	x := e.NewVar()
	// Enough clauses that the %64 cancellation poll fires mid-loop,
	// with the contradiction at the very end.
	for i := 0; i < 130; i++ {
		y := e.NewVar()
		e.AddClause(sat.PosLit(x), sat.PosLit(y))
	}
	e.AddClause(sat.PosLit(x))
	e.AddClause(sat.NegLit(x))

	e.SetContext(&countdownCtx{Context: context.Background(), n: 2})
	if got := e.Solve(); got != sat.Unknown {
		t.Fatalf("cancelled build: %v, want UNKNOWN", got)
	}
	e.SetContext(context.Background())
	if got := e.Solve(); got != sat.Unsat {
		t.Fatalf("after cancelled build the full formula must be decided: %v, want UNSAT", got)
	}
}

// TestPortfolioFallthrough: in an internal+bdd portfolio where the BDD
// member blows its budget, the race still decides via the internal
// engine.
func TestPortfolioFallthrough(t *testing.T) {
	ledger := sat.NewLedgerLabels([]string{"seed=0", "bdd"})
	p := sat.NewEnginePortfolio([]sat.Engine{sat.New(), New(8)}, ledger)
	pigeonhole(p, 5, 4)
	if got := p.Solve(); got != sat.Unsat {
		t.Fatalf("portfolio with blown BDD member: %v, want UNSAT", got)
	}
	snap := ledger.Snapshot()
	if snap[0].Wins != 1 || snap[1].Wins != 0 {
		t.Errorf("ledger: %+v", snap)
	}
}
