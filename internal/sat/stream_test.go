package sat_test

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
	"repro/internal/sat/bddengine"
)

// randOps generates a random interleaved variable/clause stream over
// at most maxVars variables. Ops with a nil clause only allocate vars.
type testOp struct {
	vars   int
	clause []sat.Lit
	has    bool
}

func randOps(rng *rand.Rand, maxVars int) []testOp {
	var ops []testOp
	nVars := 0
	// Seed a few variables so the first clauses have something to bite.
	first := 2 + rng.Intn(4)
	ops = append(ops, testOp{vars: first})
	nVars += first
	nClauses := 1 + rng.Intn(3*maxVars)
	for c := 0; c < nClauses; c++ {
		if nVars < maxVars && rng.Intn(3) == 0 {
			k := 1 + rng.Intn(3)
			ops = append(ops, testOp{vars: k})
			nVars += k
			continue
		}
		width := 1 + rng.Intn(3)
		cl := make([]sat.Lit, 0, width)
		for i := 0; i < width; i++ {
			l := sat.PosLit(rng.Intn(nVars))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl = append(cl, l)
		}
		ops = append(ops, testOp{clause: cl, has: true})
	}
	return ops
}

func applyOps(e interface {
	NewVar() int
	AddClause(...sat.Lit) bool
}, ops []testOp) {
	for _, op := range ops {
		for i := 0; i < op.vars; i++ {
			e.NewVar()
		}
		if op.has {
			e.AddClause(op.clause...)
		}
	}
}

func randAssumptions(rng *rand.Rand, nVars int) []sat.Lit {
	n := rng.Intn(4)
	as := make([]sat.Lit, 0, n)
	for i := 0; i < n; i++ {
		l := sat.PosLit(rng.Intn(nVars))
		if rng.Intn(2) == 0 {
			l = l.Neg()
		}
		as = append(as, l)
	}
	return as
}

func countVars(ops []testOp) int {
	n := 0
	for _, op := range ops {
		n += op.vars
	}
	return n
}

// TestFrozenReplayIdentity is the core property: solving a frozen
// prefix plus delta — built through Stream/Freeze/Prime — returns the
// same verdict AND the same model as building the identical stream
// directly into a solver, across randomized streams, freeze points and
// assumptions.
func TestFrozenReplayIdentity(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := randOps(rng, 24)
		nVars := countVars(ops)
		as := randAssumptions(rng, nVars)

		// Reference: direct construction, same interleaving.
		ref := sat.New()
		applyOps(ref, ops)
		want := ref.SolveAssuming(as)

		// Frozen path: freeze at up to two random cuts, prime, add the
		// delta directly to the engine.
		cut1 := rng.Intn(len(ops) + 1)
		cut2 := cut1 + rng.Intn(len(ops)-cut1+1)
		stream := sat.NewStream()
		applyOps(stream, ops[:cut1])
		stream.Freeze()
		applyOps(stream, ops[cut1:cut2])
		frozen := stream.Freeze()
		if frozen.NumVars() != countVars(ops[:cut2]) {
			t.Fatalf("seed %d: frozen has %d vars, want %d", seed, frozen.NumVars(), countVars(ops[:cut2]))
		}

		eng := sat.New()
		sat.Prime(eng, frozen)
		applyOps(eng, ops[cut2:])
		if eng.NumVars() != nVars {
			t.Fatalf("seed %d: primed engine has %d vars, want %d", seed, eng.NumVars(), nVars)
		}
		got := eng.SolveAssuming(as)
		if got != want {
			t.Fatalf("seed %d: frozen+delta verdict %v, direct %v", seed, got, want)
		}
		if want == sat.Sat {
			for v := 0; v < nVars; v++ {
				if ref.Value(v) != eng.Value(v) {
					t.Fatalf("seed %d: model differs at var %d", seed, v)
				}
			}
		}

		// A second fork of the same prefix must be independent: pinning a
		// variable false in one fork must not leak into the other.
		forkA := frozen.Fork()
		forkB := frozen.Fork()
		if nVars := forkA.NumVars(); nVars > 0 {
			forkA.AddClause(sat.PosLit(0).Neg())
			forkB.AddClause(sat.PosLit(0))
			ea, eb := sat.New(), sat.New()
			forkA.Replay(ea)
			forkB.Replay(eb)
			if ea.Solve() == sat.Sat && ea.Value(0) {
				t.Fatalf("seed %d: fork A sees fork B's clause", seed)
			}
			if eb.Solve() == sat.Sat && !eb.Value(0) {
				t.Fatalf("seed %d: fork B sees fork A's clause", seed)
			}
		}
	}
}

// TestFrozenReplayHeterogeneousPortfolio checks the verdict property
// through a heterogeneous racing portfolio (internal CDCL + BDD)
// primed with a frozen prefix: every backend decides the same
// replayed formula, so verdicts match the direct run. Models are not
// compared (the winning backend varies); this runs under -race to
// exercise the priming + racing paths together.
func TestFrozenReplayHeterogeneousPortfolio(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := randOps(rng, 16)
		nVars := countVars(ops)
		as := randAssumptions(rng, nVars)

		ref := sat.New()
		applyOps(ref, ops)
		want := ref.SolveAssuming(as)

		cut := rng.Intn(len(ops) + 1)
		stream := sat.NewStream()
		applyOps(stream, ops[:cut])
		frozen := stream.Freeze()

		p := sat.NewEnginePortfolio([]sat.Engine{sat.New(), bddengine.New(0)}, nil)
		sat.Prime(p, frozen)
		applyOps(p, ops[cut:])
		if got := p.SolveAssuming(as); got != want {
			t.Fatalf("seed %d: portfolio verdict %v, direct %v", seed, got, want)
		}
	}
}

func TestFrozenHashes(t *testing.T) {
	build := func(extra bool) *sat.Frozen {
		s := sat.NewStream()
		a, b := sat.PosLit(s.NewVar()), sat.PosLit(s.NewVar())
		s.AddClause(a, b)
		if extra {
			s.AddClause(a.Neg(), b)
		}
		return s.Freeze()
	}
	f1, f2, f3 := build(false), build(false), build(true)
	if f1.Hash() != f2.Hash() {
		t.Fatalf("identical streams hash differently: %v vs %v", f1.Hash(), f2.Hash())
	}
	if f1.Hash() == f3.Hash() {
		t.Fatalf("different streams share a hash")
	}
	if f1.Hash() == sat.EmptyHash {
		t.Fatalf("non-empty stream has the empty hash")
	}
	if (*sat.Frozen)(nil).Hash() != sat.EmptyHash {
		t.Fatalf("nil frozen should hash as empty")
	}

	// Chained freezes: the child hash covers the parent.
	s := f1.Fork()
	s.AddClause(sat.PosLit(0))
	child := s.Freeze()
	if child.Hash() == f1.Hash() {
		t.Fatalf("chained freeze did not change the hash")
	}
	// Freezing with an empty delta returns the same prefix.
	again := s.Freeze()
	if again != child {
		t.Fatalf("empty-delta freeze created a new link")
	}

	// Delta hashes: equal deltas agree, and trailing var allocations are
	// part of the content.
	d1, d2 := child.Fork(), child.Fork()
	d1.AddClause(sat.PosLit(1))
	d2.AddClause(sat.PosLit(1))
	if d1.DeltaHash() != d2.DeltaHash() {
		t.Fatalf("identical deltas hash differently")
	}
	d2.NewVar()
	if d1.DeltaHash() == d2.DeltaHash() {
		t.Fatalf("trailing variable allocation not reflected in delta hash")
	}
}
