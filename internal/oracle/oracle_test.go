package oracle

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/testcirc"
)

func TestSimOracleQueries(t *testing.T) {
	orig := testcirc.Fig2a()
	o := NewSim(orig)
	if o.NumQueries() != 0 {
		t.Error("fresh oracle has queries")
	}
	out := o.Query(map[string]bool{"a": true, "b": true})
	if len(out) != 1 || !out[0] {
		t.Errorf("query(a=1,b=1) = %v, want [true]", out)
	}
	out = o.Query(map[string]bool{"d": false})
	if out[0] {
		t.Errorf("query(all 0) = %v, want [false]", out)
	}
	if o.NumQueries() != 2 {
		t.Errorf("queries = %d, want 2", o.NumQueries())
	}
	if got := o.InputNames(); len(got) != 4 {
		t.Errorf("input names = %v", got)
	}
	if got := o.OutputNames(); len(got) != 1 || got[0] != "y" {
		t.Errorf("output names = %v", got)
	}
}

func TestCheckKeyAcceptsCorrectKey(t *testing.T) {
	orig := testcirc.Fig2a()
	res, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 2, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	o := NewSim(orig)
	if err := CheckKey(res.Locked, o, res.Key, 64, 1); err != nil {
		t.Errorf("correct key rejected: %v", err)
	}
}

func TestCheckKeyRejectsWrongKey(t *testing.T) {
	orig := testcirc.Fig2a()
	res, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 2, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	wrong := map[string]bool{}
	for k, v := range res.Key {
		wrong[k] = !v
	}
	o := NewSim(orig)
	// TTLock wrong-key corruption hits 2 of 16 patterns; 256 random
	// patterns of 4 inputs will cover the space.
	if err := CheckKey(res.Locked, o, wrong, 256, 1); err == nil {
		t.Error("wrong key accepted by CheckKey")
	}
}

func TestCheckKeyUnknownInputsIgnored(t *testing.T) {
	orig := testcirc.C17()
	o := NewSim(orig)
	// Querying with unknown names silently ignores them.
	out := o.Query(map[string]bool{"nonexistent": true})
	if len(out) != 2 {
		t.Errorf("outputs = %d, want 2", len(out))
	}
}
