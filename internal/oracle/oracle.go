// Package oracle models I/O oracle access to an activated (unlocked) IC,
// which the paper's adversary may use to observe the correct output for a
// chosen input (§II-A). The simulation-backed oracle evaluates the
// original, pre-locking netlist; it counts queries so experiments can
// report oracle usage (the paper stresses that 90% of successful FALL
// attacks needed zero oracle queries).
package oracle

import (
	"fmt"

	"repro/internal/circuit"
)

// Oracle answers input/output queries against the true circuit function.
type Oracle interface {
	// Query returns the outputs for the named input assignment. Missing
	// inputs default to false.
	Query(inputs map[string]bool) []bool
	// OutputNames lists output names in Query result order.
	OutputNames() []string
	// InputNames lists the primary input names the oracle accepts.
	InputNames() []string
	// NumQueries reports how many times Query has been called.
	NumQueries() int
}

// Forker is implemented by oracles that can hand out independent
// handles for concurrent use. Oracles count queries and are therefore
// not safe to share across goroutines; a parallel attack calls Fork
// once per worker and aggregates the per-fork query counts itself.
type Forker interface {
	Fork() Oracle
}

// SimOracle is an Oracle backed by simulation of the original circuit.
type SimOracle struct {
	c       *circuit.Circuit
	queries int
}

// NewSim wraps the original (unlocked) circuit as an oracle.
func NewSim(original *circuit.Circuit) *SimOracle {
	return &SimOracle{c: original}
}

// Query evaluates the original circuit on the named assignment.
func (o *SimOracle) Query(inputs map[string]bool) []bool {
	o.queries++
	assign := make(map[int]bool, len(inputs))
	for name, v := range inputs {
		if id, ok := o.c.NodeByName(name); ok {
			assign[id] = v
		}
	}
	return o.c.EvalOutputs(assign)
}

// OutputNames lists output names in Query result order.
func (o *SimOracle) OutputNames() []string {
	names := make([]string, len(o.c.Outputs))
	for i, id := range o.c.Outputs {
		names[i] = o.c.Nodes[id].Name
	}
	return names
}

// InputNames lists the primary input names of the original circuit.
func (o *SimOracle) InputNames() []string {
	ids := o.c.PrimaryInputs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = o.c.Nodes[id].Name
	}
	return names
}

// NumQueries reports how many times Query has been called.
func (o *SimOracle) NumQueries() int { return o.queries }

// Fork returns an independent oracle over the same (read-only) circuit
// with its own query counter, implementing Forker.
func (o *SimOracle) Fork() Oracle { return NewSim(o.c) }

// CheckKey verifies by random simulation that the locked circuit under
// the given key agrees with the oracle on n random input patterns; it
// returns the first disagreeing pattern as an error. This is a testing
// utility, not part of any attack (an attacker validating a key this way
// would be using the oracle).
func CheckKey(locked *circuit.Circuit, orc Oracle, key map[string]bool, n int, seed int64) error {
	rng := newSplitMix(uint64(seed))
	piNames := orc.InputNames()
	for trial := 0; trial < n; trial++ {
		inputs := make(map[string]bool, len(piNames))
		for _, nm := range piNames {
			inputs[nm] = rng.next()&1 == 1
		}
		want := orc.Query(inputs)
		assign := make(map[int]bool)
		for nm, v := range inputs {
			if id, ok := locked.NodeByName(nm); ok {
				assign[id] = v
			}
		}
		for nm, v := range key {
			if id, ok := locked.NodeByName(nm); ok {
				assign[id] = v
			}
		}
		got := locked.EvalOutputs(assign)
		if len(got) != len(want) {
			return fmt.Errorf("oracle: output arity mismatch: locked %d, oracle %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("oracle: key disagrees on trial %d, output %d (inputs %v)", trial, i, inputs)
			}
		}
	}
	return nil
}

// splitMix is a tiny deterministic PRNG so CheckKey does not depend on
// math/rand ordering guarantees.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
