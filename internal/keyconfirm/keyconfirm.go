// Package keyconfirm implements the key confirmation algorithm (paper §V,
// Algorithm 4): given a predicate φ over key values — typically the
// disjunction of the keys shortlisted by the FALL functional analyses —
// and I/O oracle access, it returns the key satisfying φ that is
// consistent with the oracle, or ⊥ if none is.
//
// Two independent incremental SAT solvers mirror the paper's P/Q design:
// P produces candidate keys consistent with φ and the observed I/O
// patterns; Q produces distinguishing inputs for the current candidate,
// with the candidate pinned via solver assumptions. The two UNSAT results
// are therefore distinguishable: P UNSAT means the guess φ was wrong
// (return ⊥), Q UNSAT means no distinguishing input remains (the
// candidate is confirmed). With φ = true the procedure devolves into the
// standard SAT attack, as the paper observes.
//
// Implementation refinement (documented in DESIGN.md): before the final
// single-copy convergence check, an accelerated phase requires each
// distinguishing input to separate the candidate from two distinct other
// keys simultaneously (the Double-DIP strengthening [18]). On point-
// function locking this steers the solver to the protected-cube query
// that eliminates the whole wrong-key space at once. Soundness is
// unaffected: termination is still decided by the unmodified Algorithm 4
// query, and every returned key is consistent with φ and all oracle
// responses.
package keyconfirm

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// Result reports a key confirmation run.
type Result struct {
	// Key is the confirmed key, nil when Confirmed is false.
	Key map[string]bool
	// Confirmed is true if some candidate satisfying φ is consistent
	// with the oracle; false means ⊥ (the guess was wrong).
	Confirmed bool
	// TimedOut reports wall-clock expiry or cancellation of the run
	// context (result undetermined).
	TimedOut bool
	// IterCapped reports that Options.MaxIterations stopped the run
	// before a verdict. It is distinct from TimedOut: hitting an
	// iteration cap says nothing about wall-clock budgets, and harnesses
	// must not censor capped runs as timeouts.
	IterCapped bool
	// Iterations counts distinguishing-input queries.
	Iterations int
	// OracleQueries counts oracle calls.
	OracleQueries int
	// Elapsed is the total run time.
	Elapsed time.Duration
}

// Options tunes the confirmation run. Wall-clock budgets and external
// cancellation are expressed through the run context: cancel it (or set
// a deadline on it) and Confirm reports TimedOut.
type Options struct {
	// DisableDoubleDIP turns off the accelerated two-copy phase and runs
	// pure Algorithm 4 (ablation knob).
	DisableDoubleDIP bool
	// MaxIterations bounds distinguishing-input queries (<= 0: unlimited).
	MaxIterations int
	// Solver builds the SAT engines (the P/Q solvers of Algorithm 4 and
	// the accelerated solver D); nil means default single engines.
	Solver attack.SolverFactory
}

// Confirm runs key confirmation with φ = OR over the candidate key
// assignments. An empty candidate list means φ = true (degenerates to the
// SAT attack over the whole key space).
func Confirm(ctx context.Context, locked *circuit.Circuit, candidates []map[string]bool, orc oracle.Oracle, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &Result{}
	keys := locked.KeyInputs()
	if len(keys) == 0 {
		return nil, fmt.Errorf("keyconfirm: circuit has no key inputs")
	}
	outIdx, err := attack.OutputIndex(locked, orc)
	if err != nil {
		return nil, err
	}

	// One trace span per query family: every query a solver issues
	// parents under its family span, so tracestat can split the run
	// into candidate search (P), termination miters (Q) and the
	// double-DIP acceleration (D).
	root := obs.SpanFrom(ctx)
	pSpan := root.Child("kc.P")
	qSpan := root.Child("kc.Q")
	var dSpan *obs.Span
	defer func() {
		pSpan.Set("iterations", res.Iterations)
		pSpan.End()
		qSpan.End()
		dSpan.End()
	}()

	// Each solver's initial encoding is built into a clause stream and
	// frozen; the engine is primed with the frozen prefix in one shot
	// (content-hashed and O(1) for persistent or memoizing backends),
	// and the encoder then retargets the live engine so per-iteration
	// I/O constraints extend it incrementally, exactly as before.

	// Solver P: candidate keys satisfying φ and observed I/O patterns.
	pst := sat.NewStream()
	pe := cnf.NewEncoder(pst)
	kp := make([]sat.Lit, len(keys))
	givenP := make(map[int]sat.Lit, len(keys))
	for i, k := range keys {
		kp[i] = pe.NewLit()
		givenP[k] = kp[i]
	}
	if len(candidates) > 0 {
		encodePhi(pe, locked, keys, kp, candidates)
	}
	p := attack.NewEngineOn(obs.With(ctx, pSpan), opts.Solver, pst.Freeze())
	pe.S = p

	// Solver Q: single-copy miter per Algorithm 4 (the sound terminator).
	qst := sat.NewStream()
	qe := cnf.NewEncoder(qst)
	q1lits := qe.EncodeCircuitWith(locked, nil)
	sharedQ := piShared(locked, q1lits)
	q2lits := qe.EncodeCircuitWith(locked, sharedQ)
	qe.NotEqual(cnf.EncodedOutputs(locked, q1lits), cnf.EncodedOutputs(locked, q2lits))
	qK1 := cnf.InputLits(keys, q1lits)
	qK2given := attack.KeyGiven(keys, cnf.InputLits(keys, q2lits))
	q := attack.NewEngineOn(obs.With(ctx, qSpan), opts.Solver, qst.Freeze())
	qe.S = q

	// Solver D: accelerated double-DIP miter (two other-key copies).
	var d sat.Engine
	var de *cnf.Encoder
	var dK1 []sat.Lit
	var dPIs []sat.Lit
	var dK2given, dK3given map[int]sat.Lit
	if !opts.DisableDoubleDIP {
		dst := sat.NewStream()
		de = cnf.NewEncoder(dst)
		d1 := de.EncodeCircuitWith(locked, nil)
		sharedD := piShared(locked, d1)
		d2 := de.EncodeCircuitWith(locked, sharedD)
		d3 := de.EncodeCircuitWith(locked, sharedD)
		de.NotEqual(cnf.EncodedOutputs(locked, d1), cnf.EncodedOutputs(locked, d2))
		de.NotEqual(cnf.EncodedOutputs(locked, d1), cnf.EncodedOutputs(locked, d3))
		k2 := cnf.InputLits(keys, d2)
		k3 := cnf.InputLits(keys, d3)
		de.NotEqual(k2, k3) // the two other keys are distinct
		dK1 = cnf.InputLits(keys, d1)
		dPIs = cnf.InputLits(locked.PrimaryInputs(), d1)
		dK2given = attack.KeyGiven(keys, k2)
		dK3given = attack.KeyGiven(keys, k3)
		dSpan = root.Child("kc.D")
		d = attack.NewEngineOn(obs.With(ctx, dSpan), opts.Solver, dst.Freeze())
		de.S = d
	}

	qPIs := cnf.InputLits(locked.PrimaryInputs(), q1lits)
	doublePhase := !opts.DisableDoubleDIP

	for {
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			res.IterCapped = true
			break
		}
		// Line 6-9: candidate key from P.
		switch p.Solve() {
		case sat.Unknown:
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		case sat.Unsat:
			// ⊥: no key satisfies φ and the observations.
			res.Elapsed = time.Since(start)
			return res, nil
		}
		ki := make([]bool, len(keys))
		assumpsQ := make([]sat.Lit, len(keys))
		for i := range keys {
			ki[i] = p.LitTrue(kp[i])
			assumpsQ[i] = attack.LitWithValue(qK1[i], ki[i])
		}

		// Accelerated phase: distinguish Ki from two keys at once.
		if doublePhase {
			assumpsD := make([]sat.Lit, len(keys))
			for i := range keys {
				assumpsD[i] = attack.LitWithValue(dK1[i], ki[i])
			}
			switch d.SolveAssuming(assumpsD) {
			case sat.Unknown:
				res.TimedOut = true
				res.Elapsed = time.Since(start)
				return res, nil
			case sat.Unsat:
				// No double-DIP remains; fall through to the sound
				// single-copy phase for the rest of the run.
				doublePhase = false
			case sat.Sat:
				res.Iterations++
				xd := attack.ModelInput(locked, d, dPIs)
				yd := orc.Query(xd)
				res.OracleQueries++
				attack.AddIOConstraint(pe, locked, xd, yd, outIdx, givenP)
				attack.AddIOConstraint(qe, locked, xd, yd, outIdx, qK2given)
				attack.AddIOConstraint(de, locked, xd, yd, outIdx, dK2given)
				attack.AddIOConstraint(de, locked, xd, yd, outIdx, dK3given)
				continue
			}
		}

		// Line 10-12: Algorithm 4's distinguishing-input query.
		switch q.SolveAssuming(assumpsQ) {
		case sat.Unknown:
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		case sat.Unsat:
			// Confirmed: Ki |= φ and no distinguishing input exists.
			res.Key = make(map[string]bool, len(keys))
			for i, k := range keys {
				res.Key[locked.Nodes[k].Name] = ki[i]
			}
			res.Confirmed = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
		res.Iterations++
		xd := attack.ModelInput(locked, q, qPIs)
		yd := orc.Query(xd)
		res.OracleQueries++
		// Lines 15-16.
		attack.AddIOConstraint(pe, locked, xd, yd, outIdx, givenP)
		attack.AddIOConstraint(qe, locked, xd, yd, outIdx, qK2given)
		if d != nil {
			attack.AddIOConstraint(de, locked, xd, yd, outIdx, dK2given)
			attack.AddIOConstraint(de, locked, xd, yd, outIdx, dK3given)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// encodePhi adds φ = OR_j (K == candidate_j) to the encoder's sink via
// selector variables.
func encodePhi(pe *cnf.Encoder, locked *circuit.Circuit, keys []int, kp []sat.Lit, candidates []map[string]bool) {
	sels := make([]sat.Lit, len(candidates))
	for j, cand := range candidates {
		sel := pe.NewLit()
		sels[j] = sel
		for i, k := range keys {
			name := locked.Nodes[k].Name
			v, ok := cand[name]
			if !ok {
				continue // unconstrained bit in this candidate
			}
			pe.S.AddClause(sel.Neg(), attack.LitWithValue(kp[i], v))
		}
	}
	pe.S.AddClause(sels...)
}

func piShared(locked *circuit.Circuit, lits []sat.Lit) map[int]sat.Lit {
	shared := make(map[int]sat.Lit)
	for _, pi := range locked.PrimaryInputs() {
		shared[pi] = lits[pi]
	}
	return shared
}
