package keyconfirm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/oracle"
)

// ParallelResult aggregates a partitioned parallel run.
type ParallelResult struct {
	// Result is the winning region's confirmation result (Confirmed key)
	// or a synthesized ⊥/timeout verdict when no region confirmed.
	Result
	// Regions is the number of key-space partitions searched.
	Regions int
	// TotalIterations sums distinguishing-input queries across regions.
	TotalIterations int
	// TotalOracleQueries sums oracle calls across regions.
	TotalOracleQueries int
}

// ConfirmParallel realizes the parallelization the paper sketches in
// §VI-D: "the key confirmation attack can also be used to parallelize
// the SAT attack by partitioning the key input space into different
// regions and setting φ to search over these distinct regions in each
// parallel invocation." The first `bits` key inputs are fixed to each of
// the 2^bits combinations, and one key confirmation runs per region in
// its own goroutine (the authors' prototype was single-threaded; this is
// the natural Go realization). The first confirmed region cancels the
// rest by cancelling the context the remaining regions run under.
//
// oracleFactory must return an independent oracle per region (oracles
// count queries and are not safe for concurrent use).
func ConfirmParallel(ctx context.Context, locked *circuit.Circuit, bits int, oracleFactory func() oracle.Oracle, opts Options) (*ParallelResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	keys := locked.KeyInputs()
	if len(keys) == 0 {
		return nil, fmt.Errorf("keyconfirm: circuit has no key inputs")
	}
	if bits < 0 || bits > len(keys) || bits > 16 {
		return nil, fmt.Errorf("keyconfirm: partition bits %d out of range (0..min(16, %d))", bits, len(keys))
	}
	regions := 1 << uint(bits)
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type regionOutcome struct {
		res *Result
		err error
	}
	outcomes := make([]regionOutcome, regions)
	var wg sync.WaitGroup
	for r := 0; r < regions; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// φ for this region: the first `bits` key inputs fixed to
			// the bits of r; the rest unconstrained.
			region := make(map[string]bool, bits)
			for i := 0; i < bits; i++ {
				region[locked.Nodes[keys[i]].Name] = r&(1<<uint(i)) != 0
			}
			var cands []map[string]bool
			if bits > 0 {
				cands = []map[string]bool{region}
			}
			res, err := Confirm(rctx, locked, cands, oracleFactory(), opts)
			outcomes[r] = regionOutcome{res, err}
			if err == nil && res.Confirmed {
				cancel() // cancel the other regions
			}
		}(r)
	}
	wg.Wait()

	out := &ParallelResult{Regions: regions}
	anyTimeout := false
	anyCapped := false
	var maxElapsed time.Duration
	for _, oc := range outcomes {
		if oc.err != nil {
			return nil, oc.err
		}
		out.TotalIterations += oc.res.Iterations
		out.TotalOracleQueries += oc.res.OracleQueries
		if oc.res.Confirmed && !out.Confirmed {
			out.Result = *oc.res
		}
		if oc.res.TimedOut {
			anyTimeout = true
		}
		if oc.res.IterCapped {
			anyCapped = true
		}
		if oc.res.Elapsed > maxElapsed {
			maxElapsed = oc.res.Elapsed
		}
	}
	// Assign after the winning region's Result copy, which would
	// otherwise clobber the running maximum with its own (possibly
	// shorter) region time.
	out.Elapsed = maxElapsed // wall-clock = slowest region
	if !out.Confirmed {
		// ⊥ only if every region genuinely exhausted its space; a
		// timed-out (or cancelled, or iteration-capped) region leaves
		// the verdict open.
		out.TimedOut = anyTimeout
		out.IterCapped = anyCapped
	}
	return out, nil
}
