package keyconfirm

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/satattack"
	"repro/internal/testcirc"
)

func lockTT(t *testing.T, nIn, gates, keySize int, seed int64) (*circuit.Circuit, *lock.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	orig := testcirc.Random(rng, nIn, gates)
	lr, err := lock.TTLock(orig, lock.Options{KeySize: keySize, Seed: seed + 1, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return orig, lr
}

func complementKey(key map[string]bool) map[string]bool {
	out := make(map[string]bool, len(key))
	for k, v := range key {
		out[k] = !v
	}
	return out
}

// testCtx returns a context bounding a confirmation test run.
func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestConfirmPicksCorrectAmongTwo(t *testing.T) {
	// The paper's canonical scenario: FALL shortlists the correct key and
	// its bitwise complement; confirmation must pick the correct one.
	orig, lr := lockTT(t, 14, 100, 12, 21)
	orc := oracle.NewSim(orig)
	cands := []map[string]bool{complementKey(lr.Key), lr.Key} // wrong first
	res, err := Confirm(testCtx(t, 30*time.Second), lr.Locked, cands, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("confirmation failed: %+v", res)
	}
	for k, v := range lr.Key {
		if res.Key[k] != v {
			t.Fatalf("confirmed wrong key bit %s", k)
		}
	}
	if err := oracle.CheckKey(lr.Locked, oracle.NewSim(orig), res.Key, 256, 3); err != nil {
		t.Errorf("confirmed key fails check: %v", err)
	}
}

func TestConfirmReturnsBottomForWrongGuesses(t *testing.T) {
	// Lemma 4's second clause: if no candidate is consistent with the
	// oracle, the algorithm must return ⊥, not a wrong key.
	orig, lr := lockTT(t, 12, 80, 10, 33)
	orc := oracle.NewSim(orig)
	w1 := complementKey(lr.Key)
	w2 := map[string]bool{}
	for k, v := range lr.Key {
		w2[k] = v
	}
	w2[lr.KeyNames[0]] = !w2[lr.KeyNames[0]]
	res, err := Confirm(testCtx(t, 30*time.Second), lr.Locked, []map[string]bool{w1, w2}, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed {
		t.Fatalf("confirmed a wrong key: %v", res.Key)
	}
	if res.TimedOut {
		t.Error("returned timeout instead of ⊥")
	}
}

func TestConfirmSingleCorrectCandidate(t *testing.T) {
	orig, lr := lockTT(t, 12, 80, 10, 45)
	orc := oracle.NewSim(orig)
	res, err := Confirm(testCtx(t, 30*time.Second), lr.Locked, []map[string]bool{lr.Key}, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("single correct candidate rejected: %+v", res)
	}
	t.Logf("confirmed in %d iterations, %d oracle queries", res.Iterations, res.OracleQueries)
}

func TestConfirmPureAlgorithm4SmallKey(t *testing.T) {
	// With DoubleDIP disabled this is the paper's Algorithm 4 verbatim;
	// keep the key space small so the single-copy loop converges.
	orig, lr := lockTT(t, 8, 60, 6, 51)
	orc := oracle.NewSim(orig)
	cands := []map[string]bool{complementKey(lr.Key), lr.Key}
	res, err := Confirm(testCtx(t, 60*time.Second), lr.Locked, cands, orc, Options{
		DisableDoubleDIP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("algorithm 4 failed: %+v", res)
	}
	for k, v := range lr.Key {
		if res.Key[k] != v {
			t.Fatalf("wrong key bit %s", k)
		}
	}
}

func TestConfirmPhiTrueDevolvesToSATAttack(t *testing.T) {
	// φ = true: key confirmation over the full key space equals the SAT
	// attack (paper §V). Use RLL, which the SAT attack defeats quickly.
	rng := rand.New(rand.NewSource(61))
	orig := testcirc.Random(rng, 8, 50)
	lr, err := lock.RandomXOR(orig, lock.Options{KeySize: 6, Seed: 8, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewSim(orig)
	res, err := Confirm(testCtx(t, 30*time.Second), lr.Locked, nil, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("φ=true confirmation failed: %+v", res)
	}
	if err := oracle.CheckKey(lr.Locked, oracle.NewSim(orig), res.Key, 256, 9); err != nil {
		t.Errorf("recovered key is wrong: %v", err)
	}
}

func TestConfirmBeatsSATAttackOnSFLL(t *testing.T) {
	// The Fig. 6 phenomenon at test scale: on a TTLock circuit with a
	// 2^16 key space, key confirmation with a correct hint finishes in a
	// handful of iterations while the SAT attack burns its iteration
	// budget.
	orig, lr := lockTT(t, 18, 120, 16, 71)
	orc1 := oracle.NewSim(orig)
	conf, err := Confirm(testCtx(t, 60*time.Second), lr.Locked,
		[]map[string]bool{lr.Key, complementKey(lr.Key)}, orc1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !conf.Confirmed {
		t.Fatalf("confirmation failed: %+v", conf)
	}
	orc2 := oracle.NewSim(orig)
	sa, err := satattack.Run(testCtx(t, 10*time.Second), lr.Locked, orc2, satattack.Options{MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Solved {
		t.Logf("SAT attack unexpectedly solved 2^16 TTLock in %d iterations", sa.Iterations)
	} else if conf.Iterations >= 200 {
		t.Errorf("key confirmation took %d iterations; expected far fewer than the SAT attack cap", conf.Iterations)
	}
	t.Logf("keyconfirm: %d iters / %v; satattack: solved=%v %d iters / %v",
		conf.Iterations, conf.Elapsed, sa.Solved, sa.Iterations, sa.Elapsed)
}

func TestConfirmCancelledContext(t *testing.T) {
	orig, lr := lockTT(t, 14, 100, 12, 81)
	orc := oracle.NewSim(orig)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled
	res, err := Confirm(ctx, lr.Locked, []map[string]bool{lr.Key}, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("cancelled context did not stop confirmation")
	}
}

func TestConfirmIterationCapReportsCappedNotTimeout(t *testing.T) {
	// An iteration cap is an effort bound, not wall-clock expiry: the
	// result must report IterCapped and leave TimedOut false, so
	// harnesses do not censor capped runs as timeouts.
	orig, lr := lockTT(t, 14, 100, 12, 51)
	orc := oracle.NewSim(orig)
	// φ = true over 2^12 keys with a 1-iteration budget cannot converge.
	res, err := Confirm(testCtx(t, 30*time.Second), lr.Locked, nil, orc, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confirmed {
		t.Fatalf("confirmed within 1 iteration on 2^12 key space: %+v", res)
	}
	if !res.IterCapped {
		t.Error("IterCapped not set after hitting MaxIterations")
	}
	if res.TimedOut {
		t.Error("iteration cap misreported as TimedOut")
	}
}

func TestConfirmNoKeysErrors(t *testing.T) {
	orig := testcirc.Fig2a()
	if _, err := Confirm(context.Background(), orig, nil, oracle.NewSim(orig), Options{}); err == nil {
		t.Error("circuit without keys accepted")
	}
}

func TestConfirmPartialCandidateBits(t *testing.T) {
	// Candidates may constrain only a subset of key bits; confirmation
	// searches the rest. Constrain all but two bits correctly.
	orig, lr := lockTT(t, 10, 70, 8, 91)
	orc := oracle.NewSim(orig)
	partial := map[string]bool{}
	for i, name := range lr.KeyNames {
		if i >= 2 {
			partial[name] = lr.Key[name]
		}
	}
	res, err := Confirm(testCtx(t, 60*time.Second), lr.Locked, []map[string]bool{partial}, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("partial candidate not completed: %+v", res)
	}
	if err := oracle.CheckKey(lr.Locked, oracle.NewSim(orig), res.Key, 512, 13); err != nil {
		t.Errorf("completed key is wrong: %v", err)
	}
}

func TestConfirmSFLLHD2(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	orig := testcirc.Random(rng, 14, 100)
	lr, err := lock.SFLLHD(orig, lock.Options{KeySize: 12, H: 2, Seed: 7, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewSim(orig)
	res, err := Confirm(testCtx(t, 60*time.Second), lr.Locked,
		[]map[string]bool{complementKey(lr.Key), lr.Key}, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("SFLL-HD2 confirmation failed: %+v", res)
	}
	for k, v := range lr.Key {
		if res.Key[k] != v {
			t.Fatalf("wrong bit %s", k)
		}
	}
}

func TestConfirmParallelPartitionedSATAttack(t *testing.T) {
	// §VI-D: the key confirmation attack parallelizes the SAT attack by
	// partitioning the key space via φ. With no candidate hints at all,
	// four regions of a 2^10 TTLock key space race; the region holding
	// the correct key confirms it and cancels the others.
	orig, lr := lockTT(t, 12, 80, 10, 111)
	res, err := ConfirmParallel(testCtx(t, 120*time.Second), lr.Locked, 2,
		func() oracle.Oracle { return oracle.NewSim(orig) }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatalf("parallel partitioned attack failed: %+v", res)
	}
	for k, v := range lr.Key {
		if res.Key[k] != v {
			t.Fatalf("wrong key bit %s", k)
		}
	}
	if res.Regions != 4 {
		t.Errorf("regions = %d, want 4", res.Regions)
	}
	t.Logf("parallel: %d regions, %d total iterations, %d oracle queries",
		res.Regions, res.TotalIterations, res.TotalOracleQueries)
}

func TestConfirmParallelBitsValidation(t *testing.T) {
	orig, lr := lockTT(t, 8, 60, 6, 121)
	if _, err := ConfirmParallel(context.Background(), lr.Locked, 99, func() oracle.Oracle { return oracle.NewSim(orig) }, Options{}); err == nil {
		t.Error("bits > keys accepted")
	}
	if _, err := ConfirmParallel(context.Background(), orig, 1, func() oracle.Oracle { return oracle.NewSim(orig) }, Options{}); err == nil {
		t.Error("keyless circuit accepted")
	}
}

func TestCancelMidRunStopsConfirm(t *testing.T) {
	// Cancellation from another goroutine mid-attack must stop the run
	// promptly with a TimedOut verdict (the φ=true full SAT attack on a
	// 2^14 key space would otherwise run far longer).
	orig, lr := lockTT(t, 16, 120, 14, 131)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Confirm(ctx, lr.Locked, nil, oracle.NewSim(orig), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Errorf("cancelled run returned %+v, want TimedOut", res)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
}
