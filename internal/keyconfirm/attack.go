package keyconfirm

import (
	"context"

	"repro/internal/attack"
)

// kcAttack adapts key confirmation to the unified attack API.
type kcAttack struct {
	opts Options
}

// New returns key confirmation as an attack.Attack. Target.Candidates is
// the φ shortlist (empty means φ = true, i.e. the full SAT attack) and
// Target.MaxIterations caps distinguishing-input queries when non-zero.
func New(opts Options) attack.Attack { return &kcAttack{opts: opts} }

func (k *kcAttack) Name() string      { return "keyconfirm" }
func (k *kcAttack) NeedsOracle() bool { return true }

func (k *kcAttack) Run(ctx context.Context, tgt attack.Target) (*attack.Result, error) {
	if err := attack.CheckTarget(k, tgt); err != nil {
		return nil, err
	}
	opts := k.opts
	if tgt.MaxIterations != 0 {
		opts.MaxIterations = tgt.MaxIterations
	}
	res, err := Confirm(ctx, tgt.Locked, tgt.Candidates, tgt.Oracle, opts)
	if err != nil {
		return nil, err
	}
	out := &attack.Result{
		Attack:        k.Name(),
		Iterations:    res.Iterations,
		OracleQueries: res.OracleQueries,
		Elapsed:       res.Elapsed,
		Details:       res,
	}
	switch {
	case res.Confirmed:
		out.Status = attack.StatusUniqueKey
		out.Keys = []attack.Key{res.Key}
	case res.TimedOut:
		out.Status = attack.StatusTimeout
	default:
		// ⊥: the candidate guess φ is provably wrong (Lemma 4).
		out.Status = attack.StatusRefuted
	}
	return out, nil
}

func init() { attack.Register(New(Options{})) }
