package keyconfirm

import (
	"context"
	"runtime"

	"repro/internal/attack"
	"repro/internal/oracle"
)

// kcAttack adapts key confirmation to the unified attack API.
type kcAttack struct {
	opts Options
}

// New returns key confirmation as an attack.Attack. Target.Candidates is
// the φ shortlist (empty means φ = true, i.e. the full SAT attack) and
// Target.MaxIterations caps distinguishing-input queries when non-zero.
// With φ = true, no iteration cap, an oracle implementing oracle.Forker
// and an effective Target.Workers above one, the run is partitioned
// across the key space per the paper's §VI-D sketch (ConfirmParallel);
// with an explicit shortlist the region constraints would conflict with
// φ, and with a cap the per-region budgets would overshoot the Target
// contract, so those runs stay single-threaded.
func New(opts Options) attack.Attack { return &kcAttack{opts: opts} }

func (k *kcAttack) Name() string      { return "keyconfirm" }
func (k *kcAttack) NeedsOracle() bool { return true }

func (k *kcAttack) Run(ctx context.Context, tgt attack.Target) (*attack.Result, error) {
	if err := attack.CheckTarget(k, tgt); err != nil {
		return nil, err
	}
	opts := k.opts
	if tgt.MaxIterations != 0 {
		opts.MaxIterations = tgt.MaxIterations
	}
	if tgt.Solver != nil {
		opts.Solver = tgt.Solver
	}
	workers := tgt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := &attack.Result{Attack: k.Name()}
	var res *Result
	// Partitioned mode would apply MaxIterations per region, letting the
	// total exceed the Target cap by the region count — capped runs stay
	// single-threaded to honor the contract.
	if f, ok := tgt.Oracle.(oracle.Forker); ok && workers > 1 && len(tgt.Candidates) == 0 && opts.MaxIterations <= 0 {
		bits := 0
		for 1<<uint(bits) < workers && bits < 16 {
			bits++
		}
		if nk := len(tgt.Locked.KeyInputs()); bits > nk {
			bits = nk
		}
		pres, err := ConfirmParallel(ctx, tgt.Locked, bits, f.Fork, opts)
		if err != nil {
			return nil, err
		}
		res = &pres.Result
		out.Iterations = pres.TotalIterations
		out.OracleQueries = pres.TotalOracleQueries
		out.Details = pres
	} else {
		var err error
		res, err = Confirm(ctx, tgt.Locked, tgt.Candidates, tgt.Oracle, opts)
		if err != nil {
			return nil, err
		}
		out.Iterations = res.Iterations
		out.OracleQueries = res.OracleQueries
		out.Details = res
	}
	out.Elapsed = res.Elapsed
	switch {
	case res.Confirmed:
		out.Status = attack.StatusUniqueKey
		out.Keys = []attack.Key{res.Key}
	case res.IterCapped:
		// An iteration cap is a search-effort bound, not wall-clock
		// expiry: the run completed its budget without a verdict.
		out.Status = attack.StatusInconclusive
	case res.TimedOut:
		out.Status = attack.StatusTimeout
	default:
		// ⊥: the candidate guess φ is provably wrong (Lemma 4).
		out.Status = attack.StatusRefuted
	}
	return out, nil
}

func init() { attack.Register(New(Options{})) }
