package attack

import (
	"fmt"
	"time"
)

// This file defines the stable serialized forms of attack results, used
// by campaign artifacts and the -json output of cmd/attack. Status
// round-trips through its String name so artifacts stay readable and
// independent of the enum's numeric values.

// ParseStatus inverts Status.String.
func ParseStatus(s string) (Status, error) {
	switch s {
	case "inconclusive":
		return StatusInconclusive, nil
	case "unique-key":
		return StatusUniqueKey, nil
	case "shortlist":
		return StatusShortlist, nil
	case "recovered":
		return StatusRecovered, nil
	case "refuted":
		return StatusRefuted, nil
	case "timeout":
		return StatusTimeout, nil
	}
	return StatusInconclusive, fmt.Errorf("attack: unknown status %q", s)
}

// MarshalText serializes the status as its String name.
func (s Status) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a status name produced by MarshalText.
func (s *Status) UnmarshalText(b []byte) error {
	v, err := ParseStatus(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ResultJSON is the stable machine-readable serialization of a Result.
// The recovered netlist, when present, is summarized by its gate count
// (netlists travel as BENCH files, not embedded in result JSON).
type ResultJSON struct {
	Attack         string        `json:"attack"`
	Status         Status        `json:"status"`
	Keys           []Key         `json:"keys,omitempty"`
	Iterations     int           `json:"iterations"`
	OracleQueries  int           `json:"oracle_queries"`
	ElapsedNS      time.Duration `json:"elapsed_ns"`
	RecoveredGates int           `json:"recovered_gates,omitempty"`
	// WallNS is the end-to-end wall clock of the whole run including
	// setup (circuit parsing, solver construction), where ElapsedNS is
	// attack time only. Set by cmd/attack -json and attackd artifacts so
	// CLI output and daemon artifacts carry the same fields.
	WallNS time.Duration `json:"wall_ns,omitempty"`
	// Engines lists the resolved solver engine labels the run raced
	// (SolverSetup.EngineLabels): ["internal"] for the default engine.
	Engines []string `json:"engines,omitempty"`
	// SolveNS is the cumulative wall time spent inside solver
	// Solve/SolveAssuming calls (SolverSetup.SolveTime) — the total a
	// trace's query spans reconcile against (`tracestat -reconcile`).
	// Zero (omitted) when the run used the built-in default engine
	// with no setup attached.
	SolveNS int64 `json:"solve_ns,omitempty"`
}

// JSON returns the serializable view of the result.
func (r *Result) JSON() ResultJSON {
	j := ResultJSON{
		Attack:        r.Attack,
		Status:        r.Status,
		Keys:          r.Keys,
		Iterations:    r.Iterations,
		OracleQueries: r.OracleQueries,
		ElapsedNS:     r.Elapsed,
	}
	if r.Recovered != nil {
		j.RecoveredGates = r.Recovered.NumGates()
	}
	return j
}
