package attack

import (
	"context"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sat"
	"repro/internal/sat/bddengine"
	"repro/internal/sat/procengine"
)

// This file is the construction point of the heterogeneous solver
// system: sat holds the spec grammar (pure data), the backend packages
// hold the engines, and SolverSetup — the only place that imports all
// of them — turns parsed specs into SolverFactory closures, shares win
// ledgers across every engine a run builds, and applies the adaptive
// drop rule that retires chronically losing engines mid-campaign.

// SolverSetup bundles a solver configuration into a SolverFactory, and
// — when racing — accumulates per-engine win statistics across every
// engine the factory builds. One setup typically spans one attack run
// (or one harness case), so its WinStats describe that run.
//
// Two construction paths exist. NewSolverSetup (Base + Portfolio) is
// the pre-heterogeneous form: N internal configurations derived by
// sat.PortfolioConfigs. NewSolverSetupEngines (Specs) races an explicit
// engine-spec list — internal configs, external DIMACS solvers, the
// BDD engine — parsed from the -solver/-portfolio grammar.
type SolverSetup struct {
	// Base is the engine configuration (the zero value is the baseline
	// CDCL configuration). Meaningful on the legacy path only.
	Base sat.Config
	// Portfolio is the number of racing engines per solver instance;
	// values below 2 select a single engine. Legacy path only.
	Portfolio int
	// Specs, when non-empty, is the heterogeneous engine list; it
	// overrides Base/Portfolio.
	Specs []sat.EngineSpec
	// AdaptAfter retires an engine spec from subsequently built
	// portfolios once it has raced this many times without a single win
	// while some other spec has won (0 = never retire). Dropping only
	// redistributes racing effort — every surviving engine decides the
	// same formulas — so verdicts are unaffected.
	AdaptAfter int64
	// Global, when non-nil, is a cross-run ledger (slots matching Specs)
	// that also accumulates every race and, when set, drives the
	// AdaptAfter decision — so losses observed in earlier cases of a
	// campaign shard retire an engine for later ones.
	Global *sat.Ledger
	// Memo, when non-nil, wraps every engine the factory builds in a
	// verdict-memoizing layer (sat.MemoEngine) sharing this cache, so
	// identical (prefix, delta, assumptions) queries — across cells,
	// iterations, or whole runs handing around the same cache — are
	// answered without solving. Hit/miss counters accumulate in the
	// setup (MemoStats).
	Memo *sat.Memo

	configs []sat.Config
	ledger  *sat.Ledger
	memoCtr sat.MemoCounters
	solveNS atomic.Int64

	// trace, when non-nil, is the fallback parent span for query spans
	// built by engines whose construction context carries no span of
	// its own, and the parent of the per-session spans emitted at
	// Close. Set once via TraceTo before the run starts.
	trace *obs.Span

	mu    sync.Mutex
	hosts map[int]*procengine.Host // persistent-session hosts by spec slot
}

// TraceTo attaches the setup to a tracing span: every engine the
// factory builds afterwards emits one child span per solver query
// (engine label, verdict, conflicts/decisions delta, memo hit/miss,
// cancellation cause), and Close emits one span per persistent
// session (cmd, spawn count, broken state). Queries whose build
// context carries a more specific span (a grid cell, a query family)
// parent there instead. Call before the run begins; nil-safe on both
// sides, and a setup never traced pays one nil check per solve.
func (s *SolverSetup) TraceTo(sp *obs.Span) {
	if s == nil || sp == nil {
		return
	}
	s.trace = sp
}

// NewSolverSetup derives the portfolio configs (sat.PortfolioConfigs)
// and win-stats ledger for the requested width — the legacy
// homogeneous path, byte-compatible with pre-heterogeneous artifacts.
func NewSolverSetup(base sat.Config, portfolio int) *SolverSetup {
	s := &SolverSetup{Base: base, Portfolio: portfolio}
	if portfolio >= 2 {
		s.configs = sat.PortfolioConfigs(base, portfolio)
		s.ledger = sat.NewLedger(s.configs)
	}
	return s
}

// NewSolverSetupEngines builds a setup racing the given engine specs
// (a single spec selects that engine without racing or accounting).
func NewSolverSetupEngines(specs []sat.EngineSpec) *SolverSetup {
	s := &SolverSetup{Specs: specs}
	if len(specs) >= 2 {
		s.ledger = sat.NewLedgerLabels(sat.EngineLabels(specs))
	}
	return s
}

// Check verifies the setup is runnable on this machine — every
// process-engine binary resolves on PATH. Entry points call it once so
// a missing solver fails fast instead of surfacing as a stream of
// Unknown verdicts.
func (s *SolverSetup) Check() error {
	if s == nil {
		return nil
	}
	for _, spec := range s.Specs {
		if spec.Kind == sat.EngineProcess {
			if _, err := exec.LookPath(spec.Cmd); err != nil {
				return fmt.Errorf("attack: solver %q not found: %w", spec.Cmd, err)
			}
		}
	}
	return nil
}

// buildEngine constructs one backend engine for the spec in slot, bound
// to ctx. Persistent process specs answer through a long-lived per-slot
// host session (one subprocess per slot per setup) instead of a
// per-query dump/respawn.
func (s *SolverSetup) buildEngine(ctx context.Context, slot int, spec sat.EngineSpec) sat.Engine {
	var e sat.Engine
	switch {
	case spec.Kind == sat.EngineProcess && spec.Persistent:
		e = procengine.NewPersistent(s.hostFor(slot, spec))
	case spec.Kind == sat.EngineProcess:
		e = procengine.New(spec.Cmd)
	case spec.Kind == sat.EngineBDD:
		e = bddengine.New(spec.MaxNodes)
	default:
		e = sat.NewWith(spec.Config)
	}
	if ctx != nil {
		e.SetContext(ctx)
	}
	return e
}

// hostFor returns (creating on first use) the persistent-session host
// for a spec slot.
func (s *SolverSetup) hostFor(slot int, spec sat.EngineSpec) *procengine.Host {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hosts == nil {
		s.hosts = make(map[int]*procengine.Host)
	}
	h, ok := s.hosts[slot]
	if !ok {
		h = procengine.NewHost(spec.Cmd)
		s.hosts[slot] = h
	}
	return h
}

// Hosts returns the persistent-session hosts created so far, keyed by
// spec slot (tests assert spawn counts through them).
func (s *SolverSetup) Hosts() map[int]*procengine.Host {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]*procengine.Host, len(s.hosts))
	for k, v := range s.hosts {
		out[k] = v
	}
	return out
}

// Close shuts down any persistent solver sessions the setup spawned,
// emitting one trace span per session when the setup is traced. Safe
// on a nil or session-less setup; engines already built fall back to
// one-shot solving if used afterwards.
func (s *SolverSetup) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for slot, h := range s.hosts {
		if s.trace != nil {
			sp := s.trace.Child("session",
				"slot", slot, "cmd", h.Cmd(), "spawns", h.Spawns(), "broken", h.Broken())
			sp.EndAfter(0)
		}
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.hosts = nil
	return first
}

// activeSlots returns the Specs indices still worth racing under the
// AdaptAfter rule, always at least one.
func (s *SolverSetup) activeSlots() []int {
	all := make([]int, len(s.Specs))
	for i := range all {
		all[i] = i
	}
	led := s.Global
	if led == nil {
		led = s.ledger
	}
	if s.AdaptAfter <= 0 || led == nil {
		return all
	}
	act := led.Active(s.AdaptAfter)
	keep := all[:0]
	for i, a := range act {
		if i < len(s.Specs) && a {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return all
	}
	return keep
}

// Factory returns the SolverFactory realizing the setup; a nil setup
// yields a nil factory (the default engine). The factory is safe for
// concurrent use: portfolios built by different workers share the
// setup's ledger, which is mutex-guarded.
func (s *SolverSetup) Factory() SolverFactory {
	if s == nil {
		return nil
	}
	if len(s.Specs) > 0 {
		return func(ctx context.Context) sat.Engine {
			active := s.activeSlots()
			if len(s.Specs) == 1 {
				return s.wrap(s.buildEngine(ctx, 0, s.Specs[0]), ctx)
			}
			engines := make([]sat.Engine, len(active))
			for i, slot := range active {
				engines[i] = s.buildEngine(ctx, slot, s.Specs[slot])
			}
			p := sat.NewEnginePortfolio(engines, s.ledger, s.Global)
			p.SetLedgerSlots(active)
			p.SetContext(ctx)
			return s.wrap(p, ctx)
		}
	}
	return func(ctx context.Context) sat.Engine {
		if s.Portfolio >= 2 {
			p := sat.NewPortfolio(s.configs, s.ledger)
			p.SetContext(ctx)
			return s.wrap(p, ctx)
		}
		e := sat.NewWith(s.Base)
		if ctx != nil {
			e.SetContext(ctx)
		}
		return s.wrap(e, ctx)
	}
}

// wrap layers the setup's cross-cutting engine middleware over a built
// engine: the shared verdict memo (when enabled), the solve-time
// accumulator, and — when a span reaches the build site via ctx or
// TraceTo — per-query trace emission. Verdicts and models are
// unchanged — the memo replays query history on misses so cached and
// uncached runs are state-identical, and the timer/tracer only
// observe.
func (s *SolverSetup) wrap(e sat.Engine, ctx context.Context) sat.Engine {
	if s.Memo != nil {
		me := sat.NewMemoEngine(s.Memo, &s.memoCtr, e)
		if ctx != nil {
			me.SetContext(ctx)
		}
		e = me
	}
	t := &timedEngine{inner: e, ns: &s.solveNS}
	if sp := s.traceParent(ctx); sp != nil {
		t.span = sp
		t.ctx = ctx
		t.label = s.Label()
		if t.label == "" {
			t.label = "internal"
		}
	}
	return t
}

// traceParent resolves the span new query spans parent under: the
// engine build context's span when present (grid cell, query family),
// else the setup-level TraceTo span, else nil (tracing off).
func (s *SolverSetup) traceParent(ctx context.Context) *obs.Span {
	if sp := obs.SpanFrom(ctx); sp != nil {
		return sp
	}
	return s.trace
}

// SolveTime returns the cumulative wall time engines built by this
// setup spent inside Solve/SolveAssuming — the solve share of an
// attack's runtime, as opposed to encoding and bookkeeping. Zero for a
// nil setup.
func (s *SolverSetup) SolveTime() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.solveNS.Load())
}

// MemoStats returns the setup's verdict-cache hit/miss counters; nil
// when memoization is off.
func (s *SolverSetup) MemoStats() *sat.MemoStats {
	if s == nil || s.Memo == nil {
		return nil
	}
	st := s.memoCtr.Snapshot()
	return &st
}

// timedEngine accumulates SolveAssuming wall time into the setup's
// counter and, when traced, emits one span per query. It forwards
// frozen-prefix priming so the engines below it keep their O(1)
// loading.
type timedEngine struct {
	inner sat.Engine
	ns    *atomic.Int64

	// span, when non-nil, parents a "query" span per solve; the extra
	// bookkeeping (Stats deltas, memo attribution) only runs then, so
	// the untraced path is one nil check.
	span  *obs.Span
	ctx   context.Context
	label string
}

func (t *timedEngine) NewVar() int                    { return t.inner.NewVar() }
func (t *timedEngine) NumVars() int                   { return t.inner.NumVars() }
func (t *timedEngine) AddClause(lits ...sat.Lit) bool { return t.inner.AddClause(lits...) }
func (t *timedEngine) Solve() sat.Status              { return t.SolveAssuming(nil) }

func (t *timedEngine) SolveAssuming(assumptions []sat.Lit) sat.Status {
	if t.span == nil {
		start := time.Now()
		st := t.inner.SolveAssuming(assumptions)
		t.ns.Add(int64(time.Since(start)))
		return st
	}
	return t.solveTraced(assumptions)
}

// solveTraced is the traced solve path: the span's dur_ns is set to
// exactly the timed window accumulated into the setup's solve
// counter, so tracestat's per-query total reconciles with the
// artifact's solve_ns to the nanosecond.
func (t *timedEngine) solveTraced(assumptions []sat.Lit) sat.Status {
	pre := t.inner.Stats()
	sp := t.span.Child("query", "engine", t.label, "assumptions", len(assumptions))
	start := time.Now()
	st := t.inner.SolveAssuming(assumptions)
	d := time.Since(start)
	t.ns.Add(int64(d))
	delta := t.inner.Stats().Sub(pre)
	sp.Set("verdict", st.String())
	if delta.Conflicts > 0 {
		sp.Set("conflicts", delta.Conflicts)
	}
	if delta.Decisions > 0 {
		sp.Set("decisions", delta.Decisions)
	}
	if me, ok := t.inner.(*sat.MemoEngine); ok {
		// Per-tier hit attribution: "memory", "disk", or "miss".
		sp.Set("memo", me.LastTier().String())
	}
	if st == sat.Unknown && t.ctx != nil && t.ctx.Err() != nil {
		sp.Set("cancel", t.ctx.Err().Error())
	}
	sp.EndAfter(d)
	return st
}

func (t *timedEngine) Value(v int) bool               { return t.inner.Value(v) }
func (t *timedEngine) LitTrue(l sat.Lit) bool         { return t.inner.LitTrue(l) }
func (t *timedEngine) SetContext(ctx context.Context) { t.inner.SetContext(ctx) }
func (t *timedEngine) Stats() sat.Stats               { return t.inner.Stats() }
func (t *timedEngine) LoadFrozen(f *sat.Frozen)       { sat.Prime(t.inner, f) }

var _ sat.FrozenLoader = (*timedEngine)(nil)

// unwrapEngine peels the setup's middleware layers off an engine built
// by Factory, exposing the underlying solver (e.g. for portfolio
// introspection in tests).
func unwrapEngine(e sat.Engine) sat.Engine {
	for {
		switch w := e.(type) {
		case *timedEngine:
			e = w.inner
		case *sat.MemoEngine:
			e = w.Inner()
		default:
			return e
		}
	}
}

// SolverSetupFromSpec resolves a legacy -solver/-portfolio flag pair:
// the spec is parsed with sat.ParseConfig, and both flags unset yield a
// nil setup (the attacks' built-in default engine).
func SolverSetupFromSpec(spec string, portfolio int) (*SolverSetup, error) {
	if spec == "" && portfolio < 2 {
		return nil, nil
	}
	cfg, err := sat.ParseConfig(spec)
	if err != nil {
		return nil, err
	}
	return NewSolverSetup(cfg, portfolio), nil
}

// SolverSetupFromFlags resolves the full -solver/-portfolio flag
// grammar (sat.ResolveSolverFlags): an integer -portfolio derives N
// internal variants of the -solver base config, an engine list races
// heterogeneous backends. Both flags unset (or width < 2 with a
// default solver) yield a nil setup: the attacks' built-in default
// engine, byte-identical to not passing the flags at all.
func SolverSetupFromFlags(solver, portfolio string) (*SolverSetup, error) {
	base, width, specs, err := sat.ResolveSolverFlags(solver, portfolio)
	if err != nil {
		return nil, err
	}
	if specs != nil {
		return NewSolverSetupEngines(specs), nil
	}
	if solver == "" && width < 2 {
		return nil, nil
	}
	return NewSolverSetup(base, width), nil
}

// EngineLabels returns the canonical label of every engine the setup
// resolves to, in racing order — ["internal"] for a nil setup or the
// all-default single engine, the per-variant config strings for a
// derived-width portfolio, the spec labels for a heterogeneous list.
// This is the "engines" field of ResultJSON and of attackd artifacts.
func (s *SolverSetup) EngineLabels() []string {
	if s == nil {
		return []string{"internal"}
	}
	if len(s.Specs) > 0 {
		return sat.EngineLabels(s.Specs)
	}
	if s.Portfolio >= 2 {
		labels := make([]string, len(s.configs))
		for i, c := range s.configs {
			labels[i] = c.String()
		}
		return labels
	}
	if lbl := s.Label(); lbl != "" {
		return []string{lbl}
	}
	return []string{"internal"}
}

// FprintStats writes one racing-statistics line per engine — the
// shared rendering of the CLIs' stderr reports.
func FprintStats(w io.Writer, stats []sat.ConfigStats) {
	for _, cs := range stats {
		fmt.Fprintf(w, "portfolio %-44s races %4d wins %4d (sat %d, unsat %d) conflicts %d\n",
			cs.Config, cs.Races, cs.Wins, cs.SatWins, cs.UnsatWins, cs.Conflicts)
	}
}

// FprintWinStats writes the setup's racing statistics (no-op for nil
// or non-racing setups).
func (s *SolverSetup) FprintWinStats(w io.Writer) {
	FprintStats(w, s.WinStats())
}

// WinStats returns the per-engine portfolio statistics accumulated so
// far; nil when the setup does not race (nothing to account).
func (s *SolverSetup) WinStats() []sat.ConfigStats {
	if s == nil || s.ledger == nil {
		return nil
	}
	return s.ledger.Snapshot()
}

// Label returns a human/artifact-readable description of the setup:
// "" for the all-default single engine (so serialized outcomes stay
// byte-identical to pre-portfolio ones), the engine spec for a single
// non-default engine, "portfolio(N) of <spec>" for derived-width
// racing, and "portfolio(<spec> | ...)" for heterogeneous racing.
func (s *SolverSetup) Label() string {
	if s == nil {
		return ""
	}
	if len(s.Specs) > 0 {
		if len(s.Specs) == 1 {
			return s.Specs[0].String()
		}
		return fmt.Sprintf("portfolio(%s)", strings.Join(sat.EngineLabels(s.Specs), " | "))
	}
	if s.Portfolio >= 2 {
		return fmt.Sprintf("portfolio(%d) of %s", s.Portfolio, s.Base.String())
	}
	if s.Base != (sat.Config{}) && s.Base != sat.DefaultConfig() {
		return s.Base.String()
	}
	return ""
}
