package attack

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sat"
)

// TestTimedEngineTraceCancelled: a traced solver query under a
// cancelled context still accumulates its wall into the setup's
// encode-vs-solve split, and the emitted query span carries the
// cancellation cause with a dur_ns equal to the timed window exactly.
func TestTimedEngineTraceCancelled(t *testing.T) {
	ring := obs.NewRing(16)
	root := obs.New(ring).Start("test")

	setup := &SolverSetup{}
	setup.TraceTo(root)
	ctx, cancel := context.WithCancel(context.Background())
	e := setup.Factory()(ctx)

	// Clause loading is encode time: the solve accumulator must not move.
	loadPigeonhole(e, 6, 5)
	if setup.SolveTime() != 0 {
		t.Fatalf("encoding counted as solve time: %v", setup.SolveTime())
	}

	cancel()
	if got := e.Solve(); got != sat.Unknown {
		t.Fatalf("cancelled solve: %v, want Unknown", got)
	}
	solve := setup.SolveTime()
	if solve <= 0 {
		t.Fatal("cancelled solve accumulated no wall time")
	}

	spans := ring.Snapshot()
	if len(spans) != 1 || spans[0].Name != "query" {
		t.Fatalf("spans: %+v", spans)
	}
	q := spans[0]
	if q.Parent != root.ID() {
		t.Errorf("query parented under %d, want root %d", q.Parent, root.ID())
	}
	if q.Attrs["verdict"] != "UNKNOWN" {
		t.Errorf("verdict attr: %v", q.Attrs["verdict"])
	}
	if q.Attrs["cancel"] != context.Canceled.Error() {
		t.Errorf("cancel attr: %v", q.Attrs["cancel"])
	}
	if q.Attrs["engine"] != "internal" {
		t.Errorf("engine attr: %v", q.Attrs["engine"])
	}
	// The span times exactly the window the solve accumulator saw —
	// the invariant tracestat -reconcile depends on.
	if q.DurNS != int64(solve) {
		t.Errorf("span dur %d != accumulated solve %d", q.DurNS, solve)
	}
}

// TestTimedEngineUntracedSplit: without a trace parent the timer still
// separates solve wall from encode wall, and no spans are emitted.
func TestTimedEngineUntracedSplit(t *testing.T) {
	setup := &SolverSetup{}
	e := setup.Factory()(context.Background())
	loadPigeonhole(e, 5, 4)
	if setup.SolveTime() != 0 {
		t.Fatal("encoding moved the solve accumulator")
	}
	start := time.Now()
	if got := e.Solve(); got != sat.Unsat {
		t.Fatalf("verdict: %v", got)
	}
	wall := time.Since(start)
	solve := setup.SolveTime()
	if solve <= 0 || solve > wall {
		t.Errorf("solve split %v outside (0, %v]", solve, wall)
	}
}
