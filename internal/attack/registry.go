package attack

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// The global registry. Attack packages register a default-configured
// instance from init(); importing repro/internal/attack/all (blank) pulls
// every built-in attack in.
var (
	regMu    sync.RWMutex
	registry = map[string]Attack{}
)

// Register adds an attack under its Name. It panics on an empty name or a
// duplicate registration — both are programming errors in an init().
func Register(a Attack) {
	name := a.Name()
	if name == "" {
		panic("attack: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("attack: duplicate registration of %q", name))
	}
	registry[name] = a
}

// Get returns the registered attack with the given name.
func Get(name string) (Attack, error) {
	regMu.RLock()
	a, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("attack: unknown attack %q (registered: %v)", name, Names())
	}
	return a, nil
}

// Names lists all registered attack names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run looks up name and runs it against the target — the one-liner for
// callers that need no attack-specific configuration.
func Run(ctx context.Context, name string, tgt Target) (*Result, error) {
	a, err := Get(name)
	if err != nil {
		return nil, err
	}
	return a.Run(ctx, tgt)
}
