// Package attack defines the unified attack engine API: one interface
// implemented by every attack in this repository (FALL, the SAT attack,
// SPS, Double DIP, key confirmation), a name-keyed registry, and the SAT
// plumbing those attacks share.
//
// An attack consumes a Target — the locked circuit plus the optional
// oracle, scheme parameters and budgets — and produces a Result with a
// machine-readable Status, so harnesses, CLIs and future schemes can be
// wired once against this package instead of once per attack:
//
//	atk, err := attack.Get("fall")
//	...
//	res, err := atk.Run(ctx, attack.Target{Locked: locked, H: 2})
//
// Cancellation and time budgets flow exclusively through the
// context.Context: wrap the context with context.WithTimeout to bound an
// attack, or cancel it to stop one mid-run. Attacks observe cancellation
// between SAT queries (and inside long solver calls, see
// sat.Solver.SetContext) and return promptly with a partial Result whose
// Status is StatusTimeout.
package attack

import (
	"context"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/oracle"
)

// Key is a key assignment: key-input name -> value.
type Key = map[string]bool

// Target bundles everything an attack may consume. Locked is mandatory;
// the remaining fields are consulted only by attacks they apply to.
type Target struct {
	// Locked is the locked netlist under attack. Key inputs must be
	// marked (circuit.Node.IsKey).
	Locked *circuit.Circuit
	// Oracle grants I/O access to the activated chip. Required by
	// oracle-guided attacks (NeedsOracle() == true), ignored by
	// oracle-less ones.
	Oracle oracle.Oracle
	// H is the Hamming-distance parameter of the locking scheme, known
	// to the adversary (paper §II-A). Zero for TTLock/point functions.
	H int
	// Seed drives any randomized component (sampling, tie-breaking).
	Seed int64
	// Candidates are key guesses for confirmation-style attacks (the φ
	// predicate of paper §V). Empty means φ = true.
	Candidates []Key
	// MaxIterations bounds distinguishing-input iterations for iterative
	// attacks; 0 means unlimited. Wall-clock budgets are expressed via
	// the context instead.
	MaxIterations int
	// Workers bounds intra-attack parallelism for attacks that fan work
	// out internally (the FALL candidate×polarity grid, partitioned key
	// confirmation). 0 means runtime.GOMAXPROCS(0); 1 forces serial
	// execution. Attacks whose algorithm is inherently sequential (the
	// SAT attack's distinguishing-input loop) ignore it.
	Workers int
	// Solver builds the SAT engine behind every solver instance the
	// attack creates. nil selects a single default-configured engine;
	// (*SolverSetup).Factory yields configured engines or per-query
	// portfolio racing with win accounting. Attacks that use no SAT
	// solving (SPS) ignore it.
	Solver SolverFactory
}

// Status is the machine-readable outcome of an attack run.
type Status int

const (
	// StatusInconclusive: the attack completed but established nothing
	// (e.g. no candidate survived the functional analyses).
	StatusInconclusive Status = iota
	// StatusUniqueKey: exactly one key was determined (proved unique or
	// confirmed against the oracle).
	StatusUniqueKey
	// StatusShortlist: more than one suspected key survived; run key
	// confirmation to pick the correct one. Also reported for
	// approximate keys with bounded residual error.
	StatusShortlist
	// StatusRecovered: the protected function was recovered without a
	// key (removal attacks); see Result.Recovered.
	StatusRecovered
	// StatusRefuted: the attack proved its hypothesis wrong (key
	// confirmation's ⊥: no candidate is consistent with the oracle).
	StatusRefuted
	// StatusTimeout: the context was cancelled or an iteration budget
	// exhausted before a verdict; the Result may be partial.
	StatusTimeout
)

func (s Status) String() string {
	switch s {
	case StatusUniqueKey:
		return "unique-key"
	case StatusShortlist:
		return "shortlist"
	case StatusRecovered:
		return "recovered"
	case StatusRefuted:
		return "refuted"
	case StatusTimeout:
		return "timeout"
	default:
		return "inconclusive"
	}
}

// Result is the unified outcome of an attack run.
type Result struct {
	// Attack is the registry name of the attack that produced this.
	Attack string
	// Status classifies the outcome.
	Status Status
	// Keys holds the candidate key(s): exactly one for StatusUniqueKey,
	// several for StatusShortlist. A StatusTimeout result may carry the
	// partial shortlist accumulated before the budget expired.
	Keys []Key
	// Recovered is the bypassed netlist produced by removal attacks
	// (StatusRecovered); nil for key-recovery attacks.
	Recovered *circuit.Circuit
	// Iterations counts attack iterations (distinguishing inputs for
	// oracle-guided attacks, analysis rounds otherwise).
	Iterations int
	// OracleQueries counts oracle calls made during the run.
	OracleQueries int
	// Elapsed is the wall-clock attack time.
	Elapsed time.Duration
	// Details exposes the attack-specific result (e.g. *fall.Result)
	// for callers that need per-stage data beyond the unified fields.
	Details any
}

// UniqueKey reports whether the run determined exactly one key.
func (r *Result) UniqueKey() bool { return r.Status == StatusUniqueKey && len(r.Keys) == 1 }

// Attack is the single interface every attack implements. Run must honor
// ctx cancellation: once ctx is done the attack returns promptly with a
// partial Result (Status StatusTimeout) rather than blocking.
type Attack interface {
	// Name is the registry key, e.g. "fall" or "sat".
	Name() string
	// NeedsOracle reports whether Run requires Target.Oracle.
	NeedsOracle() bool
	// Run executes the attack against the target.
	Run(ctx context.Context, tgt Target) (*Result, error)
}

// CheckTarget validates tgt for attack a; implementations call it at the
// top of Run.
func CheckTarget(a Attack, tgt Target) error {
	if tgt.Locked == nil {
		return fmt.Errorf("attack %s: no locked circuit in target", a.Name())
	}
	if a.NeedsOracle() && tgt.Oracle == nil {
		return fmt.Errorf("attack %s: oracle-guided attack needs Target.Oracle", a.Name())
	}
	return nil
}

// KeysEqual reports whether two key assignments are identical.
func KeysEqual(a, b Key) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
