package attack

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sat"
)

func TestSolverSetupFromFlags(t *testing.T) {
	// Both unset: nil setup (the default engine).
	s, err := SolverSetupFromFlags("", "")
	if err != nil || s != nil {
		t.Fatalf("unset flags: %+v, %v", s, err)
	}
	// Legacy integer width over an internal base.
	s, err = SolverSetupFromFlags("seed=3,restart=geometric", "3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Portfolio != 3 || s.Base.Seed != 3 || len(s.Specs) != 0 {
		t.Errorf("legacy form: %+v", s)
	}
	if !strings.HasPrefix(s.Label(), "portfolio(3) of ") {
		t.Errorf("legacy label: %q", s.Label())
	}
	// "0"/"1" widths with a default solver collapse to nil too.
	if s, err = SolverSetupFromFlags("", "1"); err != nil || s != nil {
		t.Errorf("width 1, default solver: %+v, %v", s, err)
	}
	// Single non-internal engine via -solver.
	s, err = SolverSetupFromFlags("bdd:max-nodes=4096", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Specs) != 1 || s.Specs[0].Kind != sat.EngineBDD || s.Label() != "bdd:max-nodes=4096" {
		t.Errorf("bdd solver: %+v label %q", s, s.Label())
	}
	if s.WinStats() != nil {
		t.Error("single engine must not account")
	}
	// Heterogeneous list; bare internal inherits the -solver base.
	s, err = SolverSetupFromFlags("seed=5", "internal,bdd")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Specs) != 2 || s.Specs[0].Config.Seed != 5 || s.Specs[1].Kind != sat.EngineBDD {
		t.Errorf("list form: %+v", s.Specs)
	}
	if !strings.HasPrefix(s.Label(), "portfolio(") || !strings.Contains(s.Label(), "bdd") {
		t.Errorf("list label: %q", s.Label())
	}
	// Errors: deriving variants of an external engine, non-internal base
	// with a list, bad grammar.
	for _, bad := range [][2]string{
		{"kissat", "3"},
		{"kissat", "internal,bdd"},
		{"frobnicate=1", ""},
		{"", "internal,frobnicate=1"},
		{"", "internal,bdd:nodes=x"},
		{"", "internal,internal"},
	} {
		if s, err := SolverSetupFromFlags(bad[0], bad[1]); err == nil {
			t.Errorf("flags %q/%q accepted: %+v", bad[0], bad[1], s)
		}
	}
}

func TestSolverSetupCheck(t *testing.T) {
	var nilSetup *SolverSetup
	if err := nilSetup.Check(); err != nil {
		t.Errorf("nil setup: %v", err)
	}
	ok := NewSolverSetupEngines([]sat.EngineSpec{sat.InternalSpec(sat.Config{}), {Kind: sat.EngineBDD}})
	if err := ok.Check(); err != nil {
		t.Errorf("no process engines: %v", err)
	}
	missing := NewSolverSetupEngines([]sat.EngineSpec{{Kind: sat.EngineProcess, Cmd: "definitely-not-a-sat-solver-7f3a"}})
	if err := missing.Check(); err == nil {
		t.Error("missing binary not reported")
	}
}

// loadPigeonhole fills an engine with an UNSAT pigeonhole instance.
func loadPigeonhole(e sat.Engine, p, h int) {
	v := make([][]int, p)
	for i := range v {
		v[i] = make([]int, h)
		for j := range v[i] {
			v[i][j] = e.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		lits := make([]sat.Lit, h)
		for j := 0; j < h; j++ {
			lits[j] = sat.PosLit(v[i][j])
		}
		e.AddClause(lits...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				e.AddClause(sat.NegLit(v[i1][j]), sat.NegLit(v[i2][j]))
			}
		}
	}
}

// TestHeterogeneousFactoryVerdicts: a specs-path factory builds racing
// portfolios whose verdicts match the internal engine, and accounts
// races into the setup ledger under spec labels.
func TestHeterogeneousFactoryVerdicts(t *testing.T) {
	setup := NewSolverSetupEngines([]sat.EngineSpec{
		sat.InternalSpec(sat.Config{}),
		{Kind: sat.EngineBDD, MaxNodes: 1 << 18},
	})
	f := setup.Factory()
	e := f(context.Background())
	loadPigeonhole(e, 5, 4)
	if got := e.Solve(); got != sat.Unsat {
		t.Fatalf("verdict %v, want UNSAT", got)
	}
	stats := setup.WinStats()
	if len(stats) != 2 || stats[0].Config != "seed=0" || stats[1].Config != "bdd:max-nodes=262144" {
		t.Fatalf("stats labels: %+v", stats)
	}
	if stats[0].Races+stats[1].Races == 0 || stats[0].Wins+stats[1].Wins != 1 {
		t.Errorf("accounting: %+v", stats)
	}
}

// TestAdaptiveDrop: an engine that keeps losing is retired from newly
// built portfolios after AdaptAfter races, and its ledger slot stays in
// the stats (frozen), so the drop is visible in artifacts.
func TestAdaptiveDrop(t *testing.T) {
	setup := NewSolverSetupEngines([]sat.EngineSpec{
		sat.InternalSpec(sat.Config{}),
		{Kind: sat.EngineBDD, MaxNodes: 8}, // blows up instantly: never wins
	})
	setup.AdaptAfter = 2
	f := setup.Factory()
	for i := 0; i < 3; i++ {
		e := f(context.Background())
		p, ok := unwrapEngine(e).(*sat.Portfolio)
		if !ok {
			t.Fatalf("round %d: factory built %T, want *sat.Portfolio", i, unwrapEngine(e))
		}
		if i < 2 && p.Size() != 2 {
			t.Fatalf("round %d: portfolio size %d, want 2", i, p.Size())
		}
		if i == 2 && p.Size() != 1 {
			t.Fatalf("after %d losses the bdd engine must be dropped; size %d", i, p.Size())
		}
		loadPigeonhole(e, 5, 4)
		if got := e.Solve(); got != sat.Unsat {
			t.Fatalf("round %d: verdict %v", i, got)
		}
	}
	stats := setup.WinStats()
	if stats[1].Races != 2 || stats[1].Wins != 0 {
		t.Errorf("dropped engine's slot: %+v", stats[1])
	}
	if stats[0].Races != 3 || stats[0].Wins != 3 {
		t.Errorf("surviving engine's slot: %+v", stats[0])
	}
}

// TestGlobalLedgerDrivesDrop: with a Global ledger attached, losses
// recorded by one setup retire the engine in a different setup sharing
// the ledger — the cross-case campaign mechanism.
func TestGlobalLedgerDrivesDrop(t *testing.T) {
	specs := []sat.EngineSpec{
		sat.InternalSpec(sat.Config{}),
		{Kind: sat.EngineBDD, MaxNodes: 8},
	}
	global := sat.NewLedgerLabels(sat.EngineLabels(specs))

	first := NewSolverSetupEngines(specs)
	first.AdaptAfter, first.Global = 2, global
	f := first.Factory()
	for i := 0; i < 2; i++ {
		e := f(context.Background())
		loadPigeonhole(e, 5, 4)
		if got := e.Solve(); got != sat.Unsat {
			t.Fatalf("warm-up %d: %v", i, got)
		}
	}

	second := NewSolverSetupEngines(specs)
	second.AdaptAfter, second.Global = 2, global
	e := second.Factory()(context.Background())
	p, ok := unwrapEngine(e).(*sat.Portfolio)
	if !ok {
		t.Fatalf("fresh setup built %T, want *sat.Portfolio", unwrapEngine(e))
	}
	if p.Size() != 1 {
		t.Fatalf("fresh setup still races the chronic loser: size %d", p.Size())
	}
	// The fresh setup's own per-run stats start clean.
	for _, cs := range second.WinStats() {
		if cs.Races != 0 {
			t.Errorf("fresh per-run ledger pre-seeded: %+v", cs)
		}
	}
}
