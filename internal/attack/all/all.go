// Package all registers every built-in attack with the attack registry.
// Import it for side effects wherever the full attack suite should be
// available by name:
//
//	import _ "repro/internal/attack/all"
package all

import (
	_ "repro/internal/doubledip"
	_ "repro/internal/fall"
	_ "repro/internal/keyconfirm"
	_ "repro/internal/satattack"
	_ "repro/internal/sps"
)
