package attack

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// KeyEquivalent reports whether the locked circuit under the given key is
// input/output-equivalent to the original circuit, decided exactly by a
// SAT miter: both circuits are encoded over shared primary inputs with
// the key inputs fixed to key, and the miter asks for an input on which
// some output pair differs. UNSAT means the key unlocks the circuit.
//
// This is the scoring criterion argued for by Hu et al. 2024 ("On the
// One-Key Premise of Logic Locking"): a recovered key distinct from the
// planted one may still be correct, and a key that merely matches some
// planted bits may not be — membership in the planted-key set is neither
// necessary nor sufficient. Harnesses should score "solved" with this
// check and report planted-key membership separately.
//
// An error is returned when the verdict is undecided (the context was
// cancelled mid-solve) or the circuits cannot be aligned; callers must
// not treat an error as "not equivalent".
func KeyEquivalent(ctx context.Context, locked, original *circuit.Circuit, key Key) (bool, error) {
	return KeyEquivalentWith(ctx, nil, locked, original, key)
}

// KeyEquivalentWith is KeyEquivalent with the miter built on the given
// solver factory (nil = default single engine): the miter's UNSAT proof
// is exactly the query class portfolio racing targets, so harnesses
// score shortlists through the same factory their attacks ran with.
func KeyEquivalentWith(ctx context.Context, f SolverFactory, locked, original *circuit.Circuit, key Key) (bool, error) {
	if locked == nil || original == nil {
		return false, fmt.Errorf("attack: KeyEquivalent needs both circuits")
	}
	s := NewEngine(ctx, f)
	e := cnf.NewEncoder(s)

	// Locked copy with key inputs fixed to the candidate key.
	given := make(map[int]sat.Lit)
	for _, k := range locked.KeyInputs() {
		name := locked.Nodes[k].Name
		v, ok := key[name]
		if !ok {
			return false, fmt.Errorf("attack: candidate key missing bit %q", name)
		}
		given[k] = e.ConstLit(v)
	}
	lockedLits := e.EncodeCircuitWith(locked, given)

	// Original copy sharing the locked copy's primary inputs by name.
	piByName := make(map[string]int)
	for _, pi := range locked.PrimaryInputs() {
		piByName[locked.Nodes[pi].Name] = pi
	}
	givenOrig := make(map[int]sat.Lit)
	for _, pi := range original.PrimaryInputs() {
		if id, ok := piByName[original.Nodes[pi].Name]; ok {
			givenOrig[pi] = lockedLits[id]
		}
	}
	origLits := e.EncodeCircuitWith(original, givenOrig)

	// Align outputs by name (positional fallback for optimizer renames),
	// reusing the oracle alignment logic over a simulated original.
	outIdx, err := OutputIndex(locked, oracle.NewSim(original))
	if err != nil {
		return false, err
	}
	lockedOuts := cnf.EncodedOutputs(locked, lockedLits)
	origOuts := cnf.EncodedOutputs(original, origLits)
	aligned := make([]sat.Lit, len(lockedOuts))
	for i := range lockedOuts {
		if outIdx[i] >= len(origOuts) {
			return false, fmt.Errorf("attack: output %d maps past original outputs", i)
		}
		aligned[i] = origOuts[outIdx[i]]
	}
	e.NotEqual(lockedOuts, aligned)

	switch s.Solve() {
	case sat.Unsat:
		return true, nil
	case sat.Sat:
		return false, nil
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return false, fmt.Errorf("attack: equivalence miter undecided")
}
