package attack

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// ReadKeyFile parses a candidate key file of name=0/1 lines (the format
// written by cmd/lockgen's -keyout and accepted as φ candidates by the
// confirmation CLIs). Blank lines and #-comments are ignored.
func ReadKeyFile(path string) (Key, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	key := make(Key)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: expected name=0/1, got %q", path, line, text)
		}
		name := strings.TrimSpace(parts[0])
		switch strings.TrimSpace(parts[1]) {
		case "0":
			key[name] = false
		case "1":
			key[name] = true
		default:
			return nil, fmt.Errorf("%s:%d: bad key bit %q", path, line, parts[1])
		}
	}
	return key, sc.Err()
}
