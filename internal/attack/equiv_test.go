package attack_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/lock"
	"repro/internal/testcirc"
)

func TestKeyEquivalent(t *testing.T) {
	orig := testcirc.Fig2a()
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 7, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	eq, err := attack.KeyEquivalent(ctx, lr.Locked, orig, lr.Key)
	if err != nil {
		t.Fatalf("planted key: %v", err)
	}
	if !eq {
		t.Error("planted key reported not equivalent")
	}

	// Flipping one key bit of a TTLock instance corrupts the protected
	// cube: the miter must find a distinguishing input.
	wrong := map[string]bool{}
	for k, v := range lr.Key {
		wrong[k] = v
	}
	for k := range wrong {
		wrong[k] = !wrong[k]
		break
	}
	eq, err = attack.KeyEquivalent(ctx, lr.Locked, orig, wrong)
	if err != nil {
		t.Fatalf("wrong key: %v", err)
	}
	if eq {
		t.Error("wrong key reported equivalent")
	}

	// Missing key bits are an error, not a verdict.
	if _, err := attack.KeyEquivalent(ctx, lr.Locked, orig, attack.Key{}); err == nil {
		t.Error("empty key accepted")
	}

	// A cancelled context yields an error, never a silent verdict.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := attack.KeyEquivalent(cctx, lr.Locked, orig, lr.Key); err == nil {
		t.Error("cancelled context produced a verdict")
	}
}

func TestStatusTextRoundTrip(t *testing.T) {
	for _, s := range []attack.Status{
		attack.StatusInconclusive, attack.StatusUniqueKey, attack.StatusShortlist,
		attack.StatusRecovered, attack.StatusRefuted, attack.StatusTimeout,
	} {
		got, err := attack.ParseStatus(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStatus(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := attack.ParseStatus("solvedish"); err == nil {
		t.Error("ParseStatus accepted junk")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	res := &attack.Result{
		Attack:        "fall",
		Status:        attack.StatusShortlist,
		Keys:          []attack.Key{{"keyinput0": true, "keyinput1": false}},
		Iterations:    3,
		OracleQueries: 2,
		Elapsed:       1500 * time.Millisecond,
	}
	data, err := json.Marshal(res.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var back attack.ResultJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Status != attack.StatusShortlist {
		t.Errorf("status round-tripped to %v", back.Status)
	}
	if back.ElapsedNS != res.Elapsed {
		t.Errorf("elapsed round-tripped to %v", back.ElapsedNS)
	}
	if len(back.Keys) != 1 || !back.Keys[0]["keyinput0"] || back.Keys[0]["keyinput1"] {
		t.Errorf("keys round-tripped to %v", back.Keys)
	}
}
