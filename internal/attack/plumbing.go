package attack

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// ForEachIndexed runs fn(0), ..., fn(n-1) on a pool of at most workers
// goroutines; workers <= 1 degenerates to a plain serial loop. fn writes
// its result into caller-owned slices at its index, so output order
// never depends on scheduling. Returning false from fn stops further
// indices from being dispatched (in-flight calls complete) — the
// deterministic analogue of breaking a serial loop: indices are
// dispatched in increasing order, so every skipped index is larger than
// every dispatched one.
func ForEachIndexed(workers, n int, fn func(i int) bool) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if !fn(i) {
				return
			}
		}
		return
	}
	var stop atomic.Bool
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if !fn(i) {
					stop.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !stop.Load(); i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
}

// This file holds the SAT plumbing shared by every oracle-guided attack
// (SAT attack, Double DIP, key confirmation) and by the FALL analyses:
// solver-engine construction (single or portfolio, via SolverFactory),
// I/O constraint replay, and the locked-circuit/oracle output alignment.

// SolverFactory builds the SAT engine an attack uses for one solver
// instance (one miter, one analysis cell, one extraction solver), bound
// to the given context. Attacks that fan out internally call the
// factory once per worker-owned solver, so factories must be safe for
// concurrent use. A nil factory everywhere means "one default-configured
// engine" (NewSolver).
type SolverFactory func(ctx context.Context) sat.Engine

// NewSolver returns a fresh default-configured SAT solver bound to ctx:
// the solver returns Unknown once ctx is cancelled or its deadline
// passes. It is the engine a nil SolverFactory denotes.
func NewSolver(ctx context.Context) *sat.Solver {
	s := sat.New()
	if ctx != nil {
		s.SetContext(ctx)
	}
	return s
}

// NewEngine resolves a possibly-nil factory into an engine bound to
// ctx. Every solver construction site in the attacks goes through this,
// so swapping Target.Solver swaps the engine for the entire attack.
func NewEngine(ctx context.Context, f SolverFactory) sat.Engine {
	if f == nil {
		return NewSolver(ctx)
	}
	return f(ctx)
}

// NewEngineOn builds an engine through NewEngine and primes it with a
// frozen clause-stream prefix (sat.Prime; a nil frozen is a no-op).
// Priming is O(1) for sat.FrozenLoader engines — persistent process
// sessions, the memo engine, portfolios of either — and an exact
// replay otherwise, so the primed engine is state-identical to one
// that encoded the prefix directly.
func NewEngineOn(ctx context.Context, f SolverFactory, frozen *sat.Frozen) sat.Engine {
	e := NewEngine(ctx, f)
	sat.Prime(e, frozen)
	return e
}

// KeyGiven maps key-input node ids to their encoded literals, in the form
// EncodeCircuitWith expects for tying a circuit copy to existing key
// variables.
func KeyGiven(keys []int, lits []sat.Lit) map[int]sat.Lit {
	m := make(map[int]sat.Lit, len(keys))
	for i, k := range keys {
		m[k] = lits[i]
	}
	return m
}

// AddIOConstraint encodes a fresh copy of the locked circuit with primary
// inputs fixed to xd, key inputs tied to the given key literals, and
// outputs fixed to the oracle response yd (aligned through outIdx).
func AddIOConstraint(e *cnf.Encoder, locked *circuit.Circuit, xd map[string]bool, yd []bool, outIdx []int, keyLits map[int]sat.Lit) {
	given := make(map[int]sat.Lit, len(xd)+len(keyLits))
	for k, v := range keyLits {
		given[k] = v
	}
	for _, pi := range locked.PrimaryInputs() {
		given[pi] = e.ConstLit(xd[locked.Nodes[pi].Name])
	}
	lits := e.EncodeCircuitWith(locked, given)
	for i, o := range locked.Outputs {
		e.Fix(lits[o], yd[outIdx[i]])
	}
}

// OutputIndex maps locked-circuit output positions to oracle output
// positions by name.
func OutputIndex(locked *circuit.Circuit, orc oracle.Oracle) ([]int, error) {
	names := orc.OutputNames()
	byName := make(map[string]int, len(names))
	for i, n := range names {
		byName[n] = i
	}
	idx := make([]int, len(locked.Outputs))
	for i, o := range locked.Outputs {
		n := locked.Nodes[o].Name
		j, ok := byName[n]
		if !ok {
			// Outputs may have been renamed by optimization shims
			// (e.g. "_out" suffix); fall back to positional mapping.
			if i < len(names) {
				j = i
			} else {
				return nil, fmt.Errorf("attack: output %q not known to oracle", n)
			}
		}
		idx[i] = j
	}
	return idx, nil
}

// LitWithValue returns l when v is true and its complement otherwise.
func LitWithValue(l sat.Lit, v bool) sat.Lit {
	if v {
		return l
	}
	return l.Neg()
}

// ModelInput extracts the primary-input assignment of the engine's last
// model as a named pattern, ready for an oracle query.
func ModelInput(locked *circuit.Circuit, s sat.Engine, piLits []sat.Lit) map[string]bool {
	pis := locked.PrimaryInputs()
	xd := make(map[string]bool, len(pis))
	for i, pi := range pis {
		xd[locked.Nodes[pi].Name] = s.LitTrue(piLits[i])
	}
	return xd
}
