package attack

import (
	"fmt"
	"io"

	"repro/internal/sat"
)

// This file is the CLI-facing glue for the two-tier verdict memo:
// every attack command exposes the same trio of flags (-memo,
// -memo-dir, -memo-max-bytes) and prints the same stderr summary, so
// the flag→cache construction and the summary formatting live here
// instead of being repeated per command.

// NewMemoFromFlags builds the verdict memo the standard CLI flags
// describe: nil when caching is off, memory-only under -memo, and
// two-tier (memory + persistent on-disk store at dir) when -memo-dir
// is set — a non-empty dir implies -memo. maxBytes caps the disk
// store (<= 0 means sat.DefaultDiskMemoBytes).
func NewMemoFromFlags(enabled bool, dir string, maxBytes int64) (*sat.Memo, error) {
	if !enabled && dir == "" {
		return nil, nil
	}
	m := sat.NewMemo(sat.DefaultMemoEntries)
	if dir != "" {
		d, err := sat.OpenDiskMemo(dir, maxBytes)
		if err != nil {
			return nil, err
		}
		m.AttachDisk(d)
	}
	return m, nil
}

// FprintMemoSummary writes the shared stderr memo summary: one line of
// per-tier hit/miss accounting (entries < 0 hides the in-memory entry
// count for per-run stats that don't own the cache), plus — when the
// memo carries a disk tier — one line of on-disk store accounting.
// Stats are passed explicitly rather than read from memo so callers
// can print per-run counters against a shared cache.
func FprintMemoSummary(w io.Writer, memo *sat.Memo, st sat.MemoStats, entries int) {
	line := fmt.Sprintf("memo: %d hits / %d misses", st.Hits, st.Misses)
	if st.DiskHits > 0 || (memo != nil && memo.Disk() != nil) {
		line = fmt.Sprintf("memo: %d memory hits / %d disk hits / %d misses",
			st.Hits, st.DiskHits, st.Misses)
	}
	if t := st.Total(); t > 0 {
		line += fmt.Sprintf(" (%.1f%% hit rate", 100*float64(st.Hits+st.DiskHits)/float64(t))
		if entries >= 0 {
			line += fmt.Sprintf(", %d entries", entries)
		}
		line += ")"
	}
	if st.Capped > 0 {
		line += fmt.Sprintf(", %d capped", st.Capped)
	}
	fmt.Fprintln(w, line)
	if memo != nil {
		if disk := memo.Disk(); disk != nil {
			ds := disk.Stats()
			fmt.Fprintf(w, "memo disk: %s: %d records / %d bytes (%d writes, %d evicted, %d corrupt)\n",
				disk.Dir(), ds.Entries, ds.Bytes, ds.Writes, ds.Evictions, ds.Corrupt)
		}
	}
}
