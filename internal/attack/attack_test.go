package attack_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	_ "repro/internal/attack/all"
	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/testcirc"
)

func TestRegistryHasAllBuiltins(t *testing.T) {
	want := []string{"doubledip", "fall", "keyconfirm", "sat", "sps"}
	got := attack.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (sorted)", got, want)
		}
	}
	for _, n := range want {
		a, err := attack.Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if a.Name() != n {
			t.Errorf("Get(%q).Name() = %q", n, a.Name())
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := attack.Get("no-such-attack"); err == nil {
		t.Fatal("Get of unknown attack succeeded")
	} else if !strings.Contains(err.Error(), "no-such-attack") {
		t.Errorf("error %q does not name the missing attack", err)
	}
	if _, err := attack.Run(context.Background(), "no-such-attack", attack.Target{}); err == nil {
		t.Fatal("Run of unknown attack succeeded")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	a, err := attack.Get("fall")
	if err != nil {
		t.Fatal(err)
	}
	attack.Register(a)
}

func TestOracleRequiredValidation(t *testing.T) {
	orig := testcirc.Fig2a()
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 7, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range attack.Names() {
		a, err := attack.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if !a.NeedsOracle() {
			continue
		}
		if _, err := a.Run(context.Background(), attack.Target{Locked: lr.Locked}); err == nil {
			t.Errorf("%s: Run without oracle succeeded", name)
		}
	}
	// A missing circuit is rejected for every attack.
	if _, err := attack.Run(context.Background(), "fall", attack.Target{}); err == nil {
		t.Error("Run without locked circuit succeeded")
	}
}

// TestEveryAttackOnTTLock drives every registered attack against the same
// small TTLock instance through the unified API — the "add a scheme, get
// every attack for free" contract.
func TestEveryAttackOnTTLock(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	orig := testcirc.Random(rng, 10, 80)
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 8, Seed: 4, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	complement := make(attack.Key, len(lr.Key))
	for k, v := range lr.Key {
		complement[k] = !v
	}
	tests := []struct {
		name       string
		wantStatus []attack.Status
		wantKey    bool // correct key must appear in Keys
	}{
		{"fall", []attack.Status{attack.StatusUniqueKey, attack.StatusShortlist}, true},
		{"sat", []attack.Status{attack.StatusUniqueKey}, false}, // any I/O-equivalent key
		{"doubledip", []attack.Status{attack.StatusUniqueKey, attack.StatusShortlist}, false},
		{"keyconfirm", []attack.Status{attack.StatusUniqueKey}, true},
		{"sps", []attack.Status{attack.StatusRecovered}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			tgt := attack.Target{
				Locked:     lr.Locked,
				Oracle:     oracle.NewSim(orig),
				H:          0,
				Seed:       5,
				Candidates: []attack.Key{complement, lr.Key},
			}
			res, err := attack.Run(ctx, tc.name, tgt)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Attack != tc.name {
				t.Errorf("Result.Attack = %q, want %q", res.Attack, tc.name)
			}
			okStatus := false
			for _, st := range tc.wantStatus {
				if res.Status == st {
					okStatus = true
				}
			}
			if !okStatus {
				t.Fatalf("status = %v, want one of %v (result %+v)", res.Status, tc.wantStatus, res)
			}
			if tc.wantKey {
				found := false
				for _, key := range res.Keys {
					if attack.KeysEqual(key, lr.Key) {
						found = true
					}
				}
				if !found {
					t.Errorf("correct key not among %d returned keys", len(res.Keys))
				}
			}
			if res.Status == attack.StatusRecovered && res.Recovered == nil {
				t.Error("StatusRecovered without a recovered netlist")
			}
			if res.UniqueKey() && len(res.Keys) != 1 {
				t.Errorf("UniqueKey() with %d keys", len(res.Keys))
			}
		})
	}
}

// TestKeyconfirmIterationCapInconclusive checks the adapter maps an
// iteration-capped run to StatusInconclusive, not StatusTimeout: an
// effort bound is not wall-clock expiry, and harness censoring relies on
// the distinction.
func TestKeyconfirmIterationCapInconclusive(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	orig := testcirc.Random(rng, 14, 100)
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 12, Seed: 3, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := attack.Run(ctx, "keyconfirm", attack.Target{
		Locked:        lr.Locked,
		Oracle:        oracle.NewSim(orig),
		MaxIterations: 1, // φ = true over 2^12 keys cannot converge in 1 DI
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != attack.StatusInconclusive {
		t.Errorf("status = %v, want inconclusive (iteration cap is not a timeout)", res.Status)
	}
}

// TestCancellationReturnsPartialResult cancels each attack mid-run and
// checks it comes back promptly with a StatusTimeout partial result
// rather than blocking or erroring.
func TestCancellationReturnsPartialResult(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	orig := testcirc.Random(rng, 18, 150)
	// 2^16 TTLock: far too big to finish in 50ms for the oracle-guided
	// attacks, and large enough that FALL's SAT queries notice too.
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 16, Seed: 11, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fall", "sat", "doubledip", "keyconfirm"} {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // already cancelled: the attack must not start working
			start := time.Now()
			res, err := attack.Run(ctx, name, attack.Target{
				Locked: lr.Locked,
				Oracle: oracle.NewSim(orig),
			})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("cancelled run errored: %v", err)
			}
			if res == nil {
				t.Fatal("cancelled run returned nil result")
			}
			if res.Status != attack.StatusTimeout {
				t.Errorf("status = %v, want timeout", res.Status)
			}
			if elapsed > 10*time.Second {
				t.Errorf("cancelled run took %v to return", elapsed)
			}
		})
	}
}
