// Package circuit models combinational logic circuits as directed acyclic
// graphs of gates, in the style used by logic-locking research tools. It is
// the substrate for the locking algorithms and attacks in this repository:
// a circuit can be simulated bit-parallel (64 patterns per word), analyzed
// for structural properties (support sets, fanin cones), and converted to
// CNF (see internal/cnf) or to an and-inverter graph (see internal/aig).
//
// Nodes are stored in a slice in topological order: every fanin of a node
// has a smaller index than the node itself. This invariant is maintained by
// the builder API and checked by Validate.
package circuit

import (
	"fmt"
	"sort"
	"strings"
)

// GateType identifies the Boolean function of a node.
type GateType uint8

// Gate types. Input nodes have no fanins; Const0/Const1 are nullary
// constants; Buf and Not are unary; the remaining types accept two or more
// fanins and apply their function across all of them (e.g. a 3-input And is
// the conjunction of three signals).
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	numGateTypes
)

var gateNames = [...]string{
	Input: "INPUT", Const0: "CONST0", Const1: "CONST1", Buf: "BUF",
	Not: "NOT", And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR",
}

// String returns the conventional upper-case name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// Arity bounds for a gate type. max < 0 means unbounded.
func arity(t GateType) (min, max int) {
	switch t {
	case Input, Const0, Const1:
		return 0, 0
	case Buf, Not:
		return 1, 1
	case And, Nand, Or, Nor, Xor, Xnor:
		return 2, -1
	default:
		return -1, -1
	}
}

// Node is a single gate or input of a circuit. Fanins index into the owning
// circuit's node slice.
type Node struct {
	Name   string
	Type   GateType
	Fanins []int
	// IsKey marks key inputs of a locked circuit (only meaningful for
	// Input nodes). Attackers are assumed to be able to distinguish key
	// inputs from circuit inputs (paper §II-A).
	IsKey bool
}

// Circuit is a combinational logic circuit. The zero value is not usable;
// create circuits with New.
type Circuit struct {
	Name    string
	Nodes   []Node
	Outputs []int // ids of output nodes, in declaration order
	byName  map[string]int
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// Len returns the total number of nodes (inputs, constants and gates).
func (c *Circuit) Len() int { return len(c.Nodes) }

// AddInput appends a primary (circuit) input node and returns its id.
func (c *Circuit) AddInput(name string) int {
	return c.addNode(Node{Name: name, Type: Input})
}

// AddKeyInput appends a key input node and returns its id.
func (c *Circuit) AddKeyInput(name string) int {
	return c.addNode(Node{Name: name, Type: Input, IsKey: true})
}

// AddConst appends a constant node of the given value and returns its id.
func (c *Circuit) AddConst(name string, value bool) int {
	t := Const0
	if value {
		t = Const1
	}
	return c.addNode(Node{Name: name, Type: t})
}

// AddGate appends a gate node computing t over the fanins and returns its
// id. It returns an error if the name is already used, the arity is wrong
// for the gate type, or a fanin id is out of range (which would violate the
// topological-order invariant).
func (c *Circuit) AddGate(name string, t GateType, fanins ...int) (int, error) {
	if _, dup := c.byName[name]; dup {
		return 0, fmt.Errorf("circuit %s: duplicate node name %q", c.Name, name)
	}
	lo, hi := arity(t)
	if lo < 0 {
		return 0, fmt.Errorf("circuit %s: node %q: invalid gate type %v", c.Name, name, t)
	}
	if len(fanins) < lo || (hi >= 0 && len(fanins) > hi) {
		return 0, fmt.Errorf("circuit %s: node %q: %v gate with %d fanins", c.Name, name, t, len(fanins))
	}
	for _, f := range fanins {
		if f < 0 || f >= len(c.Nodes) {
			return 0, fmt.Errorf("circuit %s: node %q: fanin %d out of range", c.Name, name, f)
		}
	}
	return c.addNode(Node{Name: name, Type: t, Fanins: append([]int(nil), fanins...)}), nil
}

// MustGate is AddGate but panics on error; intended for programmatic
// construction where the arguments are known to be valid.
func (c *Circuit) MustGate(name string, t GateType, fanins ...int) int {
	id, err := c.AddGate(name, t, fanins...)
	if err != nil {
		panic(err)
	}
	return id
}

func (c *Circuit) addNode(n Node) int {
	id := len(c.Nodes)
	if n.Name == "" {
		n.Name = fmt.Sprintf("n%d", id)
	}
	c.Nodes = append(c.Nodes, n)
	c.byName[n.Name] = id
	return id
}

// MarkOutput declares node id as a circuit output. A node may be marked at
// most once; re-marking is ignored.
func (c *Circuit) MarkOutput(id int) {
	for _, o := range c.Outputs {
		if o == id {
			return
		}
	}
	c.Outputs = append(c.Outputs, id)
}

// NodeByName returns the id of the node with the given name.
func (c *Circuit) NodeByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// Inputs returns the ids of all input nodes (both circuit and key inputs)
// in id order.
func (c *Circuit) Inputs() []int {
	var ids []int
	for i, n := range c.Nodes {
		if n.Type == Input {
			ids = append(ids, i)
		}
	}
	return ids
}

// PrimaryInputs returns the ids of non-key inputs in id order.
func (c *Circuit) PrimaryInputs() []int {
	var ids []int
	for i, n := range c.Nodes {
		if n.Type == Input && !n.IsKey {
			ids = append(ids, i)
		}
	}
	return ids
}

// KeyInputs returns the ids of key inputs in id order.
func (c *Circuit) KeyInputs() []int {
	var ids []int
	for i, n := range c.Nodes {
		if n.Type == Input && n.IsKey {
			ids = append(ids, i)
		}
	}
	return ids
}

// NumGates counts non-input nodes (gates and constants). This matches the
// "# of gates" accounting used in Table I of the paper.
func (c *Circuit) NumGates() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd.Type != Input {
			n++
		}
	}
	return n
}

// GateCounts returns a histogram of node counts per gate type.
func (c *Circuit) GateCounts() map[GateType]int {
	m := make(map[GateType]int)
	for _, nd := range c.Nodes {
		m[nd.Type]++
	}
	return m
}

// Validate checks structural well-formedness: topological order, name
// table consistency, arity constraints, and output ids in range. It
// returns the first problem found.
func (c *Circuit) Validate() error {
	if c.byName == nil {
		return fmt.Errorf("circuit %s: missing name table (not built with New)", c.Name)
	}
	for i, n := range c.Nodes {
		lo, hi := arity(n.Type)
		if lo < 0 {
			return fmt.Errorf("circuit %s: node %d (%s): invalid type", c.Name, i, n.Name)
		}
		if len(n.Fanins) < lo || (hi >= 0 && len(n.Fanins) > hi) {
			return fmt.Errorf("circuit %s: node %d (%s): %v with %d fanins", c.Name, i, n.Name, n.Type, len(n.Fanins))
		}
		for _, f := range n.Fanins {
			if f < 0 || f >= i {
				return fmt.Errorf("circuit %s: node %d (%s): fanin %d violates topological order", c.Name, i, n.Name, f)
			}
		}
		if got, ok := c.byName[n.Name]; !ok || got != i {
			return fmt.Errorf("circuit %s: node %d (%s): name table mismatch", c.Name, i, n.Name)
		}
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Nodes) {
			return fmt.Errorf("circuit %s: output id %d out of range", c.Name, o)
		}
	}
	return nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	cp := &Circuit{
		Name:    c.Name,
		Nodes:   make([]Node, len(c.Nodes)),
		Outputs: append([]int(nil), c.Outputs...),
		byName:  make(map[string]int, len(c.byName)),
	}
	for i, n := range c.Nodes {
		n.Fanins = append([]int(nil), n.Fanins...)
		cp.Nodes[i] = n
		cp.byName[n.Name] = i
	}
	return cp
}

// evalGate applies the gate function of n over 64 patterns in parallel.
// vals holds one word per node id.
func evalGate(n *Node, vals []uint64) uint64 {
	switch n.Type {
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf:
		return vals[n.Fanins[0]]
	case Not:
		return ^vals[n.Fanins[0]]
	case And, Nand:
		v := ^uint64(0)
		for _, f := range n.Fanins {
			v &= vals[f]
		}
		if n.Type == Nand {
			v = ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, f := range n.Fanins {
			v |= vals[f]
		}
		if n.Type == Nor {
			v = ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, f := range n.Fanins {
			v ^= vals[f]
		}
		if n.Type == Xnor {
			v = ^v
		}
		return v
	default: // Input: value must be preset by the caller.
		return vals[0] // unreachable; see Simulate
	}
}

// Simulate evaluates the circuit for 64 input patterns in parallel. vals
// must have length Len(); the caller presets the words of every input node
// (bit i of an input word is that input's value in pattern i). On return
// every node's word holds its computed value. Non-input entries are
// overwritten.
func (c *Circuit) Simulate(vals []uint64) {
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Type == Input {
			continue
		}
		vals[i] = evalGate(n, vals)
	}
}

// Eval evaluates the circuit on a single assignment of the inputs, given as
// a map from input node id to value, and returns the value of every node.
// Inputs missing from the map default to false.
func (c *Circuit) Eval(inputs map[int]bool) []bool {
	vals := make([]uint64, len(c.Nodes))
	for id, v := range inputs {
		if v {
			vals[id] = ^uint64(0)
		}
	}
	c.Simulate(vals)
	out := make([]bool, len(c.Nodes))
	for i, w := range vals {
		out[i] = w&1 == 1
	}
	return out
}

// EvalOutputs evaluates the circuit on a single input assignment and
// returns only the output values, in Outputs order.
func (c *Circuit) EvalOutputs(inputs map[int]bool) []bool {
	all := c.Eval(inputs)
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = all[o]
	}
	return out
}

// TFC returns the transitive fanin cone of root (including root itself) as
// a sorted list of node ids.
func (c *Circuit) TFC(root int) []int {
	seen := make(map[int]bool)
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, c.Nodes[v].Fanins...)
	}
	ids := make([]int, 0, len(seen))
	for v := range seen {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	return ids
}

// Support returns the structural support of node root: the ids of all input
// nodes in its transitive fanin cone, sorted by id. (Constants are not part
// of the support.)
func (c *Circuit) Support(root int) []int {
	var sup []int
	for _, v := range c.TFC(root) {
		if c.Nodes[v].Type == Input {
			sup = append(sup, v)
		}
	}
	return sup
}

// Cone extracts the fanin cone of root as a standalone circuit whose
// inputs are the support of root and whose single output is root's
// function. It returns the new circuit and inputMap, which maps each new
// circuit input id to the corresponding node id in c. Key-input flags are
// preserved.
func (c *Circuit) Cone(root int) (cone *Circuit, inputMap map[int]int) {
	tfc := c.TFC(root)
	cone = New(fmt.Sprintf("%s.cone@%s", c.Name, c.Nodes[root].Name))
	inputMap = make(map[int]int)
	old2new := make(map[int]int, len(tfc))
	for _, v := range tfc { // tfc is sorted, preserving topological order
		n := c.Nodes[v]
		var id int
		if n.Type == Input {
			if n.IsKey {
				id = cone.AddKeyInput(n.Name)
			} else {
				id = cone.AddInput(n.Name)
			}
			inputMap[id] = v
		} else if n.Type == Const0 || n.Type == Const1 {
			id = cone.AddConst(n.Name, n.Type == Const1)
		} else {
			fanins := make([]int, len(n.Fanins))
			for i, f := range n.Fanins {
				fanins[i] = old2new[f]
			}
			id = cone.MustGate(n.Name, n.Type, fanins...)
		}
		old2new[v] = id
	}
	cone.MarkOutput(old2new[root])
	return cone, inputMap
}

// FanoutCounts returns, for every node, the number of nodes that list it as
// a fanin.
func (c *Circuit) FanoutCounts() []int {
	counts := make([]int, len(c.Nodes))
	for i := range c.Nodes {
		for _, f := range c.Nodes[i].Fanins {
			counts[f]++
		}
	}
	return counts
}

// Levels returns the logic level (longest path from any input/constant) of
// every node. Inputs and constants are level 0.
func (c *Circuit) Levels() []int {
	lv := make([]int, len(c.Nodes))
	for i := range c.Nodes {
		max := -1
		for _, f := range c.Nodes[i].Fanins {
			if lv[f] > max {
				max = lv[f]
			}
		}
		lv[i] = max + 1
	}
	return lv
}

// Depth returns the maximum logic level over all outputs, or 0 for a
// circuit with no outputs.
func (c *Circuit) Depth() int {
	lv := c.Levels()
	d := 0
	for _, o := range c.Outputs {
		if lv[o] > d {
			d = lv[o]
		}
	}
	return d
}

// String returns a compact human-readable netlist listing, one node per
// line, suitable for debugging small circuits.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s: %d nodes, %d outputs\n", c.Name, len(c.Nodes), len(c.Outputs))
	outs := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		outs[o] = true
	}
	for i, n := range c.Nodes {
		fmt.Fprintf(&b, "  %4d %-12s %-6s", i, n.Name, n.Type)
		for _, f := range n.Fanins {
			fmt.Fprintf(&b, " %d", f)
		}
		if n.IsKey {
			b.WriteString(" [key]")
		}
		if outs[i] {
			b.WriteString(" [out]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
