package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFig2a constructs the paper's running example (Fig. 2a):
// y = (a AND b) OR (b AND c) OR (c AND a) OR d.
func buildFig2a(t testing.TB) (*Circuit, [4]int, int) {
	t.Helper()
	c := New("fig2a")
	a := c.AddInput("a")
	b := c.AddInput("b")
	cc := c.AddInput("c")
	d := c.AddInput("d")
	ab := c.MustGate("ab", And, a, b)
	bc := c.MustGate("bc", And, b, cc)
	ca := c.MustGate("ca", And, cc, a)
	y := c.MustGate("y", Or, ab, bc, ca, d)
	c.MarkOutput(y)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return c, [4]int{a, b, cc, d}, y
}

func TestFig2aTruthTable(t *testing.T) {
	c, in, y := buildFig2a(t)
	for p := 0; p < 16; p++ {
		a, b, cc, d := p&1 == 1, p&2 == 2, p&4 == 4, p&8 == 8
		want := (a && b) || (b && cc) || (cc && a) || d
		got := c.Eval(map[int]bool{in[0]: a, in[1]: b, in[2]: cc, in[3]: d})[y]
		if got != want {
			t.Errorf("pattern %04b: got %v, want %v", p, got, want)
		}
	}
}

func TestGateSemantics(t *testing.T) {
	cases := []struct {
		t  GateType
		n  int
		fn func(vs []bool) bool
	}{
		{And, 3, func(vs []bool) bool { return vs[0] && vs[1] && vs[2] }},
		{Nand, 2, func(vs []bool) bool { return !(vs[0] && vs[1]) }},
		{Or, 3, func(vs []bool) bool { return vs[0] || vs[1] || vs[2] }},
		{Nor, 2, func(vs []bool) bool { return !(vs[0] || vs[1]) }},
		{Xor, 2, func(vs []bool) bool { return vs[0] != vs[1] }},
		{Xnor, 2, func(vs []bool) bool { return vs[0] == vs[1] }},
		{Xor, 3, func(vs []bool) bool { return (vs[0] != vs[1]) != vs[2] }},
		{Buf, 1, func(vs []bool) bool { return vs[0] }},
		{Not, 1, func(vs []bool) bool { return !vs[0] }},
	}
	for _, tc := range cases {
		c := New("g")
		ins := make([]int, tc.n)
		for i := range ins {
			ins[i] = c.AddInput(string(rune('a' + i)))
		}
		g := c.MustGate("g", tc.t, ins...)
		c.MarkOutput(g)
		for p := 0; p < 1<<tc.n; p++ {
			assign := map[int]bool{}
			vs := make([]bool, tc.n)
			for i := 0; i < tc.n; i++ {
				vs[i] = p&(1<<i) != 0
				assign[ins[i]] = vs[i]
			}
			if got, want := c.Eval(assign)[g], tc.fn(vs); got != want {
				t.Errorf("%v/%d pattern %b: got %v want %v", tc.t, tc.n, p, got, want)
			}
		}
	}
}

func TestConstants(t *testing.T) {
	c := New("k")
	z := c.AddConst("zero", false)
	o := c.AddConst("one", true)
	g := c.MustGate("g", And, o, o)
	h := c.MustGate("h", Or, z, g)
	c.MarkOutput(h)
	vals := c.Eval(nil)
	if vals[z] || !vals[o] || !vals[g] || !vals[h] {
		t.Errorf("constant propagation wrong: %v", vals)
	}
}

func TestAddGateErrors(t *testing.T) {
	c := New("e")
	a := c.AddInput("a")
	if _, err := c.AddGate("a", Not, a); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.AddGate("g1", Not, a, a); err == nil {
		t.Error("NOT with 2 fanins accepted")
	}
	if _, err := c.AddGate("g2", And, a); err == nil {
		t.Error("AND with 1 fanin accepted")
	}
	if _, err := c.AddGate("g3", And, a, 99); err == nil {
		t.Error("out-of-range fanin accepted")
	}
	if _, err := c.AddGate("g4", And, a, -1); err == nil {
		t.Error("negative fanin accepted")
	}
}

func TestSupportAndTFC(t *testing.T) {
	c, in, y := buildFig2a(t)
	sup := c.Support(y)
	if len(sup) != 4 {
		t.Fatalf("support of y: got %v, want all 4 inputs", sup)
	}
	for i, s := range sup {
		if s != in[i] {
			t.Errorf("support[%d] = %d, want %d", i, s, in[i])
		}
	}
	// Support of the ab gate is {a, b} only.
	ab, _ := c.NodeByName("ab")
	sup = c.Support(ab)
	if len(sup) != 2 || sup[0] != in[0] || sup[1] != in[1] {
		t.Errorf("support of ab: got %v, want [a b]", sup)
	}
	tfc := c.TFC(y)
	if len(tfc) != c.Len() {
		t.Errorf("TFC(y) = %v, want every node", tfc)
	}
}

func TestConeExtraction(t *testing.T) {
	c, in, _ := buildFig2a(t)
	ab, _ := c.NodeByName("ab")
	cone, im := c.Cone(ab)
	if err := cone.Validate(); err != nil {
		t.Fatalf("cone invalid: %v", err)
	}
	if len(cone.Outputs) != 1 {
		t.Fatalf("cone outputs = %v", cone.Outputs)
	}
	if got := len(cone.Inputs()); got != 2 {
		t.Fatalf("cone inputs = %d, want 2", got)
	}
	// inputMap points back at a and b.
	back := map[int]bool{}
	for _, orig := range im {
		back[orig] = true
	}
	if !back[in[0]] || !back[in[1]] {
		t.Errorf("inputMap = %v, want to cover a and b", im)
	}
	// Cone computes a AND b.
	ci := cone.Inputs()
	for p := 0; p < 4; p++ {
		va, vb := p&1 == 1, p&2 == 2
		got := cone.EvalOutputs(map[int]bool{ci[0]: va, ci[1]: vb})[0]
		if got != (va && vb) {
			t.Errorf("cone(%v,%v) = %v", va, vb, got)
		}
	}
}

func TestConePreservesKeyFlag(t *testing.T) {
	c := New("k")
	x := c.AddInput("x")
	k := c.AddKeyInput("keyinput0")
	g := c.MustGate("g", Xor, x, k)
	c.MarkOutput(g)
	cone, _ := c.Cone(g)
	if got := len(cone.KeyInputs()); got != 1 {
		t.Errorf("cone key inputs = %d, want 1", got)
	}
	if got := len(cone.PrimaryInputs()); got != 1 {
		t.Errorf("cone primary inputs = %d, want 1", got)
	}
}

func TestSimulateBitParallelMatchesEval(t *testing.T) {
	c, in, y := buildFig2a(t)
	// 16 patterns in one word.
	vals := make([]uint64, c.Len())
	for p := 0; p < 16; p++ {
		for i := 0; i < 4; i++ {
			if p&(1<<i) != 0 {
				vals[in[i]] |= 1 << uint(p)
			}
		}
	}
	c.Simulate(vals)
	for p := 0; p < 16; p++ {
		assign := map[int]bool{}
		for i := 0; i < 4; i++ {
			assign[in[i]] = p&(1<<i) != 0
		}
		want := c.Eval(assign)[y]
		got := vals[y]&(1<<uint(p)) != 0
		if got != want {
			t.Errorf("pattern %d: parallel %v, scalar %v", p, got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	c, _, _ := buildFig2a(t)
	cp := c.Clone()
	cp.Nodes[4].Fanins[0] = 3
	if c.Nodes[4].Fanins[0] == 3 {
		t.Error("Clone shares fanin slices")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("original damaged by clone mutation: %v", err)
	}
	if _, ok := cp.NodeByName("y"); !ok {
		t.Error("clone lost name table")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	c, _, _ := buildFig2a(t)
	if d := c.Depth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	lv := c.Levels()
	for _, in := range c.Inputs() {
		if lv[in] != 0 {
			t.Errorf("input level = %d", lv[in])
		}
	}
}

func TestFanoutCounts(t *testing.T) {
	c, in, _ := buildFig2a(t)
	fo := c.FanoutCounts()
	if fo[in[0]] != 2 { // a feeds ab and ca
		t.Errorf("fanout(a) = %d, want 2", fo[in[0]])
	}
	if fo[in[3]] != 1 { // d feeds y only
		t.Errorf("fanout(d) = %d, want 1", fo[in[3]])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c, _, _ := buildFig2a(t)
	c.Nodes[4].Fanins[0] = 7 // forward reference
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted forward reference")
	}
}

// randomCircuit builds a random layered circuit for property tests.
func randomCircuit(rng *rand.Rand, nIn, nGates int) *Circuit {
	c := New("rand")
	ids := make([]int, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		ids = append(ids, c.AddInput(""))
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buf}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		var fanins []int
		n := 1
		if t != Not && t != Buf {
			n = 2 + rng.Intn(2)
		}
		for j := 0; j < n; j++ {
			fanins = append(fanins, ids[rng.Intn(len(ids))])
		}
		ids = append(ids, c.MustGate("", t, fanins...))
	}
	c.MarkOutput(ids[len(ids)-1])
	return c
}

// Property: bit-parallel simulation agrees with scalar evaluation on random
// circuits and random patterns.
func TestQuickSimulateAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 3+r.Intn(5), 5+r.Intn(20))
		ins := c.Inputs()
		vals := make([]uint64, c.Len())
		patterns := make([]map[int]bool, 8)
		for p := range patterns {
			patterns[p] = map[int]bool{}
			for _, in := range ins {
				v := r.Intn(2) == 1
				patterns[p][in] = v
				if v {
					vals[in] |= 1 << uint(p)
				}
			}
		}
		c.Simulate(vals)
		out := c.Outputs[0]
		for p := range patterns {
			if (vals[out]&(1<<uint(p)) != 0) != c.Eval(patterns[p])[out] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Cone extraction preserves the node function.
func TestQuickConePreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(r, 4, 5+r.Intn(15))
		root := c.Outputs[0]
		cone, im := c.Cone(root)
		coneIns := cone.Inputs()
		for trial := 0; trial < 16; trial++ {
			origAssign := map[int]bool{}
			coneAssign := map[int]bool{}
			for _, ci := range coneIns {
				v := r.Intn(2) == 1
				coneAssign[ci] = v
				origAssign[im[ci]] = v
			}
			// Inputs outside the cone get arbitrary values.
			for _, in := range c.Inputs() {
				if _, ok := origAssign[in]; !ok {
					origAssign[in] = r.Intn(2) == 1
				}
			}
			if c.Eval(origAssign)[root] != cone.EvalOutputs(coneAssign)[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringSmoke(t *testing.T) {
	c, _, _ := buildFig2a(t)
	s := c.String()
	if len(s) == 0 {
		t.Error("empty String()")
	}
}
