package lock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/testcirc"
)

// exhaustiveErrorPatterns evaluates the locked circuit against the
// original for every input pattern (small circuits only) under the given
// key and returns the input patterns (as bitmask over primary inputs in
// original order) whose outputs differ.
func exhaustiveErrorPatterns(t *testing.T, orig, locked *circuit.Circuit, key map[string]bool) []int {
	t.Helper()
	pis := orig.PrimaryInputs()
	if len(pis) > 12 {
		t.Fatalf("too many inputs for exhaustive diff: %d", len(pis))
	}
	var bad []int
	for p := 0; p < 1<<uint(len(pis)); p++ {
		aOrig := map[int]bool{}
		aLock := map[int]bool{}
		for i, id := range pis {
			v := p&(1<<uint(i)) != 0
			aOrig[id] = v
			id2, ok := locked.NodeByName(orig.Nodes[id].Name)
			if !ok {
				t.Fatalf("input %s missing from locked circuit", orig.Nodes[id].Name)
			}
			aLock[id2] = v
		}
		for name, v := range key {
			id, ok := locked.NodeByName(name)
			if !ok {
				t.Fatalf("key input %s missing", name)
			}
			aLock[id] = v
		}
		o1 := orig.EvalOutputs(aOrig)
		o2 := locked.EvalOutputs(aLock)
		for i := range o1 {
			if o1[i] != o2[i] {
				bad = append(bad, p)
				break
			}
		}
	}
	return bad
}

func TestTTLockCorrectKeyRestores(t *testing.T) {
	orig := testcirc.Fig2a()
	for _, optimize := range []bool{false, true} {
		res, err := TTLock(orig, Options{KeySize: 4, Seed: 7, Optimize: optimize})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Locked.KeyInputs()); got != 4 {
			t.Fatalf("key inputs = %d, want 4", got)
		}
		if bad := exhaustiveErrorPatterns(t, orig, res.Locked, res.Key); len(bad) != 0 {
			t.Errorf("optimize=%v: correct key leaves %d corrupted patterns", optimize, len(bad))
		}
	}
}

func TestTTLockWrongKeyCorruptsTwoCubes(t *testing.T) {
	// TTLock with a wrong key K' corrupts exactly the inputs whose
	// selected bits equal the protected cube or equal K' (two cubes of
	// patterns).
	orig := testcirc.Fig2a()
	res, err := TTLock(orig, Options{KeySize: 4, Seed: 3, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	wrong := make(map[string]bool, len(res.Key))
	for k, v := range res.Key {
		wrong[k] = v
	}
	wrong[res.KeyNames[0]] = !wrong[res.KeyNames[0]]
	bad := exhaustiveErrorPatterns(t, orig, res.Locked, wrong)
	// All 4 inputs are selected (keySize=4, 4 inputs), so exactly 2
	// patterns must be corrupted: the cube and the wrong key value.
	if len(bad) != 2 {
		t.Errorf("wrong key corrupts %d patterns, want 2: %v", len(bad), bad)
	}
}

func TestSFLLHD1MatchesPaperExample(t *testing.T) {
	// With h=1 and m=4, the stripped function flips exactly the 4 inputs
	// at Hamming distance 1 from the cube (paper Eq. 1 / Fig. 2c).
	orig := testcirc.Fig2a()
	res, err := SFLLHD(orig, Options{KeySize: 4, H: 1, Seed: 11, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Correct key restores.
	if bad := exhaustiveErrorPatterns(t, orig, res.Locked, res.Key); len(bad) != 0 {
		t.Fatalf("correct key leaves corruption: %v", bad)
	}
	// All-complement key K' = ~Kc: HD(X,Kc)=1 flips and HD(X,~Kc)=1
	// restores; these sets are disjoint for m=4, h=1, so 8 patterns break.
	wrong := make(map[string]bool)
	for k, v := range res.Key {
		wrong[k] = !v
	}
	bad := exhaustiveErrorPatterns(t, orig, res.Locked, wrong)
	if len(bad) != 8 {
		t.Errorf("complement key corrupts %d patterns, want 8", len(bad))
	}
}

func TestSFLLHDVariousH(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	orig := testcirc.Random(rng, 8, 60)
	for h := 0; h <= 4; h++ {
		res, err := SFLLHD(orig, Options{KeySize: 8, H: h, Seed: int64(h) + 100, Optimize: true})
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if !testcirc.LockedAgreesWithOriginal(orig, res.Locked, res.Key, 200, 5) {
			t.Errorf("h=%d: correct key does not restore function", h)
		}
		// A wrong key must corrupt at least one pattern among the
		// protected-input space; check by exhaustive scan over an 8-bit
		// selected subspace via random other bits.
		wrong := make(map[string]bool)
		for k, v := range res.Key {
			wrong[k] = !v
		}
		if h*2 != res.H*2 { // keep compiler honest; always false
			continue
		}
		if agree := testcirc.LockedAgreesWithOriginal(orig, res.Locked, wrong, 4096, 6); agree && h*4 <= 8 {
			// For small h the corruption is rare but h<=2 with m=8 flips
			// C(8,h) patterns out of 256, so 4096 random trials over an
			// 8-input circuit hit one almost surely.
			t.Errorf("h=%d: complement key appears functionally correct", h)
		}
	}
}

func TestSFLLKeySizeSubsetOfInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := testcirc.Random(rng, 12, 80)
	res, err := SFLLHD(orig, Options{KeySize: 6, H: 1, Seed: 9, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ProtectedInputs) != 6 {
		t.Fatalf("protected inputs = %d, want 6", len(res.ProtectedInputs))
	}
	if !testcirc.LockedAgreesWithOriginal(orig, res.Locked, res.Key, 300, 8) {
		t.Error("correct key does not restore function")
	}
}

func TestSFLLErrors(t *testing.T) {
	orig := testcirc.Fig2a()
	if _, err := SFLLHD(orig, Options{KeySize: 0}); err == nil {
		t.Error("key size 0 accepted")
	}
	if _, err := SFLLHD(orig, Options{KeySize: 4, H: 5}); err == nil {
		t.Error("h > m accepted")
	}
	if _, err := SFLLHD(orig, Options{KeySize: 10}); err == nil {
		t.Error("key size beyond support accepted")
	}
}

func TestLockingIsDeterministic(t *testing.T) {
	orig := testcirc.C17()
	r1, err := SFLLHD(orig, Options{KeySize: 4, H: 1, Seed: 42, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SFLLHD(orig, Options{KeySize: 4, H: 1, Seed: 42, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Locked.Len() != r2.Locked.Len() {
		t.Error("same seed produced different circuits")
	}
	for k, v := range r1.Key {
		if r2.Key[k] != v {
			t.Error("same seed produced different keys")
		}
	}
	r3, err := SFLLHD(orig, Options{KeySize: 4, H: 1, Seed: 43, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k, v := range r1.Key {
		if r3.Key[k] != v {
			same = false
		}
	}
	if same && r1.Cube["G1"] == r3.Cube["G1"] {
		// Different seeds *may* coincide, but cube+key identical is
		// suspicious for a 5-bit cube; tolerate only if circuits differ.
		t.Log("warning: different seeds gave same key (possible but unlikely)")
	}
}

func TestRandomXOR(t *testing.T) {
	orig := testcirc.C17()
	res, err := RandomXOR(orig, Options{KeySize: 4, Seed: 17, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Locked.KeyInputs()); got != 4 {
		t.Fatalf("key inputs = %d, want 4", got)
	}
	if bad := exhaustiveErrorPatterns(t, orig, res.Locked, res.Key); len(bad) != 0 {
		t.Errorf("correct key leaves %d corrupted patterns", len(bad))
	}
	// Flipping any single key bit must corrupt something (XOR key gates
	// invert a wire).
	for _, kn := range res.KeyNames {
		wrong := map[string]bool{}
		for k, v := range res.Key {
			wrong[k] = v
		}
		wrong[kn] = !wrong[kn]
		if bad := exhaustiveErrorPatterns(t, orig, res.Locked, wrong); len(bad) == 0 {
			t.Errorf("flipping %s leaves function intact", kn)
		}
	}
}

func TestSARLock(t *testing.T) {
	orig := testcirc.Fig2a()
	res, err := SARLock(orig, Options{KeySize: 4, Seed: 23, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad := exhaustiveErrorPatterns(t, orig, res.Locked, res.Key); len(bad) != 0 {
		t.Errorf("correct key leaves %d corrupted patterns", len(bad))
	}
	// Wrong key corrupts exactly the single pattern X_sel == K'.
	wrong := map[string]bool{}
	for k, v := range res.Key {
		wrong[k] = !v
	}
	bad := exhaustiveErrorPatterns(t, orig, res.Locked, wrong)
	if len(bad) != 1 {
		t.Errorf("wrong key corrupts %d patterns, want exactly 1", len(bad))
	}
}

func TestAntiSAT(t *testing.T) {
	orig := testcirc.Fig2a()
	res, err := AntiSAT(orig, Options{KeySize: 8, Seed: 31, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Locked.KeyInputs()); got != 8 {
		t.Fatalf("key inputs = %d, want 8", got)
	}
	if bad := exhaustiveErrorPatterns(t, orig, res.Locked, res.Key); len(bad) != 0 {
		t.Errorf("correct key leaves %d corrupted patterns", len(bad))
	}
	// Any key with Ka == Kb is also correct for Anti-SAT.
	alt := map[string]bool{}
	for i := 0; i < 4; i++ {
		v := i%2 == 0
		alt[res.KeyNames[i]] = v
		alt[res.KeyNames[4+i]] = v
	}
	if bad := exhaustiveErrorPatterns(t, orig, res.Locked, alt); len(bad) != 0 {
		t.Errorf("Ka==Kb key leaves %d corrupted patterns", len(bad))
	}
	// Ka != Kb corrupts exactly one pattern (X = ~Ka).
	skew := map[string]bool{}
	for i := 0; i < 4; i++ {
		skew[res.KeyNames[i]] = true
		skew[res.KeyNames[4+i]] = false
	}
	bad := exhaustiveErrorPatterns(t, orig, res.Locked, skew)
	if len(bad) != 1 {
		t.Errorf("Ka!=Kb corrupts %d patterns, want 1", len(bad))
	}
	if _, err := AntiSAT(orig, Options{KeySize: 7, Seed: 1}); err == nil {
		t.Error("odd key size accepted")
	}
}

// Property: for random circuits and random SFLL parameters, the correct
// key always restores the original function.
func TestQuickSFLLCorrectKey(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nIn := 6 + rng.Intn(6)
		orig := testcirc.Random(rng, nIn, 30+rng.Intn(50))
		m := 4 + rng.Intn(nIn-3)
		h := rng.Intn(m/2 + 1)
		res, err := SFLLHD(orig, Options{KeySize: m, H: h, Seed: seed, Optimize: rng.Intn(2) == 0})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return testcirc.LockedAgreesWithOriginal(orig, res.Locked, res.Key, 128, seed+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGateCountGrowsModestly(t *testing.T) {
	// Locking adds the stripper + restoration logic; Table I shows locked
	// sizes within ~1.2-6x of the original for these benchmarks. Sanity
	// check that our locker's overhead is in a similar band for a small
	// circuit.
	rng := rand.New(rand.NewSource(77))
	orig := testcirc.Random(rng, 16, 300)
	res, err := SFLLHD(orig, Options{KeySize: 16, H: 2, Seed: 5, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Locked.NumGates() < orig.NumGates()/4 {
		t.Errorf("locked circuit suspiciously small: %d vs %d", res.Locked.NumGates(), orig.NumGates())
	}
	if res.Locked.NumGates() > orig.NumGates()*10+600 {
		t.Errorf("locking overhead too large: %d vs %d", res.Locked.NumGates(), orig.NumGates())
	}
}

func TestKeyAssignmentHelper(t *testing.T) {
	orig := testcirc.Fig2a()
	res, err := TTLock(orig, Options{KeySize: 4, Seed: 1, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := res.KeyAssignment(res.Locked)
	if len(m) != 4 {
		t.Fatalf("assignment size = %d, want 4", len(m))
	}
	for id, v := range m {
		name := res.Locked.Nodes[id].Name
		if res.Key[name] != v {
			t.Errorf("assignment mismatch for %s", name)
		}
	}
}
