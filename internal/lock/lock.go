// Package lock implements logic locking algorithms: TTLock and SFLL-HDh
// (the schemes attacked by the paper), plus three baselines from the
// related-work landscape — random XOR/XNOR locking (RLL/EPIC), SARLock and
// Anti-SAT — used by the extension benchmarks.
//
// All lockers follow the architecture of the paper's Fig. 1: a
// functionality-stripped circuit whose output is flipped for a protected
// cube (or Hamming-distance shell around it), composed with a
// key-programmable functionality restoration unit. The correct key
// restores the original function exactly.
package lock

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/aig"
	"repro/internal/circuit"
)

// Options configures a locking run.
type Options struct {
	// KeySize is the number of key inputs (m in the paper).
	KeySize int
	// H is the Hamming distance parameter of SFLL-HDh; 0 gives TTLock.
	H int
	// Seed drives all random choices (cube value, input selection),
	// making locking deterministic.
	Seed int64
	// Optimize runs the locked netlist through aig.Strash, as the paper
	// does with ABC, removing the structural bias of naive insertion.
	Optimize bool
	// KeyIndexOffset offsets generated key input names (keyinput<N>),
	// letting several lockers compose on one circuit without name
	// collisions (see Compound).
	KeyIndexOffset int
}

func (o Options) keyName(i int) string {
	return fmt.Sprintf("keyinput%d", o.KeyIndexOffset+i)
}

// Result describes a locked circuit and its secret.
type Result struct {
	// Locked is the locked netlist (optimized when requested). Its key
	// inputs are named keyinput0..keyinput<m-1>.
	Locked *circuit.Circuit
	// Key maps each key input name to its correct value.
	Key map[string]bool
	// KeyNames lists key input names in index order.
	KeyNames []string
	// ProtectedInputs lists the circuit-input names the protected cube is
	// defined over, in key index order: keyinput i pairs with
	// ProtectedInputs[i]. Empty for RLL.
	ProtectedInputs []string
	// Cube maps protected input names to the protected cube value.
	Cube map[string]bool
	// H is the Hamming distance parameter used (SFLL/TTLock only).
	H int
	// Algorithm names the locking scheme.
	Algorithm string
	// TargetOutput is the name of the output whose logic was stripped.
	TargetOutput string
}

// namer generates fresh, collision-free gate names within a circuit.
type namer struct {
	c      *circuit.Circuit
	prefix string
	n      int
}

func (nm *namer) next() string {
	for {
		name := fmt.Sprintf("%s%d", nm.prefix, nm.n)
		nm.n++
		if _, taken := nm.c.NodeByName(name); !taken {
			return name
		}
	}
}

func (nm *namer) gate(t circuit.GateType, fanins ...int) int {
	return nm.c.MustGate(nm.next(), t, fanins...)
}

// popcountEq builds gates computing [sum(bits) == k] and returns the node
// id of the comparison output. bits must be non-empty and 0 <= k <= len(bits).
func popcountEq(nm *namer, bits []int, k int) int {
	sum := popcount(nm, bits)
	// Compare the little-endian sum against constant k.
	cmp := make([]int, len(sum))
	for j, b := range sum {
		if k&(1<<uint(j)) != 0 {
			cmp[j] = b
		} else {
			cmp[j] = nm.gate(circuit.Not, b)
		}
	}
	if len(cmp) == 1 {
		return cmp[0]
	}
	return nm.gate(circuit.And, cmp...)
}

// popcount builds a little-endian binary adder tree over single-bit nodes.
func popcount(nm *namer, bits []int) []int {
	switch len(bits) {
	case 0:
		return nil
	case 1:
		return bits
	}
	mid := len(bits) / 2
	return addBin(nm, popcount(nm, bits[:mid]), popcount(nm, bits[mid:]))
}

func addBin(nm *namer, as, bs []int) []int {
	if len(as) < len(bs) {
		as, bs = bs, as
	}
	out := make([]int, 0, len(as)+1)
	carry := -1
	for i := range as {
		a := as[i]
		b := -1
		if i < len(bs) {
			b = bs[i]
		}
		switch {
		case b < 0 && carry < 0:
			out = append(out, a)
		case b < 0:
			s, c := halfAdder(nm, a, carry)
			out = append(out, s)
			carry = c
		case carry < 0:
			s, c := halfAdder(nm, a, b)
			out = append(out, s)
			carry = c
		default:
			s, c := fullAdder(nm, a, b, carry)
			out = append(out, s)
			carry = c
		}
	}
	if carry >= 0 {
		out = append(out, carry)
	}
	return out
}

func halfAdder(nm *namer, a, b int) (sum, carry int) {
	return nm.gate(circuit.Xor, a, b), nm.gate(circuit.And, a, b)
}

func fullAdder(nm *namer, a, b, cin int) (sum, carry int) {
	t := nm.gate(circuit.Xor, a, b)
	sum = nm.gate(circuit.Xor, t, cin)
	carry = nm.gate(circuit.Or, nm.gate(circuit.And, a, b), nm.gate(circuit.And, cin, t))
	return sum, carry
}

// pickTarget selects the output with the widest primary-input support that
// can host a keySize-bit cube, and returns its node id and the chosen
// protected input ids (sorted).
func pickTarget(c *circuit.Circuit, keySize int, rng *rand.Rand) (outID int, protected []int, err error) {
	best := -1
	var bestSup []int
	for _, o := range c.Outputs {
		var sup []int
		for _, s := range c.Support(o) {
			if !c.Nodes[s].IsKey {
				sup = append(sup, s)
			}
		}
		if len(sup) > len(bestSup) {
			best = o
			bestSup = sup
		}
	}
	if best < 0 || len(bestSup) < keySize {
		return 0, nil, fmt.Errorf("lock: no output with support >= %d (best %d)", keySize, len(bestSup))
	}
	idx := rng.Perm(len(bestSup))[:keySize]
	protected = make([]int, keySize)
	for i, j := range idx {
		protected[i] = bestSup[j]
	}
	sort.Ints(protected)
	return best, protected, nil
}

// SFLLHD locks orig with SFLL-HDh per the paper's Fig. 1/Fig. 2c. The
// functionality-stripped circuit flips the target output for every input
// whose selected bits lie at Hamming distance exactly H from a secret
// protected cube; the restoration unit flips it back for inputs at
// distance H from the key inputs. H = 0 degenerates to TTLock.
func SFLLHD(orig *circuit.Circuit, opts Options) (*Result, error) {
	if opts.KeySize < 1 {
		return nil, fmt.Errorf("lock: key size %d < 1", opts.KeySize)
	}
	if opts.H < 0 || opts.H > opts.KeySize {
		return nil, fmt.Errorf("lock: h=%d out of range for m=%d", opts.H, opts.KeySize)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c := orig.Clone()
	c.Name = fmt.Sprintf("%s_sfll_hd%d_k%d", orig.Name, opts.H, opts.KeySize)
	outID, protected, err := pickTarget(c, opts.KeySize, rng)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Key:       make(map[string]bool),
		Cube:      make(map[string]bool),
		H:         opts.H,
		Algorithm: fmt.Sprintf("sfll-hd%d", opts.H),
	}
	if opts.H == 0 {
		res.Algorithm = "ttlock"
	}
	res.TargetOutput = c.Nodes[outID].Name

	// Key inputs, paired positionally with the protected inputs.
	keyIDs := make([]int, opts.KeySize)
	for i := range keyIDs {
		name := opts.keyName(i)
		keyIDs[i] = c.AddKeyInput(name)
		res.KeyNames = append(res.KeyNames, name)
		piName := c.Nodes[protected[i]].Name
		res.ProtectedInputs = append(res.ProtectedInputs, piName)
		bit := rng.Intn(2) == 1
		res.Cube[piName] = bit
		res.Key[name] = bit
	}

	nm := &namer{c: c, prefix: "sfll_"}

	// Functionality-stripped circuit: strip = [HD(X_sel, cube) == H].
	stripBits := make([]int, opts.KeySize)
	for i, pi := range protected {
		// d_i = x_i XOR cube_i: identity when cube_i=0, inverter when 1.
		if res.Cube[c.Nodes[pi].Name] {
			stripBits[i] = nm.gate(circuit.Not, pi)
		} else {
			stripBits[i] = pi
		}
	}
	var strip int
	if opts.H == 0 {
		// HD == 0 means all d_i are 0: AND of inverted d_i, i.e. the
		// protected cube as a product term (Fig. 2b's gate F).
		inv := make([]int, len(stripBits))
		for i, b := range stripBits {
			inv[i] = nm.gate(circuit.Not, b)
		}
		strip = andTree(nm, inv)
	} else {
		strip = popcountEq(nm, stripBits, opts.H)
	}
	yfs := nm.gate(circuit.Xor, outID, strip)

	// Restoration unit: restore = [HD(X_sel, K) == H].
	restBits := make([]int, opts.KeySize)
	for i, pi := range protected {
		restBits[i] = nm.gate(circuit.Xor, pi, keyIDs[i])
	}
	var restore int
	if opts.H == 0 {
		inv := make([]int, len(restBits))
		for i, b := range restBits {
			inv[i] = nm.gate(circuit.Not, b) // XNOR comparators (Fig. 2b)
		}
		restore = andTree(nm, inv)
	} else {
		restore = popcountEq(nm, restBits, opts.H)
	}
	yLocked := nm.gate(circuit.Xor, yfs, restore)

	replaceOutput(c, outID, yLocked)
	finish(c, opts, res)
	return res, nil
}

// TTLock locks orig with TTLock, i.e. SFLL-HD0 (paper Fig. 2b).
func TTLock(orig *circuit.Circuit, opts Options) (*Result, error) {
	opts.H = 0
	return SFLLHD(orig, opts)
}

func andTree(nm *namer, bits []int) int {
	if len(bits) == 1 {
		return bits[0]
	}
	return nm.gate(circuit.And, bits...)
}

// replaceOutput rewires output oldID to newID, keeping output order.
func replaceOutput(c *circuit.Circuit, oldID, newID int) {
	for i, o := range c.Outputs {
		if o == oldID {
			c.Outputs[i] = newID
			return
		}
	}
	panic("lock: output to replace not found")
}

func finish(c *circuit.Circuit, opts Options, res *Result) {
	if err := c.Validate(); err != nil {
		panic(fmt.Sprintf("lock: produced invalid circuit: %v", err))
	}
	if opts.Optimize {
		c = aig.Strash(c)
	}
	res.Locked = c
}

// RandomXOR implements random XOR/XNOR key-gate insertion locking
// (RLL/EPIC [16]). Each key bit guards one randomly chosen internal wire:
// an XOR gate (correct key bit 0) or XNOR gate (correct key bit 1) is
// spliced into every fanout of the wire.
func RandomXOR(orig *circuit.Circuit, opts Options) (*Result, error) {
	if opts.KeySize < 1 {
		return nil, fmt.Errorf("lock: key size %d < 1", opts.KeySize)
	}
	var gates []int
	for id, n := range orig.Nodes {
		if n.Type != circuit.Input && n.Type != circuit.Const0 && n.Type != circuit.Const1 {
			gates = append(gates, id)
		}
	}
	if len(gates) < opts.KeySize {
		return nil, fmt.Errorf("lock: only %d gates for %d key bits", len(gates), opts.KeySize)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(gates))
	target := make(map[int]int) // original node id -> key index
	for i := 0; i < opts.KeySize; i++ {
		target[gates[perm[i]]] = i
	}
	res := &Result{
		Key:       make(map[string]bool),
		Cube:      map[string]bool{},
		Algorithm: "rll",
	}

	c := circuit.New(fmt.Sprintf("%s_rll_k%d", orig.Name, opts.KeySize))
	keyIDs := make([]int, opts.KeySize)
	for i := range keyIDs {
		name := opts.keyName(i)
		keyIDs[i] = c.AddKeyInput(name)
		res.KeyNames = append(res.KeyNames, name)
		res.Key[name] = rng.Intn(2) == 1
	}
	remap := make([]int, orig.Len())
	for id := range orig.Nodes {
		n := &orig.Nodes[id]
		var newID int
		switch n.Type {
		case circuit.Input:
			if n.IsKey {
				newID = c.AddKeyInput(n.Name)
			} else {
				newID = c.AddInput(n.Name)
			}
		case circuit.Const0, circuit.Const1:
			newID = c.AddConst(n.Name, n.Type == circuit.Const1)
		default:
			fanins := make([]int, len(n.Fanins))
			for i, f := range n.Fanins {
				fanins[i] = remap[f]
			}
			newID = c.MustGate(n.Name, n.Type, fanins...)
		}
		if ki, locked := target[id]; locked {
			t := circuit.Xor
			if res.Key[res.KeyNames[ki]] {
				t = circuit.Xnor
			}
			newID = c.MustGate(fmt.Sprintf("rll_kg%d", ki), t, newID, keyIDs[ki])
		}
		remap[id] = newID
	}
	for _, o := range orig.Outputs {
		c.MarkOutput(remap[o])
	}
	finish(c, opts, res)
	return res, nil
}

// SARLock implements SARLock [30]: the target output is flipped when the
// selected inputs equal the key, masked so the correct key never flips.
// Every wrong key corrupts exactly one input pattern, defeating the SAT
// attack by forcing one distinguishing input per wrong key.
func SARLock(orig *circuit.Circuit, opts Options) (*Result, error) {
	if opts.KeySize < 1 {
		return nil, fmt.Errorf("lock: key size %d < 1", opts.KeySize)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c := orig.Clone()
	c.Name = fmt.Sprintf("%s_sarlock_k%d", orig.Name, opts.KeySize)
	outID, protected, err := pickTarget(c, opts.KeySize, rng)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Key:          make(map[string]bool),
		Cube:         make(map[string]bool),
		Algorithm:    "sarlock",
		TargetOutput: c.Nodes[outID].Name,
	}
	keyIDs := make([]int, opts.KeySize)
	for i := range keyIDs {
		name := opts.keyName(i)
		keyIDs[i] = c.AddKeyInput(name)
		res.KeyNames = append(res.KeyNames, name)
		piName := c.Nodes[protected[i]].Name
		res.ProtectedInputs = append(res.ProtectedInputs, piName)
		bit := rng.Intn(2) == 1
		res.Cube[piName] = bit
		res.Key[name] = bit
	}
	nm := &namer{c: c, prefix: "sar_"}
	// match = AND_i (x_i XNOR k_i)
	cmp := make([]int, opts.KeySize)
	for i, pi := range protected {
		cmp[i] = nm.gate(circuit.Xnor, pi, keyIDs[i])
	}
	match := andTree(nm, cmp)
	// mask = AND_i (k_i == correct_i): suppress the flip for the correct key.
	maskBits := make([]int, opts.KeySize)
	for i, k := range keyIDs {
		if res.Key[res.KeyNames[i]] {
			maskBits[i] = k
		} else {
			maskBits[i] = nm.gate(circuit.Not, k)
		}
	}
	mask := andTree(nm, maskBits)
	flip := nm.gate(circuit.And, match, nm.gate(circuit.Not, mask))
	yLocked := nm.gate(circuit.Xor, outID, flip)
	replaceOutput(c, outID, yLocked)
	finish(c, opts, res)
	return res, nil
}

// AntiSAT implements the Anti-SAT block (type 0) of Xie & Srivastava
// [26, 27]: flip = AND(X xor Ka) AND NAND(X xor Kb), which is the constant
// 0 whenever Ka == Kb. KeySize must be even; the first half is Ka, the
// second half Kb, and the correct key sets Ka = Kb = R for a random R.
func AntiSAT(orig *circuit.Circuit, opts Options) (*Result, error) {
	if opts.KeySize < 2 || opts.KeySize%2 != 0 {
		return nil, fmt.Errorf("lock: anti-sat needs an even key size >= 2, got %d", opts.KeySize)
	}
	n := opts.KeySize / 2
	rng := rand.New(rand.NewSource(opts.Seed))
	c := orig.Clone()
	c.Name = fmt.Sprintf("%s_antisat_k%d", orig.Name, opts.KeySize)
	outID, protected, err := pickTarget(c, n, rng)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Key:          make(map[string]bool),
		Cube:         make(map[string]bool),
		Algorithm:    "antisat",
		TargetOutput: c.Nodes[outID].Name,
	}
	keyIDs := make([]int, opts.KeySize)
	for i := range keyIDs {
		name := opts.keyName(i)
		keyIDs[i] = c.AddKeyInput(name)
		res.KeyNames = append(res.KeyNames, name)
	}
	// Correct key: Ka = Kb = R.
	for i := 0; i < n; i++ {
		r := rng.Intn(2) == 1
		res.Key[res.KeyNames[i]] = r
		res.Key[res.KeyNames[n+i]] = r
		res.ProtectedInputs = append(res.ProtectedInputs, c.Nodes[protected[i]].Name)
	}
	nm := &namer{c: c, prefix: "as_"}
	da := make([]int, n)
	db := make([]int, n)
	for i, pi := range protected {
		da[i] = nm.gate(circuit.Xor, pi, keyIDs[i])
		db[i] = nm.gate(circuit.Xor, pi, keyIDs[n+i])
	}
	ga := andTree(nm, da)
	gb := nm.gate(circuit.Not, andTree(nm, db))
	flip := nm.gate(circuit.And, ga, gb)
	yLocked := nm.gate(circuit.Xor, outID, flip)
	replaceOutput(c, outID, yLocked)
	finish(c, opts, res)
	return res, nil
}

// KeyAssignment converts the result's key map into node-id form for the
// given circuit (typically res.Locked), for use with circuit.Eval.
func (r *Result) KeyAssignment(c *circuit.Circuit) map[int]bool {
	m := make(map[int]bool, len(r.Key))
	for name, v := range r.Key {
		if id, ok := c.NodeByName(name); ok {
			m[id] = v
		}
	}
	return m
}

// Compound applies RandomXOR (traditional locking) followed by SARLock on
// the same circuit — the compound scheme the Double DIP attack [18]
// targets: SARLock alone bounds each wrong key's corruption to one input
// pattern, so designers layered it over traditional locking; Double DIP
// strips the traditional layer anyway. rllKeys and sarKeys are the key
// sizes of the two layers; key inputs are keyinput0..keyinput<rll+sar-1>.
func Compound(orig *circuit.Circuit, rllKeys, sarKeys int, seed int64, optimize bool) (*Result, error) {
	r1, err := RandomXOR(orig, Options{KeySize: rllKeys, Seed: seed, Optimize: false})
	if err != nil {
		return nil, fmt.Errorf("lock: compound rll stage: %w", err)
	}
	r2, err := SARLock(r1.Locked, Options{
		KeySize: sarKeys, Seed: seed + 1, Optimize: optimize, KeyIndexOffset: rllKeys,
	})
	if err != nil {
		return nil, fmt.Errorf("lock: compound sarlock stage: %w", err)
	}
	res := &Result{
		Locked:       r2.Locked,
		Key:          make(map[string]bool, rllKeys+sarKeys),
		Algorithm:    "rll+sarlock",
		TargetOutput: r2.TargetOutput,
		Cube:         r2.Cube,
	}
	for k, v := range r1.Key {
		res.Key[k] = v
	}
	for k, v := range r2.Key {
		res.Key[k] = v
	}
	res.KeyNames = append(append([]string(nil), r1.KeyNames...), r2.KeyNames...)
	res.ProtectedInputs = r2.ProtectedInputs
	return res, nil
}
