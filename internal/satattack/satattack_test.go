package satattack

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/testcirc"
)

func TestSATAttackOnRLL(t *testing.T) {
	// Random XOR locking is the classic SAT attack victim: few
	// equivalence classes, quick convergence.
	rng := rand.New(rand.NewSource(3))
	orig := testcirc.Random(rng, 8, 60)
	lr, err := lock.RandomXOR(orig, lock.Options{KeySize: 8, Seed: 5, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewSim(orig)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, lr.Locked, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("attack did not converge: %+v", res)
	}
	// The recovered key need not equal the planted key bit-for-bit, but
	// must unlock the circuit.
	if err := oracle.CheckKey(lr.Locked, oracle.NewSim(orig), res.Key, 256, 1); err != nil {
		t.Errorf("recovered key is wrong: %v", err)
	}
	if res.Iterations == 0 {
		t.Log("note: converged with zero distinguishing inputs")
	}
}

func TestSATAttackOnSmallTTLock(t *testing.T) {
	// With a tiny key space (2^4) the SAT attack still wins, needing
	// about one distinguishing input per wrong key.
	orig := testcirc.Fig2a()
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 7, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewSim(orig)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, lr.Locked, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("attack did not converge: %+v", res)
	}
	if err := oracle.CheckKey(lr.Locked, oracle.NewSim(orig), res.Key, 256, 2); err != nil {
		t.Errorf("recovered key is wrong: %v", err)
	}
}

func TestSATAttackResilienceOfSFLL(t *testing.T) {
	// The headline phenomenon: on SFLL with a moderate key, the SAT
	// attack burns one iteration per wrong key. With a 20-bit key and an
	// iteration cap it cannot finish — this is the "SAT-resilient" shape
	// of the paper's Fig. 5.
	rng := rand.New(rand.NewSource(9))
	orig := testcirc.Random(rng, 22, 150)
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 20, Seed: 11, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewSim(orig)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := Run(ctx, lr.Locked, orc, Options{MaxIterations: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatalf("SAT attack should not defeat 2^20 TTLock in 64 iterations; got key after %d", res.Iterations)
	}
	if !res.TimedOut {
		t.Error("expected iteration cap to fire")
	}
}

func TestSATAttackNoKeys(t *testing.T) {
	orig := testcirc.Fig2a()
	if _, err := Run(context.Background(), orig, oracle.NewSim(orig), Options{}); err == nil {
		t.Error("circuit without keys accepted")
	}
}

func TestSATAttackCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	orig := testcirc.Random(rng, 18, 120)
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 16, Seed: 3, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled
	res, err := Run(ctx, lr.Locked, oracle.NewSim(orig), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("cancelled context did not stop the attack")
	}
}

func TestSATAttackCountsOracleQueries(t *testing.T) {
	orig := testcirc.Fig2a()
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 7, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	orc := oracle.NewSim(orig)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, lr.Locked, orc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleQueries != orc.NumQueries() {
		t.Errorf("result reports %d queries, oracle counted %d", res.OracleQueries, orc.NumQueries())
	}
	if res.OracleQueries != res.Iterations {
		t.Errorf("one query per iteration expected: %d vs %d", res.OracleQueries, res.Iterations)
	}
}
