// Package satattack implements the oracle-guided SAT attack of
// Subramanyan, Ray & Malik (HOST 2015), the baseline the paper compares
// against ([22, 23]). The attack maintains a miter of two copies of the
// locked circuit sharing primary inputs but with independent keys; each
// satisfying assignment yields a distinguishing input, whose oracle
// response prunes the key space until no distinguishing input remains.
//
// On stripped-functionality locking (TTLock, SFLL-HD, SARLock, Anti-SAT)
// each distinguishing input eliminates only a sliver of the key space, so
// the attack needs exponentially many iterations — this is precisely the
// SAT-resilience the FALL attack circumvents.
package satattack

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// Options tunes a SAT attack run.
type Options struct {
	// MaxIterations bounds distinguishing inputs queried (<= 0:
	// unlimited). Wall-clock budgets come from the context.
	MaxIterations int
	// Solver builds the SAT engines (the miter solver Q and the
	// key-extraction solver P); nil means default single engines.
	Solver attack.SolverFactory
}

// Result reports a SAT attack run.
type Result struct {
	// Key is the recovered key (key input name -> value); nil unless
	// Solved.
	Key map[string]bool
	// Solved is true when the attack converged (no distinguishing input
	// remains) and extracted a key.
	Solved bool
	// TimedOut is true when the context or iteration budget expired
	// first.
	TimedOut bool
	// Iterations counts distinguishing inputs queried.
	Iterations int
	// OracleQueries counts oracle calls made by this run.
	OracleQueries int
	// Elapsed is the total attack time.
	Elapsed time.Duration
}

// Run executes the SAT attack on the locked circuit using the oracle.
// Cancelling ctx stops the attack promptly with a TimedOut result.
func Run(ctx context.Context, locked *circuit.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &Result{}
	pis := locked.PrimaryInputs()
	keys := locked.KeyInputs()
	if len(keys) == 0 {
		return nil, fmt.Errorf("satattack: circuit has no key inputs")
	}
	outIdx, err := attack.OutputIndex(locked, orc)
	if err != nil {
		return nil, err
	}

	// One trace span per query family: the distinguishing-input miter
	// (Q) and the key-extraction solver (P).
	root := obs.SpanFrom(ctx)
	qSpan := root.Child("sat.miter")
	pSpan := root.Child("sat.extract")
	defer func() {
		qSpan.Set("iterations", res.Iterations)
		qSpan.End()
		pSpan.End()
	}()

	// Miter solver Q. The two-copy miter is encoded into a clause
	// stream, frozen, and loaded into the engine in one shot (O(1) and
	// content-hashed for persistent or memoizing backends); the
	// per-iteration I/O constraints then extend the live engine.
	qst := sat.NewStream()
	qe := cnf.NewEncoder(qst)
	lits1 := qe.EncodeCircuitWith(locked, nil)
	shared := make(map[int]sat.Lit, len(pis))
	for _, pi := range pis {
		shared[pi] = lits1[pi]
	}
	lits2 := qe.EncodeCircuitWith(locked, shared)
	qe.NotEqual(cnf.EncodedOutputs(locked, lits1), cnf.EncodedOutputs(locked, lits2))
	k1 := cnf.InputLits(keys, lits1)
	k2 := cnf.InputLits(keys, lits2)
	q := attack.NewEngineOn(obs.With(ctx, qSpan), opts.Solver, qst.Freeze())
	qe.S = q

	// Key-extraction solver P accumulates I/O constraints on one key copy.
	pst := sat.NewStream()
	pe := cnf.NewEncoder(pst)
	kp := make([]sat.Lit, len(keys))
	givenP := make(map[int]sat.Lit, len(keys))
	for i, k := range keys {
		kp[i] = pe.NewLit()
		givenP[k] = kp[i]
	}
	p := attack.NewEngineOn(obs.With(ctx, pSpan), opts.Solver, pst.Freeze())
	pe.S = p

	for {
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			res.TimedOut = true
			break
		}
		switch q.Solve() {
		case sat.Unknown:
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		case sat.Unsat:
			// Converged: any key consistent with the observations is
			// correct.
			res.Elapsed = time.Since(start)
			return extractKey(locked, p, kp, keys, res, start)
		}
		res.Iterations++
		// Distinguishing input from the model.
		xd := make(map[string]bool, len(pis))
		for _, pi := range pis {
			xd[locked.Nodes[pi].Name] = q.LitTrue(lits1[pi])
		}
		yd := orc.Query(xd)
		res.OracleQueries++
		// Constrain both key copies in Q and the key in P to reproduce
		// the oracle response on xd.
		attack.AddIOConstraint(qe, locked, xd, yd, outIdx, attack.KeyGiven(keys, k1))
		attack.AddIOConstraint(qe, locked, xd, yd, outIdx, attack.KeyGiven(keys, k2))
		attack.AddIOConstraint(pe, locked, xd, yd, outIdx, givenP)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func extractKey(locked *circuit.Circuit, p sat.Engine, kp []sat.Lit, keys []int, res *Result, start time.Time) (*Result, error) {
	switch p.Solve() {
	case sat.Unknown:
		res.TimedOut = true
		res.Elapsed = time.Since(start)
		return res, nil
	case sat.Unsat:
		return nil, fmt.Errorf("satattack: key constraints unsatisfiable (oracle/netlist mismatch)")
	}
	res.Key = make(map[string]bool, len(keys))
	for i, k := range keys {
		res.Key[locked.Nodes[k].Name] = p.LitTrue(kp[i])
	}
	res.Solved = true
	res.Elapsed = time.Since(start)
	return res, nil
}
