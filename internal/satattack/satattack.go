// Package satattack implements the oracle-guided SAT attack of
// Subramanyan, Ray & Malik (HOST 2015), the baseline the paper compares
// against ([22, 23]). The attack maintains a miter of two copies of the
// locked circuit sharing primary inputs but with independent keys; each
// satisfying assignment yields a distinguishing input, whose oracle
// response prunes the key space until no distinguishing input remains.
//
// On stripped-functionality locking (TTLock, SFLL-HD, SARLock, Anti-SAT)
// each distinguishing input eliminates only a sliver of the key space, so
// the attack needs exponentially many iterations — this is precisely the
// SAT-resilience the FALL attack circumvents.
package satattack

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// Result reports a SAT attack run.
type Result struct {
	// Key is the recovered key (key input name -> value); nil unless
	// Solved.
	Key map[string]bool
	// Solved is true when the attack converged (no distinguishing input
	// remains) and extracted a key.
	Solved bool
	// TimedOut is true when the deadline expired first.
	TimedOut bool
	// Iterations counts distinguishing inputs queried.
	Iterations int
	// OracleQueries counts oracle calls made by this run.
	OracleQueries int
	// Elapsed is the total attack time.
	Elapsed time.Duration
}

// Run executes the SAT attack on the locked circuit using the oracle.
// deadline zero means no limit. MaxIterations <= 0 means unlimited.
func Run(locked *circuit.Circuit, orc oracle.Oracle, deadline time.Time, maxIterations int) (*Result, error) {
	start := time.Now()
	res := &Result{}
	pis := locked.PrimaryInputs()
	keys := locked.KeyInputs()
	if len(keys) == 0 {
		return nil, fmt.Errorf("satattack: circuit has no key inputs")
	}
	outIdx, err := outputIndex(locked, orc)
	if err != nil {
		return nil, err
	}

	// Miter solver Q.
	q := sat.New()
	if !deadline.IsZero() {
		q.SetDeadline(deadline)
	}
	qe := cnf.NewEncoder(q)
	lits1 := qe.EncodeCircuitWith(locked, nil)
	shared := make(map[int]sat.Lit, len(pis))
	for _, pi := range pis {
		shared[pi] = lits1[pi]
	}
	lits2 := qe.EncodeCircuitWith(locked, shared)
	qe.NotEqual(cnf.EncodedOutputs(locked, lits1), cnf.EncodedOutputs(locked, lits2))
	k1 := cnf.InputLits(keys, lits1)
	k2 := cnf.InputLits(keys, lits2)

	// Key-extraction solver P accumulates I/O constraints on one key copy.
	p := sat.New()
	if !deadline.IsZero() {
		p.SetDeadline(deadline)
	}
	pe := cnf.NewEncoder(p)
	kp := make([]sat.Lit, len(keys))
	givenP := make(map[int]sat.Lit, len(keys))
	for i, k := range keys {
		kp[i] = pe.NewLit()
		givenP[k] = kp[i]
	}

	for {
		if maxIterations > 0 && res.Iterations >= maxIterations {
			res.TimedOut = true
			break
		}
		switch q.Solve() {
		case sat.Unknown:
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		case sat.Unsat:
			// Converged: any key consistent with the observations is
			// correct.
			res.Elapsed = time.Since(start)
			return extractKey(locked, p, kp, keys, res, start)
		}
		res.Iterations++
		// Distinguishing input from the model.
		xd := make(map[string]bool, len(pis))
		for _, pi := range pis {
			xd[locked.Nodes[pi].Name] = q.LitTrue(lits1[pi])
		}
		yd := orc.Query(xd)
		res.OracleQueries++
		// Constrain both key copies in Q and the key in P to reproduce
		// the oracle response on xd.
		addIOConstraint(qe, locked, xd, yd, outIdx, keyGiven(keys, k1))
		addIOConstraint(qe, locked, xd, yd, outIdx, keyGiven(keys, k2))
		addIOConstraint(pe, locked, xd, yd, outIdx, givenP)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func keyGiven(keys []int, lits []sat.Lit) map[int]sat.Lit {
	m := make(map[int]sat.Lit, len(keys))
	for i, k := range keys {
		m[k] = lits[i]
	}
	return m
}

// addIOConstraint encodes a fresh copy of the locked circuit with primary
// inputs fixed to xd, key inputs tied to the given key literals, and
// outputs fixed to the oracle response yd.
func addIOConstraint(e *cnf.Encoder, locked *circuit.Circuit, xd map[string]bool, yd []bool, outIdx []int, keyLits map[int]sat.Lit) {
	given := make(map[int]sat.Lit, len(xd)+len(keyLits))
	for k, v := range keyLits {
		given[k] = v
	}
	for _, pi := range locked.PrimaryInputs() {
		given[pi] = e.ConstLit(xd[locked.Nodes[pi].Name])
	}
	lits := e.EncodeCircuitWith(locked, given)
	for i, o := range locked.Outputs {
		e.Fix(lits[o], yd[outIdx[i]])
	}
}

// outputIndex maps locked-circuit output positions to oracle output
// positions by name.
func outputIndex(locked *circuit.Circuit, orc oracle.Oracle) ([]int, error) {
	names := orc.OutputNames()
	byName := make(map[string]int, len(names))
	for i, n := range names {
		byName[n] = i
	}
	idx := make([]int, len(locked.Outputs))
	for i, o := range locked.Outputs {
		n := locked.Nodes[o].Name
		j, ok := byName[n]
		if !ok {
			// Outputs may have been renamed by optimization shims
			// (e.g. "_out" suffix); fall back to positional mapping.
			if i < len(names) {
				j = i
			} else {
				return nil, fmt.Errorf("satattack: output %q not known to oracle", n)
			}
		}
		idx[i] = j
	}
	return idx, nil
}

func extractKey(locked *circuit.Circuit, p *sat.Solver, kp []sat.Lit, keys []int, res *Result, start time.Time) (*Result, error) {
	switch p.Solve() {
	case sat.Unknown:
		res.TimedOut = true
		res.Elapsed = time.Since(start)
		return res, nil
	case sat.Unsat:
		return nil, fmt.Errorf("satattack: key constraints unsatisfiable (oracle/netlist mismatch)")
	}
	res.Key = make(map[string]bool, len(keys))
	for i, k := range keys {
		res.Key[locked.Nodes[k].Name] = p.LitTrue(kp[i])
	}
	res.Solved = true
	res.Elapsed = time.Since(start)
	return res, nil
}
