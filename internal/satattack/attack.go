package satattack

import (
	"context"

	"repro/internal/attack"
)

// satAttack adapts the SAT attack to the unified attack API.
type satAttack struct{}

// New returns the SAT attack as an attack.Attack. Target.MaxIterations
// caps distinguishing-input iterations and Target.Solver selects the
// engine behind the miter and extraction solvers. Target.Workers is
// ignored: each distinguishing input depends on all previously learned
// constraints, so the loop is inherently sequential (the parallel
// realization is the partitioned key confirmation of
// keyconfirm.ConfirmParallel) — per-query portfolio racing via
// Target.Solver is how this attack uses extra cores.
func New() attack.Attack { return satAttack{} }

func (satAttack) Name() string      { return "sat" }
func (satAttack) NeedsOracle() bool { return true }

func (a satAttack) Run(ctx context.Context, tgt attack.Target) (*attack.Result, error) {
	if err := attack.CheckTarget(a, tgt); err != nil {
		return nil, err
	}
	res, err := Run(ctx, tgt.Locked, tgt.Oracle, Options{MaxIterations: tgt.MaxIterations, Solver: tgt.Solver})
	if err != nil {
		return nil, err
	}
	out := &attack.Result{
		Attack:        a.Name(),
		Iterations:    res.Iterations,
		OracleQueries: res.OracleQueries,
		Elapsed:       res.Elapsed,
		Details:       res,
	}
	switch {
	case res.Solved:
		// Convergence proves the key class unique up to I/O equivalence.
		out.Status = attack.StatusUniqueKey
		out.Keys = []attack.Key{res.Key}
	case res.TimedOut:
		out.Status = attack.StatusTimeout
	default:
		out.Status = attack.StatusInconclusive
	}
	return out, nil
}

func init() { attack.Register(New()) }
