package doubledip

import (
	"context"

	"repro/internal/attack"
)

// ddAttack adapts Double DIP to the unified attack API.
type ddAttack struct {
	opts Options
}

// New returns Double DIP as an attack.Attack. Target.MaxIterations caps
// total distinguishing-input queries across both phases (overriding
// opts.MaxIterations when non-zero) and Target.Seed drives the error-exit
// sampling. The registry instance runs the exact phase to convergence
// (MaxExactIterations -1), matching the Target contract that
// MaxIterations 0 means unlimited; construct an instance with
// MaxExactIterations 0 to stop after the approximate 2-DIP phase.
// Target.Workers is ignored: like the SAT attack, both phases learn from
// every previous distinguishing input and are inherently sequential.
func New(opts Options) attack.Attack { return &ddAttack{opts: opts} }

func (d *ddAttack) Name() string      { return "doubledip" }
func (d *ddAttack) NeedsOracle() bool { return true }

func (d *ddAttack) Run(ctx context.Context, tgt attack.Target) (*attack.Result, error) {
	if err := attack.CheckTarget(d, tgt); err != nil {
		return nil, err
	}
	opts := d.opts
	if tgt.MaxIterations != 0 {
		opts.MaxIterations = tgt.MaxIterations
	}
	if tgt.Seed != 0 {
		opts.Seed = tgt.Seed
	}
	if tgt.Solver != nil {
		opts.Solver = tgt.Solver
	}
	res, err := Run(ctx, tgt.Locked, tgt.Oracle, opts)
	if err != nil {
		return nil, err
	}
	out := &attack.Result{
		Attack:        d.Name(),
		Iterations:    res.TwoDIPIterations + res.ExactIterations,
		OracleQueries: res.OracleQueries,
		Elapsed:       res.Elapsed,
		Details:       res,
	}
	if res.Key != nil {
		out.Keys = []attack.Key{res.Key}
	}
	switch {
	case res.ExactConverged:
		out.Status = attack.StatusUniqueKey
	case res.TimedOut:
		// Budget-truncated: any extracted key is partial, with no error
		// bound — report timeout, carrying the key as a partial result.
		out.Status = attack.StatusTimeout
	case res.Key != nil:
		// 2-DIP phase key: approximate, with residual error bounded by
		// the point-function layer.
		out.Status = attack.StatusShortlist
	default:
		out.Status = attack.StatusInconclusive
	}
	return out, nil
}

func init() { attack.Register(New(Options{MaxExactIterations: -1})) }
