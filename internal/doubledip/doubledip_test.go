package doubledip

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/satattack"
	"repro/internal/testcirc"
)

// errorRate measures the fraction of random input patterns on which the
// locked circuit under key disagrees with the original.
func errorRate(orig, locked *circuit.Circuit, key map[string]bool, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	bad := 0
	for t := 0; t < trials; t++ {
		aOrig := map[int]bool{}
		aLock := map[int]bool{}
		for _, id := range orig.PrimaryInputs() {
			v := rng.Intn(2) == 1
			aOrig[id] = v
			if id2, ok := locked.NodeByName(orig.Nodes[id].Name); ok {
				aLock[id2] = v
			}
		}
		for k, v := range key {
			if id, ok := locked.NodeByName(k); ok {
				aLock[id] = v
			}
		}
		o1 := orig.EvalOutputs(aOrig)
		o2 := locked.EvalOutputs(aLock)
		for i := range o1 {
			if o1[i] != o2[i] {
				bad++
				break
			}
		}
	}
	return float64(bad) / float64(trials)
}

func TestDoubleDIPOnRLLExact(t *testing.T) {
	// Pure traditional locking: 2-DIPs exist while >= 2 wrong keys
	// survive, so the attack converges to an exact key quickly.
	rng := rand.New(rand.NewSource(5))
	orig := testcirc.Random(rng, 8, 60)
	lr, err := lock.RandomXOR(orig, lock.Options{KeySize: 6, Seed: 2, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Run(ctx, lr.Locked, oracle.NewSim(orig), Options{MaxExactIterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactConverged {
		t.Fatalf("did not converge: %+v", res)
	}
	if rate := errorRate(orig, lr.Locked, res.Key, 1024, 3); rate != 0 {
		t.Errorf("exact key has error rate %v", rate)
	}
}

func TestDoubleDIPStripsCompoundLocking(t *testing.T) {
	// The headline result of [18]: on RLL+SARLock, the 2-DIP phase
	// recovers a key whose residual error is bounded by SARLock's single
	// protected pattern (2^-12 here), while the vanilla SAT attack under
	// the same budget stays far from correct.
	rng := rand.New(rand.NewSource(7))
	orig := testcirc.Random(rng, 14, 120)
	lr, err := lock.Compound(orig, 8, 12, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lr.Locked.KeyInputs()); got != 20 {
		t.Fatalf("compound key inputs = %d, want 20", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, lr.Locked, oracle.NewSim(orig), Options{ErrorExitSamples: 128, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("2-DIP phase timed out: %+v", res)
	}
	rate := errorRate(orig, lr.Locked, res.Key, 8192, 9)
	if rate > 0.01 {
		t.Errorf("approximate key error rate %v, want <= 1%% (SARLock residual)", rate)
	}
	t.Logf("2-DIP iterations: %d, residual error rate: %v", res.TwoDIPIterations, rate)

	// Contrast: the vanilla SAT attack with the same number of queries
	// cannot converge (SARLock forces one query per wrong key).
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	sa, err := satattack.Run(sctx, lr.Locked, oracle.NewSim(orig),
		satattack.Options{MaxIterations: res.TwoDIPIterations + 5})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Solved {
		t.Logf("note: SAT attack converged in %d iterations (possible on small instances)", sa.Iterations)
	}
}

func TestDoubleDIPNoKeys(t *testing.T) {
	orig := testcirc.Fig2a()
	if _, err := Run(context.Background(), orig, oracle.NewSim(orig), Options{}); err == nil {
		t.Error("circuit without keys accepted")
	}
}

func TestDoubleDIPCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orig := testcirc.Random(rng, 12, 100)
	lr, err := lock.Compound(orig, 6, 10, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled
	res, err := Run(ctx, lr.Locked, oracle.NewSim(orig), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("cancelled context did not stop the attack")
	}
}

func TestCompoundCorrectKeyRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	orig := testcirc.Random(rng, 10, 80)
	lr, err := lock.Compound(orig, 5, 8, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	if !testcirc.LockedAgreesWithOriginal(orig, lr.Locked, lr.Key, 512, 15) {
		t.Error("compound correct key does not restore the function")
	}
}
