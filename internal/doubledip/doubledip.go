// Package doubledip implements the Double DIP attack of Shen & Zhou [18]
// (cited in the paper's related work as the attack that broke SARLock).
// Each iteration demands a distinguishing input that separates at least
// two distinct candidate keys from each other — a "2-DIP". Point-function
// schemes like SARLock can serve at most one wrong key per input pattern,
// so 2-DIPs never waste a query on the SARLock layer; against compound
// locking (traditional + SARLock, see lock.Compound) the attack strips
// the traditional layer in a handful of queries and returns a key whose
// residual error is bounded by the SARLock layer's single protected
// pattern.
//
// After the 2-DIP phase converges, an optional exact phase runs the
// standard single-DIP loop to full convergence (can be exponential on
// point functions, hence the iteration cap).
package doubledip

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// Options tunes a Double DIP run. Wall-clock budgets are expressed by
// cancelling (or setting a deadline on) the run context.
type Options struct {
	// MaxIterations bounds the total distinguishing-input queries across
	// both phases (<= 0: unlimited). When the budget runs out the attack
	// stops with TimedOut and extracts the best key consistent with the
	// observations so far.
	MaxIterations int
	// MaxExactIterations bounds the exact single-DIP convergence phase
	// after the 2-DIP phase (0 skips it; point functions make it
	// exponential).
	MaxExactIterations int
	// ErrorExitSamples, when positive, enables the AppSAT-style [17]
	// approximate exit: every few iterations the current candidate key
	// is checked against the oracle on this many random patterns;
	// disagreeing patterns are added as constraints (reinforcement) and
	// a fully agreeing batch ends the attack with an approximate key.
	// Needed when functionally equivalent key vectors make the
	// vector-disjointness of the 2-DIP formulation too weak to converge.
	ErrorExitSamples int
	// Seed drives the random sampling of the error-exit check.
	Seed int64
	// Solver builds the SAT engines (2-DIP solver D, extraction solver
	// P, exact-phase solver Q); nil means default single engines.
	Solver attack.SolverFactory
}

// Result reports a Double DIP run.
type Result struct {
	// Key is the extracted key (approximate after the 2-DIP phase,
	// exact when ExactConverged).
	Key map[string]bool
	// TwoDIPIterations counts queries made in the 2-DIP phase.
	TwoDIPIterations int
	// ExactIterations counts queries in the exact (single-DIP) phase.
	ExactIterations int
	// ExactConverged is true when the single-DIP phase proved no
	// distinguishing input remains.
	ExactConverged bool
	// ApproximateExit is true when the AppSAT-style error check ended
	// the attack (key correct up to a low residual error).
	ApproximateExit bool
	// TimedOut reports budget expiry during either phase.
	TimedOut bool
	// OracleQueries counts oracle calls.
	OracleQueries int
	// Elapsed is the total runtime.
	Elapsed time.Duration
}

// Run executes Double DIP with the given options. Cancelling ctx stops
// the attack promptly with a TimedOut result.
func Run(ctx context.Context, locked *circuit.Circuit, orc oracle.Oracle, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxExactIterations := opts.MaxExactIterations
	start := time.Now()
	res := &Result{}
	pis := locked.PrimaryInputs()
	keys := locked.KeyInputs()
	if len(keys) == 0 {
		return nil, fmt.Errorf("doubledip: circuit has no key inputs")
	}
	outIdx, err := attack.OutputIndex(locked, orc)
	if err != nil {
		return nil, err
	}

	// 2-DIP solver: four key copies sharing X forming two DISJOINT
	// distinguishing pairs at the same input — (K1,K2) and (K3,K4) with
	// Y1 != Y2, Y3 != Y4 and {K1,K2} ∩ {K3,K4} = ∅. A point-function
	// layer like SARLock can make at most one key misbehave per input,
	// so it can never serve two disjoint pairs: the query never "wastes"
	// an iteration on the SARLock layer (Shen & Zhou's key insight).
	// Encoded into a clause stream and frozen: the engine is primed with
	// the four-copy instance in one shot (O(1) and content-hashed for
	// persistent or memoizing backends) and the per-iteration I/O
	// constraints extend the live engine.
	dst := sat.NewStream()
	de := cnf.NewEncoder(dst)
	d1 := de.EncodeCircuitWith(locked, nil)
	shared := make(map[int]sat.Lit, len(pis))
	for _, pi := range pis {
		shared[pi] = d1[pi]
	}
	d2 := de.EncodeCircuitWith(locked, shared)
	d3 := de.EncodeCircuitWith(locked, shared)
	d4 := de.EncodeCircuitWith(locked, shared)
	de.NotEqual(cnf.EncodedOutputs(locked, d1), cnf.EncodedOutputs(locked, d2))
	de.NotEqual(cnf.EncodedOutputs(locked, d3), cnf.EncodedOutputs(locked, d4))
	k1 := cnf.InputLits(keys, d1)
	k2 := cnf.InputLits(keys, d2)
	k3 := cnf.InputLits(keys, d3)
	k4 := cnf.InputLits(keys, d4)
	for _, pair := range [][2][]sat.Lit{{k1, k3}, {k1, k4}, {k2, k3}, {k2, k4}} {
		de.NotEqual(pair[0], pair[1])
	}
	dGivens := []map[int]sat.Lit{
		attack.KeyGiven(keys, k1), attack.KeyGiven(keys, k2),
		attack.KeyGiven(keys, k3), attack.KeyGiven(keys, k4),
	}
	d := attack.NewEngineOn(ctx, opts.Solver, dst.Freeze())
	de.S = d

	// Key-extraction solver P.
	pst := sat.NewStream()
	pe := cnf.NewEncoder(pst)
	kp := make([]sat.Lit, len(keys))
	givenP := make(map[int]sat.Lit, len(keys))
	for i, k := range keys {
		kp[i] = pe.NewLit()
		givenP[k] = kp[i]
	}
	p := attack.NewEngineOn(ctx, opts.Solver, pst.Freeze())
	pe.S = p

	var queried []queryRecord
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5bd1e995))
	addEverywhere := func(xd map[string]bool, yd []bool) {
		queried = append(queried, queryRecord{xd, yd})
		for _, g := range dGivens {
			attack.AddIOConstraint(de, locked, xd, yd, outIdx, g)
		}
		attack.AddIOConstraint(pe, locked, xd, yd, outIdx, givenP)
	}
	budgetLeft := func() bool {
		return opts.MaxIterations <= 0 || res.TwoDIPIterations+res.ExactIterations < opts.MaxIterations
	}
	// Phase 1: 2-DIP loop with optional AppSAT-style error exit.
	for {
		if !budgetLeft() {
			res.TimedOut = true
			break
		}
		st := d.Solve()
		if st == sat.Unknown {
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if st == sat.Unsat {
			break
		}
		res.TwoDIPIterations++
		xd := make(map[string]bool, len(pis))
		for _, pi := range pis {
			xd[locked.Nodes[pi].Name] = d.LitTrue(d1[pi])
		}
		yd := orc.Query(xd)
		res.OracleQueries++
		addEverywhere(xd, yd)

		if opts.ErrorExitSamples > 0 && res.TwoDIPIterations%4 == 0 {
			if p.Solve() != sat.Sat {
				continue
			}
			key := make(map[string]bool, len(keys))
			assign := make(map[int]bool, len(keys))
			for i, k := range keys {
				key[locked.Nodes[k].Name] = p.LitTrue(kp[i])
				assign[k] = p.LitTrue(kp[i])
			}
			agree := true
			for s := 0; s < opts.ErrorExitSamples; s++ {
				rx := make(map[string]bool, len(pis))
				for _, pi := range pis {
					v := rng.Intn(2) == 1
					rx[locked.Nodes[pi].Name] = v
					assign[pi] = v
				}
				ry := orc.Query(rx)
				res.OracleQueries++
				got := locked.EvalOutputs(assign)
				for i := range got {
					if got[i] != ry[outIdx[i]] {
						// Reinforce: the disagreeing pattern becomes a
						// constraint, exactly as AppSAT does.
						addEverywhere(rx, ry)
						agree = false
						break
					}
				}
				if !agree {
					break
				}
			}
			if agree {
				res.Key = key
				res.ApproximateExit = true
				res.Elapsed = time.Since(start)
				return res, nil
			}
		}
	}

	// Phase 2: exact single-DIP convergence (optional; skipped when the
	// shared iteration budget is already spent).
	if maxExactIterations != 0 && budgetLeft() {
		// The two-copy miter prefix is run-independent (frozen before the
		// phase-1 observations), so repeated runs share its content hash;
		// the observations are replayed as the live engine's delta.
		qst := sat.NewStream()
		qe := cnf.NewEncoder(qst)
		q1 := qe.EncodeCircuitWith(locked, nil)
		sharedQ := make(map[int]sat.Lit, len(pis))
		for _, pi := range pis {
			sharedQ[pi] = q1[pi]
		}
		q2 := qe.EncodeCircuitWith(locked, sharedQ)
		qe.NotEqual(cnf.EncodedOutputs(locked, q1), cnf.EncodedOutputs(locked, q2))
		qGivens := []map[int]sat.Lit{
			attack.KeyGiven(keys, cnf.InputLits(keys, q1)),
			attack.KeyGiven(keys, cnf.InputLits(keys, q2)),
		}
		q := attack.NewEngineOn(ctx, opts.Solver, qst.Freeze())
		qe.S = q
		// Replay phase-1 observations.
		for _, rec := range queried {
			for _, g := range qGivens {
				attack.AddIOConstraint(qe, locked, rec.xd, rec.yd, outIdx, g)
			}
		}
		for {
			if maxExactIterations > 0 && res.ExactIterations >= maxExactIterations {
				res.TimedOut = true
				break
			}
			if !budgetLeft() {
				res.TimedOut = true
				break
			}
			st := q.Solve()
			if st == sat.Unknown {
				res.TimedOut = true
				break
			}
			if st == sat.Unsat {
				res.ExactConverged = true
				break
			}
			res.ExactIterations++
			xd := make(map[string]bool, len(pis))
			for _, pi := range pis {
				xd[locked.Nodes[pi].Name] = q.LitTrue(q1[pi])
			}
			yd := orc.Query(xd)
			res.OracleQueries++
			for _, g := range qGivens {
				attack.AddIOConstraint(qe, locked, xd, yd, outIdx, g)
			}
			attack.AddIOConstraint(pe, locked, xd, yd, outIdx, givenP)
		}
	}

	// Extract a key consistent with everything observed.
	switch p.Solve() {
	case sat.Unknown:
		res.TimedOut = true
		res.Elapsed = time.Since(start)
		return res, nil
	case sat.Unsat:
		return nil, fmt.Errorf("doubledip: key constraints unsatisfiable (oracle/netlist mismatch)")
	}
	res.Key = make(map[string]bool, len(keys))
	for i, k := range keys {
		res.Key[locked.Nodes[k].Name] = p.LitTrue(kp[i])
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

type queryRecord struct {
	xd map[string]bool
	yd []bool
}
