package sps

import (
	"context"
	"errors"
	"time"

	"repro/internal/attack"
)

// spsAttack adapts the SPS removal attack to the unified attack API.
type spsAttack struct {
	opts Options
}

// New returns the SPS attack as an attack.Attack. Target.Seed overrides
// opts.Seed when non-zero. Target.Workers is ignored: one simulation
// sweep dominates the runtime and is already bit-parallel. Target.Solver
// is ignored too — SPS is purely structural/simulation-based and never
// constructs a SAT engine.
func New(opts Options) attack.Attack { return &spsAttack{opts: opts} }

func (s *spsAttack) Name() string      { return "sps" }
func (s *spsAttack) NeedsOracle() bool { return false }

func (s *spsAttack) Run(ctx context.Context, tgt attack.Target) (*attack.Result, error) {
	if err := attack.CheckTarget(s, tgt); err != nil {
		return nil, err
	}
	opts := s.opts
	if tgt.Seed != 0 {
		opts.Seed = tgt.Seed
	}
	start := time.Now()
	res, err := Attack(ctx, tgt.Locked, opts)
	out := &attack.Result{Attack: s.Name(), Elapsed: time.Since(start)}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		out.Status = attack.StatusTimeout
		return out, nil
	}
	if errors.Is(err, ErrNoFlipSignal) {
		// The attack completed without finding a bypass: a negative
		// result, not a failure.
		out.Status = attack.StatusInconclusive
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	// SPS recovers the protected function without learning a key.
	out.Status = attack.StatusRecovered
	out.Recovered = res.Recovered
	out.Details = res
	return out, nil
}

func init() { attack.Register(New(Options{})) }
