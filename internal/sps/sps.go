// Package sps implements the signal probability skew (SPS) attack of
// Yasin et al. [30], the removal attack that defeated Anti-SAT (paper
// §I). The Anti-SAT block's flip signal g(X⊕Ka) ∧ ¬g(X⊕Kb) has a signal
// probability extremely close to 0 under random keys; the attack locates
// the most skewed key-dependent node and bypasses it (rewires it to
// constant 0), recovering the protected function without learning the
// key.
//
// On TTLock/SFLL the same bypass recovers only the functionality-stripped
// circuit, which differs from the original on the protected cube — this
// package's tests document exactly that resilience property, which is why
// the FALL attack (internal/fall) was needed in the first place.
package sps

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/circuit"
)

// ErrNoFlipSignal reports that the attack ran to completion without
// locating a bypassable flip signal — a negative result (the scheme
// resisted), not a usage error.
var ErrNoFlipSignal = errors.New("no flip-signal bypass found")

// Options tunes an SPS attack run.
type Options struct {
	// Words is the number of 64-pattern simulation words used to estimate
	// signal probabilities; <= 0 selects the default of 256.
	Words int
	// Seed drives the random pattern generation.
	Seed int64
}

// Candidate is a scored flip-signal candidate.
type Candidate struct {
	Node int
	// Prob is the sampled signal probability P[node = 1].
	Prob float64
	// Skew is |Prob - 0.5|; the Anti-SAT flip signal approaches 0.5.
	Skew float64
}

// Result reports an SPS attack run.
type Result struct {
	// FlipNode is the node identified as the flip signal.
	FlipNode int
	// Prob is its sampled signal probability.
	Prob float64
	// Recovered is the locked circuit with the flip node bypassed
	// (forced to constant 0). Key inputs remain but are inert if the
	// identification was correct.
	Recovered *circuit.Circuit
	// Candidates lists all scored candidates, most skewed first.
	Candidates []Candidate
}

// Attack estimates signal probabilities with Words*64 random patterns
// (inputs and keys random) and bypasses the most-skewed node whose
// support covers every key input. Cancelling ctx stops the attack
// promptly with the context's error.
func Attack(ctx context.Context, locked *circuit.Circuit, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	keys := locked.KeyInputs()
	if len(keys) == 0 {
		return nil, fmt.Errorf("sps: circuit has no key inputs")
	}
	words := opts.Words
	if words <= 0 {
		words = 256
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ones := make([]float64, locked.Len())
	vals := make([]uint64, locked.Len())
	for w := 0; w < words; w++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		for _, in := range locked.Inputs() {
			vals[in] = rng.Uint64()
		}
		locked.Simulate(vals)
		for id := range vals {
			ones[id] += float64(popcount(vals[id]))
		}
	}
	total := float64(words * 64)

	// Candidates: non-input nodes whose support includes every key input
	// (the flip signal merges both Anti-SAT halves).
	keySet := map[int]bool{}
	for _, k := range keys {
		keySet[k] = true
	}
	var cands []Candidate
	for id := range locked.Nodes {
		if locked.Nodes[id].Type == circuit.Input {
			continue
		}
		covered := 0
		for _, s := range locked.Support(id) {
			if keySet[s] {
				covered++
			}
		}
		if covered != len(keys) {
			continue
		}
		p := ones[id] / total
		skew := p
		if 1-p < skew {
			skew = 1 - p
		}
		cands = append(cands, Candidate{Node: id, Prob: p, Skew: 0.5 - skew})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("sps: %w: no node depends on all %d key inputs", ErrNoFlipSignal, len(keys))
	}
	// Most skewed first; prefer smaller node id (earlier in topological
	// order, i.e. the flip signal itself rather than logic built on it).
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Skew != cands[j].Skew {
			return cands[i].Skew > cands[j].Skew
		}
		return cands[i].Node < cands[j].Node
	})

	// Try candidates in skew order; accept the first whose bypass makes
	// the circuit key-independent (checkable by simulation alone, no
	// oracle: compare outputs under two random keys). Sibling nodes of
	// the flip signal inside the output XOR structure can tie on skew
	// but fail this check.
	for _, cand := range cands {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		recovered := bypass(locked, cand)
		if keyIndependent(recovered, rng, 64) {
			return &Result{
				FlipNode:   cand.Node,
				Prob:       cand.Prob,
				Recovered:  recovered,
				Candidates: cands,
			}, nil
		}
	}
	return nil, fmt.Errorf("sps: %w: no bypass of %d candidates removed the key dependence", ErrNoFlipSignal, len(cands))
}

// bypass forces the candidate node to its dominant constant value.
func bypass(locked *circuit.Circuit, cand Candidate) *circuit.Circuit {
	recovered := locked.Clone()
	recovered.Name = locked.Name + "_sps_recovered"
	recovered.Nodes[cand.Node].Type = circuit.Const0
	if cand.Prob >= 0.5 {
		recovered.Nodes[cand.Node].Type = circuit.Const1
	}
	recovered.Nodes[cand.Node].Fanins = nil
	return recovered
}

// keyIndependent reports whether the circuit's outputs agree under two
// independent random key assignments across words*64 random input
// patterns.
func keyIndependent(c *circuit.Circuit, rng *rand.Rand, words int) bool {
	v1 := make([]uint64, c.Len())
	v2 := make([]uint64, c.Len())
	for w := 0; w < words; w++ {
		for _, in := range c.Inputs() {
			if c.Nodes[in].IsKey {
				v1[in] = rng.Uint64()
				v2[in] = rng.Uint64()
			} else {
				r := rng.Uint64()
				v1[in] = r
				v2[in] = r
			}
		}
		c.Simulate(v1)
		c.Simulate(v2)
		for _, o := range c.Outputs {
			if v1[o] != v2[o] {
				return false
			}
		}
	}
	return true
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
