package sps

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/lock"
	"repro/internal/testcirc"
)

func TestSPSDefeatsAntiSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := testcirc.Random(rng, 10, 80)
	lr, err := lock.AntiSAT(orig, lock.Options{KeySize: 12, Seed: 3, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(context.Background(), lr.Locked, Options{Words: 256, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The flip signal is nearly always 0 under random keys.
	if res.Prob > 0.05 && res.Prob < 0.95 {
		t.Errorf("identified node has probability %v; expected extreme skew", res.Prob)
	}
	// The bypassed circuit must equal the original regardless of keys.
	if !testcirc.LockedAgreesWithOriginal(orig, res.Recovered, map[string]bool{}, 512, 9) {
		t.Error("SPS-recovered circuit differs from the original (with keys at 0)")
	}
	randomKey := map[string]bool{}
	for _, name := range lr.KeyNames {
		randomKey[name] = rng.Intn(2) == 1
	}
	if !testcirc.LockedAgreesWithOriginal(orig, res.Recovered, randomKey, 512, 11) {
		t.Error("SPS-recovered circuit still depends on the key")
	}
}

func TestSPSDoesNotDefeatTTLock(t *testing.T) {
	// The paper's motivation: SFLL/TTLock resists removal attacks because
	// bypassing the restoration unit leaves the functionality-stripped
	// circuit, which differs from the original on the protected cube.
	orig := testcirc.Fig2a()
	lr, err := lock.TTLock(orig, lock.Options{KeySize: 4, Seed: 5, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(context.Background(), lr.Locked, Options{Words: 512, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustively compare the recovered circuit with the original: it
	// must differ on at least one input pattern (the protected cube).
	differs := false
	for p := 0; p < 16; p++ {
		aOrig := map[int]bool{}
		aRec := map[int]bool{}
		for i, id := range orig.PrimaryInputs() {
			v := p&(1<<uint(i)) != 0
			aOrig[id] = v
			if id2, ok := res.Recovered.NodeByName(orig.Nodes[id].Name); ok {
				aRec[id2] = v
			}
		}
		if orig.EvalOutputs(aOrig)[0] != res.Recovered.EvalOutputs(aRec)[0] {
			differs = true
		}
	}
	if !differs {
		t.Error("SPS unexpectedly recovered a TTLock-protected circuit exactly")
	}
}

func TestSPSErrors(t *testing.T) {
	orig := testcirc.Fig2a()
	if _, err := Attack(context.Background(), orig, Options{Words: 16, Seed: 1}); err == nil {
		t.Error("circuit without keys accepted")
	}
}

func TestSPSCandidatesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := testcirc.Random(rng, 8, 60)
	lr, err := lock.AntiSAT(orig, lock.Options{KeySize: 8, Seed: 4, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(context.Background(), lr.Locked, Options{Words: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i-1].Skew < res.Candidates[i].Skew {
			t.Fatal("candidates not sorted by skew")
		}
	}
}
