// Package genbench generates the benchmark circuit suite used by the
// experiments. The paper evaluates on ISCAS'85 and MCNC circuits
// (Table I); those netlists are not redistributable here, so this package
// builds deterministic synthetic stand-ins with the same interface
// dimensions (#inputs, #outputs, #keys) and approximately the same gate
// counts. Every FALL analysis targets the inserted locking logic, so the
// host circuit's exact function is immaterial to the attack shape; the
// synthetic hosts provide the same optimization noise and SAT load (see
// DESIGN.md, substitution 1).
package genbench

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// Spec mirrors one row of the paper's Table I.
type Spec struct {
	Name    string
	Inputs  int
	Outputs int
	Keys    int
	Gates   int // original circuit gate count
}

// TableI lists the 20 benchmark circuits of the paper's Table I with
// their input/output/key counts and original gate counts.
var TableI = []Spec{
	{"ex1010", 10, 10, 10, 2754},
	{"apex4", 10, 19, 10, 2886},
	{"c1908", 33, 25, 33, 414},
	{"c432", 36, 7, 36, 209},
	{"apex2", 39, 3, 39, 345},
	{"c1355", 41, 32, 41, 504},
	{"seq", 41, 35, 41, 1964},
	{"c499", 41, 32, 41, 400},
	{"k2", 46, 45, 46, 1474},
	{"c3540", 50, 22, 50, 1038},
	{"c880", 60, 26, 60, 327},
	{"dalu", 75, 16, 64, 1202},
	{"i9", 88, 63, 64, 591},
	{"i8", 133, 81, 64, 1725},
	{"c5315", 178, 123, 64, 1773},
	{"i4", 192, 6, 64, 246},
	{"i7", 199, 67, 64, 663},
	{"c7552", 207, 108, 64, 2074},
	{"c2670", 233, 140, 64, 717},
	{"des", 256, 245, 64, 3839},
}

// ByName returns the Table I spec with the given circuit name.
func ByName(name string) (Spec, bool) {
	for _, s := range TableI {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ParseScale maps a CLI scale name to its benchmark specs. It is the
// single definition of the paper/medium/small/tiny suites, shared by
// cmd/fallbench and cmd/campaign — the two must agree or a merged
// campaign could never be byte-identical to a monolithic run of "the
// same" scale.
func ParseScale(name string) ([]Spec, error) {
	switch name {
	case "paper":
		return TableI, nil
	case "medium":
		return Scaled(TableI, 4, 24), nil
	case "small":
		return Scaled(TableI, 8, 16), nil
	case "tiny":
		return Scaled(TableI, 16, 12)[:6], nil
	}
	return nil, fmt.Errorf("genbench: unknown scale %q (want paper, medium, small or tiny)", name)
}

// Scaled returns a copy of specs with gate counts divided by factor
// (minimum floor gates) and key sizes capped at maxKeys, for quick
// experiment runs. Interface dimensions are reduced only as far as the
// key cap requires.
func Scaled(specs []Spec, factor int, maxKeys int) []Spec {
	out := make([]Spec, len(specs))
	for i, s := range specs {
		g := s.Gates / factor
		min := s.Inputs + s.Outputs
		if g < min {
			g = min
		}
		if g < 60 {
			g = 60
		}
		k := s.Keys
		if k > maxKeys {
			k = maxKeys
		}
		out[i] = Spec{Name: s.Name, Inputs: s.Inputs, Outputs: s.Outputs, Keys: k, Gates: g}
	}
	return out
}

// Generate builds a deterministic synthetic circuit matching the spec's
// interface dimensions, with gate count equal to spec.Gates. The circuit
// always contains at least one output whose support covers every input,
// so SFLL locking with up to min(Inputs, Keys) key bits is possible.
func Generate(spec Spec, seed int64) (*circuit.Circuit, error) {
	if spec.Inputs < 2 || spec.Outputs < 1 {
		return nil, fmt.Errorf("genbench: %s: need >= 2 inputs and >= 1 output", spec.Name)
	}
	minGates := (spec.Inputs - 1) + spec.Outputs
	if spec.Gates < minGates {
		return nil, fmt.Errorf("genbench: %s: %d gates cannot host spine+outputs (need >= %d)", spec.Name, spec.Gates, minGates)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(spec.Name))<<32))
	c := circuit.New(spec.Name)
	ins := make([]int, spec.Inputs)
	for i := range ins {
		ins[i] = c.AddInput(fmt.Sprintf("x%d", i))
	}
	// XOR/XNOR spine: guarantees a full-support node.
	acc := ins[0]
	spineLen := spec.Inputs - 1
	spine := make([]int, 0, spineLen)
	for i := 1; i < spec.Inputs; i++ {
		t := circuit.Xor
		if rng.Intn(4) == 0 {
			t = circuit.Xnor
		}
		acc = c.MustGate(fmt.Sprintf("s%d", i), t, acc, ins[i])
		spine = append(spine, acc)
	}
	pool := append(append([]int(nil), ins...), spine...)
	// Random soup, biased toward recent nodes to build depth.
	soup := spec.Gates - spineLen - spec.Outputs
	types := []circuit.GateType{
		circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
		circuit.And, circuit.Or, // weight simple gates higher
		circuit.Xor, circuit.Xnor, circuit.Not,
	}
	pick := func() int {
		if rng.Intn(3) > 0 && len(pool) > 16 {
			return pool[len(pool)-1-rng.Intn(16)]
		}
		return pool[rng.Intn(len(pool))]
	}
	for i := 0; i < soup; i++ {
		t := types[rng.Intn(len(types))]
		var id int
		if t == circuit.Not {
			id = c.MustGate(fmt.Sprintf("g%d", i), t, pick())
		} else {
			a, b := pick(), pick()
			for b == a {
				b = pick()
			}
			id = c.MustGate(fmt.Sprintf("g%d", i), t, a, b)
		}
		pool = append(pool, id)
	}
	// Output mixers: o0 combines the full-support spine tail; the rest
	// mix deep soup nodes.
	for i := 0; i < spec.Outputs; i++ {
		var a int
		if i == 0 {
			a = acc
		} else {
			a = pick()
		}
		b := pick()
		for b == a {
			b = pick()
		}
		t := circuit.Xor
		if i != 0 {
			t = types[rng.Intn(4)] // AND/NAND/OR/NOR for non-critical outputs
		}
		o := c.MustGate(fmt.Sprintf("o%d", i), t, a, b)
		c.MarkOutput(o)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("genbench: %s: %w", spec.Name, err)
	}
	return c, nil
}

// GenerateAll builds the full suite for the given specs with one seed per
// circuit derived from base.
func GenerateAll(specs []Spec, base int64) (map[string]*circuit.Circuit, error) {
	out := make(map[string]*circuit.Circuit, len(specs))
	for i, s := range specs {
		ckt, err := Generate(s, base+int64(i)*1009)
		if err != nil {
			return nil, err
		}
		out[s.Name] = ckt
	}
	return out, nil
}
