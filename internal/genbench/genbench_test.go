package genbench

import (
	"testing"

	"repro/internal/lock"
)

func TestTableIDimensions(t *testing.T) {
	if len(TableI) != 20 {
		t.Fatalf("Table I has %d rows, want 20", len(TableI))
	}
	// Spot-check against the paper.
	checks := map[string][4]int{ // in, out, keys, gates
		"c432":  {36, 7, 36, 209},
		"dalu":  {75, 16, 64, 1202},
		"des":   {256, 245, 64, 3839},
		"c7552": {207, 108, 64, 2074},
	}
	for name, want := range checks {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		got := [4]int{s.Inputs, s.Outputs, s.Keys, s.Gates}
		if got != want {
			t.Errorf("%s: got %v, want %v", name, got, want)
		}
	}
	// Keys = min(inputs, 64) per the paper.
	for _, s := range TableI {
		want := s.Inputs
		if want > 64 {
			want = 64
		}
		if s.Keys != want {
			t.Errorf("%s: keys = %d, want min(in,64) = %d", s.Name, s.Keys, want)
		}
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	for _, s := range Scaled(TableI, 8, 24) {
		c, err := Generate(s, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if got := len(c.PrimaryInputs()); got != s.Inputs {
			t.Errorf("%s: inputs = %d, want %d", s.Name, got, s.Inputs)
		}
		if got := len(c.Outputs); got != s.Outputs {
			t.Errorf("%s: outputs = %d, want %d", s.Name, got, s.Outputs)
		}
		if got := c.NumGates(); got != s.Gates {
			t.Errorf("%s: gates = %d, want %d", s.Name, got, s.Gates)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestGenerateFullSupportOutput(t *testing.T) {
	// Every generated circuit must be lockable with spec.Keys bits:
	// some output must depend on at least that many inputs.
	for _, s := range Scaled(TableI, 8, 24) {
		c, err := Generate(s, 7)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		best := 0
		for _, o := range c.Outputs {
			if n := len(c.Support(o)); n > best {
				best = n
			}
		}
		if best < s.Keys {
			t.Errorf("%s: widest output support %d < keys %d", s.Name, best, s.Keys)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := ByName("c432")
	c1, err := Generate(s, 99)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(s, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Len() != c2.Len() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range c1.Nodes {
		if c1.Nodes[i].Type != c2.Nodes[i].Type {
			t.Fatalf("node %d type differs", i)
		}
	}
	c3, err := Generate(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := c1.Len() == c3.Len()
	if same {
		for i := range c1.Nodes {
			if c1.Nodes[i].Type != c3.Nodes[i].Type || len(c1.Nodes[i].Fanins) != len(c3.Nodes[i].Fanins) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical circuits")
	}
}

func TestGeneratedCircuitsLockable(t *testing.T) {
	// End-to-end: every scaled suite member must accept SFLL locking at
	// its spec'd key size.
	for _, s := range Scaled(TableI, 16, 12)[:6] {
		c, err := Generate(s, 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		h := s.Keys / 4
		lr, err := lock.SFLLHD(c, lock.Options{KeySize: s.Keys, H: h, Seed: 5, Optimize: true})
		if err != nil {
			t.Fatalf("%s: lock: %v", s.Name, err)
		}
		if got := len(lr.Locked.KeyInputs()); got != s.Keys {
			t.Errorf("%s: locked key inputs = %d, want %d", s.Name, got, s.Keys)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Name: "bad", Inputs: 1, Outputs: 1, Gates: 10}, 0); err == nil {
		t.Error("1-input spec accepted")
	}
	if _, err := Generate(Spec{Name: "bad", Inputs: 10, Outputs: 5, Gates: 3}, 0); err == nil {
		t.Error("impossible gate budget accepted")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a ghost")
	}
}

func TestScaledCapsKeys(t *testing.T) {
	sc := Scaled(TableI, 4, 16)
	for _, s := range sc {
		if s.Keys > 16 {
			t.Errorf("%s: keys = %d after cap 16", s.Name, s.Keys)
		}
		if s.Gates < 60 {
			t.Errorf("%s: gates = %d below floor", s.Name, s.Gates)
		}
	}
}

func TestGenerateAll(t *testing.T) {
	m, err := GenerateAll(Scaled(TableI, 16, 8)[:5], 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 5 {
		t.Fatalf("generated %d circuits, want 5", len(m))
	}
}

func TestParseScale(t *testing.T) {
	for _, name := range []string{"paper", "medium", "small", "tiny"} {
		specs, err := ParseScale(name)
		if err != nil || len(specs) == 0 {
			t.Errorf("ParseScale(%q) = %d specs, %v", name, len(specs), err)
		}
	}
	if specs, _ := ParseScale("paper"); len(specs) != len(TableI) {
		t.Error("paper scale is not Table I")
	}
	if specs, _ := ParseScale("tiny"); len(specs) != 6 {
		t.Errorf("tiny scale has %d specs, want 6", len(specs))
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted huge")
	}
}
