package server_test

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// lockedBuffer serializes writes: slog records arrive from both the
// worker goroutines and the request middleware.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestObservabilityEndpoints drives one job through a daemon with
// tracing and structured logging on, then checks the three surfaces:
// /metrics.prom parses as Prometheus text, /jobs/{id}/trace serves a
// span tree whose query spans reconcile with the artifact's solve_ns,
// and the request log carries tenant/job/status/duration fields.
func TestObservabilityEndpoints(t *testing.T) {
	orig, locked, _, _ := newTTLockFixture(t)
	logBuf := &lockedBuffer{}
	_, ts := startDaemon(t, server.Config{
		Workers:    1,
		TraceSpans: 1 << 14,
		Logger:     slog.New(slog.NewTextHandler(logBuf, nil)),
	})

	resp, view := submit(t, ts, "obs-tenant", server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Seed: 5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, view.ID, 30*time.Second)
	if final.State != server.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	var artifact struct {
		Result *struct {
			SolveNS int64 `json:"solve_ns"`
		} `json:"result"`
	}
	if resp := getJSON(t, ts, "/jobs/"+view.ID+"/result", &artifact); resp.StatusCode != http.StatusOK {
		t.Fatalf("result endpoint: %d", resp.StatusCode)
	}
	if artifact.Result == nil || artifact.Result.SolveNS <= 0 {
		t.Fatalf("artifact missing solve_ns: %+v", artifact.Result)
	}

	// Trace endpoint: NDJSON spans, job root present, query spans sum to
	// the artifact's solve_ns (the tracestat -reconcile contract).
	tResp, err := ts.Client().Get(ts.URL + "/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tResp.Body.Close()
	if tResp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %d", tResp.StatusCode)
	}
	if ct := tResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace content type %q", ct)
	}
	spans, err := obs.ReadSpans(tResp.Body)
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	rep := obs.Analyze([]*obs.TraceFile{{Path: "http", Spans: spans}}, 5)
	if rep.Queries == 0 {
		t.Fatal("trace has no query spans")
	}
	if cov := rep.Reconcile(artifact.Result.SolveNS); cov < 0.95 {
		t.Errorf("trace covers %.1f%% of artifact solve_ns, want >= 95%%", 100*cov)
	}
	var haveRoot bool
	for _, sp := range spans {
		if sp.Name == "job" {
			haveRoot = true
			if sp.Attrs["job"] != view.ID || sp.Attrs["tenant"] != "obs-tenant" {
				t.Errorf("job root attrs: %v", sp.Attrs)
			}
		}
	}
	if !haveRoot {
		t.Error("no job root span in trace")
	}

	// A job without tracing context still 404s cleanly on unknown ids.
	if r404, _ := ts.Client().Get(ts.URL + "/jobs/nope/trace"); r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: %d", r404.StatusCode)
	}

	// Prometheus endpoint: correct content type, every line matches the
	// exposition grammar, and the job histogram counted our run.
	pResp, err := ts.Client().Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer pResp.Body.Close()
	if ct := pResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("prom content type %q", ct)
	}
	body, err := io.ReadAll(pResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE+.]+(Inf)?$`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"attackd_job_seconds_count 1",
		"attackd_uptime_seconds",
		"attackd_queue_depth",
		`attackd_jobs{state="done"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics.prom missing %q:\n%s", want, out)
		}
	}

	// Request log: one line per API call with tenant, job, status, dur.
	logs := logBuf.String()
	if !regexp.MustCompile(`msg=request method=POST path=/jobs tenant=obs-tenant status=202`).MatchString(logs) {
		t.Errorf("submit request line missing:\n%s", logs)
	}
	if !strings.Contains(logs, "msg=\"job finished\" job="+view.ID) {
		t.Errorf("job transition line missing:\n%s", logs)
	}
	if !regexp.MustCompile(`path=/jobs/` + view.ID + `/trace [^\n]*status=200 dur=[^ ]+ job=` + view.ID).MatchString(logs) {
		t.Errorf("trace request line missing job id/duration:\n%s", logs)
	}
}
