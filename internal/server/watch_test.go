package server_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/genbench"
	"repro/internal/server"
)

// TestWatchCampaign fabricates a tiny campaign and lands artifacts
// incrementally while the watcher polls: it must emit one case event
// per artifact (marking failures), then a complete event, then return.
func TestWatchCampaign(t *testing.T) {
	plan, err := campaign.NewPlan(campaign.Config{
		Specs:      genbench.Scaled(genbench.TableI, 16, 12)[:2],
		Seed:       2024,
		SATIterCap: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cases) < 2 {
		t.Fatalf("plan has %d cases, need >= 2", len(plan.Cases))
	}
	dir := t.TempDir()

	events := make(chan server.Event, 4*len(plan.Cases))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	watchErr := make(chan error, 1)
	go func() {
		watchErr <- server.WatchCampaign(ctx, plan, []string{dir}, 10*time.Millisecond, func(ev server.Event) {
			events <- ev
		})
	}()

	// Land artifacts one at a time; the last one is a harness failure.
	for i, pc := range plan.Cases {
		a := &campaign.Artifact{PlanHash: plan.Hash, CaseID: pc.ID}
		if i == len(plan.Cases)-1 {
			a.Error = "injected failure"
		} else {
			a.Outcome = &exp.Outcome{Circuit: pc.Circuit, Attack: pc.Attack}
		}
		if err := campaign.WriteArtifact(dir, a); err != nil {
			t.Fatal(err)
		}
		// The corresponding case event must arrive before we move on —
		// this is what makes the watcher a progress stream rather than
		// a batch summary.
		select {
		case ev := <-events:
			if ev.Type != server.EventCase || ev.Case != pc.ID {
				t.Fatalf("artifact %d: got event %+v, want case event for %s", i, ev, pc.ID)
			}
			wantStatus := "ok"
			if i == len(plan.Cases)-1 {
				wantStatus = "FAILED"
			}
			if ev.Status != wantStatus {
				t.Errorf("case %s status = %q, want %q", pc.ID, ev.Status, wantStatus)
			}
			if ev.Done != i+1 || ev.Total != len(plan.Cases) {
				t.Errorf("case %s progress = %d/%d, want %d/%d", pc.ID, ev.Done, ev.Total, i+1, len(plan.Cases))
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("no event for artifact %d within 30s", i)
		}
	}

	select {
	case ev := <-events:
		if ev.Type != server.EventComplete {
			t.Fatalf("got %+v, want complete event", ev)
		}
		if ev.Done != len(plan.Cases) || ev.Failed != 1 {
			t.Errorf("complete event = %d done / %d failed, want %d / 1", ev.Done, ev.Failed, len(plan.Cases))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no complete event")
	}
	if err := <-watchErr; err != nil {
		t.Fatalf("watcher returned %v, want nil on completion", err)
	}
}

// TestWatchCampaignCancelled checks a watcher on an incomplete
// campaign returns the context error when cancelled.
func TestWatchCampaignCancelled(t *testing.T) {
	plan, err := campaign.NewPlan(campaign.Config{
		Specs:      genbench.Scaled(genbench.TableI, 16, 12)[:1],
		Seed:       2024,
		SATIterCap: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = server.WatchCampaign(ctx, plan, []string{t.TempDir()}, 10*time.Millisecond, func(server.Event) {
		t.Error("event emitted for empty directory")
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWatchCampaignForeignArtifact checks an artifact from a different
// plan fails the watch instead of being silently mixed in.
func TestWatchCampaignForeignArtifact(t *testing.T) {
	plan, err := campaign.NewPlan(campaign.Config{
		Specs:      genbench.Scaled(genbench.TableI, 16, 12)[:1],
		Seed:       2024,
		SATIterCap: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	foreign := &campaign.Artifact{PlanHash: "not-this-plan", CaseID: plan.Cases[0].ID}
	if err := campaign.WriteArtifact(dir, foreign); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = server.WatchCampaign(ctx, plan, []string{dir}, 10*time.Millisecond, func(server.Event) {})
	if err == nil || ctx.Err() != nil {
		t.Fatalf("err = %v, want plan-hash mismatch error", err)
	}
}
