package server

import (
	"context"
	"time"

	"repro/internal/campaign"
)

// WatchCampaign tails a campaign's artifact directories and emits one
// EventCase per newly landed artifact plus a final EventComplete once
// every planned case has one — the `campaign watch` subcommand, built
// on the same Event type and stream encodings as the daemon's job
// streams. Atomic artifact writes guarantee every file the watcher
// reads is complete, so polling the directory is race-free by
// construction (no partial-read guards needed).
//
// The watcher polls every interval (default 1s), emits events in plan
// order within a poll, and returns nil once the campaign is complete,
// or ctx.Err() when cancelled first. Artifacts from foreign plans are
// an error, exactly as in a merge.
func WatchCampaign(ctx context.Context, plan *campaign.Plan, dirs []string, interval time.Duration, emit func(Event)) error {
	if interval <= 0 {
		interval = time.Second
	}
	seen := make(map[string]bool, len(plan.Cases))
	var seq int64
	done, failed := 0, 0
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		arts, err := campaign.ReadArtifacts(plan, dirs)
		if err != nil {
			return err
		}
		for _, pc := range plan.Cases {
			a, ok := arts[pc.ID]
			if !ok || seen[pc.ID] {
				continue
			}
			seen[pc.ID] = true
			done++
			status := "ok"
			if a.Failed() {
				failed++
				status = "FAILED"
			}
			seq++
			emit(Event{
				Seq: seq, Time: time.Now(), Type: EventCase,
				Case: pc.ID, Status: status,
				Done: done, Total: len(plan.Cases), Failed: failed,
			})
		}
		if done == len(plan.Cases) {
			seq++
			emit(Event{
				Seq: seq, Time: time.Now(), Type: EventComplete,
				Done: done, Total: len(plan.Cases), Failed: failed,
			})
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
