package server

import (
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Enqueue when the bounded queue is at
// capacity — the HTTP layer translates it into 429 + Retry-After
// (backpressure instead of unbounded memory growth).
var ErrQueueFull = errors.New("server: job queue full")

type queueItem struct {
	id     string
	tenant string
}

// queue is the bounded FIFO job queue with per-tenant concurrency
// fairness: Dequeue hands out the oldest job whose tenant is below its
// running-job cap, so a tenant that saturates its own cap queues behind
// itself without starving other tenants' jobs that arrived later.
type queue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	capacity  int
	tenantCap int // max concurrently running jobs per tenant; 0 = unlimited
	items     []queueItem
	running   map[string]int // tenant -> running count
	closed    bool
}

func newQueue(capacity, tenantCap int) *queue {
	q := &queue{capacity: capacity, tenantCap: tenantCap, running: map[string]int{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Enqueue appends a job, failing with ErrQueueFull at capacity and
// errQueueClosed once the daemon is draining.
func (q *queue) Enqueue(id, tenant string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if len(q.items) >= q.capacity {
		return ErrQueueFull
	}
	q.items = append(q.items, queueItem{id: id, tenant: tenant})
	q.cond.Broadcast()
	return nil
}

var errQueueClosed = errors.New("server: daemon is shutting down")

// Dequeue blocks until an eligible job is available (FIFO among jobs
// whose tenant is under its cap) and claims a running slot for its
// tenant. It returns ok == false once the queue is closed and no
// eligible work remains — the worker-exit signal. Callers must pair
// every successful Dequeue with a Release.
func (q *queue) Dequeue() (id, tenant string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		// Closed means dispatch stops NOW: remaining items stay queued
		// (they are already persisted as queued, so a later daemon
		// resumes them) rather than being started mid-shutdown.
		if q.closed {
			return "", "", false
		}
		for i, it := range q.items {
			if q.tenantCap > 0 && q.running[it.tenant] >= q.tenantCap {
				continue
			}
			q.items = append(q.items[:i], q.items[i+1:]...)
			q.running[it.tenant]++
			return it.id, it.tenant, true
		}
		q.cond.Wait()
	}
}

// Release returns a tenant's running slot, unblocking Dequeue for jobs
// that were waiting on the tenant cap.
func (q *queue) Release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.running[tenant] > 0 {
		q.running[tenant]--
		if q.running[tenant] == 0 {
			delete(q.running, tenant)
		}
	}
	q.cond.Broadcast()
}

// Remove deletes a queued job (DELETE /jobs/{id} before dispatch).
func (q *queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it.id == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Close stops dispatch: pending Dequeues return once no eligible work
// remains, and further Enqueues fail. Jobs still in the queue stay
// persisted as queued — a restarted daemon re-enqueues them.
func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth returns the number of queued (not yet dispatched) jobs.
func (q *queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Snapshot returns queued and running counts per tenant.
func (q *queue) Snapshot() (queued, running map[string]int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	queued = map[string]int{}
	for _, it := range q.items {
		queued[it.tenant]++
	}
	running = make(map[string]int, len(q.running))
	for t, n := range q.running {
		running[t] = n
	}
	return queued, running
}

// rateLimiter is a per-tenant token bucket over job submissions: rate
// tokens/second with a burst-sized bucket. Allow reports whether a
// submission may proceed now and, if not, how long until the next token
// — the Retry-After the HTTP layer returns with 429.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables limiting
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

func (rl *rateLimiter) Allow(tenant string, now time.Time) (bool, time.Duration) {
	if rl.rate <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[tenant]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	b.last = now
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait
}
