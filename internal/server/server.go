package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/sat"
)

// Config tunes a daemon instance.
type Config struct {
	// Dir is the job-store directory (created if missing).
	Dir string
	// Workers is the job worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued (undispatched) jobs;
	// submissions beyond it get 429 + Retry-After. <= 0 means 256.
	QueueDepth int
	// TenantConcurrency caps concurrently running jobs per tenant
	// (X-API-Key header; empty key = the "anonymous" tenant). A tenant
	// at its cap queues behind itself without starving other tenants.
	// <= 0 means no cap.
	TenantConcurrency int
	// TenantRate / TenantBurst rate-limit job submissions per tenant
	// (token bucket, submissions/second). Rate <= 0 disables limiting.
	TenantRate  float64
	TenantBurst int
	// JobWorkers bounds each job's intra-attack parallelism
	// (Target.Workers); a job asking for more is clamped. <= 0 means
	// GOMAXPROCS.
	JobWorkers int
	// JobTimeout bounds any job that does not set its own timeout;
	// 0 means unbounded.
	JobTimeout time.Duration
	// Memo, when non-nil, is a daemon-global cross-query verdict cache
	// (sat.NewMemo) shared by every job's solvers: repeated submissions
	// of the same instance answer repeated SAT queries from the cache.
	// Verdicts are unchanged — the cache replays query history on
	// misses — and hit/miss counters surface in GET /metrics.
	Memo *sat.Memo
	// TraceSpans, when > 0, keeps an in-memory span trace per job: each
	// job runs under an obs.Tracer emitting to a bounded ring of this
	// capacity (oldest spans evicted), served as NDJSON from
	// GET /jobs/{id}/trace. 0 disables per-job tracing.
	TraceSpans int
	// ClaimLease, when > 0, coordinates several daemons sharing one
	// store directory with the campaign package's claim-file discipline:
	// a worker claims <job>.json.claim (O_EXCL, mtime heartbeat) before
	// running, skips jobs a live peer holds (re-checking after half a
	// lease, when a dead peer's claim has had time to age), and adopts a
	// peer's terminal result straight from disk. A claim not heartbeated
	// for a full lease is stolen, so a killed daemon delays its jobs by
	// at most one lease. 0 (the default) runs claimless — the
	// single-daemon fast path, byte-identical behavior to before.
	ClaimLease time.Duration
	// Logger, when non-nil, receives structured log records: one per
	// job transition and one per API request (method, path, tenant, job
	// id, status, duration).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// AnonymousTenant is the tenant jobs submitted without an X-API-Key
// header belong to.
const AnonymousTenant = "anonymous"

// Server is the attack-as-a-service daemon: a bounded job queue and
// worker pool over the attack registry, a durable job store, per-job
// event streams, and the HTTP handlers tying them together. Construct
// with New, mount Handler on an http.Server, call Start, and Drain on
// shutdown.
type Server struct {
	cfg     Config
	store   *Store
	queue   *queue
	limiter *rateLimiter
	started time.Time
	owner   string // this daemon's identity in job claim files

	reg          *obs.Registry  // Prometheus-text metrics, served at /metrics.prom
	jobSeconds   *obs.Histogram // wall-clock of finished job runs
	solveSeconds *obs.Histogram // per-job cumulative SAT solve time

	mu       sync.Mutex
	jobs     map[string]*Job
	cancels  map[string]context.CancelFunc
	events   map[string][]Event // per-job history, replayed to late subscribers
	subs     map[string]map[chan Event]bool
	seq      map[string]int64 // per-job event sequence
	traces   map[string]*obs.Ring
	stats    []sat.ConfigStats
	draining bool
	drainNow bool // grace expired: dispatch must not start anything

	wg sync.WaitGroup // worker goroutines
}

// New opens the job store and recovers persisted state: terminal jobs
// become fetchable artifacts, queued jobs re-enqueue, and jobs a
// previous daemon left running (crash or drain mid-solve) fall back to
// queued and re-enqueue — the atomic store guarantees whatever is on
// disk is complete, so recovery is a pure state-machine walk.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		queue:   newQueue(cfg.QueueDepth, cfg.TenantConcurrency),
		limiter: newRateLimiter(cfg.TenantRate, cfg.TenantBurst),
		started: time.Now(),
		owner:   campaign.DefaultOwner(),
		jobs:    map[string]*Job{},
		cancels: map[string]context.CancelFunc{},
		events:  map[string][]Event{},
		subs:    map[string]map[chan Event]bool{},
		seq:     map[string]int64{},
		traces:  map[string]*obs.Ring{},
	}
	s.buildRegistry()
	jobs, err := store.List()
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		if !j.State.Terminal() {
			j.State = StateQueued
			j.Started = nil
			if err := store.Put(j); err != nil {
				return nil, err
			}
		}
		s.jobs[j.ID] = j
		if j.Result != nil {
			s.stats = sat.MergeStats(s.stats, j.PortfolioStats)
		}
	}
	// Re-enqueue in List's deterministic oldest-first order, overflow
	// impossible: recovery happens before any submission, and the queue
	// held these jobs before (enlarge QueueDepth if it still overflows
	// a shrunken config).
	for _, j := range jobs {
		if j.State.Terminal() {
			continue
		}
		if err := s.queue.Enqueue(j.ID, j.Tenant); err != nil {
			return nil, fmt.Errorf("server: re-enqueue recovered job %s: %w", j.ID, err)
		}
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				id, tenant, ok := s.queue.Dequeue()
				if !ok {
					return
				}
				s.runJob(id)
				s.queue.Release(tenant)
			}
		}()
	}
}

// Drain shuts the daemon down gracefully: stop dispatching, give
// in-flight jobs up to grace to finish, then cancel the stragglers —
// which revert to queued on disk, so a restarted daemon resumes them.
// The atomic store means either outcome leaves only complete job files.
func (s *Server) Drain(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
		return
	case <-timer.C:
	}
	s.mu.Lock()
	s.drainNow = true // a dequeued-but-not-started job must stay queued
	for id, cancel := range s.cancels {
		if j := s.jobs[id]; j != nil && !j.userCancel {
			j.drainCancel = true
		}
		cancel()
	}
	s.mu.Unlock()
	<-done
}

// log returns the configured structured logger, or a discard logger
// when logging is off — call sites never branch.
func (s *Server) log() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.New(slog.DiscardHandler)
}

// publish appends a job event to the history and fans it out to live
// subscribers. Called with s.mu held.
func (s *Server) publishLocked(j *Job, status, detail string) {
	s.seq[j.ID]++
	ev := Event{
		Seq:    s.seq[j.ID],
		Time:   time.Now(),
		Type:   EventJob,
		Job:    j.ID,
		State:  string(j.State),
		Status: status,
		Detail: detail,
	}
	s.events[j.ID] = append(s.events[j.ID], ev)
	for ch := range s.subs[j.ID] {
		select {
		case ch <- ev:
		default: // subscriber is not draining; it will catch up from state
		}
	}
}

// subscribe returns the job's event history and, for a live job, a
// registered channel for subsequent events (nil for terminal jobs — the
// history already ends in the terminal event). An empty history (daemon
// restarted since the transition) synthesizes a snapshot event of the
// current state.
func (s *Server) subscribe(id string) (history []Event, ch chan Event, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, exists := s.jobs[id]
	if !exists {
		return nil, nil, false
	}
	history = append(history, s.events[id]...)
	if len(history) == 0 {
		s.seq[id]++
		history = append(history, Event{
			Seq: s.seq[id], Time: time.Now(), Type: EventJob,
			Job: id, State: string(j.State),
		})
	}
	if j.State.Terminal() {
		return history, nil, true
	}
	ch = make(chan Event, 16)
	if s.subs[id] == nil {
		s.subs[id] = map[chan Event]bool{}
	}
	s.subs[id][ch] = true
	return history, ch, true
}

func (s *Server) unsubscribe(id string, ch chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs[id], ch)
}

// runJob executes one dequeued job end to end: transition to running,
// resolve the spec, run the attack under the job's context, and
// finalize — done/failed/cancelled, or back to queued when a graceful
// drain cut the solve short. With Config.ClaimLease set the job is
// first claimed against peer daemons sharing the store; the deferred
// release covers every exit, including the drain-requeue path, so a
// requeued job is immediately claimable by a peer.
func (s *Server) runJob(id string) {
	if s.cfg.ClaimLease > 0 {
		claim, err := campaign.TryClaim(s.store.ClaimPath(id),
			campaign.ClaimInfo{Owner: s.owner, Case: id}, s.cfg.ClaimLease)
		switch {
		case err != nil:
			// Run unclaimed rather than wedge the queue: the worst case is
			// duplicate work, and the store's atomic writes keep whichever
			// terminal record lands last complete.
			s.log().Error("claim job", "job", id, "err", err)
		case claim == nil:
			s.deferToPeer(id)
			return
		default:
			// A peer may have finished the job while it sat in our queue
			// (recovery re-enqueues whatever the shared store lists).
			if disk, derr := s.store.Get(id); derr == nil && disk.State.Terminal() {
				claim.Release()
				s.adoptFromPeer(id, disk)
				return
			}
			defer claim.Release()
		}
	}
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.State != StateQueued || j.userCancel || s.drainNow {
		// A DELETE raced the dispatch; finalize the cancellation here
		// if the delete handler could not (job already dequeued). A
		// hard drain racing the dispatch instead leaves the job queued
		// on disk for the next daemon.
		if j != nil && j.State == StateQueued && j.userCancel {
			s.finalizeLocked(j, StateCancelled, nil, "", nil, "")
		}
		s.mu.Unlock()
		return
	}
	now := time.Now()
	j.State = StateRunning
	j.Started = &now
	ctx, cancel := context.WithCancel(context.Background())
	s.cancels[id] = cancel
	spec := j.Spec
	tenant := j.Tenant
	if err := s.store.Put(j); err != nil {
		s.log().Error("persist job", "job", id, "err", err)
	}
	s.publishLocked(j, "", "")
	s.mu.Unlock()
	s.log().Info("job running", "job", id, "attack", spec.Attack, "tenant", tenant)
	defer cancel()

	timeout := spec.Timeout
	if timeout <= 0 {
		timeout = s.cfg.JobTimeout
	}
	runCtx := ctx
	if timeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}
	if spec.Workers <= 0 || spec.Workers > s.cfg.JobWorkers {
		spec.Workers = s.cfg.JobWorkers
	}

	start := time.Now()
	r, rerr := spec.Resolve()
	var res *attack.Result
	if rerr == nil {
		if s.cfg.Memo != nil {
			// Attach the daemon-global verdict cache. A job with no solver
			// flags gets a zero-value setup, which builds exactly the
			// default engine, so results are unchanged.
			if r.setup == nil {
				r.setup = &attack.SolverSetup{}
				r.target.Solver = r.setup.Factory()
			}
			r.setup.Memo = s.cfg.Memo
		}
		var root *obs.Span
		if s.cfg.TraceSpans > 0 {
			// Per-job span trace into a bounded ring, served from
			// GET /jobs/{id}/trace. Like the memo path, tracing forces a
			// zero-value setup, which builds exactly the default engine.
			ring := obs.NewRing(s.cfg.TraceSpans)
			root = obs.New(ring).Start("job", "job", id, "attack", spec.Attack, "tenant", tenant)
			if r.setup == nil {
				r.setup = &attack.SolverSetup{}
				r.target.Solver = r.setup.Factory()
			}
			r.setup.TraceTo(root)
			runCtx = obs.With(runCtx, root)
			s.mu.Lock()
			s.traces[id] = ring
			s.mu.Unlock()
		}
		res, rerr = r.atk.Run(runCtx, r.target)
		r.setup.Close() // release persistent solver processes, if any
		if res != nil {
			root.Set("status", res.Status.String())
		}
		root.End() // after Close, so persistent-session spans precede it
	}
	wall := time.Since(start)

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, id)
	switch {
	case j.userCancel:
		s.finalizeLocked(j, StateCancelled, nil, "", nil, "")
	case j.drainCancel:
		// The drain cancelled this solve; no result to persist. Back to
		// queued on disk, so the next daemon picks it up from scratch.
		j.State = StateQueued
		j.Started = nil
		j.drainCancel = false
		if err := s.store.Put(j); err != nil {
			s.log().Error("persist job", "job", id, "err", err)
		}
		s.publishLocked(j, "", "requeued by graceful drain")
	case rerr != nil:
		s.jobSeconds.Observe(wall.Seconds())
		s.finalizeLocked(j, StateFailed, nil, rerr.Error(), nil, "")
	default:
		s.jobSeconds.Observe(wall.Seconds())
		if solve := r.setup.SolveTime(); solve > 0 {
			s.solveSeconds.Observe(solve.Seconds())
		}
		rj := res.JSON()
		rj.WallNS = wall
		rj.SolveNS = int64(r.setup.SolveTime())
		rj.Engines = r.setup.EngineLabels()
		recovered := ""
		if res.Recovered != nil {
			recovered = bench.WriteString(res.Recovered)
		}
		s.finalizeLocked(j, StateDone, &rj, "", r.setup.WinStats(), recovered)
	}
}

// deferToPeer handles a job a live peer daemon has claimed: adopt the
// peer's terminal record if it already finished, otherwise check back
// after half a lease — by then the peer has either finished (adopt) or
// died (its claim aged past the lease and the retry claims the job).
func (s *Server) deferToPeer(id string) {
	if disk, err := s.store.Get(id); err == nil && disk.State.Terminal() {
		s.adoptFromPeer(id, disk)
		return
	}
	s.mu.Lock()
	j := s.jobs[id]
	waiting := j != nil && j.State == StateQueued && !s.draining
	s.mu.Unlock()
	if !waiting {
		return // cancelled, adopted meanwhile, or draining: leave it to disk recovery
	}
	s.log().Info("job claimed by peer, deferring", "job", id, "retry", s.cfg.ClaimLease/2)
	time.AfterFunc(s.cfg.ClaimLease/2, func() {
		s.mu.Lock()
		j := s.jobs[id]
		ok := j != nil && j.State == StateQueued && !s.draining
		tenant := ""
		if ok {
			tenant = j.Tenant
		}
		s.mu.Unlock()
		if !ok {
			return
		}
		if err := s.queue.Enqueue(id, tenant); err != nil {
			s.log().Error("re-enqueue peer-claimed job", "job", id, "err", err)
		}
	})
}

// adoptFromPeer installs a terminal job record a peer daemon persisted
// to the shared store: the local copy becomes terminal without running
// anything, subscribers get their terminal event, and the peer's win
// statistics fold into this daemon's ledger exactly as a local finish
// would have.
func (s *Server) adoptFromPeer(id string, disk *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.State.Terminal() {
		return
	}
	*j = *disk
	if disk.Result != nil {
		s.stats = sat.MergeStats(s.stats, disk.PortfolioStats)
	}
	status := ""
	if disk.Result != nil {
		status = disk.Result.Status.String()
	}
	s.publishLocked(j, status, "adopted from peer daemon")
	s.log().Info("job adopted from peer", "job", id, "state", string(disk.State))
}

// finalizeLocked moves a job to a terminal state, persists it, folds
// its win ledger into the daemon-wide statistics and publishes the
// terminal event. Called with s.mu held.
func (s *Server) finalizeLocked(j *Job, state JobState, res *attack.ResultJSON, errMsg string, stats []sat.ConfigStats, recovered string) {
	now := time.Now()
	j.State = state
	j.Finished = &now
	j.Error = errMsg
	j.Result = res
	j.PortfolioStats = stats
	j.RecoveredBench = recovered
	if err := s.store.Put(j); err != nil {
		s.log().Error("persist job", "job", j.ID, "err", err)
	}
	if len(stats) > 0 {
		s.stats = sat.MergeStats(s.stats, stats)
	}
	status := ""
	if res != nil {
		status = res.Status.String()
	}
	s.publishLocked(j, status, errMsg)
	attrs := []any{"job", j.ID, "state", string(state)}
	if status != "" {
		attrs = append(attrs, "status", status)
	}
	if errMsg != "" {
		attrs = append(attrs, "err", errMsg)
	}
	s.log().Info("job finished", attrs...)
}

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs             submit a job (JobSpec body) → 202 JobView
//	GET    /jobs             list jobs (JobView array)
//	GET    /jobs/{id}        one job's JobView
//	GET    /jobs/{id}/events stream status events (SSE or NDJSON)
//	GET    /jobs/{id}/result the persisted result artifact (terminal jobs)
//	GET    /jobs/{id}/trace  the job's span trace as NDJSON (Config.TraceSpans > 0)
//	DELETE /jobs/{id}        cancel a queued or running job
//	GET    /metrics          queue/job/tenant/engine statistics (JSON)
//	GET    /metrics.prom     the same statistics plus latency histograms, Prometheus text format
//	GET    /healthz          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.prom", s.handlePromMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return s.withRequestLog(mux)
}

// withRequestLog logs one structured line per API call: method, path,
// tenant, job id (when the path names one), response status, duration.
// A nil Config.Logger bypasses the wrapper entirely.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	if s.cfg.Logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			"method", r.Method, "path", r.URL.Path, "tenant", tenantOf(r),
			"status", status, "dur", time.Since(start),
		}
		if id := jobIDFromPath(r.URL.Path); id != "" {
			attrs = append(attrs, "job", id)
		}
		s.cfg.Logger.Info("request", attrs...)
	})
}

// statusWriter records the response code for the request log. It
// forwards Flush so event streams keep working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// jobIDFromPath extracts the job id from /jobs/{id}[/...] paths. The
// request-log middleware runs outside the mux, so PathValue is not
// populated yet.
func jobIDFromPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/jobs/")
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// tenantOf extracts the submitting tenant from the API-key header.
func tenantOf(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return AnonymousTenant
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxJobBody bounds a job submission (two BENCH netlists plus key
// candidates fit comfortably; a paper-scale locked netlist is ~MBs).
const maxJobBody = 64 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	if ok, wait := s.limiter.Allow(tenant, time.Now()); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(int(wait.Seconds())+1))
		writeError(w, http.StatusTooManyRequests, "tenant %s over submission rate limit, retry in %v", tenant, wait.Round(time.Millisecond))
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "parse job spec: %v", err)
		return
	}
	if _, err := spec.Resolve(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := newJobID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "mint job ID: %v", err)
		return
	}
	j := &Job{ID: id, Tenant: tenant, State: StateQueued, Spec: spec, Created: time.Now()}
	view := j.View() // captured before workers can see (and mutate) the job

	// Persist and index before enqueueing so a worker can never dequeue
	// a job the store does not know; unwind both on backpressure.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "daemon is shutting down")
		return
	}
	if err := s.store.Put(j); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "persist job: %v", err)
		return
	}
	s.jobs[id] = j
	s.publishLocked(j, "", "")
	s.mu.Unlock()

	if err := s.queue.Enqueue(id, tenant); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		delete(s.events, id)
		delete(s.seq, id)
		s.mu.Unlock()
		s.store.Delete(id)
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "job queue full (%d queued), retry later", s.queue.Depth())
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.log().Info("job queued", "job", id, "attack", spec.Attack, "tenant", tenant)
	w.Header().Set("Location", "/jobs/"+id)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.View())
	}
	s.mu.Unlock()
	sort.Slice(views, func(a, b int) bool {
		if !views[a].Created.Equal(views[b].Created) {
			return views[a].Created.Before(views[b].Created)
		}
		return views[a].ID < views[b].ID
	})
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	view := j.View()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	state := j.State
	s.mu.Unlock()
	if !state.Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; the result artifact exists once the job is terminal", j.ID, state)
		return
	}
	// Serve the persisted artifact byte-for-byte: what is on disk is
	// what the client gets, the same single-source-of-truth contract as
	// campaign artifacts.
	data, err := s.store.Raw(j.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "read artifact: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleTrace serves a job's retained span trace as NDJSON — the same
// line format cmd/tracestat reads, so `curl .../trace > t.ndjson &&
// tracestat t.ndjson` analyzes a daemon job like a CLI trace file.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	ring := s.traces[j.ID]
	s.mu.Unlock()
	if ring == nil {
		writeError(w, http.StatusNotFound,
			"no trace for job %s (daemon tracing is disabled, or the job has not started running)", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, sp := range ring.Snapshot() {
		if err := enc.Encode(sp); err != nil {
			return
		}
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	history, ch, ok := s.subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if ch != nil {
		defer s.unsubscribe(id, ch)
	}
	write, contentType := StreamWriter(r)
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(ev Event) bool {
		if err := write(w, ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	last := ""
	for _, ev := range history {
		if !emit(ev) {
			return
		}
		last = ev.State
	}
	if ch == nil || JobState(last).Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !emit(ev) {
				return
			}
			if JobState(ev.State).Terminal() {
				return
			}
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	switch {
	case j.State.Terminal():
		state := j.State
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "job %s is already %s", j.ID, state)
		return
	case j.State == StateQueued && s.queue.Remove(j.ID):
		// Still in the queue: cancel immediately.
		s.finalizeLocked(j, StateCancelled, nil, "", nil, "")
	default:
		// Dequeued or running: flag it and cut the context; the worker
		// finalizes the cancellation.
		j.userCancel = true
		if cancel := s.cancels[j.ID]; cancel != nil {
			cancel()
		}
	}
	view := j.View()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, view)
}
