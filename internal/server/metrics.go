package server

import (
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/sat"
)

// Metrics is the GET /metrics document: queue pressure, job states,
// per-tenant load, and the daemon-wide per-engine portfolio win ledger
// aggregated (sat.MergeStats) across every finished job that raced.
type Metrics struct {
	// UptimeNS is the daemon's uptime in integer nanoseconds (the _ns
	// suffix is the API-wide contract, shared with wall_ns/solve_ns in
	// job artifacts).
	UptimeNS   int64 `json:"uptime_ns"`
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Draining   bool  `json:"draining,omitempty"`
	// Jobs counts jobs by lifecycle state.
	Jobs map[JobState]int `json:"jobs"`
	// Tenants reports per-tenant queued/running counts, keyed by
	// tenant.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
	// Portfolio is the aggregated per-engine racing ledger.
	Portfolio []sat.ConfigStats `json:"portfolio,omitempty"`
	// MemoHits/MemoMisses/MemoEntries report the daemon-global verdict
	// cache when the daemon runs with one (Config.Memo). MemoHits counts
	// in-memory (L1) answers; MemoDiskHits on-disk (L2) answers;
	// MemoCapped decided results dropped by the in-memory entry cap.
	MemoHits    int64 `json:"memo_hits,omitempty"`
	MemoMisses  int64 `json:"memo_misses,omitempty"`
	MemoEntries int   `json:"memo_entries,omitempty"`
	MemoCapped  int64 `json:"memo_capped,omitempty"`
	// MemoDisk* report the persistent on-disk tier when one is attached
	// (-disk-memo / -memo-dir): the cache that survives daemon restarts.
	MemoDiskHits    int64 `json:"memo_disk_hits,omitempty"`
	MemoDiskEntries int64 `json:"memo_disk_entries,omitempty"`
	MemoDiskBytes   int64 `json:"memo_disk_bytes,omitempty"`
}

// TenantMetrics is one tenant's live load.
type TenantMetrics struct {
	Queued  int `json:"queued,omitempty"`
	Running int `json:"running,omitempty"`
}

// Snapshot assembles the current metrics.
func (s *Server) Snapshot() Metrics {
	queued, running := s.queue.Snapshot()
	s.mu.Lock()
	m := Metrics{
		UptimeNS:   int64(time.Since(s.started)),
		Workers:    s.cfg.Workers,
		QueueDepth: s.queue.Depth(),
		QueueCap:   s.cfg.QueueDepth,
		Draining:   s.draining,
		Jobs:       map[JobState]int{},
		Portfolio:  sat.MergeStats(s.stats),
	}
	for _, j := range s.jobs {
		m.Jobs[j.State]++
	}
	if s.cfg.Memo != nil {
		// Sampled inside the lock like the rest of the snapshot, so the
		// memo counters are consistent with the job states reported
		// alongside them (a job cannot finalize mid-snapshot).
		st := s.cfg.Memo.Stats()
		m.MemoHits, m.MemoMisses, m.MemoEntries = st.Hits, st.Misses, s.cfg.Memo.Len()
		m.MemoDiskHits, m.MemoCapped = st.DiskHits, st.Capped
		if disk := s.cfg.Memo.Disk(); disk != nil {
			ds := disk.Stats()
			m.MemoDiskEntries, m.MemoDiskBytes = ds.Entries, ds.Bytes
		}
	}
	s.mu.Unlock()
	if len(queued)+len(running) > 0 {
		m.Tenants = map[string]TenantMetrics{}
		for t, n := range queued {
			tm := m.Tenants[t]
			tm.Queued = n
			m.Tenants[t] = tm
		}
		for t, n := range running {
			tm := m.Tenants[t]
			tm.Running = n
			m.Tenants[t] = tm
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// buildRegistry wires the Prometheus-text registry served at
// GET /metrics.prom. Histograms are observed live in runJob; everything
// with a dynamic label set (job states, tenants, engines) is a
// collector callback sampled at scrape time.
func (s *Server) buildRegistry() {
	r := obs.NewRegistry()
	s.reg = r
	s.jobSeconds = r.Histogram("attackd_job_seconds",
		"Wall-clock duration of finished job runs in seconds.", nil)
	s.solveSeconds = r.Histogram("attackd_solve_seconds",
		"Cumulative SAT solve time per finished job in seconds.", nil)
	one := func(v float64) []obs.Sample { return []obs.Sample{{Value: v}} }
	r.CollectGauge("attackd_uptime_seconds", "Daemon uptime in seconds.", func() []obs.Sample {
		return one(time.Since(s.started).Seconds())
	})
	r.CollectGauge("attackd_workers", "Job worker-pool size.", func() []obs.Sample {
		return one(float64(s.cfg.Workers))
	})
	r.CollectGauge("attackd_queue_depth", "Jobs currently queued (undispatched).", func() []obs.Sample {
		return one(float64(s.queue.Depth()))
	})
	r.CollectGauge("attackd_queue_capacity", "Bounded job-queue capacity.", func() []obs.Sample {
		return one(float64(s.cfg.QueueDepth))
	})
	r.CollectGauge("attackd_draining", "1 while a graceful drain is in progress.", func() []obs.Sample {
		s.mu.Lock()
		defer s.mu.Unlock()
		v := 0.0
		if s.draining {
			v = 1
		}
		return one(v)
	})
	r.CollectGauge("attackd_jobs", "Jobs by lifecycle state.", func() []obs.Sample {
		s.mu.Lock()
		counts := map[JobState]int{}
		for _, j := range s.jobs {
			counts[j.State]++
		}
		s.mu.Unlock()
		out := make([]obs.Sample, 0, len(counts))
		for st, n := range counts {
			out = append(out, obs.Sample{
				Labels: []obs.Label{{Key: "state", Value: string(st)}},
				Value:  float64(n),
			})
		}
		return out
	})
	r.CollectGauge("attackd_tenant_jobs", "Per-tenant queued/running job counts.", func() []obs.Sample {
		queued, running := s.queue.Snapshot()
		var out []obs.Sample
		for t, n := range queued {
			out = append(out, obs.Sample{
				Labels: []obs.Label{{Key: "tenant", Value: t}, {Key: "phase", Value: "queued"}},
				Value:  float64(n),
			})
		}
		for t, n := range running {
			out = append(out, obs.Sample{
				Labels: []obs.Label{{Key: "tenant", Value: t}, {Key: "phase", Value: "running"}},
				Value:  float64(n),
			})
		}
		return out
	})
	r.CollectCounter("attackd_engine_wins_total", "Portfolio races won, by engine.", func() []obs.Sample {
		stats := s.Stats()
		out := make([]obs.Sample, 0, len(stats))
		for _, st := range stats {
			out = append(out, obs.Sample{
				Labels: []obs.Label{{Key: "engine", Value: st.Config}},
				Value:  float64(st.Wins),
			})
		}
		return out
	})
	if s.cfg.Memo != nil {
		r.CollectCounter("attackd_memo_hits_total", "Daemon-global verdict-cache hits.", func() []obs.Sample {
			return one(float64(s.cfg.Memo.Stats().Hits))
		})
		r.CollectCounter("attackd_memo_misses_total", "Daemon-global verdict-cache misses.", func() []obs.Sample {
			return one(float64(s.cfg.Memo.Stats().Misses))
		})
		r.CollectGauge("attackd_memo_entries", "Daemon-global verdict-cache resident entries.", func() []obs.Sample {
			return one(float64(s.cfg.Memo.Len()))
		})
		r.CollectCounter("attackd_memo_capped_total", "Decided results dropped by the in-memory verdict-cache entry cap.", func() []obs.Sample {
			return one(float64(s.cfg.Memo.Stats().Capped))
		})
		if disk := s.cfg.Memo.Disk(); disk != nil {
			r.CollectCounter("attackd_memo_disk_hits_total", "Persistent on-disk verdict-store hits.", func() []obs.Sample {
				return one(float64(disk.Stats().Hits))
			})
			r.CollectCounter("attackd_memo_disk_writes_total", "Verdict records persisted to the on-disk store.", func() []obs.Sample {
				return one(float64(disk.Stats().Writes))
			})
			r.CollectCounter("attackd_memo_disk_evictions_total", "On-disk verdict records evicted by the size-cap compaction.", func() []obs.Sample {
				return one(float64(disk.Stats().Evictions))
			})
			r.CollectCounter("attackd_memo_disk_corrupt_total", "On-disk verdict records rejected by validation and deleted.", func() []obs.Sample {
				return one(float64(disk.Stats().Corrupt))
			})
			r.CollectGauge("attackd_memo_disk_entries", "Resident on-disk verdict records.", func() []obs.Sample {
				return one(float64(disk.Stats().Entries))
			})
			r.CollectGauge("attackd_memo_disk_bytes", "Resident on-disk verdict-store size in bytes.", func() []obs.Sample {
				return one(float64(disk.Stats().Bytes))
			})
		}
	}
}

// handlePromMetrics serves the registry in the Prometheus text
// exposition format (version 0.0.4).
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// Stats returns the aggregated per-engine win statistics in
// first-seen label order (the sat.MergeStats convention).
func (s *Server) Stats() []sat.ConfigStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sat.ConfigStats, len(s.stats))
	copy(out, s.stats)
	return out
}
