package server

import (
	"net/http"
	"time"

	"repro/internal/sat"
)

// Metrics is the GET /metrics document: queue pressure, job states,
// per-tenant load, and the daemon-wide per-engine portfolio win ledger
// aggregated (sat.MergeStats) across every finished job that raced.
type Metrics struct {
	UptimeNS   time.Duration `json:"uptime_ns"`
	Workers    int           `json:"workers"`
	QueueDepth int           `json:"queue_depth"`
	QueueCap   int           `json:"queue_cap"`
	Draining   bool          `json:"draining,omitempty"`
	// Jobs counts jobs by lifecycle state.
	Jobs map[JobState]int `json:"jobs"`
	// Tenants reports per-tenant queued/running counts, keyed by
	// tenant.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
	// Portfolio is the aggregated per-engine racing ledger.
	Portfolio []sat.ConfigStats `json:"portfolio,omitempty"`
	// MemoHits/MemoMisses/MemoEntries report the daemon-global verdict
	// cache when the daemon runs with one (Config.Memo).
	MemoHits    int64 `json:"memo_hits,omitempty"`
	MemoMisses  int64 `json:"memo_misses,omitempty"`
	MemoEntries int   `json:"memo_entries,omitempty"`
}

// TenantMetrics is one tenant's live load.
type TenantMetrics struct {
	Queued  int `json:"queued,omitempty"`
	Running int `json:"running,omitempty"`
}

// Snapshot assembles the current metrics.
func (s *Server) Snapshot() Metrics {
	queued, running := s.queue.Snapshot()
	s.mu.Lock()
	m := Metrics{
		UptimeNS:   time.Since(s.started),
		Workers:    s.cfg.Workers,
		QueueDepth: s.queue.Depth(),
		QueueCap:   s.cfg.QueueDepth,
		Draining:   s.draining,
		Jobs:       map[JobState]int{},
		Portfolio:  sat.MergeStats(s.stats),
	}
	for _, j := range s.jobs {
		m.Jobs[j.State]++
	}
	s.mu.Unlock()
	if s.cfg.Memo != nil {
		st := s.cfg.Memo.Stats()
		m.MemoHits, m.MemoMisses, m.MemoEntries = st.Hits, st.Misses, s.cfg.Memo.Len()
	}
	if len(queued)+len(running) > 0 {
		m.Tenants = map[string]TenantMetrics{}
		for t, n := range queued {
			tm := m.Tenants[t]
			tm.Queued = n
			m.Tenants[t] = tm
		}
		for t, n := range running {
			tm := m.Tenants[t]
			tm.Running = n
			m.Tenants[t] = tm
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// Stats returns the aggregated per-engine win statistics in
// first-seen label order (the sat.MergeStats convention).
func (s *Server) Stats() []sat.ConfigStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sat.ConfigStats, len(s.stats))
	copy(out, s.stats)
	return out
}
