package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	_ "repro/internal/attack/all"
	"repro/internal/bench"
	"repro/internal/lock"
	"repro/internal/oracle"
	"repro/internal/sat/testsolver"
	"repro/internal/server"
	"repro/internal/testcirc"
)

// newTTLockFixture builds a small TTLock instance shared by the HTTP
// tests: the original and locked netlists as BENCH text plus the
// planted key and its complement (a keyconfirm candidate shortlist).
func newTTLockFixture(t *testing.T) (orig, locked string, key, complement attack.Key) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	origC := testcirc.Random(rng, 10, 80)
	lr, err := lock.TTLock(origC, lock.Options{KeySize: 8, Seed: 4, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	complement = make(attack.Key, len(lr.Key))
	for k, v := range lr.Key {
		complement[k] = !v
	}
	return bench.WriteString(origC), bench.WriteString(lr.Locked), lr.Key, complement
}

// newTinyTTLockFixture is a deliberately easy instance for the
// slow-solver tests: those park a job on a sleeping stub solver, and
// once the gate lifts the solve must finish in moments even through
// per-query process spawns under -race.
func newTinyTTLockFixture(t *testing.T) (orig, locked string) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	origC := testcirc.Random(rng, 4, 12)
	lr, err := lock.TTLock(origC, lock.Options{KeySize: 4, Seed: 2, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	return bench.WriteString(origC), bench.WriteString(lr.Locked)
}

// startDaemon builds a Server on a temp store, starts its workers and
// mounts it on an httptest server. Drain runs at cleanup so no worker
// goroutine outlives the test.
func startDaemon(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain(0)
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, tenant string, spec server.JobSpec) (*http.Response, server.JobView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-API-Key", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view server.JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, view
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

// waitTerminal polls GET /jobs/{id} until the job reaches a terminal
// state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) server.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var view server.JobView
		resp := getJSON(t, ts, "/jobs/"+id, &view)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
		}
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, view.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitState polls until the job reports the wanted state.
func waitState(t *testing.T, ts *httptest.Server, id string, want server.JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var view server.JobView
		getJSON(t, ts, "/jobs/"+id, &view)
		if view.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s after %v", id, view.State, want, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// verdictJSON projects a result to its verdict fields — the part that
// must be identical between a daemon artifact and a cmd/attack -json
// run of the same case (wall clocks differ, verdicts never).
func verdictJSON(t *testing.T, rj *attack.ResultJSON) string {
	t.Helper()
	if rj == nil {
		t.Fatal("no result")
	}
	data, err := json.Marshal(map[string]any{"status": rj.Status, "keys": rj.Keys, "iterations": rj.Iterations})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestEndToEndHTTP drives the full submit → poll → stream → fetch flow
// for a fall, sat and keyconfirm job over HTTP and checks each
// artifact's verdict is identical to running the same case directly
// through the attack API — the daemon is a transport, never a
// different attack.
func TestEndToEndHTTP(t *testing.T) {
	orig, locked, key, complement := newTTLockFixture(t)
	_, ts := startDaemon(t, server.Config{Workers: 2})

	cases := []struct {
		name string
		spec server.JobSpec
	}{
		{"fall", server.JobSpec{Attack: "fall", Locked: locked, Seed: 5}},
		{"sat", server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Seed: 5}},
		{"keyconfirm", server.JobSpec{Attack: "keyconfirm", Locked: locked, Oracle: orig, Seed: 5,
			Candidates: []attack.Key{complement, key}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, view := submit(t, ts, "tester", tc.spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %d", resp.StatusCode)
			}
			if loc := resp.Header.Get("Location"); loc != "/jobs/"+view.ID {
				t.Errorf("Location = %q", loc)
			}
			final := waitTerminal(t, ts, view.ID, 60*time.Second)
			if final.State != server.StateDone {
				t.Fatalf("job finished %s (error %q)", final.State, final.Error)
			}

			// Fetch the artifact and compare its verdict against a
			// direct in-process run of the identical case.
			var job server.Job
			if resp := getJSON(t, ts, "/jobs/"+view.ID+"/result", &job); resp.StatusCode != http.StatusOK {
				t.Fatalf("result: %d", resp.StatusCode)
			}
			if job.Result == nil {
				t.Fatal("artifact has no result")
			}
			if len(job.Result.Engines) == 0 {
				t.Error("artifact result has no resolved engine labels")
			}
			if job.Result.WallNS <= 0 {
				t.Error("artifact result has no wall clock")
			}

			direct := runDirect(t, tc.spec)
			if got, want := verdictJSON(t, job.Result), verdictJSON(t, direct); got != want {
				t.Errorf("daemon artifact verdict differs from cmd/attack-style run:\n  daemon: %s\n  direct: %s", got, want)
			}
		})
	}
}

// runDirect executes the spec's case in-process through the same API a
// CLI run uses, returning the serialized result.
func runDirect(t *testing.T, spec server.JobSpec) *attack.ResultJSON {
	t.Helper()
	lockedC, err := bench.Parse(strings.NewReader(spec.Locked), "locked")
	if err != nil {
		t.Fatal(err)
	}
	setup, err := attack.SolverSetupFromFlags(spec.Solver, spec.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	tgt := attack.Target{
		Locked:        lockedC,
		H:             spec.H,
		Seed:          spec.Seed,
		MaxIterations: spec.MaxIterations,
		Candidates:    spec.Candidates,
		Solver:        setup.Factory(),
	}
	if spec.Oracle != "" {
		origC, err := bench.Parse(strings.NewReader(spec.Oracle), "oracle")
		if err != nil {
			t.Fatal(err)
		}
		tgt.Oracle = oracle.NewSim(origC)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := attack.Run(ctx, spec.Attack, tgt)
	if err != nil {
		t.Fatal(err)
	}
	rj := res.JSON()
	return &rj
}

// TestEventStream subscribes to a job's event stream and checks the
// lifecycle arrives in order with increasing sequence numbers, in both
// NDJSON and SSE encodings (replay makes the result independent of
// whether the job finished before the subscription).
func TestEventStream(t *testing.T) {
	_, locked, _, _ := newTTLockFixture(t)
	_, ts := startDaemon(t, server.Config{Workers: 1})
	_, view := submit(t, ts, "", server.JobSpec{Attack: "fall", Locked: locked, Seed: 5})
	waitTerminal(t, ts, view.ID, 60*time.Second)

	t.Run("ndjson", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/jobs/" + view.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("Content-Type = %q", ct)
		}
		checkLifecycle(t, readNDJSON(t, resp))
	})
	t.Run("sse", func(t *testing.T) {
		req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+view.ID+"/events", nil)
		req.Header.Set("Accept", "text/event-stream")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Errorf("Content-Type = %q", ct)
		}
		checkLifecycle(t, readSSE(t, resp))
	})
}

func readNDJSON(t *testing.T, resp *http.Response) []server.Event {
	t.Helper()
	var evs []server.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func readSSE(t *testing.T, resp *http.Response) []server.Event {
	t.Helper()
	var evs []server.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func checkLifecycle(t *testing.T, evs []server.Event) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	var states []string
	var lastSeq int64
	for _, ev := range evs {
		if ev.Type != server.EventJob {
			t.Errorf("unexpected event type %q", ev.Type)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("sequence not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		states = append(states, ev.State)
	}
	want := []string{"queued", "running", "done"}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Errorf("lifecycle = %v, want %v", states, want)
	}
	if evs[len(evs)-1].Status == "" {
		t.Error("terminal event has no attack status")
	}
}

// TestSubmitValidation exercises the 400 paths: unknown attack, missing
// circuit, oracle-guided attack without oracle, bad solver spec,
// unknown JSON fields.
func TestSubmitValidation(t *testing.T) {
	_, locked, _, _ := newTTLockFixture(t)
	_, ts := startDaemon(t, server.Config{Workers: 1})
	bad := []struct {
		name string
		body string
	}{
		{"unknown attack", `{"attack":"nope","locked":"x"}`},
		{"no locked", `{"attack":"fall"}`},
		{"no oracle", fmt.Sprintf(`{"attack":"sat","locked":%q}`, locked)},
		{"bad solver", fmt.Sprintf(`{"attack":"fall","locked":%q,"solver":"martian"}`, locked)},
		{"unknown field", fmt.Sprintf(`{"attack":"fall","locked":%q,"timeout":5}`, locked)},
		{"bad bench", `{"attack":"fall","locked":"INPUT("}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
	if resp := getJSON(t, ts, "/jobs/0123456789abcdef", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/jobs/../../etc/passwd", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("traversal id: %d, want 404", resp.StatusCode)
	}
}

// TestCancelRunningJob deletes a job mid-solve (hermetically slow via
// the sleeping stub solver) and checks it lands in cancelled with the
// worker freed.
func TestCancelRunningJob(t *testing.T) {
	orig, locked := newTinyTTLockFixture(t)
	spec := slowSolverSpec(t, "") // unconditionally slow
	_, ts := startDaemon(t, server.Config{Workers: 1})

	_, view := submit(t, ts, "", server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Solver: spec})
	waitState(t, ts, view.ID, server.StateRunning, 30*time.Second)

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+view.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, view.ID, 30*time.Second)
	if final.State != server.StateCancelled {
		t.Errorf("state = %s, want cancelled", final.State)
	}
	// The artifact is fetchable (terminal) and carries no result.
	var job server.Job
	if resp := getJSON(t, ts, "/jobs/"+view.ID+"/result", &job); resp.StatusCode != http.StatusOK {
		t.Fatalf("result of cancelled job: %d", resp.StatusCode)
	}
	if job.Result != nil {
		t.Error("cancelled job persisted a result")
	}
	// The freed worker still serves new jobs.
	_, v2 := submit(t, ts, "", server.JobSpec{Attack: "fall", Locked: locked, Seed: 5})
	if final := waitTerminal(t, ts, v2.ID, 60*time.Second); final.State != server.StateDone {
		t.Errorf("follow-up job finished %s", final.State)
	}
	// Cancelling a terminal job conflicts.
	req, _ = http.NewRequest("DELETE", ts.URL+"/jobs/"+view.ID, nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE terminal: %d, want 409", resp.StatusCode)
	}
}

// TestMetrics checks /metrics reports job states, queue depth and the
// aggregated per-engine portfolio ledger of a racing job.
func TestMetrics(t *testing.T) {
	_, locked, _, _ := newTTLockFixture(t)
	_, ts := startDaemon(t, server.Config{Workers: 2})
	_, view := submit(t, ts, "metrics-tenant", server.JobSpec{Attack: "fall", Locked: locked, Seed: 5, Portfolio: "2"})
	if final := waitTerminal(t, ts, view.ID, 60*time.Second); final.State != server.StateDone {
		t.Fatalf("job finished %s", final.State)
	}
	var m server.Metrics
	if resp := getJSON(t, ts, "/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if m.Jobs[server.StateDone] != 1 {
		t.Errorf("done jobs = %d, want 1", m.Jobs[server.StateDone])
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth = %d, want 0", m.QueueDepth)
	}
	if m.Workers != 2 {
		t.Errorf("workers = %d, want 2", m.Workers)
	}
	if len(m.Portfolio) == 0 {
		t.Error("no per-engine portfolio statistics after a racing job")
	}
	var races int64
	for _, cs := range m.Portfolio {
		races += cs.Races
	}
	if races == 0 {
		t.Error("portfolio ledger records no races")
	}
}

// slowSolverSpec returns a process-engine spec whose solver sleeps
// (hermetically, via the in-repo stub DIMACS solver) whenever gate is a
// path to an existing file; gate == "" means unconditionally slow. The
// sleep makes any SAT-querying job occupy its worker until cancelled.
func slowSolverSpec(t *testing.T, gate string) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("slow-solver wrapper is a shell script")
	}
	stub := testsolver.Build(t)
	script := filepath.Join(t.TempDir(), "slowstub")
	var body string
	if gate == "" {
		body = "#!/bin/sh\nexec " + stub + " -sleep=120s \"$@\"\n"
	} else {
		body = "#!/bin/sh\nif [ -e " + gate + " ]; then exec " + stub + " -sleep=120s \"$@\"; fi\nexec " + stub + " \"$@\"\n"
	}
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return "process:cmd=" + script
}
