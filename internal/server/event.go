// Package server implements the attack-as-a-service daemon behind
// cmd/attackd: an HTTP/JSON job API over the existing attack engine.
// Clients POST a locked circuit with an attack name and solver spec,
// get a job ID back, poll or stream the job's status, and fetch the
// result artifact.
//
// The subsystem deliberately reinvents nothing: the job store is the
// campaign package's atomic temp+rename file discipline (jobs survive a
// daemon restart and unfinished ones resume), dispatch goes through
// attack.Registry, per-job solver configuration is the
// sat.ParseEngineList grammar via attack.SolverSetupFromFlags, and
// cancellation — DELETE /jobs/{id}, per-job timeouts, graceful SIGTERM
// drain — is the context-first plumbing every attack already honors.
//
// The same Event type and stream encodings back both the daemon's
// GET /jobs/{id}/events endpoint and the `campaign watch` subcommand
// (WatchCampaign), so fleet runs and the daemon share one
// progress-streaming code path.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// EventType classifies a status event.
type EventType string

const (
	// EventJob reports a job state transition (Event.Job/State set).
	EventJob EventType = "job"
	// EventCase reports one completed campaign case (Event.Case set).
	EventCase EventType = "case"
	// EventComplete reports that a watched campaign has every artifact.
	EventComplete EventType = "complete"
)

// Event is one progress/status update, shared by the daemon's job
// streams and `campaign watch`. Exactly the fields relevant to its Type
// are set; the rest are omitted from the JSON encoding.
type Event struct {
	// Seq orders events within one stream, starting at 1.
	Seq int64 `json:"seq"`
	// Time is the wall-clock instant the event was emitted.
	Time time.Time `json:"time"`
	// Type classifies the event.
	Type EventType `json:"type"`
	// Job is the job ID (EventJob).
	Job string `json:"job,omitempty"`
	// State is the job state after the transition (EventJob).
	State string `json:"state,omitempty"`
	// Case is the campaign case ID (EventCase).
	Case string `json:"case,omitempty"`
	// Status is the outcome tag: the attack status for a finished job,
	// "ok"/"FAILED" for a campaign case.
	Status string `json:"status,omitempty"`
	// Done/Total/Failed carry campaign progress counters (EventCase,
	// EventComplete).
	Done   int `json:"done,omitempty"`
	Total  int `json:"total,omitempty"`
	Failed int `json:"failed,omitempty"`
	// Detail is a human-readable annotation (e.g. a job error).
	Detail string `json:"detail,omitempty"`
}

// WriteNDJSON writes the event as one JSON line — the chunked
// newline-delimited-JSON stream encoding.
func WriteNDJSON(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteSSE writes the event as one Server-Sent-Events frame.
func WriteSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// StreamWriter returns the event encoder matching the request's Accept
// header — SSE when the client asks for text/event-stream, NDJSON
// otherwise — along with the Content-Type it emits.
func StreamWriter(r *http.Request) (func(io.Writer, Event) error, string) {
	if accepts(r, "text/event-stream") {
		return WriteSSE, "text/event-stream"
	}
	return WriteNDJSON, "application/x-ndjson"
}

func accepts(r *http.Request, mime string) bool {
	for _, v := range r.Header.Values("Accept") {
		for _, part := range strings.Split(v, ",") {
			part, _, _ = strings.Cut(part, ";") // drop q=... parameters
			if strings.TrimSpace(part) == mime {
				return true
			}
		}
	}
	return false
}
