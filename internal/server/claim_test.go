package server_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/sat/testsolver"
	"repro/internal/server"
)

// Two daemons sharing one job store with -claim-lease must not run the
// same job twice: the second daemon defers to the first's fresh claim
// and, once the owner finishes, adopts the artifact from disk
// byte-for-byte instead of re-solving.
func TestPeerClaimNoDuplicateRun(t *testing.T) {
	orig, locked := newTinyTTLockFixture(t)
	dir := t.TempDir()
	gate := filepath.Join(t.TempDir(), "slow-gate")
	if err := os.WriteFile(gate, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// While the gate exists every solver query sleeps 2s — long enough
	// for the peer to observe deferral, short enough that the in-flight
	// query drains promptly once the gate lifts.
	spec := gatedSolverSpec(t, gate, "2s")
	lease := 400 * time.Millisecond

	_, tsA := startDaemon(t, server.Config{Workers: 1, Dir: dir, ClaimLease: lease})
	_, view := submit(t, tsA, "", server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Seed: 5, Solver: spec})
	waitState(t, tsA, view.ID, server.StateRunning, 30*time.Second)

	// Daemon B on the same store recovers the job as pending work, but
	// daemon A's claim is live (heartbeated), so B must defer, not run.
	_, tsB := startDaemon(t, server.Config{Workers: 1, Dir: dir, ClaimLease: lease})
	time.Sleep(4 * lease) // several defer/re-enqueue cycles
	var bView server.JobView
	getJSON(t, tsB, "/jobs/"+view.ID, &bView)
	if bView.State.Terminal() || bView.State == server.StateRunning {
		t.Fatalf("peer daemon reports %s while the owner still holds the claim", bView.State)
	}

	// Lift the gate: A's solve finishes and releases the claim. B's next
	// claim attempt finds the terminal artifact and adopts it.
	if err := os.Remove(gate); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, tsA, view.ID, 60*time.Second)
	if final.State != server.StateDone {
		t.Fatalf("owner finished %s (error %q)", final.State, final.Error)
	}
	st, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ownerRaw, err := st.Raw(view.ID)
	if err != nil {
		t.Fatal(err)
	}

	adopted := waitTerminal(t, tsB, view.ID, 30*time.Second)
	if adopted.State != server.StateDone {
		t.Fatalf("peer adopted state %s, want done", adopted.State)
	}
	afterRaw, err := st.Raw(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(ownerRaw) != string(afterRaw) {
		t.Error("peer daemon rewrote the owner's artifact — the job ran twice")
	}
	if _, err := os.Stat(st.ClaimPath(view.ID)); !os.IsNotExist(err) {
		t.Error("claim file survived job completion")
	}
}

// gatedSolverSpec is slowSolverSpec with a configurable sleep: queries
// launched while the gate file exists sleep for sleepFor, queries after
// it is removed answer instantly.
func gatedSolverSpec(t *testing.T, gate, sleepFor string) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("slow-solver wrapper is a shell script")
	}
	stub := testsolver.Build(t)
	script := filepath.Join(t.TempDir(), "gatedstub")
	body := "#!/bin/sh\nif [ -e " + gate + " ]; then exec " + stub + " -sleep=" + sleepFor + " \"$@\"; fi\nexec " + stub + " \"$@\"\n"
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return "process:cmd=" + script
}

// A daemon that died holding a claim must not wedge its job forever:
// the claim's mtime stops advancing, the lease expires, and the next
// daemon steals the claim and runs the job to completion.
func TestStaleClaimTakeover(t *testing.T) {
	orig, locked := newTinyTTLockFixture(t)
	dir := t.TempDir()
	gate := filepath.Join(t.TempDir(), "slow-gate")
	if err := os.WriteFile(gate, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	spec := slowSolverSpec(t, gate)

	// Park a job mid-solve, then cancel it back to queued on disk — the
	// store now holds real pending work.
	srvA, tsA := startDaemon(t, server.Config{Workers: 1, Dir: dir})
	_, view := submit(t, tsA, "", server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Seed: 5, Solver: spec})
	waitState(t, tsA, view.ID, server.StateRunning, 30*time.Second)
	srvA.Drain(50 * time.Millisecond)

	// The "dead daemon": a claim on that job whose heartbeat stopped an
	// hour ago.
	st, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cpath := st.ClaimPath(view.ID)
	data, _ := json.Marshal(campaign.ClaimInfo{Owner: "dead-daemon", Case: view.ID})
	if err := os.WriteFile(cpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(cpath, old, old); err != nil {
		t.Fatal(err)
	}

	// A fresh claiming daemon steals the expired claim and finishes the
	// job (the gate is gone, so the solve is instant).
	if err := os.Remove(gate); err != nil {
		t.Fatal(err)
	}
	_, tsB := startDaemon(t, server.Config{Workers: 1, Dir: dir, ClaimLease: time.Minute})
	final := waitTerminal(t, tsB, view.ID, 60*time.Second)
	if final.State != server.StateDone {
		t.Fatalf("taken-over job finished %s (error %q)", final.State, final.Error)
	}
	if _, err := os.Stat(cpath); !os.IsNotExist(err) {
		t.Error("stolen claim file survived job completion")
	}
}
