package server_test

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/server"
)

// TestBackpressureQueueFull fills a depth-1 queue behind a single
// worker stuck in a slow solve and checks the next submission is
// rejected with 429 + Retry-After instead of queueing unboundedly.
func TestBackpressureQueueFull(t *testing.T) {
	orig, locked := newTinyTTLockFixture(t)
	spec := slowSolverSpec(t, "")
	_, ts := startDaemon(t, server.Config{Workers: 1, QueueDepth: 1})

	slow := server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Solver: spec}

	// First job occupies the only worker…
	_, v1 := submit(t, ts, "", slow)
	waitState(t, ts, v1.ID, server.StateRunning, 30*time.Second)
	// …second fills the queue…
	resp, v2 := submit(t, ts, "", slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	// …third must bounce with explicit backpressure.
	resp, _ = submit(t, ts, "", slow)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The rejected job must leave nothing behind: exactly two jobs
	// listed, both from the accepted submissions.
	var views []server.JobView
	getJSON(t, ts, "/jobs", &views)
	if len(views) != 2 {
		t.Fatalf("listed %d jobs after rejection, want 2", len(views))
	}
	for _, v := range views {
		if v.ID != v1.ID && v.ID != v2.ID {
			t.Errorf("unexpected job %s in list", v.ID)
		}
	}
}

// TestTenantConcurrencyFairness caps each tenant at one running job on
// a two-worker pool: tenant A's second slow job must wait in the queue
// without blocking tenant B's job from being dispatched and finishing.
func TestTenantConcurrencyFairness(t *testing.T) {
	orig, locked := newTinyTTLockFixture(t)
	spec := slowSolverSpec(t, "")
	_, ts := startDaemon(t, server.Config{Workers: 2, TenantConcurrency: 1})

	slow := server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Solver: spec}

	_, a1 := submit(t, ts, "tenant-a", slow)
	waitState(t, ts, a1.ID, server.StateRunning, 30*time.Second)
	// A second job from the same tenant may not claim the free worker…
	_, a2 := submit(t, ts, "tenant-a", slow)
	// …but tenant B's job, submitted after it, must run and finish.
	_, b1 := submit(t, ts, "tenant-b", server.JobSpec{Attack: "fall", Locked: locked, Seed: 5})
	if final := waitTerminal(t, ts, b1.ID, 60*time.Second); final.State != server.StateDone {
		t.Fatalf("tenant B's job finished %s; starved behind tenant A's queue?", final.State)
	}
	var view server.JobView
	getJSON(t, ts, "/jobs/"+a2.ID, &view)
	if view.State != server.StateQueued {
		t.Errorf("tenant A's second job is %s, want queued (tenant cap 1)", view.State)
	}

	// Metrics attribute the queue to the capped tenant.
	var m server.Metrics
	getJSON(t, ts, "/metrics", &m)
	if tm := m.Tenants["tenant-a"]; tm.Running != 1 || tm.Queued != 1 {
		t.Errorf("tenant-a metrics = %+v, want 1 running / 1 queued", tm)
	}

	// Cancelling A's running job releases its slot and the queued one
	// dispatches.
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+a1.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, a2.ID, server.StateRunning, 30*time.Second)
}

// TestTenantRateLimit drives submissions past the per-tenant token
// bucket and checks over-rate requests get 429 + Retry-After while a
// different tenant is unaffected.
func TestTenantRateLimit(t *testing.T) {
	_, locked, _, _ := newTTLockFixture(t)
	// Practically zero refill: the burst is the whole budget.
	_, ts := startDaemon(t, server.Config{Workers: 1, TenantRate: 0.001, TenantBurst: 2})

	job := server.JobSpec{Attack: "fall", Locked: locked, Seed: 5}
	for i := 0; i < 2; i++ {
		if resp, _ := submit(t, ts, "hot", job); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d within burst: %d", i, resp.StatusCode)
		}
	}
	resp, _ := submit(t, ts, "hot", job)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limited 429 without Retry-After")
	}
	// Buckets are per tenant: a different key still has its burst.
	if resp, _ := submit(t, ts, "cold", job); resp.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant's submit: %d, want 202", resp.StatusCode)
	}
}
