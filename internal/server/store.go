package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/campaign"
)

// Store persists jobs as one JSON file per job under a directory,
// written atomically with the campaign package's temp+rename discipline
// — a daemon killed mid-write leaves no partial job file, so whatever a
// restart reads back is a complete record. The store is the daemon's
// only durable state: queued and running jobs found on startup are
// re-enqueued (Server recovery), terminal jobs serve their artifacts.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) the job directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// ClaimPath returns the claim-file path guarding a job — the same
// O_EXCL + mtime-lease discipline as campaign work stealing, used when
// several daemons share one store directory (Config.ClaimLease). Claim
// files do not end in .json, so List and recovery never read them.
func (st *Store) ClaimPath(id string) string {
	return st.path(id) + campaign.ClaimSuffix
}

func (st *Store) path(id string) string {
	return filepath.Join(st.dir, id+".json")
}

// Put persists the job atomically, replacing any previous version.
func (st *Store) Put(j *Job) error {
	if !validJobID(j.ID) {
		return fmt.Errorf("server: refusing to persist malformed job ID %q", j.ID)
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return campaign.WriteFileAtomic(st.dir, j.ID+".json", append(data, '\n'))
}

// Get loads one job by ID. A missing job returns fs.ErrNotExist.
func (st *Store) Get(id string) (*Job, error) {
	if !validJobID(id) {
		return nil, fs.ErrNotExist
	}
	return readJob(st.path(id))
}

// Raw returns the persisted artifact bytes of a job — what
// GET /jobs/{id}/result serves, byte-for-byte the on-disk record.
func (st *Store) Raw(id string) ([]byte, error) {
	if !validJobID(id) {
		return nil, fs.ErrNotExist
	}
	return os.ReadFile(st.path(id))
}

// Delete removes a job file (unwinding a submission the queue
// rejected). Missing files are not an error.
func (st *Store) Delete(id string) error {
	if !validJobID(id) {
		return nil
	}
	err := os.Remove(st.path(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

func readJob(path string) (*Job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("server: parse job file %s: %w", path, err)
	}
	if _, err := parseJobState(string(j.State)); err != nil {
		return nil, fmt.Errorf("server: job file %s: %w", path, err)
	}
	if !validJobID(j.ID) {
		return nil, fmt.Errorf("server: job file %s has malformed ID %q", path, j.ID)
	}
	return &j, nil
}

// List loads every job in the store, oldest submission first (ties
// broken by ID, so the order — and hence recovery's re-enqueue order —
// is deterministic). Temp files are skipped; an unreadable job file is
// an error, not silently dropped state.
func (st *Store) List() ([]*Job, error) {
	entries, err := os.ReadDir(st.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		j, err := readJob(filepath.Join(st.dir, name))
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool {
		if !jobs[a].Created.Equal(jobs[b].Created) {
			return jobs[a].Created.Before(jobs[b].Created)
		}
		return jobs[a].ID < jobs[b].ID
	})
	return jobs, nil
}
