package server_test

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestDrainFinishesInFlight checks a drain with ample grace lets an
// in-flight job run to completion instead of cancelling it.
func TestDrainFinishesInFlight(t *testing.T) {
	_, locked, _, _ := newTTLockFixture(t)
	dir := t.TempDir()
	srv, ts := startDaemon(t, server.Config{Workers: 1, Dir: dir})

	_, view := submit(t, ts, "", server.JobSpec{Attack: "fall", Locked: locked, Seed: 5})
	// Drain stops dispatch immediately, so only start draining once the
	// job has been dispatched (fast attacks may already be done).
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v server.JobView
		getJSON(t, ts, "/jobs/"+view.ID, &v)
		if v.State != server.StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never dispatched")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Drain(60 * time.Second)

	st, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.Get(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != server.StateDone {
		t.Errorf("after drain job is %s, want done", j.State)
	}
	if j.Result == nil {
		t.Error("drained job has no result")
	}
}

// TestDrainCancelRequeuesAndResumes is the SIGTERM-mid-solve scenario:
// a job stuck in a slow solve is cancelled when the grace expires, goes
// back to queued on disk with no truncated artifacts, and a fresh
// daemon on the same store resumes and completes it (the gate file that
// made the solver slow is removed before the restart).
func TestDrainCancelRequeuesAndResumes(t *testing.T) {
	orig, locked := newTinyTTLockFixture(t)
	dir := t.TempDir()
	gate := filepath.Join(t.TempDir(), "slow-gate")
	if err := os.WriteFile(gate, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	spec := slowSolverSpec(t, gate)

	srv, ts := startDaemon(t, server.Config{Workers: 1, Dir: dir})
	slow := server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Seed: 5, Solver: spec}
	_, running := submit(t, ts, "drain-tenant", slow)
	waitState(t, ts, running.ID, server.StateRunning, 30*time.Second)
	// A second job that never dispatches: it must survive the restart
	// as queued too.
	_, queued := submit(t, ts, "drain-tenant", slow)

	// SIGTERM path: tiny grace, the running solve cannot finish, the
	// drain cancels it mid-query.
	done := make(chan struct{})
	go func() {
		srv.Drain(50 * time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not return; cancelled solve not unwinding?")
	}

	// The store must hold only complete artifacts: every file parses,
	// no temp files, both jobs queued with no partial result.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("truncated temp artifact %s left behind", e.Name())
		}
	}
	st, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := st.List()
	if err != nil {
		t.Fatalf("store not fully parseable after drain: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("store holds %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.State != server.StateQueued {
			t.Errorf("job %s is %s after drain, want queued", j.ID, j.State)
		}
		if j.Result != nil {
			t.Errorf("job %s persisted a result from a cancelled solve", j.ID)
		}
		if j.Started != nil {
			t.Errorf("requeued job %s still marked started", j.ID)
		}
	}

	// Remove the gate: the stub now answers instantly. A fresh daemon
	// on the same directory must pick both jobs up and finish them.
	if err := os.Remove(gate); err != nil {
		t.Fatal(err)
	}
	_, ts2 := startDaemon(t, server.Config{Workers: 2, Dir: dir})
	for _, id := range []string{running.ID, queued.ID} {
		final := waitTerminal(t, ts2, id, 60*time.Second)
		if final.State != server.StateDone {
			t.Errorf("resumed job %s finished %s (error %q)", id, final.State, final.Error)
		}
	}
}

// TestRestartServesFinishedArtifacts checks a restarted daemon serves
// terminal artifacts from the prior run byte-for-byte without
// re-running anything.
func TestRestartServesFinishedArtifacts(t *testing.T) {
	_, locked, _, _ := newTTLockFixture(t)
	dir := t.TempDir()
	srv, ts := startDaemon(t, server.Config{Workers: 1, Dir: dir})
	_, view := submit(t, ts, "", server.JobSpec{Attack: "fall", Locked: locked, Seed: 5})
	waitTerminal(t, ts, view.ID, 60*time.Second)

	st, err := server.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	before, err := st.Raw(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain(10 * time.Second)

	_, ts2 := startDaemon(t, server.Config{Workers: 1, Dir: dir})
	resp, err := ts2.Client().Get(ts2.URL + "/jobs/" + view.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result after restart: %d", resp.StatusCode)
	}
	after, err := st.Raw(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("restart rewrote a finished artifact")
	}
}

// TestSubmitDuringDrainRejected checks the daemon refuses new work once
// draining, with 503.
func TestSubmitDuringDrainRejected(t *testing.T) {
	orig, locked := newTinyTTLockFixture(t)
	spec := slowSolverSpec(t, "")
	srv, ts := startDaemon(t, server.Config{Workers: 1})
	slow := server.JobSpec{Attack: "sat", Locked: locked, Oracle: orig, Solver: spec}
	_, v := submit(t, ts, "", slow)
	waitState(t, ts, v.ID, server.StateRunning, 30*time.Second)

	done := make(chan struct{})
	go func() {
		// Short grace: the slow solve cannot finish, so the drain
		// cancels it back to queued and returns quickly.
		srv.Drain(300 * time.Millisecond)
		close(done)
	}()
	// Wait for the drain flag to be visible via /metrics.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var m server.Metrics
		getJSON(t, ts, "/metrics", &m)
		if m.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("metrics never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := submit(t, ts, "", server.JobSpec{Attack: "fall", Locked: locked})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %d, want 503", resp.StatusCode)
	}
	<-done
}
