package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// JobState is the lifecycle state of a job. The lifecycle is
//
//	queued → running → done | failed | cancelled
//
// with two extra edges: queued → cancelled (DELETE before dispatch) and
// running → queued (a graceful drain cancelled the solve mid-flight; a
// restarted daemon re-dispatches the job from scratch).
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final — the job will never run
// again and its artifact (if any) is complete.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

func parseJobState(s string) (JobState, error) {
	switch JobState(s) {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return JobState(s), nil
	}
	return "", fmt.Errorf("server: unknown job state %q", s)
}

// JobSpec is the client-submitted description of one attack job — the
// POST /jobs request body. Circuits travel as BENCH text; everything
// else mirrors the cmd/attack flag surface, so any case runnable from
// the CLI is submittable over HTTP with the same semantics.
type JobSpec struct {
	// Attack names the registered attack to run (attack.Registry).
	Attack string `json:"attack"`
	// Locked is the locked netlist in BENCH format.
	Locked string `json:"locked"`
	// Oracle is the original netlist in BENCH format; required by
	// oracle-guided attacks, ignored by oracle-less ones.
	Oracle string `json:"oracle,omitempty"`
	// H is the Hamming-distance parameter of the locking scheme.
	H int `json:"h,omitempty"`
	// Seed drives randomized attack components.
	Seed int64 `json:"seed,omitempty"`
	// Timeout bounds the attack's wall clock, in nanoseconds on the
	// wire; 0 means no per-job budget (the daemon may still impose one).
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// MaxIterations caps iterative attacks; 0 means unlimited.
	MaxIterations int `json:"max_iterations,omitempty"`
	// Workers bounds intra-attack parallelism; 0 means the daemon's
	// per-job default. Values above the daemon cap are clamped.
	Workers int `json:"workers,omitempty"`
	// Solver / Portfolio are the -solver/-portfolio engine grammar
	// (sat.ResolveSolverFlags): a single engine spec, an integer racing
	// width, or a heterogeneous list like "internal,kissat,bdd".
	Solver    string `json:"solver,omitempty"`
	Portfolio string `json:"portfolio,omitempty"`
	// Candidates are key guesses for confirmation-style attacks (the φ
	// shortlist); empty means φ = true.
	Candidates []attack.Key `json:"candidates,omitempty"`
}

// resolved is a JobSpec elaborated into runnable form.
type resolved struct {
	atk    attack.Attack
	setup  *attack.SolverSetup
	target attack.Target
}

// Resolve validates the spec and elaborates it: parse the circuits,
// look up the attack, build the solver setup, assemble the target. All
// submission-time validation lives here, so a job that enqueues is a
// job the worker can actually start.
func (s *JobSpec) Resolve() (*resolved, error) {
	if s.Attack == "" {
		return nil, fmt.Errorf("server: job has no attack name (registered: %v)", attack.Names())
	}
	atk, err := attack.Get(s.Attack)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(s.Locked) == "" {
		return nil, fmt.Errorf("server: job has no locked circuit")
	}
	locked, err := parseBench(s.Locked, "locked")
	if err != nil {
		return nil, err
	}
	setup, err := attack.SolverSetupFromFlags(s.Solver, s.Portfolio)
	if err != nil {
		return nil, err
	}
	if err := setup.Check(); err != nil {
		return nil, err
	}
	r := &resolved{
		atk:   atk,
		setup: setup,
		target: attack.Target{
			Locked:        locked,
			H:             s.H,
			Seed:          s.Seed,
			MaxIterations: s.MaxIterations,
			Workers:       s.Workers,
			Candidates:    s.Candidates,
			Solver:        setup.Factory(),
		},
	}
	if strings.TrimSpace(s.Oracle) != "" {
		orig, err := parseBench(s.Oracle, "oracle")
		if err != nil {
			return nil, err
		}
		r.target.Oracle = oracle.NewSim(orig)
	}
	if err := attack.CheckTarget(atk, r.target); err != nil {
		return nil, err
	}
	return r, nil
}

func parseBench(text, what string) (*circuit.Circuit, error) {
	c, err := bench.Parse(strings.NewReader(text), what)
	if err != nil {
		return nil, fmt.Errorf("server: parse %s circuit: %w", what, err)
	}
	return c, nil
}

// Job is the persisted record of one submission: the spec, the
// lifecycle bookkeeping, and — once terminal — the result artifact.
// One JSON document per job, written atomically on every state
// transition, is the whole job store (see Store).
type Job struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	Spec   JobSpec  `json:"spec"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Error records a hard attack failure (State == StateFailed).
	Error string `json:"error,omitempty"`
	// Result is the attack outcome (State == StateDone), in exactly the
	// serialization cmd/attack -json emits — daemon artifacts and CLI
	// output carry the same fields.
	Result *attack.ResultJSON `json:"result,omitempty"`
	// RecoveredBench is the bypassed netlist of a removal attack in
	// BENCH format (Result.RecoveredGates summarizes it).
	RecoveredBench string `json:"recovered_bench,omitempty"`
	// PortfolioStats carries the per-engine win ledger accumulated by
	// this job's races, aggregated into GET /metrics.
	PortfolioStats []sat.ConfigStats `json:"portfolio_stats,omitempty"`

	// userCancel marks a DELETE-initiated cancellation; drainCancel
	// marks a graceful-drain one (the job goes back to queued instead of
	// a terminal state). In-memory only.
	userCancel  bool
	drainCancel bool
}

// newJobID returns a fresh 16-hex-digit random job ID.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// validJobID reports whether id looks like an ID this daemon issued —
// the gate between URL path elements and job-store file names.
func validJobID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range []byte(id) {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// JobView is the compact JSON representation served by GET /jobs and
// GET /jobs/{id}: the full record minus the circuit texts and result
// payload (fetch those via /jobs/{id}/result).
type JobView struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant"`
	State    JobState   `json:"state"`
	Attack   string     `json:"attack"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Status is the attack verdict for done jobs.
	Status string `json:"status,omitempty"`
}

// View projects the job into its compact representation.
func (j *Job) View() JobView {
	v := JobView{
		ID:       j.ID,
		Tenant:   j.Tenant,
		State:    j.State,
		Attack:   j.Spec.Attack,
		Created:  j.Created,
		Started:  j.Started,
		Finished: j.Finished,
		Error:    j.Error,
	}
	if j.Result != nil {
		v.Status = j.Result.Status.String()
	}
	return v
}
