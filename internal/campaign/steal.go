package campaign

// Claim-file work stealing: any number of workers — goroutines, processes,
// machines — drain one plan from a shared artifact directory at the speed
// of the sum of the fleet instead of the slowest shard. A worker claims
// the next unowned case by creating an O_EXCL claim file next to the
// case's artifact path, runs the case, writes the artifact (the usual
// atomic temp+rename), and releases the claim. Liveness is the claim
// file's mtime: owners heartbeat it while they work, so a claim whose
// mtime is older than the lease belongs to a dead (or hopelessly wedged)
// worker and is stolen — renamed away atomically, then re-created by
// exactly one thief. A killed worker therefore costs the fleet at most
// one lease of latency on the case it held, never a lost or duplicate
// artifact.
//
// The one theoretical race — a thief re-stats a claim as stale in the
// microseconds before another thief steals, releases and re-claims it —
// can at worst run a case twice. Cases are deterministic and artifact
// writes are atomic, so even that collision converges to one complete,
// correct artifact; the lease (minutes) dwarfs the window (microseconds).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/genbench"
)

// ClaimSuffix is appended to an artifact path to form its claim path.
const ClaimSuffix = ".claim"

// DefaultLease is the default claim staleness horizon: a claim not
// heartbeated for this long is considered abandoned and re-stolen. It
// must comfortably exceed the heartbeat interval (lease/4) under
// scheduling jitter, and it bounds how long a dead worker delays its
// case.
const DefaultLease = 2 * time.Minute

// ClaimPath returns the claim-file path guarding a case's artifact.
func ClaimPath(dir, caseID string) string {
	return ArtifactPath(dir, caseID) + ClaimSuffix
}

// ClaimInfo is the advisory JSON body of a claim file: who holds the
// case, since when. Ownership itself is the file's existence (the
// O_EXCL create); the body only feeds `campaign status` displays, so a
// reader catching it half-written merely shows an unknown owner.
type ClaimInfo struct {
	Owner string    `json:"owner"`
	PID   int       `json:"pid,omitempty"`
	Case  string    `json:"case_id,omitempty"`
	Start time.Time `json:"start"`
}

// Claim is a held claim file. Release it exactly once when the case's
// artifact is on disk (or the work is abandoned); a worker that dies
// without releasing is covered by lease expiry.
type Claim struct {
	path string
	// Stolen reports the claim was taken over from an expired lease
	// rather than created fresh.
	Stolen bool

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// TryClaim attempts to acquire the claim file at path. It returns the
// held claim, or nil when another live worker owns the case (not an
// error — the caller moves on to the next case). A claim whose mtime
// is older than lease is stolen: renamed away atomically so exactly one
// thief wins, then re-created with O_EXCL. lease <= 0 means
// DefaultLease. The returned claim heartbeats its mtime every lease/4
// until released.
func TryClaim(path string, info ClaimInfo, lease time.Duration) (*Claim, error) {
	if lease <= 0 {
		lease = DefaultLease
	}
	stolen := false
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if errors.Is(err, fs.ErrExist) {
		st, serr := os.Stat(path)
		switch {
		case errors.Is(serr, fs.ErrNotExist):
			// Released between create and stat; the caller's next scan
			// pass (or another worker) gets the case.
			return nil, nil
		case serr != nil:
			return nil, serr
		case time.Since(st.ModTime()) <= lease:
			return nil, nil // a live owner is heartbeating it
		}
		// Stale: steal by renaming the specific file away. Rename is
		// atomic — exactly one thief wins — and unlike a direct unlink
		// it can never delete a fresh claim re-created at the same path
		// after this one was released.
		tomb, terr := os.CreateTemp(filepath.Dir(path), ".stale-*")
		if terr != nil {
			return nil, terr
		}
		tombName := tomb.Name()
		tomb.Close()
		if rerr := os.Rename(path, tombName); rerr != nil {
			os.Remove(tombName)
			if errors.Is(rerr, fs.ErrNotExist) {
				return nil, nil // another thief (or a release) got there first
			}
			return nil, rerr
		}
		os.Remove(tombName)
		stolen = true
		f, err = os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if errors.Is(err, fs.ErrExist) {
			return nil, nil // lost the post-steal race to another claimant
		}
	}
	if err != nil {
		return nil, err
	}
	if info.Start.IsZero() {
		info.Start = time.Now()
	}
	if info.PID == 0 {
		info.PID = os.Getpid()
	}
	if data, merr := json.Marshal(info); merr == nil {
		f.Write(data)
	}
	f.Close()
	c := &Claim{path: path, Stolen: stolen, stop: make(chan struct{})}
	c.wg.Add(1)
	go c.heartbeat(lease / 4)
	return c, nil
}

// heartbeat refreshes the claim's mtime until Release. Refresh errors
// are ignored: the worst case is the lease expiring under a live worker
// and the case being run twice, which converges (deterministic work,
// atomic artifact writes).
func (c *Claim) heartbeat(interval time.Duration) {
	defer c.wg.Done()
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			now := time.Now()
			os.Chtimes(c.path, now, now)
		}
	}
}

// Release stops the heartbeat and removes the claim file. Idempotent.
func (c *Claim) Release() {
	c.once.Do(func() {
		close(c.stop)
		c.wg.Wait()
		os.Remove(c.path)
	})
}

// ReadClaim loads a claim file's advisory info and its mtime (the
// liveness signal `campaign status` ages against the lease).
func ReadClaim(path string) (ClaimInfo, time.Time, error) {
	st, err := os.Stat(path)
	if err != nil {
		return ClaimInfo{}, time.Time{}, err
	}
	var info ClaimInfo
	if data, rerr := os.ReadFile(path); rerr == nil {
		json.Unmarshal(data, &info) // advisory: garbage just shows no owner
	}
	return info, st.ModTime(), nil
}

// DefaultOwner is the default worker identity used in claim files,
// progress lines and budget markers: host-pid.
func DefaultOwner() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// sanitizeOwner maps a worker identity to a file-name-safe token.
func sanitizeOwner(owner string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, owner)
}

// budgetMarkerPrefix names the dot-files recording budget-exhausted
// workers (dot prefix: artifact scans skip them).
const budgetMarkerPrefix = ".budget-"

// BudgetStop records one worker that stopped claiming work because its
// wall-clock budget expired — distinct from a failure: the remaining
// cases are healthy, just unstarted, and a resumed run finishes them.
type BudgetStop struct {
	Owner     string    `json:"owner"`
	Stopped   time.Time `json:"stopped"`
	Remaining int       `json:"remaining"`
}

func writeBudgetMarker(dir, owner string, remaining int) error {
	data, err := json.MarshalIndent(BudgetStop{Owner: owner, Stopped: time.Now(), Remaining: remaining}, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(dir, budgetMarkerPrefix+sanitizeOwner(owner)+".json", append(data, '\n'))
}

func removeBudgetMarker(dir, owner string) {
	os.Remove(filepath.Join(dir, budgetMarkerPrefix+sanitizeOwner(owner)+".json"))
}

// clearBudgetMarkers removes every budget marker in dir — called when a
// run drains the plan completely, so stale "stopped early" reports do
// not outlive the work they described.
func clearBudgetMarkers(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if name := ent.Name(); strings.HasPrefix(name, budgetMarkerPrefix) && strings.HasSuffix(name, ".json") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// ObservedTimes harvests per-case attack wall times from artifact
// directories of prior runs, keyed by case ID — the measured feed for
// longest-observed-first dispatch and steal order (RunOptions.TimesFrom,
// exp.DispatchOrderObserved). It is deliberately lenient: unreadable or
// foreign-plan artifacts contribute nothing and raise no error, because
// observed times steer only scheduling, never verdicts. When a case
// appears in several directories the longest observation wins (the
// conservative estimate for tail-latency purposes).
func ObservedTimes(dirs []string) map[string]time.Duration {
	times := map[string]time.Duration{}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
				continue
			}
			a, err := ReadArtifact(filepath.Join(dir, name))
			if err != nil {
				continue
			}
			if d := a.WallTime(); d > 0 {
				if prev, ok := times[a.CaseID]; !ok || d > prev {
					times[a.CaseID] = d
				}
			}
		}
	}
	return times
}

// stealState is the shared bookkeeping of one process's stealing
// workers: which plan cases are verified complete on disk, plus the
// report tallies.
type stealState struct {
	plan   *Plan
	dir    string
	owner  string
	lease  time.Duration
	order  []int
	units  []exp.Unit
	expCfg exp.Config
	opts   RunOptions

	mu     sync.Mutex
	done   []bool
	failed []bool // failure recorded per done case (counted once)
	report *RunReport

	buildMu sync.Mutex
	builds  map[caseNeed]*buildEntry
}

type buildEntry struct {
	once sync.Once
	cs   *exp.Case
	err  error
}

// buildCase builds (once per process, concurrently safe) the locked
// instance a case needs — generation and locking are pure functions of
// the derived seed, so every worker that builds the same instance gets
// the same circuit.
func (s *stealState) buildCase(n caseNeed) (*exp.Case, error) {
	s.buildMu.Lock()
	e, ok := s.builds[n]
	if !ok {
		e = &buildEntry{}
		s.builds[n] = e
	}
	s.buildMu.Unlock()
	e.once.Do(func() {
		spec := s.plan.Config.Specs[n.specIdx]
		e.cs, e.err = exp.BuildCase(spec, n.level, s.plan.Config.Seed+int64(n.specIdx)*1009)
	})
	return e.cs, e.err
}

// markDone records a case as complete on disk.
func (s *stealState) markDone(i int, failed, ran, stolen bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done[i] {
		return
	}
	s.done[i] = true
	s.failed[i] = failed
	if failed {
		s.report.Failed++
	}
	if ran {
		s.report.Ran++
		if stolen {
			s.report.Stolen++
		}
	} else {
		s.report.Skipped++
	}
}

func (s *stealState) isDone(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done[i]
}

// claimNext scans the steal order for the first case that is neither
// complete on disk nor claimed by a live worker and claims it. It
// returns (-1, nil, remains) when nothing was claimable: remains
// distinguishes "the plan is drained" (false) from "every open case is
// claimed by someone else — poll and retry" (true).
func (s *stealState) claimNext() (int, *Claim, bool, error) {
	remains := false
	for _, i := range s.order {
		if s.isDone(i) {
			continue
		}
		id := s.plan.Cases[i].ID
		apath := ArtifactPath(s.dir, id)
		a, err := ReadArtifact(apath)
		switch {
		case err == nil:
			if a.PlanHash != s.plan.Hash {
				return -1, nil, false, fmt.Errorf("campaign: existing artifact %s belongs to plan %.12s…, this plan is %.12s… (stale artifact directory?)", apath, a.PlanHash, s.plan.Hash)
			}
			if a.CaseID != id {
				return -1, nil, false, fmt.Errorf("campaign: artifact %s names case %s, want %s", apath, a.CaseID, id)
			}
			s.markDone(i, a.Failed(), false, false)
			// Reap a claim left by a worker that died between writing
			// the artifact and releasing. Stale only: a live owner is
			// about to remove it itself, and no one re-claims a case
			// whose artifact exists, so a stale leftover is pure litter.
			if st, serr := os.Stat(ClaimPath(s.dir, id)); serr == nil && time.Since(st.ModTime()) > s.lease {
				os.Remove(ClaimPath(s.dir, id))
			}
		case errors.Is(err, fs.ErrNotExist):
			remains = true
			c, cerr := TryClaim(ClaimPath(s.dir, id), ClaimInfo{Owner: s.owner, Case: id}, s.lease)
			if cerr != nil {
				return -1, nil, false, cerr
			}
			if c != nil {
				return i, c, true, nil
			}
		default:
			return -1, nil, false, fmt.Errorf("campaign: unreadable artifact %s: %w (delete it to recompute the case)", apath, err)
		}
	}
	return -1, nil, remains, nil
}

// runOne executes one claimed case end to end and releases the claim.
// The claim is released on every path: with an artifact written the
// case is done, without one (cancellation, write failure) the release
// hands the case straight back to the fleet.
func (s *stealState) runOne(ctx context.Context, i int, claim *Claim) error {
	defer claim.Release()
	pc := s.plan.Cases[i]
	u := s.units[i]
	var needs []caseNeed
	if u.Kind == exp.UnitTable1 {
		for _, level := range exp.Levels {
			needs = append(needs, caseNeed{pc.SpecIdx, level})
		}
	} else {
		needs = append(needs, caseNeed{pc.SpecIdx, u.Level})
	}
	cases := make([]*exp.Case, len(needs))
	for j, n := range needs {
		cs, err := s.buildCase(n)
		if err != nil {
			return fmt.Errorf("campaign: build suite: %w", err)
		}
		cases[j] = cs
	}
	results, err := exp.RunUnits(ctx, cases, []exp.Unit{u}, s.expCfg, nil)
	if err != nil {
		return err
	}
	// A cancelled context means the unit was cut short: its truncated
	// verdict must not be persisted (the released claim lets any worker
	// recompute it).
	if err := ctx.Err(); err != nil {
		return err
	}
	a := newArtifact(s.plan.Hash, pc, results[0])
	if err := WriteArtifact(s.dir, a); err != nil {
		return err
	}
	s.markDone(i, a.Failed(), true, claim.Stolen)
	if s.opts.Log != nil {
		status := "ok"
		if a.Failed() {
			status = "FAILED"
		}
		if claim.Stolen {
			status += " (stolen)"
		}
		fmt.Fprintf(s.opts.Log, "campaign: %s: %s %s\n", s.owner, pc.ID, status)
	}
	if s.opts.afterArtifact != nil {
		s.opts.afterArtifact(pc.ID)
	}
	return nil
}

// runSteal drains the plan by claim-file work stealing on
// opts.Workers goroutines. It returns when the whole plan is complete
// on disk (drained by this process and any concurrent peers), the
// wall-clock budget expires, or the context dies — never because open
// cases happen to be claimed elsewhere: a peer may die, and then this
// process steals its lease and finishes the case.
func runSteal(ctx context.Context, plan *Plan, artifactDir string, opts RunOptions, expCfg exp.Config, deadline time.Time) (*RunReport, error) {
	units := make([]exp.Unit, len(plan.Cases))
	specs := make(map[string]genbench.Spec, len(plan.Config.Specs))
	for i, pc := range plan.Cases {
		u, err := pc.Unit()
		if err != nil {
			return &RunReport{ShardCases: len(plan.Cases)}, err
		}
		units[i] = u
		specs[pc.Circuit] = plan.Config.Specs[pc.SpecIdx]
	}
	lease := opts.Lease
	if lease <= 0 {
		lease = DefaultLease
	}
	owner := opts.Owner
	if owner == "" {
		owner = DefaultOwner()
	}
	s := &stealState{
		plan:  plan,
		dir:   artifactDir,
		owner: owner,
		lease: lease,
		// Steal order is the harness dispatch order — longest first, by
		// observation where available — so the fleet fronts the heavy
		// cases while there are still many hands free.
		order:  exp.DispatchOrderObserved(units, specs, expCfg.Observed),
		units:  units,
		expCfg: expCfg,
		opts:   opts,
		done:   make([]bool, len(plan.Cases)),
		failed: make([]bool, len(plan.Cases)),
		report: &RunReport{ShardCases: len(plan.Cases)},
		builds: map[caseNeed]*buildEntry{},
	}
	budgetExceeded := func() bool {
		return opts.Budget > 0 && !time.Now().Before(deadline)
	}
	// Poll interval while every open case is claimed elsewhere: fast
	// enough to pick freed work up promptly, slow enough not to hammer
	// a shared filesystem.
	poll := lease / 10
	if poll < 25*time.Millisecond {
		poll = 25 * time.Millisecond
	}
	if poll > 2*time.Second {
		poll = 2 * time.Second
	}

	workers := opts.Workers
	if workers > len(plan.Cases) {
		workers = len(plan.Cases)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				if budgetExceeded() {
					return
				}
				i, claim, remains, err := s.claimNext()
				if err != nil {
					errs[w] = err
					return
				}
				if claim == nil {
					if !remains {
						return // plan drained
					}
					select {
					case <-ctx.Done():
						errs[w] = ctx.Err()
						return
					case <-time.After(poll):
					}
					continue
				}
				if err := s.runOne(ctx, i, claim); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return s.report, err
		}
	}

	// Remaining work is judged on disk, not in local memory: peers may
	// have completed cases this process never scanned as done.
	remaining := 0
	for i := range plan.Cases {
		if s.done[i] {
			continue
		}
		if _, err := os.Stat(ArtifactPath(artifactDir, plan.Cases[i].ID)); err != nil {
			remaining++
		}
	}
	s.report.Remaining = remaining
	switch {
	case remaining == 0:
		clearBudgetMarkers(artifactDir)
	case budgetExceeded():
		s.report.BudgetStopped = true
		if err := writeBudgetMarker(artifactDir, owner, remaining); err != nil && opts.Log != nil {
			fmt.Fprintf(opts.Log, "campaign: budget marker: %v\n", err)
		}
	}
	if expCfg.Memo != nil && opts.Log != nil {
		logMemoStats(opts.Log, expCfg.Memo)
	}
	return s.report, nil
}
