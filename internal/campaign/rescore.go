package campaign

// merge -rescore: every artifact persists the attack's recovered key
// shortlist precisely so its verdict can be recomputed after the fact.
// When scoring rules change (e.g. the Hu et al. 2024 move from
// planted-key membership to I/O-equivalence), Rescore replays the
// scoring — planted-key membership first, the attack.KeyEquivalent
// miter only for shortlists that miss the planted key — against
// deterministically rebuilt locked instances, and rewrites changed
// artifacts in place. No attack re-runs, no solver engine touches a
// locked-circuit attack query; the only SAT work is the sanctioned
// scoring miter, and none at all when the planted key is shortlisted.

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/attack"
	"repro/internal/exp"
)

// RescoreReport tallies one re-scoring pass.
type RescoreReport struct {
	// Scanned counts artifacts inspected (everything merged).
	Scanned int
	// Rescored counts attack outcomes whose scoring was replayed (a
	// key shortlist was persisted and the runtime scoring rules would
	// have scored it).
	Rescored int
	// Changed counts artifacts whose verdict fields moved — each was
	// rewritten on disk atomically.
	Changed int
	// Miters counts shortlist keys decided by the equivalence miter
	// (zero when every re-scored shortlist contains its planted key).
	Miters int
}

// Rescore recomputes PlantedKeyMatch / Equivalent / Solved for every
// merged artifact from its persisted key shortlist and rewrites the
// artifacts that changed. It mirrors the runtime scoring discipline
// exactly, so re-scoring under unchanged rules is a no-op:
//
//   - FALL-family outcomes are always scored from their shortlist.
//   - SAT-attack outcomes are scored only when the run converged to a
//     single candidate without timing out — an unconverged partial key
//     must not credit the attack with a solve it never proved.
//   - Unique is recomputed only when the solve verdict flips (it is
//     defined on solved shortlists).
//
// Timing fields are never touched: they were measured under the rules
// of the original run, and re-scoring cannot un-censor them.
//
// Miters share the plan's Timeout as a scoring budget per outcome,
// exactly like runtime scoring; an undecided miter counts as not
// equivalent. Artifacts must have been loaded from disk (Merge).
func (m *MergeResult) Rescore(ctx context.Context) (*RescoreReport, error) {
	r := &rescorer{plan: m.Plan, cache: map[caseNeed]*exp.Case{}, report: &RescoreReport{}}
	for _, pc := range m.Plan.Cases {
		a, ok := m.Artifacts[pc.ID]
		if !ok {
			continue
		}
		r.report.Scanned++
		u, err := pc.Unit()
		if err != nil {
			return r.report, err
		}
		changed := false
		if a.Outcome != nil {
			ch, err := r.outcome(ctx, a.Outcome, pc, u.Level)
			if err != nil {
				return r.report, err
			}
			changed = changed || ch
		}
		if a.Fig6 != nil {
			ch, err := r.outcome(ctx, &a.Fig6.SA, pc, u.Level)
			if err != nil {
				return r.report, err
			}
			changed = changed || ch
		}
		if changed {
			r.report.Changed++
			if a.path == "" {
				return r.report, fmt.Errorf("campaign: rescore: artifact %s was not loaded from disk", pc.ID)
			}
			if err := WriteArtifact(filepath.Dir(a.path), a); err != nil {
				return r.report, err
			}
		}
	}
	return r.report, nil
}

type rescorer struct {
	plan   *Plan
	cache  map[caseNeed]*exp.Case
	report *RescoreReport
}

// buildCase deterministically rebuilds the locked instance an artifact
// was computed on (same derived seed as planning and running), cached
// per (spec, level).
func (r *rescorer) buildCase(n caseNeed) (*exp.Case, error) {
	if cs, ok := r.cache[n]; ok {
		return cs, nil
	}
	spec := r.plan.Config.Specs[n.specIdx]
	cs, err := exp.BuildCase(spec, n.level, r.plan.Config.Seed+int64(n.specIdx)*1009)
	if err != nil {
		return nil, fmt.Errorf("campaign: rescore: rebuild %s/%s: %w", spec.Name, n.level.Label(), err)
	}
	r.cache[n] = cs
	return cs, nil
}

// outcome replays scoring for one attack outcome. Returns whether any
// verdict field changed.
func (r *rescorer) outcome(ctx context.Context, out *exp.Outcome, pc Case, level exp.HLevel) (bool, error) {
	if out.Failed || len(out.Keys) == 0 {
		return false, nil
	}
	// Runtime scoring for the SAT attack runs only on converged,
	// unique-key results; an artifact records NumKeys and TimedOut but
	// not the raw attack status, so convergence is reconstructed from
	// those (the one ambiguous edge — an iteration-capped run that
	// happens to hold one candidate — errs on not re-scoring, matching
	// the stricter runtime rule).
	if out.Attack == exp.SATAttackName && (out.NumKeys != 1 || out.TimedOut) {
		return false, nil
	}
	r.report.Rescored++
	cs, err := r.buildCase(caseNeed{pc.SpecIdx, level})
	if err != nil {
		return false, err
	}
	planted := false
	for _, key := range out.Keys {
		if attack.KeysEqual(key, cs.Lock.Key) {
			planted = true
			break
		}
	}
	eq := planted
	if !eq {
		sctx := ctx
		cancel := context.CancelFunc(func() {})
		if r.plan.Config.Timeout > 0 {
			sctx, cancel = context.WithTimeout(ctx, r.plan.Config.Timeout)
		}
		for _, key := range out.Keys {
			r.report.Miters++
			if ok, merr := attack.KeyEquivalent(sctx, cs.Lock.Locked, cs.Orig, key); merr == nil && ok {
				eq = true
				break
			}
		}
		cancel()
	}
	solved := eq
	unique := out.Unique
	if out.Solved != solved {
		// Uniqueness is defined on solved shortlists; it moves exactly
		// when the solve verdict does.
		unique = solved && out.NumKeys == 1
	}
	changed := out.PlantedKeyMatch != planted || out.Equivalent != eq ||
		out.Solved != solved || out.Unique != unique
	out.PlantedKeyMatch, out.Equivalent, out.Solved, out.Unique = planted, eq, solved, unique
	return changed, nil
}
