package campaign

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/genbench"
	"repro/internal/sat"
)

// TestPlanSolverConfig: solver settings are part of a plan's identity,
// survive serialization, and reject bad specs at plan time.
func TestPlanSolverConfig(t *testing.T) {
	base := Config{
		Specs:  genbench.Scaled(genbench.TableI, 16, 12)[:2],
		Seed:   7,
		Suites: []string{"summary"},
	}
	p1, err := NewPlan(base)
	if err != nil {
		t.Fatal(err)
	}

	withSolver := base
	withSolver.Solver = "seed=3,restart=geometric"
	withSolver.Portfolio = 3
	p2, err := NewPlan(withSolver)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hash == p2.Hash {
		t.Error("solver settings must change the plan hash")
	}
	ec, err := p2.Config.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	if ec.Portfolio != 3 || ec.Solver.Seed != 3 {
		t.Errorf("ExpConfig lost solver settings: %+v portfolio %d", ec.Solver, ec.Portfolio)
	}

	// Default (empty) spec resolves to the zero config so artifacts stay
	// label-free.
	ecDefault, err := p1.Config.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	if ecDefault.Portfolio != 0 || ecDefault.Solver.RestartBase != 0 {
		t.Errorf("default plan must keep the zero solver config, got %+v", ecDefault.Solver)
	}

	bad := base
	bad.Solver = "frobnicate=1"
	if _, err := NewPlan(bad); err == nil {
		t.Error("bad solver spec accepted at plan time")
	}
}

// TestPlanHeterogeneousEngines: engine lists serialize through plans,
// resolve into exp.Config.Engines, and bad combinations are rejected
// at plan time.
func TestPlanHeterogeneousEngines(t *testing.T) {
	base := Config{
		Specs:  genbench.Scaled(genbench.TableI, 16, 12)[:2],
		Seed:   7,
		Suites: []string{"summary"},
	}

	het := base
	het.Solver = "seed=5"
	het.PortfolioEngines = "internal,bdd:max-nodes=1<<18"
	het.AdaptAfter = 10
	p, err := NewPlan(het)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := p.Config.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(ec.Engines) != 2 || ec.Engines[0].Config.Seed != 5 || ec.Engines[1].Kind != sat.EngineBDD {
		t.Errorf("engines lost in resolution: %+v", ec.Engines)
	}
	if ec.AdaptAfter != 10 {
		t.Errorf("adapt_after lost: %d", ec.AdaptAfter)
	}

	// A single non-internal -solver also lands in Engines.
	single := base
	single.Solver = "bdd"
	ec, err = single.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(ec.Engines) != 1 || ec.Engines[0].Kind != sat.EngineBDD {
		t.Errorf("bdd solver resolution: %+v", ec.Engines)
	}

	for name, bad := range map[string]Config{
		"badList":       {Solver: "", PortfolioEngines: "internal,frobnicate=1"},
		"widthAndList":  {Portfolio: 3, PortfolioEngines: "internal,bdd"},
		"externalBase":  {Solver: "kissat", PortfolioEngines: "internal,bdd"},
		"widthExternal": {Solver: "kissat", Portfolio: 3},
		"adaptNoList":   {Solver: "seed=1", AdaptAfter: 5},
	} {
		cfg := base
		cfg.Solver, cfg.Portfolio, cfg.PortfolioEngines, cfg.AdaptAfter =
			bad.Solver, bad.Portfolio, bad.PortfolioEngines, bad.AdaptAfter
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("%s: accepted at plan time", name)
		}
	}
}

// TestPlanHashBackwardCompatible: configs that do not use the new
// fields serialize without them (omitempty), so plan hashes of
// pre-heterogeneous flag forms are unchanged by this refactor.
func TestPlanHashBackwardCompatible(t *testing.T) {
	cfg := tinyCampaignConfig("summary")
	cfg.Solver = "seed=3"
	cfg.Portfolio = 3
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"portfolio_engines", "adapt_after"} {
		if strings.Contains(string(data), key) {
			t.Errorf("legacy config serializes new key %q: %s", key, data)
		}
	}
}

// TestCampaignHeterogeneousMatchesDefault: a campaign racing
// internal+bdd engines (with mid-run adaptation) renders the same
// verdict report as the default single-engine campaign, records
// portfolio stats under spec labels, aggregates them in WinStats, and
// its stats file feeds a learned re-run.
func TestCampaignHeterogeneousMatchesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two tiny campaigns")
	}
	ctx := context.Background()
	run := func(cfg Config, opts RunOptions) (string, *MergeResult) {
		t.Helper()
		plan, err := NewPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "artifacts")
		if _, err := Run(ctx, plan, dir, opts); err != nil {
			t.Fatal(err)
		}
		m, err := Merge(plan, []string{dir})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := m.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String(), m
	}

	defCfg := tinyCampaignConfig("summary")
	defReport, defMerge := run(defCfg, RunOptions{Workers: 2})
	if stats := defMerge.WinStats(); stats != nil {
		t.Errorf("default campaign recorded stats: %+v", stats)
	}

	hetCfg := tinyCampaignConfig("summary")
	hetCfg.PortfolioEngines = "internal,bdd:max-nodes=1<<16"
	hetCfg.AdaptAfter = 50
	hetReport, hetMerge := run(hetCfg, RunOptions{Workers: 2})
	if hetReport != defReport {
		t.Errorf("heterogeneous campaign report differs from default:\n--- default\n%s\n--- heterogeneous\n%s", defReport, hetReport)
	}
	stats := hetMerge.WinStats()
	if len(stats) != 2 || stats[0].Config != "seed=0" || !strings.HasPrefix(stats[1].Config, "bdd") {
		t.Fatalf("campaign stats: %+v", stats)
	}
	if stats[0].Races == 0 {
		t.Error("no races recorded")
	}

	// Learned re-run: persist the snapshot, re-run from scratch with
	// -learn-from, and get the same report again.
	statsPath := filepath.Join(t.TempDir(), "portfolio_stats.json")
	if err := sat.WriteStatsFile(statsPath, stats); err != nil {
		t.Fatal(err)
	}
	learnedReport, _ := run(hetCfg, RunOptions{Workers: 2, LearnFrom: statsPath})
	if learnedReport != defReport {
		t.Error("learned campaign report differs from default")
	}
}
