package campaign

import (
	"testing"

	"repro/internal/genbench"
)

// TestPlanSolverConfig: solver settings are part of a plan's identity,
// survive serialization, and reject bad specs at plan time.
func TestPlanSolverConfig(t *testing.T) {
	base := Config{
		Specs:  genbench.Scaled(genbench.TableI, 16, 12)[:2],
		Seed:   7,
		Suites: []string{"summary"},
	}
	p1, err := NewPlan(base)
	if err != nil {
		t.Fatal(err)
	}

	withSolver := base
	withSolver.Solver = "seed=3,restart=geometric"
	withSolver.Portfolio = 3
	p2, err := NewPlan(withSolver)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hash == p2.Hash {
		t.Error("solver settings must change the plan hash")
	}
	ec, err := p2.Config.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	if ec.Portfolio != 3 || ec.Solver.Seed != 3 {
		t.Errorf("ExpConfig lost solver settings: %+v portfolio %d", ec.Solver, ec.Portfolio)
	}

	// Default (empty) spec resolves to the zero config so artifacts stay
	// label-free.
	ecDefault, err := p1.Config.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	if ecDefault.Portfolio != 0 || ecDefault.Solver.RestartBase != 0 {
		t.Errorf("default plan must keep the zero solver config, got %+v", ecDefault.Solver)
	}

	bad := base
	bad.Solver = "frobnicate=1"
	if _, err := NewPlan(bad); err == nil {
		t.Error("bad solver spec accepted at plan time")
	}
}
