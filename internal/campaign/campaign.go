// Package campaign turns an experiment configuration into a
// deterministic, serializable plan of cases, executes arbitrary shards
// of that plan, persists one JSON artifact per completed case, and
// merges artifact directories back into the exp aggregations — so a
// paper-scale suite can run monolithically in one process or split 16
// ways across a CI fleet and render byte-identical reports either way.
//
// The lifecycle is plan → run → merge:
//
//	plan   capture config + enumerate cases with stable IDs and a plan
//	       hash (NewPlan / WritePlan)
//	run    execute shard i of n — cases with index ≡ i (mod n) — writing
//	       one artifact per completed case; re-runs skip cases whose
//	       artifact already exists, so a killed shard resumes where it
//	       stopped (Run)
//	merge  read artifacts back, reassemble results in plan order, and
//	       render the Table I / Fig. 5 / Fig. 6 / summary reports with
//	       the exact monolithic formatting (Merge)
//
// Sharding is provably disjoint and exhaustive for any shard count
// (index-modulo partitioning), artifacts are written atomically
// (temp-file + rename, so a killed shard leaves only complete
// artifacts), and every artifact embeds the plan hash so stale or
// foreign results are rejected instead of silently merged.
//
// Index-modulo is static: a heterogeneous or preemptible fleet is
// paced by its slowest shard. RunOptions.Steal replaces it with
// claim-file work stealing (steal.go): workers claim cases one at a
// time via O_EXCL claim files in the shared artifact directory,
// heartbeat them while working, and steal claims whose lease expired —
// so the fleet drains the plan at the speed of the sum of its members,
// dead workers cost at most one lease, and the merge stays
// byte-identical to a monolithic run. RunOptions.Budget bounds a
// worker's wall clock (stop claiming, finish in flight, report
// BudgetStopped for a later resume), and MergeResult.Rescore replays
// verdict scoring from the key shortlists artifacts persist — scoring
// rules can change after the fact without re-running any attack.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/cnf"
	"repro/internal/exp"
	"repro/internal/genbench"
)

// PlanVersion is bumped whenever the plan schema or case enumeration
// changes incompatibly; ReadPlan rejects other versions.
const PlanVersion = 1

// PlanFileName is the canonical plan file name inside a campaign
// directory.
const PlanFileName = "plan.json"

// DefaultArtifactDir is the artifact directory name inside a campaign
// directory.
const DefaultArtifactDir = "artifacts"

// DefaultSuites lists every report suite in the order cmd/fallbench
// prints them.
func DefaultSuites() []string {
	return []string{"table1", "fig5:hd0", "fig5:h8", "fig5:h4", "fig5:h3", "fig6", "summary"}
}

// Config is the serializable experiment configuration captured by a
// plan. It mirrors exp.Config minus the runtime-only Workers knob
// (worker counts never affect verdicts, so they are not part of a
// plan's identity).
type Config struct {
	Specs []genbench.Spec `json:"specs"`
	Seed  int64           `json:"seed"`
	// Timeout bounds each attack run, in nanoseconds on the wire.
	Timeout time.Duration `json:"timeout_ns"`
	// Enc names the cardinality encoding: "adder" or "seq".
	Enc        string `json:"enc,omitempty"`
	SATIterCap int    `json:"sat_iter_cap"`
	// Solver is the SAT engine spec (sat.ParseEngineSpec grammar, which
	// subsumes the original sat.ParseConfig syntax); empty selects the
	// baseline internal engine. Solver choice never changes verdicts,
	// but the spec is part of the plan (and so of its hash) because it
	// changes the recorded solver_config and portfolio_stats artifact
	// fields. omitempty keeps hashes of pre-portfolio plans unchanged.
	Solver string `json:"solver,omitempty"`
	// Portfolio races this many configured internal-engine variants per
	// solver query (< 2 = single engine); requires an internal (or
	// empty) Solver spec.
	Portfolio int `json:"portfolio,omitempty"`
	// PortfolioEngines, when set, races an explicit heterogeneous
	// engine list instead (sat.ParseEngineList grammar, e.g.
	// "internal,kissat,bdd"); a bare "internal" entry inherits the
	// Solver base config. omitempty keeps pre-heterogeneous plan hashes
	// unchanged.
	PortfolioEngines string `json:"portfolio_engines,omitempty"`
	// AdaptAfter retires a PortfolioEngines entry mid-run once it has
	// raced this many times without a win (0 = never). Dropping only
	// redistributes racing effort, never verdicts, but it is part of
	// the plan because it changes the recorded portfolio_stats.
	AdaptAfter int64 `json:"adapt_after,omitempty"`
	// MemoDir, when non-empty, is the plan's default persistent
	// verdict-store directory: every shard run attaches the on-disk memo
	// tier there unless overridden at run time. The memo only changes
	// timing, never verdicts, but recording the directory in the plan
	// lets a fleet of shards share a cache without per-shard flag
	// plumbing. omitempty keeps pre-disk-memo plan hashes unchanged.
	MemoDir string `json:"memo_dir,omitempty"`
	// Suites selects the reports to produce, in output order; empty
	// means DefaultSuites.
	Suites []string `json:"suites"`
}

// ExpConfig resolves the serialized config into a runnable exp.Config.
func (c Config) ExpConfig() (exp.Config, error) {
	enc, err := cnf.ParseCardEncoding(c.Enc)
	if err != nil {
		return exp.Config{}, err
	}
	cfg := exp.Config{
		Specs:      c.Specs,
		Seed:       c.Seed,
		Timeout:    c.Timeout,
		Enc:        enc,
		SATIterCap: c.SATIterCap,
		AdaptAfter: c.AdaptAfter,
	}
	portfolio := ""
	switch {
	case c.PortfolioEngines != "" && c.Portfolio >= 2:
		return exp.Config{}, fmt.Errorf("campaign: portfolio and portfolio_engines are mutually exclusive")
	case c.PortfolioEngines != "":
		portfolio = c.PortfolioEngines
	case c.Portfolio != 0:
		portfolio = strconv.Itoa(c.Portfolio)
	}
	if err := cfg.ApplySolverFlags(c.Solver, portfolio); err != nil {
		return exp.Config{}, err
	}
	if c.AdaptAfter > 0 && len(cfg.Engines) < 2 {
		return exp.Config{}, fmt.Errorf("campaign: adapt_after needs a portfolio_engines list to adapt")
	}
	return cfg, nil
}

// Case is one planned unit of work with a stable ID. SpecIdx indexes
// Config.Specs (it fixes the derived seed); Seed is the case's build
// seed, recorded for inspection.
type Case struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	SpecIdx int    `json:"spec_idx"`
	Circuit string `json:"circuit"`
	Level   string `json:"level,omitempty"`
	Attack  string `json:"attack,omitempty"`
	Seed    int64  `json:"seed"`
}

// Unit resolves the planned case back into an executable exp.Unit.
func (c Case) Unit() (exp.Unit, error) {
	kind, err := exp.ParseUnitKind(c.Kind)
	if err != nil {
		return exp.Unit{}, fmt.Errorf("campaign: case %s: %w", c.ID, err)
	}
	u := exp.Unit{Kind: kind, Circuit: c.Circuit, Attack: c.Attack}
	if kind != exp.UnitTable1 {
		if u.Level, err = exp.ParseHLevel(c.Level); err != nil {
			return exp.Unit{}, fmt.Errorf("campaign: case %s: %w", c.ID, err)
		}
	}
	return u, nil
}

// Suite returns the report suite the case belongs to ("table1",
// "fig5:<level>", "fig6", "summary").
func (c Case) Suite() string {
	if c.Kind == "fig5" {
		return "fig5:" + c.Level
	}
	return c.Kind
}

// Plan is the deterministic manifest of a campaign: the captured
// config, every case in execution/report order, and a hash binding the
// two. Plans with equal hashes enumerate identical work.
type Plan struct {
	Version int    `json:"version"`
	Hash    string `json:"hash"`
	Config  Config `json:"config"`
	Cases   []Case `json:"cases"`
}

// NewPlan enumerates the cases of cfg into a plan. Enumeration touches
// no circuits — planning a paper-scale campaign is instant.
func NewPlan(cfg Config) (*Plan, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("campaign: config has no specs")
	}
	if len(cfg.Suites) == 0 {
		cfg.Suites = DefaultSuites()
	}
	seen := map[string]bool{}
	for _, s := range cfg.Suites {
		if seen[s] {
			return nil, fmt.Errorf("campaign: suite %q listed twice", s)
		}
		seen[s] = true
	}
	expCfg, err := cfg.ExpConfig()
	if err != nil {
		return nil, err
	}
	specIdx := make(map[string]int, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		if _, dup := specIdx[spec.Name]; dup {
			return nil, fmt.Errorf("campaign: spec %q listed twice", spec.Name)
		}
		specIdx[spec.Name] = i
	}
	p := &Plan{Version: PlanVersion, Config: cfg}
	for _, suite := range cfg.Suites {
		units, err := exp.SuiteUnits(expCfg, suite)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			idx := specIdx[u.Circuit]
			pc := Case{
				ID:      u.ID(),
				Kind:    u.Kind.String(),
				SpecIdx: idx,
				Circuit: u.Circuit,
				Attack:  u.Attack,
				Seed:    cfg.Seed + int64(idx)*1009,
			}
			if u.Kind != exp.UnitTable1 {
				pc.Level = u.Level.Token()
			}
			p.Cases = append(p.Cases, pc)
		}
	}
	p.Hash = p.computeHash()
	return p, nil
}

// computeHash hashes the canonical JSON serialization of the plan with
// its Hash field cleared. encoding/json emits struct fields in
// declaration order, so the serialization — and hence the hash — is
// stable across machines.
func (p *Plan) computeHash() string {
	clone := *p
	clone.Hash = ""
	data, err := json.Marshal(&clone)
	if err != nil {
		panic(fmt.Sprintf("campaign: plan not serializable: %v", err)) // plain data, cannot happen
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Validate checks the plan's version and that its hash matches its
// contents.
func (p *Plan) Validate() error {
	if p.Version != PlanVersion {
		return fmt.Errorf("campaign: plan version %d, this binary speaks %d", p.Version, PlanVersion)
	}
	if got := p.computeHash(); got != p.Hash {
		return fmt.Errorf("campaign: plan hash mismatch: recorded %.12s…, computed %.12s… (plan edited by hand?)", p.Hash, got)
	}
	ids := make(map[string]bool, len(p.Cases))
	for _, c := range p.Cases {
		if ids[c.ID] {
			return fmt.Errorf("campaign: duplicate case ID %s", c.ID)
		}
		ids[c.ID] = true
	}
	return nil
}

// ShardIndices returns the plan-case indices belonging to shard `index`
// of `count`: exactly those i with i mod count == index. For any count
// >= 1 the shards partition the cases — pairwise disjoint and jointly
// exhaustive — which TestShardPartition verifies property-style.
func (p *Plan) ShardIndices(index, count int) ([]int, error) {
	if count < 1 {
		return nil, fmt.Errorf("campaign: shard count %d < 1", count)
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("campaign: shard index %d outside [0,%d)", index, count)
	}
	var idxs []int
	for i := index; i < len(p.Cases); i += count {
		idxs = append(idxs, i)
	}
	return idxs, nil
}

// WritePlan serializes the plan to path (parent directories are
// created).
func WritePlan(path string, p *Plan) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPlan loads and validates a plan.
func ReadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("campaign: parse %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return &p, nil
}
