package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

// Claim acquisition must be mutually exclusive for any worker count:
// with every claim held (never released), each path is won by exactly
// one of the concurrently racing workers.
func TestClaimExclusive(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(map[int]string{1: "w1", 3: "w3", 8: "w8"}[workers], func(t *testing.T) {
			dir := t.TempDir()
			const paths = 40
			var mu sync.Mutex
			won := map[int][]*Claim{}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < paths; i++ {
						path := filepath.Join(dir, ArtifactFileName("c/"+string(rune('a'+i%26))+string(rune('0'+i/26)))+ClaimSuffix)
						c, err := TryClaim(path, ClaimInfo{Owner: "t"}, time.Hour)
						if err != nil {
							t.Error(err)
							return
						}
						if c != nil {
							mu.Lock()
							won[i] = append(won[i], c)
							mu.Unlock()
						}
					}
				}()
			}
			wg.Wait()
			for i := 0; i < paths; i++ {
				if len(won[i]) != 1 {
					t.Errorf("path %d claimed %d times, want exactly 1", i, len(won[i]))
				}
			}
			for _, cs := range won {
				for _, c := range cs {
					c.Release()
				}
			}
		})
	}
}

// A released claim is immediately re-claimable; a stale (unheartbeated)
// claim is stolen; a fresh foreign claim is not.
func TestClaimLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json"+ClaimSuffix)

	c1, err := TryClaim(path, ClaimInfo{Owner: "alice"}, time.Hour)
	if err != nil || c1 == nil {
		t.Fatalf("fresh claim: %v %v", c1, err)
	}
	if c2, _ := TryClaim(path, ClaimInfo{Owner: "bob"}, time.Hour); c2 != nil {
		t.Fatal("live claim was double-claimed")
	}
	info, _, err := ReadClaim(path)
	if err != nil || info.Owner != "alice" {
		t.Fatalf("ReadClaim: %+v %v", info, err)
	}
	c1.Release()
	c1.Release() // idempotent
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("release left the claim file")
	}

	// Simulate a dead worker: a claim file whose mtime stopped advancing
	// a lease ago.
	if err := os.WriteFile(path, []byte(`{"owner":"dead"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	c3, err := TryClaim(path, ClaimInfo{Owner: "carol"}, time.Minute)
	if err != nil || c3 == nil {
		t.Fatalf("stale claim not stolen: %v %v", c3, err)
	}
	if !c3.Stolen {
		t.Error("stolen claim not marked Stolen")
	}
	c3.Release()
}

// The claim heartbeat must keep a held claim's mtime fresh, so a slow
// case is not stolen out from under a live worker.
func TestClaimHeartbeat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json"+ClaimSuffix)
	lease := 200 * time.Millisecond
	c, err := TryClaim(path, ClaimInfo{Owner: "w"}, lease)
	if err != nil || c == nil {
		t.Fatalf("claim: %v %v", c, err)
	}
	defer c.Release()
	time.Sleep(3 * lease)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if age := time.Since(st.ModTime()); age > lease {
		t.Errorf("heartbeated claim aged %v past its %v lease", age, lease)
	}
	if c2, _ := TryClaim(path, ClaimInfo{Owner: "thief"}, lease); c2 != nil {
		t.Error("live heartbeated claim was stolen")
	}
}

// The tentpole property: N stealing workers sharing one artifact
// directory must drain the plan disjointly and exhaustively — every
// case run exactly once across the fleet — and the merged report must
// be byte-identical to the monolithic run (for timing-free sections).
func TestStealDisjointExhaustive(t *testing.T) {
	cfg := tinyCampaignConfig("table1", "summary")
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mono := sections(monolithicReport(t, cfg))

	for _, fleet := range []int{1, 3} {
		t.Run(map[int]string{1: "solo", 3: "fleet3"}[fleet], func(t *testing.T) {
			dir := t.TempDir()
			reports := make([]*RunReport, fleet)
			errs := make([]error, fleet)
			var wg sync.WaitGroup
			for w := 0; w < fleet; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					reports[w], errs[w] = Run(context.Background(), plan, dir, RunOptions{
						Steal: true, Workers: 2, Owner: "w" + string(rune('0'+w)), Lease: time.Hour,
					})
				}(w)
			}
			wg.Wait()
			ran := 0
			for w := 0; w < fleet; w++ {
				if errs[w] != nil {
					t.Fatalf("worker %d: %v", w, errs[w])
				}
				ran += reports[w].Ran
				if reports[w].Remaining != 0 {
					t.Errorf("worker %d returned with %d cases remaining", w, reports[w].Remaining)
				}
			}
			// Disjoint and exhaustive: the fleet's Ran counts sum to
			// exactly the plan — no case lost, none run twice.
			if ran != len(plan.Cases) {
				t.Fatalf("fleet ran %d cases, plan has %d", ran, len(plan.Cases))
			}
			// No claim files or temp litter survive a clean drain.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range entries {
				if strings.HasSuffix(ent.Name(), ClaimSuffix) || strings.HasPrefix(ent.Name(), ".tmp-") {
					t.Errorf("leftover file after drain: %s", ent.Name())
				}
			}
			m, err := Merge(plan, []string{dir})
			if err != nil {
				t.Fatal(err)
			}
			if !m.Complete() {
				t.Fatalf("fleet merge incomplete: %v", m.Missing)
			}
			var b strings.Builder
			if err := m.Render(&b); err != nil {
				t.Fatal(err)
			}
			merged := sections(b.String())
			for _, sec := range []string{"=== Table I (regenerated) ===", "=== §VI-B summary ==="} {
				if merged[sec] != mono[sec] {
					t.Errorf("section %s differs from monolithic run\n got:\n%s\nwant:\n%s", sec, merged[sec], mono[sec])
				}
			}
		})
	}
}

// A worker killed mid-claim must not strand its case: the lease
// expires, another worker steals the claim, and the campaign completes
// with no duplicate or lost artifacts.
func TestKillMidClaimResteal(t *testing.T) {
	cfg := tinyCampaignConfig("summary")
	cfg.Specs = cfg.Specs[:1] // 4 cases
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	// The "kill": a claim file whose owner stopped heartbeating a
	// long time ago (a worker that died holding the case).
	victim := plan.Cases[1].ID
	cpath := ClaimPath(dir, victim)
	data, _ := json.Marshal(ClaimInfo{Owner: "dead-worker", Case: victim, Start: time.Now().Add(-time.Hour)})
	if err := os.WriteFile(cpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(cpath, old, old); err != nil {
		t.Fatal(err)
	}

	report, err := Run(context.Background(), plan, dir, RunOptions{
		Steal: true, Workers: 2, Owner: "survivor", Lease: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ran != len(plan.Cases) {
		t.Errorf("ran %d cases, want %d", report.Ran, len(plan.Cases))
	}
	if report.Stolen != 1 {
		t.Errorf("stole %d claims, want exactly 1 (the dead worker's)", report.Stolen)
	}
	m, err := Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Errorf("merge incomplete after re-steal: %v", m.Missing)
	}
	if _, err := os.Stat(cpath); !os.IsNotExist(err) {
		t.Error("stolen claim file still present after the case completed")
	}
}

// A fresh foreign claim must NOT be stolen: the budget expires with the
// case still owned elsewhere, the run reports BudgetStopped, and a
// later resumed run (after the claim is gone) completes the campaign.
func TestBudgetStopsStealAndResumes(t *testing.T) {
	cfg := tinyCampaignConfig("summary")
	cfg.Specs = cfg.Specs[:1] // 4 cases
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	// A live peer holds one case (fresh mtime, long lease).
	held := plan.Cases[0].ID
	peer, err := TryClaim(ClaimPath(dir, held), ClaimInfo{Owner: "peer", Case: held}, time.Hour)
	if err != nil || peer == nil {
		t.Fatalf("peer claim: %v %v", peer, err)
	}

	report, err := Run(context.Background(), plan, dir, RunOptions{
		Steal: true, Workers: 2, Owner: "budgeted", Lease: time.Hour, Budget: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.BudgetStopped {
		t.Fatal("run with an unclaimable case did not report BudgetStopped")
	}
	if report.Remaining != 1 {
		t.Errorf("remaining %d, want 1 (the peer-held case)", report.Remaining)
	}
	if report.Ran != len(plan.Cases)-1 {
		t.Errorf("ran %d, want %d", report.Ran, len(plan.Cases)-1)
	}

	// Status must surface both the live claim and the budget stop.
	s, err := Status(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Claims) != 1 || s.Claims[0].Owner != "peer" || s.Claims[0].Stale {
		t.Errorf("status claims %+v, want one fresh claim by peer", s.Claims)
	}
	if len(s.BudgetStopped) != 1 || s.BudgetStopped[0].Owner != "budgeted" || s.BudgetStopped[0].Remaining != 1 {
		t.Errorf("status budget stops %+v, want one by budgeted with 1 remaining", s.BudgetStopped)
	}
	var b strings.Builder
	s.Render(&b)
	if !strings.Contains(b.String(), "worker peer: running") || !strings.Contains(b.String(), "budget-stopped budgeted") {
		t.Errorf("status render missing fleet lines:\n%s", b.String())
	}

	// The peer dies without finishing; its claim is released. A resumed
	// run completes the campaign and clears the budget marker.
	peer.Release()
	report, err = Run(context.Background(), plan, dir, RunOptions{
		Steal: true, Workers: 2, Owner: "resumer", Lease: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ran != 1 || report.Skipped != len(plan.Cases)-1 || report.Remaining != 0 || report.BudgetStopped {
		t.Errorf("resume report %+v, want 1 run / %d skipped / complete", report, len(plan.Cases)-1)
	}
	s, err = Status(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete() || len(s.BudgetStopped) != 0 || len(s.Claims) != 0 {
		t.Errorf("final status %+v, want complete with no fleet lines", s)
	}
}

// The modulo path honors budgets too: an expired budget gates pending
// units, the run reports BudgetStopped, and resuming completes it with
// a report identical to an unbudgeted run's.
func TestBudgetModuloResume(t *testing.T) {
	cfg := tinyCampaignConfig("summary")
	cfg.Specs = cfg.Specs[:1] // 4 cases
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reference := sections(monolithicReport(t, cfg))

	dir := t.TempDir()
	// A budget that is already spent: every unit is gated, nothing runs.
	report, err := Run(context.Background(), plan, dir, RunOptions{
		Workers: 2, Budget: time.Nanosecond, Owner: "shard0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.BudgetStopped || report.Ran != 0 || report.Remaining != len(plan.Cases) {
		t.Fatalf("spent-budget report %+v, want all %d cases remaining", report, len(plan.Cases))
	}
	s, err := Status(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.BudgetStopped) != 1 {
		t.Fatalf("status budget stops %+v, want 1", s.BudgetStopped)
	}

	// Resume without a budget: everything runs, the marker clears, and
	// the merged report matches the monolithic reference.
	report, err = Run(context.Background(), plan, dir, RunOptions{Workers: 2, Owner: "shard0"})
	if err != nil {
		t.Fatal(err)
	}
	if report.BudgetStopped || report.Ran != len(plan.Cases) {
		t.Fatalf("resume report %+v", report)
	}
	m, err := Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := m.Render(&b); err != nil {
		t.Fatal(err)
	}
	if got := sections(b.String()); got["=== §VI-B summary ==="] != reference["=== §VI-B summary ==="] {
		t.Error("budget-interrupted campaign's merged summary differs from the monolithic run")
	}
	s, err = Status(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.BudgetStopped) != 0 {
		t.Errorf("budget marker survived completion: %+v", s.BudgetStopped)
	}
}

// ObservedTimes harvests per-case wall times leniently and keyed by
// case ID; Run feeds them to the dispatcher as the steal order.
func TestObservedTimes(t *testing.T) {
	dir := t.TempDir()
	write := func(a *Artifact) {
		t.Helper()
		if err := WriteArtifact(dir, a); err != nil {
			t.Fatal(err)
		}
	}
	write(&Artifact{PlanHash: "h", CaseID: "fig5/c432/hd0/FALL", Outcome: newOutcome(3 * time.Second)})
	write(&Artifact{PlanHash: "h", CaseID: "summary/c499/hd1", Outcome: newOutcome(time.Second)})
	write(&Artifact{PlanHash: "h", CaseID: "table1/c432"}) // no timing payload
	// Unreadable artifacts contribute nothing, not an error.
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	times := ObservedTimes([]string{dir, filepath.Join(dir, "nonexistent")})
	if len(times) != 2 {
		t.Fatalf("harvested %d times, want 2: %v", len(times), times)
	}
	if times["fig5/c432/hd0/FALL"] != 3*time.Second || times["summary/c499/hd1"] != time.Second {
		t.Errorf("times %v", times)
	}

	// A longer observation of the same case (another directory) wins.
	dir2 := t.TempDir()
	if err := WriteArtifact(dir2, &Artifact{PlanHash: "h", CaseID: "summary/c499/hd1", Outcome: newOutcome(5 * time.Second)}); err != nil {
		t.Fatal(err)
	}
	times = ObservedTimes([]string{dir, dir2})
	if times["summary/c499/hd1"] != 5*time.Second {
		t.Errorf("longest observation did not win: %v", times)
	}
}

func newOutcome(d time.Duration) *exp.Outcome {
	return &exp.Outcome{Time: d}
}
