package campaign

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestDiskMemoSharedAcrossShardsAndReruns is the multi-process-sharing
// coverage for the persistent verdict store: two shards run
// concurrently against one memo directory (race-clean, no torn reads),
// and a full rerun from the same directory answers from disk — with
// byte-identical reports throughout (the cache may change timing,
// never verdicts) and per-tier stats surviving the artifact merge.
func TestDiskMemoSharedAcrossShardsAndReruns(t *testing.T) {
	cfg := tinyCampaignConfig("table1", "summary")
	memoDir := t.TempDir()

	runShards := func(cfg Config, opts RunOptions) (string, *MergeResult) {
		t.Helper()
		plan, err := NewPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		const shards = 2
		var wg sync.WaitGroup
		errs := make([]error, shards)
		for index := 0; index < shards; index++ {
			wg.Add(1)
			go func(index int) {
				defer wg.Done()
				o := opts
				o.ShardIndex, o.ShardCount, o.Workers = index, shards, 2
				_, errs[index] = Run(context.Background(), plan, dir, o)
			}(index)
		}
		wg.Wait()
		for index, err := range errs {
			if err != nil {
				t.Fatalf("shard %d: %v", index, err)
			}
		}
		m, err := Merge(plan, []string{dir})
		if err != nil {
			t.Fatal(err)
		}
		if !m.Complete() {
			t.Fatalf("merge incomplete: missing %v", m.Missing)
		}
		var b strings.Builder
		if err := m.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String(), m
	}

	// Reference: no memo anywhere.
	plain, _ := runShards(cfg, RunOptions{})

	// Cold: concurrent shards populate one store via the options path.
	cold, mCold := runShards(cfg, RunOptions{MemoDir: memoDir})
	if cold != plain {
		t.Errorf("cold memoized report differs from memo-less report")
	}
	st := mCold.MemoStats()
	if st == nil || st.Total() == 0 {
		t.Fatalf("cold merge carries no memo stats: %+v", st)
	}

	// Warm: a fresh "rerun" resolves the store through the plan's
	// recorded memo_dir (no run-time flag) and must hit disk.
	warmCfg := cfg
	warmCfg.MemoDir = memoDir
	warm, mWarm := runShards(warmCfg, RunOptions{})
	if warm != plain {
		t.Errorf("warm report differs from memo-less report")
	}
	wst := mWarm.MemoStats()
	if wst == nil || wst.DiskHits == 0 {
		t.Fatalf("warm rerun recorded no disk hits in merged stats: %+v", wst)
	}
}

// TestPlanMemoDirHashCompat: recording a memo directory in the plan
// changes the plan hash (shards must agree on the cache location), but
// an empty MemoDir serializes away, keeping pre-disk-memo plan hashes
// valid.
func TestPlanMemoDirHashCompat(t *testing.T) {
	base := tinyCampaignConfig("summary")
	p1, err := NewPlan(base)
	if err != nil {
		t.Fatal(err)
	}
	withDir := base
	withDir.MemoDir = "shared/memo"
	p2, err := NewPlan(withDir)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hash == p2.Hash {
		t.Error("memo_dir did not change the plan hash")
	}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "memo_dir") {
		t.Error("empty memo_dir serialized into the plan config")
	}
}
