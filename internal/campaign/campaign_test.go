package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/genbench"
)

// tinyCampaignConfig keeps campaign tests fast: 2 circuits at 1/16
// scale. Timeout 0 removes the wall-clock budget so verdicts are pure
// functions of the seed (the SAT attack stays bounded by SATIterCap) —
// the same discipline exp's worker-determinism test uses.
func tinyCampaignConfig(suites ...string) Config {
	return Config{
		Specs:      genbench.Scaled(genbench.TableI, 16, 12)[:2],
		Seed:       2024,
		Timeout:    0,
		SATIterCap: 40,
		Suites:     suites,
	}
}

// Shards must be pairwise disjoint and jointly exhaustive for every
// shard count — the property the issue demands, checked over counts
// well past the case count.
func TestShardPartition(t *testing.T) {
	plan, err := NewPlan(tinyCampaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := len(plan.Cases)
	if n == 0 {
		t.Fatal("empty plan")
	}
	for count := 1; count <= n+3; count++ {
		seen := make([]int, n)
		for index := 0; index < count; index++ {
			idxs, err := plan.ShardIndices(index, count)
			if err != nil {
				t.Fatalf("count=%d index=%d: %v", count, index, err)
			}
			for _, i := range idxs {
				if i < 0 || i >= n {
					t.Fatalf("count=%d: index %d out of range", count, i)
				}
				seen[i]++
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("count=%d: case %d covered %d times", count, i, c)
			}
		}
	}
	if _, err := plan.ShardIndices(0, 0); err == nil {
		t.Error("shard count 0 accepted")
	}
	if _, err := plan.ShardIndices(2, 2); err == nil {
		t.Error("shard index == count accepted")
	}
	if _, err := plan.ShardIndices(-1, 2); err == nil {
		t.Error("negative shard index accepted")
	}
}

func TestPlanHashAndValidation(t *testing.T) {
	cfg := tinyCampaignConfig()
	p1, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hash != p2.Hash {
		t.Error("identical configs produced different plan hashes")
	}
	other := cfg
	other.Seed++
	p3, err := NewPlan(other)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Hash == p1.Hash {
		t.Error("different seeds produced the same plan hash")
	}
	if err := p1.Validate(); err != nil {
		t.Errorf("fresh plan invalid: %v", err)
	}
	tampered := *p1
	tampered.Cases = append([]Case(nil), p1.Cases...)
	tampered.Cases[0].Seed++
	if err := tampered.Validate(); err == nil {
		t.Error("tampered plan validated")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, PlanFileName)
	if err := WritePlan(path, p1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash != p1.Hash || len(back.Cases) != len(p1.Cases) {
		t.Error("plan did not round-trip")
	}
	if _, err := NewPlan(Config{}); err == nil {
		t.Error("empty config planned")
	}
	dup := cfg
	dup.Suites = []string{"summary", "summary"}
	if _, err := NewPlan(dup); err == nil {
		t.Error("duplicate suite accepted")
	}
}

// monolithicReport renders the suites the way cmd/fallbench does, fully
// in-process — the reference output every sharded merge must match.
func monolithicReport(t *testing.T, cfg Config) string {
	t.Helper()
	expCfg, err := cfg.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := exp.BuildSuite(expCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var b strings.Builder
	for _, suite := range cfg.Suites {
		switch {
		case suite == "table1":
			rows, err := exp.Table1FromCases(cases, expCfg)
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString("=== Table I (regenerated) ===\n")
			b.WriteString(exp.FormatTable1(rows))
		case strings.HasPrefix(suite, "fig5:"):
			level, err := exp.ParseHLevel(strings.TrimPrefix(suite, "fig5:"))
			if err != nil {
				t.Fatal(err)
			}
			outs := exp.Fig5Panel(ctx, cases, level, expCfg)
			b.WriteString("=== Fig. 5 panel " + level.Token() + " (" + level.Label() + ") ===\n")
			b.WriteString(exp.FormatCactus(outs, exp.Fig5AttackNames(level)))
		case suite == "fig6":
			b.WriteString("=== Fig. 6: key confirmation vs SAT attack ===\n")
			b.WriteString(exp.FormatFig6(exp.Fig6(ctx, cases, expCfg)))
		case suite == "summary":
			b.WriteString("=== §VI-B summary ===\n")
			b.WriteString(exp.FormatSummary(exp.Summarize(ctx, cases, expCfg)))
		default:
			t.Fatalf("unknown suite %s", suite)
		}
	}
	return b.String()
}

// runCampaign plans, runs every shard, and merges, returning the
// rendered report and the merge result.
func runCampaign(t *testing.T, cfg Config, shards int) (string, *MergeResult) {
	t.Helper()
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for index := 0; index < shards; index++ {
		report, err := Run(context.Background(), plan, dir, RunOptions{
			ShardIndex: index, ShardCount: shards, Workers: 2,
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", index, shards, err)
		}
		if report.Skipped != 0 {
			t.Fatalf("shard %d/%d skipped %d cases on a fresh dir", index, shards, report.Skipped)
		}
	}
	m, err := Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatalf("merge incomplete: missing %v", m.Missing)
	}
	var b strings.Builder
	if err := m.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), m
}

// sections splits a rendered report at its "=== " headers.
func sections(report string) map[string]string {
	out := map[string]string{}
	var name string
	var body strings.Builder
	flush := func() {
		if name != "" {
			out[name] = body.String()
		}
		body.Reset()
	}
	for _, line := range strings.SplitAfter(report, "\n") {
		if strings.HasPrefix(line, "=== ") {
			flush()
			name = strings.TrimSpace(line)
			continue
		}
		body.WriteString(line)
	}
	flush()
	return out
}

// The acceptance property: plan + N shard runs + merge must reproduce a
// monolithic in-process run. Table I and the §VI-B summary are timing-
// free, so those sections must be byte-identical for every shard count;
// the Fig. 5 section carries wall-clock solve times, so its verdict
// structure (attack names and solved counts) is compared instead.
func TestCampaignMatchesMonolithic(t *testing.T) {
	cfg := tinyCampaignConfig("table1", "fig5:hd0", "summary")
	mono := sections(monolithicReport(t, cfg))
	for _, shards := range []int{1, 2, 4} {
		report, _ := runCampaign(t, cfg, shards)
		merged := sections(report)
		if len(merged) != len(mono) {
			t.Fatalf("shards=%d: %d sections, want %d", shards, len(merged), len(mono))
		}
		for _, sec := range []string{"=== Table I (regenerated) ===", "=== §VI-B summary ==="} {
			if merged[sec] != mono[sec] {
				t.Errorf("shards=%d: section %s differs from monolithic run\n got:\n%s\nwant:\n%s",
					shards, sec, merged[sec], mono[sec])
			}
		}
		got := solvedCounts(merged["=== Fig. 5 panel hd0 (SFLL-HD0) ==="])
		want := solvedCounts(mono["=== Fig. 5 panel hd0 (SFLL-HD0) ==="])
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: Fig. 5 solved counts %v, want %v", shards, got, want)
		}
	}
}

// solvedCounts extracts the "<attack>: N solved" lines of a cactus
// section — its timing-free verdict structure.
func solvedCounts(section string) []string {
	var out []string
	for _, line := range strings.Split(section, "\n") {
		if strings.HasSuffix(strings.TrimSpace(line), "solved") && !strings.HasPrefix(line, " ") {
			out = append(out, line)
		}
	}
	return out
}

// Fig. 6 merged across shards must carry the same verdict structure as
// the monolithic aggregation (means are wall-clock and can differ).
func TestCampaignFig6(t *testing.T) {
	cfg := tinyCampaignConfig("fig6")
	cfg.Specs = cfg.Specs[:1]
	expCfg, err := cfg.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := exp.BuildSuite(expCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := exp.Fig6(context.Background(), cases, expCfg)

	_, m := runCampaign(t, cfg, 2)
	var results []exp.Fig6CaseResult
	for _, pc := range m.Plan.Cases {
		a := m.Artifacts[pc.ID]
		if a == nil || a.Fig6 == nil {
			t.Fatalf("case %s has no fig6 artifact", pc.ID)
		}
		results = append(results, *a.Fig6)
	}
	got := exp.AggregateFig6(results)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Circuit != want[i].Circuit || got[i].KCRuns != want[i].KCRuns ||
			got[i].SARuns != want[i].SARuns || got[i].KCConfirmed != want[i].KCConfirmed {
			t.Errorf("row %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Merging must be a pure function of the artifact set: rendering twice,
// or with the artifacts scattered across directories, yields identical
// bytes.
func TestMergeDeterminism(t *testing.T) {
	cfg := tinyCampaignConfig("table1", "summary")
	cfg.Specs = cfg.Specs[:1]
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Run(context.Background(), plan, dir, RunOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	render := func(dirs []string) string {
		m, err := Merge(plan, dirs)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Complete() {
			t.Fatalf("incomplete: %v", m.Missing)
		}
		var b strings.Builder
		if err := m.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	once := render([]string{dir})
	if twice := render([]string{dir}); twice != once {
		t.Error("second render differs")
	}

	// Scatter artifacts over two directories; the merge must not care.
	split := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, ent := range entries {
		if i%2 == 0 {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(split, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
			t.Fatal(err)
		}
	}
	if scattered := render([]string{dir, split}); scattered != once {
		t.Error("scattered-directory render differs")
	}
}

// A shard killed mid-flight must leave only complete artifacts, and a
// re-run must pick up exactly where it stopped without recomputing
// finished cases.
func TestResumeAfterKill(t *testing.T) {
	cfg := tinyCampaignConfig("summary")
	cfg.Specs = cfg.Specs[:1] // 4 cases
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	report, err := Run(ctx, plan, dir, RunOptions{
		Workers: 1,
		afterArtifact: func(string) {
			done++
			if done == 2 {
				cancel() // the "kill": no further case may persist
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if report.Ran != 2 {
		t.Fatalf("cancelled run persisted %d cases, want 2", report.Ran)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), ".tmp-") {
			t.Errorf("partial artifact left behind: %s", ent.Name())
		}
	}

	report, err = Run(context.Background(), plan, dir, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.Skipped != 2 || report.Ran != len(plan.Cases)-2 {
		t.Fatalf("resume skipped %d / ran %d, want 2 / %d", report.Skipped, report.Ran, len(plan.Cases)-2)
	}
	m, err := Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Errorf("resumed campaign incomplete: %v", m.Missing)
	}

	// A third run is a no-op.
	report, err = Run(context.Background(), plan, dir, RunOptions{Workers: 1})
	if err != nil || report.Ran != 0 || report.Skipped != len(plan.Cases) {
		t.Errorf("idempotent re-run: ran %d, skipped %d, err %v", report.Ran, report.Skipped, err)
	}
}

// Artifacts from a different plan must be rejected, both on resume and
// on merge — never silently mixed into a campaign.
func TestForeignArtifactsRejected(t *testing.T) {
	cfg := tinyCampaignConfig("table1")
	cfg.Specs = cfg.Specs[:1]
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	a := &Artifact{PlanHash: "deadbeef", CaseID: plan.Cases[0].ID}
	if err := WriteArtifact(dir, a); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), plan, dir, RunOptions{}); err == nil {
		t.Error("run accepted a foreign artifact")
	}
	if _, err := Merge(plan, []string{dir}); err == nil {
		t.Error("merge accepted a foreign artifact")
	}
	if _, err := Status(plan, []string{dir}); err == nil {
		t.Error("status accepted a foreign artifact")
	}

	// An artifact with the right hash but an unplanned case ID is
	// equally suspect.
	good := &Artifact{PlanHash: plan.Hash, CaseID: "table1/nosuch"}
	dir2 := t.TempDir()
	if err := WriteArtifact(dir2, good); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(plan, []string{dir2}); err == nil {
		t.Error("merge accepted an unplanned case")
	}
}

func TestStatusReport(t *testing.T) {
	cfg := tinyCampaignConfig("table1", "summary")
	cfg.Specs = cfg.Specs[:1]
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	s, err := Status(plan, []string{dir}) // nothing run yet; dir may not even exist
	if err != nil {
		t.Fatal(err)
	}
	if s.Done != 0 || s.Total != len(plan.Cases) || s.Complete() {
		t.Errorf("fresh status %+v", s)
	}

	// Run only shard 0 of 2.
	if _, err := Run(context.Background(), plan, dir, RunOptions{ShardIndex: 0, ShardCount: 2, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	idxs, err := plan.ShardIndices(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err = Status(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if s.Done != len(idxs) || s.Complete() {
		t.Errorf("half-run status %+v, want done=%d", s, len(idxs))
	}
	var b strings.Builder
	s.Render(&b)
	if !strings.Contains(b.String(), "table1") || !strings.Contains(b.String(), "pending:") {
		t.Errorf("status render missing suites or pending lines:\n%s", b.String())
	}

	// Merge without the second shard must refuse completeness.
	m, err := Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if m.Complete() {
		t.Error("half-run campaign reported complete")
	}
	var out strings.Builder
	if err := m.Render(&out); err != nil {
		t.Errorf("partial render failed: %v", err)
	}
}

// The 1-shard campaign is the in-process path: its per-case outcome
// shapes must match direct exp runs (the "special case" wiring the
// issue demands), including the new equivalence-based scoring fields.
func TestOneShardOutcomeShapes(t *testing.T) {
	cfg := tinyCampaignConfig("summary")
	cfg.Specs = cfg.Specs[:1]
	expCfg, err := cfg.ExpConfig()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := exp.BuildSuite(expCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := exp.SummaryOutcomes(context.Background(), cases, expCfg)

	_, m := runCampaign(t, cfg, 1)
	for i, pc := range m.Plan.Cases {
		a := m.Artifacts[pc.ID]
		if a == nil || a.Outcome == nil {
			t.Fatalf("case %s: no outcome artifact", pc.ID)
		}
		got, w := *a.Outcome, want[i]
		if got.Circuit != w.Circuit || got.Level != w.Level || got.Solved != w.Solved ||
			got.PlantedKeyMatch != w.PlantedKeyMatch || got.Equivalent != w.Equivalent ||
			got.Unique != w.Unique || got.NumKeys != w.NumKeys || got.Failed != w.Failed {
			t.Errorf("case %s: artifact outcome %+v, direct run %+v", pc.ID, got, w)
		}
	}
}

// Artifact JSON must round-trip the full outcome, including recovered
// keys and durations.
func TestArtifactRoundTrip(t *testing.T) {
	a := &Artifact{
		PlanHash: "abc",
		CaseID:   "summary/c432/hd0",
		Outcome: &exp.Outcome{
			Circuit: "c432", Level: exp.HM8, Attack: "Auto",
			Solved: true, Equivalent: true, NumKeys: 1,
			Keys: []map[string]bool{{"keyinput0": true}},
			Time: 42 * time.Millisecond,
		},
	}
	dir := t.TempDir()
	if err := WriteArtifact(dir, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(ArtifactPath(dir, a.CaseID))
	if err != nil {
		t.Fatal(err)
	}
	if back.Outcome == nil || back.Outcome.Level != exp.HM8 || back.Outcome.Time != 42*time.Millisecond ||
		len(back.Outcome.Keys) != 1 || !back.Outcome.Keys[0]["keyinput0"] {
		t.Errorf("artifact did not round-trip: %+v", back.Outcome)
	}
	if back.Failed() {
		t.Error("healthy artifact reported failed")
	}
	if !(&Artifact{Error: "boom"}).Failed() {
		t.Error("error artifact not failed")
	}

	// Corrupt files are errors, not silent skips.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(bad); err == nil {
		t.Error("corrupt artifact accepted")
	}
}
