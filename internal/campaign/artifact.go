package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

// Artifact is the persisted result of one completed case: exactly one
// payload field is set according to the case kind, or Error for a
// harness-level failure. Every artifact records the plan hash it was
// computed under, so merges reject results from a different plan
// instead of silently mixing campaigns.
type Artifact struct {
	PlanHash string              `json:"plan_hash"`
	CaseID   string              `json:"case_id"`
	Outcome  *exp.Outcome        `json:"outcome,omitempty"`
	Fig6     *exp.Fig6CaseResult `json:"fig6,omitempty"`
	Table1   *exp.Table1Row      `json:"table1,omitempty"`
	Error    string              `json:"error,omitempty"`

	// path records where ReadArtifact loaded the artifact from, so a
	// merge re-score can rewrite a changed artifact in place.
	path string
}

// Failed reports whether the case ran but produced no usable
// measurement: a harness error, a hard attack failure, or a Fig. 6
// pairing whose key confirmation never ran.
func (a *Artifact) Failed() bool {
	switch {
	case a.Error != "":
		return true
	case a.Outcome != nil && a.Outcome.Failed:
		return true
	case a.Fig6 != nil && a.Fig6.Failed():
		return true
	}
	return false
}

// newArtifact captures a unit result for the given planned case.
func newArtifact(planHash string, pc Case, r exp.UnitResult) *Artifact {
	a := &Artifact{PlanHash: planHash, CaseID: pc.ID}
	if r.Err != nil {
		a.Error = r.Err.Error()
		return a
	}
	a.Outcome, a.Fig6, a.Table1 = r.Outcome, r.Fig6, r.Table1
	return a
}

// result converts the artifact back into the unit result it captured.
func (a *Artifact) result() exp.UnitResult {
	r := exp.UnitResult{Outcome: a.Outcome, Fig6: a.Fig6, Table1: a.Table1}
	if a.Error != "" {
		r.Err = errors.New(a.Error)
	}
	return r
}

// ArtifactFileName maps a case ID to its artifact file name (case IDs
// contain slashes; artifact directories stay flat so shard outputs can
// be tarred, uploaded and merged with plain file tools).
func ArtifactFileName(caseID string) string {
	return strings.ReplaceAll(caseID, "/", "__") + ".json"
}

// ArtifactPath returns the artifact path for a case ID under dir.
func ArtifactPath(dir, caseID string) string {
	return filepath.Join(dir, ArtifactFileName(caseID))
}

// WriteFileAtomic writes data to dir/name through a temp file in the
// same directory plus a rename, so a process killed mid-write leaves no
// partial file — readers only ever observe complete files. This is the
// durability primitive behind campaign artifacts and the attackd job
// store.
func WriteFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-"+name+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// WriteArtifact persists the artifact atomically (WriteFileAtomic), so
// a shard killed mid-write leaves no partial artifact — only complete
// artifacts are ever visible to resumes and merges.
func WriteArtifact(dir string, a *Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(dir, ArtifactFileName(a.CaseID), append(data, '\n'))
}

// ReadArtifact loads one artifact file.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("campaign: parse artifact %s: %w", path, err)
	}
	if a.CaseID == "" {
		return nil, fmt.Errorf("campaign: artifact %s has no case ID", path)
	}
	a.path = path
	return &a, nil
}

// WallTime returns the attack wall time the artifact records — the
// currency of the dispatch cost model (ObservedTimes feeds it back as
// measured steal order). Table-only and failed artifacts report zero.
func (a *Artifact) WallTime() time.Duration {
	switch {
	case a.Error != "":
		return 0
	case a.Outcome != nil:
		return a.Outcome.Time
	case a.Fig6 != nil:
		return a.Fig6.KCElapsed + a.Fig6.SA.Time
	}
	return 0
}

// ReadArtifacts scans every *.json artifact in dirs and returns them
// keyed by case ID. Artifacts from a different plan (hash mismatch) or
// for unknown case IDs are errors; a directory that does not exist is
// treated as empty (a shard that has not started yet). When the same
// case appears in several directories the first occurrence wins —
// duplicates are re-executions of the same deterministic work.
func ReadArtifacts(plan *Plan, dirs []string) (map[string]*Artifact, error) {
	known := make(map[string]bool, len(plan.Cases))
	for _, c := range plan.Cases {
		known[c.ID] = true
	}
	arts := make(map[string]*Artifact)
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
				continue
			}
			path := filepath.Join(dir, name)
			a, err := ReadArtifact(path)
			if err != nil {
				return nil, err
			}
			if a.PlanHash != plan.Hash {
				return nil, fmt.Errorf("campaign: artifact %s was produced under plan %.12s…, this plan is %.12s… (stale artifact directory?)", path, a.PlanHash, plan.Hash)
			}
			if !known[a.CaseID] {
				return nil, fmt.Errorf("campaign: artifact %s names case %s, which is not in the plan", path, a.CaseID)
			}
			if _, dup := arts[a.CaseID]; !dup {
				arts[a.CaseID] = a
			}
		}
	}
	return arts, nil
}
