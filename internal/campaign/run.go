package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"runtime"
	"sort"
	"sync"

	"repro/internal/attack"
	"repro/internal/exp"
)

// RunOptions tunes a shard execution.
type RunOptions struct {
	// ShardIndex / ShardCount select the shard; zero values mean the
	// whole plan (1 shard).
	ShardIndex int
	ShardCount int
	// Workers bounds harness concurrency; <= 0 means all cores.
	Workers int
	// Log, when non-nil, receives one progress line per case.
	Log io.Writer

	// afterArtifact is a test seam invoked after each artifact lands on
	// disk (used to kill a shard deterministically mid-flight).
	afterArtifact func(caseID string)
}

// RunReport summarizes a shard execution.
type RunReport struct {
	// ShardCases counts the plan cases belonging to the shard.
	ShardCases int
	// Skipped counts cases whose artifact already existed (resume).
	Skipped int
	// Ran counts cases executed and persisted by this run.
	Ran int
	// Failed counts shard cases whose artifact (pre-existing or fresh)
	// records a failure.
	Failed int
}

// Run executes one shard of the plan, writing one artifact per
// completed case into artifactDir. Re-running is idempotent: cases
// whose artifact already exists are validated against the plan hash and
// skipped, so a killed shard resumes from what it persisted (atomic
// artifact writes guarantee everything on disk is complete). A
// cancelled context stops attack work promptly — pending units
// short-circuit before any solver setup, in-flight ones drain through
// their own context checks — and neither kind persists an artifact;
// Run returns the context error alongside the partial report.
func Run(ctx context.Context, plan *Plan, artifactDir string, opts RunOptions) (*RunReport, error) {
	if opts.ShardCount == 0 {
		opts.ShardCount = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	idxs, err := plan.ShardIndices(opts.ShardIndex, opts.ShardCount)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		return nil, err
	}
	expCfg, err := plan.Config.ExpConfig()
	if err != nil {
		return nil, err
	}
	expCfg.Workers = opts.Workers

	report := &RunReport{ShardCases: len(idxs)}
	var todo []int
	for _, i := range idxs {
		path := ArtifactPath(artifactDir, plan.Cases[i].ID)
		a, err := ReadArtifact(path)
		switch {
		case err == nil:
			if a.PlanHash != plan.Hash {
				return nil, fmt.Errorf("campaign: existing artifact %s belongs to plan %.12s…, this plan is %.12s… (stale artifact directory?)", path, a.PlanHash, plan.Hash)
			}
			if a.CaseID != plan.Cases[i].ID {
				return nil, fmt.Errorf("campaign: artifact %s names case %s, want %s", path, a.CaseID, plan.Cases[i].ID)
			}
			report.Skipped++
			if a.Failed() {
				report.Failed++
			}
		case errors.Is(err, fs.ErrNotExist):
			todo = append(todo, i)
		default:
			return nil, fmt.Errorf("campaign: unreadable artifact %s: %w (delete it to recompute the case)", path, err)
		}
	}
	if len(todo) == 0 {
		return report, ctx.Err()
	}

	units := make([]exp.Unit, len(todo))
	type caseNeed struct {
		specIdx int
		level   exp.HLevel
	}
	need := map[caseNeed]bool{}
	for j, i := range todo {
		u, err := plan.Cases[i].Unit()
		if err != nil {
			return nil, err
		}
		units[j] = u
		if u.Kind == exp.UnitTable1 {
			for _, level := range exp.Levels {
				need[caseNeed{plan.Cases[i].SpecIdx, level}] = true
			}
		} else {
			need[caseNeed{plan.Cases[i].SpecIdx, u.Level}] = true
		}
	}

	// Build only the locked instances this shard actually attacks, in a
	// deterministic order, concurrently (generation and locking are pure
	// functions of the derived per-case seed).
	needList := make([]caseNeed, 0, len(need))
	for n := range need {
		needList = append(needList, n)
	}
	sort.Slice(needList, func(a, b int) bool {
		if needList[a].specIdx != needList[b].specIdx {
			return needList[a].specIdx < needList[b].specIdx
		}
		return needList[a].level < needList[b].level
	})
	cases := make([]*exp.Case, len(needList))
	buildErrs := make([]error, len(needList))
	attack.ForEachIndexed(opts.Workers, len(needList), func(i int) bool {
		n := needList[i]
		spec := plan.Config.Specs[n.specIdx]
		cases[i], buildErrs[i] = exp.BuildCase(spec, n.level, plan.Config.Seed+int64(n.specIdx)*1009)
		return true
	})
	for _, err := range buildErrs {
		if err != nil {
			return nil, fmt.Errorf("campaign: build suite: %w", err)
		}
	}

	var mu sync.Mutex
	var writeErr error
	onDone := func(j int, r exp.UnitResult) {
		// A cancelled context means in-flight attacks were cut short:
		// their truncated verdicts must not be persisted as completed
		// cases (a resume will recompute them). Cancellation is
		// monotone, so any unit that observed it is caught here.
		if ctx.Err() != nil {
			return
		}
		pc := plan.Cases[todo[j]]
		a := newArtifact(plan.Hash, pc, r)
		if err := WriteArtifact(artifactDir, a); err != nil {
			mu.Lock()
			if writeErr == nil {
				writeErr = err
			}
			mu.Unlock()
			return
		}
		mu.Lock()
		report.Ran++
		if a.Failed() {
			report.Failed++
		}
		mu.Unlock()
		if opts.Log != nil {
			status := "ok"
			if a.Failed() {
				status = "FAILED"
			}
			fmt.Fprintf(opts.Log, "campaign: %s %s\n", pc.ID, status)
		}
		if opts.afterArtifact != nil {
			opts.afterArtifact(pc.ID)
		}
	}
	if _, err := exp.RunUnits(ctx, cases, units, expCfg, onDone); err != nil {
		return report, err
	}
	if writeErr != nil {
		return report, writeErr
	}
	return report, ctx.Err()
}
