package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/sat"
)

// caseNeed identifies one locked instance a shard must build: spec
// index plus hardness level (the pure inputs of exp.BuildCase).
type caseNeed struct {
	specIdx int
	level   exp.HLevel
}

// RunOptions tunes a shard execution.
type RunOptions struct {
	// ShardIndex / ShardCount select the shard; zero values mean the
	// whole plan (1 shard).
	ShardIndex int
	ShardCount int
	// Workers bounds harness concurrency; <= 0 means all cores.
	Workers int
	// Log, when non-nil, receives one progress line per case.
	Log io.Writer
	// LearnFrom is a portfolio-stats JSON file (written by campaign
	// merge or fallbench -stats-out) whose recorded win statistics
	// reorder — and, with the plan's AdaptAfter, prune — the engine
	// list before racing (sat.LearnedConfigs). Learning redistributes
	// racing effort only; verdicts and artifacts' verdict fields are
	// unaffected.
	LearnFrom string
	// Memo shares one cross-query verdict cache across the shard's
	// cases (sat.NewMemo). Verdicts are unchanged — memoized artifacts
	// additionally carry solve-time and hit/miss diagnostics, which a
	// merge aggregates.
	Memo bool
	// MemoDir, when non-empty, attaches the persistent on-disk verdict
	// store at this directory as the memo's L2 tier (implies Memo) and
	// shares it across shards, reruns, and daemon restarts. Empty falls
	// back to the plan's recorded Config.MemoDir.
	MemoDir string
	// MemoMaxBytes caps the on-disk store's size (<= 0 means
	// sat.DefaultDiskMemoBytes); past the cap, least-recently-used
	// records are evicted.
	MemoMaxBytes int64
	// Trace, when non-empty, writes an NDJSON span trace of the shard
	// to this path (atomic temp+rename; the file appears only when the
	// shard finishes). Per-shard trace files merge in `campaign merge
	// -traces` and cmd/tracestat.
	Trace string
	// Steal switches from index-modulo sharding to claim-file work
	// stealing: every worker draws from the whole plan, claiming each
	// case via an O_EXCL claim file next to its artifact path, so any
	// number of heterogeneous processes pointed at one shared artifact
	// directory drain the plan cooperatively. Incompatible with
	// ShardCount > 1 (stealing replaces index-modulo).
	Steal bool
	// Owner identifies this worker in claim files, progress lines and
	// budget markers; empty means DefaultOwner() (host-pid).
	Owner string
	// Lease is the claim staleness horizon for stealing: a claim not
	// heartbeated for this long is treated as abandoned by a dead
	// worker and re-stolen. <= 0 means DefaultLease.
	Lease time.Duration
	// Budget, when > 0, is the run's wall-clock budget: once it
	// elapses the run stops starting (or claiming) new cases, lets
	// in-flight ones finish, and reports BudgetStopped — the remaining
	// cases are healthy, just unstarted, and a resumed run completes
	// them. cmd/campaign maps BudgetStopped to exit code 4 so CI can
	// requeue a continuation.
	Budget time.Duration
	// TimesFrom lists artifact directories of prior runs whose
	// recorded per-case wall times (ObservedTimes) refine the dispatch
	// cost model: observed cases are scheduled by measurement,
	// longest first, and unmeasured ones by the calibrated model
	// (exp.DispatchOrderObserved). Scheduling only — verdicts are
	// unaffected.
	TimesFrom []string
	// SolverOverride replaces the plan's solver engine spec for this
	// worker only — runtime configuration, not part of the plan hash.
	// It is how a heterogeneous fleet maps workers to their hardware
	// (and how the fleet benchmark simulates a slow machine with the
	// sleeping stub solver). The override must be verdict-equivalent
	// to the plan's engine; artifacts record the setup actually used.
	SolverOverride string

	// afterArtifact is a test seam invoked after each artifact lands on
	// disk (used to kill a shard deterministically mid-flight).
	afterArtifact func(caseID string)
}

// RunReport summarizes a shard execution.
type RunReport struct {
	// ShardCases counts the plan cases belonging to the shard.
	ShardCases int
	// Skipped counts cases whose artifact already existed (resume).
	Skipped int
	// Ran counts cases executed and persisted by this run.
	Ran int
	// Failed counts shard cases whose artifact (pre-existing or fresh)
	// records a failure.
	Failed int
	// Stolen counts cases this run took over from an expired lease
	// (stealing only).
	Stolen int
	// Remaining counts cases still without an artifact when the run
	// returned — nonzero only for budget-stopped (or gated) runs.
	Remaining int
	// BudgetStopped reports the run stopped claiming work because its
	// wall-clock budget expired while cases remained.
	BudgetStopped bool
}

// Run executes one shard of the plan, writing one artifact per
// completed case into artifactDir. Re-running is idempotent: cases
// whose artifact already exists are validated against the plan hash and
// skipped, so a killed shard resumes from what it persisted (atomic
// artifact writes guarantee everything on disk is complete). A
// cancelled context stops attack work promptly — pending units
// short-circuit before any solver setup, in-flight ones drain through
// their own context checks — and neither kind persists an artifact;
// Run returns the context error alongside the partial report.
func Run(ctx context.Context, plan *Plan, artifactDir string, opts RunOptions) (*RunReport, error) {
	if opts.ShardCount == 0 {
		opts.ShardCount = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Steal && opts.ShardCount > 1 {
		return nil, errors.New("campaign: -steal replaces index-modulo sharding; run stealing workers with shards=1 and a shared artifact dir")
	}
	if opts.Owner == "" {
		opts.Owner = DefaultOwner()
	}
	idxs, err := plan.ShardIndices(opts.ShardIndex, opts.ShardCount)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(artifactDir, 0o755); err != nil {
		return nil, err
	}
	planCfg := plan.Config
	if opts.SolverOverride != "" {
		planCfg.Solver = opts.SolverOverride
		planCfg.Portfolio = 0
		planCfg.PortfolioEngines = ""
	}
	expCfg, err := planCfg.ExpConfig()
	if err != nil {
		return nil, err
	}
	expCfg.Workers = opts.Workers
	if len(expCfg.Engines) > 0 {
		if opts.LearnFrom != "" {
			prior, err := sat.ReadStatsFile(opts.LearnFrom)
			if err != nil {
				return nil, fmt.Errorf("campaign: learn-from: %w", err)
			}
			expCfg.Engines = sat.LearnedConfigs(expCfg.Engines, prior, plan.Config.AdaptAfter)
		}
		// Fail fast on missing solver binaries (instead of a shard full of
		// Unknown verdicts), and share one ledger across the shard's cases
		// so chronic losers retire mid-run.
		if err := attack.NewSolverSetupEngines(expCfg.Engines).Check(); err != nil {
			return nil, err
		}
		if plan.Config.AdaptAfter > 0 {
			expCfg.Adapt = sat.NewLedgerLabels(sat.EngineLabels(expCfg.Engines))
		}
	}
	memoDir := opts.MemoDir
	if memoDir == "" {
		memoDir = plan.Config.MemoDir
	}
	if opts.Memo || memoDir != "" {
		expCfg.Memo = sat.NewMemo(sat.DefaultMemoEntries)
		if memoDir != "" {
			disk, err := sat.OpenDiskMemo(memoDir, opts.MemoMaxBytes)
			if err != nil {
				return nil, fmt.Errorf("campaign: memo dir: %w", err)
			}
			expCfg.Memo.AttachDisk(disk)
		}
	}
	if opts.Trace != "" {
		tracer, err := obs.NewFileTracer(opts.Trace)
		if err != nil {
			return nil, fmt.Errorf("campaign: trace: %w", err)
		}
		root := tracer.Start("campaign.shard",
			"plan", plan.Hash, "shard", opts.ShardIndex, "shards", opts.ShardCount)
		expCfg.Trace = root
		defer func() {
			root.End()
			if err := tracer.Close(); err != nil && opts.Log != nil {
				fmt.Fprintf(opts.Log, "campaign: trace: %v\n", err)
			}
		}()
	}
	if len(opts.TimesFrom) > 0 {
		expCfg.Observed = ObservedTimes(opts.TimesFrom)
	}
	var deadline time.Time
	if opts.Budget > 0 {
		deadline = time.Now().Add(opts.Budget)
	}
	budgetExceeded := func() bool {
		return opts.Budget > 0 && !time.Now().Before(deadline)
	}

	if opts.Steal {
		return runSteal(ctx, plan, artifactDir, opts, expCfg, deadline)
	}
	if opts.Budget > 0 {
		// The harness gate refuses to start new units past the
		// deadline; in-flight units finish and persist normally.
		expCfg.Gate = func(exp.Unit) bool { return !budgetExceeded() }
	}

	report := &RunReport{ShardCases: len(idxs)}
	var todo []int
	for _, i := range idxs {
		path := ArtifactPath(artifactDir, plan.Cases[i].ID)
		a, err := ReadArtifact(path)
		switch {
		case err == nil:
			if a.PlanHash != plan.Hash {
				return nil, fmt.Errorf("campaign: existing artifact %s belongs to plan %.12s…, this plan is %.12s… (stale artifact directory?)", path, a.PlanHash, plan.Hash)
			}
			if a.CaseID != plan.Cases[i].ID {
				return nil, fmt.Errorf("campaign: artifact %s names case %s, want %s", path, a.CaseID, plan.Cases[i].ID)
			}
			report.Skipped++
			if a.Failed() {
				report.Failed++
			}
		case errors.Is(err, fs.ErrNotExist):
			todo = append(todo, i)
		default:
			return nil, fmt.Errorf("campaign: unreadable artifact %s: %w (delete it to recompute the case)", path, err)
		}
	}
	if len(todo) == 0 {
		removeBudgetMarker(artifactDir, opts.Owner)
		return report, ctx.Err()
	}

	units := make([]exp.Unit, len(todo))
	need := map[caseNeed]bool{}
	for j, i := range todo {
		u, err := plan.Cases[i].Unit()
		if err != nil {
			return nil, err
		}
		units[j] = u
		if u.Kind == exp.UnitTable1 {
			for _, level := range exp.Levels {
				need[caseNeed{plan.Cases[i].SpecIdx, level}] = true
			}
		} else {
			need[caseNeed{plan.Cases[i].SpecIdx, u.Level}] = true
		}
	}

	// Build only the locked instances this shard actually attacks, in a
	// deterministic order, concurrently (generation and locking are pure
	// functions of the derived per-case seed).
	needList := make([]caseNeed, 0, len(need))
	for n := range need {
		needList = append(needList, n)
	}
	sort.Slice(needList, func(a, b int) bool {
		if needList[a].specIdx != needList[b].specIdx {
			return needList[a].specIdx < needList[b].specIdx
		}
		return needList[a].level < needList[b].level
	})
	cases := make([]*exp.Case, len(needList))
	buildErrs := make([]error, len(needList))
	attack.ForEachIndexed(opts.Workers, len(needList), func(i int) bool {
		n := needList[i]
		spec := plan.Config.Specs[n.specIdx]
		cases[i], buildErrs[i] = exp.BuildCase(spec, n.level, plan.Config.Seed+int64(n.specIdx)*1009)
		return true
	})
	for _, err := range buildErrs {
		if err != nil {
			return nil, fmt.Errorf("campaign: build suite: %w", err)
		}
	}

	var mu sync.Mutex
	var writeErr error
	onDone := func(j int, r exp.UnitResult) {
		// A cancelled context means in-flight attacks were cut short:
		// their truncated verdicts must not be persisted as completed
		// cases (a resume will recompute them). Cancellation is
		// monotone, so any unit that observed it is caught here.
		if ctx.Err() != nil {
			return
		}
		pc := plan.Cases[todo[j]]
		a := newArtifact(plan.Hash, pc, r)
		if err := WriteArtifact(artifactDir, a); err != nil {
			mu.Lock()
			if writeErr == nil {
				writeErr = err
			}
			mu.Unlock()
			return
		}
		mu.Lock()
		report.Ran++
		if a.Failed() {
			report.Failed++
		}
		mu.Unlock()
		if opts.Log != nil {
			status := "ok"
			if a.Failed() {
				status = "FAILED"
			}
			fmt.Fprintf(opts.Log, "campaign: %s %s\n", pc.ID, status)
		}
		if opts.afterArtifact != nil {
			opts.afterArtifact(pc.ID)
		}
	}
	if _, err := exp.RunUnits(ctx, cases, units, expCfg, onDone); err != nil {
		return report, err
	}
	if writeErr != nil {
		return report, writeErr
	}
	if expCfg.Memo != nil && opts.Log != nil {
		logMemoStats(opts.Log, expCfg.Memo)
	}
	if ctx.Err() == nil {
		// Cases neither resumed nor persisted were gated out by the
		// budget (the only skip path once the context survived).
		report.Remaining = report.ShardCases - report.Skipped - report.Ran
		switch {
		case report.Remaining == 0:
			removeBudgetMarker(artifactDir, opts.Owner)
		case budgetExceeded():
			report.BudgetStopped = true
			if err := writeBudgetMarker(artifactDir, opts.Owner, report.Remaining); err != nil && opts.Log != nil {
				fmt.Fprintf(opts.Log, "campaign: budget marker: %v\n", err)
			}
		}
	}
	return report, ctx.Err()
}

// logMemoStats prints the shard's memo hit/miss counters (and the disk
// tier's, when attached) to the progress log.
func logMemoStats(w io.Writer, memo *sat.Memo) {
	st := memo.Stats()
	fmt.Fprintf(w, "campaign: memo: %d hits / %d misses (%d entries)\n",
		st.Hits, st.Misses, memo.Len())
	if disk := memo.Disk(); disk != nil {
		ds := disk.Stats()
		fmt.Fprintf(w,
			"campaign: memo disk: %d hits / %d misses, %d records / %d bytes (%d writes, %d evicted, %d corrupt)\n",
			ds.Hits, ds.Misses, ds.Entries, ds.Bytes, ds.Writes, ds.Evictions, ds.Corrupt)
	}
}

// DeleteFailed removes every artifact under dir that records a failure
// for one of the given plan-case indices (nil = the whole plan),
// returning the deleted case IDs in plan order — the first half of
// `campaign retry`: delete the failures, then Run recomputes exactly
// the now-missing cases (and resume semantics keep every healthy
// artifact untouched). The index restriction matters under sharding: a
// retrying shard must not delete another shard's failed artifact it
// will never recompute, or the campaign would degrade from "completed
// with failures" to incomplete. Artifacts from foreign plans are an
// error, exactly as in a merge.
func DeleteFailed(plan *Plan, dir string, idxs []int) ([]string, error) {
	if idxs == nil {
		idxs = make([]int, len(plan.Cases))
		for i := range idxs {
			idxs[i] = i
		}
	}
	arts, err := ReadArtifacts(plan, []string{dir})
	if err != nil {
		return nil, err
	}
	var deleted []string
	for _, i := range idxs {
		pc := plan.Cases[i]
		a, ok := arts[pc.ID]
		if !ok || !a.Failed() {
			continue
		}
		if err := os.Remove(ArtifactPath(dir, pc.ID)); err != nil {
			return deleted, err
		}
		deleted = append(deleted, pc.ID)
	}
	return deleted, nil
}
