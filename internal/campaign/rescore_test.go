package campaign

import (
	"context"
	"strings"
	"testing"

	"repro/internal/exp"
)

// rescorable mirrors Rescore's eligibility rule: a persisted shortlist
// the runtime scoring would have scored.
func rescorable(out *exp.Outcome) bool {
	if out == nil || out.Failed || len(out.Keys) == 0 {
		return false
	}
	if out.Attack == exp.SATAttackName && (out.NumKeys != 1 || out.TimedOut) {
		return false
	}
	return true
}

// Under unchanged scoring rules, Rescore is a no-op: nothing changes,
// nothing is rewritten, and the report renders byte-identically.
func TestRescoreNoOpUnderUnchangedRules(t *testing.T) {
	cfg := tinyCampaignConfig("table1", "summary")
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Run(context.Background(), plan, dir, RunOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	var before strings.Builder
	if err := m.Render(&before); err != nil {
		t.Fatal(err)
	}

	rr, err := m.Rescore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Changed != 0 {
		t.Errorf("rescore under unchanged rules changed %d artifact(s), want 0", rr.Changed)
	}
	if rr.Rescored == 0 {
		t.Error("rescore replayed no outcomes — shortlists were not persisted or not recognized")
	}
	if rr.Scanned != len(plan.Cases) {
		t.Errorf("scanned %d artifacts, want %d", rr.Scanned, len(plan.Cases))
	}
	var after strings.Builder
	if err := m.Render(&after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Error("no-op rescore changed the rendered report")
	}
}

// The tentpole property of -rescore: corrupted verdict fields are
// recomputed from the persisted key shortlists alone — PlantedKeyMatch,
// Equivalent, Solved, and Unique all return to the values the original
// run scored, timing fields stay untouched, and the rewritten artifacts
// land back on disk.
func TestRescoreRecomputesVerdictsFromKeys(t *testing.T) {
	cfg := tinyCampaignConfig("summary")
	plan, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Run(context.Background(), plan, dir, RunOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := m.Render(&want); err != nil {
		t.Fatal(err)
	}

	// Snapshot the true verdicts, then corrupt every rescorable outcome
	// on disk. Solved is flipped only where the original run satisfies
	// Unique == (Solved && NumKeys == 1): Unique is reconstructed from
	// that identity when the solve verdict moves, so outcomes violating
	// it (none at this scale, but guard anyway) keep their Solved bit.
	type verdict struct {
		planted, eq, solved, unique bool
	}
	orig := map[string]verdict{}
	corrupted := 0
	for id, a := range m.Artifacts {
		out := a.Outcome
		if !rescorable(out) {
			continue
		}
		orig[id] = verdict{out.PlantedKeyMatch, out.Equivalent, out.Solved, out.Unique}
		out.PlantedKeyMatch = !out.PlantedKeyMatch
		out.Equivalent = !out.Equivalent
		if out.Unique == (out.Solved && out.NumKeys == 1) {
			out.Solved = !out.Solved
			out.Unique = !out.Unique
		}
		if err := WriteArtifact(dir, a); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no rescorable artifacts to corrupt — test is vacuous")
	}

	// Fresh merge sees the corruption; rescore must undo all of it.
	m, err = Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := m.Rescore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Changed != corrupted {
		t.Errorf("rescore changed %d artifact(s), want %d (every corrupted one)", rr.Changed, corrupted)
	}
	var got strings.Builder
	if err := m.Render(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("rescored report differs from the original run's:\n got:\n%s\nwant:\n%s", got.String(), want.String())
	}

	// The recovered verdicts must be on disk, not just in memory, and a
	// second pass must find nothing left to fix.
	m, err = Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range orig {
		out := m.Artifacts[id].Outcome
		if out.PlantedKeyMatch != v.planted || out.Equivalent != v.eq || out.Solved != v.solved || out.Unique != v.unique {
			t.Errorf("%s: disk verdict {%v %v %v %v}, want {%v %v %v %v}", id,
				out.PlantedKeyMatch, out.Equivalent, out.Solved, out.Unique,
				v.planted, v.eq, v.solved, v.unique)
		}
	}
	rr, err = m.Rescore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Changed != 0 {
		t.Errorf("second rescore pass changed %d artifact(s), want 0", rr.Changed)
	}
}
