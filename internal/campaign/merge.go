package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/sat"
)

// MergeResult is the reassembly of a campaign's artifacts against its
// plan: every planned case resolved to its artifact, with the
// unresolved and failed IDs called out.
type MergeResult struct {
	Plan      *Plan
	Artifacts map[string]*Artifact
	// Missing lists planned case IDs with no artifact, in plan order.
	Missing []string
	// Failed lists case IDs whose artifact records a failure, in plan
	// order.
	Failed []string
}

// Merge reads every artifact under dirs and lines them up with the
// plan. Artifacts from other plans or for unknown cases are errors; an
// incomplete campaign is not (the caller decides whether Missing is
// acceptable — see Complete).
func Merge(plan *Plan, dirs []string) (*MergeResult, error) {
	arts, err := ReadArtifacts(plan, dirs)
	if err != nil {
		return nil, err
	}
	m := &MergeResult{Plan: plan, Artifacts: arts}
	for _, pc := range plan.Cases {
		a, ok := arts[pc.ID]
		if !ok {
			m.Missing = append(m.Missing, pc.ID)
			continue
		}
		if a.Failed() {
			m.Failed = append(m.Failed, pc.ID)
		}
	}
	return m, nil
}

// Complete reports whether every planned case has an artifact.
func (m *MergeResult) Complete() bool { return len(m.Missing) == 0 }

// WinStats aggregates the per-engine racing statistics recorded across
// every artifact (attack outcomes, Fig. 6 key-confirmation pipelines
// and their SAT-attack halves), keyed by engine label in plan order —
// the campaign-level ledger snapshot that cmd/campaign merge prints and
// persists for -learn-from. Nil when the campaign did not race.
func (m *MergeResult) WinStats() []sat.ConfigStats {
	var groups [][]sat.ConfigStats
	for _, pc := range m.Plan.Cases {
		a, ok := m.Artifacts[pc.ID]
		if !ok {
			continue
		}
		if a.Outcome != nil {
			groups = append(groups, a.Outcome.PortfolioStats)
		}
		if a.Fig6 != nil {
			groups = append(groups, a.Fig6.KCPortfolio, a.Fig6.SA.PortfolioStats)
		}
	}
	return sat.MergeStats(groups...)
}

// MemoStats aggregates the verdict-cache hit/miss counters recorded
// across every artifact (attack outcomes, Fig. 6 key-confirmation
// pipelines and their SAT-attack halves). Nil when no shard ran with
// memoization enabled.
func (m *MergeResult) MemoStats() *sat.MemoStats {
	var total sat.MemoStats
	found := false
	add := func(st *sat.MemoStats) {
		if st != nil {
			total = total.Add(*st)
			found = true
		}
	}
	for _, pc := range m.Plan.Cases {
		a, ok := m.Artifacts[pc.ID]
		if !ok {
			continue
		}
		if a.Outcome != nil {
			add(a.Outcome.MemoStats)
		}
		if a.Fig6 != nil {
			add(a.Fig6.KCMemoStats)
			add(a.Fig6.SA.MemoStats)
		}
	}
	if !found {
		return nil
	}
	return &total
}

// Render writes the plan's report suites in order, reassembled from the
// artifacts, using the exact formatting of the monolithic
// exp/fallbench output — a merge over any sharding is byte-identical to
// a 1-shard run with the same measurements. Cases without artifacts are
// skipped (their runs simply do not appear), so partial campaigns still
// render.
func (m *MergeResult) Render(w io.Writer) error {
	expCfg, err := m.Plan.Config.ExpConfig()
	if err != nil {
		return err
	}
	for _, suite := range m.Plan.Config.Suites {
		units, err := exp.SuiteUnits(expCfg, suite)
		if err != nil {
			return err
		}
		switch {
		case suite == "table1":
			var rows []exp.Table1Row
			for _, u := range units {
				if a := m.Artifacts[u.ID()]; a != nil && a.Table1 != nil {
					rows = append(rows, *a.Table1)
				}
			}
			fmt.Fprintln(w, "=== Table I (regenerated) ===")
			fmt.Fprint(w, exp.FormatTable1(rows))
		case strings.HasPrefix(suite, "fig5:"):
			level, err := exp.ParseHLevel(strings.TrimPrefix(suite, "fig5:"))
			if err != nil {
				return err
			}
			var outs []exp.Outcome
			for _, u := range units {
				if a := m.Artifacts[u.ID()]; a != nil && a.Outcome != nil {
					outs = append(outs, *a.Outcome)
				}
			}
			fmt.Fprintf(w, "=== Fig. 5 panel %s (%s) ===\n", level.Token(), level.Label())
			fmt.Fprint(w, exp.FormatCactus(outs, exp.Fig5AttackNames(level)))
		case suite == "fig6":
			var results []exp.Fig6CaseResult
			for _, u := range units {
				if a := m.Artifacts[u.ID()]; a != nil && a.Fig6 != nil {
					results = append(results, *a.Fig6)
				}
			}
			fmt.Fprintln(w, "=== Fig. 6: key confirmation vs SAT attack ===")
			fmt.Fprint(w, exp.FormatFig6(exp.AggregateFig6(results)))
		case suite == "summary":
			var outs []exp.Outcome
			for _, u := range units {
				if a := m.Artifacts[u.ID()]; a != nil && a.Outcome != nil {
					outs = append(outs, *a.Outcome)
				}
			}
			fmt.Fprintln(w, "=== §VI-B summary ===")
			fmt.Fprint(w, exp.FormatSummary(exp.AggregateSummary(outs)))
		default:
			return fmt.Errorf("campaign: unknown suite %q in plan", suite)
		}
	}
	return nil
}

// SuiteStatus is the progress of one report suite.
type SuiteStatus struct {
	Suite  string
	Total  int
	Done   int
	Failed int
}

// WorkerClaim is one live (or expired) claim file observed in an
// artifact directory: the fleet's in-flight work, as `campaign status`
// shows it.
type WorkerClaim struct {
	Owner string
	Case  string
	// Age is how long ago the claim was last heartbeated. Stale means
	// Age exceeds the default lease: the owner is presumed dead and the
	// case will be re-stolen by the next scanning worker.
	Age   time.Duration
	Stale bool
}

// StatusReport is the progress of a whole campaign.
type StatusReport struct {
	Total, Done, Failed int
	Suites              []SuiteStatus
	// MissingSample lists up to 10 unfinished case IDs in plan order.
	MissingSample []string
	// Claims lists in-flight claim files for still-pending cases, by
	// owner then case — the fleet's live workers (stealing mode).
	Claims []WorkerClaim
	// BudgetStopped lists workers that ran out of wall-clock budget
	// with cases remaining — distinct from failures: their cases are
	// healthy and a resumed run finishes them.
	BudgetStopped []BudgetStop
}

// Complete reports whether every planned case has an artifact.
func (s *StatusReport) Complete() bool { return s.Done == s.Total }

// Status summarizes how much of the plan the artifacts in dirs cover.
func Status(plan *Plan, dirs []string) (*StatusReport, error) {
	arts, err := ReadArtifacts(plan, dirs)
	if err != nil {
		return nil, err
	}
	s := &StatusReport{Total: len(plan.Cases)}
	bySuite := map[string]int{}
	for _, pc := range plan.Cases {
		suite := pc.Suite()
		idx, ok := bySuite[suite]
		if !ok {
			idx = len(s.Suites)
			s.Suites = append(s.Suites, SuiteStatus{Suite: suite})
			bySuite[suite] = idx
		}
		ss := &s.Suites[idx]
		ss.Total++
		a, done := arts[pc.ID]
		if !done {
			if len(s.MissingSample) < 10 {
				s.MissingSample = append(s.MissingSample, pc.ID)
			}
			continue
		}
		s.Done++
		ss.Done++
		if a.Failed() {
			s.Failed++
			ss.Failed++
		}
	}
	s.scanFleet(arts, dirs)
	return s, nil
}

// scanFleet collects claim files and budget markers from the artifact
// directories: the live (and dead) workers of a stealing fleet, and the
// shards that stopped on an exhausted wall-clock budget. Both are
// advisory displays, so unreadable files are skipped, and claims whose
// case already has an artifact are litter from a worker that died after
// persisting — not in-flight work — and are not shown.
func (s *StatusReport) scanFleet(arts map[string]*Artifact, dirs []string) {
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, ent := range entries {
			name := ent.Name()
			switch {
			case ent.IsDir():
			case strings.HasSuffix(name, ClaimSuffix):
				info, mtime, err := ReadClaim(filepath.Join(dir, name))
				if err != nil {
					continue
				}
				caseID := info.Case
				if caseID == "" {
					// Derive from the file name (claim body is advisory
					// and may be half-written).
					base := strings.TrimSuffix(strings.TrimSuffix(name, ClaimSuffix), ".json")
					caseID = strings.ReplaceAll(base, "__", "/")
				}
				if _, done := arts[caseID]; done {
					continue
				}
				age := time.Since(mtime)
				s.Claims = append(s.Claims, WorkerClaim{
					Owner: info.Owner, Case: caseID, Age: age, Stale: age > DefaultLease,
				})
			case strings.HasPrefix(name, budgetMarkerPrefix) && strings.HasSuffix(name, ".json"):
				data, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					continue
				}
				var b BudgetStop
				if json.Unmarshal(data, &b) != nil {
					continue
				}
				s.BudgetStopped = append(s.BudgetStopped, b)
			}
		}
	}
	sort.Slice(s.Claims, func(a, b int) bool {
		if s.Claims[a].Owner != s.Claims[b].Owner {
			return s.Claims[a].Owner < s.Claims[b].Owner
		}
		return s.Claims[a].Case < s.Claims[b].Case
	})
	sort.Slice(s.BudgetStopped, func(a, b int) bool {
		return s.BudgetStopped[a].Owner < s.BudgetStopped[b].Owner
	})
}

// Render writes the status as a small table.
func (s *StatusReport) Render(w io.Writer) {
	fmt.Fprintf(w, "%-10s %6s %6s %6s\n", "suite", "done", "total", "failed")
	for _, ss := range s.Suites {
		fmt.Fprintf(w, "%-10s %6d %6d %6d\n", ss.Suite, ss.Done, ss.Total, ss.Failed)
	}
	fmt.Fprintf(w, "%-10s %6d %6d %6d\n", "all", s.Done, s.Total, s.Failed)
	for _, id := range s.MissingSample {
		fmt.Fprintf(w, "  pending: %s\n", id)
	}
	for _, c := range s.Claims {
		owner := c.Owner
		if owner == "" {
			owner = "(unknown)"
		}
		if c.Stale {
			fmt.Fprintf(w, "  worker %s: claim on %s stale (%s ago — lease expired, will be re-stolen)\n",
				owner, c.Case, c.Age.Round(time.Second))
		} else {
			fmt.Fprintf(w, "  worker %s: running %s (%s)\n", owner, c.Case, c.Age.Round(time.Second))
		}
	}
	for _, b := range s.BudgetStopped {
		fmt.Fprintf(w, "  budget-stopped %s: %d case(s) remaining (stopped %s)\n",
			b.Owner, b.Remaining, b.Stopped.Format("2006-01-02 15:04:05"))
	}
}
