package campaign

import (
	"context"
	"path/filepath"
	"testing"
)

// TestRetryRecomputesFailed: `campaign retry` semantics — DeleteFailed
// removes exactly the failed artifacts, a subsequent Run recomputes
// only those cases (healthy artifacts resume untouched), and a further
// run after the retry resumes everything.
func TestRetryRecomputesFailed(t *testing.T) {
	plan, err := NewPlan(tinyCampaignConfig("summary"))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "artifacts")
	ctx := context.Background()

	report, err := Run(ctx, plan, dir, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ran != len(plan.Cases) || report.Failed != 0 {
		t.Fatalf("initial run: %+v", report)
	}

	// Simulate two cases that died mid-campaign (a crashed solver, an
	// OOM-killed worker) by overwriting their artifacts with failures.
	failedIDs := []string{plan.Cases[0].ID, plan.Cases[2].ID}
	for _, id := range failedIDs {
		if err := WriteArtifact(dir, &Artifact{PlanHash: plan.Hash, CaseID: id, Error: "injected failure"}); err != nil {
			t.Fatal(err)
		}
	}

	// Shard scoping: a shard must only delete failures it will itself
	// recompute. With 2 shards, case 0 belongs to shard 0 and case 2 to
	// shard 0 as well (even indices), so shard 1 deletes nothing.
	shard1, err := plan.ShardIndices(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if deleted, err := DeleteFailed(plan, dir, shard1); err != nil || len(deleted) != 0 {
		t.Fatalf("shard 1 deleted foreign failures: %v, %v", deleted, err)
	}

	deleted, err := DeleteFailed(plan, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 || deleted[0] != failedIDs[0] || deleted[1] != failedIDs[1] {
		t.Fatalf("DeleteFailed removed %v, want %v", deleted, failedIDs)
	}

	// The retry run recomputes exactly the deleted cases.
	report, err = Run(ctx, plan, dir, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ran != 2 || report.Skipped != len(plan.Cases)-2 || report.Failed != 0 {
		t.Fatalf("retry run: %+v", report)
	}

	// Resume-after-retry: everything is healthy and skipped.
	report, err = Run(ctx, plan, dir, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ran != 0 || report.Skipped != len(plan.Cases) || report.Failed != 0 {
		t.Fatalf("resume after retry: %+v", report)
	}

	m, err := Merge(plan, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() || len(m.Failed) != 0 {
		t.Fatalf("post-retry merge: missing %v failed %v", m.Missing, m.Failed)
	}

	// A clean campaign has nothing to delete.
	if deleted, err := DeleteFailed(plan, dir, nil); err != nil || len(deleted) != 0 {
		t.Fatalf("clean DeleteFailed: %v, %v", deleted, err)
	}
}
