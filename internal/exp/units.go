package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/fall"
	"repro/internal/genbench"
	"repro/internal/obs"
)

// This file defines the unit layer underneath the suite entry points: a
// Unit is the smallest independently-executable piece of an experiment
// run (one attack on one locked instance, one Fig. 6 pairing, one
// Table I row). The in-process entry points (Table1, Fig5Panel, Fig6,
// Summarize) enumerate units and execute them all locally — the 1-shard
// special case — while internal/campaign enumerates the same units into
// a serialized plan, executes arbitrary shards of them, and aggregates
// persisted unit results with the same Aggregate* functions.

// SATAttackName is the Outcome.Attack label of the baseline SAT attack.
const SATAttackName = "SAT-Attack"

// UnitKind classifies what a unit computes.
type UnitKind int

const (
	// UnitTable1 builds one spec at all four levels and reports the
	// Table I gate-count row.
	UnitTable1 UnitKind = iota
	// UnitFig5 runs one attack (SAT or a FALL analysis) on one case.
	UnitFig5
	// UnitFig6 runs the §VI-C pairing (FALL → key confirmation, plus
	// the SAT attack) on one case.
	UnitFig6
	// UnitSummary runs the combined (Auto) FALL attack on one case.
	UnitSummary
)

func (k UnitKind) String() string {
	switch k {
	case UnitTable1:
		return "table1"
	case UnitFig5:
		return "fig5"
	case UnitFig6:
		return "fig6"
	default:
		return "summary"
	}
}

// ParseUnitKind inverts UnitKind.String.
func ParseUnitKind(s string) (UnitKind, error) {
	switch s {
	case "table1":
		return UnitTable1, nil
	case "fig5":
		return UnitFig5, nil
	case "fig6":
		return UnitFig6, nil
	case "summary":
		return UnitSummary, nil
	}
	return UnitTable1, fmt.Errorf("exp: unknown unit kind %q", s)
}

// Unit identifies one executable experiment case. Level is meaningful
// for every kind but UnitTable1 (which spans all levels); Attack names
// the attack for UnitFig5 (SATAttackName or a fall analysis name) and
// the analysis for UnitSummary.
type Unit struct {
	Kind    UnitKind
	Circuit string
	Level   HLevel
	Attack  string
}

// ID returns the unit's stable identifier, used as the campaign case ID
// and artifact file name stem.
func (u Unit) ID() string {
	switch u.Kind {
	case UnitTable1:
		return "table1/" + u.Circuit
	case UnitFig5:
		return fmt.Sprintf("fig5/%s/%s/%s", u.Circuit, u.Level.Token(), u.Attack)
	case UnitFig6:
		return fmt.Sprintf("fig6/%s/%s", u.Circuit, u.Level.Token())
	default:
		return fmt.Sprintf("summary/%s/%s", u.Circuit, u.Level.Token())
	}
}

// fig5Analyses lists the FALL analyses of a Fig. 5 panel: unateness for
// HD0, sliding window everywhere else, plus Distance2H where its
// applicability condition 4h <= m holds (h = m/8, m/4).
func fig5Analyses(level HLevel) []fall.Analysis {
	switch level {
	case HD0:
		return []fall.Analysis{fall.Unateness}
	case HM3:
		return []fall.Analysis{fall.SlidingWindow}
	default:
		return []fall.Analysis{fall.SlidingWindow, fall.Distance2H}
	}
}

// Fig5AttackNames lists the attack labels of a Fig. 5 panel in output
// order (the SAT attack first, as in the paper's legends).
func Fig5AttackNames(level HLevel) []string {
	names := []string{SATAttackName}
	for _, a := range fig5Analyses(level) {
		names = append(names, a.String())
	}
	return names
}

// fig5CaseUnits enumerates the panel's units for one case in run order.
func fig5CaseUnits(circuit string, level HLevel) []Unit {
	units := []Unit{{Kind: UnitFig5, Circuit: circuit, Level: level, Attack: SATAttackName}}
	for _, a := range fig5Analyses(level) {
		units = append(units, Unit{Kind: UnitFig5, Circuit: circuit, Level: level, Attack: a.String()})
	}
	return units
}

// SuiteUnits enumerates the units of one report suite — "table1",
// "fig5:<hd0|h8|h4|h3>", "fig6" or "summary" — over cfg.Specs, without
// building any circuits. The order matches the in-process entry points
// run over a full BuildSuite, so a campaign merge reproduces their
// output exactly.
func SuiteUnits(cfg Config, suite string) ([]Unit, error) {
	var units []Unit
	switch {
	case suite == "table1":
		for _, spec := range cfg.Specs {
			units = append(units, Unit{Kind: UnitTable1, Circuit: spec.Name})
		}
	case strings.HasPrefix(suite, "fig5:"):
		level, err := ParseHLevel(strings.TrimPrefix(suite, "fig5:"))
		if err != nil {
			return nil, err
		}
		for _, spec := range cfg.Specs {
			units = append(units, fig5CaseUnits(spec.Name, level)...)
		}
	case suite == "fig6":
		for _, spec := range cfg.Specs {
			for _, level := range Levels {
				units = append(units, Unit{Kind: UnitFig6, Circuit: spec.Name, Level: level})
			}
		}
	case suite == "summary":
		for _, spec := range cfg.Specs {
			for _, level := range Levels {
				units = append(units, Unit{Kind: UnitSummary, Circuit: spec.Name, Level: level, Attack: fall.Auto.String()})
			}
		}
	default:
		return nil, fmt.Errorf("exp: unknown suite %q (want table1, fig5:<level>, fig6 or summary)", suite)
	}
	return units, nil
}

// UnitResult is the outcome of one unit, with exactly one payload field
// set according to the unit's kind (Err on harness-level failure).
type UnitResult struct {
	Outcome *Outcome        // UnitFig5, UnitSummary
	Fig6    *Fig6CaseResult // UnitFig6
	Table1  *Table1Row      // UnitTable1
	Err     error
}

// unitCost estimates a unit's relative runtime for the adaptive
// longest-expected-first dispatch order. The weights are heuristic but
// deterministic and monotone in the drivers that dominate measured cost:
// key size (the SAT attack's distinguishing-input space and the FALL
// candidate count), the Hamming level (cardinality-constraint size and
// lemma hardness), and the attack kind (iterative oracle loops dwarf
// one-shot analyses; the Fig. 6 pairing runs three attacks).
func unitCost(u Unit, spec genbench.Spec) int64 {
	keys := int64(spec.Keys)
	gates := int64(spec.Gates)
	h := int64(u.Level.Value(spec.Keys))
	if u.Level != HD0 && h < 1 {
		h = 1
	}
	base := gates + keys*keys
	switch u.Kind {
	case UnitTable1:
		return 4 * gates // locking only, no attacks
	case UnitSummary:
		return base * (2 + h)
	case UnitFig6:
		return 8*base*(1+h) + keys*gates // FALL + key confirmation + SAT attack
	}
	switch u.Attack {
	case SATAttackName:
		return 6*base + keys*gates
	case fall.Distance2H.String():
		return base * (3 + 2*h)
	case fall.SlidingWindow.String():
		return base * (2 + h)
	default: // unateness / auto
		return base
	}
}

// DispatchOrder returns the indices of units sorted
// longest-expected-first (ties broken by unit index, so the order is
// deterministic). Handing the pool the expensive units first cuts tail
// latency: a long SAT attack started last would otherwise run alone
// after every cheap analysis has drained.
func DispatchOrder(units []Unit, specs map[string]genbench.Spec) []int {
	return DispatchOrderObserved(units, specs, nil)
}

// DispatchOrderObserved is DispatchOrder with measured wall times from
// prior runs (keyed by Unit.ID(), as campaign artifacts record them)
// overriding the model's prediction: units that have actually been
// timed sort by their observed duration, and units never seen fall back
// to the model cost rescaled into observed time by the median
// observed/predicted ratio — so a single calibration run turns the
// whole order from model-predicted into longest-observed-first without
// leaving unmeasured units stranded at either end. An empty or nil map
// is exactly DispatchOrder.
func DispatchOrderObserved(units []Unit, specs map[string]genbench.Spec, observed map[string]time.Duration) []int {
	order := make([]int, len(units))
	cost := make([]int64, len(units))
	for i, u := range units {
		order[i] = i
		cost[i] = unitCost(u, specs[u.Circuit])
	}
	if len(observed) > 0 {
		// Calibrate model cost into nanoseconds: the median ratio over
		// units with both a prediction and a measurement is robust to a
		// few pathological outliers (a timed-out case, a cache-warm one).
		var ratios []float64
		for i, u := range units {
			if d, ok := observed[u.ID()]; ok && cost[i] > 0 && d > 0 {
				ratios = append(ratios, float64(d)/float64(cost[i]))
			}
		}
		scale := 1.0
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			scale = ratios[len(ratios)/2]
		}
		for i, u := range units {
			if d, ok := observed[u.ID()]; ok && d > 0 {
				cost[i] = int64(d)
			} else {
				cost[i] = int64(float64(cost[i]) * scale)
			}
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if cost[order[a]] != cost[order[b]] {
			return cost[order[a]] > cost[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

type caseKey struct {
	circuit string
	level   HLevel
}

// RunUnits executes units against the given pre-built cases on the
// harness worker pool, dispatching longest-expected-first, and returns
// results indexed like units (output order never depends on
// scheduling). onDone, when non-nil, is invoked from worker goroutines
// as each unit completes — campaign shards use it to persist artifacts
// the moment they are final. It returns an error if some unit has no
// matching case.
func RunUnits(ctx context.Context, cases []*Case, units []Unit, cfg Config, onDone func(int, UnitResult)) ([]UnitResult, error) {
	byKey := make(map[caseKey]*Case, len(cases))
	specs := make(map[string]genbench.Spec)
	for _, cs := range cases {
		byKey[caseKey{cs.Spec.Name, cs.Level}] = cs
		specs[cs.Spec.Name] = cs.Spec
	}
	for _, u := range units {
		if u.Kind == UnitTable1 {
			for _, level := range Levels {
				if byKey[caseKey{u.Circuit, level}] == nil {
					return nil, fmt.Errorf("exp: unit %s: no case for %s/%s", u.ID(), u.Circuit, level.Token())
				}
			}
		} else if byKey[caseKey{u.Circuit, u.Level}] == nil {
			return nil, fmt.Errorf("exp: unit %s: no case for %s/%s", u.ID(), u.Circuit, u.Level.Token())
		}
	}
	order := DispatchOrderObserved(units, specs, cfg.Observed)
	results := make([]UnitResult, len(units))
	forEachIndexed(cfg.workers(), len(units), func(j int) {
		i := order[j]
		// The gate is consulted at the moment a worker would start the
		// unit — not at enqueue time — so a wall-clock budget stops
		// exactly the units that had not begun when it expired. Gated
		// units are skipped entirely: zero result, no onDone, so a
		// campaign shard persists nothing for them and a resume
		// recomputes exactly the unstarted remainder.
		if cfg.Gate != nil && !cfg.Gate(units[i]) {
			return
		}
		results[i] = runUnit(ctx, units[i], byKey, cfg)
		if onDone != nil {
			onDone(i, results[i])
		}
	})
	return results, nil
}

// mustRunUnits is RunUnits for entry points whose units are derived
// from the case list itself, where a missing case is impossible.
func mustRunUnits(ctx context.Context, cases []*Case, units []Unit, cfg Config) []UnitResult {
	results, err := RunUnits(ctx, cases, units, cfg, nil)
	if err != nil {
		panic(err) // unreachable: units enumerate the provided cases
	}
	return results
}

// cancelledUnit synthesizes the result of a unit whose attacks never
// started because the context was already dead: the identifying fields
// are filled in, the verdict is a timeout, and no attack setup (circuit
// encoding, solver construction) is paid. Table I units carry no attack
// work, so they are never synthesized — runUnit computes them for real.
func cancelledUnit(u Unit) UnitResult {
	switch u.Kind {
	case UnitFig5, UnitSummary:
		return UnitResult{Outcome: &Outcome{Circuit: u.Circuit, Level: u.Level, Attack: u.Attack, TimedOut: true}}
	default: // UnitFig6
		return UnitResult{Fig6: &Fig6CaseResult{
			Circuit: u.Circuit, Level: u.Level,
			SA: Outcome{Circuit: u.Circuit, Level: u.Level, Attack: SATAttackName, TimedOut: true},
		}}
	}
}

func runUnit(ctx context.Context, u Unit, byKey map[caseKey]*Case, cfg Config) UnitResult {
	// A dead context must not pay per-unit attack setup: at paper scale
	// a cancelled run would otherwise Tseitin-encode thousands of gates
	// per remaining unit just to discover the cancellation inside the
	// first solver call. (In-flight units still drain through their own
	// ctx checks; campaign shards never persist either kind.)
	if ctx.Err() != nil && u.Kind != UnitTable1 {
		return cancelledUnit(u)
	}
	// One trace span per unit (traced runs only): phases, grid cells
	// and solver queries of the unit parent here through the context.
	if sp := cfg.Trace.Child("unit", "id", u.ID()); sp != nil {
		ctx = obs.With(ctx, sp)
		defer sp.End()
	}
	switch u.Kind {
	case UnitTable1:
		var row Table1Row
		for _, level := range Levels {
			cs := byKey[caseKey{u.Circuit, level}]
			row.Name, row.In, row.Out, row.Keys = cs.Spec.Name, cs.Spec.Inputs, cs.Spec.Outputs, cs.Spec.Keys
			row.GatesOrig = cs.Orig.NumGates()
			g := cs.Lock.Locked.NumGates()
			if row.GatesMin == 0 || g < row.GatesMin {
				row.GatesMin = g
			}
			if g > row.GatesMax {
				row.GatesMax = g
			}
		}
		return UnitResult{Table1: &row}
	case UnitFig5:
		cs := byKey[caseKey{u.Circuit, u.Level}]
		var out Outcome
		if u.Attack == SATAttackName {
			out = RunSAT(ctx, cs, cfg)
		} else {
			an, ok := fall.ParseAnalysis(u.Attack)
			if !ok {
				return UnitResult{Err: fmt.Errorf("exp: unit %s: unknown attack %q", u.ID(), u.Attack)}
			}
			out = RunFALL(ctx, cs, an, cfg)
		}
		return UnitResult{Outcome: &out}
	case UnitFig6:
		r := RunFig6Case(ctx, byKey[caseKey{u.Circuit, u.Level}], cfg)
		return UnitResult{Fig6: &r}
	default: // UnitSummary
		an := fall.Auto
		if u.Attack != "" {
			// An unknown name is an error, never a silent fallback: a
			// misdescribed unit would otherwise persist a normal-looking
			// artifact whose verdict came from the wrong analysis.
			a, ok := fall.ParseAnalysis(u.Attack)
			if !ok {
				return UnitResult{Err: fmt.Errorf("exp: unit %s: unknown analysis %q", u.ID(), u.Attack)}
			}
			an = a
		}
		out := RunFALL(ctx, byKey[caseKey{u.Circuit, u.Level}], an, cfg)
		return UnitResult{Outcome: &out}
	}
}
