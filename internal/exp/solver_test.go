package exp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/fall"
	"repro/internal/sat"
)

// TestHarnessPortfolioVerdictsMatch: the same case scored with per-query
// portfolio racing must report the same verdict fields as the default
// single engine (racing changes runtimes, never verdicts), and must
// carry the solver label and win accounting in the outcome.
func TestHarnessPortfolioVerdictsMatch(t *testing.T) {
	cfg := tinyConfig()
	cs, err := BuildCase(cfg.Specs[0], HD0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base := RunFALL(ctx, cs, fall.Unateness, cfg)
	if base.SolverConfig != "" || base.PortfolioStats != nil {
		t.Errorf("default run must not record solver fields: %q %v", base.SolverConfig, base.PortfolioStats)
	}

	pcfg := cfg
	pcfg.Portfolio = 3
	port := RunFALL(ctx, cs, fall.Unateness, pcfg)
	if port.Solved != base.Solved || port.Equivalent != base.Equivalent ||
		port.PlantedKeyMatch != base.PlantedKeyMatch || port.NumKeys != base.NumKeys ||
		port.Failed != base.Failed {
		t.Errorf("portfolio verdict differs from single engine:\n  base %+v\n  port %+v", base, port)
	}
	if port.SolverConfig == "" {
		t.Error("portfolio run must record its solver config")
	}
	if len(port.PortfolioStats) != 3 {
		t.Fatalf("portfolio run recorded %d config stats, want 3", len(port.PortfolioStats))
	}
	var wins int64
	for _, cs := range port.PortfolioStats {
		wins += cs.Wins
	}
	if wins == 0 {
		t.Error("no portfolio wins recorded — factory not plumbed into the attack?")
	}
}

// TestHarnessHeterogeneousEngines: racing an explicit internal+bdd
// engine list reports the same verdict fields as the default engine,
// labels the outcome with the heterogeneous portfolio, and accounts
// races under the spec labels. WinStats aggregates them.
func TestHarnessHeterogeneousEngines(t *testing.T) {
	cfg := tinyConfig()
	// Timeout 0: verdicts stay pure functions of the seed, so the
	// comparison cannot be perturbed by the BDD member's per-cell
	// blow-up cost (kept small via the node budget).
	cfg.Timeout = 0
	cs, err := BuildCase(cfg.Specs[0], HD0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base := RunFALL(ctx, cs, fall.Unateness, cfg)

	hcfg := cfg
	hcfg.Engines = []sat.EngineSpec{
		sat.InternalSpec(sat.Config{}),
		{Kind: sat.EngineBDD, MaxNodes: 1 << 12},
	}
	het := RunFALL(ctx, cs, fall.Unateness, hcfg)
	if het.Solved != base.Solved || het.Equivalent != base.Equivalent ||
		het.PlantedKeyMatch != base.PlantedKeyMatch || het.NumKeys != base.NumKeys ||
		het.Failed != base.Failed {
		t.Errorf("heterogeneous verdict differs from single engine:\n  base %+v\n  het  %+v", base, het)
	}
	if !strings.Contains(het.SolverConfig, "bdd") {
		t.Errorf("solver label %q does not name the engine mix", het.SolverConfig)
	}
	if len(het.PortfolioStats) != 2 || het.PortfolioStats[1].Config != "bdd:max-nodes=4096" {
		t.Fatalf("portfolio stats: %+v", het.PortfolioStats)
	}
	agg := WinStats([]Outcome{base, het}, nil)
	if len(agg) != 2 || agg[0].Races != het.PortfolioStats[0].Races {
		t.Errorf("WinStats aggregation: %+v", agg)
	}
}

// TestHarnessSolverConfigLabel: a non-default single-engine config is
// recorded without portfolio stats.
func TestHarnessSolverConfigLabel(t *testing.T) {
	cfg := tinyConfig()
	cfg.Solver = sat.Config{Seed: 7, Restart: sat.RestartGeometric}
	cs, err := BuildCase(cfg.Specs[0], HD0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	out := RunFALL(context.Background(), cs, fall.Unateness, cfg)
	if out.SolverConfig == "" {
		t.Error("non-default solver config not recorded")
	}
	if out.PortfolioStats != nil {
		t.Errorf("single-engine run must not carry portfolio stats: %v", out.PortfolioStats)
	}
	if out.Failed {
		t.Error("configured run failed")
	}
}
