package exp

import (
	"context"
	"testing"

	"repro/internal/fall"
	"repro/internal/sat"
)

// TestHarnessPortfolioVerdictsMatch: the same case scored with per-query
// portfolio racing must report the same verdict fields as the default
// single engine (racing changes runtimes, never verdicts), and must
// carry the solver label and win accounting in the outcome.
func TestHarnessPortfolioVerdictsMatch(t *testing.T) {
	cfg := tinyConfig()
	cs, err := BuildCase(cfg.Specs[0], HD0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base := RunFALL(ctx, cs, fall.Unateness, cfg)
	if base.SolverConfig != "" || base.PortfolioStats != nil {
		t.Errorf("default run must not record solver fields: %q %v", base.SolverConfig, base.PortfolioStats)
	}

	pcfg := cfg
	pcfg.Portfolio = 3
	port := RunFALL(ctx, cs, fall.Unateness, pcfg)
	if port.Solved != base.Solved || port.Equivalent != base.Equivalent ||
		port.PlantedKeyMatch != base.PlantedKeyMatch || port.NumKeys != base.NumKeys ||
		port.Failed != base.Failed {
		t.Errorf("portfolio verdict differs from single engine:\n  base %+v\n  port %+v", base, port)
	}
	if port.SolverConfig == "" {
		t.Error("portfolio run must record its solver config")
	}
	if len(port.PortfolioStats) != 3 {
		t.Fatalf("portfolio run recorded %d config stats, want 3", len(port.PortfolioStats))
	}
	var wins int64
	for _, cs := range port.PortfolioStats {
		wins += cs.Wins
	}
	if wins == 0 {
		t.Error("no portfolio wins recorded — factory not plumbed into the attack?")
	}
}

// TestHarnessSolverConfigLabel: a non-default single-engine config is
// recorded without portfolio stats.
func TestHarnessSolverConfigLabel(t *testing.T) {
	cfg := tinyConfig()
	cfg.Solver = sat.Config{Seed: 7, Restart: sat.RestartGeometric}
	cs, err := BuildCase(cfg.Specs[0], HD0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	out := RunFALL(context.Background(), cs, fall.Unateness, cfg)
	if out.SolverConfig == "" {
		t.Error("non-default solver config not recorded")
	}
	if out.PortfolioStats != nil {
		t.Errorf("single-engine run must not carry portfolio stats: %v", out.PortfolioStats)
	}
	if out.Failed {
		t.Error("configured run failed")
	}
}
