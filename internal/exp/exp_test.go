package exp

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fall"
	"repro/internal/genbench"
)

// tinyConfig keeps experiment tests fast: 4 circuits at 1/16 scale with
// 10-12 key bits.
func tinyConfig() Config {
	return Config{
		Specs:      genbench.Scaled(genbench.TableI, 16, 12)[:4],
		Seed:       2024,
		Timeout:    10 * time.Second,
		SATIterCap: 40,
	}
}

func TestHLevelValues(t *testing.T) {
	if HD0.Value(64) != 0 || HM8.Value(64) != 8 || HM4.Value(64) != 16 || HM3.Value(64) != 21 {
		t.Errorf("level values wrong: %d %d %d %d",
			HD0.Value(64), HM8.Value(64), HM4.Value(64), HM3.Value(64))
	}
	for _, l := range Levels {
		if l.Label() == "" {
			t.Error("empty label")
		}
	}
}

func TestBuildSuiteDimensions(t *testing.T) {
	cfg := tinyConfig()
	cases, err := BuildSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(cases), len(cfg.Specs)*len(Levels); got != want {
		t.Fatalf("suite has %d cases, want %d", got, want)
	}
	for _, cs := range cases {
		if got := len(cs.Lock.Locked.KeyInputs()); got != cs.Spec.Keys {
			t.Errorf("%s/%s: %d key inputs, want %d", cs.Spec.Name, cs.Level.Label(), got, cs.Spec.Keys)
		}
		if cs.Level == HD0 && cs.H != 0 {
			t.Errorf("%s: HD0 with h=%d", cs.Spec.Name, cs.H)
		}
		if cs.Level != HD0 && cs.H < 1 {
			t.Errorf("%s/%s: h=%d < 1", cs.Spec.Name, cs.Level.Label(), cs.H)
		}
	}
}

func TestTable1(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Specs) {
		t.Fatalf("%d rows, want %d", len(rows), len(cfg.Specs))
	}
	for _, r := range rows {
		if r.GatesMin > r.GatesMax {
			t.Errorf("%s: min %d > max %d", r.Name, r.GatesMin, r.GatesMax)
		}
		if r.GatesMin <= r.GatesOrig {
			// Locking adds logic; after strash the locked netlist is in
			// AND/NOT form so counts are not directly comparable, but it
			// should never shrink below the strashed original by much.
			t.Logf("%s: locked min %d vs orig %d (AND/NOT form)", r.Name, r.GatesMin, r.GatesOrig)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, rows[0].Name) {
		t.Error("formatted table missing circuit name")
	}
}

func TestFig5PanelHD0(t *testing.T) {
	cfg := tinyConfig()
	cfg.Specs = cfg.Specs[:2]
	cases, err := BuildSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs := Fig5Panel(context.Background(), cases, HD0, cfg)
	// 2 circuits × 2 attacks.
	if len(outs) != 4 {
		t.Fatalf("%d outcomes, want 4", len(outs))
	}
	// AnalyzeUnateness must defeat both (synthetic hosts are benign).
	cac := Cactus(outs, fall.Unateness.String())
	if len(cac) != 2 {
		t.Errorf("unateness solved %d/2", len(cac))
	}
	// The SAT attack must NOT defeat 2^10+ TTLock within the iteration cap.
	if sat := Cactus(outs, "SAT-Attack"); len(sat) != 0 {
		t.Errorf("SAT attack solved %d instances of SFLL-HD0 at 10+ key bits", len(sat))
	}
	text := FormatCactus(outs, []string{"SAT-Attack", fall.Unateness.String()})
	if !strings.Contains(text, "solved") {
		t.Error("cactus format empty")
	}
}

func TestFig5PanelHM8(t *testing.T) {
	cfg := tinyConfig()
	cfg.Specs = cfg.Specs[:2]
	cases, err := BuildSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs := Fig5Panel(context.Background(), cases, HM8, cfg)
	if len(outs) != 6 { // SAT + SlidingWindow + Distance2H per circuit
		t.Fatalf("%d outcomes, want 6", len(outs))
	}
	if sw := Cactus(outs, fall.SlidingWindow.String()); len(sw) != 2 {
		t.Errorf("sliding window solved %d/2", len(sw))
	}
	if d2 := Cactus(outs, fall.Distance2H.String()); len(d2) != 2 {
		t.Errorf("distance2h solved %d/2", len(d2))
	}
}

func TestFig5PanelHM3SlidingOnly(t *testing.T) {
	cfg := tinyConfig()
	cfg.Specs = cfg.Specs[:1]
	cases, err := BuildSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs := Fig5Panel(context.Background(), cases, HM3, cfg)
	for _, o := range outs {
		if o.Attack == fall.Distance2H.String() {
			t.Error("Distance2H run on h=m/3 panel (4h > m)")
		}
	}
}

func TestFig6(t *testing.T) {
	cfg := tinyConfig()
	cfg.Specs = cfg.Specs[:2]
	var cases []*Case
	for i, spec := range cfg.Specs {
		// One level per circuit keeps the test quick.
		cs, err := BuildCase(spec, HD0, cfg.Seed+int64(i)*1009)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, cs)
	}
	rows := Fig6(context.Background(), cases, cfg)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.KCRuns == 0 || r.SARuns == 0 {
			t.Errorf("%s: missing runs: %+v", r.Circuit, r)
			continue
		}
		if r.KCConfirmed != r.KCRuns {
			t.Errorf("%s: confirmed %d/%d", r.Circuit, r.KCConfirmed, r.KCRuns)
		}
		// The Fig. 6 shape: key confirmation beats the SAT attack.
		if r.KCMean >= r.SAMean {
			t.Errorf("%s: keyconfirm mean %v >= satattack mean %v", r.Circuit, r.KCMean, r.SAMean)
		}
	}
	text := FormatFig6(rows)
	if !strings.Contains(text, rows[0].Circuit) {
		t.Error("fig6 format missing circuit")
	}
}

func TestSummarize(t *testing.T) {
	cfg := tinyConfig()
	cfg.Specs = cfg.Specs[:2]
	cases, err := BuildSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(context.Background(), cases, cfg)
	if s.TotalCases != 8 {
		t.Fatalf("total = %d, want 8", s.TotalCases)
	}
	// Synthetic benign hosts: expect a high defeat rate (the paper saw
	// 81% on real circuits; structure here is simpler).
	if s.Defeated < s.TotalCases/2 {
		t.Errorf("defeated only %d/%d", s.Defeated, s.TotalCases)
	}
	if s.UniqueKey > s.Defeated {
		t.Error("unique > defeated")
	}
	text := FormatSummary(s)
	if !strings.Contains(text, "defeated") {
		t.Error("summary format wrong")
	}
}

// outcomeShape is an Outcome with timing stripped: everything that must
// be identical across harness worker counts.
type outcomeShape struct {
	Circuit    string
	Level      HLevel
	Attack     string
	Solved     bool
	Planted    bool
	Equivalent bool
	Unique     bool
	NumKeys    int
	Failed     bool
}

func shapes(outs []Outcome) []outcomeShape {
	s := make([]outcomeShape, len(outs))
	for i, o := range outs {
		s[i] = outcomeShape{o.Circuit, o.Level, o.Attack, o.Solved, o.PlantedKeyMatch, o.Equivalent, o.Unique, o.NumKeys, o.Failed}
	}
	return s
}

// The harness must produce byte-identical suites, outcome orderings and
// summary statistics for every worker count (only timings may differ).
func TestHarnessDeterministicAcrossWorkers(t *testing.T) {
	base := tinyConfig()
	base.Specs = base.Specs[:2]
	// No wall-clock budget: timeouts truncate shortlists at a
	// machine-speed-dependent point, which is exactly the kind of
	// nondeterminism this test must not conflate with scheduling. The
	// SAT attack stays bounded by SATIterCap.
	base.Timeout = 0
	var wantCases []string
	var wantPanel []outcomeShape
	var wantSummary *Summary
	for _, workers := range []int{1, 3} {
		cfg := base
		cfg.Workers = workers
		cases, err := BuildSuite(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		ids := make([]string, len(cases))
		for i, cs := range cases {
			ids[i] = fmt.Sprintf("%s/%s/h=%d/seed=%d/gates=%d",
				cs.Spec.Name, cs.Level.Label(), cs.H, cs.Seed, cs.Lock.Locked.NumGates())
		}
		panel := shapes(Fig5Panel(context.Background(), cases, HD0, cfg))
		summary := Summarize(context.Background(), cases, cfg)
		if wantCases == nil {
			wantCases, wantPanel, wantSummary = ids, panel, &summary
			continue
		}
		if !reflect.DeepEqual(ids, wantCases) {
			t.Errorf("workers=%d: suite differs\n got %v\nwant %v", workers, ids, wantCases)
		}
		if !reflect.DeepEqual(panel, wantPanel) {
			t.Errorf("workers=%d: Fig5 panel differs\n got %v\nwant %v", workers, panel, wantPanel)
		}
		if summary.Defeated != wantSummary.Defeated || summary.UniqueKey != wantSummary.UniqueKey ||
			!reflect.DeepEqual(summary.MultiKey, wantSummary.MultiKey) {
			t.Errorf("workers=%d: summary differs\n got %+v\nwant %+v", workers, summary, *wantSummary)
		}
	}
}

// Scoring must be multi-key aware: Solved follows SAT-miter
// I/O-equivalence, with planted-key membership kept as a separate
// signal (Hu et al. 2024).
func TestScoreShortlist(t *testing.T) {
	cfg := tinyConfig()
	cs, err := BuildCase(cfg.Specs[0], HD0, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var planted Outcome
	scoreShortlist(ctx, cs, []map[string]bool{cs.Lock.Key}, cfg, cfg.solverSetup(), &planted)
	if !planted.PlantedKeyMatch || !planted.Equivalent || !planted.Solved {
		t.Errorf("planted key scored %+v, want match+equivalent+solved", planted)
	}

	// A flipped key bit breaks a TTLock instance on the protected cube:
	// not planted, and the miter must refute equivalence.
	wrong := map[string]bool{}
	for k, v := range cs.Lock.Key {
		wrong[k] = v
	}
	for k := range wrong {
		wrong[k] = !wrong[k]
		break
	}
	var flipped Outcome
	scoreShortlist(ctx, cs, []map[string]bool{wrong}, cfg, cfg.solverSetup(), &flipped)
	if flipped.PlantedKeyMatch || flipped.Equivalent || flipped.Solved {
		t.Errorf("flipped key scored %+v, want nothing", flipped)
	}

	// A shortlist holding both must be Solved via the planted member.
	var both Outcome
	scoreShortlist(ctx, cs, []map[string]bool{wrong, cs.Lock.Key}, cfg, cfg.solverSetup(), &both)
	if !both.Solved || !both.PlantedKeyMatch {
		t.Errorf("mixed shortlist scored %+v, want solved", both)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]time.Duration{2 * time.Second, 4 * time.Second})
	if m != 3*time.Second {
		t.Errorf("mean = %v", m)
	}
	if s != time.Second {
		t.Errorf("std = %v", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd not zero")
	}
}
