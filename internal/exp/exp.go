// Package exp is the experiment harness reproducing the paper's
// evaluation (§VI): Table I (benchmark statistics), Figure 5 (cactus plots
// of circuit-analysis attacks vs the SAT attack across SFLL-HD
// configurations), Figure 6 (key confirmation vs SAT attack runtimes) and
// the §VI-B summary statistics (circuits defeated, unique-key rate).
//
// Every experiment is deterministic given Config.Seed. The harness runs at
// any scale: the paper's full Table I dimensions or reduced ("scaled")
// dimensions for quick regression runs; EXPERIMENTS.md records the
// mapping from paper numbers to measured numbers.
package exp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/attack"
	_ "repro/internal/attack/all" // register every attack
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/fall"
	"repro/internal/genbench"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// HLevel identifies the four locking configurations evaluated in Fig. 5.
type HLevel int

// The paper's four SFLL-HD configurations: h = 0 (TTLock) and h equal to
// m/8, m/4 and m/3 (floor division) for key size m.
const (
	HD0 HLevel = iota
	HM8
	HM4
	HM3
)

// Levels lists all four locking configurations in paper order.
var Levels = []HLevel{HD0, HM8, HM4, HM3}

// Label returns the paper's name for the configuration.
func (l HLevel) Label() string {
	switch l {
	case HD0:
		return "SFLL-HD0"
	case HM8:
		return "h=m/8"
	case HM4:
		return "h=m/4"
	default:
		return "h=m/3"
	}
}

// Value returns the Hamming distance h for key size m.
func (l HLevel) Value(m int) int {
	switch l {
	case HD0:
		return 0
	case HM8:
		return m / 8
	case HM4:
		return m / 4
	default:
		return m / 3
	}
}

// Token returns the short stable name for the configuration, used in
// CLI flags, case IDs and serialized plans: hd0, h8, h4, h3.
func (l HLevel) Token() string {
	switch l {
	case HD0:
		return "hd0"
	case HM8:
		return "h8"
	case HM4:
		return "h4"
	default:
		return "h3"
	}
}

// ParseHLevel inverts Token.
func ParseHLevel(tok string) (HLevel, error) {
	switch tok {
	case "hd0":
		return HD0, nil
	case "h8":
		return HM8, nil
	case "h4":
		return HM4, nil
	case "h3":
		return HM3, nil
	}
	return HD0, fmt.Errorf("exp: unknown h level %q (want hd0, h8, h4 or h3)", tok)
}

// MarshalText serializes the level as its Token, keeping artifacts
// readable and independent of the enum's numeric values.
func (l HLevel) MarshalText() ([]byte, error) { return []byte(l.Token()), nil }

// UnmarshalText parses a Token produced by MarshalText.
func (l *HLevel) UnmarshalText(b []byte) error {
	v, err := ParseHLevel(string(b))
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// Config parameterizes an experiment run.
type Config struct {
	// Specs selects the benchmark circuits (typically genbench.TableI or
	// a Scaled copy).
	Specs []genbench.Spec
	// Seed drives circuit generation and locking.
	Seed int64
	// Timeout bounds each individual attack run (the paper used 1000 s).
	Timeout time.Duration
	// Enc selects the Hamming-distance cardinality encoding.
	Enc cnf.CardEncoding
	// SATIterCap additionally bounds SAT attack / key confirmation
	// iterations (0 = unlimited); useful at small scale where a single
	// iteration is fast but convergence needs 2^m of them.
	SATIterCap int
	// Workers bounds how many suite cases (locking jobs, attack runs)
	// execute concurrently; <= 0 means runtime.GOMAXPROCS(0). Output
	// ordering and all measured verdicts are identical for every worker
	// count: each case derives its own seed and runs its attacks with
	// intra-attack parallelism pinned to 1, and results merge in case
	// order.
	Workers int
	// Solver configures the SAT engine behind every attack query and
	// scoring miter; the zero value is the baseline single engine.
	Solver sat.Config
	// Portfolio races this many differently-configured engines per
	// solver query, first verdict wins (< 2 disables racing). Racing
	// never changes verdicts — every engine decides the same formula —
	// only the runtime distribution; per-config win statistics land in
	// each Outcome.
	Portfolio int
	// Engines, when non-empty, selects an explicit (possibly
	// heterogeneous) engine list raced per query — internal configs,
	// external DIMACS solvers, the BDD engine — and overrides
	// Solver/Portfolio. Entry points that learn from prior runs apply
	// sat.LearnedConfigs to this list before building the config.
	Engines []sat.EngineSpec
	// AdaptAfter retires an Engines entry from later-built portfolios
	// once it has raced this many times without a win (0 = never); see
	// attack.SolverSetup.AdaptAfter.
	AdaptAfter int64
	// Adapt is the runtime-only cross-case ledger (slots matching
	// Engines) that accumulates every race of the run and drives the
	// AdaptAfter decision across cases; nil confines adaptation to each
	// single attack run. Like Workers it is never serialized.
	Adapt *sat.Ledger
	// Memo is the runtime-only cross-query verdict cache shared by every
	// solver the run builds (sat.NewMemo); nil disables memoization.
	// Attaching a memo forces a solver setup even for otherwise-default
	// configs, so memoized outcomes carry solve-time and hit/miss fields
	// (verdicts and keys are unchanged — the memo replays query history
	// on misses). Like Workers and Adapt it is never serialized.
	Memo *sat.Memo
	// Trace is the runtime-only parent span of the run: each unit gets
	// a child span carried through its context into the grid cells,
	// query families, and individual solver queries. Like Memo,
	// attaching a trace forces a solver setup even for
	// otherwise-default configs (verdicts unchanged; traces go to
	// their own sink, never stdout). Never serialized.
	Trace *obs.Span
	// Observed carries measured wall times from prior runs keyed by
	// Unit.ID() (campaign artifacts record them); RunUnits dispatches
	// longest-observed-first instead of purely model-predicted
	// (DispatchOrderObserved). Scheduling only — results and their order
	// never depend on it. Never serialized.
	Observed map[string]time.Duration
	// Gate, when non-nil, is consulted immediately before each unit
	// starts; returning false skips the unit entirely — zero UnitResult,
	// no onDone callback — which is how campaign shards stop claiming
	// new work when a wall-clock budget expires while in-flight units
	// run to completion. Never serialized.
	Gate func(Unit) bool
}

// ApplySolverFlags resolves the -solver/-portfolio flag grammar
// (sat.ResolveSolverFlags — the same resolution the attack CLIs use)
// into the config's Solver/Portfolio/Engines fields.
func (cfg *Config) ApplySolverFlags(solver, portfolio string) error {
	base, width, specs, err := sat.ResolveSolverFlags(solver, portfolio)
	if err != nil {
		return err
	}
	cfg.Solver, cfg.Portfolio, cfg.Engines = base, width, specs
	return nil
}

// solverSetup derives the per-run solver setup. Each attack run gets a
// fresh setup, so its recorded win statistics describe that run alone;
// a fully-default config returns nil (the attacks' built-in default
// engine), keeping default outcomes byte-identical to pre-portfolio
// artifacts.
func (cfg Config) solverSetup() *attack.SolverSetup {
	var s *attack.SolverSetup
	switch {
	case len(cfg.Engines) > 0:
		s = attack.NewSolverSetupEngines(cfg.Engines)
		s.AdaptAfter = cfg.AdaptAfter
		s.Global = cfg.Adapt
	case cfg.Portfolio >= 2 || cfg.Solver != (sat.Config{}):
		s = attack.NewSolverSetup(cfg.Solver, cfg.Portfolio)
	case cfg.Memo != nil || cfg.Trace != nil:
		// A zero-value setup builds exactly the default engine, so the
		// memo or tracer can attach without changing verdicts or
		// artifacts beyond the memo/solve-time fields themselves.
		s = &attack.SolverSetup{}
	default:
		return nil
	}
	s.Memo = cfg.Memo
	return s
}

// workers resolves the effective harness pool size.
func (cfg Config) workers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndexed distributes fn(0..n-1) over the shared bounded pool
// (attack.ForEachIndexed); harness loops always run every index, and fn
// writes its result into caller-owned slices at its index so output
// order never depends on scheduling.
func forEachIndexed(workers, n int, fn func(i int)) {
	attack.ForEachIndexed(workers, n, func(i int) bool {
		fn(i)
		return true
	})
}

// Case is one locked benchmark instance (circuit × h configuration).
type Case struct {
	Spec  genbench.Spec
	Level HLevel
	H     int
	Orig  *circuit.Circuit
	Lock  *lock.Result
	// Seed is the case's derived seed, used by every attack run on this
	// case (key validation sampling, randomized attack components). It
	// depends only on the case identity, never on run order, so
	// concurrent harness runs stay deterministic.
	Seed int64
}

// BuildCase generates and locks one benchmark instance.
func BuildCase(spec genbench.Spec, level HLevel, seed int64) (*Case, error) {
	orig, err := genbench.Generate(spec, seed)
	if err != nil {
		return nil, err
	}
	h := level.Value(spec.Keys)
	if level != HD0 && h < 1 {
		h = 1
	}
	lr, err := lock.SFLLHD(orig, lock.Options{
		KeySize: spec.Keys, H: h, Seed: seed + int64(level)*7 + 1, Optimize: true,
	})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", spec.Name, level.Label(), err)
	}
	return &Case{Spec: spec, Level: level, H: h, Orig: orig, Lock: lr, Seed: seed + int64(level)*7 + 1}, nil
}

// BuildSuite locks every spec at every level: the paper's 80 circuits for
// the 20 Table I specs. Cases build concurrently on cfg.Workers
// goroutines (generation and locking are pure functions of the derived
// per-case seed) and are returned in spec × level order regardless of
// the worker count.
func BuildSuite(cfg Config) ([]*Case, error) {
	type job struct {
		spec  genbench.Spec
		level HLevel
		seed  int64
	}
	var jobs []job
	for i, spec := range cfg.Specs {
		for _, level := range Levels {
			jobs = append(jobs, job{spec, level, cfg.Seed + int64(i)*1009})
		}
	}
	cases := make([]*Case, len(jobs))
	errs := make([]error, len(jobs))
	forEachIndexed(cfg.workers(), len(jobs), func(i int) {
		cases[i], errs[i] = BuildCase(jobs[i].spec, jobs[i].level, jobs[i].seed)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cases, nil
}

// Table1Row is one row of the regenerated Table I. It serializes to
// JSON as a campaign artifact.
type Table1Row struct {
	Name      string `json:"name"`
	In        int    `json:"in"`
	Out       int    `json:"out"`
	Keys      int    `json:"keys"`
	GatesOrig int    `json:"gates_orig"`
	// GatesMin/GatesMax range over the four SFLL configurations.
	GatesMin int `json:"gates_min"`
	GatesMax int `json:"gates_max"`
}

// Table1 regenerates Table I: per circuit, the original gate count and the
// min/max locked gate counts over the four SFLL configurations. The suite
// builds concurrently on cfg.Workers goroutines and rows return in spec
// order; it is the 1-shard special case of a campaign table1 suite.
func Table1(cfg Config) ([]Table1Row, error) {
	cases, err := BuildSuite(cfg)
	if err != nil {
		return nil, err
	}
	return Table1FromCases(cases, cfg)
}

// Table1FromCases aggregates Table I rows from an already-built suite
// (every spec must appear at every level).
func Table1FromCases(cases []*Case, cfg Config) ([]Table1Row, error) {
	units := make([]Unit, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		units[i] = Unit{Kind: UnitTable1, Circuit: spec.Name}
	}
	results, err := RunUnits(context.Background(), cases, units, cfg, nil)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		rows[i] = *r.Table1
	}
	return rows, nil
}

// FormatTable1 renders rows in the layout of the paper's Table I.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %5s %5s %6s %9s %9s %9s\n", "ckt", "#in", "#out", "#keys", "orig", "SFLLmin", "SFLLmax")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %5d %5d %6d %9d %9d %9d\n",
			r.Name, r.In, r.Out, r.Keys, r.GatesOrig, r.GatesMin, r.GatesMax)
	}
	return b.String()
}

// Outcome is one attack run on one locked instance. It serializes to
// JSON (campaign artifacts) with the level as its token and durations in
// nanoseconds.
type Outcome struct {
	Circuit string `json:"circuit"`
	Level   HLevel `json:"level"`
	Attack  string `json:"attack"`
	// Solved reports a correct key recovered: some shortlisted key is
	// I/O-equivalent to the original circuit (== Equivalent).
	Solved bool `json:"solved"`
	// PlantedKeyMatch is the legacy criterion — the planted key appears
	// verbatim in the shortlist. Kept alongside Equivalent because the
	// two can genuinely disagree (Hu et al. 2024): a distinct key may
	// still unlock the circuit.
	PlantedKeyMatch bool `json:"planted_key_match"`
	// Equivalent reports that some shortlisted key was proved
	// I/O-equivalent to the oracle circuit by a SAT miter
	// (attack.KeyEquivalent).
	Equivalent bool `json:"equivalent"`
	Unique     bool `json:"unique"` // FALL attacks: exactly one key shortlisted
	NumKeys    int  `json:"num_keys"`
	// Keys carries the recovered shortlist so artifacts can be
	// re-scored after the fact without re-running the attack.
	Keys     []attack.Key `json:"keys,omitempty"`
	TimedOut bool         `json:"timed_out"`
	// Failed reports a hard attack error (malformed target, solver
	// failure), distinct from TimedOut: failed runs carry no timing, are
	// never censored at the timeout, and never enter cactus series or
	// Fig. 6 means.
	Failed bool          `json:"failed"`
	Time   time.Duration `json:"time_ns"`
	// SolverConfig records a non-default solver setup the run used
	// (attack.SolverSetup.Label form); empty for the baseline single
	// engine, so default artifacts stay byte-identical to older ones.
	SolverConfig string `json:"solver_config,omitempty"`
	// PortfolioStats carries the per-config win/conflict accounting
	// accumulated across this run's solver queries (attack and scoring
	// miters) when portfolio racing was enabled. Wins and conflicts are
	// scheduling-dependent diagnostics; verdict fields never are.
	PortfolioStats []sat.ConfigStats `json:"portfolio_stats,omitempty"`
	// SolveNS is the cumulative wall time (ns) the run's engines spent
	// inside Solve/SolveAssuming — the solve share of Time, the rest
	// being encoding and bookkeeping. Recorded only when a solver setup
	// exists (solver flags or memoization); a timing diagnostic like
	// conflict counts, never a verdict input.
	SolveNS int64 `json:"solve_ns,omitempty"`
	// MemoStats carries the verdict-cache hit/miss counters when
	// cross-query memoization was enabled.
	MemoStats *sat.MemoStats `json:"memo_stats,omitempty"`
}

// WinStats aggregates the per-engine racing statistics recorded across
// outcomes and Fig. 6 results (label-keyed, first-appearance order) —
// the summary fallbench prints on stderr and campaign merge persists
// for learned portfolios. Nil when nothing raced.
func WinStats(outs []Outcome, figs []Fig6CaseResult) []sat.ConfigStats {
	var groups [][]sat.ConfigStats
	for i := range outs {
		groups = append(groups, outs[i].PortfolioStats)
	}
	for i := range figs {
		groups = append(groups, figs[i].KCPortfolio, figs[i].SA.PortfolioStats)
	}
	return sat.MergeStats(groups...)
}

// scoreShortlist scores a recovered shortlist against the case:
// PlantedKeyMatch by planted-key membership, Equivalent by SAT-miter
// I/O-equivalence. The planted key is correct by construction, so the
// miter only runs on shortlists that miss it. Solved follows Equivalent.
// The miter is exact and deterministic, but UNSAT proofs are co-NP, so
// with cfg.Timeout set the miters share one scoring budget of the same
// size — a pathological miter must not hang a harness worker (or a
// campaign shard) forever. An undecided miter counts as not equivalent;
// with Timeout == 0 scoring is unbounded and verdicts stay pure
// functions of the seed (what the determinism tests rely on).
func scoreShortlist(ctx context.Context, cs *Case, keys []attack.Key, cfg Config, setup *attack.SolverSetup, out *Outcome) {
	for _, key := range keys {
		if attack.KeysEqual(key, cs.Lock.Key) {
			out.PlantedKeyMatch = true
			out.Equivalent = true
			break
		}
	}
	if !out.Equivalent && len(keys) > 0 {
		sctx, cancel := attackCtx(ctx, cfg)
		defer cancel()
		for _, key := range keys {
			// The miter runs through the same solver setup as the attack:
			// its UNSAT proof is exactly the query class portfolio racing
			// targets, and its races land in the same win accounting.
			if eq, err := attack.KeyEquivalentWith(sctx, setup.Factory(), cs.Lock.Locked, cs.Orig, key); err == nil && eq {
				out.Equivalent = true
				break
			}
		}
	}
	out.Solved = out.Equivalent
}

// finishSolver records the setup's timing and memoization diagnostics
// into the outcome and releases any persistent solver processes it
// spawned. Nil-safe: a nil setup (the baseline default engine) records
// nothing, keeping default artifacts byte-identical.
func finishSolver(setup *attack.SolverSetup, out *Outcome) {
	if setup == nil {
		return
	}
	out.PortfolioStats = setup.WinStats()
	out.SolveNS = int64(setup.SolveTime())
	out.MemoStats = setup.MemoStats()
	setup.Close()
}

// attackCtx derives the per-run context implementing cfg.Timeout.
func attackCtx(ctx context.Context, cfg Config) (context.Context, context.CancelFunc) {
	if cfg.Timeout > 0 {
		return context.WithTimeout(ctx, cfg.Timeout)
	}
	return context.WithCancel(ctx)
}

// RunFALL executes one FALL functional analysis on a case through the
// unified attack API and scores it against the planted key. Intra-attack
// parallelism is pinned to one worker: the harness parallelizes across
// cases, and nesting pools would oversubscribe the machine.
func RunFALL(ctx context.Context, cs *Case, analysis fall.Analysis, cfg Config) Outcome {
	out := Outcome{Circuit: cs.Spec.Name, Level: cs.Level, Attack: analysis.String()}
	setup := cfg.solverSetup()
	setup.TraceTo(obs.SpanFrom(ctx))
	out.SolverConfig = setup.Label()
	rctx, cancel := attackCtx(ctx, cfg)
	defer cancel()
	atk := fall.New(fall.Options{Analysis: analysis, Enc: cfg.Enc})
	res, err := atk.Run(rctx, attack.Target{Locked: cs.Lock.Locked, H: cs.H, Seed: cs.Seed, Workers: 1, Solver: setup.Factory()})
	if err != nil {
		// Hard failure (timeouts come back as StatusTimeout, not errors):
		// report the outcome failed with no fabricated timing.
		out.Failed = true
		setup.Close()
		return out
	}
	out.Time = res.Elapsed
	out.TimedOut = res.Status == attack.StatusTimeout
	out.NumKeys = len(res.Keys)
	out.Keys = res.Keys
	// Score on the outer context, not the attack's own (possibly
	// near-exhausted) deadline: scoring is harness work with its own
	// budget, and verdicts must not depend on how close the attack ran
	// to its deadline.
	scoreShortlist(ctx, cs, res.Keys, cfg, setup, &out)
	out.Unique = out.Solved && res.UniqueKey()
	finishSolver(setup, &out)
	return out
}

// RunSAT executes the baseline SAT attack on a case through the unified
// attack API.
func RunSAT(ctx context.Context, cs *Case, cfg Config) Outcome {
	out := Outcome{Circuit: cs.Spec.Name, Level: cs.Level, Attack: "SAT-Attack"}
	setup := cfg.solverSetup()
	setup.TraceTo(obs.SpanFrom(ctx))
	out.SolverConfig = setup.Label()
	rctx, cancel := attackCtx(ctx, cfg)
	defer cancel()
	res, err := attack.Run(rctx, "sat", attack.Target{
		Locked:        cs.Lock.Locked,
		Oracle:        oracle.NewSim(cs.Orig),
		MaxIterations: cfg.SATIterCap,
		Seed:          cs.Seed,
		Workers:       1,
		Solver:        setup.Factory(),
	})
	if err != nil {
		// A hard error is not a timeout: fabricating `TimedOut` with
		// Time=cfg.Timeout polluted the Fig. 5/6 censoring (and invented
		// a zero-duration "timeout" when cfg.Timeout was 0). Report the
		// failure distinctly and leave the timing empty.
		out.Failed = true
		setup.Close()
		return out
	}
	out.Time = res.Elapsed
	out.TimedOut = res.Status == attack.StatusTimeout
	// Always persist whatever the run recovered — a timed-out attack's
	// partial candidate lands in the artifact so a merge can re-score it
	// later without re-running the attack.
	out.NumKeys = len(res.Keys)
	out.Keys = res.Keys
	if res.UniqueKey() {
		// Exact miter equivalence replaces the old 128-pattern random
		// simulation check: sound on multi-key instances and free of
		// sampling luck. Only converged (proven-unique) runs are scored:
		// an unconverged candidate that happens to unlock the circuit
		// would credit the SAT attack with a solve it never proved.
		scoreShortlist(ctx, cs, res.Keys, cfg, setup, &out)
	}
	if !out.Solved && out.Time < cfg.Timeout {
		// Censor unsolved runs at the timeout, as the paper's Fig. 6 bars
		// do (an attack stopped by the iteration cap would not have
		// finished within the time budget either).
		out.Time = cfg.Timeout
	}
	finishSolver(setup, &out)
	return out
}

// Fig5Panel runs the attacks of one Fig. 5 panel over the suite cases at
// the given level: the SAT attack plus AnalyzeUnateness for HD0,
// SlidingWindow and Distance2H for h=m/8 and m/4, SlidingWindow only for
// h=m/3 (Distance2H requires 4h <= m). Individual attack runs execute
// concurrently on cfg.Workers goroutines in adaptive
// longest-expected-first dispatch order; the outcome slice keeps the
// serial case × attack order. It is the 1-shard special case of a
// campaign fig5 suite.
func Fig5Panel(ctx context.Context, cases []*Case, level HLevel, cfg Config) []Outcome {
	var units []Unit
	for _, cs := range cases {
		if cs.Level != level {
			continue
		}
		units = append(units, fig5CaseUnits(cs.Spec.Name, level)...)
	}
	results := mustRunUnits(ctx, cases, units, cfg)
	outs := make([]Outcome, len(results))
	for i, r := range results {
		outs[i] = *r.Outcome
	}
	return outs
}

// Cactus extracts the sorted solve times for one attack from a panel's
// outcomes — the x/y series of the paper's Fig. 5 (execution time vs
// number of benchmarks solved within that time).
func Cactus(outs []Outcome, attack string) []time.Duration {
	var times []time.Duration
	for _, o := range outs {
		if o.Attack == attack && o.Solved {
			times = append(times, o.Time)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times
}

// FormatCactus renders cactus series for all attacks in a panel.
func FormatCactus(outs []Outcome, attacks []string) string {
	var b strings.Builder
	for _, a := range attacks {
		times := Cactus(outs, a)
		fmt.Fprintf(&b, "%s: %d solved\n", a, len(times))
		for i, t := range times {
			fmt.Fprintf(&b, "  %2d solved within %v\n", i+1, t.Round(time.Millisecond))
		}
	}
	return b.String()
}

// Fig6Row is one circuit's bar in Fig. 6: mean/stddev runtimes of key
// confirmation vs the SAT attack over the circuit's locked variants.
type Fig6Row struct {
	Circuit        string
	KCMean, KCStd  time.Duration
	SAMean, SAStd  time.Duration
	KCRuns, SARuns int
	KCConfirmed    int
}

// Fig6CaseResult is one case's Fig. 6 measurement: the key confirmation
// run (φ = the FALL shortlist) and the vanilla SAT attack on the same
// instance. It serializes to JSON as a campaign artifact.
type Fig6CaseResult struct {
	Circuit     string        `json:"circuit"`
	Level       HLevel        `json:"level"`
	KCRan       bool          `json:"kc_ran"`
	KCConfirmed bool          `json:"kc_confirmed"`
	KCElapsed   time.Duration `json:"kc_elapsed_ns"`
	KCKey       attack.Key    `json:"kc_key,omitempty"`
	// KCSolverConfig / KCPortfolio record the non-default solver setup
	// of the FALL→key-confirmation pipeline (the SAT attack's setup is
	// in SA); empty/nil for the baseline single engine.
	KCSolverConfig string            `json:"kc_solver_config,omitempty"`
	KCPortfolio    []sat.ConfigStats `json:"kc_portfolio,omitempty"`
	// KCSolveNS / KCMemoStats mirror Outcome.SolveNS / Outcome.MemoStats
	// for the FALL→key-confirmation pipeline's solver setup.
	KCSolveNS   int64          `json:"kc_solve_ns,omitempty"`
	KCMemoStats *sat.MemoStats `json:"kc_memo_stats,omitempty"`
	SA          Outcome        `json:"sat"`
}

// Failed reports that the pairing produced no usable measurement: the
// SAT attack failed hard or key confirmation never ran. It is the one
// definition of Fig. 6 case failure, shared by fallbench's exit code
// and campaign's artifact accounting — the two must always agree.
func (r *Fig6CaseResult) Failed() bool { return r.SA.Failed || !r.KCRan }

// RunFig6Case measures one case of the key confirmation experiment
// (§VI-C): FALL supplies the candidate shortlist (falling back to
// {planted key, complement} when it is empty, mirroring the paper's use
// of stage-1 results), key confirmation resolves it against the oracle,
// and the vanilla SAT attack runs on the same instance for comparison.
func RunFig6Case(ctx context.Context, cs *Case, cfg Config) Fig6CaseResult {
	r := Fig6CaseResult{Circuit: cs.Spec.Name, Level: cs.Level}
	setup := cfg.solverSetup()
	setup.TraceTo(obs.SpanFrom(ctx))
	r.KCSolverConfig = setup.Label()
	fallAtk := fall.New(fall.Options{Enc: cfg.Enc})
	var cands []attack.Key
	fctx, fcancel := attackCtx(ctx, cfg)
	if res, err := fallAtk.Run(fctx, attack.Target{Locked: cs.Lock.Locked, H: cs.H, Seed: cs.Seed, Workers: 1, Solver: setup.Factory()}); err == nil {
		cands = res.Keys
	}
	fcancel()
	if len(cands) == 0 {
		comp := map[string]bool{}
		for k, v := range cs.Lock.Key {
			comp[k] = !v
		}
		cands = []attack.Key{cs.Lock.Key, comp}
	}
	kctx, kcancel := attackCtx(ctx, cfg)
	kc, err := attack.Run(kctx, "keyconfirm", attack.Target{
		Locked:        cs.Lock.Locked,
		Oracle:        oracle.NewSim(cs.Orig),
		Candidates:    cands,
		MaxIterations: cfg.SATIterCap,
		Seed:          cs.Seed,
		Workers:       1,
		Solver:        setup.Factory(),
	})
	kcancel()
	if err == nil {
		r.KCRan = true
		r.KCElapsed = kc.Elapsed
		r.KCConfirmed = kc.Status == attack.StatusUniqueKey
		if kc.UniqueKey() {
			r.KCKey = kc.Keys[0]
		}
	}
	r.KCPortfolio = setup.WinStats()
	if setup != nil {
		r.KCSolveNS = int64(setup.SolveTime())
		r.KCMemoStats = setup.MemoStats()
		setup.Close()
	}
	r.SA = RunSAT(ctx, cs, cfg)
	return r
}

// Fig6Results runs the Fig. 6 measurement for every case, concurrently
// on cfg.Workers goroutines with adaptive dispatch; results keep case
// order.
func Fig6Results(ctx context.Context, cases []*Case, cfg Config) []Fig6CaseResult {
	units := make([]Unit, len(cases))
	for i, cs := range cases {
		units[i] = Unit{Kind: UnitFig6, Circuit: cs.Spec.Name, Level: cs.Level}
	}
	results := mustRunUnits(ctx, cases, units, cfg)
	out := make([]Fig6CaseResult, len(results))
	for i, r := range results {
		out[i] = *r.Fig6
	}
	return out
}

// AggregateFig6 folds per-case measurements into the per-circuit rows of
// Fig. 6, in first-appearance circuit order. It is a pure function of
// the results, so merged campaign artifacts aggregate exactly like a
// monolithic run.
func AggregateFig6(results []Fig6CaseResult) []Fig6Row {
	byCircuit := map[string]*Fig6Row{}
	var order []string
	kcTimes := map[string][]time.Duration{}
	saTimes := map[string][]time.Duration{}
	for i := range results {
		r := &results[i]
		name := r.Circuit
		row, ok := byCircuit[name]
		if !ok {
			row = &Fig6Row{Circuit: name}
			byCircuit[name] = row
			order = append(order, name)
		}
		if r.KCRan {
			kcTimes[name] = append(kcTimes[name], r.KCElapsed)
			if r.KCConfirmed {
				row.KCConfirmed++
			}
		}
		if !r.SA.Failed {
			saTimes[name] = append(saTimes[name], r.SA.Time)
		}
	}
	rows := make([]Fig6Row, 0, len(order))
	for _, name := range order {
		row := byCircuit[name]
		row.KCRuns = len(kcTimes[name])
		row.SARuns = len(saTimes[name])
		row.KCMean, row.KCStd = meanStd(kcTimes[name])
		row.SAMean, row.SAStd = meanStd(saTimes[name])
		rows = append(rows, *row)
	}
	return rows
}

// Fig6 reproduces the key confirmation experiment (§VI-C) end to end:
// per-case measurements (Fig6Results) folded into per-circuit rows
// (AggregateFig6). It is the 1-shard special case of a campaign fig6
// suite.
func Fig6(ctx context.Context, cases []*Case, cfg Config) []Fig6Row {
	return AggregateFig6(Fig6Results(ctx, cases, cfg))
}

func meanStd(ts []time.Duration) (mean, std time.Duration) {
	if len(ts) == 0 {
		return 0, 0
	}
	var sum float64
	for _, t := range ts {
		sum += t.Seconds()
	}
	m := sum / float64(len(ts))
	var varSum float64
	for _, t := range ts {
		d := t.Seconds() - m
		varSum += d * d
	}
	return time.Duration(m * float64(time.Second)),
		time.Duration(math.Sqrt(varSum/float64(len(ts))) * float64(time.Second))
}

// FormatFig6 renders the Fig. 6 data as a table (the paper plots it as a
// log-scale bar chart).
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s %14s %14s %s\n", "ckt", "keyconf-mean", "keyconf-std", "satatk-mean", "satatk-std", "confirmed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %14s %14s %14s %14s %d/%d\n",
			r.Circuit,
			r.KCMean.Round(time.Millisecond), r.KCStd.Round(time.Millisecond),
			r.SAMean.Round(time.Millisecond), r.SAStd.Round(time.Millisecond),
			r.KCConfirmed, r.KCRuns)
	}
	return b.String()
}

// Summary aggregates the §VI-B headline statistics.
type Summary struct {
	// TotalCases counts locked instances (circuits × h levels).
	TotalCases int
	// Defeated counts instances where at least one FALL analysis
	// shortlisted the correct key (the paper: 65/80).
	Defeated int
	// UniqueKey counts defeated instances whose shortlist had exactly
	// one key, i.e. no oracle needed (the paper: 58/65 = 90%).
	UniqueKey int
	// MultiKey lists "circuit/level: n keys" for defeated instances with
	// more than one shortlisted key.
	MultiKey []string
	// Failed counts runs that ended in a hard attack error.
	Failed int
}

// SummaryOutcomes runs the combined (Auto) FALL attack over every case,
// concurrently on cfg.Workers goroutines with adaptive dispatch;
// outcomes keep case order.
func SummaryOutcomes(ctx context.Context, cases []*Case, cfg Config) []Outcome {
	units := make([]Unit, len(cases))
	for i, cs := range cases {
		units[i] = Unit{Kind: UnitSummary, Circuit: cs.Spec.Name, Level: cs.Level, Attack: fall.Auto.String()}
	}
	results := mustRunUnits(ctx, cases, units, cfg)
	outs := make([]Outcome, len(results))
	for i, r := range results {
		outs[i] = *r.Outcome
	}
	return outs
}

// AggregateSummary folds per-case FALL outcomes into the §VI-B defeat
// statistics, in outcome order. Pure aggregation: merged campaign
// artifacts summarize exactly like a monolithic run.
func AggregateSummary(outs []Outcome) Summary {
	s := Summary{TotalCases: len(outs)}
	for _, out := range outs {
		if out.Failed {
			s.Failed++
		}
		if !out.Solved {
			continue
		}
		s.Defeated++
		if out.Unique {
			s.UniqueKey++
		} else {
			s.MultiKey = append(s.MultiKey, fmt.Sprintf("%s/%s: %d keys", out.Circuit, out.Level.Label(), out.NumKeys))
		}
	}
	return s
}

// Summarize runs the combined (Auto) FALL attack over every case and
// aggregates the defeat statistics of §VI-B. The statistics (including
// MultiKey order) aggregate in case order and are identical for every
// worker count; it is the 1-shard special case of a campaign summary
// suite.
func Summarize(ctx context.Context, cases []*Case, cfg Config) Summary {
	return AggregateSummary(SummaryOutcomes(ctx, cases, cfg))
}

// FormatSummary renders the summary in the style of the paper's abstract
// numbers.
func FormatSummary(s Summary) string {
	var b strings.Builder
	pct := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	fmt.Fprintf(&b, "defeated %d / %d locked circuits (%.0f%%)\n", s.Defeated, s.TotalCases, pct(s.Defeated, s.TotalCases))
	fmt.Fprintf(&b, "unique key (oracle-less) for %d / %d successes (%.0f%%)\n", s.UniqueKey, s.Defeated, pct(s.UniqueKey, s.Defeated))
	for _, m := range s.MultiKey {
		fmt.Fprintf(&b, "  multi-key: %s\n", m)
	}
	if s.Failed > 0 {
		fmt.Fprintf(&b, "failed runs: %d\n", s.Failed)
	}
	return b.String()
}
