package exp

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/genbench"
)

func TestHLevelTokenRoundTrip(t *testing.T) {
	for _, l := range Levels {
		got, err := ParseHLevel(l.Token())
		if err != nil || got != l {
			t.Errorf("ParseHLevel(%q) = %v, %v", l.Token(), got, err)
		}
		text, err := l.MarshalText()
		if err != nil || string(text) != l.Token() {
			t.Errorf("MarshalText(%v) = %q, %v", l, text, err)
		}
	}
	if _, err := ParseHLevel("h5"); err == nil {
		t.Error("ParseHLevel accepted h5")
	}
}

func TestParseUnitKindRoundTrip(t *testing.T) {
	for _, k := range []UnitKind{UnitTable1, UnitFig5, UnitFig6, UnitSummary} {
		got, err := ParseUnitKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseUnitKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseUnitKind("fig7"); err == nil {
		t.Error("ParseUnitKind accepted fig7")
	}
}

// Suite enumeration must cover every report with globally unique case
// IDs, in the dimensions the entry points run.
func TestSuiteUnits(t *testing.T) {
	cfg := tinyConfig()
	suites := []string{"table1", "fig5:hd0", "fig5:h8", "fig5:h4", "fig5:h3", "fig6", "summary"}
	wantCounts := map[string]int{
		"table1":   len(cfg.Specs),
		"fig5:hd0": len(cfg.Specs) * 2, // SAT + unateness
		"fig5:h8":  len(cfg.Specs) * 3, // SAT + sliding window + dist2h
		"fig5:h4":  len(cfg.Specs) * 3,
		"fig5:h3":  len(cfg.Specs) * 2, // SAT + sliding window (4h > m)
		"fig6":     len(cfg.Specs) * len(Levels),
		"summary":  len(cfg.Specs) * len(Levels),
	}
	ids := map[string]bool{}
	for _, suite := range suites {
		units, err := SuiteUnits(cfg, suite)
		if err != nil {
			t.Fatalf("%s: %v", suite, err)
		}
		if len(units) != wantCounts[suite] {
			t.Errorf("%s: %d units, want %d", suite, len(units), wantCounts[suite])
		}
		for _, u := range units {
			if ids[u.ID()] {
				t.Errorf("duplicate unit ID %s", u.ID())
			}
			ids[u.ID()] = true
		}
	}
	if _, err := SuiteUnits(cfg, "fig7"); err == nil {
		t.Error("SuiteUnits accepted fig7")
	}
	if _, err := SuiteUnits(cfg, "fig5:h5"); err == nil {
		t.Error("SuiteUnits accepted fig5:h5")
	}
}

// The adaptive dispatch order must be a permutation, deterministic, and
// put expensive units (iterative SAT attacks, high-h analyses, big key
// sizes) ahead of cheap ones.
func TestDispatchOrder(t *testing.T) {
	cfg := Config{Specs: genbench.Scaled(genbench.TableI, 8, 16), Seed: 1}
	var units []Unit
	for _, suite := range []string{"table1", "fig5:h8", "summary"} {
		us, err := SuiteUnits(cfg, suite)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, us...)
	}
	specs := map[string]genbench.Spec{}
	for _, s := range cfg.Specs {
		specs[s.Name] = s
	}
	order := DispatchOrder(units, specs)
	if len(order) != len(units) {
		t.Fatalf("order has %d entries, want %d", len(order), len(units))
	}
	seen := make([]bool, len(units))
	for _, i := range order {
		if i < 0 || i >= len(units) || seen[i] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[i] = true
	}
	if !reflect.DeepEqual(order, DispatchOrder(units, specs)) {
		t.Error("dispatch order not deterministic")
	}
	// Costs must be non-increasing along the order.
	for j := 1; j < len(order); j++ {
		a, b := units[order[j-1]], units[order[j]]
		if unitCost(a, specs[a.Circuit]) < unitCost(b, specs[b.Circuit]) {
			t.Fatalf("dispatch order not longest-first at %d: %s before %s", j, a.ID(), b.ID())
		}
	}
	// Spot-check the heuristic's shape: a SAT attack outranks the
	// unateness analysis on the same case, and fig6 pairings outrank
	// lone summary runs.
	spec := cfg.Specs[0]
	sat := Unit{Kind: UnitFig5, Circuit: spec.Name, Level: HD0, Attack: SATAttackName}
	un := Unit{Kind: UnitFig5, Circuit: spec.Name, Level: HD0, Attack: "AnalyzeUnateness"}
	if unitCost(sat, spec) <= unitCost(un, spec) {
		t.Error("SAT attack not costed above unateness")
	}
	fig6 := Unit{Kind: UnitFig6, Circuit: spec.Name, Level: HM4}
	sum := Unit{Kind: UnitSummary, Circuit: spec.Name, Level: HM4}
	if unitCost(fig6, spec) <= unitCost(sum, spec) {
		t.Error("fig6 pairing not costed above summary run")
	}
}

// Observed wall times must reorder dispatch: measured units sort by
// their measurement (longest first), and unmeasured units slot in via
// the median observed/predicted calibration instead of being stranded.
func TestDispatchOrderObserved(t *testing.T) {
	cfg := Config{Specs: genbench.Scaled(genbench.TableI, 8, 16), Seed: 1}
	units, err := SuiteUnits(cfg, "summary")
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]genbench.Spec{}
	for _, s := range cfg.Specs {
		specs[s.Name] = s
	}
	base := DispatchOrder(units, specs)

	// Invert reality: the unit the model ranks cheapest was observed to
	// be by far the slowest, and the model's most expensive unit was
	// quick. Every other unit gets a measurement consistent with the
	// model (1ns per cost unit) so the calibration ratio is 1.
	cheapest, priciest := base[len(base)-1], base[0]
	observed := map[string]time.Duration{}
	for i, u := range units {
		observed[u.ID()] = time.Duration(unitCost(u, specs[u.Circuit]))
		switch i {
		case cheapest:
			observed[u.ID()] = time.Hour
		case priciest:
			observed[u.ID()] = time.Nanosecond
		}
	}
	order := DispatchOrderObserved(units, specs, observed)
	if order[0] != cheapest {
		t.Errorf("slowest-observed unit %s dispatched at %d, want first",
			units[cheapest].ID(), indexOf(order, cheapest))
	}
	if order[len(order)-1] != priciest {
		t.Errorf("fastest-observed unit %s dispatched at %d, want last",
			units[priciest].ID(), indexOf(order, priciest))
	}

	// An unmeasured unit must not be stranded. A single observation can
	// only calibrate, never reorder: the lone measured unit anchors the
	// scale, every unmeasured cost is rescaled by that same ratio (a
	// monotone transform), so the order must equal the model's exactly —
	// no unit jumps the queue on calibration alone.
	solo := map[string]time.Duration{units[cheapest].ID(): time.Hour}
	if !reflect.DeepEqual(DispatchOrderObserved(units, specs, solo), base) {
		t.Error("a lone calibration measurement reordered the dispatch")
	}

	// Nil and empty maps are exactly the model order.
	if !reflect.DeepEqual(DispatchOrderObserved(units, specs, nil), base) {
		t.Error("nil observations changed the order")
	}
	if !reflect.DeepEqual(DispatchOrderObserved(units, specs, map[string]time.Duration{}), base) {
		t.Error("empty observations changed the order")
	}
}

func indexOf(order []int, v int) int {
	for j, i := range order {
		if i == v {
			return j
		}
	}
	return -1
}

// RunUnits must fail loudly when a unit has no matching case instead of
// executing a partial suite.
func TestRunUnitsMissingCase(t *testing.T) {
	cfg := tinyConfig()
	cfg.Specs = cfg.Specs[:1]
	cases, err := BuildSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	units := []Unit{{Kind: UnitSummary, Circuit: "nosuch", Level: HD0}}
	if _, err := RunUnits(t.Context(), cases, units, cfg, nil); err == nil {
		t.Error("RunUnits accepted a unit with no case")
	}
}

// Unit IDs must be stable: campaign resumability and artifact naming
// depend on them never changing spelling.
func TestUnitIDs(t *testing.T) {
	got := []string{
		Unit{Kind: UnitTable1, Circuit: "c432"}.ID(),
		Unit{Kind: UnitFig5, Circuit: "c432", Level: HM8, Attack: SATAttackName}.ID(),
		Unit{Kind: UnitFig6, Circuit: "c432", Level: HM3}.ID(),
		Unit{Kind: UnitSummary, Circuit: "c432", Level: HD0, Attack: "Auto"}.ID(),
	}
	want := []string{
		"table1/c432",
		"fig5/c432/h8/SAT-Attack",
		"fig6/c432/h3",
		"summary/c432/hd0",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("unit IDs changed:\n got %v\nwant %v", got, want)
	}
}
