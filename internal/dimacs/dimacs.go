// Package dimacs reads and writes CNF formulas in DIMACS format, the
// interchange format of the SAT competition solvers the paper's toolchain
// used (Lingeling). It lets attack instances built by internal/cnf be
// exported to external solvers and reference instances be replayed
// against the internal CDCL solver.
package dimacs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sat"
)

// Formula is a CNF formula in DIMACS terms: NumVars variables numbered
// 1..NumVars and a list of clauses over signed literals.
type Formula struct {
	NumVars int
	Clauses [][]int
}

// Parse reads a DIMACS CNF file. It accepts comment lines (c ...), the
// problem line (p cnf V C) and clauses terminated by 0, possibly spanning
// lines. The declared clause count is checked when present.
func Parse(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	f := &Formula{}
	declaredClauses := -1
	var cur []int
	lineNo := 0
	sawProblem := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if sawProblem {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", lineNo, line)
			}
			v, err1 := strconv.Atoi(fields[2])
			c, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || v < 0 || c < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad problem counts %q", lineNo, line)
			}
			f.NumVars = v
			declaredClauses = c
			sawProblem = true
			continue
		}
		if !sawProblem {
			return nil, fmt.Errorf("dimacs: line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad literal %q", lineNo, tok)
			}
			if lit == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			v := lit
			if v < 0 {
				v = -v
			}
			if v > f.NumVars {
				return nil, fmt.Errorf("dimacs: line %d: literal %d exceeds declared %d vars", lineNo, lit, f.NumVars)
			}
			cur = append(cur, lit)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("dimacs: unterminated final clause")
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("dimacs: declared %d clauses, found %d", declaredClauses, len(f.Clauses))
	}
	return f, nil
}

// Write emits the formula in DIMACS format.
func Write(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, cl := range f.Clauses {
		for _, lit := range cl {
			fmt.Fprintf(bw, "%d ", lit)
		}
		fmt.Fprintln(bw, 0)
	}
	return bw.Flush()
}

// LoadIntoSolver creates the formula's variables in s (which must be
// fresh) and adds all clauses. It returns the sat.Lit corresponding to
// each DIMACS variable (index 1..NumVars) and whether the formula is
// already unsatisfiable at level 0.
func LoadIntoSolver(s *sat.Solver, f *Formula) (vars []sat.Lit, ok bool) {
	vars = make([]sat.Lit, f.NumVars+1)
	for i := 1; i <= f.NumVars; i++ {
		vars[i] = sat.PosLit(s.NewVar())
	}
	ok = true
	for _, cl := range f.Clauses {
		lits := make([]sat.Lit, len(cl))
		for i, l := range cl {
			if l > 0 {
				lits[i] = vars[l]
			} else {
				lits[i] = vars[-l].Neg()
			}
		}
		ok = s.AddClause(lits...) && ok
	}
	return vars, ok
}

// FromSolverProblem converts clauses expressed as sat.Lit slices over a
// solver's variable space into a DIMACS formula (variables shift to
// 1-based).
func FromSolverProblem(nVars int, clauses [][]sat.Lit) *Formula {
	f := &Formula{NumVars: nVars}
	for _, cl := range clauses {
		out := make([]int, len(cl))
		for i, l := range cl {
			v := l.Var() + 1
			if l.Sign() {
				out[i] = -v
			} else {
				out[i] = v
			}
		}
		f.Clauses = append(f.Clauses, out)
	}
	return f
}
