// Package dimacs reads and writes CNF formulas in DIMACS format, the
// interchange format of the SAT competition solvers the paper's toolchain
// used (Lingeling). It lets attack instances built by internal/cnf be
// exported to external solvers and reference instances be replayed
// against the internal CDCL solver.
package dimacs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sat"
)

// Formula is a CNF formula in DIMACS terms: NumVars variables numbered
// 1..NumVars and a list of clauses over signed literals.
type Formula struct {
	NumVars int
	Clauses [][]int
}

// Parse reads a DIMACS CNF file. It accepts comment lines (c ...), the
// problem line (p cnf V C) and clauses terminated by 0, possibly spanning
// lines. The declared clause count is checked when present.
func Parse(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	f := &Formula{}
	declaredClauses := -1
	var cur []int
	lineNo := 0
	sawProblem := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if sawProblem {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", lineNo, line)
			}
			v, err1 := strconv.Atoi(fields[2])
			c, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || v < 0 || c < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad problem counts %q", lineNo, line)
			}
			f.NumVars = v
			declaredClauses = c
			sawProblem = true
			continue
		}
		if !sawProblem {
			return nil, fmt.Errorf("dimacs: line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad literal %q", lineNo, tok)
			}
			if lit == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			v := lit
			if v < 0 {
				v = -v
			}
			if v > f.NumVars {
				return nil, fmt.Errorf("dimacs: line %d: literal %d exceeds declared %d vars", lineNo, lit, f.NumVars)
			}
			cur = append(cur, lit)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("dimacs: unterminated final clause")
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("dimacs: declared %d clauses, found %d", declaredClauses, len(f.Clauses))
	}
	return f, nil
}

// Write emits the formula in DIMACS format.
func Write(w io.Writer, f *Formula) error {
	return WriteWithUnits(w, f, nil)
}

// WriteWithUnits emits the formula with extra unit clauses appended —
// the assumptions-as-units dump the DIMACS-pipe engine uses: external
// competition solvers speak no assumption interface, so each
// SolveAssuming call re-dumps the buffered formula with its assumptions
// as units. Units are declared in the problem line's clause count and
// emitted first, so a reader sees a plain well-formed CNF.
func WriteWithUnits(w io.Writer, f *Formula, units []int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)+len(units))
	for _, u := range units {
		fmt.Fprintf(bw, "%d 0\n", u)
	}
	for _, cl := range f.Clauses {
		for _, lit := range cl {
			fmt.Fprintf(bw, "%d ", lit)
		}
		fmt.Fprintln(bw, 0)
	}
	return bw.Flush()
}

// Result is a parsed external-solver answer: the verdict and, for SAT,
// the model indexed by DIMACS variable (1..NumVars; entry 0 unused).
// Variables the solver did not mention default to false.
type Result struct {
	Status sat.Status
	Model  []bool
}

// ParseResult parses the output of a DIMACS solver invocation in the
// SAT-competition format — an `s SATISFIABLE` / `s UNSATISFIABLE` /
// `s UNKNOWN` status line plus `v` value lines terminated by 0 — and in
// the bare minisat result-file dialect (`SAT`/`UNSAT` status, literal
// lines without the `v ` prefix). Malformed output is an error, never a
// silent verdict: a missing status line, a truncated model (v lines
// that never reach the 0 terminator), a satisfiable claim without a
// model, literals outside 1..numVars, or garbage tokens.
func ParseResult(r io.Reader, numVars int) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	res := &Result{Status: sat.Unknown}
	sawStatus := false
	model := make([]bool, numVars+1)
	inModel := false    // saw at least one value literal
	terminated := false // saw the 0 terminator
	addLits := func(fields []string) error {
		for _, tok := range fields {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return fmt.Errorf("dimacs: bad value literal %q in solver output", tok)
			}
			if lit == 0 {
				terminated = true
				return nil
			}
			if terminated {
				return fmt.Errorf("dimacs: value literal %d after model terminator", lit)
			}
			v := lit
			if v < 0 {
				v = -v
			}
			if v > numVars {
				return fmt.Errorf("dimacs: value literal %d exceeds %d problem variables", lit, numVars)
			}
			inModel = true
			model[v] = lit > 0
		}
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "c"):
			continue
		case strings.HasPrefix(line, "s "):
			if sawStatus {
				return nil, fmt.Errorf("dimacs: duplicate status line %q", line)
			}
			sawStatus = true
			switch strings.TrimSpace(line[2:]) {
			case "SATISFIABLE":
				res.Status = sat.Sat
			case "UNSATISFIABLE":
				res.Status = sat.Unsat
			case "UNKNOWN", "INDETERMINATE":
				res.Status = sat.Unknown
			default:
				return nil, fmt.Errorf("dimacs: unrecognized status line %q", line)
			}
		case line == "SAT" || line == "SATISFIABLE":
			sawStatus = true
			res.Status = sat.Sat
		case line == "UNSAT" || line == "UNSATISFIABLE":
			sawStatus = true
			res.Status = sat.Unsat
		case line == "INDET" || line == "INDETERMINATE" || line == "UNKNOWN":
			sawStatus = true
			res.Status = sat.Unknown
		case strings.HasPrefix(line, "v ") || line == "v":
			if err := addLits(strings.Fields(line[1:])); err != nil {
				return nil, err
			}
		default:
			// Bare literal lines (minisat result files) — every field must
			// be an integer, anything else is garbage.
			if err := addLits(strings.Fields(line)); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawStatus {
		return nil, fmt.Errorf("dimacs: solver output has no status line")
	}
	if res.Status == sat.Sat {
		// A terminated-but-empty model (just "v 0") is valid: a formula
		// over zero variables is trivially satisfiable.
		if !terminated {
			return nil, fmt.Errorf("dimacs: satisfiable verdict without a terminated model")
		}
		res.Model = model
	} else if inModel {
		return nil, fmt.Errorf("dimacs: %v verdict carries value literals", res.Status)
	}
	return res, nil
}

// LoadIntoSolver creates the formula's variables in s (which must be
// fresh) and adds all clauses. It returns the sat.Lit corresponding to
// each DIMACS variable (index 1..NumVars) and whether the formula is
// already unsatisfiable at level 0.
func LoadIntoSolver(s *sat.Solver, f *Formula) (vars []sat.Lit, ok bool) {
	vars = make([]sat.Lit, f.NumVars+1)
	for i := 1; i <= f.NumVars; i++ {
		vars[i] = sat.PosLit(s.NewVar())
	}
	ok = true
	for _, cl := range f.Clauses {
		lits := make([]sat.Lit, len(cl))
		for i, l := range cl {
			if l > 0 {
				lits[i] = vars[l]
			} else {
				lits[i] = vars[-l].Neg()
			}
		}
		ok = s.AddClause(lits...) && ok
	}
	return vars, ok
}

// FromSolverProblem converts clauses expressed as sat.Lit slices over a
// solver's variable space into a DIMACS formula (variables shift to
// 1-based).
func FromSolverProblem(nVars int, clauses [][]sat.Lit) *Formula {
	f := &Formula{NumVars: nVars}
	for _, cl := range clauses {
		out := make([]int, len(cl))
		for i, l := range cl {
			v := l.Var() + 1
			if l.Sign() {
				out[i] = -v
			} else {
				out[i] = v
			}
		}
		f.Clauses = append(f.Clauses, out)
	}
	return f
}
