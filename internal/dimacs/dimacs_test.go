package dimacs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sat"
)

const sample = `c sample UNSAT instance
p cnf 2 4
1 2 0
1 -2 0
-1 2 0
-1 -2 0
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 2 || len(f.Clauses) != 4 {
		t.Fatalf("got %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
	s := sat.New()
	_, ok := LoadIntoSolver(s, f)
	if ok {
		if got := s.Solve(); got != sat.Unsat {
			t.Errorf("solve = %v, want UNSAT", got)
		}
	}
}

func TestParseMultilineClause(t *testing.T) {
	src := "p cnf 3 1\n1\n2\n3 0\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 3 {
		t.Fatalf("clauses = %v", f.Clauses)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"noProblem", "1 2 0\n"},
		{"badProblem", "p cnf x y\n"},
		{"dupProblem", "p cnf 1 0\np cnf 1 0\n"},
		{"overflowVar", "p cnf 1 1\n2 0\n"},
		{"badLiteral", "p cnf 1 1\nfoo 0\n"},
		{"unterminated", "p cnf 1 1\n1\n"},
		{"countMismatch", "p cnf 1 2\n1 0\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

// TestWriteWithUnitsRoundTrip: an assumptions-as-units dump parses back
// as a well-formed CNF whose verdict equals solving the original clauses
// under those assumptions — the contract the DIMACS-pipe engine relies
// on for SolveAssuming.
func TestWriteWithUnitsRoundTrip(t *testing.T) {
	// x1 XOR x2, satisfiable alone, unsatisfiable under x1 ∧ x2.
	f := &Formula{NumVars: 2, Clauses: [][]int{{1, 2}, {-1, -2}}}
	for _, tc := range []struct {
		units []int
		want  sat.Status
	}{
		{nil, sat.Sat},
		{[]int{1}, sat.Sat},
		{[]int{1, 2}, sat.Unsat},
		{[]int{-1, -2}, sat.Unsat},
	} {
		var buf strings.Builder
		if err := WriteWithUnits(&buf, f, tc.units); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("units %v: dump does not parse back: %v\n%s", tc.units, err, buf.String())
		}
		if len(back.Clauses) != len(f.Clauses)+len(tc.units) {
			t.Fatalf("units %v: %d clauses, want %d", tc.units, len(back.Clauses), len(f.Clauses)+len(tc.units))
		}
		s := sat.New()
		_, ok := LoadIntoSolver(s, back)
		got := sat.Unsat
		if ok {
			got = s.Solve()
		}
		if got != tc.want {
			t.Errorf("units %v: verdict %v, want %v", tc.units, got, tc.want)
		}
	}
}

func TestParseResult(t *testing.T) {
	good := []struct {
		name, out string
		status    sat.Status
		model     map[int]bool // checked entries (1-based)
	}{
		{"sat", "c stub\ns SATISFIABLE\nv 1 -2 3 0\n", sat.Sat, map[int]bool{1: true, 2: false, 3: true}},
		{"satMultilineV", "s SATISFIABLE\nv 1 -2\nv -3\nv 0\n", sat.Sat, map[int]bool{1: true, 2: false, 3: false}},
		{"unsat", "s UNSATISFIABLE\n", sat.Unsat, nil},
		{"unknown", "s UNKNOWN\n", sat.Unknown, nil},
		{"minisatSat", "SAT\n1 -2 3 0\n", sat.Sat, map[int]bool{1: true, 3: true}},
		{"minisatUnsat", "UNSAT\n", sat.Unsat, nil},
		{"minisatIndet", "INDET\n", sat.Unknown, nil},
	}
	for _, tc := range good {
		res, err := ParseResult(strings.NewReader(tc.out), 3)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if res.Status != tc.status {
			t.Errorf("%s: status %v, want %v", tc.name, res.Status, tc.status)
		}
		for v, want := range tc.model {
			if res.Model[v] != want {
				t.Errorf("%s: model[%d] = %v, want %v", tc.name, v, res.Model[v], want)
			}
		}
	}

	bad := []struct{ name, out string }{
		{"empty", ""},
		{"noStatus", "v 1 -2 3 0\n"},
		{"commentsOnly", "c nothing to see\n"},
		{"truncatedV", "s SATISFIABLE\nv 1 -2\n"},
		{"satNoModel", "s SATISFIABLE\n"},
		{"badStatus", "s MAYBE\n"},
		{"dupStatus", "s UNSATISFIABLE\ns UNSATISFIABLE\n"},
		{"garbageV", "s SATISFIABLE\nv 1 two 0\n"},
		{"outOfRange", "s SATISFIABLE\nv 1 -2 9 0\n"},
		{"litsAfterTerminator", "s SATISFIABLE\nv 1 0\nv 2 0\n"},
		{"modelOnUnsat", "s UNSATISFIABLE\nv 1 0\n"},
		{"garbageLine", "segmentation fault\n"},
	}
	for _, tc := range bad {
		if res, err := ParseResult(strings.NewReader(tc.out), 3); err == nil {
			t.Errorf("%s: accepted malformed output: %+v", tc.name, res)
		}
	}
}

// Property: write/parse round trip preserves the formula, and solving the
// round-tripped formula matches solving the original clauses directly.
func TestQuickRoundTripAndSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(8)
		nClauses := 1 + rng.Intn(20)
		var clauses [][]sat.Lit
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			cl := make([]sat.Lit, k)
			for j := range cl {
				cl[j] = sat.MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			clauses = append(clauses, cl)
		}
		formula := FromSolverProblem(nVars, clauses)
		var buf strings.Builder
		if err := Write(&buf, formula); err != nil {
			return false
		}
		back, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		s1 := sat.New()
		for i := 0; i < nVars; i++ {
			s1.NewVar()
		}
		ok1 := true
		for _, cl := range clauses {
			ok1 = s1.AddClause(cl...) && ok1
		}
		r1 := sat.Unsat
		if ok1 {
			r1 = s1.Solve()
		}
		s2 := sat.New()
		_, ok2 := LoadIntoSolver(s2, back)
		r2 := sat.Unsat
		if ok2 {
			r2 = s2.Solve()
		}
		return r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
