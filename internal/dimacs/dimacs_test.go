package dimacs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sat"
)

const sample = `c sample UNSAT instance
p cnf 2 4
1 2 0
1 -2 0
-1 2 0
-1 -2 0
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 2 || len(f.Clauses) != 4 {
		t.Fatalf("got %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
	s := sat.New()
	_, ok := LoadIntoSolver(s, f)
	if ok {
		if got := s.Solve(); got != sat.Unsat {
			t.Errorf("solve = %v, want UNSAT", got)
		}
	}
}

func TestParseMultilineClause(t *testing.T) {
	src := "p cnf 3 1\n1\n2\n3 0\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 3 {
		t.Fatalf("clauses = %v", f.Clauses)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"noProblem", "1 2 0\n"},
		{"badProblem", "p cnf x y\n"},
		{"dupProblem", "p cnf 1 0\np cnf 1 0\n"},
		{"overflowVar", "p cnf 1 1\n2 0\n"},
		{"badLiteral", "p cnf 1 1\nfoo 0\n"},
		{"unterminated", "p cnf 1 1\n1\n"},
		{"countMismatch", "p cnf 1 2\n1 0\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

// Property: write/parse round trip preserves the formula, and solving the
// round-tripped formula matches solving the original clauses directly.
func TestQuickRoundTripAndSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(8)
		nClauses := 1 + rng.Intn(20)
		var clauses [][]sat.Lit
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			cl := make([]sat.Lit, k)
			for j := range cl {
				cl[j] = sat.MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			clauses = append(clauses, cl)
		}
		formula := FromSolverProblem(nVars, clauses)
		var buf strings.Builder
		if err := Write(&buf, formula); err != nil {
			return false
		}
		back, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		s1 := sat.New()
		for i := 0; i < nVars; i++ {
			s1.NewVar()
		}
		ok1 := true
		for _, cl := range clauses {
			ok1 = s1.AddClause(cl...) && ok1
		}
		r1 := sat.Unsat
		if ok1 {
			r1 = s1.Solve()
		}
		s2 := sat.New()
		_, ok2 := LoadIntoSolver(s2, back)
		r2 := sat.Unsat
		if ok2 {
			r2 = s2.Solve()
		}
		return r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
