package bench

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
)

// c17 is the smallest ISCAS'85 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
const c17 = `
# c17 ISCAS'85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestParseC17(t *testing.T) {
	c, err := ParseString(c17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Inputs()); got != 5 {
		t.Errorf("inputs = %d, want 5", got)
	}
	if got := len(c.Outputs); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
	if got := c.NumGates(); got != 6 {
		t.Errorf("gates = %d, want 6", got)
	}
	// Spot-check the truth table: G22 = NAND(NAND(G1,G3), NAND(G2, NAND(G3,G6))).
	eval := func(g1, g2, g3, g6, g7 bool) (bool, bool) {
		assign := map[int]bool{}
		for name, v := range map[string]bool{"G1": g1, "G2": g2, "G3": g3, "G6": g6, "G7": g7} {
			id, ok := c.NodeByName(name)
			if !ok {
				t.Fatalf("missing input %s", name)
			}
			assign[id] = v
		}
		outs := c.EvalOutputs(assign)
		return outs[0], outs[1]
	}
	nand := func(a, b bool) bool { return !(a && b) }
	for p := 0; p < 32; p++ {
		g1, g2, g3, g6, g7 := p&1 == 1, p&2 == 2, p&4 == 4, p&8 == 8, p&16 == 16
		g10 := nand(g1, g3)
		g11 := nand(g3, g6)
		g16 := nand(g2, g11)
		g19 := nand(g11, g7)
		want22, want23 := nand(g10, g16), nand(g16, g19)
		got22, got23 := eval(g1, g2, g3, g6, g7)
		if got22 != want22 || got23 != want23 {
			t.Errorf("pattern %05b: got (%v,%v), want (%v,%v)", p, got22, got23, want22, want23)
		}
	}
}

func TestKeyInputDetection(t *testing.T) {
	src := `
INPUT(a)
INPUT(keyinput0)
INPUT(KEYINPUT1)
OUTPUT(y)
y = XOR(a, keyinput0)
`
	// KEYINPUT1 is unused but still a key input.
	c, err := ParseString(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.KeyInputs()); got != 2 {
		t.Errorf("key inputs = %d, want 2", got)
	}
	if got := len(c.PrimaryInputs()); got != 1 {
		t.Errorf("primary inputs = %d, want 1", got)
	}
}

func TestOutOfOrderGates(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(g1, g2)
g2 = NOT(b)
g1 = NOT(a)
`
	c, err := ParseString(src, "ooo")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	a, _ := c.NodeByName("a")
	b, _ := c.NodeByName("b")
	if got := c.EvalOutputs(map[int]bool{a: false, b: false})[0]; !got {
		t.Error("NOT(a) AND NOT(b) with a=b=0 should be 1")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"cycle", "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n"},
		{"undefined", "INPUT(a)\nOUTPUT(y)\ny = AND(a, nope)\n"},
		{"badgate", "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"},
		{"redef", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"},
		{"redefInput", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"},
		{"badParen", "INPUT(a\n"},
		{"noAssign", "INPUT(a)\nfoo bar\n"},
		{"emptyFanin", "INPUT(a)\nOUTPUT(y)\ny = AND(a,)\n"},
		{"undefOutput", "INPUT(a)\nOUTPUT(nope)\n"},
		{"badArity", "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.src, tc.name); err == nil {
			t.Errorf("%s: error expected, got nil", tc.name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c1, err := ParseString(c17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	s := WriteString(c1)
	c2, err := ParseString(s, "c17rt")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if !equivalentBySim(t, c1, c2, 64) {
		t.Error("round trip changed function")
	}
}

func TestRoundTripWithConstants(t *testing.T) {
	c := circuit.New("k")
	a := c.AddInput("a")
	one := c.AddConst("one", true)
	zero := c.AddConst("zero", false)
	g := c.MustGate("g", And, a, one)
	h := c.MustGate("h", Or, g, zero)
	c.MarkOutput(h)
	s := WriteString(c)
	c2, err := ParseString(s, "k2")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	a2, _ := c2.NodeByName("a")
	for _, v := range []bool{false, true} {
		if got := c2.EvalOutputs(map[int]bool{a2: v})[0]; got != v {
			t.Errorf("const round trip: f(%v) = %v, want %v", v, got, v)
		}
	}
}

// And/Or aliases so the test above reads naturally.
const (
	And = circuit.And
	Or  = circuit.Or
)

// equivalentBySim compares two circuits with identical input/output names
// on n random patterns.
func equivalentBySim(t *testing.T, c1, c2 *circuit.Circuit, n int) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < n; trial++ {
		a1 := map[int]bool{}
		a2 := map[int]bool{}
		for _, id := range c1.Inputs() {
			name := c1.Nodes[id].Name
			id2, ok := c2.NodeByName(name)
			if !ok {
				t.Fatalf("input %s missing from second circuit", name)
			}
			v := rng.Intn(2) == 1
			a1[id] = v
			a2[id2] = v
		}
		o1 := c1.EvalOutputs(a1)
		o2 := c2.EvalOutputs(a2)
		if len(o1) != len(o2) {
			t.Fatalf("output arity mismatch: %d vs %d", len(o1), len(o2))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
	}
	return true
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# header\n\n  # indented comment\nINPUT(a)\n\nOUTPUT(y)\ny = NOT(a)\n"
	if _, err := ParseString(src, "c"); err != nil {
		t.Fatal(err)
	}
}

func TestBuffAliases(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUF(a)\nz = INV(a)\n"
	c, err := ParseString(src, "alias")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.NodeByName("a")
	outs := c.EvalOutputs(map[int]bool{a: true})
	if !outs[0] || outs[1] {
		t.Errorf("BUF/INV aliases wrong: %v", outs)
	}
}

func TestWritePreservesKeyInputs(t *testing.T) {
	src := "INPUT(x)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XNOR(x, keyinput0)\n"
	c, err := ParseString(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseString(WriteString(c), "k2")
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.KeyInputs()) != 1 {
		t.Error("key input lost in round trip")
	}
}

func TestSortedSignalNames(t *testing.T) {
	c, _ := ParseString(c17, "c17")
	names := SortedSignalNames(c)
	if len(names) != c.Len() {
		t.Fatalf("got %d names, want %d", len(names), c.Len())
	}
	for i := 1; i < len(names); i++ {
		if strings.Compare(names[i-1], names[i]) > 0 {
			t.Fatal("names not sorted")
		}
	}
}
