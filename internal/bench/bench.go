// Package bench reads and writes combinational circuits in the BENCH
// netlist format used by the ISCAS'85 benchmark suite and by the logic
// locking community. The format is line oriented:
//
//	# comment
//	INPUT(a)
//	INPUT(keyinput0)
//	OUTPUT(y)
//	g1 = AND(a, keyinput0)
//	y  = NOT(g1)
//
// Inputs whose names begin with "keyinput" (case-insensitive) are treated
// as key inputs, following the convention of published locked benchmarks.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/circuit"
)

// KeyInputPrefix is the name prefix that marks an input as a key input.
const KeyInputPrefix = "keyinput"

// ParseError describes a syntax or semantic error in a BENCH file.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg)
}

var gateTypeByName = map[string]circuit.GateType{
	"AND": circuit.And, "NAND": circuit.Nand,
	"OR": circuit.Or, "NOR": circuit.Nor,
	"XOR": circuit.Xor, "XNOR": circuit.Xnor,
	"NOT": circuit.Not, "INV": circuit.Not,
	"BUF": circuit.Buf, "BUFF": circuit.Buf,
}

var nameByGateType = map[circuit.GateType]string{
	circuit.And: "AND", circuit.Nand: "NAND",
	circuit.Or: "OR", circuit.Nor: "NOR",
	circuit.Xor: "XOR", circuit.Xnor: "XNOR",
	circuit.Not: "NOT", circuit.Buf: "BUFF",
}

type rawGate struct {
	line   int
	name   string
	op     string
	fanins []string
}

// Parse reads a BENCH netlist and returns the circuit. Gates may be listed
// in any order; Parse topologically sorts them. Inputs named with
// KeyInputPrefix are marked as key inputs.
func Parse(r io.Reader, name string) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var inputs, outputs []string
	var gates []rawGate
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			outputs = append(outputs, arg)
		default:
			g, err := parseGateLine(line)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			g.line = lineNo
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}
	return build(name, inputs, outputs, gates)
}

// ParseString is Parse on a string.
func ParseString(s, name string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s), name)
}

func parenArg(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty signal name in %q", line)
	}
	return arg, nil
}

func parseGateLine(line string) (rawGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rawGate{}, fmt.Errorf("expected assignment, got %q", line)
	}
	name := strings.TrimSpace(line[:eq])
	if name == "" {
		return rawGate{}, fmt.Errorf("empty gate name in %q", line)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	close := strings.LastIndexByte(rhs, ')')
	if open < 0 || close < open {
		return rawGate{}, fmt.Errorf("malformed gate expression %q", rhs)
	}
	op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	if _, ok := gateTypeByName[op]; !ok {
		return rawGate{}, fmt.Errorf("unknown gate type %q", op)
	}
	var fanins []string
	for _, f := range strings.Split(rhs[open+1:close], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return rawGate{}, fmt.Errorf("empty fanin in %q", rhs)
		}
		fanins = append(fanins, f)
	}
	return rawGate{name: name, op: op, fanins: fanins}, nil
}

func build(name string, inputs, outputs []string, gates []rawGate) (*circuit.Circuit, error) {
	c := circuit.New(name)
	declared := make(map[string]bool)
	for _, in := range inputs {
		if declared[in] {
			return nil, fmt.Errorf("bench: duplicate input %q", in)
		}
		declared[in] = true
		if strings.HasPrefix(strings.ToLower(in), KeyInputPrefix) {
			c.AddKeyInput(in)
		} else {
			c.AddInput(in)
		}
	}
	byName := make(map[string]rawGate, len(gates))
	for _, g := range gates {
		if declared[g.name] {
			return nil, &ParseError{g.line, fmt.Sprintf("signal %q defined twice", g.name)}
		}
		if _, dup := byName[g.name]; dup {
			return nil, &ParseError{g.line, fmt.Sprintf("signal %q defined twice", g.name)}
		}
		byName[g.name] = g
	}
	// Topological insertion via DFS with cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(sig string) error
	visit = func(sig string) error {
		if _, isInput := c.NodeByName(sig); isInput {
			if color[sig] == black {
				return nil
			}
		}
		switch color[sig] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("bench: combinational cycle through %q", sig)
		}
		g, ok := byName[sig]
		if !ok {
			if _, isIn := c.NodeByName(sig); isIn {
				color[sig] = black
				return nil
			}
			return fmt.Errorf("bench: undefined signal %q", sig)
		}
		color[sig] = gray
		fanins := make([]int, len(g.fanins))
		for i, f := range g.fanins {
			if err := visit(f); err != nil {
				return err
			}
			id, _ := c.NodeByName(f)
			fanins[i] = id
		}
		if _, err := c.AddGate(g.name, gateTypeByName[g.op], fanins...); err != nil {
			return &ParseError{g.line, err.Error()}
		}
		color[sig] = black
		return nil
	}
	// Mark inputs resolved.
	for _, in := range inputs {
		color[in] = black
	}
	// Visit gates in declaration order for stable ids, then outputs.
	for _, g := range gates {
		if err := visit(g.name); err != nil {
			return nil, err
		}
	}
	for _, out := range outputs {
		id, ok := c.NodeByName(out)
		if !ok {
			return nil, fmt.Errorf("bench: output %q is not defined", out)
		}
		c.MarkOutput(id)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("bench: internal: %w", err)
	}
	return c, nil
}

// Write serializes the circuit in BENCH format. Constants are lowered to
// gates over a dedicated input when present (BENCH has no constant
// literal): Const1 becomes OR(x, NOT x) style logic only if constants
// exist, otherwise the output is a direct transcription.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", len(c.Inputs()), len(c.Outputs), c.NumGates())
	for _, id := range c.Inputs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Nodes[id].Name)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nodes[id].Name)
	}
	// BENCH lacks constants; synthesize them from the first input if needed.
	constBase := ""
	for _, n := range c.Nodes {
		if n.Type == circuit.Const0 || n.Type == circuit.Const1 {
			ins := c.Inputs()
			if len(ins) == 0 {
				return fmt.Errorf("bench: cannot serialize constants in a circuit with no inputs")
			}
			constBase = c.Nodes[ins[0]].Name
			break
		}
	}
	wroteConstHelpers := false
	emitConstHelpers := func() {
		if wroteConstHelpers {
			return
		}
		fmt.Fprintf(bw, "__not_base = NOT(%s)\n", constBase)
		fmt.Fprintf(bw, "__const0 = AND(%s, __not_base)\n", constBase)
		fmt.Fprintf(bw, "__const1 = OR(%s, __not_base)\n", constBase)
		wroteConstHelpers = true
	}
	for id, n := range c.Nodes {
		switch n.Type {
		case circuit.Input:
			continue
		case circuit.Const0:
			emitConstHelpers()
			fmt.Fprintf(bw, "%s = BUFF(__const0)\n", n.Name)
		case circuit.Const1:
			emitConstHelpers()
			fmt.Fprintf(bw, "%s = BUFF(__const1)\n", n.Name)
		default:
			names := make([]string, len(n.Fanins))
			for i, f := range n.Fanins {
				names[i] = c.Nodes[f].Name
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", n.Name, nameByGateType[n.Type], strings.Join(names, ", "))
		}
		_ = id
	}
	return bw.Flush()
}

// WriteString serializes the circuit to a string, panicking on failure
// (cannot happen for a valid circuit).
func WriteString(c *circuit.Circuit) string {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		panic(err)
	}
	return b.String()
}

// SortedSignalNames returns all node names sorted, primarily for
// deterministic test diagnostics.
func SortedSignalNames(c *circuit.Circuit) []string {
	names := make([]string, 0, c.Len())
	for _, n := range c.Nodes {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	return names
}
