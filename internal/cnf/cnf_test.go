package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sat"
)

// checkGateEquivTruth verifies that, for every input assignment forced via
// unit clauses, the encoded node literal matches circuit simulation.
func checkGateEquivTruth(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	ins := c.Inputs()
	if len(ins) > 10 {
		t.Fatalf("too many inputs for exhaustive check: %d", len(ins))
	}
	for p := 0; p < 1<<uint(len(ins)); p++ {
		s := sat.New()
		e := NewEncoder(s)
		lits := e.EncodeCircuit(c)
		assign := map[int]bool{}
		for i, id := range ins {
			v := p&(1<<uint(i)) != 0
			assign[id] = v
			e.Fix(lits[id], v)
		}
		if got := s.Solve(); got != sat.Sat {
			t.Fatalf("pattern %b: encoding unsatisfiable", p)
		}
		want := c.Eval(assign)
		for id := range c.Nodes {
			if s.LitTrue(lits[id]) != want[id] {
				t.Fatalf("pattern %b: node %d (%s): encoded %v, simulated %v",
					p, id, c.Nodes[id].Name, s.LitTrue(lits[id]), want[id])
			}
		}
	}
}

func TestEncodeAllGateTypes(t *testing.T) {
	c := circuit.New("gates")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	c.MustGate("and", circuit.And, a, b, d)
	c.MustGate("nand", circuit.Nand, a, b)
	c.MustGate("or", circuit.Or, a, b, d)
	c.MustGate("nor", circuit.Nor, a, b)
	c.MustGate("xor", circuit.Xor, a, b, d)
	c.MustGate("xnor", circuit.Xnor, a, b)
	c.MustGate("not", circuit.Not, a)
	c.MustGate("buf", circuit.Buf, b)
	one := c.AddConst("one", true)
	zero := c.AddConst("zero", false)
	g := c.MustGate("mix", circuit.And, one, a)
	h := c.MustGate("mix2", circuit.Or, zero, g)
	c.MarkOutput(h)
	checkGateEquivTruth(t, c)
}

// Property: Tseitin encoding of random circuits agrees with simulation.
func TestQuickTseitinAgreesWithSim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 4, 4+rng.Intn(18))
		ins := c.Inputs()
		s := sat.New()
		e := NewEncoder(s)
		lits := e.EncodeCircuit(c)
		for trial := 0; trial < 6; trial++ {
			s2 := sat.New()
			e2 := NewEncoder(s2)
			lits2 := e2.EncodeCircuitWith(c, nil)
			assign := map[int]bool{}
			for _, id := range ins {
				v := rng.Intn(2) == 1
				assign[id] = v
				e2.Fix(lits2[id], v)
			}
			if s2.Solve() != sat.Sat {
				return false
			}
			want := c.Eval(assign)
			for _, o := range c.Outputs {
				if s2.LitTrue(lits2[o]) != want[o] {
					return false
				}
			}
		}
		_ = lits
		_ = s
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomCircuit(rng *rand.Rand, nIn, nGates int) *circuit.Circuit {
	c := circuit.New("rand")
	ids := make([]int, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		ids = append(ids, c.AddInput(""))
	}
	types := []circuit.GateType{
		circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
		circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf,
	}
	for i := 0; i < nGates; i++ {
		gt := types[rng.Intn(len(types))]
		n := 1
		if gt != circuit.Not && gt != circuit.Buf {
			n = 2 + rng.Intn(2)
		}
		fanins := make([]int, n)
		for j := range fanins {
			fanins[j] = ids[rng.Intn(len(ids))]
		}
		ids = append(ids, c.MustGate("", gt, fanins...))
	}
	c.MarkOutput(ids[len(ids)-1])
	return c
}

func TestSharedInputsAcrossCopies(t *testing.T) {
	// Encode the same XOR circuit twice sharing inputs: outputs must be
	// provably equal (miter UNSAT).
	c := circuit.New("x")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.MustGate("g", circuit.Xor, a, b)
	c.MarkOutput(g)

	s := sat.New()
	e := NewEncoder(s)
	lits1 := e.EncodeCircuit(c)
	shared := map[int]sat.Lit{a: lits1[a], b: lits1[b]}
	lits2 := e.EncodeCircuitWith(c, shared)
	// Miter: outputs differ.
	d := e.Xor(lits1[g], lits2[g])
	s.AddClause(d)
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("identical copies with shared inputs: got %v, want UNSAT", got)
	}
}

func TestMiterDetectsDifference(t *testing.T) {
	// AND vs OR of the same inputs must be distinguishable.
	c1 := circuit.New("and")
	a1 := c1.AddInput("a")
	b1 := c1.AddInput("b")
	g1 := c1.MustGate("g", circuit.And, a1, b1)
	c1.MarkOutput(g1)
	c2 := circuit.New("or")
	a2 := c2.AddInput("a")
	b2 := c2.AddInput("b")
	g2 := c2.MustGate("g", circuit.Or, a2, b2)
	c2.MarkOutput(g2)

	s := sat.New()
	e := NewEncoder(s)
	lits1 := e.EncodeCircuit(c1)
	lits2 := e.EncodeCircuitWith(c2, map[int]sat.Lit{a2: lits1[a1], b2: lits1[b1]})
	s.AddClause(e.Xor(lits1[g1], lits2[g2]))
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("AND vs OR miter: got %v, want SAT", got)
	}
	// The distinguishing input must actually distinguish: a != b.
	if s.LitTrue(lits1[a1]) == s.LitTrue(lits1[b1]) {
		t.Error("model is not a distinguishing input for AND vs OR")
	}
}

func countTrue(s *sat.Solver, lits []sat.Lit) int {
	n := 0
	for _, l := range lits {
		if s.LitTrue(l) {
			n++
		}
	}
	return n
}

func TestExactlyKBothEncodings(t *testing.T) {
	for _, enc := range []CardEncoding{AdderTree, SeqCounter} {
		for n := 1; n <= 7; n++ {
			for k := 0; k <= n; k++ {
				s := sat.New()
				e := NewEncoder(s)
				lits := make([]sat.Lit, n)
				for i := range lits {
					lits[i] = e.NewLit()
				}
				e.ExactlyK(lits, k, enc)
				if got := s.Solve(); got != sat.Sat {
					t.Fatalf("%v n=%d k=%d: got %v, want SAT", enc, n, k, got)
				}
				if got := countTrue(s, lits); got != k {
					t.Fatalf("%v n=%d k=%d: model has %d true", enc, n, k, got)
				}
				// Block this model and count all solutions = C(n,k).
				want := binom(n, k)
				count := 0
				for s.Solve() == sat.Sat {
					count++
					if count > want {
						break
					}
					block := make([]sat.Lit, n)
					for i, l := range lits {
						if s.LitTrue(l) {
							block[i] = l.Neg()
						} else {
							block[i] = l
						}
					}
					s.AddClause(block...)
				}
				if count != want {
					t.Fatalf("%v n=%d k=%d: %d solutions, want %d", enc, n, k, count, want)
				}
			}
		}
	}
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestExactlyKInfeasible(t *testing.T) {
	s := sat.New()
	e := NewEncoder(s)
	lits := []sat.Lit{e.NewLit(), e.NewLit()}
	e.ExactlyK(lits, 5, AdderTree)
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("k > n: got %v, want UNSAT", got)
	}
}

func TestHammingEq(t *testing.T) {
	for _, enc := range []CardEncoding{AdderTree, SeqCounter} {
		const n = 6
		for k := 0; k <= n; k++ {
			s := sat.New()
			e := NewEncoder(s)
			xs := make([]sat.Lit, n)
			ys := make([]sat.Lit, n)
			for i := range xs {
				xs[i] = e.NewLit()
				ys[i] = e.NewLit()
			}
			e.HammingEq(xs, ys, k, enc)
			if got := s.Solve(); got != sat.Sat {
				t.Fatalf("%v k=%d: got %v", enc, k, got)
			}
			hd := 0
			for i := range xs {
				if s.LitTrue(xs[i]) != s.LitTrue(ys[i]) {
					hd++
				}
			}
			if hd != k {
				t.Fatalf("%v: model HD = %d, want %d", enc, hd, k)
			}
		}
	}
}

// Property: both cardinality encodings accept/reject the same assignments.
func TestQuickEncodingsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		k := rng.Intn(n + 1)
		values := make([]bool, n)
		cnt := 0
		for i := range values {
			values[i] = rng.Intn(2) == 1
			if values[i] {
				cnt++
			}
		}
		results := [2]sat.Status{}
		for ei, enc := range []CardEncoding{AdderTree, SeqCounter} {
			s := sat.New()
			e := NewEncoder(s)
			lits := make([]sat.Lit, n)
			for i := range lits {
				lits[i] = e.NewLit()
				e.Fix(lits[i], values[i])
			}
			e.ExactlyK(lits, k, enc)
			results[ei] = s.Solve()
		}
		want := sat.Unsat
		if cnt == k {
			want = sat.Sat
		}
		return results[0] == want && results[1] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPopcountBinary(t *testing.T) {
	const n = 5
	for p := 0; p < 1<<n; p++ {
		s := sat.New()
		e := NewEncoder(s)
		lits := make([]sat.Lit, n)
		cnt := 0
		for i := range lits {
			lits[i] = e.NewLit()
			v := p&(1<<uint(i)) != 0
			e.Fix(lits[i], v)
			if v {
				cnt++
			}
		}
		bits := e.Popcount(lits)
		if s.Solve() != sat.Sat {
			t.Fatalf("popcount base encoding unsat")
		}
		got := 0
		for i, b := range bits {
			if s.LitTrue(b) {
				got |= 1 << uint(i)
			}
		}
		if got != cnt {
			t.Fatalf("pattern %b: popcount = %d, want %d", p, got, cnt)
		}
	}
}

func TestIte(t *testing.T) {
	for p := 0; p < 8; p++ {
		s := sat.New()
		e := NewEncoder(s)
		c, tt, ff := e.NewLit(), e.NewLit(), e.NewLit()
		z := e.Ite(c, tt, ff)
		cv, tv, fv := p&1 == 1, p&2 == 2, p&4 == 4
		e.Fix(c, cv)
		e.Fix(tt, tv)
		e.Fix(ff, fv)
		if s.Solve() != sat.Sat {
			t.Fatal("ite unsat")
		}
		want := fv
		if cv {
			want = tv
		}
		if s.LitTrue(z) != want {
			t.Fatalf("ite(%v,%v,%v) = %v, want %v", cv, tv, fv, s.LitTrue(z), want)
		}
	}
}

func TestEqualVecAndNotEqual(t *testing.T) {
	s := sat.New()
	e := NewEncoder(s)
	as := []sat.Lit{e.NewLit(), e.NewLit()}
	bs := []sat.Lit{e.NewLit(), e.NewLit()}
	e.EqualVec(as, bs)
	e.NotEqual(as, bs)
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("equal and not-equal: got %v, want UNSAT", got)
	}
}

func TestEncodedOutputsHelper(t *testing.T) {
	c := circuit.New("h")
	a := c.AddInput("a")
	g := c.MustGate("g", circuit.Not, a)
	c.MarkOutput(g)
	s := sat.New()
	e := NewEncoder(s)
	lits := e.EncodeCircuit(c)
	outs := EncodedOutputs(c, lits)
	if len(outs) != 1 || outs[0] != lits[g] {
		t.Error("EncodedOutputs wrong")
	}
	ins := InputLits(c.Inputs(), lits)
	if len(ins) != 1 || ins[0] != lits[a] {
		t.Error("InputLits wrong")
	}
}
